package ace_test

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/acedsm/ace"
)

// reserveUDPAddr finds a loopback UDP address that is currently free,
// for the seed member's gossip socket. The tiny close-to-rebind window
// is acceptable in tests.
func reserveUDPAddr(t *testing.T) string {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := pc.LocalAddr().String()
	pc.Close()
	return addr
}

// TestJoinAssemblesCluster bootstraps a 4-node cluster from three Join
// calls in one test process — distinct Local sets, one of them hosting
// two nodes — and runs an SPMD program that crosses every process
// boundary: a broadcast region id, remote writes under locks, a
// collective sum and global barriers.
func TestJoinAssemblesCluster(t *testing.T) {
	seed := reserveUDPAddr(t)
	locals := [][]int{{0}, {1, 2}, {3}}
	const nodes = 4

	clusters := make([]*ace.Cluster, len(locals))
	errs := make([]error, len(locals))
	var wg sync.WaitGroup
	for i, local := range locals {
		wg.Add(1)
		go func(i int, local []int) {
			defer wg.Done()
			cfg := ace.NodeConfig{
				Nodes:       nodes,
				Local:       local,
				Seed:        int64(i),
				Interval:    20 * time.Millisecond,
				JoinTimeout: 15 * time.Second,
			}
			if i == 0 {
				cfg.Gossip = seed
			} else {
				cfg.Seeds = []string{seed}
			}
			clusters[i], errs[i] = ace.Join(cfg)
		}(i, local)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("join %v: %v", locals[i], err)
		}
	}
	defer func() {
		for _, cl := range clusters {
			cl.Close()
		}
	}()

	for i, cl := range clusters {
		if got := cl.Procs(); got != nodes {
			t.Fatalf("cluster %d: Procs() = %d, want %d", i, got, nodes)
		}
		if got := len(cl.Local()); got != len(locals[i]) {
			t.Fatalf("cluster %d: %d local procs, want %d", i, got, len(locals[i]))
		}
	}

	sums := make([]int64, nodes)
	run := func(i int, cl *ace.Cluster) error {
		return cl.Run(func(p *ace.Proc) error {
			// Node 0 allocates a shared counter; everyone learns its id.
			id := p.BroadcastID(0, func() ace.RegionID {
				if p.ID() != 0 {
					return 0
				}
				return p.GMalloc(p.DefaultSpace(), 8)
			}())
			r := p.Map(id)
			p.GlobalBarrier()

			// Every node increments the counter under the region lock —
			// cross-process mutual exclusion and coherence in one step.
			p.Lock(r)
			p.StartWrite(r)
			r.Data.SetInt64(0, r.Data.Int64(0)+1)
			p.EndWrite(r)
			p.Unlock(r)
			p.GlobalBarrier()

			p.StartRead(r)
			count := r.Data.Int64(0)
			p.EndRead(r)
			if count != nodes {
				t.Errorf("node %d: counter = %d, want %d", p.ID(), count, nodes)
			}

			// A collective across the processes: sum of node ids + 1.
			sums[p.ID()] = p.AllReduceInt64(ace.OpSum, int64(p.ID())+1)
			p.Unmap(r)
			p.GlobalBarrier()
			return nil
		})
	}
	runErrs := make([]error, len(clusters))
	for i, cl := range clusters {
		wg.Add(1)
		go func(i int, cl *ace.Cluster) {
			defer wg.Done()
			runErrs[i] = run(i, cl)
		}(i, cl)
	}
	wg.Wait()
	for i, err := range runErrs {
		if err != nil {
			t.Fatalf("run %v: %v", locals[i], err)
		}
	}
	const want = int64(nodes * (nodes + 1) / 2)
	for id, got := range sums {
		if got != want {
			t.Errorf("node %d: allreduce sum = %d, want %d", id, got, want)
		}
	}
}

// TestJoinTimeoutNamesMissingNodes: a member whose peers never show up
// fails within JoinTimeout and says which node ids went unclaimed.
func TestJoinTimeoutNamesMissingNodes(t *testing.T) {
	_, err := ace.Join(ace.NodeConfig{
		Nodes:       3,
		Local:       []int{0},
		Interval:    10 * time.Millisecond,
		JoinTimeout: 300 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("join succeeded with absent peers")
	}
	if !strings.Contains(err.Error(), "1,2") {
		t.Fatalf("error %q does not name missing nodes 1,2", err)
	}
}

// TestJoinValidates rejects impossible configurations up front.
func TestJoinValidates(t *testing.T) {
	if _, err := ace.Join(ace.NodeConfig{Nodes: 0, Local: []int{0}}); err == nil {
		t.Error("accepted zero nodes")
	}
	if _, err := ace.Join(ace.NodeConfig{Nodes: 2}); err == nil {
		t.Error("accepted empty Local")
	}
}
