module github.com/acedsm/ace

go 1.22
