#!/usr/bin/env bash
# cluster-smoke: end-to-end gate for the multi-process deployment path.
#
# Phase 1 — correctness: a 4-process acenode cluster on loopback runs
# em3d and its checksum must equal the in-process (-standalone) run of
# the same workload, bit for bit.
#
# Phase 2 — failure detection: 3 processes park in a barrier while a
# 4th joins and hangs; the 4th is SIGKILLed and every survivor must
# exit with code 3 (ErrPeerLost) within the detector bound.
set -u

GO=${GO:-go}
WORK=$(mktemp -d /tmp/cluster-smoke.XXXXXX)
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$WORK"' EXIT
PORT=$((18000 + RANDOM % 2000))
SEED="127.0.0.1:$PORT"

fail() { echo "cluster-smoke: FAIL: $*" >&2; exit 1; }

$GO build -o "$WORK/acenode" ./cmd/acenode || fail "build"

echo "cluster-smoke: reference (in-process) em3d run"
REF=$("$WORK/acenode" -standalone -nodes 4 | awk '/checksum/ {print $4}')
[ -n "$REF" ] || fail "no reference checksum"

echo "cluster-smoke: 4-process em3d run (gossip seed $SEED)"
"$WORK/acenode" -nodes 4 -local 1 -seeds "$SEED" >"$WORK/n1.log" 2>&1 &
"$WORK/acenode" -nodes 4 -local 2 -seeds "$SEED" >"$WORK/n2.log" 2>&1 &
"$WORK/acenode" -nodes 4 -local 3 -seeds "$SEED" >"$WORK/n3.log" 2>&1 &
"$WORK/acenode" -nodes 4 -local 0 -gossip "$SEED" >"$WORK/n0.log" 2>&1 &
for job in $(jobs -p); do
    wait "$job" || { cat "$WORK"/n*.log >&2; fail "an acenode process failed"; }
done
GOT=$(awk '/checksum/ {print $4}' "$WORK/n0.log")
[ "$GOT" = "$REF" ] || fail "checksum mismatch: cluster $GOT vs in-process $REF"
echo "cluster-smoke: checksums match ($GOT)"

echo "cluster-smoke: failure-detection drill (SIGKILL one member)"
FD="-interval 30ms -suspect 300ms -dead 900ms"
PORT2=$((PORT + 1))
SEED2="127.0.0.1:$PORT2"
"$WORK/acenode" -nodes 4 -local 1 -seeds "$SEED2" $FD -run wait >"$WORK/k1.log" 2>&1 &
S1=$!
"$WORK/acenode" -nodes 4 -local 2 -seeds "$SEED2" $FD -run wait >"$WORK/k2.log" 2>&1 &
S2=$!
"$WORK/acenode" -nodes 4 -local 3 -seeds "$SEED2" $FD -run hang >"$WORK/k3.log" 2>&1 &
VICTIM=$!
"$WORK/acenode" -nodes 4 -local 0 -gossip "$SEED2" $FD -run wait >"$WORK/k0.log" 2>&1 &
S0=$!

# Wait for the victim to be a full member, then kill it without ceremony.
for _ in $(seq 1 100); do
    grep -q joined "$WORK/k3.log" 2>/dev/null && break
    sleep 0.1
done
grep -q joined "$WORK/k3.log" || { cat "$WORK"/k*.log >&2; fail "victim never joined"; }
sleep 0.5
kill -9 "$VICTIM" 2>/dev/null
START=$(date +%s)

for pid in $S0 $S1 $S2; do
    wait "$pid"
    CODE=$?
    [ "$CODE" = 3 ] || { cat "$WORK"/k*.log >&2; fail "survivor $pid exited $CODE, want 3 (ErrPeerLost)"; }
done
wait "$VICTIM" 2>/dev/null
ELAPSED=$(( $(date +%s) - START ))
# The detector bound: dead after 900ms of silence plus gossip spread;
# 10s of slack keeps the gate robust on loaded CI machines.
[ "$ELAPSED" -le 10 ] || fail "detection took ${ELAPSED}s, bound 10s"
echo "cluster-smoke: all survivors reported ErrPeerLost in ${ELAPSED}s"
echo "cluster-smoke: PASS"
