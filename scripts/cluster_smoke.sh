#!/usr/bin/env bash
# cluster-smoke: end-to-end gate for the multi-process deployment path.
#
# Phase 1 — correctness: a 4-process acenode cluster on loopback runs
# em3d and its checksum must equal the in-process (-standalone) run of
# the same workload, bit for bit.
#
# Phase 2 — failure detection: 3 processes park in a barrier while a
# 4th joins and hangs; the 4th is SIGKILLed and every survivor must
# exit with code 3 (ErrPeerLost) within the detector bound.
#
# Phase 3 — elastic rejoin: a 4-process cluster runs the checkpointing
# elastic workload; one member is SIGKILLed after it has a checkpoint
# on disk and restarted as a rejoiner at the next epoch. Every process
# (including the rejoined one) must exit 0 with the bit-identical em3d
# checksum of the undisturbed standalone run, and the restart must log
# that it resumed from its checkpoint rather than from step 0.
set -u

GO=${GO:-go}
WORK=$(mktemp -d /tmp/cluster-smoke.XXXXXX)
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$WORK"' EXIT
PORT=$((18000 + RANDOM % 2000))
SEED="127.0.0.1:$PORT"

fail() { echo "cluster-smoke: FAIL: $*" >&2; exit 1; }

$GO build -o "$WORK/acenode" ./cmd/acenode || fail "build"

echo "cluster-smoke: reference (in-process) em3d run"
REF=$("$WORK/acenode" -standalone -nodes 4 | awk '/checksum/ {print $4}')
[ -n "$REF" ] || fail "no reference checksum"

echo "cluster-smoke: 4-process em3d run (gossip seed $SEED)"
"$WORK/acenode" -nodes 4 -local 1 -seeds "$SEED" >"$WORK/n1.log" 2>&1 &
"$WORK/acenode" -nodes 4 -local 2 -seeds "$SEED" >"$WORK/n2.log" 2>&1 &
"$WORK/acenode" -nodes 4 -local 3 -seeds "$SEED" >"$WORK/n3.log" 2>&1 &
"$WORK/acenode" -nodes 4 -local 0 -gossip "$SEED" >"$WORK/n0.log" 2>&1 &
for job in $(jobs -p); do
    wait "$job" || { cat "$WORK"/n*.log >&2; fail "an acenode process failed"; }
done
GOT=$(awk '/checksum/ {print $4}' "$WORK/n0.log")
[ "$GOT" = "$REF" ] || fail "checksum mismatch: cluster $GOT vs in-process $REF"
echo "cluster-smoke: checksums match ($GOT)"

echo "cluster-smoke: failure-detection drill (SIGKILL one member)"
FD="-interval 30ms -suspect 300ms -dead 900ms"
PORT2=$((PORT + 1))
SEED2="127.0.0.1:$PORT2"
"$WORK/acenode" -nodes 4 -local 1 -seeds "$SEED2" $FD -run wait >"$WORK/k1.log" 2>&1 &
S1=$!
"$WORK/acenode" -nodes 4 -local 2 -seeds "$SEED2" $FD -run wait >"$WORK/k2.log" 2>&1 &
S2=$!
"$WORK/acenode" -nodes 4 -local 3 -seeds "$SEED2" $FD -run hang >"$WORK/k3.log" 2>&1 &
VICTIM=$!
"$WORK/acenode" -nodes 4 -local 0 -gossip "$SEED2" $FD -run wait >"$WORK/k0.log" 2>&1 &
S0=$!

# Wait for the victim to be a full member, then kill it without ceremony.
for _ in $(seq 1 100); do
    grep -q joined "$WORK/k3.log" 2>/dev/null && break
    sleep 0.1
done
grep -q joined "$WORK/k3.log" || { cat "$WORK"/k*.log >&2; fail "victim never joined"; }
sleep 0.5
kill -9 "$VICTIM" 2>/dev/null
START=$(date +%s)

for pid in $S0 $S1 $S2; do
    wait "$pid"
    CODE=$?
    [ "$CODE" = 3 ] || { cat "$WORK"/k*.log >&2; fail "survivor $pid exited $CODE, want 3 (ErrPeerLost)"; }
done
wait "$VICTIM" 2>/dev/null
ELAPSED=$(( $(date +%s) - START ))
# The detector bound: dead after 900ms of silence plus gossip spread;
# 10s of slack keeps the gate robust on loaded CI machines.
[ "$ELAPSED" -le 10 ] || fail "detection took ${ELAPSED}s, bound 10s"
echo "cluster-smoke: all survivors reported ErrPeerLost in ${ELAPSED}s"

echo "cluster-smoke: elastic rejoin drill (SIGKILL + rejoin at epoch 1)"
EL="-run elastic -steps 8 -size 64 -ckpt $WORK/ck -ckpt-every 2 -step-delay 150ms -interval 25ms -recover -join-timeout 20s -sync-timeout 15s"
EREF=$("$WORK/acenode" -standalone -nodes 4 -run elastic -steps 8 -size 64 | awk '/checksum/ {print $4; exit}')
[ -n "$EREF" ] || fail "no elastic reference checksum"
PORT3=$((PORT + 2))
SEED3="127.0.0.1:$PORT3"
"$WORK/acenode" -nodes 4 -local 0 -gossip "$SEED3" $EL >"$WORK/e0.log" 2>&1 &
E0=$!
"$WORK/acenode" -nodes 4 -local 1 -seeds "$SEED3" $EL >"$WORK/e1.log" 2>&1 &
E1=$!
"$WORK/acenode" -nodes 4 -local 2 -seeds "$SEED3" $EL >"$WORK/e2.log" 2>&1 &
E2=$!
"$WORK/acenode" -nodes 4 -local 3 -seeds "$SEED3" $EL >"$WORK/e3.log" 2>&1 &
VICTIM=$!

# Wait until the victim has checkpointed step 2, then SIGKILL it and
# restart it as a rejoiner claiming the next epoch.
for _ in $(seq 1 200); do
    [ -e "$WORK/ck.3.2" ] && break
    sleep 0.05
done
[ -e "$WORK/ck.3.2" ] || { cat "$WORK"/e*.log >&2; fail "victim never checkpointed"; }
sleep 0.2
kill -9 "$VICTIM" 2>/dev/null
wait "$VICTIM" 2>/dev/null
"$WORK/acenode" -nodes 4 -local 3 -seeds "$SEED3" $EL -rejoin -epoch 1 >"$WORK/e3b.log" 2>&1 &
E3B=$!

for pid in $E0 $E1 $E2 $E3B; do
    wait "$pid" || { cat "$WORK"/e*.log >&2; fail "an elastic acenode process failed"; }
done
grep -q "restored from checkpoint step=" "$WORK/e3b.log" \
    || { cat "$WORK/e3b.log" >&2; fail "rejoiner did not restore from its checkpoint"; }
# Bit-identical parity on every rank, the rejoined one included: a
# recovering process may print more than one checksum line (one per
# epoch it completed), and all of them must equal the reference.
for log in e0 e1 e2 e3b; do
    EGOT=$(awk '/checksum/ {print $4}' "$WORK/$log.log" | sort -u)
    [ "$EGOT" = "$EREF" ] || { cat "$WORK"/e*.log >&2; fail "elastic checksum mismatch on $log: '$EGOT' vs $EREF"; }
done
echo "cluster-smoke: rejoined cluster converged to the reference checksum ($EREF)"
echo "cluster-smoke: PASS"
