#!/usr/bin/env bash
# gate-smoke: end-to-end gate for the session gateway.
#
# Phase 1 — parity: an acegate server on loopback takes a scripted
# probe fleet (32 websocket sessions over 4 room-spaces, each adding
# known values through brackets); every member of a room must read the
# identical converged state — checksum parity across sessions.
#
# Phase 2 — lifecycle: the same probe runs again. The first run's
# rooms were destroyed on last leave, so the rerun re-creates every
# room-space in recycled table slots under fresh generations; parity
# must hold again and the server's shutdown stats must show rooms
# created == rooms destroyed (no leaked spaces).
#
# Phase 3 — robustness: raw garbage is thrown at the listener (no
# websocket handshake, then a handshake followed by junk frames); the
# server must survive and still pass a probe afterwards.
set -u

GO=${GO:-go}
WORK=$(mktemp -d /tmp/gate-smoke.XXXXXX)
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$WORK"' EXIT
PORT=$((28000 + RANDOM % 2000))
ADDR="127.0.0.1:$PORT"

fail() { echo "gate-smoke: FAIL: $*" >&2; exit 1; }

$GO build -o "$WORK/acegate" ./cmd/acegate || fail "build"

"$WORK/acegate" -addr "$ADDR" -procs 4 >"$WORK/server.log" 2>&1 &
SERVER=$!
for _ in $(seq 1 100); do
    grep -q "serving ws" "$WORK/server.log" 2>/dev/null && break
    sleep 0.1
done
grep -q "serving ws" "$WORK/server.log" || { cat "$WORK/server.log" >&2; fail "server never came up"; }

echo "gate-smoke: probe (32 sessions over 4 rooms)"
"$WORK/acegate" -probe -addr "$ADDR" -clients 32 -rooms 4 -adds 8 \
    || { cat "$WORK/server.log" >&2; fail "probe parity"; }

echo "gate-smoke: rerun (rooms re-created in recycled slots)"
"$WORK/acegate" -probe -addr "$ADDR" -clients 32 -rooms 4 -adds 8 \
    || { cat "$WORK/server.log" >&2; fail "probe parity on rerun"; }

echo "gate-smoke: garbage connections (no handshake / junk after handshake)"
# A connection that never speaks websocket, one that speaks garbage
# HTTP, and one that handshakes and then sends junk bytes: none may
# take the server down.
exec 3<>"/dev/tcp/127.0.0.1/$PORT" && exec 3>&- 3<&-
printf 'not http at all\r\n\r\n' >"/dev/tcp/127.0.0.1/$PORT" || true
printf 'GET / HTTP/1.1\r\nHost: x\r\n\r\n\x00\xff\x13\x37junk' >"/dev/tcp/127.0.0.1/$PORT" || true
sleep 0.3
kill -0 "$SERVER" 2>/dev/null || { cat "$WORK/server.log" >&2; fail "server died on garbage input"; }

echo "gate-smoke: probe after garbage"
"$WORK/acegate" -probe -addr "$ADDR" -clients 8 -rooms 2 -adds 4 \
    || { cat "$WORK/server.log" >&2; fail "probe parity after garbage"; }

kill -TERM "$SERVER"
wait "$SERVER" || { cat "$WORK/server.log" >&2; fail "server shutdown"; }
STATS=$(grep "acegate: sessions=" "$WORK/server.log") || { cat "$WORK/server.log" >&2; fail "no shutdown stats"; }
echo "gate-smoke: $STATS"
CREATED=$(sed -n 's/.*rooms=\([0-9]*\)\/\([0-9]*\).*/\1/p' <<<"$STATS")
DESTROYED=$(sed -n 's/.*rooms=\([0-9]*\)\/\([0-9]*\).*/\2/p' <<<"$STATS")
[ -n "$CREATED" ] && [ "$CREATED" = "$DESTROYED" ] \
    || fail "leaked room-spaces: created $CREATED, destroyed $DESTROYED"
[ "$CREATED" -ge 10 ] || fail "expected at least 10 room creations across the probes, saw $CREATED"
echo "gate-smoke: PASS"
