package ace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/gossip"
	"github.com/acedsm/ace/internal/tcpnet"
	"github.com/acedsm/ace/proto"
)

// NodeConfig describes one OS process's share of a multi-process
// cluster: which logical processors it hosts, how its gossip layer
// finds the other processes, and the runtime options every process
// must agree on. See Join.
type NodeConfig struct {
	// Nodes is the total number of logical processors in the cluster,
	// summed across every process.
	Nodes int

	// Local lists the node ids this process hosts — disjoint across
	// processes, together covering 0..Nodes-1. One id is the common
	// case; a slice packs several processors into one process.
	Local []int

	// Gossip is the UDP bind address for the membership layer. Default
	// "127.0.0.1:0" (ephemeral — fine for every process that at least
	// one Seeds entry can reach transitively; seed processes need a
	// port their peers were told about).
	Gossip string

	// Seeds are gossip addresses of other processes, used until peers
	// are discovered. Every process except a common seed needs at
	// least one.
	Seeds []string

	// Seed seeds the gossip layer's randomized peer selection. Zero is
	// a fine default; distinct values de-correlate target choices.
	Seed int64

	// Interval is the gossip round period. Default 50ms.
	Interval time.Duration

	// SuspectAfter and DeadAfter are the failure detector thresholds:
	// a process whose heartbeats stall for SuspectAfter is suspected,
	// and at DeadAfter its nodes are declared down on the data fabric —
	// blocked synchronization then fails with ErrPeerLost instead of
	// hanging. Defaults 20 and 60 gossip intervals.
	SuspectAfter time.Duration
	DeadAfter    time.Duration

	// JoinTimeout bounds the wait for membership to converge (every
	// node's data address learned). Default 30s.
	JoinTimeout time.Duration

	// Epoch is the cluster's recovery epoch. A fresh deployment is
	// epoch 0. After a member loss the survivors tear their mesh down
	// and re-Join at the next epoch (with Rejoin set); the restarted
	// member does the same. Claims are tagged with the epoch, and the
	// bootstrap only accepts matching claims — so nobody dials a data
	// address gossiped before the crash, which the dead incarnation
	// owned. Old-epoch state still circulating in gossip is simply
	// ignored until it ages out.
	Epoch uint64

	// Rejoin marks this process as a returning or surviving member of a
	// recovering cluster. Without it, observing a claim from a higher
	// epoch fails the Join fast with an error naming that epoch — the
	// operator (or supervisor) restarts with Rejoin and the matching
	// Epoch rather than joining a cluster that has moved on. With it,
	// mismatched claims are silently filtered while coverage converges.
	// The gossip layer needs no flag either way: the restarted process
	// carries a fresh generation, which resurrects its member entry on
	// every survivor (Status Dead → Alive, see gossip.Config.OnResurrect).
	Rejoin bool

	// OnResurrect, if non-nil, fires when a member returns with a fresh
	// generation — a restarted process, whether or not the failure
	// detector had declared it dead first. (Join also reacts itself:
	// the old incarnation's nodes are declared down on the data fabric,
	// since a restart is proof positive the previous incarnation died.)
	// Informational: called from the gossip tick goroutine, so it must
	// not block.
	OnResurrect func(member int)

	// Net tunes the data-plane transport's connection supervision
	// (timeouts, backoff, reconnect budget). Topology fields (Nodes,
	// Addrs, Local) are managed by Join and ignored here.
	Net tcpnet.Config

	// Options carries the runtime options the cluster-wide program
	// agrees on: Registry, DefaultProtocol, Trace, Adapt, SyncTimeout.
	// Procs, Transport, Latency and Faults are managed by Join and
	// ignored.
	Options Options
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.Gossip == "" {
		c.Gossip = "127.0.0.1:0"
	}
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 20 * c.Interval
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3 * c.SuspectAfter
	}
	if c.JoinTimeout <= 0 {
		c.JoinTimeout = 30 * time.Second
	}
	return c
}

// peerDowner is the transport hook the failure detector feeds: tcpnet
// implements it.
type peerDowner interface {
	DeclarePeerDown(peer amnet.NodeID)
}

// Join assembles this process's share of a multi-process cluster and
// returns the same Cluster surface NewCluster does: Run executes the
// SPMD program on the local processors, Procs reports the cluster-wide
// total, barriers and collectives span every process.
//
// The bootstrap is two-phase. First the process binds its data-plane
// listeners (tcpnet, ephemeral ports) and starts gossiping: seeded
// SYN/ACK/ACK2 rounds spread each process's (node ids → data address)
// claims epidemically until every node 0..Nodes-1 is accounted for.
// Then the full mesh is dialed and the runtime comes up exactly as in
// process-local clusters. The gossip layer keeps running underneath as
// the failure detector: a process silent past DeadAfter has its nodes
// declared down, so survivors' blocked waits fail with ErrPeerLost
// rather than hanging. Close tears down the mesh and the gossip layer.
func Join(cfg NodeConfig) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("ace: invalid node count %d", cfg.Nodes)
	}
	if len(cfg.Local) == 0 {
		return nil, fmt.Errorf("ace: NodeConfig.Local is empty — this process hosts no nodes")
	}

	// Phase 1a: bind the data-plane listeners to learn our addresses.
	tc := cfg.Net
	tc.Nodes = cfg.Nodes
	tc.Addrs = nil
	tc.Local = append([]int(nil), cfg.Local...)
	nd, err := tcpnet.Listen(tc)
	if err != nil {
		return nil, err
	}

	// Phase 1b: gossip our claims until the member map covers every
	// node. The member id is our lowest hosted node id (distinct
	// across processes because Local sets are disjoint).
	member := cfg.Local[0]
	for _, id := range cfg.Local {
		if id < member {
			member = id
		}
	}
	udp, err := gossip.ListenUDP(cfg.Gossip)
	if err != nil {
		nd.Close()
		return nil, err
	}

	// The failure detector outlives the bootstrap: once the mesh
	// exists, a dead member's nodes are declared down on it. claims
	// maps member id → hosted node ids, filled as views arrive.
	var fabric atomic.Value // peerDowner
	var claimsMu sync.Mutex
	claims := make(map[int][]int)

	agent, err := gossip.New(gossip.Config{
		ID:           member,
		Nodes:        cfg.Nodes,
		Generation:   uint64(time.Now().UnixNano()),
		Seed:         cfg.Seed,
		SuspectAfter: cfg.SuspectAfter,
		DeadAfter:    cfg.DeadAfter,
		GossipAddr:   udp.Addr(),
		DataAddr:     encodeClaims(cfg.Epoch, cfg.Local, nd.Addrs()),
		Seeds:        cfg.Seeds,
		OnResurrect: func(m int) {
			// A higher generation is proof the member's previous
			// incarnation died, even if it restarted faster than the
			// failure detector could suspect it. Its old data addresses
			// are dead sockets: declare them down so survivors' blocked
			// waits fail with ErrPeerLost and recovery can begin.
			declareDown(m, claims, &claimsMu, &fabric)
			if cfg.OnResurrect != nil {
				cfg.OnResurrect(m)
			}
		},
		OnDead: func(m int) {
			declareDown(m, claims, &claimsMu, &fabric)
		},
	}, udp.Send)
	if err != nil {
		udp.Close()
		nd.Close()
		return nil, err
	}

	go udp.Serve(agent.Handle)
	stop := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		tk := time.NewTicker(cfg.Interval)
		defer tk.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-tk.C:
				agent.Tick(now)
			}
		}
	}()
	teardownGossip := func() {
		close(stop)
		tickWG.Wait()
		udp.Close()
	}

	// Phase 1c: wait for full coverage — every node id has a data
	// address in somebody's claim.
	addrs, err := awaitCoverage(agent, cfg, claims, &claimsMu)
	if err != nil {
		teardownGossip()
		nd.Close()
		return nil, err
	}

	// Phase 2: dial the mesh and bring the runtime up on it. The
	// transport's dispatch gate holds remote frames until NewCluster
	// finishes registering handlers.
	nw, err := nd.Connect(addrs)
	if err != nil {
		teardownGossip()
		return nil, err
	}
	fabric.Store(nw.(peerDowner))

	opts := cfg.Options
	opts.Procs = cfg.Nodes
	opts.Latency = 0
	opts.Faults = nil
	opts.Transport = amnet.TransportFunc(func(int) (amnet.Network, error) { return nw, nil })
	if opts.Registry == nil {
		opts.Registry = proto.NewRegistry()
	}
	cl, err := core.NewCluster(opts)
	if err != nil {
		teardownGossip()
		nw.Close()
		return nil, err
	}
	cl.RegisterCloser(func() error {
		teardownGossip()
		return nil
	})
	return cl, nil
}

// declareDown marks every node a member claimed as down on the data
// fabric, failing blocked synchronization with ErrPeerLost. Fired by
// the failure detector (OnDead) and by resurrection (a restarted
// member's old incarnation is certainly gone).
func declareDown(member int, claims map[int][]int, mu *sync.Mutex, fabric *atomic.Value) {
	mu.Lock()
	nodes := claims[member]
	mu.Unlock()
	pd, _ := fabric.Load().(peerDowner)
	if pd == nil {
		return
	}
	for _, n := range nodes {
		pd.DeclarePeerDown(amnet.NodeID(n))
	}
}

// awaitCoverage polls the gossip view until every node id 0..Nodes-1
// has a claimed data address (also recording member→nodes claims for
// the failure detector), or JoinTimeout passes.
func awaitCoverage(agent *gossip.Agent, cfg NodeConfig, claims map[int][]int, mu *sync.Mutex) ([]string, error) {
	deadline := time.Now().Add(cfg.JoinTimeout)
	for {
		addrs := make([]string, cfg.Nodes)
		covered := 0
		var newerEpoch uint64
		for _, st := range agent.View() {
			epoch, parsed := parseClaims(st.DataAddr)
			if epoch != cfg.Epoch {
				// A claim from another recovery epoch: a pre-crash data
				// address (stale — its owner is gone) or a cluster that
				// already moved past us. Never dial it.
				if epoch > cfg.Epoch && epoch > newerEpoch {
					newerEpoch = epoch
				}
				continue
			}
			nodes := make([]int, 0, len(parsed))
			for id, addr := range parsed {
				if id >= 0 && id < cfg.Nodes && addrs[id] == "" {
					addrs[id] = addr
					covered++
				}
				nodes = append(nodes, id)
			}
			sort.Ints(nodes)
			mu.Lock()
			claims[st.Node] = nodes
			mu.Unlock()
		}
		if newerEpoch > 0 && !cfg.Rejoin {
			return nil, fmt.Errorf("ace: cluster is recovering at epoch %d (local epoch %d) — restart with Rejoin and the current epoch",
				newerEpoch, cfg.Epoch)
		}
		if covered == cfg.Nodes {
			return addrs, nil
		}
		if time.Now().After(deadline) {
			var missing []string
			for id, a := range addrs {
				if a == "" {
					missing = append(missing, strconv.Itoa(id))
				}
			}
			return nil, fmt.Errorf("ace: membership did not converge within %v: no epoch-%d address for node(s) %s",
				cfg.JoinTimeout, cfg.Epoch, strings.Join(missing, ","))
		}
		time.Sleep(cfg.Interval / 2)
	}
}

// encodeClaims renders a process's hosted nodes and their data
// addresses as the gossiped metadata payload: "id=addr,id=addr",
// prefixed with the recovery epoch ("e<N>;...") when nonzero — epoch 0
// keeps the unprefixed form, so a fresh deployment's claims are
// readable by older tooling.
func encodeClaims(epoch uint64, local []int, addrs []string) string {
	parts := make([]string, len(local))
	for i, id := range local {
		parts[i] = strconv.Itoa(id) + "=" + addrs[i]
	}
	s := strings.Join(parts, ",")
	if epoch > 0 {
		s = "e" + strconv.FormatUint(epoch, 10) + ";" + s
	}
	return s
}

// parseClaims is encodeClaims's inverse; malformed entries are skipped
// and a missing epoch prefix means epoch 0.
func parseClaims(s string) (uint64, map[int]string) {
	var epoch uint64
	if rest, ok := strings.CutPrefix(s, "e"); ok {
		if es, claims, ok := strings.Cut(rest, ";"); ok {
			if e, err := strconv.ParseUint(es, 10, 64); err == nil {
				epoch = e
				s = claims
			}
		}
	}
	out := make(map[int]string)
	for _, part := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(id)
		if err != nil || addr == "" {
			continue
		}
		out[n] = addr
	}
	return epoch, out
}
