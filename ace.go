// Package ace is the public API of the Ace runtime: a region-based
// software distributed shared memory with customizable coherence
// protocols, reproducing Raghavachari & Rogers, "Ace: Linguistic
// Mechanisms for Customizable Protocols" (PPoPP 1997).
//
// # Programming model
//
// An Ace program is SPMD: NewCluster creates P logical processors, and
// Run executes the same function on each, one user thread per processor.
// Shared data lives in regions — arbitrarily sized blocks with a unique id
// — allocated from spaces. A space is the paper's central abstraction: an
// allocation arena with an associated coherence protocol. Programs are
// developed against the default sequentially consistent space and then
// tuned by moving data structures into spaces with application-specific
// protocols, or by switching a space's protocol as the program changes
// phase:
//
//	cl, _ := ace.NewCluster(ace.Options{Procs: 8})
//	defer cl.Close()
//	cl.Run(func(p *ace.Proc) error {
//		sp, _ := p.NewSpace("sc")
//		var id ace.RegionID
//		if p.ID() == 0 {
//			id = p.GMalloc(sp, 1024)
//		}
//		id = p.BroadcastID(0, id)
//		r := p.Map(id)
//		p.StartWrite(r)
//		r.Data.SetFloat64(0, 3.14)
//		p.EndWrite(r)
//		p.Barrier(sp)
//		// Later: switch the space to an update protocol.
//		return p.ChangeProtocol(sp, "update")
//	})
//
// Accesses to a mapped region's Data are bracketed by StartRead/EndRead or
// StartWrite/EndWrite; the semantics of those brackets are whatever the
// space's protocol defines. The runtime dispatches every primitive —
// including Barrier, Lock and Unlock — through the protocol ("full access
// control"), so protocols can act before and after accesses and at
// synchronization points.
//
// # Protocols
//
// NewCluster installs the protocol library from package proto ("sc",
// "null", "update", "staticupdate", "migratory", "pipeline", "atomic",
// "homewrite") unless Options.Registry overrides it. New protocols are
// added by implementing the Protocol interface and registering an Info —
// the analogue of the paper's protocol-registration script; see package
// proto for worked examples.
package ace

import (
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/proto"
)

// Core type re-exports. See the corresponding internal/core documentation
// on each.
type (
	// Options configures a cluster (processor count, registry, network).
	Options = core.Options
	// Cluster is a set of logical processors sharing regions.
	Cluster = core.Cluster
	// Proc is one processor's handle on the runtime.
	Proc = core.Proc
	// Space binds a protocol to a set of regions.
	Space = core.Space
	// Region is a processor's local view of a shared region.
	Region = core.Region
	// RegionID names a shared region globally.
	RegionID = core.RegionID
	// RegionData is a region's byte storage with typed accessors.
	RegionData = core.RegionData
	// Protocol is the interface coherence protocols implement.
	Protocol = core.Protocol
	// Ctx provides runtime services to protocol implementations.
	Ctx = core.Ctx
	// Info is a protocol registry entry.
	Info = core.Info
	// Decl is the compiler-visible part of an Info.
	Decl = core.Decl
	// Registry holds the available protocols.
	Registry = core.Registry
	// Directory is the per-region coherence directory at the home.
	Directory = core.Directory
	// Point names a protocol invocation point.
	Point = core.Point
	// PointSet is a set of invocation points.
	PointSet = core.PointSet
	// ReduceOp selects an AllReduce combining operator.
	ReduceOp = core.ReduceOp
	// OpStats counts runtime primitive invocations.
	OpStats = core.OpStats
	// Base is an embeddable no-op Protocol implementation.
	Base = core.Base
)

// Reduction operators.
const (
	OpSum = core.OpSum
	OpMin = core.OpMin
	OpMax = core.OpMax
)

// Protocol invocation points.
const (
	PointMap        = core.PointMap
	PointUnmap      = core.PointUnmap
	PointStartRead  = core.PointStartRead
	PointEndRead    = core.PointEndRead
	PointStartWrite = core.PointStartWrite
	PointEndWrite   = core.PointEndWrite
	PointBarrier    = core.PointBarrier
	PointLock       = core.PointLock
	PointUnlock     = core.PointUnlock
)

// NewCluster creates a cluster. If opts.Registry is nil, the full protocol
// library (package proto) is installed.
func NewCluster(opts Options) (*Cluster, error) {
	if opts.Registry == nil {
		opts.Registry = proto.NewRegistry()
	}
	return core.NewCluster(opts)
}

// NewRegistry returns a registry with the built-in "sc" protocol plus the
// whole protocol library.
func NewRegistry() *Registry { return proto.NewRegistry() }
