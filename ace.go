// Package ace is the public API of the Ace runtime: a region-based
// software distributed shared memory with customizable coherence
// protocols, reproducing Raghavachari & Rogers, "Ace: Linguistic
// Mechanisms for Customizable Protocols" (PPoPP 1997).
//
// # Programming model
//
// An Ace program is SPMD: NewCluster creates P logical processors, and
// Run executes the same function on each, one user thread per processor.
// Shared data lives in regions — arbitrarily sized blocks with a unique id
// — allocated from spaces. A space is the paper's central abstraction: an
// allocation arena with an associated coherence protocol. Programs are
// developed against the default sequentially consistent space and then
// tuned by moving data structures into spaces with application-specific
// protocols, or by switching a space's protocol as the program changes
// phase:
//
//	cl, _ := ace.NewCluster(ace.Options{Procs: 8})
//	defer cl.Close()
//	cl.Run(func(p *ace.Proc) error {
//		sp, _ := p.NewSpace("sc")
//		var id ace.RegionID
//		if p.ID() == 0 {
//			id = p.GMalloc(sp, 1024)
//		}
//		id = p.BroadcastID(0, id)
//		r := p.Map(id)
//		p.StartWrite(r)
//		r.Data.SetFloat64(0, 3.14)
//		p.EndWrite(r)
//		p.Barrier(sp)
//		// Later: switch the space to an update protocol.
//		return p.ChangeProtocol(sp, "update")
//	})
//
// Accesses to a mapped region's Data are bracketed by StartRead/EndRead or
// StartWrite/EndWrite; the semantics of those brackets are whatever the
// space's protocol defines. The runtime dispatches every primitive —
// including Barrier, Lock and Unlock — through the protocol ("full access
// control"), so protocols can act before and after accesses and at
// synchronization points.
//
// # Protocols
//
// NewCluster installs the protocol library from package proto ("sc",
// "null", "update", "staticupdate", "migratory", "pipeline", "atomic",
// "homewrite") unless Options.Registry overrides it. New protocols are
// added by implementing the Protocol interface and registering an Info —
// the analogue of the paper's protocol-registration script; see package
// proto for worked examples.
//
// # Adaptive protocol selection
//
// Setting Options.Adapt turns on the online protocol controller: at
// barrier points the runtime classifies each adaptable space's access
// pattern from the trace counters (read/write mix, remote misses,
// writer and reader counts, lock traffic) and — after a configurable
// hysteresis — switches the space to the registered protocol advertising
// that pattern, through the same collective ChangeProtocol an
// application would call by hand. A program can thus start every space
// on "sc" and let the runtime specialize it:
//
//	cl, _ := ace.NewCluster(ace.Options{Procs: 8, Adapt: &ace.AdaptConfig{}})
//
// Controller state (classified pattern, epochs, switches) is surfaced in
// Metrics.Adapt. Protocols opt in by declaring AdaptHints in their
// registry Info; see AdaptConfig for tuning and DESIGN.md §7 for the
// decision procedure.
//
// # Observability
//
// Setting Options.Trace enables the runtime's observability layer:
// per-space operation counters and latency histograms, network traffic
// counters with send→deliver latency sampling, and (when TraceConfig
// .Events is positive) a bounded per-processor event ring exported as
// Chrome trace_event JSON. Snapshots are read with Proc.Snapshot (one
// processor) or Cluster.Metrics (whole cluster), and the event trace is
// written with Cluster.WriteTrace:
//
//	cl, _ := ace.NewCluster(ace.Options{
//		Procs: 8,
//		Trace: &ace.TraceConfig{Metrics: true, Events: 1 << 16},
//	})
//	cl.Run(work)
//	m := cl.Metrics()                  // ace.Metrics: ops, latency, net
//	fmt.Println(m.Ops.Get(ace.OpMap))  // e.g. total Map invocations
//	f, _ := os.Create("trace.json")    // chrome://tracing / Perfetto
//	cl.WriteTrace(f)
//
// With Options.Trace nil the instrumentation is disabled and a bracketed
// operation costs one atomic load and one branch — no allocation.
//
// # Failure model
//
// Options.Faults wraps the cluster's transport in a seeded
// fault-injecting wire (delays, duplication, reordering, drops with
// redelivery, partitions, a slow node) below a reliability layer, so a
// correct program still computes correct results — useful for stress
// testing protocols; injected faults are counted in Metrics.Net.Faults.
// Options.SyncTimeout bounds every synchronization wait: a stalled
// collective fails Run with an error matching ErrSyncStall, and a lost
// peer (on transports that detect one, like the supervised TCP
// transport) fails blocked waits with ErrPeerLost instead of hanging.
// See DESIGN.md §6.
package ace

import (
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/faultnet"
	"github.com/acedsm/ace/internal/trace"
	"github.com/acedsm/ace/proto"
)

// Core type re-exports. See the corresponding internal/core documentation
// on each.
type (
	// Options configures a cluster (processor count, registry, network).
	Options = core.Options
	// Cluster is a set of logical processors sharing regions.
	Cluster = core.Cluster
	// Proc is one processor's handle on the runtime.
	Proc = core.Proc
	// Space binds a protocol to a set of regions.
	Space = core.Space
	// Region is a processor's local view of a shared region.
	Region = core.Region
	// RegionID names a shared region globally.
	RegionID = core.RegionID
	// RegionData is a region's byte storage with typed accessors.
	RegionData = core.RegionData
	// Protocol is the interface coherence protocols implement.
	Protocol = core.Protocol
	// Ctx provides runtime services to protocol implementations.
	Ctx = core.Ctx
	// Info is a protocol registry entry.
	Info = core.Info
	// Decl is the compiler-visible part of an Info.
	Decl = core.Decl
	// Registry holds the available protocols.
	Registry = core.Registry
	// Directory is the per-region coherence directory at the home.
	Directory = core.Directory
	// Point names a protocol invocation point.
	Point = core.Point
	// PointSet is a set of invocation points.
	PointSet = core.PointSet
	// ReduceOp selects an AllReduce combining operator.
	ReduceOp = core.ReduceOp
	// AdaptConfig enables and tunes the online adaptive protocol
	// controller; assign one to Options.Adapt.
	AdaptConfig = core.AdaptConfig
	// AdaptHints is a protocol's declaration to the adaptive controller,
	// part of its registry Info.
	AdaptHints = core.AdaptHints
	// Base is an embeddable no-op Protocol implementation.
	Base = core.Base
	// Checkpoint is a collective snapshot of a cluster's shared state,
	// taken by Proc.Checkpoint at a barrier point and restored — after a
	// failure — by Proc.RestoreCheckpoint on every processor. See
	// DESIGN.md §13.
	Checkpoint = core.Checkpoint
	// CheckpointRegion is one home region's contents in a Checkpoint.
	CheckpointRegion = core.CheckpointRegion
	// HomeMigrator is the optional protocol hook invoked during
	// Proc.MigrateHome's ownership flip.
	HomeMigrator = core.HomeMigrator
	// PeerLostError reports which peer's loss failed a blocked wait.
	PeerLostError = core.PeerLostError
	// SyncStallError reports a synchronization wait that outlived
	// Options.SyncTimeout.
	SyncStallError = core.SyncStallError
	// SpaceRef is a generation-tagged space identifier: it stays
	// meaningful after the space dies, and resolving a stale one
	// (Proc.SpaceByRef) reports ErrStaleSpace instead of the table
	// slot's next occupant. See DESIGN.md §14.
	SpaceRef = core.SpaceRef
	// StaleSpaceError reports a SpaceRef whose space has been freed.
	StaleSpaceError = core.StaleSpaceError
	// BadSizeError reports an allocation size rejected by GMallocE.
	BadSizeError = core.BadSizeError
)

// Failure-model sentinels, matched with errors.Is against Run's error.
var (
	// ErrPeerLost: a peer went down while this processor was blocked on it.
	ErrPeerLost = core.ErrPeerLost
	// ErrSyncStall: a synchronization wait exceeded Options.SyncTimeout.
	ErrSyncStall = core.ErrSyncStall
	// ErrStaleSpace: a SpaceRef named a freed (or recycled) space.
	ErrStaleSpace = core.ErrStaleSpace
	// ErrBadSize: an allocation size was non-positive or above
	// MaxRegionSize (GMallocE's bound on client-derived sizes).
	ErrBadSize = core.ErrBadSize
)

// MaxRegionSize bounds a single region allocation on the
// error-returning path (Proc.GMallocE).
const MaxRegionSize = core.MaxRegionSize

// Fault-injection re-exports. See the corresponding internal/faultnet
// documentation on each.
type (
	// FaultPolicy configures the fault injector; assign one to
	// Options.Faults.
	FaultPolicy = faultnet.Policy
	// FaultPartition is a timed bidirectional partition window in a
	// FaultPolicy: traffic both ways between the pair is lost while the
	// window is open.
	FaultPartition = faultnet.Partition
	// FaultCounts tallies injected faults per kind (Metrics.Net.Faults).
	FaultCounts = trace.FaultCounts
)

// Observability type re-exports. See the corresponding internal/trace
// documentation on each.
type (
	// TraceConfig selects what the observability layer records; assign
	// one to Options.Trace.
	TraceConfig = trace.Config
	// Metrics is a cluster- or processor-level observability snapshot.
	Metrics = trace.Metrics
	// SpaceMetrics is one space's operation counts and latencies.
	SpaceMetrics = trace.SpaceMetrics
	// AdaptStats is one space's adaptive-controller state
	// (Metrics.Adapt), populated when Options.Adapt is set.
	AdaptStats = trace.AdaptStats
	// OpCounts is a per-operation counter vector.
	OpCounts = trace.OpCounts
	// Histogram is a power-of-two latency histogram snapshot.
	Histogram = trace.Histogram
	// NetSnapshot is an endpoint- or cluster-level traffic snapshot.
	NetSnapshot = trace.NetSnapshot
	// TraceOp names an instrumented runtime primitive.
	TraceOp = trace.Op
	// TraceEvent is one completed operation in the event ring.
	TraceEvent = trace.Event
)

// The instrumented runtime primitives, indexing OpCounts and
// Metrics.OpLatency.
const (
	OpGMalloc        = trace.OpGMalloc
	OpMap            = trace.OpMap
	OpUnmap          = trace.OpUnmap
	OpStartRead      = trace.OpStartRead
	OpEndRead        = trace.OpEndRead
	OpStartWrite     = trace.OpStartWrite
	OpEndWrite       = trace.OpEndWrite
	OpBarrier        = trace.OpBarrier
	OpLock           = trace.OpLock
	OpUnlock         = trace.OpUnlock
	OpChangeProtocol = trace.OpChangeProtocol
	OpFreeSpace      = trace.OpFreeSpace
)

// Reduction operators.
const (
	OpSum = core.OpSum
	OpMin = core.OpMin
	OpMax = core.OpMax
)

// The access-pattern labels used by the adaptive controller
// (AdaptHints.Pattern, AdaptStats.Pattern).
const (
	PatternGeneral          = core.PatternGeneral
	PatternMigratory        = core.PatternMigratory
	PatternSingleWriter     = core.PatternSingleWriter
	PatternProducerConsumer = core.PatternProducerConsumer
	PatternHomeWrite        = core.PatternHomeWrite
)

// Protocol invocation points.
const (
	PointMap        = core.PointMap
	PointUnmap      = core.PointUnmap
	PointStartRead  = core.PointStartRead
	PointEndRead    = core.PointEndRead
	PointStartWrite = core.PointStartWrite
	PointEndWrite   = core.PointEndWrite
	PointBarrier    = core.PointBarrier
	PointLock       = core.PointLock
	PointUnlock     = core.PointUnlock
)

// NewCluster creates a cluster. If opts.Registry is nil, the full protocol
// library (package proto) is installed.
func NewCluster(opts Options) (*Cluster, error) {
	if opts.Registry == nil {
		opts.Registry = proto.NewRegistry()
	}
	return core.NewCluster(opts)
}

// NewRegistry returns a registry with the built-in "sc" protocol plus the
// whole protocol library.
func NewRegistry() *Registry { return proto.NewRegistry() }

// EncodeCheckpoint serializes a checkpoint to its stable wire/file
// format (see DESIGN.md §13).
func EncodeCheckpoint(ck *Checkpoint) []byte { return core.EncodeCheckpoint(ck) }

// DecodeCheckpoint is EncodeCheckpoint's inverse; it validates the
// framing and rejects truncated or corrupt images.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) { return core.DecodeCheckpoint(b) }
