package ace_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/acedsm/ace"
)

// countingProto is a minimal user protocol defined purely against the
// public API.
type countingProto struct{ ace.Base }

func (c *countingProto) Name() string { return "counting" }

// TestPublicAPIEndToEnd exercises the whole public surface: cluster
// construction with the default (full) registry, spaces, regions,
// sections, locks, barriers, collectives, ChangeProtocol and the
// observability layer.
func TestPublicAPIEndToEnd(t *testing.T) {
	cl, err := ace.NewCluster(ace.Options{
		Procs: 4,
		Trace: &ace.TraceConfig{Metrics: true, Events: 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *ace.Proc) error {
		sp, err := p.NewSpace("sc")
		if err != nil {
			return err
		}
		var id ace.RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, 16)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		for i := 0; i < 25; i++ {
			p.Lock(r)
			p.StartWrite(r)
			r.Data.SetInt64(0, r.Data.Int64(0)+1)
			p.EndWrite(r)
			p.Unlock(r)
		}
		p.Barrier(sp)
		p.StartRead(r)
		total := r.Data.Int64(0)
		p.EndRead(r)
		if total != 100 {
			return fmt.Errorf("total = %d", total)
		}
		if got := p.AllReduceInt64(ace.OpSum, 1); got != 4 {
			return fmt.Errorf("allreduce = %d", got)
		}
		if err := p.ChangeProtocol(sp, "update"); err != nil {
			return err
		}
		p.StartRead(r)
		preserved := r.Data.Int64(0)
		p.EndRead(r)
		if preserved != 100 {
			return fmt.Errorf("data lost across ChangeProtocol: %d", preserved)
		}
		p.Unmap(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m := cl.Metrics()
	if m.Net.MsgsSent == 0 {
		t.Error("no traffic recorded")
	}
	if got := m.Ops.Get(ace.OpStartWrite); got != 4*25 {
		t.Errorf("start_write count = %d, want %d", got, 4*25)
	}
	if len(m.Spaces) == 0 || m.Spaces[0].Protocol == "" {
		t.Errorf("space metrics missing: %+v", m.Spaces)
	}
	// The event ring retained operations and exports valid Chrome JSON.
	if len(cl.TraceEvents()) == 0 {
		t.Error("no trace events retained")
	}
	var buf bytes.Buffer
	if err := cl.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("WriteTrace produced invalid JSON")
	}
}

// TestDefaultRegistryHasLibrary: NewCluster installs the protocol library
// when no registry is given.
func TestDefaultRegistryHasLibrary(t *testing.T) {
	reg := ace.NewRegistry()
	for _, name := range []string{"sc", "null", "update", "staticupdate", "migratory", "pipeline", "atomic", "homewrite", "writethrough", "racecheck"} {
		if _, ok := reg.Lookup(name); !ok {
			t.Errorf("registry missing %q", name)
		}
	}
	var sb strings.Builder
	if err := reg.WriteConfig(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "protocol update {") {
		t.Error("config file missing update protocol")
	}
}

// TestUserDefinedProtocolThroughPublicAPI registers a protocol written
// against the public types only.
func TestUserDefinedProtocolThroughPublicAPI(t *testing.T) {
	reg := ace.NewRegistry()
	err := reg.Register(ace.Info{
		Name:        "counting",
		New:         func() ace.Protocol { return &countingProto{} },
		Optimizable: true,
		Null:        ace.PointSet(0).With(ace.PointMap),
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := ace.NewCluster(ace.Options{Procs: 2, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *ace.Proc) error {
		sp, err := p.NewSpace("counting")
		if err != nil {
			return err
		}
		id := p.GMalloc(sp, 8)
		r := p.Map(id)
		p.StartWrite(r)
		r.Data.SetInt64(0, int64(p.ID()))
		p.EndWrite(r)
		p.StartRead(r)
		if r.Data.Int64(0) != int64(p.ID()) {
			return fmt.Errorf("local data lost")
		}
		p.EndRead(r)
		p.Barrier(sp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPointConstants: the re-exported constants match the internal ones
// (compile-time aliasing plus a runtime sanity check).
func TestPointConstants(t *testing.T) {
	if ace.PointMap.String() != "map" || ace.PointUnlock.String() != "unlock" {
		t.Error("point constants misaligned")
	}
	s := ace.PointSet(0).With(ace.PointBarrier)
	if !s.Has(ace.PointBarrier) || s.Has(ace.PointLock) {
		t.Error("point set ops broken through facade")
	}
}

// TestFailureModelThroughPublicAPI exercises the failure-model surface:
// Options.Faults stresses a correct workload (which must still compute
// the right answer, with the injected faults visible in Metrics), and
// Options.SyncTimeout turns a stalled barrier into ErrSyncStall.
func TestFailureModelThroughPublicAPI(t *testing.T) {
	cl, err := ace.NewCluster(ace.Options{
		Procs: 3,
		Trace: &ace.TraceConfig{Metrics: true},
		Faults: &ace.FaultPolicy{
			Seed:        5,
			Delay:       50 * time.Microsecond,
			Jitter:      100 * time.Microsecond,
			DupProb:     0.2,
			DropProb:    0.2,
			ReorderProb: 0.2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *ace.Proc) error {
		sp := p.DefaultSpace()
		var id ace.RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, 8)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		for i := 0; i < 6; i++ {
			if p.ID() == i%3 {
				p.StartWrite(r)
				r.Data.SetInt64(0, int64(i+1))
				p.EndWrite(r)
			}
			p.Barrier(sp)
			p.StartRead(r)
			got := r.Data.Int64(0)
			p.EndRead(r)
			if got != int64(i+1) {
				return fmt.Errorf("round %d: read %d", i, got)
			}
			p.Barrier(sp)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Metrics().Net.Faults.Total() == 0 {
		t.Error("no faults counted despite Options.Faults")
	}

	stall, err := ace.NewCluster(ace.Options{Procs: 2, SyncTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer stall.Close()
	err = stall.Run(func(p *ace.Proc) error {
		if p.ID() == 1 {
			return nil // never reaches the barrier
		}
		p.GlobalBarrier()
		return nil
	})
	if !errors.Is(err, ace.ErrSyncStall) {
		t.Fatalf("stalled Run error = %v, want ErrSyncStall", err)
	}
	var se *ace.SyncStallError
	if !errors.As(err, &se) {
		t.Fatalf("stalled Run error = %#v, want *SyncStallError", err)
	}
}
