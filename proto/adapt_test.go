package proto_test

import (
	"testing"

	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/trace"
	"github.com/acedsm/ace/proto"
)

// aggressiveAdapt converges within a few epochs so the tests stay fast:
// one epoch per epochBarriers barriers, switch after two agreeing
// epochs, one cooldown epoch. Bodies with a write phase and a read phase
// separated by barriers pass epochBarriers=2 so one epoch always covers
// a full iteration (a 1-barrier epoch would alternate between
// writes-only and reads-only classifications and never build a streak).
// Rollback is disabled: these tests assert classification, and at
// microsecond epoch lengths (worse under -race instrumentation) the
// wall-time probe is noise that would legitimately reverse a correct
// switch; pricing has its own test in internal/core.
func aggressiveAdapt(epochBarriers int) *core.AdaptConfig {
	return &core.AdaptConfig{EpochBarriers: epochBarriers, Hysteresis: 2, Cooldown: 1, MinOps: 1, RollbackMargin: -1}
}

// runAdaptive executes an SPMD body on an adaptive cluster and returns
// the final protocol name of the space the body worked on (read after a
// closing barrier, so all processors agree) plus the cluster metrics.
func runAdaptive(t *testing.T, procs, epochBarriers int, body func(p *core.Proc, sp *core.Space)) (string, trace.Metrics) {
	t.Helper()
	cl, err := core.NewCluster(core.Options{
		Procs:    procs,
		Registry: proto.NewRegistry(),
		Adapt:    aggressiveAdapt(epochBarriers),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	final := make([]string, procs)
	err = cl.Run(func(p *core.Proc) error {
		sp, err := p.NewSpace("sc")
		if err != nil {
			return err
		}
		body(p, sp)
		p.GlobalBarrier()
		final[p.ID()] = sp.ProtoName
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < procs; i++ {
		if final[i] != final[0] {
			t.Fatalf("processors disagree on final protocol: %v", final)
		}
	}
	return final[0], cl.Metrics()
}

// mkRegions allocates one region per processor (homed round-robin) and
// maps them everywhere.
func mkRegions(p *core.Proc, sp *core.Space, size int) []*core.Region {
	ids := make([]core.RegionID, p.Procs())
	for home := 0; home < p.Procs(); home++ {
		var rid core.RegionID
		if p.ID() == home {
			rid = p.GMalloc(sp, size)
		}
		ids[home] = p.BroadcastID(home, rid)
	}
	regs := make([]*core.Region, len(ids))
	for i, rid := range ids {
		regs[i] = p.Map(rid)
	}
	return regs
}

// TestAdaptConvergesProducerConsumer: every processor writes its own
// region and reads everyone else's, read-dominated. The controller must
// classify producer-consumer and install staticupdate, and the data must
// stay coherent across the switch.
func TestAdaptConvergesProducerConsumer(t *testing.T) {
	const epochs = 8
	name, m := runAdaptive(t, 4, 2, func(p *core.Proc, sp *core.Space) {
		regs := mkRegions(p, sp, 64)
		mine := regs[p.ID()]
		for e := 0; e < epochs; e++ {
			p.StartWrite(mine)
			mine.Data.SetInt64(0, int64(1000*p.ID()+e))
			p.EndWrite(mine)
			p.Barrier(sp)
			for q, r := range regs {
				p.StartRead(r)
				got := r.Data.Int64(0)
				p.EndRead(r)
				if got != int64(1000*q+e) {
					panic("stale read after adaptation")
				}
			}
			p.Barrier(sp)
		}
	})
	if name != "staticupdate" {
		t.Fatalf("converged to %q, want staticupdate", name)
	}
	assertAdaptStats(t, m, 1, "staticupdate", core.PatternProducerConsumer)
}

// TestAdaptConvergesSingleWriter: one processor writes regions homed on
// the others (so writes are not home-confined), everyone reads. The
// controller must pick the dynamic update protocol.
func TestAdaptConvergesSingleWriter(t *testing.T) {
	const epochs = 10
	name, m := runAdaptive(t, 4, 2, func(p *core.Proc, sp *core.Space) {
		regs := mkRegions(p, sp, 64)
		for e := 0; e < epochs; e++ {
			if p.ID() == 0 {
				for _, r := range regs {
					p.StartWrite(r)
					r.Data.SetInt64(0, int64(e))
					p.EndWrite(r)
				}
			}
			p.Barrier(sp)
			for _, r := range regs {
				p.StartRead(r)
				got := r.Data.Int64(0)
				p.EndRead(r)
				if got != int64(e) {
					panic("stale read after adaptation")
				}
			}
			p.Barrier(sp)
		}
	})
	if name != "update" {
		t.Fatalf("converged to %q, want update", name)
	}
	assertAdaptStats(t, m, 1, "update", core.PatternSingleWriter)
}

// TestAdaptConvergesMigratory: lock-mediated read-modify-write bursts on
// a shared counter. Locks plus writes classify migratory.
func TestAdaptConvergesMigratory(t *testing.T) {
	const epochs = 8
	name, m := runAdaptive(t, 4, 1, func(p *core.Proc, sp *core.Space) {
		regs := mkRegions(p, sp, 64)
		ctr := regs[0]
		for e := 0; e < epochs; e++ {
			p.Lock(ctr)
			p.StartWrite(ctr)
			ctr.Data.SetInt64(0, ctr.Data.Int64(0)+1)
			p.EndWrite(ctr)
			p.Unlock(ctr)
			p.Barrier(sp)
		}
		p.StartRead(ctr)
		total := ctr.Data.Int64(0)
		p.EndRead(ctr)
		if total != int64(epochs*p.Procs()) {
			panic("lost increments after adaptation")
		}
	})
	if name != "migratory" {
		t.Fatalf("converged to %q, want migratory", name)
	}
	assertAdaptStats(t, m, 1, "migratory", core.PatternMigratory)
}

// TestAdaptConvergesHomeWrite: write-dominated home-confined updates
// with occasional remote reads. The pull side of the barrier family
// (homewrite) must win over the push side.
func TestAdaptConvergesHomeWrite(t *testing.T) {
	const epochs = 8
	name, m := runAdaptive(t, 4, 2, func(p *core.Proc, sp *core.Space) {
		regs := mkRegions(p, sp, 64)
		mine := regs[p.ID()]
		next := regs[(p.ID()+1)%p.Procs()]
		for e := 0; e < epochs; e++ {
			for w := 0; w < 4; w++ {
				p.StartWrite(mine)
				mine.Data.SetInt64(0, int64(1000*p.ID()+e))
				p.EndWrite(mine)
			}
			p.Barrier(sp)
			p.StartRead(next)
			got := next.Data.Int64(0)
			p.EndRead(next)
			if got != int64(1000*((p.ID()+1)%p.Procs())+e) {
				panic("stale read after adaptation")
			}
			p.Barrier(sp)
		}
	})
	if name != "homewrite" {
		t.Fatalf("converged to %q, want homewrite", name)
	}
	assertAdaptStats(t, m, 1, "homewrite", core.PatternHomeWrite)
}

// TestAdaptStaysOnSCWithoutSignal: a quiet space (no bracket traffic)
// never leaves sc, however many barriers pass.
func TestAdaptStaysOnSCWithoutSignal(t *testing.T) {
	name, m := runAdaptive(t, 2, 1, func(p *core.Proc, sp *core.Space) {
		for e := 0; e < 10; e++ {
			p.Barrier(sp)
		}
	})
	if name != "sc" {
		t.Fatalf("quiet space switched to %q", name)
	}
	for _, a := range m.Adapt {
		if a.Switches != 0 {
			t.Fatalf("quiet space recorded %d switches", a.Switches)
		}
	}
}

// TestAdaptIgnoresOptedOutProtocol: a space manually running a protocol
// without the Adaptive hint (pipeline) is never switched away, even
// under a pattern that would otherwise retarget it.
func TestAdaptIgnoresOptedOutProtocol(t *testing.T) {
	cl, err := core.NewCluster(core.Options{
		Procs:    2,
		Registry: proto.NewRegistry(),
		Adapt:    aggressiveAdapt(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *core.Proc) error {
		sp, err := p.NewSpace("pipeline")
		if err != nil {
			return err
		}
		regs := mkRegions(p, sp, 64)
		mine := regs[p.ID()]
		for e := 0; e < 8; e++ {
			p.StartWrite(mine)
			mine.Data.SetFloat64(0, float64(e))
			p.EndWrite(mine)
			p.Barrier(sp)
		}
		if sp.ProtoName != "pipeline" {
			t.Errorf("opted-out protocol switched to %q", sp.ProtoName)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// assertAdaptStats checks the controller surfaced its state for the
// adapted space: at least minSwitches switches, the expected final
// protocol and pattern.
func assertAdaptStats(t *testing.T, m trace.Metrics, minSwitches uint64, proto, pattern string) {
	t.Helper()
	for _, a := range m.Adapt {
		if a.Protocol == proto {
			if a.Switches < minSwitches {
				t.Fatalf("AdaptStats %+v: want at least %d switches", a, minSwitches)
			}
			if a.Pattern != pattern {
				t.Fatalf("AdaptStats %+v: want pattern %q", a, pattern)
			}
			if a.LastSwitchEpoch == 0 || a.Epochs < a.LastSwitchEpoch {
				t.Fatalf("AdaptStats %+v: inconsistent epochs", a)
			}
			return
		}
	}
	t.Fatalf("no AdaptStats entry with protocol %q in %+v", proto, m.Adapt)
}
