package proto

import (
	"fmt"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/core"
)

// This file is the protocol building-block library sketched in the
// paper's Section 6 ("Protocol development would also be facilitated by
// the creation of a library of protocol building blocks ... We are
// currently attempting to isolate the primitives needed for such a
// library."). The blocks isolate the three mechanisms every protocol in
// this library is built from:
//
//   - Fetcher: a request/reply fetch of a region's contents from its
//     home, optionally registering the requester in the home's sharer
//     set;
//   - Drain: an outstanding-acknowledgement counter a processor can block
//     on, the substrate of every split-phase (pipelined) operation;
//   - SelfInvalidator: dropping locally cached copies of a space at a
//     synchronization point.
//
// The writethrough protocol below is written entirely from these blocks;
// the hand-written protocols in this package predate the block library
// and spell the same patterns out longhand.

// Fetcher serves and issues whole-region fetches over a pair of verbs.
// Embed one per protocol and give it two verb numbers from the protocol's
// verb space.
type Fetcher struct {
	// ReqVerb and the implicit completion path define the wire protocol:
	// requester sends ReqVerb with a waiter in B; the home replies with a
	// completion carrying the region contents.
	ReqVerb uint64
	// RegisterSharer controls whether the home records the requester in
	// the region's directory sharer set (update-family protocols want
	// this; pull-only protocols do not).
	RegisterSharer bool
}

// Fetch blocks until the region's home contents are installed locally.
// Call from StartRead/StartWrite hooks (application thread).
func (f *Fetcher) Fetch(ctx *core.Ctx, r *core.Region) {
	seq := ctx.NewWaiter()
	ctx.SendProto(r.Home, uint64(r.ID), seq, f.ReqVerb, uint64(r.Space.ID), nil)
	m := ctx.Wait(seq)
	copy(r.Data, m.Payload)
	ctx.Recycle(m.Payload)
}

// Serve handles the home side of a fetch; call from Deliver when m.C ==
// ReqVerb.
func (f *Fetcher) Serve(ctx *core.Ctx, r *core.Region, m amnet.Msg) {
	if r == nil || !r.IsHome() {
		panic(fmt.Sprintf("proto: fetch served off-home for %v", core.RegionID(m.A)))
	}
	if f.RegisterSharer {
		r.Dir.Sharers.Add(m.Src)
	}
	ctx.SendComplete(m.Src, m.B, 0, r.Data)
}

// Drain counts outstanding acknowledgements and lets the application
// thread block until they all arrive — the split-phase substrate used by
// the pipeline, update and static update protocols' barriers.
type Drain struct {
	outstanding int
	waitSeq     uint64
}

// Add records n newly outstanding operations.
func (d *Drain) Add(n int) { d.outstanding += n }

// Outstanding returns the current count.
func (d *Drain) Outstanding() int { return d.outstanding }

// Ack records one completion; call from Deliver. It wakes a blocked Wait
// when the count reaches zero.
func (d *Drain) Ack(ctx *core.Ctx) {
	d.outstanding--
	if d.outstanding < 0 {
		panic("proto: drain acknowledged below zero")
	}
	if d.outstanding == 0 && d.waitSeq != 0 {
		seq := d.waitSeq
		d.waitSeq = 0
		ctx.Complete(seq, amnet.Msg{})
	}
}

// Wait blocks the application thread until the count reaches zero.
func (d *Drain) Wait(ctx *core.Ctx) {
	if d.outstanding == 0 {
		return
	}
	d.waitSeq = ctx.NewWaiter()
	ctx.Wait(d.waitSeq)
}

// SelfInvalidate drops every locally cached (non-home) copy in the space
// by resetting its protocol state to zero. Protocols whose readers
// re-fetch on state zero call this at barriers. Each copy's fast-path
// bits are withdrawn first: this is a bulk coherence mutation outside
// any Deliver, so the runtime will not withdraw them for us (see
// core.FastPather).
func SelfInvalidate(ctx *core.Ctx, sp *core.Space) {
	ctx.ForEachRegion(func(r *core.Region) {
		if r.Space == sp && !r.IsHome() {
			ctx.DisableFast(r)
			r.State = 0
		}
	})
}

// ---------------------------------------------------------------------
// writethrough: a protocol composed from the blocks.
// ---------------------------------------------------------------------

// WriteThroughInfo returns the registry entry for the write-through
// protocol: every completed write section ships the region home
// asynchronously (split-phase, drained at barriers); readers pull on
// demand and self-invalidate at barriers. It suits data with scattered
// writers and phase-structured readers — a simpler cousin of the dynamic
// update protocol for cases with few readers, where pushing updates to
// sharers would waste bandwidth.
func WriteThroughInfo() core.Info {
	return core.Info{
		Name:        "writethrough",
		New:         func() core.Protocol { return newWriteThrough() },
		Optimizable: true,
		Null: core.PointSet(0).
			With(core.PointMap).
			With(core.PointUnmap).
			With(core.PointEndRead),
	}
}

// Protocol verbs.
const (
	wtFetch uint64 = iota + 1 // reader → home: pull contents
	wtStore                   // writer → home: install contents (payload)
	wtAck                     // home → writer: installed
)

type writeThrough struct {
	core.Base
	fetch Fetcher
	drain Drain
	// Aggregated path (ctx.Aggregating()): EndWrite marks the region
	// dirty and the store ships at the next synchronization point as one
	// wtStore frame per home, each acknowledged once.
	dirty []*core.Region
	batch *core.ProtoBatcher
}

// wtFlagDirty marks a region on the aggregated path's dirty list.
const wtFlagDirty = 1 << 0

func newWriteThrough() *writeThrough {
	return &writeThrough{fetch: Fetcher{ReqVerb: wtFetch}}
}

func (w *writeThrough) Name() string { return "writethrough" }

func (w *writeThrough) StartRead(ctx *core.Ctx, r *core.Region) {
	if r.IsHome() || r.State == duValid {
		return
	}
	w.fetch.Fetch(ctx, r)
	r.State = duValid
}

// StartWrite fetches current contents so partial-region writes are sound
// (a writer may touch a few slots only).
func (w *writeThrough) StartWrite(ctx *core.Ctx, r *core.Region) {
	if r.IsHome() || r.State == duValid {
		return
	}
	w.fetch.Fetch(ctx, r)
	r.State = duValid
}

// EndWrite ships the contents home, split-phase — immediately on the
// per-region wire path, or deferred to the next synchronization point
// on the aggregated path (stores bound for the same home coalesce into
// one frame; mid-phase readers see the pre-write value, which the
// protocol's barrier-scoped read validity permits).
func (w *writeThrough) EndWrite(ctx *core.Ctx, r *core.Region) {
	if r.IsHome() {
		return
	}
	if ctx.Aggregating() {
		if r.Flags&wtFlagDirty == 0 {
			r.Flags |= wtFlagDirty
			w.dirty = append(w.dirty, r)
		}
		return
	}
	w.drain.Add(1)
	ctx.SendProto(r.Home, uint64(r.ID), 0, wtStore, uint64(r.Space.ID), r.Data)
}

// shipDirty flushes the aggregated path's dirty regions as one wtStore
// frame per home.
func (w *writeThrough) shipDirty(ctx *core.Ctx, sp *core.Space) {
	if len(w.dirty) == 0 {
		return
	}
	if w.batch == nil {
		w.batch = ctx.NewBatcher(sp, wtStore)
	}
	for _, r := range w.dirty {
		r.Flags &^= wtFlagDirty
		w.batch.Add(r.Home, r)
	}
	w.dirty = w.dirty[:0]
	w.drain.Add(w.batch.Flush(ctx, nil))
}

// DeliverBatch installs one writer's aggregated stores and acks the
// frame once. Stores apply unconditionally, exactly like the per-region
// wtStore path (last writer wins; the protocol does not defer at the
// home).
func (w *writeThrough) DeliverBatch(ctx *core.Ctx, sp *core.Space, src amnet.NodeID, verb, tag uint64, recs []core.BatchRecord) {
	if verb != wtStore {
		panic(fmt.Sprintf("proto: writethrough: bad batch verb %d", verb))
	}
	for _, rec := range recs {
		if !rec.R.IsHome() {
			panic(fmt.Sprintf("proto: writethrough: batched store off-home for %v", rec.R.ID))
		}
		copy(rec.R.Data, rec.Data)
	}
	ctx.SendProto(src, 0, 0, wtAck, uint64(sp.ID), nil)
}

// Barrier ships dirty stores, drains them, self-invalidates, and
// synchronizes.
func (w *writeThrough) Barrier(ctx *core.Ctx, sp *core.Space) {
	w.shipDirty(ctx, sp)
	w.drain.Wait(ctx)
	SelfInvalidate(ctx, sp)
	ctx.DefaultBarrier()
}

func (w *writeThrough) FlushSpace(ctx *core.Ctx, sp *core.Space) {
	w.shipDirty(ctx, sp)
	w.drain.Wait(ctx)
}

// MigrateRegion (core.HomeMigrator) drops r from the dirty list if the
// pre-flip flush somehow left it there: a stale entry would ship the
// next synchronization point's wtStore to a home that moved away.
func (w *writeThrough) MigrateRegion(ctx *core.Ctx, r *core.Region, oldHome, newHome amnet.NodeID) {
	for i, d := range w.dirty {
		if d == r {
			w.dirty = append(w.dirty[:i], w.dirty[i+1:]...)
			break
		}
	}
}

// FastBits: every bracket routine early-returns at the home (stores land
// there directly), so home brackets of both kinds are hit-eligible. A
// remote copy supports fast reads once valid; remote writes always ship
// a wtStore from EndWrite and stay on the slow path.
func (w *writeThrough) FastBits(r *core.Region) core.FastBits {
	if r.IsHome() {
		return core.FastRead | core.FastWrite
	}
	if r.State == duValid {
		return core.FastRead
	}
	return 0
}

func (w *writeThrough) Deliver(ctx *core.Ctx, sp *core.Space, r *core.Region, m amnet.Msg) {
	switch m.C {
	case wtFetch:
		w.fetch.Serve(ctx, r, m)
	case wtStore:
		if r == nil || !r.IsHome() {
			panic(fmt.Sprintf("proto: writethrough: store off-home for %v", core.RegionID(m.A)))
		}
		copy(r.Data, m.Payload)
		ctx.SendProto(m.Src, m.A, 0, wtAck, m.D, nil)
	case wtAck:
		w.drain.Ack(ctx)
	default:
		panic(fmt.Sprintf("proto: writethrough: bad verb %d", m.C))
	}
}
