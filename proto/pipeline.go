package proto

import (
	"fmt"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/core"
)

// PipelineInfo returns the registry entry for the write-pipelining
// protocol used for Water's inter-molecular phase (Section 5.2): remote
// write sections accumulate into a zeroed local scratch copy; the
// completed section ships the scratch home asynchronously, where it is
// combined element-wise as float64 addition. Barriers drain the pipeline,
// then self-invalidate cached read copies so the next phase re-reads the
// combined values.
//
// Semantics: regions governed by this protocol are vectors of float64, and
// a write section's meaning is "add my contribution" — exactly the force
// accumulation pattern. Home write sections add directly into the
// authoritative copy. Reads within a phase may observe partial sums;
// phases must be separated by barriers.
func PipelineInfo() core.Info {
	return core.Info{
		Name:        "pipeline",
		New:         func() core.Protocol { return &pipelineProto{} },
		Optimizable: true,
		Null: core.PointSet(0).
			With(core.PointMap).
			With(core.PointUnmap).
			With(core.PointEndRead),
	}
}

// Protocol verbs.
const (
	ppRead uint64 = iota + 1 // remote → home: fetch (B=seq)
	ppAdd                    // writer → home: combine contribution (payload)
	ppAck                    // home → writer: contribution combined
)

type pipelineProto struct {
	core.Base
	outstanding int
	drainSeq    uint64
}

// ppHome is the home-side per-region state: the authoritative bytes saved
// while a home write section accumulates into scratch, plus deliveries
// deferred until the section closes.
type ppHome struct {
	saved    []byte
	deferred []amnet.Msg
}

func (p *pipelineProto) Name() string { return "pipeline" }

func (p *pipelineProto) StartRead(ctx *core.Ctx, r *core.Region) {
	if r.IsHome() || r.State == duValid {
		return
	}
	seq := ctx.NewWaiter()
	ctx.SendProto(r.Home, uint64(r.ID), seq, ppRead, uint64(r.Space.ID), nil)
	m := ctx.Wait(seq)
	copy(r.Data, m.Payload)
	ctx.Recycle(m.Payload)
	r.State = duValid
}

// StartWrite gives the section a zero-initialized scratch copy everywhere:
// a write section's stores are contributions, combined additively at the
// home. Uniform scratch semantics (home included) let compiled code treat
// "store delta" and "+= delta" identically on every processor.
func (p *pipelineProto) StartWrite(ctx *core.Ctx, r *core.Region) {
	if r.IsHome() {
		if r.Writers() == 0 {
			h := ppHomeState(r)
			h.saved = append(h.saved[:0], r.Data...)
			clear(r.Data)
		}
		return
	}
	clear(r.Data)
	r.State = duInvalid // the scratch is not a readable copy
}

func (p *pipelineProto) EndWrite(ctx *core.Ctx, r *core.Region) {
	if r.IsHome() {
		if r.Writers() > 0 {
			return
		}
		// Combine the scratch into the restored authoritative copy, then
		// apply deliveries that arrived during the section.
		h := ppHomeState(r)
		n := len(r.Data) / 8
		for i := 0; i < n; i++ {
			delta := r.Data.Float64(i)
			r.Data.SetFloat64(i, core.RegionData(h.saved).Float64(i)+delta)
		}
		deferred := h.deferred
		h.deferred = nil
		for _, m := range deferred {
			p.Deliver(ctx, r.Space, r, m)
		}
		return
	}
	p.outstanding++
	ctx.SendProto(r.Home, uint64(r.ID), 0, ppAdd, uint64(r.Space.ID), r.Data)
}

// ppHomeState lazily allocates the home-side section state.
func ppHomeState(r *core.Region) *ppHome {
	h, _ := r.Dir.PData.(*ppHome)
	if h == nil {
		h = &ppHome{}
		r.Dir.PData = h
	}
	return h
}

// Barrier drains the pipeline, self-invalidates cached read copies, and
// synchronizes. Invalidation happens before arrival: these are purely
// local copies, all local sections are closed, and every other processor
// drains its own contributions before arriving, so post-barrier re-reads
// observe the fully combined values.
func (p *pipelineProto) Barrier(ctx *core.Ctx, sp *core.Space) {
	if p.outstanding > 0 {
		p.drainSeq = ctx.NewWaiter()
		ctx.Wait(p.drainSeq)
	}
	ctx.ForEachRegion(func(r *core.Region) {
		if r.Space == sp && !r.IsHome() {
			ctx.DisableFast(r)
			r.State = duInvalid
		}
	})
	ctx.DefaultBarrier()
}

func (p *pipelineProto) FlushSpace(ctx *core.Ctx, sp *core.Space) {
	if p.outstanding > 0 {
		p.drainSeq = ctx.NewWaiter()
		ctx.Wait(p.drainSeq)
	}
}

// FastBits: read brackets are free at the home (StartRead and EndRead are
// both no-ops there — deferral is keyed on Writers only) and on a sharer
// with a valid copy (EndRead is a declared null point). Write brackets are
// never eligible: StartWrite swaps in scratch contents and EndWrite
// combines or ships the contribution, on every processor.
func (p *pipelineProto) FastBits(r *core.Region) core.FastBits {
	if r.IsHome() || r.State == duValid {
		return core.FastRead
	}
	return 0
}

func (p *pipelineProto) Deliver(ctx *core.Ctx, sp *core.Space, r *core.Region, m amnet.Msg) {
	if r == nil {
		panic(fmt.Sprintf("proto: pipeline: proc %d: message %d for unknown region %v", ctx.ID(), m.C, core.RegionID(m.A)))
	}
	switch m.C {
	case ppRead, ppAdd:
		// While the home itself is mid-section, r.Data is scratch: defer
		// until EndWrite restores the authoritative copy.
		if r.Writers() > 0 {
			h := ppHomeState(r)
			h.deferred = append(h.deferred, amnet.Msg{Src: m.Src, A: m.A, B: m.B, C: m.C, D: m.D, Payload: append([]byte(nil), m.Payload...)})
			return
		}
		if m.C == ppRead {
			ctx.SendComplete(m.Src, m.B, 0, r.Data)
			return
		}
		// Element-wise float64 combine into the authoritative copy.
		n := min(len(r.Data), len(m.Payload)) / 8
		payload := core.RegionData(m.Payload)
		for i := 0; i < n; i++ {
			r.Data.SetFloat64(i, r.Data.Float64(i)+payload.Float64(i))
		}
		ctx.SendProto(m.Src, m.A, 0, ppAck, m.D, nil)
	case ppAck:
		p.outstanding--
		if p.outstanding == 0 && p.drainSeq != 0 {
			seq := p.drainSeq
			p.drainSeq = 0
			ctx.Complete(seq, amnet.Msg{})
		}
	default:
		panic(fmt.Sprintf("proto: pipeline: bad verb %d", m.C))
	}
}
