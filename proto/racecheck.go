package proto

import (
	"fmt"
	"sync/atomic"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/core"
)

// RaceCheckInfo returns the registry entry for the data-race checking
// protocol — the paper's Section 2.1 example of why protocols need *full*
// access control: "the data-race checking protocol proposed by Larus et
// al. can be executed either before or after accesses", which
// access-fault schemes cannot express (a fault fires before the access
// only).
//
// The protocol moves data like the write-through protocol (pull on read,
// ship home on write-end, drain at barriers) and, in addition, reports
// every section's open and close to the region's home, which maintains
// reader/writer occupancy and counts conflicts: a write section
// overlapping any other processor's section, or a read section overlapping
// another processor's write section. Totals are queried with
// RaceViolations after a barrier.
//
// Detection is sound for the section overlaps the home observes; because
// the notifications ride asynchronous messages, two sections that overlap
// in real time but not in home-arrival order can be missed — the usual
// happens-before slack of dynamic race detectors.
func RaceCheckInfo() core.Info {
	return core.Info{
		Name: "racecheck",
		New:  func() core.Protocol { return newRaceCheck() },
		// The checker's semantics depend on every access running its
		// handlers: never optimizable, no null points. For the same
		// reason the protocol deliberately does not implement
		// core.FastPather — a lock-free bracket hit would skip the
		// occupancy notifications the detector is built on.
		Optimizable: false,
		Null:        0,
	}
}

// Protocol verbs.
const (
	rcFetch uint64 = iota + 1 // reader → home: pull contents
	rcStore                   // writer → home: install contents
	rcAck                     // home → writer: installed
	rcOpen                    // accessor → home: section opened (B: 1=write)
	rcClose                   // accessor → home: section closed (B: 1=write)
)

// rcOccupancy is the home-side per-region occupancy ledger.
type rcOccupancy struct {
	readers map[amnet.NodeID]int
	writers map[amnet.NodeID]int
}

type raceCheck struct {
	core.Base
	fetch      Fetcher
	drain      Drain
	violations atomic.Int64
}

func newRaceCheck() *raceCheck {
	return &raceCheck{fetch: Fetcher{ReqVerb: rcFetch}}
}

func (rc *raceCheck) Name() string { return "racecheck" }

// RaceViolations returns the conflicts the given space's protocol instance
// has counted on this processor (homes count conflicts for the regions
// they own). Call after a barrier for a stable total, and sum across
// processors for the global count.
func RaceViolations(sp *core.Space) int64 {
	rc, ok := sp.Proto.(*raceCheck)
	if !ok {
		panic(fmt.Sprintf("proto: space %d does not run the racecheck protocol", sp.ID))
	}
	return rc.violations.Load()
}

func (rc *raceCheck) StartRead(ctx *core.Ctx, r *core.Region) {
	if !r.IsHome() && r.State != duValid {
		rc.fetch.Fetch(ctx, r)
		r.State = duValid
	}
	rc.drain.Add(1) // notifications are acknowledged via section close
	ctx.SendProto(r.Home, uint64(r.ID), 0, rcOpen, uint64(r.Space.ID), nil)
}

func (rc *raceCheck) EndRead(ctx *core.Ctx, r *core.Region) {
	ctx.SendProto(r.Home, uint64(r.ID), 0, rcClose, uint64(r.Space.ID), nil)
}

func (rc *raceCheck) StartWrite(ctx *core.Ctx, r *core.Region) {
	if !r.IsHome() && r.State != duValid {
		rc.fetch.Fetch(ctx, r)
		r.State = duValid
	}
	rc.drain.Add(1)
	ctx.SendProto(r.Home, uint64(r.ID), 1, rcOpen, uint64(r.Space.ID), nil)
}

func (rc *raceCheck) EndWrite(ctx *core.Ctx, r *core.Region) {
	if !r.IsHome() {
		rc.drain.Add(1)
		ctx.SendProto(r.Home, uint64(r.ID), 0, rcStore, uint64(r.Space.ID), r.Data)
	}
	ctx.SendProto(r.Home, uint64(r.ID), 1, rcClose, uint64(r.Space.ID), nil)
}

func (rc *raceCheck) Barrier(ctx *core.Ctx, sp *core.Space) {
	rc.drain.Wait(ctx)
	SelfInvalidate(ctx, sp)
	ctx.DefaultBarrier()
}

func (rc *raceCheck) FlushSpace(ctx *core.Ctx, sp *core.Space) {
	rc.drain.Wait(ctx)
}

func (rc *raceCheck) Deliver(ctx *core.Ctx, sp *core.Space, r *core.Region, m amnet.Msg) {
	switch m.C {
	case rcFetch:
		rc.fetch.Serve(ctx, r, m)
	case rcStore:
		if r == nil || !r.IsHome() {
			panic(fmt.Sprintf("proto: racecheck: store off-home for %v", core.RegionID(m.A)))
		}
		copy(r.Data, m.Payload)
		ctx.SendProto(m.Src, m.A, 0, rcAck, m.D, nil)
	case rcAck:
		rc.drain.Ack(ctx)
	case rcOpen:
		occ := rc.occupancy(r)
		write := m.B == 1
		// Conflict rules: a write overlaps anyone else's section; a read
		// overlaps anyone else's write.
		for n := range occ.writers {
			if n != m.Src {
				rc.violations.Add(1)
			}
		}
		if write {
			for n := range occ.readers {
				if n != m.Src {
					rc.violations.Add(1)
				}
			}
			occ.writers[m.Src]++
		} else {
			occ.readers[m.Src]++
		}
	case rcClose:
		occ := rc.occupancy(r)
		write := m.B == 1
		tab := occ.readers
		if write {
			tab = occ.writers
		}
		if tab[m.Src] <= 0 {
			panic(fmt.Sprintf("proto: racecheck: unbalanced close from %d on %v", m.Src, r.ID))
		}
		tab[m.Src]--
		if tab[m.Src] == 0 {
			delete(tab, m.Src)
		}
		// The opener's drain entry completes at close.
		ctx.SendProto(m.Src, m.A, 0, rcAck, m.D, nil)
	default:
		panic(fmt.Sprintf("proto: racecheck: bad verb %d", m.C))
	}
}

// occupancy lazily allocates the home's per-region ledger.
func (rc *raceCheck) occupancy(r *core.Region) *rcOccupancy {
	if r == nil || !r.IsHome() {
		panic("proto: racecheck: occupancy off-home")
	}
	occ, _ := r.Dir.PData.(*rcOccupancy)
	if occ == nil {
		occ = &rcOccupancy{readers: map[amnet.NodeID]int{}, writers: map[amnet.NodeID]int{}}
		r.Dir.PData = occ
	}
	return occ
}
