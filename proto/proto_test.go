package proto

import (
	"fmt"
	"testing"

	"github.com/acedsm/ace/internal/core"
)

// run spins up a cluster with the full protocol library and executes fn.
func run(t *testing.T, procs int, defaultProto string, fn func(p *core.Proc) error) *core.Cluster {
	t.Helper()
	cl, err := core.NewCluster(core.Options{
		Procs:           procs,
		Registry:        NewRegistry(),
		DefaultProtocol: defaultProto,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	if err := cl.Run(fn); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return cl
}

func TestRegistryHasAllProtocols(t *testing.T) {
	reg := NewRegistry()
	want := []string{"atomic", "homewrite", "migratory", "null", "pipeline", "racecheck", "sc", "staticupdate", "update", "writethrough"}
	got := reg.Names()
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}

func TestRegisterAllTwiceFails(t *testing.T) {
	reg := NewRegistry()
	if err := RegisterAll(reg); err == nil {
		t.Fatal("duplicate registration should fail")
	}
}

func TestNullProtocolHomeLocal(t *testing.T) {
	run(t, 4, "sc", func(p *core.Proc) error {
		sp, err := p.NewSpace("null")
		if err != nil {
			return err
		}
		id := p.GMalloc(sp, 16)
		r := p.Map(id)
		for i := 0; i < 50; i++ {
			p.StartWrite(r)
			r.Data.SetInt64(0, int64(i*p.ID()))
			p.EndWrite(r)
			p.StartRead(r)
			if r.Data.Int64(0) != int64(i*p.ID()) {
				return fmt.Errorf("null: lost local write")
			}
			p.EndRead(r)
		}
		p.Barrier(sp)
		return nil
	})
}

func TestUpdateProducerConsumer(t *testing.T) {
	const procs, iters = 4, 20
	run(t, procs, "sc", func(p *core.Proc) error {
		sp, err := p.NewSpace("update")
		if err != nil {
			return err
		}
		var id core.RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, 8)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		// Everyone reads once to register as a sharer.
		p.StartRead(r)
		p.EndRead(r)
		p.Barrier(sp)
		for i := 1; i <= iters; i++ {
			if p.ID() == 0 {
				p.StartWrite(r)
				r.Data.SetInt64(0, int64(i))
				p.EndWrite(r)
			}
			p.Barrier(sp)
			p.StartRead(r)
			if got := r.Data.Int64(0); got != int64(i) {
				return fmt.Errorf("update: proc %d iter %d read %d", p.ID(), i, got)
			}
			p.EndRead(r)
			p.Barrier(sp)
		}
		return nil
	})
}

func TestUpdateMultipleWritersDistinctRegions(t *testing.T) {
	const procs, iters = 4, 10
	run(t, procs, "update", func(p *core.Proc) error {
		sp := p.DefaultSpace()
		ids := make([]core.RegionID, procs)
		for root := 0; root < procs; root++ {
			var mine core.RegionID
			if p.ID() == root {
				mine = p.GMalloc(sp, 8)
			}
			ids[root] = p.BroadcastID(root, mine)
		}
		rs := make([]*core.Region, procs)
		for i, id := range ids {
			rs[i] = p.Map(id)
			p.StartRead(rs[i]) // register everywhere
			p.EndRead(rs[i])
		}
		p.Barrier(sp)
		for i := 1; i <= iters; i++ {
			mine := rs[p.ID()]
			p.StartWrite(mine)
			mine.Data.SetInt64(0, int64(p.ID()*1000+i))
			p.EndWrite(mine)
			p.Barrier(sp)
			for q := 0; q < procs; q++ {
				p.StartRead(rs[q])
				if got := rs[q].Data.Int64(0); got != int64(q*1000+i) {
					return fmt.Errorf("proc %d iter %d region %d: got %d", p.ID(), i, q, got)
				}
				p.EndRead(rs[q])
			}
			p.Barrier(sp)
		}
		return nil
	})
}

// TestUpdateCheaperThanSCForProducerConsumer is a shape test: the paper's
// motivation for update protocols is that producer-consumer sharing is
// ill-suited to invalidation. After warmup, the steady-state message count
// per iteration must be lower with the update protocol.
func TestUpdateCheaperThanSCForProducerConsumer(t *testing.T) {
	const procs, iters = 8, 30
	measure := func(protoName string) uint64 {
		var msgs uint64
		cl := run(t, procs, protoName, func(p *core.Proc) error {
			sp := p.DefaultSpace()
			var id core.RegionID
			if p.ID() == 0 {
				id = p.GMalloc(sp, 64)
			}
			id = p.BroadcastID(0, id)
			r := p.Map(id)
			p.StartRead(r)
			p.EndRead(r)
			p.Barrier(sp)
			for i := 0; i < iters; i++ {
				if p.ID() == 0 {
					p.StartWrite(r)
					r.Data.SetInt64(0, int64(i))
					p.EndWrite(r)
				}
				p.Barrier(sp)
				p.StartRead(r)
				if r.Data.Int64(0) != int64(i) {
					return fmt.Errorf("bad value under %s", protoName)
				}
				p.EndRead(r)
				p.Barrier(sp)
			}
			return nil
		})
		msgs = cl.Metrics().Net.MsgsSent
		return msgs
	}
	sc := measure("sc")
	upd := measure("update")
	if upd >= sc {
		t.Fatalf("update protocol used %d messages, sc used %d; update should be cheaper", upd, sc)
	}
}

func TestStaticUpdateEM3DPattern(t *testing.T) {
	const procs, iters = 4, 12
	run(t, procs, "staticupdate", func(p *core.Proc) error {
		sp := p.DefaultSpace()
		ids := make([]core.RegionID, procs)
		for root := 0; root < procs; root++ {
			var mine core.RegionID
			if p.ID() == root {
				mine = p.GMalloc(sp, 8)
			}
			ids[root] = p.BroadcastID(root, mine)
		}
		mine := p.Map(ids[p.ID()])
		// Static neighborhood: read left and right neighbors.
		left := p.Map(ids[(p.ID()+procs-1)%procs])
		right := p.Map(ids[(p.ID()+1)%procs])
		for i := 1; i <= iters; i++ {
			p.StartWrite(mine)
			mine.Data.SetInt64(0, int64(p.ID()*100+i))
			p.EndWrite(mine)
			p.Barrier(sp)
			for _, pair := range []struct {
				r    *core.Region
				node int
			}{{left, (p.ID() + procs - 1) % procs}, {right, (p.ID() + 1) % procs}} {
				p.StartRead(pair.r)
				if got := pair.r.Data.Int64(0); got != int64(pair.node*100+i) {
					return fmt.Errorf("proc %d iter %d neighbor %d: got %d", p.ID(), i, pair.node, got)
				}
				p.EndRead(pair.r)
			}
			p.Barrier(sp)
		}
		return nil
	})
}

// TestStaticUpdateNoSteadyStateMisses verifies the protocol's point: after
// the first iteration, iterations cost a bounded number of messages (the
// pushes and barrier traffic only — no read-miss round trips).
func TestStaticUpdateNoSteadyStateMisses(t *testing.T) {
	const procs = 4
	var iter1, iterN uint64
	cl, err := core.NewCluster(core.Options{Procs: procs, Registry: NewRegistry(), DefaultProtocol: "staticupdate"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *core.Proc) error {
		sp := p.DefaultSpace()
		ids := make([]core.RegionID, procs)
		for root := 0; root < procs; root++ {
			var mine core.RegionID
			if p.ID() == root {
				mine = p.GMalloc(sp, 8)
			}
			ids[root] = p.BroadcastID(root, mine)
		}
		mine := p.Map(ids[p.ID()])
		next := p.Map(ids[(p.ID()+1)%procs])
		doIter := func(i int) error {
			p.StartWrite(mine)
			mine.Data.SetInt64(0, int64(i))
			p.EndWrite(mine)
			p.Barrier(sp)
			p.StartRead(next)
			if next.Data.Int64(0) != int64(i) {
				return fmt.Errorf("iter %d bad", i)
			}
			p.EndRead(next)
			p.Barrier(sp)
			return nil
		}
		if err := doIter(1); err != nil {
			return err
		}
		if p.ID() == 0 {
			iter1 = p.Cluster().Metrics().Net.MsgsSent
		}
		p.GlobalBarrier()
		for i := 2; i <= 6; i++ {
			if err := doIter(i); err != nil {
				return err
			}
		}
		p.GlobalBarrier()
		if p.ID() == 0 {
			iterN = p.Cluster().Metrics().Net.MsgsSent
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	perIterSteady := float64(iterN-iter1) / 5
	if perIterSteady >= float64(iter1) {
		t.Fatalf("steady-state per-iteration cost %.1f not below first-iteration cost %d", perIterSteady, iter1)
	}
}

func TestMigratoryIncrements(t *testing.T) {
	const procs, incs = 4, 50
	run(t, procs, "migratory", func(p *core.Proc) error {
		sp := p.DefaultSpace()
		var id core.RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, 8)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		for i := 0; i < incs; i++ {
			p.StartWrite(r)
			r.Data.SetInt64(0, r.Data.Int64(0)+1)
			p.EndWrite(r)
		}
		p.Barrier(sp)
		p.StartRead(r)
		got := r.Data.Int64(0)
		p.EndRead(r)
		if got != procs*incs {
			return fmt.Errorf("migratory: got %d, want %d", got, procs*incs)
		}
		p.Barrier(sp)
		return nil
	})
}

func TestMigratoryBurstLocality(t *testing.T) {
	// Sequential bursts: proc i does a burst of accesses, passes a baton.
	const procs, burst = 3, 30
	run(t, procs, "migratory", func(p *core.Proc) error {
		sp := p.DefaultSpace()
		var id core.RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, 8)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		for turn := 0; turn < procs; turn++ {
			if turn == p.ID() {
				for i := 0; i < burst; i++ {
					p.StartWrite(r)
					r.Data.SetInt64(0, r.Data.Int64(0)+1)
					p.EndWrite(r)
				}
			}
			p.Barrier(sp)
		}
		p.StartRead(r)
		got := r.Data.Int64(0)
		p.EndRead(r)
		if got != procs*burst {
			return fmt.Errorf("got %d, want %d", got, procs*burst)
		}
		p.Barrier(sp)
		return nil
	})
}

func TestPipelineAccumulation(t *testing.T) {
	const procs, slots = 5, 8
	run(t, procs, "pipeline", func(p *core.Proc) error {
		sp := p.DefaultSpace()
		var id core.RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, slots*8)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		p.Barrier(sp)
		// Every processor contributes (id+1) to every slot.
		p.StartWrite(r)
		for s := 0; s < slots; s++ {
			r.Data.SetFloat64(s, r.Data.Float64(s)+float64(p.ID()+1))
		}
		p.EndWrite(r)
		p.Barrier(sp)
		p.StartRead(r)
		want := float64(procs * (procs + 1) / 2)
		for s := 0; s < slots; s++ {
			if got := r.Data.Float64(s); got != want {
				return fmt.Errorf("pipeline: proc %d slot %d = %v, want %v", p.ID(), s, got, want)
			}
		}
		p.EndRead(r)
		p.Barrier(sp)
		return nil
	})
}

func TestPipelineMultipleRounds(t *testing.T) {
	const procs, rounds = 4, 6
	run(t, procs, "pipeline", func(p *core.Proc) error {
		sp := p.DefaultSpace()
		var id core.RegionID
		if p.ID() == 1 {
			id = p.GMalloc(sp, 8)
		}
		id = p.BroadcastID(1, id)
		r := p.Map(id)
		p.Barrier(sp)
		for round := 1; round <= rounds; round++ {
			p.StartWrite(r)
			r.Data.SetFloat64(0, r.Data.Float64(0)+1)
			p.EndWrite(r)
			p.Barrier(sp)
			p.StartRead(r)
			if got := r.Data.Float64(0); got != float64(procs*round) {
				return fmt.Errorf("round %d: got %v, want %v", round, got, float64(procs*round))
			}
			p.EndRead(r)
			p.Barrier(sp)
		}
		return nil
	})
}

func TestAtomicCounterAssignsDistinctJobs(t *testing.T) {
	const procs, per = 6, 25
	claimed := make([][]int64, procs)
	run(t, procs, "atomic", func(p *core.Proc) error {
		sp := p.DefaultSpace()
		var id core.RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, 8)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		var mine []int64
		for i := 0; i < per; i++ {
			p.StartWrite(r)
			v := r.Data.Int64(0)
			r.Data.SetInt64(0, v+1)
			p.EndWrite(r)
			mine = append(mine, v)
		}
		claimed[p.ID()] = mine
		p.Barrier(sp)
		p.StartRead(r)
		if got := r.Data.Int64(0); got != procs*per {
			return fmt.Errorf("atomic: final counter %d, want %d", got, procs*per)
		}
		p.EndRead(r)
		p.Barrier(sp)
		return nil
	})
	seen := map[int64]bool{}
	for _, mine := range claimed {
		for _, v := range mine {
			if seen[v] {
				t.Fatalf("job %d assigned twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != procs*per {
		t.Fatalf("assigned %d jobs, want %d", len(seen), procs*per)
	}
}

func TestHomeWritePhases(t *testing.T) {
	const procs, phases = 4, 8
	run(t, procs, "homewrite", func(p *core.Proc) error {
		sp := p.DefaultSpace()
		ids := make([]core.RegionID, procs)
		for root := 0; root < procs; root++ {
			var mine core.RegionID
			if p.ID() == root {
				mine = p.GMalloc(sp, 8)
			}
			ids[root] = p.BroadcastID(root, mine)
		}
		mine := p.Map(ids[p.ID()])
		for ph := 1; ph <= phases; ph++ {
			p.StartWrite(mine)
			mine.Data.SetInt64(0, int64(p.ID()*10+ph))
			p.EndWrite(mine)
			p.Barrier(sp)
			for q := 0; q < procs; q++ {
				r := p.Map(ids[q])
				p.StartRead(r)
				if got := r.Data.Int64(0); got != int64(q*10+ph) {
					return fmt.Errorf("proc %d phase %d region %d: got %d", p.ID(), ph, q, got)
				}
				p.EndRead(r)
				p.Unmap(r)
			}
			p.Barrier(sp)
		}
		return nil
	})
}

func TestChangeProtocolAcrossLibrary(t *testing.T) {
	// sc -> update -> null -> sc, checking data integrity at each step.
	const procs = 4
	run(t, procs, "sc", func(p *core.Proc) error {
		sp, err := p.NewSpace("sc")
		if err != nil {
			return err
		}
		var id core.RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, 8)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		if p.ID() == 2 {
			p.StartWrite(r)
			r.Data.SetInt64(0, 1)
			p.EndWrite(r)
		}
		p.GlobalBarrier()
		if err := p.ChangeProtocol(sp, "update"); err != nil {
			return err
		}
		p.StartRead(r)
		if r.Data.Int64(0) != 1 {
			return fmt.Errorf("after sc->update: got %d", r.Data.Int64(0))
		}
		p.EndRead(r)
		p.Barrier(sp)
		if p.ID() == 0 {
			// Home writes under the update protocol.
			p.StartWrite(r)
			r.Data.SetInt64(0, 2)
			p.EndWrite(r)
		}
		p.Barrier(sp)
		p.StartRead(r)
		if r.Data.Int64(0) != 2 {
			return fmt.Errorf("under update: got %d", r.Data.Int64(0))
		}
		p.EndRead(r)
		p.Barrier(sp)
		if err := p.ChangeProtocol(sp, "null"); err != nil {
			return err
		}
		// Under null, only the home touches the region.
		if p.ID() == 0 {
			p.StartWrite(r)
			r.Data.SetInt64(0, 3)
			p.EndWrite(r)
		}
		p.GlobalBarrier()
		if err := p.ChangeProtocol(sp, "sc"); err != nil {
			return err
		}
		p.StartRead(r)
		if r.Data.Int64(0) != 3 {
			return fmt.Errorf("after null->sc: got %d", r.Data.Int64(0))
		}
		p.EndRead(r)
		p.GlobalBarrier()
		return nil
	})
}

func TestWaterPhasePattern(t *testing.T) {
	// The Water optimization from the paper: pipeline during the
	// inter-molecular phase, null during the intra-molecular phase,
	// switching each half-iteration.
	const procs, iters = 4, 4
	run(t, procs, "pipeline", func(p *core.Proc) error {
		sp := p.DefaultSpace()
		ids := make([]core.RegionID, procs)
		for root := 0; root < procs; root++ {
			var mine core.RegionID
			if p.ID() == root {
				mine = p.GMalloc(sp, 8)
			}
			ids[root] = p.BroadcastID(root, mine)
		}
		rs := make([]*core.Region, procs)
		for i, id := range ids {
			rs[i] = p.Map(id)
		}
		p.Barrier(sp)
		for it := 0; it < iters; it++ {
			// Inter phase: everyone adds 1 to every region.
			for _, r := range rs {
				p.StartWrite(r)
				r.Data.SetFloat64(0, r.Data.Float64(0)+1)
				p.EndWrite(r)
			}
			p.Barrier(sp)
			// Intra phase under null: each proc scales its own region.
			if err := p.ChangeProtocol(sp, "null"); err != nil {
				return err
			}
			mine := rs[p.ID()]
			p.StartWrite(mine)
			mine.Data.SetFloat64(0, mine.Data.Float64(0)*2)
			p.EndWrite(mine)
			p.GlobalBarrier()
			if err := p.ChangeProtocol(sp, "pipeline"); err != nil {
				return err
			}
		}
		// Value recurrence: v' = (v + procs) * 2, v0 = 0.
		want := 0.0
		for it := 0; it < iters; it++ {
			want = (want + procs) * 2
		}
		mine := rs[p.ID()]
		p.StartRead(mine)
		got := mine.Data.Float64(0)
		p.EndRead(mine)
		if got != want {
			return fmt.Errorf("proc %d: got %v, want %v", p.ID(), got, want)
		}
		p.GlobalBarrier()
		return nil
	})
}
