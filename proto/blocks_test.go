package proto

import (
	"fmt"
	"testing"

	"github.com/acedsm/ace/internal/core"
)

func TestWriteThroughPhases(t *testing.T) {
	const procs, phases = 4, 6
	run(t, procs, "writethrough", func(p *core.Proc) error {
		sp := p.DefaultSpace()
		ids := make([]core.RegionID, procs)
		for root := 0; root < procs; root++ {
			var mine core.RegionID
			if p.ID() == root {
				mine = p.GMalloc(sp, 16)
			}
			ids[root] = p.BroadcastID(root, mine)
		}
		// Scattered writers: proc p writes region (p+1) mod procs — the
		// point of writethrough over homewrite.
		target := p.Map(ids[(p.ID()+1)%procs])
		for ph := 1; ph <= phases; ph++ {
			p.StartWrite(target)
			target.Data.SetInt64(0, int64(p.ID()*100+ph))
			p.EndWrite(target)
			p.Barrier(sp)
			for q := 0; q < procs; q++ {
				r := p.Map(ids[q])
				p.StartRead(r)
				writer := (q + procs - 1) % procs
				if got := r.Data.Int64(0); got != int64(writer*100+ph) {
					return fmt.Errorf("proc %d phase %d region %d: got %d", p.ID(), ph, q, got)
				}
				p.EndRead(r)
				p.Unmap(r)
			}
			p.Barrier(sp)
		}
		return nil
	})
}

func TestWriteThroughPartialWrites(t *testing.T) {
	// StartWrite fetches current contents, so a writer touching one slot
	// must preserve the others.
	run(t, 2, "writethrough", func(p *core.Proc) error {
		sp := p.DefaultSpace()
		var id core.RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, 24)
			r := p.Map(id)
			p.StartWrite(r)
			r.Data.SetInt64(0, 10)
			r.Data.SetInt64(1, 20)
			r.Data.SetInt64(2, 30)
			p.EndWrite(r)
		}
		id = p.BroadcastID(0, id)
		p.Barrier(sp)
		if p.ID() == 1 {
			r := p.Map(id)
			p.StartWrite(r)
			r.Data.SetInt64(1, 99) // touch only the middle slot
			p.EndWrite(r)
		}
		p.Barrier(sp)
		r := p.Map(id)
		p.StartRead(r)
		if r.Data.Int64(0) != 10 || r.Data.Int64(1) != 99 || r.Data.Int64(2) != 30 {
			return fmt.Errorf("partial write clobbered: %d %d %d",
				r.Data.Int64(0), r.Data.Int64(1), r.Data.Int64(2))
		}
		p.EndRead(r)
		p.Barrier(sp)
		return nil
	})
}

func TestDrainBlock(t *testing.T) {
	// The Drain block's accounting, exercised directly through the
	// writethrough protocol instance.
	var d Drain
	if d.Outstanding() != 0 {
		t.Fatal("fresh drain not zero")
	}
	d.Add(3)
	if d.Outstanding() != 3 {
		t.Fatal("Add failed")
	}
	// Ack below zero must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("over-ack should panic")
		}
	}()
	d.outstanding = 0
	d.Ack(nil)
}

func TestSelfInvalidateOnlyRemote(t *testing.T) {
	run(t, 2, "writethrough", func(p *core.Proc) error {
		sp := p.DefaultSpace()
		var id core.RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, 8)
			r := p.Map(id)
			p.StartWrite(r)
			r.Data.SetInt64(0, 5)
			p.EndWrite(r)
		}
		id = p.BroadcastID(0, id)
		p.Barrier(sp)
		r := p.Map(id)
		p.StartRead(r)
		p.EndRead(r)
		p.Barrier(sp) // self-invalidates remote copies
		if p.ID() == 0 {
			if r.State != 0 && !r.IsHome() {
				return fmt.Errorf("unexpected state")
			}
		} else if r.State != 0 {
			return fmt.Errorf("remote copy not invalidated at barrier")
		}
		return nil
	})
}
