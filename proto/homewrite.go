package proto

import (
	"fmt"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/core"
)

// HomeWriteInfo returns the registry entry for the owner-writes protocol
// used for Blocked Sparse Cholesky (Section 5.2): "data are written only
// by the processors that created them".
//
// Writes are home-local and perform no coherence actions at all — the
// start_write and end_write handlers are null, so the compiler's direct-
// dispatch pass deletes the calls. Remote readers pull a region's contents
// on first use and cache them; barriers self-invalidate the cached copies
// so the next phase re-reads fresh data. Whole regions move in one message
// (user-specified granularity gives bulk transfer for free), which is why
// the paper found the improvement over the default protocol marginal for
// BSC: bulk transfer, not write optimization, dominates.
func HomeWriteInfo() core.Info {
	return core.Info{
		Name:        "homewrite",
		New:         func() core.Protocol { return &homeWriteProto{} },
		Optimizable: true,
		Adapt: core.AdaptHints{
			Adaptive:       true,
			Pattern:        core.PatternHomeWrite,
			HomeWritesOnly: true,
		},
		Null: core.PointSet(0).
			With(core.PointMap).
			With(core.PointUnmap).
			With(core.PointStartWrite).
			With(core.PointEndWrite).
			With(core.PointEndRead),
	}
}

// Protocol verbs.
const hwRead uint64 = 1 // remote → home: fetch (B=seq)

type homeWriteProto struct{ core.Base }

func (h *homeWriteProto) Name() string { return "homewrite" }

func (h *homeWriteProto) StartWrite(ctx *core.Ctx, r *core.Region) {
	if !r.IsHome() {
		panic(fmt.Sprintf("proto: homewrite: proc %d: remote write to %v (writes must be home-local)", ctx.ID(), r.ID))
	}
}

func (h *homeWriteProto) StartRead(ctx *core.Ctx, r *core.Region) {
	if r.IsHome() || r.State == duValid {
		return
	}
	seq := ctx.NewWaiter()
	ctx.SendProto(r.Home, uint64(r.ID), seq, hwRead, uint64(r.Space.ID), nil)
	m := ctx.Wait(seq)
	copy(r.Data, m.Payload)
	ctx.Recycle(m.Payload)
	r.State = duValid
}

// Barrier drops this processor's cached read copies and synchronizes.
// Invalidating before arrival suffices: the copies are purely local, and
// writers are home-local, so everything a post-barrier read fetches from a
// home is the phase's final value.
func (h *homeWriteProto) Barrier(ctx *core.Ctx, sp *core.Space) {
	ctx.ForEachRegion(func(r *core.Region) {
		if r.Space == sp && !r.IsHome() {
			ctx.DisableFast(r)
			r.State = duInvalid
		}
	})
	ctx.DefaultBarrier()
}

// FastBits: at the home every bracket routine is null or an early return
// (writes are home-local and perform no coherence actions), so both kinds
// are always hit-eligible there. A remote copy supports fast reads once
// fetched; remote writes are a protocol violation and stay on the slow
// path so StartWrite's panic still fires.
func (h *homeWriteProto) FastBits(r *core.Region) core.FastBits {
	if r.IsHome() {
		return core.FastRead | core.FastWrite
	}
	if r.State == duValid {
		return core.FastRead
	}
	return 0
}

func (h *homeWriteProto) Deliver(ctx *core.Ctx, sp *core.Space, r *core.Region, m amnet.Msg) {
	if r == nil {
		panic(fmt.Sprintf("proto: homewrite: proc %d: message %d for unknown region %v", ctx.ID(), m.C, core.RegionID(m.A)))
	}
	switch m.C {
	case hwRead:
		// Reply immediately: the protocol's phase discipline (writes in
		// one phase, reads after the barrier) means no read overlaps a
		// write section in a correct program, so end_write can stay a
		// true null handler.
		ctx.SendComplete(m.Src, m.B, 0, r.Data)
	default:
		panic(fmt.Sprintf("proto: homewrite: bad verb %d", m.C))
	}
}
