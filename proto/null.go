package proto

import "github.com/acedsm/ace/internal/core"

// NullInfo returns the registry entry for the null protocol: every access
// point is a null handler, so the compiler's direct-dispatch pass removes
// the calls entirely. Barriers and locks keep their default semantics.
//
// The null protocol performs no coherence actions. It is correct only when
// each processor accesses home-local regions, or regions whose contents
// were fully propagated before the protocol was installed — the situation
// in Water's intra-molecular phase, where the program alternates between a
// null protocol and an update protocol (Section 2.2 of the paper).
func NullInfo() core.Info {
	return core.Info{
		Name:        "null",
		New:         func() core.Protocol { return &nullProto{} },
		Optimizable: true,
		Null: core.PointSet(0).
			With(core.PointMap).
			With(core.PointUnmap).
			With(core.PointStartRead).
			With(core.PointEndRead).
			With(core.PointStartWrite).
			With(core.PointEndWrite),
	}
}

type nullProto struct{ core.Base }

func (*nullProto) Name() string { return "null" }

// FastBits: every access point is null, so every bracket is hit-eligible
// in every state — the runtime analogue of the compiler deleting the
// calls outright.
func (*nullProto) FastBits(r *core.Region) core.FastBits {
	return core.FastRead | core.FastWrite
}
