package proto

import (
	"fmt"
	"testing"

	"github.com/acedsm/ace/internal/core"
)

// ChangeProtocol semantics (Section 3.1): "changing from the default
// protocol to any other protocol results in all cached regions being
// flushed back to their home processors" — and symmetrically, every
// library protocol's FlushSpace must leave homes authoritative. These
// tests drive each protocol through a write → ChangeProtocol → read
// sequence that only succeeds if the flush is correct.

// flushSequence writes under `from`, switches to `to`, and checks the
// data survived at a reader.
func flushSequence(t *testing.T, from, to string, homeWriteOnly bool) {
	t.Helper()
	run(t, 4, from, func(p *core.Proc) error {
		sp := p.DefaultSpace()
		ids := make([]core.RegionID, 4)
		for root := 0; root < 4; root++ {
			var mine core.RegionID
			if p.ID() == root {
				mine = p.GMalloc(sp, 8)
			}
			ids[root] = p.BroadcastID(root, mine)
		}
		// Writer selection: home-restricted protocols write their own
		// region; others write a rotated target (so the dirty copy is
		// remote and must be flushed).
		target := p.ID()
		if !homeWriteOnly {
			target = (p.ID() + 1) % 4
		}
		r := p.Map(ids[target])
		p.StartWrite(r)
		r.Data.SetInt64(0, int64(100+target))
		p.EndWrite(r)
		p.Barrier(sp)
		if err := p.ChangeProtocol(sp, to); err != nil {
			return err
		}
		for q := 0; q < 4; q++ {
			h := p.Map(ids[q])
			p.StartRead(h)
			if got := h.Data.Int64(0); got != int64(100+q) {
				return fmt.Errorf("%s->%s: region %d = %d after change", from, to, q, got)
			}
			p.EndRead(h)
			p.Unmap(h)
		}
		p.GlobalBarrier()
		return nil
	})
}

func TestFlushAcrossProtocolPairs(t *testing.T) {
	cases := []struct {
		from, to      string
		homeWriteOnly bool
	}{
		{"sc", "update", false},
		{"sc", "migratory", false},
		{"update", "sc", false},
		{"migratory", "sc", false},
		{"migratory", "update", false},
		{"writethrough", "sc", false},
		{"atomic", "sc", false},
		{"homewrite", "sc", true},
		{"staticupdate", "sc", true},
		{"sc", "homewrite", true},
	}
	for _, c := range cases {
		t.Run(c.from+"_to_"+c.to, func(t *testing.T) {
			flushSequence(t, c.from, c.to, c.homeWriteOnly)
		})
	}
}

// TestMigratoryOwnershipReturnsOnFlush: a remote processor holds the
// region when the protocol changes; the home must get the data back.
func TestMigratoryOwnershipReturnsOnFlush(t *testing.T) {
	run(t, 2, "migratory", func(p *core.Proc) error {
		sp := p.DefaultSpace()
		var id core.RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, 8)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		if p.ID() == 1 {
			p.StartWrite(r)
			r.Data.SetInt64(0, 77)
			p.EndWrite(r)
			// Proc 1 still owns the region here.
		}
		p.GlobalBarrier()
		if err := p.ChangeProtocol(sp, "sc"); err != nil {
			return err
		}
		if p.ID() == 0 {
			p.StartRead(r)
			if got := r.Data.Int64(0); got != 77 {
				return fmt.Errorf("home lost migrated data: %d", got)
			}
			p.EndRead(r)
		}
		p.GlobalBarrier()
		return nil
	})
}

// TestPipelineFlushDrains: contributions in flight when the protocol
// changes must land before the switch.
func TestPipelineFlushDrains(t *testing.T) {
	run(t, 4, "pipeline", func(p *core.Proc) error {
		sp := p.DefaultSpace()
		var id core.RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, 8)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		p.Barrier(sp)
		p.StartWrite(r)
		r.Data.SetFloat64(0, r.Data.Float64(0)+1)
		p.EndWrite(r)
		// No barrier: the adds are still in flight when the collective
		// ChangeProtocol begins; FlushSpace must drain them.
		if err := p.ChangeProtocol(sp, "sc"); err != nil {
			return err
		}
		p.StartRead(r)
		got := r.Data.Float64(0)
		p.EndRead(r)
		if got != 4 {
			return fmt.Errorf("pipeline flush lost adds: %v", got)
		}
		p.GlobalBarrier()
		return nil
	})
}

// TestStaticUpdateRemoteWritePanics: the protocol's checkable contract.
func TestStaticUpdateRemoteWritePanics(t *testing.T) {
	cl, err := core.NewCluster(core.Options{Procs: 2, Registry: NewRegistry(), DefaultProtocol: "staticupdate"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *core.Proc) error {
		sp := p.DefaultSpace()
		var id core.RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, 8)
		}
		id = p.BroadcastID(0, id)
		if p.ID() == 1 {
			r := p.Map(id)
			p.StartWrite(r) // must panic: writes are home-local
			p.EndWrite(r)
		}
		return nil
	})
	if err == nil {
		t.Fatal("remote write under staticupdate should fail loudly")
	}
}

// TestHomeWriteRemoteWritePanics: same contract for homewrite.
func TestHomeWriteRemoteWritePanics(t *testing.T) {
	cl, err := core.NewCluster(core.Options{Procs: 2, Registry: NewRegistry(), DefaultProtocol: "homewrite"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *core.Proc) error {
		sp := p.DefaultSpace()
		var id core.RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, 8)
		}
		id = p.BroadcastID(0, id)
		if p.ID() == 1 {
			r := p.Map(id)
			p.StartWrite(r)
			p.EndWrite(r)
		}
		return nil
	})
	if err == nil {
		t.Fatal("remote write under homewrite should fail loudly")
	}
}

// TestAtomicReadsSeeFreshValue: StartRead always fetches from the home.
func TestAtomicReadsSeeFreshValue(t *testing.T) {
	run(t, 2, "atomic", func(p *core.Proc) error {
		sp := p.DefaultSpace()
		var id core.RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, 8)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		for i := 1; i <= 10; i++ {
			if p.ID() == 0 {
				p.StartWrite(r)
				r.Data.SetInt64(0, int64(i))
				p.EndWrite(r)
			}
			p.Barrier(sp)
			p.StartRead(r)
			if got := r.Data.Int64(0); got != int64(i) {
				return fmt.Errorf("iter %d: read %d", i, got)
			}
			p.EndRead(r)
			p.Barrier(sp)
		}
		return nil
	})
}

// TestUpdateLateJoiner: a processor that first touches a region long
// after others have been exchanging updates must still read current data.
func TestUpdateLateJoiner(t *testing.T) {
	run(t, 3, "update", func(p *core.Proc) error {
		sp := p.DefaultSpace()
		var id core.RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, 8)
		}
		id = p.BroadcastID(0, id)
		for i := 1; i <= 5; i++ {
			if p.ID() == 0 {
				r := p.Map(id)
				p.StartWrite(r)
				r.Data.SetInt64(0, int64(i))
				p.EndWrite(r)
				p.Unmap(r)
			}
			p.Barrier(sp)
			// Proc 2 joins only at the last iteration.
			if p.ID() != 2 || i == 5 {
				r := p.Map(id)
				p.StartRead(r)
				if got := r.Data.Int64(0); got != int64(i) {
					return fmt.Errorf("proc %d iter %d: read %d", p.ID(), i, got)
				}
				p.EndRead(r)
				p.Unmap(r)
			}
			p.Barrier(sp)
		}
		return nil
	})
}
