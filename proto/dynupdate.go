package proto

import (
	"fmt"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/core"
)

// UpdateInfo returns the registry entry for the dynamic update protocol.
//
// Writers do not acquire exclusive ownership: a completed write section
// ships the region's contents to the home, which applies them and forwards
// the update to every registered sharer. Reads hit the continuously
// updated local copy after a single cold fetch. A barrier drains the
// processor's outstanding updates (each is acknowledged once every sharer
// has applied it), so classic phase-parallel programs keep their meaning.
//
// The protocol assumes writes to a region do not race (one writer per
// region at a time, e.g. by ownership convention or phase structure);
// racing whole-region updates are applied in home-arrival order, last
// writer wins. This is the "dynamic update" protocol of Sections 2.1 and
// 3.3, where it speeds EM3D up 3.5x over the invalidation protocol.
func UpdateInfo() core.Info {
	return core.Info{
		Name:        "update",
		New:         func() core.Protocol { return &updateProto{} },
		Optimizable: true,
		Adapt:       core.AdaptHints{Adaptive: true, Pattern: core.PatternSingleWriter},
		// end_read is NOT null: updates that arrive while a region is in
		// an open section are deferred and applied (and acknowledged)
		// when the section closes, so the end handlers are load-bearing.
		// Contrast staticupdate, whose phase contract lets it declare
		// end_read null.
		Null: core.PointSet(0).
			With(core.PointMap).
			With(core.PointUnmap),
	}
}

// Local cache states.
const (
	duInvalid int32 = iota
	duValid
)

// Protocol verbs.
const (
	duRead    uint64 = iota + 1 // remote → home: register sharer, fetch data (B=seq)
	duWrite                     // writer → home: apply and propagate (payload=data)
	duPush                      // home → sharer: apply update (B=tag, payload=data)
	duPushAck                   // sharer → home: update applied (B=tag)
	duAck                       // home → writer: update fully propagated
)

// updateProto is the per-(space, processor) instance.
type updateProto struct {
	core.Base
	outstanding int    // updates this processor has shipped but not had acknowledged
	drainSeq    uint64 // waiter blocked in Barrier/FlushSpace, 0 if none
	nextTag     uint64
	xacts       map[uint64]duXact // home side: in-flight propagations by tag
}

// duXact tracks one update propagation at the home.
type duXact struct {
	writer   amnet.NodeID
	acksLeft int
}

// duHome is the home-side per-region state: work deferred while the home
// itself holds the region in an open section.
type duHome struct {
	pendingApply [][]byte          // update payloads awaiting application
	applySrc     []amnet.NodeID    // their writers
	pendingReads []core.PendingReq // sharer fetches awaiting a quiet region
}

// duPend is the sharer-side per-region state: an update deferred while the
// local processor holds the region in an open section.
type duPend struct {
	payload []byte
	tags    []uint64
}

func (u *updateProto) Name() string { return "update" }

func (u *updateProto) InitSpace(ctx *core.Ctx, sp *core.Space) {
	u.xacts = make(map[uint64]duXact)
}

func (u *updateProto) StartRead(ctx *core.Ctx, r *core.Region) {
	u.ensureValid(ctx, r)
}

func (u *updateProto) StartWrite(ctx *core.Ctx, r *core.Region) {
	u.ensureValid(ctx, r)
}

// ensureValid fetches a copy from the home on first touch, registering
// this processor as a sharer.
func (u *updateProto) ensureValid(ctx *core.Ctx, r *core.Region) {
	if r.IsHome() || r.State == duValid {
		return
	}
	seq := ctx.NewWaiter()
	ctx.SendProto(r.Home, uint64(r.ID), seq, duRead, uint64(r.Space.ID), nil)
	m := ctx.Wait(seq)
	copy(r.Data, m.Payload)
	ctx.Recycle(m.Payload)
	r.State = duValid
}

func (u *updateProto) EndRead(ctx *core.Ctx, r *core.Region) {
	u.sectionEnd(ctx, r)
}

func (u *updateProto) EndWrite(ctx *core.Ctx, r *core.Region) {
	// Ship the completed write to the home for application and
	// propagation. The home is included via a self-send so deferral
	// logic is uniform.
	u.outstanding++
	ctx.SendProto(r.Home, uint64(r.ID), 0, duWrite, uint64(r.Space.ID), r.Data)
	u.sectionEnd(ctx, r)
}

// sectionEnd performs work deferred while the region was in use.
func (u *updateProto) sectionEnd(ctx *core.Ctx, r *core.Region) {
	if r.InUse() {
		return
	}
	if r.IsHome() {
		u.homeDrain(ctx, r)
		return
	}
	if pend, ok := r.PState.(*duPend); ok && pend != nil {
		r.PState = nil
		copy(r.Data, pend.payload)
		for _, tag := range pend.tags {
			ctx.SendProto(r.Home, uint64(r.ID), tag, duPushAck, uint64(r.Space.ID), nil)
		}
	}
}

// homeDrain applies queued updates and serves queued fetches at the home
// once the region is quiet.
func (u *updateProto) homeDrain(ctx *core.Ctx, r *core.Region) {
	h, _ := r.Dir.PData.(*duHome)
	if h == nil {
		return
	}
	for i, payload := range h.pendingApply {
		u.applyUpdate(ctx, r, h.applySrc[i], payload)
	}
	h.pendingApply, h.applySrc = nil, nil
	reads := h.pendingReads
	h.pendingReads = nil
	for _, req := range reads {
		r.Dir.Sharers.Add(req.Src)
		ctx.SendComplete(req.Src, req.Seq, 0, r.Data)
	}
}

// applyUpdate installs an update at the home and propagates it to sharers.
func (u *updateProto) applyUpdate(ctx *core.Ctx, r *core.Region, writer amnet.NodeID, payload []byte) {
	copy(r.Data, payload)
	targets := r.Dir.Sharers
	targets.Remove(writer)
	if targets.Empty() {
		ctx.SendProto(writer, uint64(r.ID), 0, duAck, uint64(r.Space.ID), nil)
		return
	}
	u.nextTag++
	tag := u.nextTag
	u.xacts[tag] = duXact{writer: writer, acksLeft: targets.Count()}
	targets.ForEach(func(n amnet.NodeID) {
		ctx.SendProto(n, uint64(r.ID), tag, duPush, uint64(r.Space.ID), payload)
	})
}

func (u *updateProto) Barrier(ctx *core.Ctx, sp *core.Space) {
	u.drain(ctx)
	ctx.DefaultBarrier()
}

// drain blocks until every update this processor shipped has been applied
// by all sharers.
func (u *updateProto) drain(ctx *core.Ctx) {
	if u.outstanding == 0 {
		return
	}
	u.drainSeq = ctx.NewWaiter()
	ctx.Wait(u.drainSeq)
}

func (u *updateProto) FlushSpace(ctx *core.Ctx, sp *core.Space) {
	// After a drain the home copies are authoritative and no protocol
	// traffic is in flight; the runtime's reset does the rest.
	u.drain(ctx)
}

// FastBits: reads are hit-eligible exactly when the end-of-section drain
// has nothing to do. At the home, StartRead is a no-op and EndRead only
// matters when work was deferred during an open section — so a quiet
// deferral queue makes read brackets free. On a sharer, StartRead is a
// no-op once the copy is valid and EndRead only installs a deferred push
// (PState non-nil). Writes are never eligible: every EndWrite ships a
// duWrite, home included.
func (u *updateProto) FastBits(r *core.Region) core.FastBits {
	if r.IsHome() {
		if h, _ := r.Dir.PData.(*duHome); h != nil && (len(h.pendingApply) > 0 || len(h.pendingReads) > 0) {
			return 0
		}
		return core.FastRead
	}
	if r.State == duValid && r.PState == nil {
		return core.FastRead
	}
	return 0
}

func (u *updateProto) Deliver(ctx *core.Ctx, sp *core.Space, r *core.Region, m amnet.Msg) {
	if r == nil {
		panic(fmt.Sprintf("proto: update: proc %d: message %d for unknown region %v", ctx.ID(), m.C, core.RegionID(m.A)))
	}
	switch m.C {
	case duRead:
		if r.Writers() > 0 {
			h := homeState(r)
			h.pendingReads = append(h.pendingReads, core.PendingReq{Src: m.Src, Seq: m.B})
			return
		}
		r.Dir.Sharers.Add(m.Src)
		ctx.SendComplete(m.Src, m.B, 0, r.Data)
	case duWrite:
		if r.InUse() {
			h := homeState(r)
			h.pendingApply = append(h.pendingApply, append([]byte(nil), m.Payload...))
			h.applySrc = append(h.applySrc, m.Src)
			return
		}
		u.applyUpdate(ctx, r, m.Src, m.Payload)
	case duPush:
		if r.InUse() {
			pend, _ := r.PState.(*duPend)
			if pend == nil {
				pend = &duPend{}
				r.PState = pend
			}
			pend.payload = append(pend.payload[:0], m.Payload...)
			pend.tags = append(pend.tags, m.B)
			return
		}
		copy(r.Data, m.Payload)
		r.State = duValid
		ctx.SendProto(m.Src, m.A, m.B, duPushAck, m.D, nil)
	case duPushAck:
		x, ok := u.xacts[m.B]
		if !ok {
			panic(fmt.Sprintf("proto: update: proc %d: stray push ack tag %d", ctx.ID(), m.B))
		}
		x.acksLeft--
		if x.acksLeft > 0 {
			u.xacts[m.B] = x
			return
		}
		delete(u.xacts, m.B)
		ctx.SendProto(x.writer, m.A, 0, duAck, m.D, nil)
	case duAck:
		u.outstanding--
		if u.outstanding == 0 && u.drainSeq != 0 {
			seq := u.drainSeq
			u.drainSeq = 0
			ctx.Complete(seq, amnet.Msg{})
		}
	default:
		panic(fmt.Sprintf("proto: update: bad verb %d", m.C))
	}
}

// homeState lazily allocates the home-side deferred-work state.
func homeState(r *core.Region) *duHome {
	h, _ := r.Dir.PData.(*duHome)
	if h == nil {
		h = &duHome{}
		r.Dir.PData = h
	}
	return h
}
