package proto

import (
	"fmt"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/core"
)

// UpdateInfo returns the registry entry for the dynamic update protocol.
//
// Writers do not acquire exclusive ownership: a completed write section
// ships the region's contents to the home, which applies them and forwards
// the update to every registered sharer. Reads hit the continuously
// updated local copy after a single cold fetch. A barrier drains the
// processor's outstanding updates (each is acknowledged once every sharer
// has applied it), so classic phase-parallel programs keep their meaning.
//
// The protocol assumes writes to a region do not race (one writer per
// region at a time, e.g. by ownership convention or phase structure);
// racing whole-region updates are applied in home-arrival order, last
// writer wins. This is the "dynamic update" protocol of Sections 2.1 and
// 3.3, where it speeds EM3D up 3.5x over the invalidation protocol.
func UpdateInfo() core.Info {
	return core.Info{
		Name:        "update",
		New:         func() core.Protocol { return &updateProto{} },
		Optimizable: true,
		Adapt:       core.AdaptHints{Adaptive: true, Pattern: core.PatternSingleWriter},
		// end_read is NOT null: updates that arrive while a region is in
		// an open section are deferred and applied (and acknowledged)
		// when the section closes, so the end handlers are load-bearing.
		// Contrast staticupdate, whose phase contract lets it declare
		// end_read null.
		Null: core.PointSet(0).
			With(core.PointMap).
			With(core.PointUnmap),
	}
}

// Local cache states.
const (
	duInvalid int32 = iota
	duValid
)

// Protocol verbs.
const (
	duRead    uint64 = iota + 1 // remote → home: register sharer, fetch data (B=seq)
	duWrite                     // writer → home: apply and propagate (payload=data)
	duPush                      // home → sharer: apply update (B=tag, payload=data)
	duPushAck                   // sharer → home: update applied (B=tag)
	duAck                       // home → writer: update fully propagated
)

// updateProto is the per-(space, processor) instance.
type updateProto struct {
	core.Base
	outstanding int    // updates/frames this processor has shipped but not had acknowledged
	drainSeq    uint64 // waiter blocked in Barrier/FlushSpace, 0 if none
	nextTag     uint64
	xacts       map[uint64]duXact // home side: in-flight per-region propagations by tag

	// Aggregated path (ctx.Aggregating()): writes mark their region
	// dirty (duFlagDirty) and ship at the next barrier as one duWrite
	// frame per home; the home fans each inbound frame's updates out as
	// one duPush frame per sharer. fxs maps a push frame's tag to the
	// writer-frame transaction it belongs to.
	dirty []*core.Region
	batch *core.ProtoBatcher // writer -> home duWrite frames
	push  *core.ProtoBatcher // home -> sharer duPush frames
	fxs   map[uint64]*duFrameXact
}

// duFlagDirty marks a region on the aggregated path's dirty list. A
// Flags bit, not PState: a sharer that writes can simultaneously hold a
// deferred inbound push there.
const duFlagDirty = 1 << 0

// duXact tracks one per-region update propagation at the home
// (unaggregated wire path).
type duXact struct {
	writer   amnet.NodeID
	acksLeft int
}

// duFrameXact tracks one inbound writer frame at the home: regions not
// yet applied (deferred under an open home section) plus propagated
// push frames not yet acknowledged. The writer's single duAck goes out
// when both reach zero.
type duFrameXact struct {
	writer  amnet.NodeID
	regions int
	await   int
}

// duHome is the home-side per-region state: work deferred while the home
// itself holds the region in an open section.
type duHome struct {
	pendingApply [][]byte          // update payloads awaiting application
	applySrc     []amnet.NodeID    // their writers
	applyFx      []*duFrameXact    // owning frame transaction, nil for per-region updates
	pendingReads []core.PendingReq // sharer fetches awaiting a quiet region
}

// duPend is the sharer-side per-region state: an update deferred while the
// local processor holds the region in an open section.
type duPend struct {
	payload []byte
	tags    []uint64       // per-region pushes to ack (unaggregated wire path)
	frames  []*duPushFrame // aggregated push frames this region holds up
}

// duPushFrame tracks one partially-deferred inbound push frame on a
// sharer: the frame's single tagged ack goes out once every deferred
// record applied.
type duPushFrame struct {
	home  amnet.NodeID
	space uint64
	tag   uint64
	left  int
}

func (u *updateProto) Name() string { return "update" }

func (u *updateProto) InitSpace(ctx *core.Ctx, sp *core.Space) {
	u.xacts = make(map[uint64]duXact)
	u.fxs = make(map[uint64]*duFrameXact)
}

func (u *updateProto) StartRead(ctx *core.Ctx, r *core.Region) {
	u.ensureValid(ctx, r)
}

func (u *updateProto) StartWrite(ctx *core.Ctx, r *core.Region) {
	u.ensureValid(ctx, r)
}

// ensureValid fetches a copy from the home on first touch, registering
// this processor as a sharer.
func (u *updateProto) ensureValid(ctx *core.Ctx, r *core.Region) {
	if r.IsHome() || r.State == duValid {
		return
	}
	seq := ctx.NewWaiter()
	ctx.SendProto(r.Home, uint64(r.ID), seq, duRead, uint64(r.Space.ID), nil)
	m := ctx.Wait(seq)
	copy(r.Data, m.Payload)
	ctx.Recycle(m.Payload)
	r.State = duValid
}

func (u *updateProto) EndRead(ctx *core.Ctx, r *core.Region) {
	u.sectionEnd(ctx, r)
}

func (u *updateProto) EndWrite(ctx *core.Ctx, r *core.Region) {
	if ctx.Aggregating() {
		// Mark dirty; the write ships at the next barrier, coalesced
		// with every other write bound for the same home (shipDirty).
		// Mid-phase remote readers see the pre-write value — the
		// protocol's phase contract only validates reads across
		// barriers, where the frame has drained.
		if r.Flags&duFlagDirty == 0 {
			r.Flags |= duFlagDirty
			u.dirty = append(u.dirty, r)
		}
		u.sectionEnd(ctx, r)
		return
	}
	// Ship the completed write to the home for application and
	// propagation. The home is included via a self-send so deferral
	// logic is uniform.
	u.outstanding++
	ctx.SendProto(r.Home, uint64(r.ID), 0, duWrite, uint64(r.Space.ID), r.Data)
	u.sectionEnd(ctx, r)
}

// sectionEnd performs work deferred while the region was in use.
func (u *updateProto) sectionEnd(ctx *core.Ctx, r *core.Region) {
	if r.InUse() {
		return
	}
	if r.IsHome() {
		u.homeDrain(ctx, r)
		return
	}
	if pend, ok := r.PState.(*duPend); ok && pend != nil {
		r.PState = nil
		copy(r.Data, pend.payload)
		r.State = duValid
		for _, tag := range pend.tags {
			ctx.SendProto(r.Home, uint64(r.ID), tag, duPushAck, uint64(r.Space.ID), nil)
		}
		for _, pf := range pend.frames {
			pf.left--
			if pf.left == 0 {
				ctx.SendProto(pf.home, 0, pf.tag, duPushAck, pf.space, nil)
			}
		}
	}
}

// homeDrain applies queued updates and serves queued fetches at the home
// once the region is quiet. Deferred records of an aggregated writer
// frame (applyFx non-nil) propagate under their frame's transaction;
// the degenerate one-region push frames this produces are still correct
// — deferral at the home is the rare path.
func (u *updateProto) homeDrain(ctx *core.Ctx, r *core.Region) {
	h, _ := r.Dir.PData.(*duHome)
	if h == nil {
		return
	}
	sp := r.Space
	for i, payload := range h.pendingApply {
		if fx := h.applyFx[i]; fx != nil {
			copy(r.Data, payload)
			u.propagate(ctx, r, h.applySrc[i])
			u.flushPush(ctx, sp, fx)
			fx.regions--
			u.frameDone(ctx, sp, fx)
			continue
		}
		u.applyUpdate(ctx, r, h.applySrc[i], payload)
	}
	h.pendingApply, h.applySrc, h.applyFx = nil, nil, nil
	reads := h.pendingReads
	h.pendingReads = nil
	for _, req := range reads {
		r.Dir.Sharers.Add(req.Src)
		ctx.SendComplete(req.Src, req.Seq, 0, r.Data)
	}
}

// applyUpdate installs an update at the home and propagates it to sharers.
func (u *updateProto) applyUpdate(ctx *core.Ctx, r *core.Region, writer amnet.NodeID, payload []byte) {
	copy(r.Data, payload)
	targets := r.Dir.Sharers
	targets.Remove(writer)
	if targets.Empty() {
		ctx.SendProto(writer, uint64(r.ID), 0, duAck, uint64(r.Space.ID), nil)
		return
	}
	u.nextTag++
	tag := u.nextTag
	u.xacts[tag] = duXact{writer: writer, acksLeft: targets.Count()}
	targets.ForEach(func(n amnet.NodeID) {
		ctx.SendProto(n, uint64(r.ID), tag, duPush, uint64(r.Space.ID), payload)
	})
}

func (u *updateProto) Barrier(ctx *core.Ctx, sp *core.Space) {
	u.shipDirty(ctx, sp)
	u.drain(ctx)
	ctx.DefaultBarrier()
}

// shipDirty ships the aggregated path's dirty regions: one duWrite
// frame per remote home (one duAck each), plus direct application for
// regions homed here, whose sharer fan-out rides push frames bound to a
// local writer-frame transaction. No-op when nothing is dirty (and
// always on the unaggregated path, whose EndWrite ships immediately).
func (u *updateProto) shipDirty(ctx *core.Ctx, sp *core.Space) {
	if len(u.dirty) == 0 {
		return
	}
	if u.batch == nil {
		u.batch = ctx.NewBatcher(sp, duWrite)
	}
	var local []*core.Region
	for _, r := range u.dirty {
		r.Flags &^= duFlagDirty
		if r.IsHome() {
			local = append(local, r)
		} else {
			u.batch.Add(r.Home, r)
		}
	}
	u.dirty = u.dirty[:0]
	u.outstanding += u.batch.Flush(ctx, nil)
	if len(local) > 0 {
		// Home-local writes are already in place; propagate them to
		// sharers as one frame transaction so the drain accounting is
		// uniform with remote frames.
		fx := &duFrameXact{writer: ctx.ID()}
		u.outstanding++
		for _, r := range local {
			u.propagate(ctx, r, ctx.ID())
		}
		u.flushPush(ctx, sp, fx)
		u.frameDone(ctx, sp, fx)
	}
}

// propagate queues r's contents for every sharer except the writer on
// the push batcher.
func (u *updateProto) propagate(ctx *core.Ctx, r *core.Region, writer amnet.NodeID) {
	if u.push == nil {
		u.push = ctx.NewBatcher(r.Space, duPush)
	}
	targets := r.Dir.Sharers
	targets.Remove(writer)
	targets.ForEach(func(n amnet.NodeID) { u.push.Add(n, r) })
}

// flushPush sends the pending push frames, binding each frame's tag to
// fx so the acks (one per frame) retire the transaction.
func (u *updateProto) flushPush(ctx *core.Ctx, sp *core.Space, fx *duFrameXact) {
	if u.push == nil {
		u.push = ctx.NewBatcher(sp, duPush)
	}
	fx.await += u.push.Flush(ctx, func(dst amnet.NodeID, regions int) uint64 {
		u.nextTag++
		u.fxs[u.nextTag] = fx
		return u.nextTag
	})
}

// frameDone completes a writer-frame transaction once nothing is
// pending: remote writers get their duAck, the local writer's
// outstanding count drops directly (everything runs under the space's
// engine lock, application thread and pump alike).
func (u *updateProto) frameDone(ctx *core.Ctx, sp *core.Space, fx *duFrameXact) {
	if fx.regions != 0 || fx.await != 0 {
		return
	}
	if fx.writer != ctx.ID() {
		ctx.SendProto(fx.writer, 0, 0, duAck, uint64(sp.ID), nil)
		return
	}
	u.ackOne(ctx)
}

// ackOne retires one outstanding update/frame, waking a blocked drain.
func (u *updateProto) ackOne(ctx *core.Ctx) {
	u.outstanding--
	if u.outstanding == 0 && u.drainSeq != 0 {
		seq := u.drainSeq
		u.drainSeq = 0
		ctx.Complete(seq, amnet.Msg{})
	}
}

// DeliverBatch handles the two aggregated frame kinds. A duWrite frame
// is one writer's barrier-time batch for regions homed here: records
// apply (or defer under an open home section) and propagate to sharers
// as per-sharer duPush frames, all bound to one transaction whose
// completion acks the writer once. A duPush frame is one home's batch
// for this sharer: records apply (or defer through duPend) and the
// frame acks once with its tag.
func (u *updateProto) DeliverBatch(ctx *core.Ctx, sp *core.Space, src amnet.NodeID, verb, tag uint64, recs []core.BatchRecord) {
	switch verb {
	case duWrite:
		fx := &duFrameXact{writer: src}
		for _, rec := range recs {
			r := rec.R
			if r.InUse() {
				h := homeState(r)
				h.pendingApply = append(h.pendingApply, append([]byte(nil), rec.Data...))
				h.applySrc = append(h.applySrc, src)
				h.applyFx = append(h.applyFx, fx)
				fx.regions++
				continue
			}
			copy(r.Data, rec.Data)
			u.propagate(ctx, r, src)
		}
		u.flushPush(ctx, sp, fx)
		u.frameDone(ctx, sp, fx)
	case duPush:
		var pf *duPushFrame
		for _, rec := range recs {
			r := rec.R
			if r.InUse() {
				if pf == nil {
					pf = &duPushFrame{home: src, space: uint64(sp.ID), tag: tag}
				}
				pf.left++
				pend, _ := r.PState.(*duPend)
				if pend == nil {
					pend = &duPend{}
					r.PState = pend
				}
				pend.payload = append(pend.payload[:0], rec.Data...)
				pend.frames = append(pend.frames, pf)
				continue
			}
			copy(r.Data, rec.Data)
			r.State = duValid
		}
		if pf == nil {
			ctx.SendProto(src, 0, tag, duPushAck, uint64(sp.ID), nil)
		}
	default:
		panic(fmt.Sprintf("proto: update: bad batch verb %d", verb))
	}
}

// drain blocks until every update this processor shipped has been applied
// by all sharers.
func (u *updateProto) drain(ctx *core.Ctx) {
	if u.outstanding == 0 {
		return
	}
	u.drainSeq = ctx.NewWaiter()
	ctx.Wait(u.drainSeq)
}

func (u *updateProto) FlushSpace(ctx *core.Ctx, sp *core.Space) {
	// Ship anything still marked dirty first (ChangeProtocol resets the
	// dirty bookkeeping); after a drain the home copies are authoritative
	// and no protocol traffic is in flight.
	u.shipDirty(ctx, sp)
	u.drain(ctx)
}

// MigrateRegion (core.HomeMigrator) drops r from the dirty list if the
// pre-flip flush somehow left it there: a stale entry would ship the
// next barrier's duWrite to a home that moved away. The home-side
// sharer/deferral state lived in Dir.PData, which the runtime's
// base-state reset already cleared on both the old and new home.
func (u *updateProto) MigrateRegion(ctx *core.Ctx, r *core.Region, oldHome, newHome amnet.NodeID) {
	for i, d := range u.dirty {
		if d == r {
			u.dirty = append(u.dirty[:i], u.dirty[i+1:]...)
			break
		}
	}
}

// FastBits: reads are hit-eligible exactly when the end-of-section drain
// has nothing to do. At the home, StartRead is a no-op and EndRead only
// matters when work was deferred during an open section — so a quiet
// deferral queue makes read brackets free. On a sharer, StartRead is a
// no-op once the copy is valid and EndRead only installs a deferred push
// (PState non-nil). Writes are never eligible: every EndWrite ships a
// duWrite, home included.
func (u *updateProto) FastBits(r *core.Region) core.FastBits {
	if r.IsHome() {
		if h, _ := r.Dir.PData.(*duHome); h != nil && (len(h.pendingApply) > 0 || len(h.pendingReads) > 0) {
			return 0
		}
		return core.FastRead
	}
	if r.State == duValid && r.PState == nil {
		return core.FastRead
	}
	return 0
}

func (u *updateProto) Deliver(ctx *core.Ctx, sp *core.Space, r *core.Region, m amnet.Msg) {
	if r == nil && m.C != duPushAck && m.C != duAck {
		// Frame-level acks of the aggregated path are space-level (A=0):
		// one duPushAck per push frame, one duAck per writer frame.
		panic(fmt.Sprintf("proto: update: proc %d: message %d for unknown region %v", ctx.ID(), m.C, core.RegionID(m.A)))
	}
	switch m.C {
	case duRead:
		if r.Writers() > 0 {
			h := homeState(r)
			h.pendingReads = append(h.pendingReads, core.PendingReq{Src: m.Src, Seq: m.B})
			return
		}
		r.Dir.Sharers.Add(m.Src)
		ctx.SendComplete(m.Src, m.B, 0, r.Data)
	case duWrite:
		if r.InUse() {
			h := homeState(r)
			h.pendingApply = append(h.pendingApply, append([]byte(nil), m.Payload...))
			h.applySrc = append(h.applySrc, m.Src)
			h.applyFx = append(h.applyFx, nil)
			return
		}
		u.applyUpdate(ctx, r, m.Src, m.Payload)
	case duPush:
		if r.InUse() {
			pend, _ := r.PState.(*duPend)
			if pend == nil {
				pend = &duPend{}
				r.PState = pend
			}
			pend.payload = append(pend.payload[:0], m.Payload...)
			pend.tags = append(pend.tags, m.B)
			return
		}
		copy(r.Data, m.Payload)
		r.State = duValid
		ctx.SendProto(m.Src, m.A, m.B, duPushAck, m.D, nil)
	case duPushAck:
		if fx, ok := u.fxs[m.B]; ok {
			delete(u.fxs, m.B)
			fx.await--
			u.frameDone(ctx, sp, fx)
			return
		}
		x, ok := u.xacts[m.B]
		if !ok {
			panic(fmt.Sprintf("proto: update: proc %d: stray push ack tag %d", ctx.ID(), m.B))
		}
		x.acksLeft--
		if x.acksLeft > 0 {
			u.xacts[m.B] = x
			return
		}
		delete(u.xacts, m.B)
		ctx.SendProto(x.writer, m.A, 0, duAck, m.D, nil)
	case duAck:
		u.ackOne(ctx)
	default:
		panic(fmt.Sprintf("proto: update: bad verb %d", m.C))
	}
}

// homeState lazily allocates the home-side deferred-work state.
func homeState(r *core.Region) *duHome {
	h, _ := r.Dir.PData.(*duHome)
	if h == nil {
		h = &duHome{}
		r.Dir.PData = h
	}
	return h
}
