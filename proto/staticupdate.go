package proto

import (
	"fmt"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/core"
)

// StaticUpdateInfo returns the registry entry for the static update
// protocol — essentially Falsafi et al.'s application-specific protocol
// for EM3D (Section 3.3).
//
// The protocol exploits static access patterns: during the first
// iteration, remote reads fetch from the home and the home records the
// reader in the region's persistent sharer list. A write marks its region
// dirty. At each barrier, every dirty home region is pushed to exactly its
// recorded sharers, then the barrier completes; subsequent iterations
// therefore run without a single read miss.
//
// Writes must be home-local (the EM3D pattern: each processor updates its
// own nodes and reads its neighbors'). The protocol panics on a remote
// write section, making the assumption checkable.
func StaticUpdateInfo() core.Info {
	return core.Info{
		Name:        "staticupdate",
		New:         func() core.Protocol { return &staticUpdateProto{} },
		Optimizable: true,
		Adapt: core.AdaptHints{
			Adaptive:       true,
			Pattern:        core.PatternProducerConsumer,
			HomeWritesOnly: true,
		},
		Null: core.PointSet(0).
			With(core.PointMap).
			With(core.PointUnmap).
			With(core.PointEndRead).
			With(core.PointStartWrite),
	}
}

// Protocol verbs.
const (
	suRead    uint64 = iota + 1 // remote → home: register sharer, fetch (B=seq)
	suPush                      // home → sharer: barrier-time update (payload)
	suPushAck                   // sharer → home: push applied
)

// staticUpdateProto is the per-(space, processor) instance.
type staticUpdateProto struct {
	core.Base
	dirty       []*core.Region // home regions written since the last barrier
	outstanding int            // pushes/frames shipped, not yet acknowledged
	drainSeq    uint64
	batch       *core.ProtoBatcher // aggregated barrier pushes (lazily created)
}

// suPend defers a push that arrived while the region was in a section.
type suPend struct {
	payload []byte
	acks    int        // per-region pushes deferred (unaggregated wire path)
	frames  []*suFrame // aggregated frames this region holds up
}

// suFrame tracks one partially-deferred inbound push frame on a sharer:
// the frame's single ack goes out once every deferred record applied.
type suFrame struct {
	src   amnet.NodeID
	space uint64
	left  int
}

func (s *staticUpdateProto) Name() string { return "staticupdate" }

func (s *staticUpdateProto) StartRead(ctx *core.Ctx, r *core.Region) {
	if r.IsHome() || r.State == duValid {
		return
	}
	seq := ctx.NewWaiter()
	ctx.SendProto(r.Home, uint64(r.ID), seq, suRead, uint64(r.Space.ID), nil)
	m := ctx.Wait(seq)
	copy(r.Data, m.Payload)
	ctx.Recycle(m.Payload)
	r.State = duValid
}

func (s *staticUpdateProto) StartWrite(ctx *core.Ctx, r *core.Region) {
	if !r.IsHome() {
		panic(fmt.Sprintf("proto: staticupdate: proc %d: remote write to %v (writes must be home-local)", ctx.ID(), r.ID))
	}
}

func (s *staticUpdateProto) EndWrite(ctx *core.Ctx, r *core.Region) {
	if r.PState == nil {
		r.PState = markerDirty
		s.dirty = append(s.dirty, r)
	}
	if r.Writers() == 0 {
		// Serve sharer fetches that arrived during the write section.
		if q, ok := r.Dir.PData.([]core.PendingReq); ok && len(q) > 0 {
			r.Dir.PData = nil
			for _, req := range q {
				r.Dir.Sharers.Add(req.Src)
				ctx.SendComplete(req.Src, req.Seq, 0, r.Data)
			}
		}
	}
}

func (s *staticUpdateProto) EndRead(ctx *core.Ctx, r *core.Region) {
	s.applyDeferred(ctx, r)
}

// applyDeferred installs a push deferred while the region was in use.
func (s *staticUpdateProto) applyDeferred(ctx *core.Ctx, r *core.Region) {
	if r.InUse() || r.IsHome() {
		return
	}
	if pend, ok := r.PState.(*suPend); ok && pend != nil {
		r.PState = nil
		copy(r.Data, pend.payload)
		r.State = duValid
		for i := 0; i < pend.acks; i++ {
			ctx.SendProto(r.Home, uint64(r.ID), 0, suPushAck, uint64(r.Space.ID), nil)
		}
		for _, f := range pend.frames {
			f.left--
			if f.left == 0 {
				ctx.SendProto(f.src, 0, 0, suPushAck, f.space, nil)
			}
		}
	}
}

// Barrier pushes every dirty region to its recorded sharers, waits for all
// acknowledgements, and then performs the underlying barrier. With
// aggregation on, pushes bound for the same sharer coalesce into one
// frame with one ack (R dirty regions x S sharers collapse to at most S
// messages); the per-region wire path below is the reference baseline.
func (s *staticUpdateProto) Barrier(ctx *core.Ctx, sp *core.Space) {
	if ctx.Aggregating() {
		if s.batch == nil {
			s.batch = ctx.NewBatcher(sp, suPush)
		}
		for _, r := range s.dirty {
			r.PState = nil
			r.Dir.Sharers.ForEach(func(n amnet.NodeID) { s.batch.Add(n, r) })
		}
		s.dirty = s.dirty[:0]
		s.outstanding += s.batch.Flush(ctx, nil)
	} else {
		for _, r := range s.dirty {
			r.PState = nil
			r.Dir.Sharers.ForEach(func(n amnet.NodeID) {
				s.outstanding++
				ctx.SendProto(n, uint64(r.ID), 0, suPush, uint64(sp.ID), r.Data)
			})
		}
		s.dirty = s.dirty[:0]
	}
	s.drain(ctx)
	ctx.DefaultBarrier()
}

// DeliverBatch applies one aggregated barrier frame: every dirty region
// of one home that this sharer subscribes to, acknowledged with a
// single space-level suPushAck once all records applied — immediately,
// or at section end for records the local thread holds open (those
// defer through suPend with a shared per-frame countdown).
func (s *staticUpdateProto) DeliverBatch(ctx *core.Ctx, sp *core.Space, src amnet.NodeID, verb, tag uint64, recs []core.BatchRecord) {
	if verb != suPush {
		panic(fmt.Sprintf("proto: staticupdate: bad batch verb %d", verb))
	}
	var frame *suFrame
	for _, rec := range recs {
		r := rec.R
		if r.InUse() {
			if frame == nil {
				frame = &suFrame{src: src, space: uint64(sp.ID)}
			}
			frame.left++
			pend, _ := r.PState.(*suPend)
			if pend == nil {
				pend = &suPend{}
				r.PState = pend
			}
			pend.payload = append(pend.payload[:0], rec.Data...)
			pend.frames = append(pend.frames, frame)
			continue
		}
		copy(r.Data, rec.Data)
		r.State = duValid
	}
	if frame == nil {
		ctx.SendProto(src, 0, 0, suPushAck, uint64(sp.ID), nil)
	}
}

func (s *staticUpdateProto) drain(ctx *core.Ctx) {
	if s.outstanding == 0 {
		return
	}
	s.drainSeq = ctx.NewWaiter()
	ctx.Wait(s.drainSeq)
}

func (s *staticUpdateProto) FlushSpace(ctx *core.Ctx, sp *core.Space) {
	// Writes are home-local, so homes are authoritative; just forget the
	// dirty list and make sure no pushes are in flight.
	s.dirty = nil
	s.drain(ctx)
}

// MigrateRegion (core.HomeMigrator) drops r from the dirty list if the
// pre-flip flush somehow left it there: after the flip this processor
// may no longer be r's home, and a barrier push from a stale entry
// would address a directory that moved away. Sharer state needs no
// action — it lives in the directory the runtime reassigned, and the
// flip's base-state reset makes every reader re-fetch from the new
// home (re-registering there as it does).
func (s *staticUpdateProto) MigrateRegion(ctx *core.Ctx, r *core.Region, oldHome, newHome amnet.NodeID) {
	for i, d := range s.dirty {
		if d == r {
			s.dirty = append(s.dirty[:i], s.dirty[i+1:]...)
			break
		}
	}
}

// FastBits: reads are hit-eligible at the home unconditionally (home
// StartRead returns immediately and home EndRead's applyDeferred bails on
// IsHome) and on a sharer whose copy is valid with no deferred push
// (EndRead must install a pending suPend). Writes are never eligible:
// EndWrite is load-bearing at the home — dirty-list bookkeeping plus
// serving fetches deferred during the section — and remote writes panic.
func (s *staticUpdateProto) FastBits(r *core.Region) core.FastBits {
	if r.IsHome() {
		return core.FastRead
	}
	if r.State == duValid && r.PState == nil {
		return core.FastRead
	}
	return 0
}

func (s *staticUpdateProto) Deliver(ctx *core.Ctx, sp *core.Space, r *core.Region, m amnet.Msg) {
	if r == nil && m.C != suPushAck {
		// suPushAck may be space-level (A=0): the single ack of an
		// aggregated frame. Everything else names a region.
		panic(fmt.Sprintf("proto: staticupdate: proc %d: message %d for unknown region %v", ctx.ID(), m.C, core.RegionID(m.A)))
	}
	switch m.C {
	case suRead:
		if r.Writers() > 0 {
			q, _ := r.Dir.PData.([]core.PendingReq)
			r.Dir.PData = append(q, core.PendingReq{Src: m.Src, Seq: m.B})
			return
		}
		r.Dir.Sharers.Add(m.Src)
		ctx.SendComplete(m.Src, m.B, 0, r.Data)
	case suPush:
		if r.InUse() {
			pend, _ := r.PState.(*suPend)
			if pend == nil {
				pend = &suPend{}
				r.PState = pend
			}
			pend.payload = append(pend.payload[:0], m.Payload...)
			pend.acks++
			return
		}
		copy(r.Data, m.Payload)
		r.State = duValid
		ctx.SendProto(m.Src, m.A, 0, suPushAck, m.D, nil)
	case suPushAck:
		s.outstanding--
		if s.outstanding == 0 && s.drainSeq != 0 {
			seq := s.drainSeq
			s.drainSeq = 0
			ctx.Complete(seq, amnet.Msg{})
		}
	default:
		panic(fmt.Sprintf("proto: staticupdate: bad verb %d", m.C))
	}
}

// markerDirty is a sentinel stored in Region.PState on home regions that
// are on the dirty list.
var markerDirty = new(struct{})
