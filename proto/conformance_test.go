package proto

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/acedsm/ace/internal/core"
)

// Cross-protocol conformance: a randomized, turn-based schedule of reads
// and writes is executed under several protocols and checked against a
// sequential memory model. Turns are separated by barriers, so every
// protocol in the library must make each read observe the model's value —
// the protocols differ in *how* data moves, never in *what* a correctly
// synchronized program reads.

// schedOp is one operation in a schedule.
type schedOp struct {
	proc   int
	write  bool
	region int
	value  int64
}

// genSchedule builds a random turn-based schedule over nRegions regions.
func genSchedule(rng *rand.Rand, procs, nRegions, nTurns int) []schedOp {
	var ops []schedOp
	val := int64(1)
	for t := 0; t < nTurns; t++ {
		proc := rng.Intn(procs)
		region := rng.Intn(nRegions)
		if rng.Intn(2) == 0 {
			ops = append(ops, schedOp{proc: proc, write: true, region: region, value: val})
			val++
		} else {
			ops = append(ops, schedOp{proc: proc, region: region})
		}
	}
	return ops
}

// setupScheduleRegions allocates nRegions regions homed round-robin
// (region r at proc r%procs), broadcasts their ids, maps them everywhere
// and registers every processor as a sharer so update-family protocols
// push here, finishing at a barrier.
func setupScheduleRegions(p *core.Proc, sp *core.Space, nRegions int) []*core.Region {
	procs := p.Procs()
	ids := make([]core.RegionID, nRegions)
	var mine []core.RegionID
	for r := 0; r < nRegions; r++ {
		if r%procs == p.ID() {
			mine = append(mine, p.GMalloc(sp, 8))
		}
	}
	for root := 0; root < procs; root++ {
		cnt := 0
		for r := 0; r < nRegions; r++ {
			if r%procs == root {
				cnt++
			}
		}
		var got []core.RegionID
		if root == p.ID() {
			got = p.BroadcastIDs(root, mine)
		} else {
			got = p.BroadcastIDs(root, make([]core.RegionID, cnt))
		}
		i := 0
		for r := 0; r < nRegions; r++ {
			if r%procs == root {
				ids[r] = got[i]
				i++
			}
		}
	}
	hs := make([]*core.Region, nRegions)
	for r, id := range ids {
		hs[r] = p.Map(id)
		p.StartRead(hs[r])
		p.EndRead(hs[r])
	}
	p.Barrier(sp)
	return hs
}

// runSchedule executes the schedule under the named protocol and reports
// the first divergence from the sequential model.
func runSchedule(t *testing.T, protoName string, procs, nRegions int, ops []schedOp) {
	t.Helper()
	cl, err := core.NewCluster(core.Options{Procs: procs, Registry: NewRegistry(), DefaultProtocol: protoName})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *core.Proc) error {
		// Every processor tracks its own copy of the sequential model
		// (identical by construction; per-proc to keep the test itself
		// race-free).
		model := make([]int64, nRegions)
		sp := p.DefaultSpace()
		hs := setupScheduleRegions(p, sp, nRegions)
		for i, op := range ops {
			if op.proc == p.ID() {
				h := hs[op.region]
				if op.write {
					p.StartWrite(h)
					h.Data.SetInt64(0, op.value)
					p.EndWrite(h)
				} else {
					p.StartRead(h)
					got := h.Data.Int64(0)
					p.EndRead(h)
					want := model[op.region]
					if got != want {
						return fmt.Errorf("%s: op %d: proc %d read region %d = %d, model %d",
							protoName, i, p.ID(), op.region, got, want)
					}
				}
			}
			// Everyone tracks the model and synchronizes between turns.
			if op.write {
				model[op.region] = op.value
			}
			p.Barrier(sp)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("protocol %s: %v", protoName, err)
	}
}

func TestProtocolConformanceRandomSchedules(t *testing.T) {
	// Protocols with unrestricted writers.
	protocols := []string{"sc", "migratory", "update", "atomic", "writethrough"}
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const procs, nRegions, nTurns = 4, 5, 40
		ops := genSchedule(rng, procs, nRegions, nTurns)
		for _, protoName := range protocols {
			t.Run(fmt.Sprintf("%s/seed%d", protoName, seed), func(t *testing.T) {
				runSchedule(t, protoName, procs, nRegions, ops)
			})
		}
	}
}

// TestHomeWriterConformance covers the write-restricted protocols
// (homewrite, staticupdate): the schedule only lets a region's home write
// it.
func TestHomeWriterConformance(t *testing.T) {
	for seed := int64(10); seed < 13; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const procs, nRegions, nTurns = 3, 4, 30
		ops := genSchedule(rng, procs, nRegions, nTurns)
		for i := range ops {
			if ops[i].write {
				// Redirect the write to the region's home.
				ops[i].proc = ops[i].region % procs
			}
		}
		for _, protoName := range []string{"homewrite", "staticupdate"} {
			t.Run(fmt.Sprintf("%s/seed%d", protoName, seed), func(t *testing.T) {
				runSchedule(t, protoName, procs, nRegions, ops)
			})
		}
	}
}
