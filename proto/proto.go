// Package proto is the Ace protocol library: reusable coherence protocols
// that applications associate with spaces to match each data structure's
// access pattern (Raghavachari & Rogers, PPoPP 1997).
//
// The library contains, besides the runtime's built-in sequentially
// consistent invalidation protocol ("sc"):
//
//   - "null": no coherence actions at all. Correct only while every access
//     touches home-local data or data propagated beforehand; used for
//     phases with purely processor-local access (Water's intra-molecular
//     phase).
//   - "update": a dynamic update protocol. Writers need not acquire
//     exclusive ownership; each completed write is propagated through the
//     home to all registered sharers (Barnes-Hut bodies, EM3D).
//   - "staticupdate": builds sharer lists during the first iteration and
//     thereafter pushes each dirty region to exactly its sharers at
//     barriers — Falsafi et al.'s protocol for EM3D.
//   - "migratory": data migrates with exclusive ownership to each accessor;
//     suited to data used in bursts by one processor at a time.
//   - "pipeline": split-phase additive writes. Remote write sections
//     accumulate into a local scratch copy that is shipped home
//     asynchronously and combined element-wise (float64 sum); barriers
//     drain the pipeline (Water's inter-molecular force accumulation).
//   - "atomic": home-serialized read-modify-write sections; acquiring a
//     write section both queues for the region's home-side lock and
//     fetches the data in a single round trip (TSP's job counter).
//   - "homewrite": data written only by its home (creating) processor;
//     readers pull on demand and self-invalidate at barriers (Blocked
//     Sparse Cholesky).
//   - "writethrough": completed write sections ship the region home
//     split-phase; readers pull and self-invalidate at barriers. Built
//     entirely from the protocol building blocks of Section 6 (see
//     blocks.go).
//   - "racecheck": a data-race checking protocol in the spirit of Larus
//     et al.'s LCM — the paper's Section 2.1 example of why full access
//     control matters (handlers both before and after accesses).
//
// Each protocol's registry entry declares whether the compiler may
// optimize its calls and which invocation points are null handlers, as in
// the paper's system configuration file.
package proto

import "github.com/acedsm/ace/internal/core"

// Protocols returns the registry entries for every protocol in the
// library (excluding the built-in "sc", which every registry already has).
func Protocols() []core.Info {
	return []core.Info{
		NullInfo(),
		UpdateInfo(),
		StaticUpdateInfo(),
		MigratoryInfo(),
		PipelineInfo(),
		AtomicInfo(),
		HomeWriteInfo(),
		WriteThroughInfo(),
		RaceCheckInfo(),
	}
}

// RegisterAll registers the whole library with reg.
func RegisterAll(reg *core.Registry) error {
	for _, info := range Protocols() {
		if err := reg.Register(info); err != nil {
			return err
		}
	}
	return nil
}

// NewRegistry returns a registry containing "sc" plus the whole library.
func NewRegistry() *core.Registry {
	reg := core.NewRegistry()
	if err := RegisterAll(reg); err != nil {
		panic(err)
	}
	return reg
}
