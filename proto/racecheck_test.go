package proto

import (
	"fmt"
	"testing"

	"github.com/acedsm/ace/internal/core"
)

// sumViolations gathers the global conflict count after a barrier.
func sumViolations(p *core.Proc, sp *core.Space) int64 {
	return p.AllReduceInt64(core.OpSum, RaceViolations(sp))
}

// TestRaceCheckCleanProgram: a properly phased program reports zero
// conflicts.
func TestRaceCheckCleanProgram(t *testing.T) {
	run(t, 4, "racecheck", func(p *core.Proc) error {
		sp := p.DefaultSpace()
		ids := make([]core.RegionID, 4)
		for root := 0; root < 4; root++ {
			var mine core.RegionID
			if p.ID() == root {
				mine = p.GMalloc(sp, 8)
			}
			ids[root] = p.BroadcastID(root, mine)
		}
		for iter := 1; iter <= 4; iter++ {
			mine := p.Map(ids[p.ID()])
			p.StartWrite(mine)
			mine.Data.SetInt64(0, int64(iter))
			p.EndWrite(mine)
			p.Unmap(mine)
			p.Barrier(sp)
			for q := 0; q < 4; q++ {
				r := p.Map(ids[q])
				p.StartRead(r)
				if r.Data.Int64(0) != int64(iter) {
					return fmt.Errorf("phase data wrong")
				}
				p.EndRead(r)
				p.Unmap(r)
			}
			p.Barrier(sp)
		}
		if v := sumViolations(p, sp); v != 0 {
			return fmt.Errorf("clean program reported %d conflicts", v)
		}
		return nil
	})
}

// TestRaceCheckDetectsWriteRace: everyone writes the same region with no
// synchronization; the checker must flag it.
func TestRaceCheckDetectsWriteRace(t *testing.T) {
	run(t, 4, "racecheck", func(p *core.Proc) error {
		sp := p.DefaultSpace()
		var id core.RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, 8)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		p.Barrier(sp)
		// Hold write sections open across a rendezvous so the overlap is
		// certain: the region's home is processor 0, which also runs the
		// reduction, and each processor's reduction contribution is
		// FIFO-ordered behind its section-open notification — so all
		// opens reach the home before any close can be sent.
		p.StartWrite(r)
		r.Data.SetInt64(0, int64(p.ID()))
		p.AllReduceInt64(core.OpSum, 1) // not a space barrier: sections stay open
		p.EndWrite(r)
		p.Barrier(sp)
		if v := sumViolations(p, sp); v == 0 {
			return fmt.Errorf("overlapping writes not detected")
		}
		return nil
	})
}

// TestRaceCheckDetectsReadWriteRace: a reader holds a section open while
// a writer enters.
func TestRaceCheckDetectsReadWriteRace(t *testing.T) {
	run(t, 2, "racecheck", func(p *core.Proc) error {
		sp := p.DefaultSpace()
		var id core.RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, 8)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		p.Barrier(sp)
		if p.ID() == 1 {
			p.StartRead(r)
		}
		p.Broadcast(1, []byte("reader-open"))
		if p.ID() == 0 {
			p.StartWrite(r)
			r.Data.SetInt64(0, 5)
			p.EndWrite(r)
		}
		p.Broadcast(0, []byte("writer-done"))
		if p.ID() == 1 {
			p.EndRead(r)
		}
		p.Barrier(sp)
		if v := sumViolations(p, sp); v == 0 {
			return fmt.Errorf("read/write overlap not detected")
		}
		return nil
	})
}

// TestRaceViolationsPanicsOnWrongSpace documents the accessor's contract.
func TestRaceViolationsPanicsOnWrongSpace(t *testing.T) {
	run(t, 1, "sc", func(p *core.Proc) error {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for non-racecheck space")
			}
		}()
		RaceViolations(p.DefaultSpace())
		return nil
	})
}
