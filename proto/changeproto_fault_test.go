package proto

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/faultnet"
)

// ChangeProtocol conformance under faults: every optimizable protocol
// is switched away from and back mid-schedule, with concurrent traffic
// on both sides of each switch, on clean / jittery / lossy transports.
// The flush-to-base semantics of ChangeProtocol mean the sequential
// model must keep holding across both switches whatever the wire does.

// faultPolicyNames orders the transport conditions of the matrix.
var faultPolicyNames = []string{"clean", "jittery", "lossy"}

// faultPolicyFor builds the named transport condition; "clean" is nil
// (no fault layer).
func faultPolicyFor(name string, seed int64) *faultnet.Policy {
	switch name {
	case "jittery":
		return &faultnet.Policy{
			Seed:   seed,
			Delay:  100 * time.Microsecond,
			Jitter: 400 * time.Microsecond,
		}
	case "lossy":
		return &faultnet.Policy{
			Seed:        seed,
			Delay:       50 * time.Microsecond,
			DupProb:     0.15,
			DropProb:    0.15,
			ReorderProb: 0.15,
		}
	}
	return nil
}

// runSwitchSchedule runs the first half of the schedule under protoName,
// switches the space to other (verifying the flushed state), runs the
// second half under other, switches back, and finishes with a
// home-writer round — all against the sequential model.
func runSwitchSchedule(t *testing.T, protoName, other string, procs, nRegions int, ops []schedOp, pol *faultnet.Policy) {
	t.Helper()
	cl, err := core.NewCluster(core.Options{
		Procs:           procs,
		Registry:        NewRegistry(),
		DefaultProtocol: protoName,
		Faults:          pol,
		// A divergence makes peers stall at the next barrier; fail typed
		// rather than hang the suite.
		SyncTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *core.Proc) error {
		model := make([]int64, nRegions)
		sp := p.DefaultSpace()
		hs := setupScheduleRegions(p, sp, nRegions)
		runHalf := func(half []schedOp, offset int, active string) error {
			for i, op := range half {
				if op.proc == p.ID() {
					h := hs[op.region]
					if op.write {
						p.StartWrite(h)
						h.Data.SetInt64(0, op.value)
						p.EndWrite(h)
					} else {
						p.StartRead(h)
						got := h.Data.Int64(0)
						p.EndRead(h)
						if want := model[op.region]; got != want {
							return fmt.Errorf("%s: op %d: proc %d read region %d = %d, model %d",
								active, offset+i, p.ID(), op.region, got, want)
						}
					}
				}
				if op.write {
					model[op.region] = op.value
				}
				p.Barrier(sp)
			}
			return nil
		}
		checkAll := func(stage string) error {
			for r := 0; r < nRegions; r++ {
				p.StartRead(hs[r])
				got := hs[r].Data.Int64(0)
				p.EndRead(hs[r])
				if want := model[r]; got != want {
					return fmt.Errorf("%s: region %d = %d, model %d", stage, r, got, want)
				}
			}
			return nil
		}
		half := len(ops) / 2
		if err := runHalf(ops[:half], 0, protoName); err != nil {
			return err
		}
		if err := p.ChangeProtocol(sp, other); err != nil {
			return err
		}
		if err := checkAll("after switch to " + other); err != nil {
			return err
		}
		p.Barrier(sp)
		if err := runHalf(ops[half:], half, other); err != nil {
			return err
		}
		if err := p.ChangeProtocol(sp, protoName); err != nil {
			return err
		}
		// A home write is legal under every protocol, restricted or not.
		for r := 0; r < nRegions; r++ {
			if r%procs == p.ID() {
				p.StartWrite(hs[r])
				hs[r].Data.SetInt64(0, model[r]+100)
				p.EndWrite(hs[r])
			}
			model[r] += 100
		}
		p.Barrier(sp)
		if err := checkAll("after switch back to " + protoName); err != nil {
			return err
		}
		p.Barrier(sp)
		return nil
	})
	if err != nil {
		t.Fatalf("%s⇄%s: %v", protoName, other, err)
	}
}

// TestChangeProtocolUnderFaultMatrix is the protocol × fault-policy
// matrix for mid-run protocol switches: every optimizable protocol that
// takes the turn-based schedule, on every transport condition.
// (pipeline, whose contract is additive rather than last-writer-wins,
// has its own test below; "null" is not coherent by contract.)
func TestChangeProtocolUnderFaultMatrix(t *testing.T) {
	protocols := []string{
		"sc", "migratory", "update", "atomic", "writethrough",
		"homewrite", "staticupdate", "racecheck",
	}
	const procs, nRegions, nTurns, seed = 4, 5, 30, 42
	for _, protoName := range protocols {
		// Switch to a protocol with unrestricted writers so the second
		// half of the schedule stays legal as generated.
		other := "sc"
		if protoName == "sc" {
			other = "update"
		}
		rng := rand.New(rand.NewSource(seed))
		ops := genSchedule(rng, procs, nRegions, nTurns)
		if protoName == "homewrite" || protoName == "staticupdate" {
			half := len(ops) / 2
			for i := range ops[:half] {
				if ops[i].write {
					ops[i].proc = ops[i].region % procs
				}
			}
		}
		for _, polName := range faultPolicyNames {
			protoName, other, polName := protoName, other, polName
			ops := ops
			t.Run(fmt.Sprintf("%s/%s", protoName, polName), func(t *testing.T) {
				t.Parallel()
				runSwitchSchedule(t, protoName, other, procs, nRegions, ops, faultPolicyFor(polName, seed))
			})
		}
	}
}

// TestAdaptiveControllerUnderFaults covers controller-driven switching
// on each transport condition: a cluster started on sc with the online
// controller enabled runs a read-dominated home-writer workload, the
// controller must converge on staticupdate mid-schedule without ever
// breaking the sequential model, and a manual ChangeProtocol issued on
// top of the controller's choice must flush and compose with it (both go
// through the same collective).
func TestAdaptiveControllerUnderFaults(t *testing.T) {
	const procs, nRegions, iters, seed = 4, 5, 8, 42
	for _, polName := range faultPolicyNames {
		polName := polName
		t.Run(polName, func(t *testing.T) {
			t.Parallel()
			cl, err := core.NewCluster(core.Options{
				Procs:           procs,
				Registry:        NewRegistry(),
				DefaultProtocol: "sc",
				Adapt:           &core.AdaptConfig{EpochBarriers: 2, Hysteresis: 2, Cooldown: 1, MinOps: 1},
				Faults:          faultPolicyFor(polName, seed),
				SyncTimeout:     30 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			err = cl.Run(func(p *core.Proc) error {
				sp := p.DefaultSpace()
				hs := setupScheduleRegions(p, sp, nRegions)
				model := make([]int64, nRegions)
				checkAll := func(stage string) error {
					for r := 0; r < nRegions; r++ {
						p.StartRead(hs[r])
						got := hs[r].Data.Int64(0)
						p.EndRead(hs[r])
						if want := model[r]; got != want {
							return fmt.Errorf("%s: region %d = %d, model %d (installed: %s)",
								stage, r, got, want, sp.ProtoName)
						}
					}
					return nil
				}
				for e := 0; e < iters; e++ {
					for r := 0; r < nRegions; r++ {
						v := int64(100*e + r + 1)
						if r%procs == p.ID() {
							p.StartWrite(hs[r])
							hs[r].Data.SetInt64(0, v)
							p.EndWrite(hs[r])
						}
						model[r] = v
					}
					p.Barrier(sp)
					if err := checkAll(fmt.Sprintf("iteration %d", e)); err != nil {
						return err
					}
					p.Barrier(sp)
				}
				if sp.ProtoName != "staticupdate" {
					return fmt.Errorf("controller landed on %q, want staticupdate", sp.ProtoName)
				}
				if err := p.ChangeProtocol(sp, "sc"); err != nil {
					return err
				}
				if err := checkAll("after manual switch to sc"); err != nil {
					return err
				}
				p.Barrier(sp)
				return nil
			})
			if err != nil {
				t.Fatalf("adaptive/%s: %v", polName, err)
			}
		})
	}
}

// TestPipelineChangeProtocolUnderFaults covers the one optimizable
// protocol with additive write semantics: every processor contributes
// an addend per turn, the space switches to sc (flushed sums must
// survive) and back (accumulation must resume), on each transport
// condition.
func TestPipelineChangeProtocolUnderFaults(t *testing.T) {
	const procs, turns, seed = 4, 10, 42
	for _, polName := range faultPolicyNames {
		polName := polName
		t.Run(polName, func(t *testing.T) {
			t.Parallel()
			cl, err := core.NewCluster(core.Options{
				Procs:           procs,
				Registry:        NewRegistry(),
				DefaultProtocol: "pipeline",
				Faults:          faultPolicyFor(polName, seed),
				SyncTimeout:     30 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			err = cl.Run(func(p *core.Proc) error {
				sp := p.DefaultSpace()
				hs := setupScheduleRegions(p, sp, 1)
				h := hs[0]
				model := 0.0
				perTurn := float64(procs * (procs + 1) / 2)
				turn := func(i int) error {
					p.StartWrite(h)
					h.Data.SetFloat64(0, h.Data.Float64(0)+float64(p.ID()+1))
					p.EndWrite(h)
					p.Barrier(sp)
					model += perTurn
					p.StartRead(h)
					got := h.Data.Float64(0)
					p.EndRead(h)
					if got != model {
						return fmt.Errorf("turn %d: sum = %v, model %v", i, got, model)
					}
					p.Barrier(sp)
					return nil
				}
				for i := 0; i < turns; i++ {
					if err := turn(i); err != nil {
						return err
					}
				}
				if err := p.ChangeProtocol(sp, "sc"); err != nil {
					return err
				}
				p.StartRead(h)
				got := h.Data.Float64(0)
				p.EndRead(h)
				if got != model {
					return fmt.Errorf("after switch to sc: sum = %v, model %v", got, model)
				}
				p.Barrier(sp)
				if err := p.ChangeProtocol(sp, "pipeline"); err != nil {
					return err
				}
				return turn(turns)
			})
			if err != nil {
				t.Fatalf("pipeline/%s: %v", polName, err)
			}
		})
	}
}
