package proto

import (
	"fmt"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/core"
)

// AtomicInfo returns the registry entry for the atomic read-modify-write
// protocol, the "better management of accesses to a counter" that speeds
// up TSP in Section 5.2.
//
// A write section acquires the region's home-side queue and fetches the
// current contents in a single round trip; ending the section ships the
// modified contents back and releases the queue in one (asynchronous)
// message, so the home can hand the fresh data to the next waiter
// immediately. Compare the invalidation protocol, where each counter
// bump costs an ownership transfer through whichever processor last
// touched the counter.
//
// Read sections always fetch fresh contents from the home.
func AtomicInfo() core.Info {
	return core.Info{
		Name:        "atomic",
		New:         func() core.Protocol { return &atomicProto{} },
		Optimizable: false, // RMW sections are ordering-sensitive
		Null: core.PointSet(0).
			With(core.PointMap).
			With(core.PointUnmap).
			With(core.PointEndRead),
	}
}

// Protocol verbs.
const (
	atAcq    uint64 = iota + 1 // requester → home: acquire+fetch (B=seq)
	atRel                      // holder → home: contents + release (payload)
	atRelAck                   // home → ex-holder: release processed
	atGet                      // reader → home: fetch snapshot (B=seq)
)

// atHome is the home-side per-region queue state.
type atHome struct {
	holder  amnet.NodeID // -1 when free
	waiting []core.PendingReq
}

type atomicProto struct {
	core.Base
	outstanding int
	drainSeq    uint64
}

func (a *atomicProto) Name() string { return "atomic" }

func (a *atomicProto) RegionCreated(ctx *core.Ctx, r *core.Region) {
	if r.IsHome() {
		r.Dir.PData = &atHome{holder: -1}
	}
}

// atHomeState returns the home-side queue, creating it lazily (regions
// can enter the protocol through ChangeProtocol, which resets directory
// state).
func atHomeState(r *core.Region) *atHome {
	h, _ := r.Dir.PData.(*atHome)
	if h == nil {
		h = &atHome{holder: -1}
		r.Dir.PData = h
	}
	return h
}

// StartWrite acquires the home-side queue and fetches the contents: one
// round trip for remote processors, a direct queue operation at the home
// (home accesses cost no messages, as on the paper's hardware).
func (a *atomicProto) StartWrite(ctx *core.Ctx, r *core.Region) {
	if r.IsHome() {
		h := atHomeState(r)
		if h.holder < 0 {
			h.holder = ctx.ID()
			return // the home copy is authoritative
		}
		seq := ctx.NewWaiter()
		h.waiting = append(h.waiting, core.PendingReq{Src: ctx.ID(), Seq: seq})
		m := ctx.Wait(seq)
		copy(r.Data, m.Payload)
		ctx.Recycle(m.Payload)
		return
	}
	seq := ctx.NewWaiter()
	ctx.SendProto(r.Home, uint64(r.ID), seq, atAcq, uint64(r.Space.ID), nil)
	m := ctx.Wait(seq)
	copy(r.Data, m.Payload)
	ctx.Recycle(m.Payload)
}

// EndWrite ships the contents back and releases the queue asynchronously;
// the home releases directly.
func (a *atomicProto) EndWrite(ctx *core.Ctx, r *core.Region) {
	if r.IsHome() {
		a.release(ctx, r, ctx.ID())
		return
	}
	a.outstanding++
	ctx.SendProto(r.Home, uint64(r.ID), 0, atRel, uint64(r.Space.ID), r.Data)
}

// release hands the region's queue to the next waiter at the home. The
// current contents of r.Data are authoritative. Caller holds the runtime
// mutex at the home.
func (a *atomicProto) release(ctx *core.Ctx, r *core.Region, from amnet.NodeID) {
	h := atHomeState(r)
	if h.holder != from {
		panic(fmt.Sprintf("proto: atomic: proc %d: release of %v by %d, holder %d", ctx.ID(), r.ID, from, h.holder))
	}
	if len(h.waiting) == 0 {
		h.holder = -1
		return
	}
	next := h.waiting[0]
	h.waiting = h.waiting[1:]
	h.holder = next.Src
	if next.Src == ctx.ID() {
		ctx.Complete(next.Seq, amnet.Msg{Payload: append([]byte(nil), r.Data...)})
		return
	}
	ctx.SendComplete(next.Src, next.Seq, 0, r.Data)
}

// StartRead fetches a fresh snapshot from the home.
func (a *atomicProto) StartRead(ctx *core.Ctx, r *core.Region) {
	if r.IsHome() {
		return
	}
	seq := ctx.NewWaiter()
	ctx.SendProto(r.Home, uint64(r.ID), seq, atGet, uint64(r.Space.ID), nil)
	m := ctx.Wait(seq)
	copy(r.Data, m.Payload)
	ctx.Recycle(m.Payload)
}

func (a *atomicProto) Barrier(ctx *core.Ctx, sp *core.Space) {
	a.drain(ctx)
	ctx.DefaultBarrier()
}

func (a *atomicProto) FlushSpace(ctx *core.Ctx, sp *core.Space) {
	a.drain(ctx)
}

func (a *atomicProto) drain(ctx *core.Ctx) {
	if a.outstanding == 0 {
		return
	}
	a.drainSeq = ctx.NewWaiter()
	ctx.Wait(a.drainSeq)
}

// FastBits: only home reads are hit-eligible — home StartRead returns
// immediately (the home copy is authoritative) and EndRead is null.
// Remote reads always fetch a fresh snapshot, and write sections on any
// processor are queue acquire/release transactions, so neither may skip
// the protocol.
func (a *atomicProto) FastBits(r *core.Region) core.FastBits {
	if r.IsHome() {
		return core.FastRead
	}
	return 0
}

func (a *atomicProto) Deliver(ctx *core.Ctx, sp *core.Space, r *core.Region, m amnet.Msg) {
	if r == nil {
		panic(fmt.Sprintf("proto: atomic: proc %d: message %d for unknown region %v", ctx.ID(), m.C, core.RegionID(m.A)))
	}
	switch m.C {
	case atAcq:
		h := atHomeState(r)
		if h.holder < 0 {
			h.holder = m.Src
			ctx.SendComplete(m.Src, m.B, 0, r.Data)
			return
		}
		h.waiting = append(h.waiting, core.PendingReq{Src: m.Src, Seq: m.B})
	case atRel:
		copy(r.Data, m.Payload)
		ctx.SendProto(m.Src, m.A, 0, atRelAck, m.D, nil)
		a.release(ctx, r, m.Src)
	case atRelAck:
		a.outstanding--
		if a.outstanding == 0 && a.drainSeq != 0 {
			seq := a.drainSeq
			a.drainSeq = 0
			ctx.Complete(seq, amnet.Msg{})
		}
	case atGet:
		ctx.SendComplete(m.Src, m.B, 0, r.Data)
	default:
		panic(fmt.Sprintf("proto: atomic: bad verb %d", m.C))
	}
}
