package proto

import (
	"fmt"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/core"
)

// MigratoryInfo returns the registry entry for the migratory protocol.
//
// The region migrates, with exclusive ownership, to whichever processor
// accesses it — reads and writes alike. A processor that has the region
// keeps it until another processor asks. This suits data accessed in
// bursts by one processor at a time (task descriptors, per-phase work
// items); for actively shared data it degenerates to ping-pong.
//
// Because the owner always holds the latest data, a writer never needs a
// separate invalidation round: acquiring the region is one home
// transaction.
func MigratoryInfo() core.Info {
	return core.Info{
		Name:        "migratory",
		New:         func() core.Protocol { return &migratoryProto{} },
		Optimizable: false, // exclusive access ordering is semantically visible
		Adapt:       core.AdaptHints{Adaptive: true, Pattern: core.PatternMigratory},
		Null: core.PointSet(0).
			With(core.PointMap).
			With(core.PointUnmap),
	}
}

// Local states.
const (
	mgInvalid int32 = iota
	mgOwned
)

// Flag bits.
const (
	mgFlagPendRevoke uint32 = 1 << iota
	mgFlagFetching          // acquire outstanding; a revoke seen now refers
	// to a grant already ordered ahead of it (per-pair FIFO) and must wait
	// for the section it will open.
)

// Protocol verbs.
const (
	mgReq    uint64 = iota + 1 // requester → home: acquire (B=seq)
	mgRevoke                   // home → owner: give the region back
	mgData                     // owner → home: region contents
	mgFlush                    // owner → home: flush at protocol change (B=seq)
)

// Pending request kinds at the home.
const (
	mgkRemote int = iota + 1
	mgkHome
)

type migratoryProto struct{ core.Base }

func (m *migratoryProto) Name() string { return "migratory" }

func (m *migratoryProto) StartRead(ctx *core.Ctx, r *core.Region)  { m.acquire(ctx, r) }
func (m *migratoryProto) StartWrite(ctx *core.Ctx, r *core.Region) { m.acquire(ctx, r) }

// acquire obtains exclusive ownership of r.
func (m *migratoryProto) acquire(ctx *core.Ctx, r *core.Region) {
	if r.IsHome() {
		d := r.Dir
		for d.Owner >= 0 || d.Busy || len(d.Waiting) > 0 {
			seq := ctx.NewWaiter()
			d.Waiting = append(d.Waiting, core.PendingReq{Kind: mgkHome, Src: ctx.ID(), Seq: seq})
			m.kick(ctx, r)
			ctx.Wait(seq)
		}
		return
	}
	if r.State == mgOwned {
		return
	}
	r.Flags |= mgFlagFetching
	seq := ctx.NewWaiter()
	ctx.SendProto(r.Home, uint64(r.ID), seq, mgReq, uint64(r.Space.ID), nil)
	reply := ctx.Wait(seq)
	copy(r.Data, reply.Payload)
	ctx.Recycle(reply.Payload)
	r.State = mgOwned
	r.Flags &^= mgFlagFetching
}

func (m *migratoryProto) EndRead(ctx *core.Ctx, r *core.Region)  { m.release(ctx, r) }
func (m *migratoryProto) EndWrite(ctx *core.Ctx, r *core.Region) { m.release(ctx, r) }

// release performs deferred revocations once the last section closes, and
// at the home serves queued requests.
func (m *migratoryProto) release(ctx *core.Ctx, r *core.Region) {
	if r.IsHome() {
		m.kick(ctx, r)
		return
	}
	if !r.InUse() && r.Flags&mgFlagPendRevoke != 0 {
		r.Flags &^= mgFlagPendRevoke
		r.State = mgInvalid
		ctx.SendProto(r.Home, uint64(r.ID), 0, mgData, uint64(r.Space.ID), r.Data)
	}
}

// kick serves the home's request queue while possible.
func (m *migratoryProto) kick(ctx *core.Ctx, r *core.Region) {
	d := r.Dir
	for !d.Busy && len(d.Waiting) > 0 {
		req := d.Waiting[0]
		// A remote grant conflicts with open home sections.
		if req.Kind == mgkRemote && r.InUse() {
			return
		}
		d.Waiting = d.Waiting[1:]
		if d.Owner >= 0 {
			d.Busy = true
			d.Cur = req
			ctx.SendProto(d.Owner, uint64(r.ID), 0, mgRevoke, uint64(r.Space.ID), nil)
			return
		}
		m.grant(ctx, r, req)
	}
}

// grant hands the region to the queued requester. The home's copy is
// current (Owner < 0).
func (m *migratoryProto) grant(ctx *core.Ctx, r *core.Region, req core.PendingReq) {
	if req.Kind == mgkHome {
		ctx.Complete(req.Seq, amnet.Msg{})
		return
	}
	r.Dir.Owner = req.Src
	ctx.SendComplete(req.Src, req.Seq, 0, r.Data)
}

// FastBits: while a processor owns the region outright, every bracket is
// a no-op — acquire returns immediately and release has no revocation to
// serve — so both kinds are hit-eligible. At the home that means a
// quiescent directory (no owner, no transfer in flight, nobody queued:
// a queued request makes release's kick load-bearing); on a remote owner
// it means mgOwned with no pending-revoke or in-flight-fetch flag. This
// is independent of Optimizable above: that gates the *compiler's*
// call-deletion, which would lose the section counts these runtime hits
// still maintain.
func (m *migratoryProto) FastBits(r *core.Region) core.FastBits {
	if r.IsHome() {
		d := r.Dir
		if d.Owner >= 0 || d.Busy || len(d.Waiting) > 0 {
			return 0
		}
		return core.FastRead | core.FastWrite
	}
	if r.State == mgOwned && r.Flags == 0 {
		return core.FastRead | core.FastWrite
	}
	return 0
}

func (m *migratoryProto) Deliver(ctx *core.Ctx, sp *core.Space, r *core.Region, msg amnet.Msg) {
	if r == nil {
		panic(fmt.Sprintf("proto: migratory: proc %d: message %d for unknown region %v", ctx.ID(), msg.C, core.RegionID(msg.A)))
	}
	switch msg.C {
	case mgReq:
		r.Dir.Waiting = append(r.Dir.Waiting, core.PendingReq{Kind: mgkRemote, Src: msg.Src, Seq: msg.B})
		m.kick(ctx, r)
	case mgRevoke:
		if r.InUse() || r.Flags&mgFlagFetching != 0 {
			r.Flags |= mgFlagPendRevoke
			return
		}
		r.State = mgInvalid
		ctx.SendProto(msg.Src, msg.A, 0, mgData, msg.D, r.Data)
	case mgData:
		d := r.Dir
		if !d.Busy || d.Owner != msg.Src {
			panic(fmt.Sprintf("proto: migratory: proc %d: stray data from %d on %v", ctx.ID(), msg.Src, r.ID))
		}
		copy(r.Data, msg.Payload)
		d.Owner = -1
		cur := d.Cur
		d.Busy = false
		m.grant(ctx, r, cur)
		m.kick(ctx, r)
	case mgFlush:
		d := r.Dir
		if d.Owner != msg.Src {
			panic(fmt.Sprintf("proto: migratory: proc %d: flush from non-owner %d on %v", ctx.ID(), msg.Src, r.ID))
		}
		copy(r.Data, msg.Payload)
		d.Owner = -1
		ctx.SendComplete(msg.Src, msg.B, 0, nil)
	default:
		panic(fmt.Sprintf("proto: migratory: bad verb %d", msg.C))
	}
}

func (m *migratoryProto) FlushSpace(ctx *core.Ctx, sp *core.Space) {
	var owned []*core.Region
	ctx.ForEachRegion(func(r *core.Region) {
		if r.Space != sp || r.IsHome() {
			return
		}
		if r.State == mgOwned {
			owned = append(owned, r)
		}
		r.State = mgInvalid
		r.Flags = 0
	})
	for _, r := range owned {
		seq := ctx.NewWaiter()
		ctx.SendProto(r.Home, uint64(r.ID), seq, mgFlush, uint64(sp.ID), r.Data)
		ctx.Wait(seq)
	}
}
