package ace

// The benchmark harness for the paper's evaluation artifacts, one
// testing.B target per figure and table:
//
//	go test -bench BenchmarkFig7a  -benchmem .   # Figure 7a rows
//	go test -bench BenchmarkFig7b  -benchmem .   # Figure 7b rows
//	go test -bench BenchmarkTable4 -benchmem .   # Table 4 cells
//
// Each sub-benchmark executes one full benchmark run (setup plus the
// timed phase) per iteration; the paper-style tables with iteration-level
// timing, traffic and speedups come from `go run ./cmd/acebench`.

import (
	"fmt"
	"testing"

	"github.com/acedsm/ace/internal/apps/apputil"
	"github.com/acedsm/ace/internal/apps/barneshut"
	"github.com/acedsm/ace/internal/apps/bsc"
	"github.com/acedsm/ace/internal/apps/em3d"
	"github.com/acedsm/ace/internal/apps/tsp"
	"github.com/acedsm/ace/internal/apps/water"
	"github.com/acedsm/ace/internal/bench"
	"github.com/acedsm/ace/internal/compiler"
	"github.com/acedsm/ace/internal/rtiface"
	"github.com/acedsm/ace/internal/table4"
	"github.com/acedsm/ace/proto"
)

const benchProcs = 8

// benchApps enumerates the five benchmarks with laptop-scale inputs.
// custom=true selects each benchmark's application-specific protocols
// (the Figure 7b configuration).
func benchApps(custom bool) map[string]bench.AppFunc {
	e := em3d.Config{Nodes: 128, Degree: 8, PctRemote: 20, Steps: 5, Seed: 42}
	b := barneshut.Config{Bodies: 128, Steps: 3, Theta: 1.0, Eps: 0.5, DT: 0.025, Seed: 17}
	w := water.Config{Molecules: 48, Steps: 3, DT: 0.001, Seed: 5}
	t := tsp.Config{Cities: 9, Seed: 7}
	c := bsc.Config{Blocks: 8, BlockSize: 12, Bandwidth: 3, Seed: 3}
	if custom {
		e.Proto = "staticupdate"
		b.Proto = "update"
		w.PhaseProtocols = true
		t.CounterProto = "atomic"
		c.Proto = "homewrite"
	}
	return map[string]bench.AppFunc{
		"barnes-hut": func(rt rtiface.RT) (apputil.Result, error) { return barneshut.Run(rt, b) },
		"bsc":        func(rt rtiface.RT) (apputil.Result, error) { return bsc.Run(rt, c) },
		"em3d":       func(rt rtiface.RT) (apputil.Result, error) { return em3d.Run(rt, e) },
		"tsp":        func(rt rtiface.RT) (apputil.Result, error) { return tsp.Run(rt, t) },
		"water":      func(rt rtiface.RT) (apputil.Result, error) { return water.Run(rt, w) },
	}
}

// BenchmarkFig7a measures every benchmark on the CRL baseline and the Ace
// runtime under the sequentially consistent protocol (Figure 7a).
func BenchmarkFig7a(b *testing.B) {
	for name, app := range benchApps(false) {
		b.Run(name+"/crl", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunCRL(benchProcs, app); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/ace", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunAce(benchProcs, app); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7b measures every benchmark on Ace under the sequentially
// consistent protocol and under its application-specific protocols
// (Figure 7b).
func BenchmarkFig7b(b *testing.B) {
	sc := benchApps(false)
	custom := benchApps(true)
	for name := range sc {
		b.Run(name+"/sc", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunAce(benchProcs, sc[name]); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/custom", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunAce(benchProcs, custom[name]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBracket measures the cost a StartRead/EndRead pair adds under
// each observability mode. The disabled mode is the regression guard for
// the near-zero-cost claim: it must report 0 B/op.
func BenchmarkBracket(b *testing.B) {
	modes := []struct {
		name string
		cfg  *TraceConfig
	}{
		{"disabled", nil},
		{"metrics", &TraceConfig{Metrics: true}},
		{"events", &TraceConfig{Metrics: true, Events: 4096}},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			cl, err := NewCluster(Options{Procs: 1, Trace: m.cfg})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			err = cl.Run(func(p *Proc) error {
				id := p.GMalloc(p.DefaultSpace(), 8)
				r := p.Map(id)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.StartRead(r)
					p.EndRead(r)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkTable4 measures every compiler kernel at every optimization
// level plus the hand-written version (Table 4).
func BenchmarkTable4(b *testing.B) {
	cfg := table4.Config{
		N: 64, Degree: 5, Steps: 3,
		Blocks: 6, BlockSize: 6, Band: 2,
		Jobs: 12, Cities: 8,
	}
	decls := proto.NewRegistry().Decls()
	for _, k := range table4.Kernels() {
		prog := k.Build(cfg)
		for _, lvl := range bench.Table4Levels {
			compiled, err := compiler.Compile(prog, decls, lvl)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%s", k.Name, lvl), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := bench.RunKernelVM(4, k, cfg, compiled); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(k.Name+"/hand", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunKernelHand(4, k, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
