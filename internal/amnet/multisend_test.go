package amnet

import (
	"sync"
	"testing"
	"time"
)

func TestSharedAllocPoolExempt(t *testing.T) {
	for _, n := range []int{1, 64, 100, 4096} {
		b := SharedAlloc(n)
		if len(b) != n {
			t.Fatalf("SharedAlloc(%d) len = %d", n, len(b))
		}
		if cap(b)%2 == 0 {
			t.Fatalf("SharedAlloc(%d) cap %d is even — collides with a pool class", n, cap(b))
		}
		// Recycling a shared buffer must be a no-op: a later Alloc must
		// not hand the same backing array back out.
		b[0] = 0xAB
		Recycle(b)
		c := Alloc(n)
		if len(c) > 0 && &c[0] == &b[0] {
			t.Fatalf("SharedAlloc(%d) buffer re-issued by the pool after Recycle", n)
		}
	}
	if SharedAlloc(0) != nil {
		t.Error("SharedAlloc(0) should be nil")
	}
}

// TestSendMultiSharesOneBuffer: every destination of a SendMulti on the
// in-process fabric receives the same backing array (the payload is
// materialized once), the contents are right, and the caller's buffer
// is untouched and still owned by the caller.
func TestSendMultiSharesOneBuffer(t *testing.T) {
	const nodes = 5
	nw := newTestNet(t, nodes)
	eps := nw.Endpoints()
	ms, ok := eps[0].(MultiSender)
	if !ok {
		t.Fatal("chan endpoint does not implement MultiSender")
	}

	var mu sync.Mutex
	var got []Msg
	done := make(chan struct{})
	for i := 1; i < nodes; i++ {
		eps[i].Register(9, func(m Msg) {
			mu.Lock()
			got = append(got, m)
			if len(got) == nodes-1 {
				close(done)
			}
			mu.Unlock()
		})
	}

	orig := []byte("shared-payload")
	ms.SendMulti([]NodeID{1, 2, 3, 4}, Msg{Handler: 9, A: 77, Payload: orig})
	// The caller keeps ownership: scribbling on its buffer after
	// SendMulti returns must not affect what receivers see.
	for i := range orig {
		orig[i] = '!'
	}

	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("fan-out not delivered")
	}
	var first *byte
	for _, m := range got {
		if string(m.Payload) != "shared-payload" {
			t.Fatalf("receiver saw %q", m.Payload)
		}
		if m.A != 77 {
			t.Fatalf("scalar not forwarded: %+v", m)
		}
		p := &m.Payload[0]
		if first == nil {
			first = p
		} else if p != first {
			t.Fatal("destinations received distinct payload buffers; want one shared encode")
		}
		if &m.Payload[0] == &orig[0] {
			t.Fatal("receiver aliases the caller's buffer")
		}
		if cap(m.Payload)%2 == 0 {
			t.Fatalf("shared payload cap %d is pool-class-shaped; Recycle by one receiver could free it for the rest", cap(m.Payload))
		}
	}
}

// TestSendMultiAllocs: the point of the shared encode is one payload
// materialization per fan-out, not one per destination — so the
// allocations per SendMulti must stay (amortized) below one per
// destination for a payload of pool-class size.
func TestSendMultiAllocs(t *testing.T) {
	const nodes = 9
	nw := newTestNet(t, nodes)
	eps := nw.Endpoints()
	ms := eps[0].(MultiSender)
	var sink [64]byte
	dsts := make([]NodeID, nodes-1)
	for i := range dsts {
		dsts[i] = NodeID(i + 1)
		eps[i+1].Register(3, func(m Msg) {})
	}
	payload := sink[:]
	allocs := testing.AllocsPerRun(200, func() {
		ms.SendMulti(dsts, Msg{Handler: 3, Payload: payload})
	})
	// One SharedAlloc per call plus mailbox noise; 8 per-destination
	// clones would push this to >= len(dsts).
	if allocs >= float64(len(dsts)) {
		t.Errorf("SendMulti allocates %.1f per call for %d destinations; payload should be materialized once", allocs, len(dsts))
	}
}

func TestSendMultiEmptyAndNoPayload(t *testing.T) {
	nw := newTestNet(t, 2)
	eps := nw.Endpoints()
	ms := eps[0].(MultiSender)
	ms.SendMulti(nil, Msg{Handler: 4}) // no destinations: no-op

	got := make(chan Msg, 1)
	eps[1].Register(4, func(m Msg) { got <- m })
	ms.SendMulti([]NodeID{1}, Msg{Handler: 4, B: 5})
	select {
	case m := <-got:
		if m.B != 5 || m.Payload != nil {
			t.Fatalf("bad payloadless multi-send: %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("payloadless multi-send not delivered")
	}
}
