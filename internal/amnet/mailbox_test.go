package amnet

import (
	"sync"
	"testing"
	"time"
)

func TestMailboxBatchedPop(t *testing.T) {
	b := newMailbox()
	const n = 100
	for i := 0; i < n; i++ {
		b.push(item{msg: Msg{A: uint64(i)}})
	}
	batch, ok := b.popAll(nil)
	if !ok {
		t.Fatal("popAll reported closed")
	}
	if len(batch) != n {
		t.Fatalf("batched pop returned %d items, want %d in one swap", len(batch), n)
	}
	for i, it := range batch {
		if it.msg.A != uint64(i) {
			t.Fatalf("out of order at %d: got %d", i, it.msg.A)
		}
	}
	// The slice passed back in becomes the backing array for subsequent
	// pushes, so the following round's batch reuses its capacity.
	b.push(item{msg: Msg{A: 1}})
	b.popAll(batch) // pending becomes batch[:0]
	b.push(item{msg: Msg{A: 2}})
	again, ok := b.popAll(nil)
	if !ok || len(again) != 1 || again[0].msg.A != 2 {
		t.Fatalf("popAll after recycle = %+v, ok=%v", again, ok)
	}
	if cap(again) != cap(batch) {
		t.Errorf("pending slice not recycled: cap %d, want %d", cap(again), cap(batch))
	}
}

func TestMailboxFIFOPerSenderUnderConcurrentPush(t *testing.T) {
	b := newMailbox()
	const senders = 8
	const perSender = 2000
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				b.push(item{msg: Msg{Src: NodeID(s), A: uint64(i)}})
			}
		}(s)
	}
	go func() {
		wg.Wait()
		b.close()
	}()
	next := [senders]uint64{}
	total := 0
	var scratch []item
	for {
		batch, ok := b.popAll(scratch)
		for _, it := range batch {
			s := it.msg.Src
			if it.msg.A != next[s] {
				t.Fatalf("sender %d out of order: got %d, want %d", s, it.msg.A, next[s])
			}
			next[s]++
			total++
		}
		if !ok {
			break
		}
		scratch = batch
	}
	if total != senders*perSender {
		t.Fatalf("drained %d items, want %d", total, senders*perSender)
	}
}

func TestMailboxCloseWhileNonEmptyDrains(t *testing.T) {
	b := newMailbox()
	for i := 0; i < 5; i++ {
		b.push(item{msg: Msg{A: uint64(i)}})
	}
	b.close()
	batch, ok := b.popAll(nil)
	if !ok || len(batch) != 5 {
		t.Fatalf("first pop after close = %d items, ok=%v; want 5, true", len(batch), ok)
	}
	if _, ok := b.popAll(nil); ok {
		t.Fatal("drained mailbox still reports items after close")
	}
	// Pushes after close are dropped, and pop stays terminal.
	b.push(item{msg: Msg{A: 99}})
	if batch, ok := b.popAll(nil); ok {
		t.Fatalf("push after close was queued: %d items", len(batch))
	}
}

func TestMailboxAwaitTimer(t *testing.T) {
	b := newMailbox()
	start := time.Now()
	b.await(10 * time.Millisecond)
	if el := time.Since(start); el < 5*time.Millisecond {
		t.Fatalf("await returned after %v, want ~10ms", el)
	}
	// A pending notification returns immediately.
	b.push(item{})
	b.popAll(nil)
	b.push(item{})
	start = time.Now()
	b.await(time.Second)
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("await ignored notify, blocked %v", el)
	}
}

func TestAllocRecycleClasses(t *testing.T) {
	if Alloc(0) != nil {
		t.Error("Alloc(0) != nil")
	}
	for _, n := range []int{1, 63, 64, 65, 1000, 16384, 65536} {
		b := Alloc(n)
		if len(b) != n {
			t.Fatalf("Alloc(%d) len = %d", n, len(b))
		}
		want := poolClasses[classFor(n)]
		if cap(b) != want {
			t.Errorf("Alloc(%d) cap = %d, want class %d", n, cap(b), want)
		}
		Recycle(b)
	}
	// Oversize allocations bypass the pool.
	big := Alloc(poolClasses[len(poolClasses)-1] + 1)
	if len(big) != poolClasses[len(poolClasses)-1]+1 {
		t.Fatalf("oversize Alloc len = %d", len(big))
	}
	Recycle(big) // must be a no-op, not a panic
}

func TestRecycleReuse(t *testing.T) {
	// A recycled buffer of a class size comes back from the pool. sync.Pool
	// gives no hard guarantee, so accept either, but verify the contents
	// path: a reused buffer has the right length and is writable.
	b := Alloc(100)
	b[0] = 0xAB
	Recycle(b)
	c := Alloc(100)
	if len(c) != 100 || cap(c) != 256 {
		t.Fatalf("realloc len=%d cap=%d", len(c), cap(c))
	}
	c[0] = 0xCD
	Recycle(c)
	// Foreign buffers (capacity not a class) are silently ignored.
	Recycle(make([]byte, 100)) // cap 100 ≠ any class on typical allocators
	var stack [8]byte
	Recycle(stack[:])
	Recycle(nil)
}

// TestLatencyNoHeadOfLineBlocking sends two delayed messages ε apart and
// checks they arrive ε apart (each at its own due time), and that a
// latency-free self-send overtakes a delayed message rather than queueing
// behind it.
func TestLatencyNoHeadOfLineBlocking(t *testing.T) {
	const lat = 60 * time.Millisecond
	const eps = 15 * time.Millisecond
	nw, err := NewChanNetwork(ChanConfig{Nodes: 2, Latency: lat})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	es := nw.Endpoints()
	arrivals := make(chan struct {
		a  uint64
		at time.Time
	}, 4)
	es[1].Register(1, func(m Msg) {
		arrivals <- struct {
			a  uint64
			at time.Time
		}{m.A, time.Now()}
	})
	selfGot := make(chan time.Time, 1)
	es[1].Register(2, func(m Msg) { selfGot <- time.Now() })

	start := time.Now()
	es[0].Send(Msg{Dst: 1, Handler: 1, A: 1})
	time.Sleep(eps)
	es[0].Send(Msg{Dst: 1, Handler: 1, A: 2})
	// While both remote messages are still in flight, a self-send on the
	// destination must be delivered immediately.
	es[1].Send(Msg{Dst: 1, Handler: 2})
	select {
	case at := <-selfGot:
		if d := at.Sub(start); d > lat/2 {
			t.Errorf("self-send waited %v behind delayed traffic", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("self-send never delivered")
	}

	var at1, at2 time.Time
	for i := 0; i < 2; i++ {
		select {
		case a := <-arrivals:
			if a.a == 1 {
				at1 = a.at
			} else {
				at2 = a.at
			}
		case <-time.After(2 * time.Second):
			t.Fatal("delayed message never delivered")
		}
	}
	if d := at1.Sub(start); d < lat-5*time.Millisecond {
		t.Errorf("first message arrived after %v, want >= ~%v", d, lat)
	}
	if gap := at2.Sub(at1); gap > lat/2 {
		t.Errorf("messages sent %v apart arrived %v apart (head-of-line blocking)", eps, gap)
	}
}
