package amnet

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestCloseDrainsDelayHeapPromptly pins the close-then-drain contract of
// the latency pump: messages still sitting in the delay heap when Close
// is called are delivered before Close returns — without waiting out
// their residual modelled latency — and nothing is delivered after.
func TestCloseDrainsDelayHeapPromptly(t *testing.T) {
	const latency = 2 * time.Second
	nw, err := NewChanNetwork(ChanConfig{Nodes: 2, Latency: latency})
	if err != nil {
		t.Fatal(err)
	}
	var delivered atomic.Int64
	eps := nw.Endpoints()
	eps[1].Register(1, func(m Msg) { delivered.Add(1) })

	const total = 64
	for i := 0; i < total; i++ {
		eps[0].Send(Msg{Dst: 1, Handler: 1, A: uint64(i)})
	}
	start := time.Now()
	if err := nw.Close(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed >= latency {
		t.Fatalf("Close waited out the modelled latency: took %v with %v latency", elapsed, latency)
	}
	if n := delivered.Load(); n != total {
		t.Fatalf("Close returned with %d of %d delayed messages delivered", n, total)
	}
	// Nothing may arrive after Close has returned.
	after := delivered.Load()
	time.Sleep(20 * time.Millisecond)
	if n := delivered.Load(); n != after {
		t.Fatalf("%d deliveries happened after Close returned", n-after)
	}
}

// TestCloseLeaksNoPumpGoroutines pins that closing a latency-pumped
// network tears down its pump goroutines (and any await timers they
// armed): the goroutine count settles back to its pre-network level.
func TestCloseLeaksNoPumpGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 4; round++ {
		nw, err := NewChanNetwork(ChanConfig{Nodes: 4, Latency: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		eps := nw.Endpoints()
		eps[1].Register(1, func(m Msg) {})
		// Park a message deep in the delay heap so the pump is blocked in
		// a timed await when Close arrives.
		eps[0].Send(Msg{Dst: 1, Handler: 1})
		time.Sleep(time.Millisecond)
		if err := nw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked across Close: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
