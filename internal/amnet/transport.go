package amnet

import "fmt"

// Transport is the factory the runtime builds its fabric through: asked
// for an n-node cluster, it returns a connected Network whose local
// endpoints are ready for handler registration. Options.Transport takes
// one, so bootstrap code selects a fabric by value (a ChanConfig, a
// tcpnet.Config) instead of calling transport-specific constructors.
//
// A Transport describes only the local share of the fabric: the
// in-process transports host all n endpoints, while a multi-process
// transport (tcpnet.Config with Local set) binds the local nodes and
// dials the rest.
type Transport interface {
	// Connect builds the fabric for an n-node cluster.
	Connect(n int) (Network, error)
}

// Starter is implemented by networks that hold handler dispatch back
// until the runtime has finished registering handlers. Multi-process
// transports need the gate: a fast peer's first frames can arrive in
// the window between Endpoints() and Register, and dispatching them
// would hit an empty handler table. NewCluster calls Start once every
// local processor's handlers are installed; such a network must also
// release itself on its first local Send (the sender's own handlers are
// necessarily registered by then) and at Close (to drain).
type Starter interface{ Start() }

// Fixed adapts an already-built (or wrapped) Network to Transport, for
// callers that construct the fabric themselves — a fault-injecting
// wrapper, a test double. The network stays caller-owned: the runtime
// validates its shape but does not close it.
func Fixed(nw Network) FixedTransport { return FixedTransport{Net: nw} }

// FixedTransport is Fixed's Transport; Connect returns the wrapped
// network as-is (the runtime checks the endpoint count).
type FixedTransport struct{ Net Network }

// Connect implements Transport.
func (t FixedTransport) Connect(int) (Network, error) { return t.Net, nil }

// TransportFunc adapts a plain constructor function to Transport.
type TransportFunc func(n int) (Network, error)

// Connect implements Transport.
func (f TransportFunc) Connect(n int) (Network, error) { return f(n) }

// Connect implements Transport: an in-process channel network of n
// endpoints. A Nodes count already set in the config must agree with n.
func (c ChanConfig) Connect(n int) (Network, error) {
	if c.Nodes == 0 {
		c.Nodes = n
	}
	if c.Nodes != n {
		return nil, fmt.Errorf("amnet: transport configured for %d nodes, cluster wants %d", c.Nodes, n)
	}
	return NewChanNetwork(c)
}

// headerBytes is the accounted fixed cost of a message: dst, src, handler,
// four 8-byte scalar arguments and a length word.
const headerBytes = 4 + 4 + 2 + 4*8 + 4
