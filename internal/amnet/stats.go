package amnet

import "sync/atomic"

// Stats holds per-endpoint traffic counters. All fields are updated
// atomically and may be read while the network is live; a consistent
// snapshot requires the network to be quiescent (for example, inside a
// barrier).
type Stats struct {
	MsgsSent  atomic.Uint64
	BytesSent atomic.Uint64
	MsgsRecv  atomic.Uint64
	BytesRecv atomic.Uint64

	// PerHandler counts messages received per handler id.
	PerHandler [MaxHandlers]atomic.Uint64
}

func (s *Stats) count(msgs, bytes *atomic.Uint64, m Msg) {
	msgs.Add(1)
	// Account scalar header words plus payload, approximating the wire
	// footprint of the message.
	bytes.Add(uint64(headerBytes + len(m.Payload)))
	if msgs == &s.MsgsRecv {
		s.PerHandler[m.Handler].Add(1)
	}
}

// headerBytes is the accounted fixed cost of a message: dst, src, handler,
// four 8-byte scalar arguments and a length word.
const headerBytes = 4 + 4 + 2 + 4*8 + 4

// Snapshot is a plain-value copy of Stats suitable for arithmetic.
type Snapshot struct {
	MsgsSent, BytesSent uint64
	MsgsRecv, BytesRecv uint64
}

// Snapshot returns the current counter values.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		MsgsSent:  s.MsgsSent.Load(),
		BytesSent: s.BytesSent.Load(),
		MsgsRecv:  s.MsgsRecv.Load(),
		BytesRecv: s.BytesRecv.Load(),
	}
}

// Sub returns the element-wise difference s - o.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		MsgsSent:  s.MsgsSent - o.MsgsSent,
		BytesSent: s.BytesSent - o.BytesSent,
		MsgsRecv:  s.MsgsRecv - o.MsgsRecv,
		BytesRecv: s.BytesRecv - o.BytesRecv,
	}
}

// Add returns the element-wise sum s + o.
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		MsgsSent:  s.MsgsSent + o.MsgsSent,
		BytesSent: s.BytesSent + o.BytesSent,
		MsgsRecv:  s.MsgsRecv + o.MsgsRecv,
		BytesRecv: s.BytesRecv + o.BytesRecv,
	}
}
