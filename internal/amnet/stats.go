package amnet

import "github.com/acedsm/ace/internal/trace"

// Stats holds per-endpoint traffic counters.
//
// Deprecated: Stats is an alias for trace.NetStats, the unified
// observability layer's endpoint telemetry (message/byte counters,
// per-handler breakdown, sampled send→deliver latency). New code should
// use the aggregated views — core.Cluster.Metrics / core.Proc.Snapshot —
// rather than reading endpoint counters directly.
type Stats = trace.NetStats

// Snapshot is a plain-value copy of Stats suitable for arithmetic.
//
// Deprecated: Snapshot is an alias for trace.NetSnapshot.
type Snapshot = trace.NetSnapshot

// headerBytes is the accounted fixed cost of a message: dst, src, handler,
// four 8-byte scalar arguments and a length word.
const headerBytes = 4 + 4 + 2 + 4*8 + 4
