package amnet

import (
	"fmt"
	"testing"
)

// BenchmarkPoolParallel measures Alloc/Recycle under concurrent pumps —
// the access pattern sharded dispatch creates, where several lanes
// recycle delivered payloads while application threads allocate send
// buffers. The pool is a per-size-class sync.Pool, which keeps
// per-P caches, so this should scale rather than serialize on a lock;
// the benchmark exists to catch a regression toward one (run with
// -cpu 1,4 to see the contention curve).
func BenchmarkPoolParallel(b *testing.B) {
	for _, size := range []int{64, 4096, 65536} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					buf := Alloc(size)
					buf[0] = 1
					Recycle(buf)
				}
			})
		})
	}
}
