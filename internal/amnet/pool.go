package amnet

import "sync"

// Size-class buffer pool for the fabric fast path. Frame buffers on the
// TCP transport, received payloads, and the runtime's payload clones all
// come from here, so a steady-state message exchange recycles a handful
// of buffers instead of allocating per message.
//
// Ownership contract: Alloc returns a buffer owned by the caller.
// Recycle returns it to the pool; after Recycle the buffer must not be
// touched. Recycle accepts any byte slice — buffers that did not come
// from Alloc (wrong capacity class) are simply left to the garbage
// collector, so callers may recycle delivered payloads without knowing
// their provenance. Recycling a buffer while another goroutine still
// reads it is a use-after-free bug; the fabric's rule is that a
// delivered Msg.Payload has exactly one owner (see Handler).

// poolClasses are the buffer capacities kept, smallest first. The
// smallest class covers a zero-payload frame (frameHeader ≈ 54 bytes);
// the largest bounds pool-retained memory — larger buffers fall back to
// the allocator.
var poolClasses = [...]int{64, 256, 1024, 4096, 16384, 65536}

// bufPool is one size class. Buffers travel as *[]byte so neither Get
// nor Put boxes a slice header; headerPool recirculates the header
// allocations themselves, making the steady state allocation-free.
var (
	bufPools   [len(poolClasses)]sync.Pool
	headerPool = sync.Pool{New: func() any { return new([]byte) }}
)

func init() {
	for i, size := range poolClasses {
		size := size
		bufPools[i].New = func() any {
			b := make([]byte, size)
			return &b
		}
	}
}

// classFor returns the index of the smallest class holding n bytes, or
// -1 when n exceeds every class.
func classFor(n int) int {
	for i, size := range poolClasses {
		if n <= size {
			return i
		}
	}
	return -1
}

// Alloc returns a buffer of length n, from the pool when a size class
// covers n. Alloc(0) returns nil.
func Alloc(n int) []byte {
	if n <= 0 {
		return nil
	}
	i := classFor(n)
	if i < 0 {
		return make([]byte, n)
	}
	h := bufPools[i].Get().(*[]byte)
	b := (*h)[:n]
	*h = nil
	headerPool.Put(h)
	return b
}

// SharedAlloc returns a buffer of length n that Recycle will never take
// back: its capacity is deliberately off-class (odd, while every pool
// class is even), so recycling it is a no-op. Fan-out paths that hand
// one buffer to several receivers use it — each receiver may
// independently Recycle the payload it was delivered, and the first
// recycle of a pooled buffer would re-issue memory the other receivers
// are still reading. Receivers of a shared buffer must treat it as
// read-only.
func SharedAlloc(n int) []byte {
	if n <= 0 {
		return nil
	}
	return make([]byte, n, n|1)
}

// Recycle returns b to its size-class pool. Buffers whose capacity is
// not exactly a pool class (including nil and buffers larger than the
// biggest class) are ignored and left to the garbage collector.
func Recycle(b []byte) {
	c := cap(b)
	if c == 0 {
		return
	}
	i := classFor(c)
	if i < 0 || poolClasses[i] != c {
		return
	}
	h := headerPool.Get().(*[]byte)
	*h = b[:c]
	bufPools[i].Put(h)
}
