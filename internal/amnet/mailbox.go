package amnet

import (
	"sync"
	"time"
)

// item is a queued message plus its earliest delivery time (zero for
// immediate delivery) and, when latency sampling is on, its send stamp
// on the trace clock.
type item struct {
	msg  Msg
	due  time.Time
	sent int64
}

// mailbox is an unbounded MPSC queue: many senders, one pump.
// Unboundedness is load-bearing — see the package comment. The pump
// drains in batches: popAll swaps the whole pending slice out under one
// lock acquisition, so a burst of n messages costs the consumer one
// lock/wake instead of n.
//
// Wakeups use an edge-triggered capacity-1 channel rather than a
// sync.Cond so the pump can wait for "new input or a delivery timer",
// which the latency-modelling pump needs (select over notify and a
// time.Timer).
type mailbox struct {
	mu     sync.Mutex
	q      []item
	closed bool

	// notify holds one token when items may be pending. push stores the
	// token after appending; consumers re-check the queue after taking
	// it, so a wakeup is never lost (at most one is spurious).
	notify chan struct{}
	// done is closed by close(); it wakes consumers permanently.
	done chan struct{}
}

func newMailbox() *mailbox {
	return &mailbox{
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
}

func (b *mailbox) push(it item) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.q = append(b.q, it)
	b.mu.Unlock()
	select {
	case b.notify <- struct{}{}:
	default:
	}
}

// popAll blocks until at least one item is pending, then swaps the whole
// pending slice with `into` (reset to length zero) and returns it. It
// reports ok=false only when the mailbox is closed and fully drained.
// The caller owns the returned slice until it passes it back in.
func (b *mailbox) popAll(into []item) (batch []item, ok bool) {
	for {
		batch, ok, closed := b.tryPopAll(into)
		if ok {
			return batch, true
		}
		if closed {
			return batch, false
		}
		select {
		case <-b.notify:
		case <-b.done:
		}
	}
}

// tryPopAll is the non-blocking variant: it returns the pending batch
// (ok=true) or an empty slice, plus whether the mailbox is closed.
func (b *mailbox) tryPopAll(into []item) (batch []item, ok, closed bool) {
	b.mu.Lock()
	if len(b.q) > 0 {
		batch = b.q
		b.q = into[:0]
		b.mu.Unlock()
		return batch, true, false
	}
	closed = b.closed
	b.mu.Unlock()
	return into[:0], false, closed
}

// await blocks until new input may be pending, the mailbox is closed, or
// — when d > 0 — the timeout elapses.
func (b *mailbox) await(d time.Duration) {
	if d <= 0 {
		select {
		case <-b.notify:
		case <-b.done:
		}
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-b.notify:
	case <-b.done:
	case <-t.C:
	}
}

// close marks the mailbox closed and wakes all consumers. Items already
// queued remain poppable (close-then-drain semantics).
func (b *mailbox) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.done)
}
