package amnet

import (
	"sync"
	"time"
)

// item is a queued message plus its earliest delivery time (zero for
// immediate delivery) and, when latency sampling is on, its send stamp
// on the trace clock.
type item struct {
	msg  Msg
	due  time.Time
	sent int64
}

// mailbox is an unbounded MPSC queue: many senders, one pump. Unboundedness
// is load-bearing — see the package comment.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []item
	closed bool
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) push(it item) {
	b.mu.Lock()
	if !b.closed {
		b.q = append(b.q, it)
	}
	b.mu.Unlock()
	b.cond.Signal()
}

// pop blocks until an item is available or the mailbox is closed. It
// reports ok=false only when the mailbox is closed and drained.
func (b *mailbox) pop() (item, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.q) == 0 && !b.closed {
		b.cond.Wait()
	}
	if len(b.q) == 0 {
		return item{}, false
	}
	it := b.q[0]
	// Slide rather than reslice forever; amortized O(1) with periodic
	// compaction to keep the backing array from growing without bound.
	b.q[0] = item{}
	b.q = b.q[1:]
	if len(b.q) == 0 && cap(b.q) > 1024 {
		b.q = nil
	}
	return it, true
}

func (b *mailbox) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}
