package amnet

import (
	"github.com/acedsm/ace/internal/trace"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestNet(t *testing.T, n int) Network {
	t.Helper()
	nw, err := NewChanNetwork(ChanConfig{Nodes: n})
	if err != nil {
		t.Fatalf("NewChanNetwork: %v", err)
	}
	t.Cleanup(func() { nw.Close() })
	return nw
}

func TestChanNetworkBasicDelivery(t *testing.T) {
	nw := newTestNet(t, 2)
	eps := nw.Endpoints()
	got := make(chan Msg, 1)
	eps[1].Register(7, func(m Msg) { got <- m })

	eps[0].Send(Msg{Dst: 1, Handler: 7, A: 42, B: 43, C: 44, D: 45, Payload: []byte("hello")})

	select {
	case m := <-got:
		if m.Src != 0 || m.A != 42 || m.B != 43 || m.C != 44 || m.D != 45 || string(m.Payload) != "hello" {
			t.Fatalf("bad message: %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message not delivered")
	}
}

func TestChanNetworkSelfSend(t *testing.T) {
	nw := newTestNet(t, 1)
	ep := nw.Endpoints()[0]
	got := make(chan Msg, 1)
	ep.Register(1, func(m Msg) { got <- m })
	ep.Send(Msg{Dst: 0, Handler: 1, A: 5})
	select {
	case m := <-got:
		if m.Src != 0 || m.A != 5 {
			t.Fatalf("bad self message: %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("self message not delivered")
	}
}

func TestChanNetworkOrderingPerPair(t *testing.T) {
	nw := newTestNet(t, 2)
	eps := nw.Endpoints()
	const n = 1000
	var seen []uint64
	done := make(chan struct{})
	eps[1].Register(2, func(m Msg) {
		seen = append(seen, m.A)
		if len(seen) == n {
			close(done)
		}
	})
	for i := 0; i < n; i++ {
		eps[0].Send(Msg{Dst: 1, Handler: 2, A: uint64(i)})
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("only %d of %d messages delivered", len(seen), n)
	}
	for i, v := range seen {
		if v != uint64(i) {
			t.Fatalf("out of order at %d: got %d", i, v)
		}
	}
}

func TestChanNetworkHandlerMaySend(t *testing.T) {
	// A classic request/reply ping-pong driven entirely by handlers.
	nw := newTestNet(t, 2)
	eps := nw.Endpoints()
	done := make(chan uint64, 1)
	eps[1].Register(3, func(m Msg) {
		eps[1].Send(Msg{Dst: 0, Handler: 4, A: m.A + 1})
	})
	eps[0].Register(4, func(m Msg) {
		if m.A < 100 {
			eps[0].Send(Msg{Dst: 1, Handler: 3, A: m.A})
		} else {
			done <- m.A
		}
	})
	eps[0].Send(Msg{Dst: 1, Handler: 3, A: 0})
	select {
	case v := <-done:
		if v < 100 {
			t.Fatalf("ping-pong ended early at %d", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ping-pong did not complete")
	}
}

func TestChanNetworkConcurrentSenders(t *testing.T) {
	nw := newTestNet(t, 4)
	eps := nw.Endpoints()
	var total atomic.Uint64
	const perSender = 500
	done := make(chan struct{})
	eps[0].Register(5, func(m Msg) {
		if total.Add(m.A) == 3*perSender*7 {
			close(done)
		}
	})
	var wg sync.WaitGroup
	for src := 1; src < 4; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				eps[src].Send(Msg{Dst: 0, Handler: 5, A: 7})
			}
		}(src)
	}
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("sum %d, want %d", total.Load(), 3*perSender*7)
	}
}

func TestStatsCounting(t *testing.T) {
	nw := newTestNet(t, 2)
	eps := nw.Endpoints()
	done := make(chan struct{}, 8)
	eps[1].Register(6, func(m Msg) { done <- struct{}{} })
	payload := make([]byte, 100)
	for i := 0; i < 3; i++ {
		eps[0].Send(Msg{Dst: 1, Handler: 6, Payload: payload})
	}
	for i := 0; i < 3; i++ {
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatal("delivery timeout")
		}
	}
	s0 := eps[0].Stats().Snapshot()
	s1 := eps[1].Stats().Snapshot()
	if s0.MsgsSent != 3 {
		t.Errorf("sender MsgsSent = %d, want 3", s0.MsgsSent)
	}
	if s1.MsgsRecv != 3 {
		t.Errorf("receiver MsgsRecv = %d, want 3", s1.MsgsRecv)
	}
	wantBytes := uint64(3 * (headerBytes + 100))
	if s0.BytesSent != wantBytes {
		t.Errorf("BytesSent = %d, want %d", s0.BytesSent, wantBytes)
	}
	if got := eps[1].Stats().PerHandler[6].Load(); got != 3 {
		t.Errorf("PerHandler[6] = %d, want 3", got)
	}
}

func TestSnapshotArithmetic(t *testing.T) {
	a := trace.NetSnapshot{MsgsSent: 10, BytesSent: 100, MsgsRecv: 5, BytesRecv: 50}
	b := trace.NetSnapshot{MsgsSent: 4, BytesSent: 40, MsgsRecv: 2, BytesRecv: 20}
	d := a.Sub(b)
	if d.MsgsSent != 6 || d.BytesSent != 60 || d.MsgsRecv != 3 || d.BytesRecv != 30 {
		t.Fatalf("Sub = %+v", d)
	}
	s := d.Add(b)
	if s != a {
		t.Fatalf("Add = %+v, want %+v", s, a)
	}
}

func TestLatencyInjection(t *testing.T) {
	nw, err := NewChanNetwork(ChanConfig{Nodes: 2, Latency: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	eps := nw.Endpoints()
	got := make(chan time.Time, 1)
	eps[1].Register(1, func(m Msg) { got <- time.Now() })
	start := time.Now()
	eps[0].Send(Msg{Dst: 1, Handler: 1})
	select {
	case at := <-got:
		if d := at.Sub(start); d < 25*time.Millisecond {
			t.Fatalf("delivered after %v, want >= ~30ms", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delivery timeout")
	}
}

func TestInvalidNodeCount(t *testing.T) {
	if _, err := NewChanNetwork(ChanConfig{Nodes: 0}); err == nil {
		t.Fatal("expected error for zero nodes")
	}
}

func TestCloseUnblocksPump(t *testing.T) {
	nw := newTestNet(t, 1)
	// Close is invoked via t.Cleanup; the test passes if Close returns
	// (the pump goroutine exits and wg.Wait completes).
	if err := nw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
