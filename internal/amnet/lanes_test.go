package amnet

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLanesFIFOStress hammers one destination from several concurrent
// senders across lane counts and checks the per-(sender,handler) FIFO
// contract. The handler records each sender's sequence in a plain
// (unsynchronized) per-sender slot: lane keying by source must
// serialize all handler runs for one sender, so under -race the slots
// double as a detector proof — two concurrent handler runs for the
// same sender would be a data race, not just a reordering.
func TestLanesFIFOStress(t *testing.T) {
	const (
		nodes     = 5
		perSender = 5000
	)
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, lanes := range []int{1, 2, 8} {
		nw, err := NewChanNetwork(ChanConfig{Nodes: nodes, Lanes: lanes})
		if err != nil {
			t.Fatalf("lanes=%d: NewChanNetwork: %v", lanes, err)
		}
		eps := nw.Endpoints()
		last := make([]uint64, nodes) // plain per-sender slots, see above
		var seen atomic.Uint64
		done := make(chan struct{})
		bad := make(chan string, 1)
		eps[0].Register(9, func(m Msg) {
			if m.A != last[m.Src]+1 {
				select {
				case bad <- "fifo violation":
				default:
				}
			}
			last[m.Src] = m.A
			if seen.Add(1) == uint64(perSender*(nodes-1)) {
				close(done)
			}
		})
		var wg sync.WaitGroup
		for src := 1; src < nodes; src++ {
			wg.Add(1)
			go func(src int) {
				defer wg.Done()
				for i := 1; i <= perSender; i++ {
					eps[src].Send(Msg{Dst: 0, Handler: 9, A: uint64(i)})
				}
			}(src)
		}
		wg.Wait()
		select {
		case <-done:
		case msg := <-bad:
			t.Fatalf("lanes=%d: %s", lanes, msg)
		case <-time.After(10 * time.Second):
			t.Fatalf("lanes=%d: stalled at %d/%d", lanes, seen.Load(), perSender*(nodes-1))
		}
		for src := 1; src < nodes; src++ {
			if last[src] != perSender {
				t.Fatalf("lanes=%d: sender %d delivered %d of %d", lanes, src, last[src], perSender)
			}
		}
		nw.Close()
	}
}

// TestLanesDispatchConcurrently proves sharding actually runs handlers
// from different senders at the same time: with two lanes, a handler
// serving sender 1 parks until the handler serving sender 2 — which
// must be on the other lane's pump — releases it. A single dispatch
// pump would deadlock here (the second message can't dispatch while the
// first handler blocks), so completion is the proof.
func TestLanesDispatchConcurrently(t *testing.T) {
	nw, err := NewChanNetwork(ChanConfig{Nodes: 3, Lanes: 2})
	if err != nil {
		t.Fatalf("NewChanNetwork: %v", err)
	}
	defer nw.Close()
	eps := nw.Endpoints()
	release := make(chan struct{})
	done := make(chan struct{})
	eps[0].Register(9, func(m Msg) {
		switch m.Src {
		case 1: // lane 1 % 2: parks until the other lane runs
			<-release
			close(done)
		case 2: // lane 2 % 2 = 0: releases the parked handler
			close(release)
		}
	})
	eps[1].Send(Msg{Dst: 0, Handler: 9})
	// The parked handler occupies its lane before sender 2's message
	// arrives, so the release can only come from the other lane.
	time.Sleep(10 * time.Millisecond)
	eps[2].Send(Msg{Dst: 0, Handler: 9})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handlers did not run concurrently: sharded lanes are serialized")
	}
}

// TestLanesClamped checks the lane count is clamped to the node count
// and that degenerate values fall back to one lane.
func TestLanesClamped(t *testing.T) {
	for _, tc := range []struct{ lanes, nodes, want int }{
		{0, 4, 1}, {-3, 4, 1}, {1, 4, 1}, {3, 4, 3}, {9, 4, 4},
	} {
		if got := laneCount(tc.lanes, tc.nodes); got != tc.want {
			t.Errorf("laneCount(%d, %d) = %d, want %d", tc.lanes, tc.nodes, got, tc.want)
		}
	}
}
