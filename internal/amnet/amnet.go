// Package amnet provides the Active Messages fabric that the Ace and CRL
// runtimes are built on.
//
// The model follows von Eicken et al.'s Active Messages: a message names a
// handler on the destination node; the handler runs asynchronously to the
// destination's compute thread, may examine the message and send further
// messages (for example a reply), but must never block waiting for network
// events. By default each node owns a single dispatch pump goroutine that
// drains its mailbox and runs handlers one at a time, so handlers on a
// given node are serialized with respect to each other. Transports may
// shard dispatch into multiple lanes keyed by source node (see
// ChanConfig.Lanes): all traffic from one sender still lands in one lane
// and is dispatched in order by one goroutine, preserving the
// per-(sender, handler) FIFO contract, but handlers for messages from
// different senders may then run concurrently — handler code relying on
// whole-node serialization must take lane count 1 or lock its state.
//
// Mailboxes are unbounded, which preserves the classic Active Messages
// liveness argument: a send never blocks, so a handler can always complete,
// so every mailbox is eventually drained. The pump drains the mailbox in
// batches (one lock acquisition per burst, not per message); see mailbox.
//
// # Buffer ownership
//
// The fabric pools buffers on its hot path (see Alloc/Recycle). Ownership
// of a message payload moves in one direction: the sender gives up the
// payload at Send (it must not mutate it afterwards), and the receiving
// handler becomes the payload's sole owner at dispatch. A handler — or
// whatever the handler hands the payload to — may pass the buffer to
// Recycle once it has no further use for it, returning it to the pool;
// not recycling is always safe and merely leaves the buffer to the
// garbage collector.
package amnet

import (
	"container/heap"
	"fmt"
	"sync"
	"time"

	"github.com/acedsm/ace/internal/trace"
)

// NodeID identifies a logical processor in the cluster. Nodes are numbered
// 0..N-1.
type NodeID int32

// HandlerID names a registered active-message handler on the destination
// node. The runtime reserves a small number of IDs for its own use; see
// package core.
type HandlerID uint16

// MaxHandlers bounds the handler table size on every endpoint.
const MaxHandlers = trace.MaxHandlers

// Msg is a single active message. A, B, C and D are small scalar arguments
// (typically a region id, a waiter sequence number, and auxiliary values);
// bulk data travels in Payload. On delivery the handler is the payload's
// sole owner (see the package comment's ownership contract): it may read
// it, retain it, or return it to the fabric's buffer pool with Recycle
// when done. It must not mutate a payload it plans to recycle while any
// copy of the slice escapes.
type Msg struct {
	Dst, Src NodeID
	Handler  HandlerID
	A, B, C  uint64
	D        uint64
	Payload  []byte
}

// Handler is the function type invoked for a delivered message. It runs on
// the destination node's pump goroutine and must not block on network
// events (it may send messages). The handler owns m.Payload; passing it
// to Recycle when finished keeps the fabric's buffer pool warm.
type Handler func(Msg)

// Endpoint is one node's attachment to the network.
type Endpoint interface {
	// ID returns this endpoint's node id.
	ID() NodeID
	// Nodes returns the total number of nodes in the network.
	Nodes() int
	// Register installs fn as the handler for id. It must be called
	// before any message with that handler id arrives; registration
	// after Start is a programming error.
	Register(id HandlerID, fn Handler)
	// Send enqueues m for delivery to m.Dst. It never blocks and is safe
	// to call from handlers and from compute threads concurrently.
	// Ownership of the payload passes to the fabric: the caller must not
	// mutate it after Send (transports that copy synchronously are
	// identified by the PayloadCopier interface).
	Send(m Msg)
	// Stats returns this endpoint's traffic counters.
	Stats() *trace.NetStats
}

// PayloadCopier is implemented by endpoints whose Send copies the
// payload into transport-owned memory before returning. For such
// transports a sender that needs the buffer back immediately (for
// example, a runtime that would otherwise defensively clone) may skip
// the copy of its own.
type PayloadCopier interface {
	// CopiesPayloadOnSend reports whether Send has finished reading the
	// payload by the time it returns.
	CopiesPayloadOnSend() bool
}

// MultiSender is implemented by endpoints that can fan one message out
// to several destinations while materializing the payload only once.
// Unlike Send, SendMulti does not consume the payload: it has finished
// reading m.Payload by the time it returns (the in-process fabric
// copies it once into a shared pool-exempt buffer; a transport that
// copies on send encodes per-destination frames directly from it), so
// the caller keeps ownership of its buffer. m.Dst is ignored.
//
// Because by-reference fabrics deliver the one shared buffer to every
// destination, SendMulti is only correct for messages whose handlers
// treat the payload as read-only before recycling it — true of the
// runtime's collective handlers, which clone anything they retain.
type MultiSender interface {
	SendMulti(dsts []NodeID, m Msg)
}

// PeerAware is implemented by endpoints that can detect the loss of a
// peer node (a supervised connection that exhausted its reconnect
// budget, or an injected kill on a fault-injecting transport). The
// runtime registers a handler so blocked synchronization can fail with
// a typed error instead of hanging forever.
type PeerAware interface {
	// SetPeerDownHandler installs fn, called at most once per lost peer.
	// fn may be invoked from a transport goroutine and must not block;
	// it must be installed before traffic starts.
	SetPeerDownHandler(fn func(peer NodeID))
}

// Network is a set of connected endpoints, one per node.
type Network interface {
	Endpoints() []Endpoint
	// Close shuts down delivery. Messages still queued may be dropped.
	Close() error
}

// ChanConfig configures an in-process channel network.
type ChanConfig struct {
	// Nodes is the number of endpoints to create.
	Nodes int
	// Latency, if nonzero, delays every inter-node message's delivery by
	// the given duration after its send time, modelling a fixed network
	// latency. Each message is delivered at its own due time: messages
	// sent ε apart arrive ε apart, and latency-free traffic (self-sends)
	// is not queued behind delayed messages.
	Latency time.Duration
	// Lanes shards each endpoint's dispatch into this many pump
	// goroutines, keyed by source node (lane = src mod Lanes), so
	// handlers for messages from different senders can run on different
	// cores. All messages from one sender map to one lane, preserving
	// the per-(sender, handler) FIFO contract; what is given up is
	// whole-node handler serialization, so receivers must be safe for
	// concurrent handlers from distinct senders. Zero or one means the
	// classic single pump per node (bit-identical to the pre-sharding
	// fabric); values above Nodes are clamped (extra lanes could never
	// receive traffic).
	Lanes int
}

// laneCount normalizes a configured lane count: 0 (unset) and 1 both
// mean a single pump; more lanes than sources is pointless.
func laneCount(lanes, nodes int) int {
	if lanes < 1 {
		return 1
	}
	if lanes > nodes {
		return nodes
	}
	return lanes
}

// NewChanNetwork builds an in-process network of n endpoints connected by
// unbounded mailboxes, one pump goroutine per node.
func NewChanNetwork(cfg ChanConfig) (Network, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("amnet: invalid node count %d", cfg.Nodes)
	}
	lanes := laneCount(cfg.Lanes, cfg.Nodes)
	nw := &chanNetwork{cfg: cfg}
	nw.eps = make([]*chanEndpoint, cfg.Nodes)
	for i := range nw.eps {
		ep := &chanEndpoint{
			id:    NodeID(i),
			nw:    nw,
			boxes: make([]*mailbox, lanes),
		}
		for l := range ep.boxes {
			ep.boxes[l] = newMailbox()
		}
		nw.eps[i] = ep
	}
	for _, ep := range nw.eps {
		for l := range ep.boxes {
			nw.wg.Add(1)
			go ep.pump(&nw.wg, l)
		}
	}
	return nw, nil
}

type chanNetwork struct {
	cfg ChanConfig
	eps []*chanEndpoint
	wg  sync.WaitGroup
}

func (n *chanNetwork) Endpoints() []Endpoint {
	out := make([]Endpoint, len(n.eps))
	for i, ep := range n.eps {
		out[i] = ep
	}
	return out
}

func (n *chanNetwork) Close() error {
	for _, ep := range n.eps {
		for _, box := range ep.boxes {
			box.close()
		}
	}
	n.wg.Wait()
	return nil
}

// chanEndpoint is one node's attachment: boxes holds one mailbox per
// dispatch lane (a single element unless ChanConfig.Lanes sharded it),
// each drained by its own pump goroutine. The handler table and stats
// are shared across lanes — registration happens before traffic, and
// trace.NetStats is atomic throughout.
type chanEndpoint struct {
	id       NodeID
	nw       *chanNetwork
	boxes    []*mailbox
	handlers [MaxHandlers]Handler
	stats    trace.NetStats
}

// laneFor maps a source node to the mailbox its traffic lands in. Keying
// by source keeps everything one sender emits in one FIFO lane.
func (e *chanEndpoint) laneFor(src NodeID) *mailbox {
	return e.boxes[int(src)%len(e.boxes)]
}

func (e *chanEndpoint) ID() NodeID { return e.id }

func (e *chanEndpoint) Nodes() int { return len(e.nw.eps) }

func (e *chanEndpoint) Register(id HandlerID, fn Handler) {
	if int(id) >= MaxHandlers {
		panic(fmt.Sprintf("amnet: handler id %d out of range", id))
	}
	e.handlers[id] = fn
}

func (e *chanEndpoint) Send(m Msg) {
	if int(m.Dst) < 0 || int(m.Dst) >= len(e.nw.eps) {
		panic(fmt.Sprintf("amnet: send to invalid node %d", m.Dst))
	}
	m.Src = e.id
	e.stats.CountSend(headerBytes + len(m.Payload))
	dst := e.nw.eps[m.Dst]
	var due time.Time
	if e.nw.cfg.Latency > 0 && m.Dst != m.Src {
		due = time.Now().Add(e.nw.cfg.Latency)
	}
	dst.laneFor(m.Src).push(item{msg: m, due: due, sent: e.stats.SendStamp()})
}

// SendMulti fans m out to each destination with the payload encoded
// once: a single SharedAlloc copy travels to every receiver, and each
// receiver's Recycle of it is a no-op (see MultiSender for the
// read-only contract this relies on). The caller keeps m.Payload.
func (e *chanEndpoint) SendMulti(dsts []NodeID, m Msg) {
	if len(dsts) == 0 {
		return
	}
	var shared []byte
	if len(m.Payload) > 0 {
		shared = SharedAlloc(len(m.Payload))
		copy(shared, m.Payload)
	}
	for _, d := range dsts {
		mm := m
		mm.Dst = d
		mm.Payload = shared
		e.Send(mm)
	}
}

func (e *chanEndpoint) Stats() *trace.NetStats { return &e.stats }

func (e *chanEndpoint) pump(wg *sync.WaitGroup, lane int) {
	defer wg.Done()
	box := e.boxes[lane]
	if e.nw.cfg.Latency > 0 {
		e.pumpDelayed(box)
		return
	}
	// Fast path: no modelled latency, so every item is deliverable the
	// moment it is popped. Batches amortize the mailbox lock and wakeup
	// over bursts.
	var scratch []item
	for {
		batch, ok := box.popAll(scratch)
		if !ok {
			return
		}
		for i := range batch {
			e.deliver(batch[i])
			batch[i] = item{} // drop payload references promptly
		}
		scratch = batch
	}
}

// pumpDelayed delivers each message at its own due time using a timer-
// driven delay queue, so a delayed message never adds head-of-line
// latency to traffic behind it. Per-pair FIFO is preserved: a pair's due
// times are nondecreasing (fixed latency, monotone send times), the heap
// breaks due-time ties by arrival sequence, and latency-free pairs
// (self-sends, whose due time is zero) can have no earlier message
// waiting in the heap.
func (e *chanEndpoint) pumpDelayed(box *mailbox) {
	var scratch []item
	var dq delayQueue
	var seq uint64
	for {
		batch, ok, closed := box.tryPopAll(scratch)
		if !ok {
			if closed {
				// Close-then-drain: deliver what remains without
				// waiting out the residual latency.
				for dq.Len() > 0 {
					e.deliver(heap.Pop(&dq).(delayed).item)
				}
				return
			}
			if dq.Len() == 0 {
				box.await(0)
				continue
			}
			if d := time.Until(dq[0].due); d > 0 {
				box.await(d)
				continue
			}
		}
		for i := range batch {
			it := batch[i]
			if it.due.IsZero() {
				e.deliver(it)
			} else {
				heap.Push(&dq, delayed{item: it, seq: seq})
				seq++
			}
			batch[i] = item{}
		}
		scratch = batch
		now := time.Now()
		for dq.Len() > 0 && !dq[0].due.After(now) {
			e.deliver(heap.Pop(&dq).(delayed).item)
		}
	}
}

func (e *chanEndpoint) deliver(it item) {
	e.stats.ObserveDeliver(it.sent)
	e.dispatch(it.msg)
}

func (e *chanEndpoint) dispatch(m Msg) {
	e.stats.CountRecv(uint16(m.Handler), headerBytes+len(m.Payload))
	h := e.handlers[m.Handler]
	if h == nil {
		panic(fmt.Sprintf("amnet: node %d: no handler %d registered (msg from %d)", e.id, m.Handler, m.Src))
	}
	h(m)
}

// delayed is one entry in the delay queue; seq breaks due-time ties in
// arrival order so equal-due messages from one sender keep FIFO.
type delayed struct {
	item
	seq uint64
}

type delayQueue []delayed

func (q delayQueue) Len() int { return len(q) }
func (q delayQueue) Less(i, j int) bool {
	if q[i].due.Equal(q[j].due) {
		return q[i].seq < q[j].seq
	}
	return q[i].due.Before(q[j].due)
}
func (q delayQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *delayQueue) Push(x any)   { *q = append(*q, x.(delayed)) }
func (q *delayQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = delayed{}
	*q = old[:n-1]
	return it
}
