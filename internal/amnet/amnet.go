// Package amnet provides the Active Messages fabric that the Ace and CRL
// runtimes are built on.
//
// The model follows von Eicken et al.'s Active Messages: a message names a
// handler on the destination node; the handler runs asynchronously to the
// destination's compute thread, may examine the message and send further
// messages (for example a reply), but must never block waiting for network
// events. Each node owns a dispatch pump goroutine that drains its mailbox
// and runs handlers one at a time, so handlers on a given node are
// serialized with respect to each other.
//
// Mailboxes are unbounded, which preserves the classic Active Messages
// liveness argument: a send never blocks, so a handler can always complete,
// so every mailbox is eventually drained.
package amnet

import (
	"fmt"
	"sync"
	"time"

	"github.com/acedsm/ace/internal/trace"
)

// NodeID identifies a logical processor in the cluster. Nodes are numbered
// 0..N-1.
type NodeID int32

// HandlerID names a registered active-message handler on the destination
// node. The runtime reserves a small number of IDs for its own use; see
// package core.
type HandlerID uint16

// MaxHandlers bounds the handler table size on every endpoint.
const MaxHandlers = trace.MaxHandlers

// Msg is a single active message. A, B, C and D are small scalar arguments
// (typically a region id, a waiter sequence number, and auxiliary values);
// bulk data travels in Payload. The receiving handler must treat Payload as
// read-only; it may be aliased by transport internals.
type Msg struct {
	Dst, Src NodeID
	Handler  HandlerID
	A, B, C  uint64
	D        uint64
	Payload  []byte
}

// Handler is the function type invoked for a delivered message. It runs on
// the destination node's pump goroutine and must not block on network
// events (it may send messages).
type Handler func(Msg)

// Endpoint is one node's attachment to the network.
type Endpoint interface {
	// ID returns this endpoint's node id.
	ID() NodeID
	// Nodes returns the total number of nodes in the network.
	Nodes() int
	// Register installs fn as the handler for id. It must be called
	// before any message with that handler id arrives; registration
	// after Start is a programming error.
	Register(id HandlerID, fn Handler)
	// Send enqueues m for delivery to m.Dst. It never blocks and is safe
	// to call from handlers and from compute threads concurrently. The
	// payload is not copied; the caller must not mutate it after Send.
	Send(m Msg)
	// Stats returns this endpoint's traffic counters.
	Stats() *Stats
}

// Network is a set of connected endpoints, one per node.
type Network interface {
	Endpoints() []Endpoint
	// Close shuts down delivery. Messages still queued may be dropped.
	Close() error
}

// ChanConfig configures an in-process channel network.
type ChanConfig struct {
	// Nodes is the number of endpoints to create.
	Nodes int
	// Latency, if nonzero, delays every message's delivery by the given
	// duration after its send time, modelling a fixed network latency.
	Latency time.Duration
}

// NewChanNetwork builds an in-process network of n endpoints connected by
// unbounded mailboxes, one pump goroutine per node.
func NewChanNetwork(cfg ChanConfig) (Network, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("amnet: invalid node count %d", cfg.Nodes)
	}
	nw := &chanNetwork{cfg: cfg}
	nw.eps = make([]*chanEndpoint, cfg.Nodes)
	for i := range nw.eps {
		nw.eps[i] = &chanEndpoint{
			id:  NodeID(i),
			nw:  nw,
			box: newMailbox(),
		}
	}
	for _, ep := range nw.eps {
		nw.wg.Add(1)
		go ep.pump(&nw.wg)
	}
	return nw, nil
}

type chanNetwork struct {
	cfg ChanConfig
	eps []*chanEndpoint
	wg  sync.WaitGroup
}

func (n *chanNetwork) Endpoints() []Endpoint {
	out := make([]Endpoint, len(n.eps))
	for i, ep := range n.eps {
		out[i] = ep
	}
	return out
}

func (n *chanNetwork) Close() error {
	for _, ep := range n.eps {
		ep.box.close()
	}
	n.wg.Wait()
	return nil
}

type chanEndpoint struct {
	id       NodeID
	nw       *chanNetwork
	box      *mailbox
	handlers [MaxHandlers]Handler
	stats    Stats
}

func (e *chanEndpoint) ID() NodeID { return e.id }

func (e *chanEndpoint) Nodes() int { return len(e.nw.eps) }

func (e *chanEndpoint) Register(id HandlerID, fn Handler) {
	if int(id) >= MaxHandlers {
		panic(fmt.Sprintf("amnet: handler id %d out of range", id))
	}
	e.handlers[id] = fn
}

func (e *chanEndpoint) Send(m Msg) {
	if int(m.Dst) < 0 || int(m.Dst) >= len(e.nw.eps) {
		panic(fmt.Sprintf("amnet: send to invalid node %d", m.Dst))
	}
	m.Src = e.id
	e.stats.CountSend(headerBytes + len(m.Payload))
	dst := e.nw.eps[m.Dst]
	var due time.Time
	if e.nw.cfg.Latency > 0 && m.Dst != m.Src {
		due = time.Now().Add(e.nw.cfg.Latency)
	}
	dst.box.push(item{msg: m, due: due, sent: e.stats.SendStamp()})
}

func (e *chanEndpoint) Stats() *Stats { return &e.stats }

func (e *chanEndpoint) pump(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		it, ok := e.box.pop()
		if !ok {
			return
		}
		if !it.due.IsZero() {
			if d := time.Until(it.due); d > 0 {
				time.Sleep(d)
			}
		}
		e.stats.ObserveDeliver(it.sent)
		e.dispatch(it.msg)
	}
}

func (e *chanEndpoint) dispatch(m Msg) {
	e.stats.CountRecv(uint16(m.Handler), headerBytes+len(m.Payload))
	h := e.handlers[m.Handler]
	if h == nil {
		panic(fmt.Sprintf("amnet: node %d: no handler %d registered (msg from %d)", e.id, m.Handler, m.Src))
	}
	h(m)
}
