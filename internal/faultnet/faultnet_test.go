package faultnet

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/trace"
)

// aggressive is a policy with every fault kind switched on, hot enough
// that a few hundred messages hit each kind.
func aggressive(seed int64) Policy {
	return Policy{
		Seed:        seed,
		Delay:       200 * time.Microsecond,
		Jitter:      300 * time.Microsecond,
		DupProb:     0.2,
		DropProb:    0.2,
		ReorderProb: 0.2,
		SlowNode:    1,
		SlowDelay:   100 * time.Microsecond,
	}
}

// TestFabricContractUnderFaults hammers every link of a wrapped channel
// network and checks the Active Messages contract survives the fault
// model: per-link FIFO, exactly-once delivery, nothing lost.
func TestFabricContractUnderFaults(t *testing.T) {
	const nodes, perLink = 3, 400
	inner, err := amnet.NewChanNetwork(amnet.ChanConfig{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	nw := Wrap(inner, aggressive(42))
	eps := nw.Endpoints()

	// next[dst][src] is the next expected A value on the src→dst link,
	// touched only by dst's pump goroutine.
	next := make([][]uint64, nodes)
	var bad atomic.Int64
	var recvd atomic.Int64
	for i, ep := range eps {
		next[i] = make([]uint64, nodes)
		i := i
		ep.Register(10, func(m amnet.Msg) {
			if m.A != next[i][m.Src] {
				bad.Add(1)
			}
			next[i][m.Src] = m.A + 1
			recvd.Add(1)
		})
	}
	var wg sync.WaitGroup
	for src := range eps {
		for dst := range eps {
			if src == dst {
				continue
			}
			wg.Add(1)
			go func(src, dst int) {
				defer wg.Done()
				for k := 0; k < perLink; k++ {
					eps[src].Send(amnet.Msg{Dst: amnet.NodeID(dst), Handler: 10, A: uint64(k)})
				}
			}(src, dst)
		}
	}
	wg.Wait()
	if err := nw.Close(); err != nil {
		t.Fatal(err)
	}
	want := int64(nodes * (nodes - 1) * perLink)
	if got := recvd.Load(); got != want {
		t.Fatalf("delivered %d messages, want %d", got, want)
	}
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d messages broke per-link FIFO/exactly-once", n)
	}
	var faults trace.FaultCounts
	for _, ep := range eps {
		faults = faults.Add(ep.Stats().Snapshot().Faults)
	}
	for _, k := range []trace.FaultKind{trace.FaultDelay, trace.FaultDup, trace.FaultDrop, trace.FaultReorder, trace.FaultSlow, trace.FaultWireDup} {
		if faults.Get(k) == 0 {
			t.Errorf("fault kind %v never injected (counts %v)", k, faults)
		}
	}
}

// TestSeededFaultStreamIsDeterministic sends the same single-threaded
// message sequence through two networks wrapped with the same seed and
// expects identical fault decisions (counter-for-counter).
func TestSeededFaultStreamIsDeterministic(t *testing.T) {
	run := func() trace.FaultCounts {
		inner, err := amnet.NewChanNetwork(amnet.ChanConfig{Nodes: 2})
		if err != nil {
			t.Fatal(err)
		}
		nw := Wrap(inner, aggressive(7))
		eps := nw.Endpoints()
		eps[1].Register(10, func(m amnet.Msg) {})
		for k := 0; k < 500; k++ {
			eps[0].Send(amnet.Msg{Dst: 1, Handler: 10, A: uint64(k)})
		}
		if err := nw.Close(); err != nil {
			t.Fatal(err)
		}
		return eps[0].Stats().Snapshot().Faults
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different fault streams:\n  %v\n  %v", a, b)
	}
	if a.Total() == 0 {
		t.Fatal("no faults injected")
	}
}

// TestPartitionWindowStallsThenHeals: a message sent into an open
// partition window is held until the window heals, then delivered.
func TestPartitionWindowStallsThenHeals(t *testing.T) {
	const window = 30 * time.Millisecond
	inner, err := amnet.NewChanNetwork(amnet.ChanConfig{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	nw := Wrap(inner, Policy{
		Partitions: []Partition{{A: 0, B: 1, After: 0, For: window}},
	})
	defer nw.Close()
	eps := nw.Endpoints()
	done := make(chan time.Time, 1)
	eps[1].Register(10, func(m amnet.Msg) { done <- time.Now() })
	sent := time.Now()
	eps[0].Send(amnet.Msg{Dst: 1, Handler: 10})
	select {
	case at := <-done:
		if lag := at.Sub(sent); lag < window/2 {
			t.Fatalf("partitioned message arrived after %v, want ≥ %v", lag, window/2)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("partitioned message never delivered after heal")
	}
	if got := eps[0].Stats().Snapshot().Faults.Get(trace.FaultPartition); got != 1 {
		t.Fatalf("partition fault count = %d, want 1", got)
	}
}

// TestKillFiresPeerDownAndDropsTraffic: Kill notifies every endpoint
// once — survivors and the killed node itself, so its processor does
// not block forever on peers it can no longer reach — and discards
// traffic to the dead peer.
func TestKillFiresPeerDownAndDropsTraffic(t *testing.T) {
	inner, err := amnet.NewChanNetwork(amnet.ChanConfig{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	nw := Wrap(inner, Policy{})
	defer nw.Close()
	eps := nw.Endpoints()
	var downs atomic.Int32
	for _, ep := range eps {
		ep.(amnet.PeerAware).SetPeerDownHandler(func(peer amnet.NodeID) {
			if peer != 2 {
				t.Errorf("peer down for %d, want 2", peer)
			}
			downs.Add(1)
		})
	}
	var delivered atomic.Int32
	eps[2].Register(10, func(m amnet.Msg) { delivered.Add(1) })
	nw.Kill(2)
	nw.Kill(2) // idempotent
	if got := downs.Load(); got != 3 {
		t.Fatalf("peer-down fired %d times, want 3 (once per endpoint, killed node included)", got)
	}
	eps[0].Send(amnet.Msg{Dst: 2, Handler: 10})
	time.Sleep(20 * time.Millisecond)
	if got := delivered.Load(); got != 0 {
		t.Fatalf("dead peer received %d messages", got)
	}
}

// peerAwareEP decorates a channel-network endpoint with a controllable
// peer-down signal, standing in for a supervised transport (tcpnet).
type peerAwareEP struct {
	amnet.Endpoint
	mu sync.Mutex
	fn func(peer amnet.NodeID)
}

func (e *peerAwareEP) SetPeerDownHandler(fn func(peer amnet.NodeID)) {
	e.mu.Lock()
	e.fn = fn
	e.mu.Unlock()
}

func (e *peerAwareEP) down(peer amnet.NodeID) {
	e.mu.Lock()
	fn := e.fn
	e.mu.Unlock()
	if fn != nil {
		fn(peer)
	}
}

type peerAwareNet struct {
	amnet.Network
	eps []amnet.Endpoint
}

func (n *peerAwareNet) Endpoints() []amnet.Endpoint { return n.eps }

// TestWrapForwardsInnerPeerDown: wrapping a PeerAware transport must not
// disconnect its peer-down detection — the inner transport's
// notification reaches the handler registered on the wrapper, including
// one that fired before the handler was installed.
func TestWrapForwardsInnerPeerDown(t *testing.T) {
	chans, err := amnet.NewChanNetwork(amnet.ChanConfig{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	aware := make([]*peerAwareEP, 2)
	inner := &peerAwareNet{Network: chans, eps: make([]amnet.Endpoint, 2)}
	for i, ep := range chans.Endpoints() {
		aware[i] = &peerAwareEP{Endpoint: ep}
		inner.eps[i] = aware[i]
	}
	nw := Wrap(inner, Policy{})
	defer nw.Close()
	eps := nw.Endpoints()

	var got atomic.Int32
	got.Store(-1)
	eps[0].(amnet.PeerAware).SetPeerDownHandler(func(peer amnet.NodeID) {
		got.Store(int32(peer))
	})
	aware[0].down(1)
	if p := got.Load(); p != 1 {
		t.Fatalf("forwarded peer-down = %d, want 1", p)
	}

	// A notification raised before the wrapper handler exists is
	// buffered and replayed at registration.
	aware[1].down(0)
	var late atomic.Int32
	late.Store(-1)
	eps[1].(amnet.PeerAware).SetPeerDownHandler(func(peer amnet.NodeID) {
		late.Store(int32(peer))
	})
	if p := late.Load(); p != 0 {
		t.Fatalf("buffered peer-down = %d, want 0", p)
	}
}
