// Package faultnet wraps any amnet.Network with seeded, deterministic
// fault injection: per-link delay and jitter, wire duplication, message
// reordering, bounded drop-with-redelivery, transient partition windows,
// and slow-receiver backpressure.
//
// The Ace coherence stack is built on the Active Messages fabric
// contract — per-pair FIFO ordering and exactly-once eventual delivery —
// so faultnet models an unreliable *wire* underneath a reliability
// layer, the way a real transport (see tcpnet's journal and sequence
// dedup) restores the contract over a lossy network. Every message gets
// a per-link sequence number; wire faults perturb, duplicate, lose
// (with bounded redelivery) or reorder transmissions; and a per-link
// resequencer on the receive side suppresses duplicates and releases
// messages in sequence order. What leaks through to the protocols is
// exactly what a hardened transport leaks through: stretched and bursty
// delivery timing, stalls across partition windows, and deep receiver
// queues — the conditions the chaos harness (package chaos) drives the
// protocol library through.
//
// Injected faults are counted per kind in the endpoint's trace.NetStats
// (Faults field), so they surface in ace.Metrics alongside the traffic
// counters.
package faultnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/trace"
)

// Policy configures the injected faults. The zero value injects
// nothing; Wrap with a zero policy is a transparent (but still
// resequenced) transport.
type Policy struct {
	// Seed seeds the per-link fault streams. Two networks wrapped with
	// the same policy draw identical per-link fault decisions for the
	// k-th message on each link.
	Seed int64

	// Delay is added to every inter-node message's wire transit; Jitter
	// adds a uniform random extra in [0, Jitter).
	Delay  time.Duration
	Jitter time.Duration

	// DupProb duplicates a transmission on the wire with the given
	// probability; the receive-side dedup suppresses the extra copy.
	DupProb float64

	// DropProb loses a transmission with the given probability. The
	// reliability layer redelivers it RedeliverAfter later (default
	// 2ms), so delivery stays exactly-once and eventual.
	DropProb float64

	// ReorderProb holds a transmission back by ReorderLag (default 2ms)
	// with the given probability, letting later messages on the link
	// overtake it on the wire; the resequencer restores order.
	ReorderProb float64

	// RedeliverAfter is the redelivery lag for dropped transmissions
	// and for transmissions lost to a partition window. Default 2ms.
	RedeliverAfter time.Duration

	// ReorderLag is how far a reordered transmission is held back.
	// Default 2ms.
	ReorderLag time.Duration

	// Partitions are transient windows during which all traffic between
	// a node pair is lost on the wire (and redelivered after the window
	// heals).
	Partitions []Partition

	// SlowNode, when SlowDelay > 0, names a node whose inbound
	// deliveries are stretched by SlowDelay each — modelling a slow
	// receiver whose queues deepen under load.
	SlowNode  int
	SlowDelay time.Duration
}

// Partition is one transient partition window: traffic between nodes A
// and B — in both directions; the pair is unordered — is lost while the
// window is open. After is measured from Wrap time.
type Partition struct {
	A, B  int
	After time.Duration
	For   time.Duration
}

const (
	defaultRedeliver = 2 * time.Millisecond
	defaultReorder   = 2 * time.Millisecond
)

// Wrap returns nw with p's faults injected on every inter-node link.
// Closing the returned network drains pending deliveries (in sequence
// order, ignoring residual fault delays) and closes nw.
func Wrap(nw amnet.Network, p Policy) *Network {
	if p.RedeliverAfter <= 0 {
		p.RedeliverAfter = defaultRedeliver
	}
	if p.ReorderLag <= 0 {
		p.ReorderLag = defaultReorder
	}
	inner := nw.Endpoints()
	fn := &Network{inner: nw, policy: p, start: time.Now()}
	fn.killed = make([]bool, len(inner))
	fn.eps = make([]*endpoint, len(inner))
	for i, iep := range inner {
		ep := &endpoint{nw: fn, inner: iep, wake: make(chan struct{}, 1)}
		ep.links = make([]*link, len(inner))
		for j := range ep.links {
			ep.links[j] = &link{
				rng:      rand.New(rand.NewSource(mix(p.Seed, i, j))),
				expected: 1,
				buffered: make(map[uint64]amnet.Msg),
			}
		}
		// A peer-aware inner transport (tcpnet) keeps its peer-down
		// detection through the wrapper: its notifications forward into
		// the same handler Kill fires.
		if pa, ok := iep.(amnet.PeerAware); ok {
			pa.SetPeerDownHandler(ep.firePeerDown)
		}
		fn.eps[i] = ep
	}
	for _, ep := range fn.eps {
		fn.wg.Add(1)
		go ep.run(&fn.wg)
	}
	return fn
}

// mix derives a per-link seed from the policy seed and the link's
// (src, dst) pair, splitmix64-style so nearby seeds diverge.
func mix(seed int64, src, dst int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(src*1024+dst+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Network is a fault-injecting view of an inner amnet.Network.
type Network struct {
	inner  amnet.Network
	policy Policy
	start  time.Time
	eps    []*endpoint
	wg     sync.WaitGroup

	killMu sync.Mutex
	killed []bool
}

// Endpoints returns the fault-injecting endpoints, one per inner node.
func (n *Network) Endpoints() []amnet.Endpoint {
	out := make([]amnet.Endpoint, len(n.eps))
	for i, ep := range n.eps {
		out[i] = ep
	}
	return out
}

// Start forwards amnet.Starter to the inner network, releasing a gated
// transport's dispatch pumps once handler registration is done. A no-op
// for ungated inner networks.
func (n *Network) Start() {
	if st, ok := n.inner.(amnet.Starter); ok {
		st.Start()
	}
}

// Close drains pending deliveries and closes the inner network.
func (n *Network) Close() error {
	for _, ep := range n.eps {
		ep.close()
	}
	n.wg.Wait()
	return n.inner.Close()
}

// Kill simulates the permanent loss of a peer: every endpoint's
// peer-down handler fires — including the killed node's own, so its
// processor fails blocked waits instead of hanging on peers it can no
// longer reach — and traffic to or from the peer, pending or future, is
// silently discarded. It is the fault the runtime's ErrPeerLost path is
// tested against without a real network.
func (n *Network) Kill(peer amnet.NodeID) {
	n.killMu.Lock()
	if int(peer) >= len(n.killed) || n.killed[peer] {
		n.killMu.Unlock()
		return
	}
	n.killed[peer] = true
	n.killMu.Unlock()
	for _, ep := range n.eps {
		ep.firePeerDown(peer)
	}
}

// Revive clears a peer's killed state so a rejoin drill can resume
// traffic through it. Call Quiesce first: revival only stops future
// discards, and any pre-kill attempt still scheduled would otherwise be
// released to a runtime that has re-armed its peer-down latch.
func (n *Network) Revive(peer amnet.NodeID) {
	n.killMu.Lock()
	if int(peer) < len(n.killed) {
		n.killed[peer] = false
	}
	n.killMu.Unlock()
}

// Quiesce blocks until every endpoint's scheduled wire attempts have
// been released or discarded, then a little longer so the releases
// drain through the inner fabric's dispatch. After a Kill the
// schedulers converge quickly — every due attempt involving the dead
// peer is discarded after resequencing (so sequence gaps cannot wedge a
// link) — which makes Quiesce the fence between "the old run's traffic
// is gone" and reviving the cluster.
func (n *Network) Quiesce() {
	settled := 0
	for settled < 2 {
		pending := 0
		for _, ep := range n.eps {
			ep.mu.Lock()
			pending += len(ep.heap)
			ep.mu.Unlock()
		}
		if pending == 0 {
			settled++
		} else {
			settled = 0
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (n *Network) isKilled(id amnet.NodeID) bool {
	n.killMu.Lock()
	defer n.killMu.Unlock()
	return n.killed[id]
}

// partitionedUntil reports whether the (a,b) pair is inside a partition
// window at now (an offset from Wrap time), and if so when the window
// heals.
func (n *Network) partitionedUntil(a, b amnet.NodeID, now time.Duration) (time.Duration, bool) {
	for _, w := range n.policy.Partitions {
		if (int(a) == w.A && int(b) == w.B) || (int(a) == w.B && int(b) == w.A) {
			if now >= w.After && now < w.After+w.For {
				return w.After + w.For, true
			}
		}
	}
	return 0, false
}

// attempt is one wire transmission of a message: the seq-th message on
// the src endpoint's link to dst, deliverable at due.
type attempt struct {
	dst amnet.NodeID
	seq uint64
	msg amnet.Msg
	due time.Time
}

type attemptHeap []attempt

func (h attemptHeap) Len() int           { return len(h) }
func (h attemptHeap) Less(i, j int) bool { return h[i].due.Before(h[j].due) }
func (h attemptHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *attemptHeap) Push(x any)        { *h = append(*h, x.(attempt)) }
func (h *attemptHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = attempt{}
	*h = old[:n-1]
	return it
}

// link is the per-(src,dst) fault stream and resequencer. All fields
// are guarded by the owning endpoint's mu.
type link struct {
	rng     *rand.Rand
	nextSeq uint64

	// Resequencer: expected is the next sequence to release; buffered
	// holds messages that arrived (on the simulated wire) out of order.
	expected uint64
	buffered map[uint64]amnet.Msg
}

// endpoint wraps one inner endpoint. Send runs the fault model and
// schedules wire transmissions; the run goroutine releases them through
// the per-link resequencer into the inner endpoint at their due times.
type endpoint struct {
	nw    *Network
	inner amnet.Endpoint
	links []*link

	mu     sync.Mutex
	heap   attemptHeap
	closed bool
	downFn func(peer amnet.NodeID)
	// downPending buffers peer-down notifications (from the inner
	// transport or Kill) that arrive before a handler is registered.
	downPending []amnet.NodeID

	wake chan struct{}
}

func (e *endpoint) ID() amnet.NodeID                              { return e.inner.ID() }
func (e *endpoint) Nodes() int                                    { return e.inner.Nodes() }
func (e *endpoint) Register(id amnet.HandlerID, fn amnet.Handler) { e.inner.Register(id, fn) }
func (e *endpoint) Stats() *trace.NetStats                        { return e.inner.Stats() }

// SetPeerDownHandler implements amnet.PeerAware: fn fires when Kill
// declares a peer lost or the inner transport reports one down.
// Notifications that arrived before registration are replayed.
func (e *endpoint) SetPeerDownHandler(fn func(peer amnet.NodeID)) {
	e.mu.Lock()
	e.downFn = fn
	pending := e.downPending
	e.downPending = nil
	e.mu.Unlock()
	for _, peer := range pending {
		fn(peer)
	}
}

// firePeerDown delivers a peer-down notification to the registered
// handler, buffering it when none is registered yet (the inner
// transport could report a peer down before the runtime attaches its
// handler).
func (e *endpoint) firePeerDown(peer amnet.NodeID) {
	e.mu.Lock()
	fn := e.downFn
	if fn == nil {
		e.downPending = append(e.downPending, peer)
	}
	e.mu.Unlock()
	if fn != nil {
		fn(peer)
	}
}

// Send runs the fault model for one message and schedules its wire
// transmission(s). It never blocks. Self-sends bypass the fault model
// entirely (the wire is not involved).
//
// The caller's payload-ownership contract is the fabric's: faultnet
// holds the payload by reference until delivery, so it does not
// implement PayloadCopier and the runtime clones payloads before Send
// as it does for the channel network.
func (e *endpoint) Send(m amnet.Msg) {
	if m.Dst == e.inner.ID() {
		e.inner.Send(m)
		return
	}
	if int(m.Dst) < 0 || int(m.Dst) >= len(e.links) {
		panic(fmt.Sprintf("faultnet: send to invalid node %d", m.Dst))
	}
	m.Src = e.inner.ID()
	p := &e.nw.policy
	stats := e.inner.Stats()
	now := time.Now()
	elapsed := now.Sub(e.nw.start)

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		amnet.Recycle(m.Payload)
		return
	}
	l := e.links[m.Dst]
	l.nextSeq++
	seq := l.nextSeq

	due := now
	if p.Delay > 0 {
		due = due.Add(p.Delay)
		stats.CountFault(trace.FaultDelay)
	}
	if p.Jitter > 0 {
		due = due.Add(time.Duration(l.rng.Int63n(int64(p.Jitter))))
		if p.Delay <= 0 {
			stats.CountFault(trace.FaultDelay)
		}
	}
	if healAt, part := e.nw.partitionedUntil(m.Src, m.Dst, elapsed); part {
		// The wire eats the transmission; the reliability layer
		// redelivers once the window heals.
		due = e.nw.start.Add(healAt + p.RedeliverAfter)
		stats.CountFault(trace.FaultPartition)
	} else if p.DropProb > 0 && l.rng.Float64() < p.DropProb {
		due = due.Add(p.RedeliverAfter)
		stats.CountFault(trace.FaultDrop)
	}
	if p.ReorderProb > 0 && l.rng.Float64() < p.ReorderProb {
		due = due.Add(p.ReorderLag)
		stats.CountFault(trace.FaultReorder)
	}
	if p.SlowDelay > 0 && int(m.Dst) == p.SlowNode {
		due = due.Add(p.SlowDelay)
		stats.CountFault(trace.FaultSlow)
	}
	heap.Push(&e.heap, attempt{dst: m.Dst, seq: seq, msg: m, due: due})
	if p.DupProb > 0 && l.rng.Float64() < p.DupProb {
		// A second copy of the same transmission, slightly later; the
		// resequencer suppresses it on arrival.
		heap.Push(&e.heap, attempt{dst: m.Dst, seq: seq, msg: m, due: due.Add(time.Millisecond)})
		stats.CountFault(trace.FaultDup)
	}
	e.mu.Unlock()
	select {
	case e.wake <- struct{}{}:
	default:
	}
}

// run is the wire scheduler: it releases due attempts through the
// per-link resequencer into the inner endpoint. One goroutine per
// endpoint, so releases on a link are totally ordered.
func (e *endpoint) run(wg *sync.WaitGroup) {
	defer wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	var release []amnet.Msg
	for {
		e.mu.Lock()
		if len(e.heap) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		now := time.Now()
		var wait time.Duration
		ready := false
		if len(e.heap) > 0 {
			if e.closed {
				ready = true // drain: ignore residual fault delays
			} else if d := e.heap[0].due.Sub(now); d <= 0 {
				ready = true
			} else {
				wait = d
			}
		}
		if !ready {
			e.mu.Unlock()
			if wait > 0 {
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(wait)
				select {
				case <-e.wake:
				case <-timer.C:
				}
			} else {
				<-e.wake
			}
			continue
		}
		release = release[:0]
		for len(e.heap) > 0 && (e.closed || !e.heap[0].due.After(now)) {
			a := heap.Pop(&e.heap).(attempt)
			release = e.links[a.dst].resequence(a, e.inner.Stats(), release)
		}
		e.mu.Unlock()
		for i := range release {
			m := release[i]
			if e.nw.isKilled(m.Dst) || e.nw.isKilled(m.Src) {
				amnet.Recycle(m.Payload)
				continue
			}
			e.inner.Send(m)
			release[i] = amnet.Msg{}
		}
	}
}

// resequence feeds one wire arrival through the link's reliability
// layer, appending any messages that become releasable (in sequence
// order) to out. Duplicates — wire dups and already-released
// redeliveries — are suppressed and counted. Caller holds the owning
// endpoint's mu.
func (l *link) resequence(a attempt, stats *trace.NetStats, out []amnet.Msg) []amnet.Msg {
	if a.seq < l.expected {
		stats.CountFault(trace.FaultWireDup)
		return out
	}
	if a.seq > l.expected {
		if _, dup := l.buffered[a.seq]; dup {
			stats.CountFault(trace.FaultWireDup)
			return out
		}
		l.buffered[a.seq] = a.msg
		return out
	}
	out = append(out, a.msg)
	l.expected++
	for {
		m, ok := l.buffered[l.expected]
		if !ok {
			return out
		}
		delete(l.buffered, l.expected)
		out = append(out, m)
		l.expected++
	}
}

// close marks the endpoint closed and wakes the scheduler for the
// drain.
func (e *endpoint) close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	select {
	case e.wake <- struct{}{}:
	default:
	}
}
