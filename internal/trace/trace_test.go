package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilAndDisabledRecorder(t *testing.T) {
	var nilRec *Recorder
	if nilRec.Begin() != 0 {
		t.Error("nil recorder Begin != 0")
	}
	nilRec.End(OpMap, 0, nilRec.Begin()) // must not panic
	nilRec.AddSpace(0, "sc")
	nilRec.SetProtocol(0, "update")
	if nilRec.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	if m := nilRec.Snapshot(); m.Ops.Total() != 0 {
		t.Error("nil recorder counted something")
	}
	if evs := nilRec.Events(); evs != nil {
		t.Error("nil recorder has events")
	}

	off := NewRecorder(0, nil)
	off.AddSpace(0, "sc")
	off.End(OpMap, 0, off.Begin())
	if got := off.Snapshot().Ops.Get(OpMap); got != 0 {
		t.Errorf("disabled recorder counted %d maps", got)
	}
}

func TestRecorderCountsAndLatency(t *testing.T) {
	r := NewRecorder(3, &Config{Metrics: true})
	r.AddSpace(0, "sc")
	r.AddSpace(1, "update")
	for i := 0; i < 10; i++ {
		r.End(OpStartRead, 0, r.Begin())
	}
	r.End(OpBarrier, 1, r.Begin())
	m := r.Snapshot()
	if got := m.Ops.Get(OpStartRead); got != 10 {
		t.Errorf("start_read = %d, want 10", got)
	}
	if got := m.Ops.Total(); got != 11 {
		t.Errorf("total = %d, want 11", got)
	}
	if len(m.Spaces) != 2 {
		t.Fatalf("spaces = %d, want 2", len(m.Spaces))
	}
	if m.Spaces[0].Protocol != "sc" || m.Spaces[1].Protocol != "update" {
		t.Errorf("protocols = %q, %q", m.Spaces[0].Protocol, m.Spaces[1].Protocol)
	}
	if m.Spaces[1].Ops.Get(OpBarrier) != 1 {
		t.Errorf("space 1 barrier = %d", m.Spaces[1].Ops.Get(OpBarrier))
	}
	if h := m.OpLatency[OpStartRead]; h.Count != 10 {
		t.Errorf("latency count = %d, want 10", h.Count)
	}
	// SetProtocol shows up in the next snapshot.
	r.SetProtocol(0, "migratory")
	if got := r.Snapshot().Spaces[0].Protocol; got != "migratory" {
		t.Errorf("protocol after SetProtocol = %q", got)
	}
}

// TestRecorderCountersOnly: the cheap tier counts brackets and misses
// without touching the clock — Begin returns the countOnly token and the
// latency histograms stay empty. The adaptive controller runs on this
// tier, so the counts it consumes must still be exact.
func TestRecorderCountersOnly(t *testing.T) {
	r := NewRecorder(0, &Config{Counters: true})
	r.AddSpace(0, "sc")
	if tok := r.Begin(); tok != countOnly {
		t.Errorf("Begin = %d, want countOnly", tok)
	}
	for i := 0; i < 7; i++ {
		r.End(OpStartWrite, 0, r.Begin())
	}
	r.RemoteMiss(OpStartWrite, 0)
	r.FastHit(OpStartWrite, 0)
	m := r.Snapshot()
	if got := m.Ops.Get(OpStartWrite); got != 7 {
		t.Errorf("start_write = %d, want 7", got)
	}
	if got := m.Spaces[0].RemoteWriteMisses; got != 1 {
		t.Errorf("remote write misses = %d, want 1", got)
	}
	if got := m.FastOps.Get(OpStartWrite); got != 1 {
		t.Errorf("fast start_write = %d, want 1", got)
	}
	if h := m.OpLatency[OpStartWrite]; h.Count != 0 || h.SumNS != 0 {
		t.Errorf("counters-only tier recorded latency: count=%d sum=%d", h.Count, h.SumNS)
	}
}

// TestRecorderConcurrency hammers brackets from P goroutines while a
// reader snapshots; run under -race this is the data-race check the
// lock-free counters must pass.
func TestRecorderConcurrency(t *testing.T) {
	const procs, perProc = 8, 2000
	r := NewRecorder(0, &Config{Metrics: true, Events: 256})
	r.AddSpace(0, "sc")

	done := make(chan struct{})
	go func() { // concurrent snapshot reader
		for {
			select {
			case <-done:
				return
			default:
				_ = r.Snapshot()
				_ = r.Events()
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				op := Op(i % int(NumOps))
				r.End(op, 0, r.Begin())
				if i%100 == 0 {
					r.AddSpace(1+i%3, "update") // concurrent space growth
				}
			}
		}(g)
	}
	wg.Wait()
	close(done)
	if got := r.Snapshot().Ops.Total(); got != procs*perProc {
		t.Errorf("total ops = %d, want %d", got, procs*perProc)
	}
}

func TestEventRingWrap(t *testing.T) {
	r := NewRecorder(1, &Config{Events: 4})
	r.AddSpace(0, "sc")
	for i := 0; i < 10; i++ {
		r.End(OpMap, 0, r.Begin())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Errorf("events out of order: %d before %d", evs[i].TS, evs[i-1].TS)
		}
	}
	if evs[0].Proc != 1 || evs[0].Op != OpMap || evs[0].Proto != "sc" {
		t.Errorf("event fields: %+v", evs[0])
	}
}

func TestZeroAllocationBrackets(t *testing.T) {
	off := NewRecorder(0, nil)
	if n := testing.AllocsPerRun(100, func() {
		off.End(OpStartWrite, 0, off.Begin())
	}); n != 0 {
		t.Errorf("disabled bracket allocates %v times", n)
	}
	on := NewRecorder(0, &Config{Metrics: true})
	on.AddSpace(0, "sc")
	if n := testing.AllocsPerRun(100, func() {
		on.End(OpStartWrite, 0, on.Begin())
	}); n != 0 {
		t.Errorf("metrics bracket allocates %v times", n)
	}
	var ns NetStats
	if n := testing.AllocsPerRun(100, func() {
		ns.CountSend(64)
		ns.CountRecv(3, 64)
		ns.ObserveDeliver(ns.SendStamp())
	}); n != 0 {
		t.Errorf("net counters allocate %v times", n)
	}
}

func TestHistogram(t *testing.T) {
	var h hist
	h.observe(0)
	h.observe(1)
	h.observe(1000) // bucket 10: [512, 1024)
	h.observe(-5)   // clamped to 0
	s := h.snapshot()
	if s.Count != 4 || s.SumNS != 1001 {
		t.Errorf("count/sum = %d/%d", s.Count, s.SumNS)
	}
	if s.Buckets[0] != 2 || s.Buckets[1] != 1 || s.Buckets[10] != 1 {
		t.Errorf("buckets: %v", s.Buckets[:12])
	}
	if m := s.Mean(); m != 250*time.Nanosecond {
		t.Errorf("mean = %v", m)
	}
	if q := s.Quantile(1.0); q != 1024*time.Nanosecond {
		t.Errorf("p100 = %v, want 1.024µs", q)
	}
	if q := s.Quantile(0); q != 0 {
		t.Errorf("p0 = %v, want 0", q)
	}
	// Add/Sub round-trip.
	sum := s.Add(s)
	if sum.Count != 8 {
		t.Errorf("Add count = %d", sum.Count)
	}
	if back := sum.Sub(s); back != s {
		t.Error("Sub does not invert Add")
	}
	if (Histogram{}).Mean() != 0 || (Histogram{}).Quantile(0.5) != 0 {
		t.Error("empty histogram stats nonzero")
	}
}

func TestNetStats(t *testing.T) {
	var s NetStats
	s.CountSend(100)
	s.CountSend(50)
	s.CountRecv(7, 100)
	snap := s.Snapshot()
	if snap.MsgsSent != 2 || snap.BytesSent != 150 || snap.MsgsRecv != 1 || snap.BytesRecv != 100 {
		t.Errorf("snapshot: %+v", snap)
	}
	if got := s.PerHandler[7].Load(); got != 1 {
		t.Errorf("per-handler count = %d", got)
	}
	// Sampling off: stamps are zero and observations ignored.
	if s.SendStamp() != 0 {
		t.Error("stamp nonzero with sampling off")
	}
	s.ObserveDeliver(0)
	if s.Snapshot().Deliver.Count != 0 {
		t.Error("zero stamp observed")
	}
	s.EnableLatencySampling(true)
	st := s.SendStamp()
	if st == 0 {
		t.Error("stamp zero with sampling on")
	}
	s.ObserveDeliver(st)
	if s.Snapshot().Deliver.Count != 1 {
		t.Error("deliver sample not recorded")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	events := []Event{
		{TS: 2000, Dur: 500, Proc: 1, Space: 0, Op: OpStartWrite, Proto: "sc"},
		{TS: 1000, Dur: 300, Proc: 0, Space: -1, Op: OpBarrier},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events, 2); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 1 process_name + 2 thread_name metadata + 2 X events.
	if len(out.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5", len(out.TraceEvents))
	}
	var xs []int
	for i, e := range out.TraceEvents {
		switch e.Ph {
		case "M":
		case "X":
			xs = append(xs, i)
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if len(xs) != 2 {
		t.Fatalf("got %d X events", len(xs))
	}
	first, second := out.TraceEvents[xs[0]], out.TraceEvents[xs[1]]
	if first.Name != "barrier" || second.Name != "start_write" {
		t.Errorf("X events not sorted by TS: %q, %q", first.Name, second.Name)
	}
	if first.TS != 1.0 || second.Dur != 0.5 {
		t.Errorf("µs conversion: ts=%v dur=%v", first.TS, second.Dur)
	}
	if first.Args != nil {
		t.Error("space -1 should have no args")
	}
	if second.Args["proto"] != "sc" {
		t.Errorf("args: %v", second.Args)
	}
}

func TestMetricsAdd(t *testing.T) {
	a := Metrics{
		Spaces: []SpaceMetrics{{Space: 0, Protocol: "sc", Ops: OpCounts{OpMap: 2}}},
	}
	a.Ops[OpMap] = 2
	b := Metrics{
		Spaces: []SpaceMetrics{
			{Space: 0, Protocol: "sc", Ops: OpCounts{OpMap: 3}},
			{Space: 1, Protocol: "update", Ops: OpCounts{OpBarrier: 1}},
		},
	}
	b.Ops[OpMap] = 3
	b.Ops[OpBarrier] = 1
	sum := a.Add(b)
	if sum.Ops.Get(OpMap) != 5 || sum.Ops.Get(OpBarrier) != 1 {
		t.Errorf("ops: %v", sum.Ops)
	}
	if len(sum.Spaces) != 2 {
		t.Fatalf("spaces = %d", len(sum.Spaces))
	}
	if sum.Spaces[0].Ops.Get(OpMap) != 5 {
		t.Errorf("space 0 maps = %d", sum.Spaces[0].Ops.Get(OpMap))
	}
	if sum.Spaces[1].Protocol != "update" {
		t.Errorf("space 1 proto = %q", sum.Spaces[1].Protocol)
	}
}
