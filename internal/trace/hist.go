package trace

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of power-of-two latency buckets. Bucket i
// holds durations d with bits.Len64(d) == i, i.e. bucket 0 is exactly
// 0ns, bucket i covers [2^(i-1), 2^i) ns; the top bucket absorbs
// everything longer (~9 hours and up).
const HistBuckets = 46

// hist is a live latency histogram updated with atomics: lock-free,
// allocation-free, snapshot-able while hot.
type hist struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	buckets [HistBuckets]atomic.Uint64
}

func bucketOf(ns int64) int {
	b := bits.Len64(uint64(ns))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

func (h *hist) observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(uint64(ns))
	h.buckets[bucketOf(ns)].Add(1)
}

func (h *hist) snapshot() Histogram {
	var s Histogram
	s.Count = h.count.Load()
	s.SumNS = h.sum.Load()
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Histogram is a plain-value latency histogram snapshot.
type Histogram struct {
	// Count is the number of observations.
	Count uint64
	// SumNS is the sum of all observed durations in nanoseconds.
	SumNS uint64
	// Buckets are power-of-two duration buckets; see HistBuckets.
	Buckets [HistBuckets]uint64
}

// Add returns the bucket-wise sum of two histograms.
func (s Histogram) Add(o Histogram) Histogram {
	s.Count += o.Count
	s.SumNS += o.SumNS
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	return s
}

// Sub returns the bucket-wise difference s - o (for interval deltas of
// monotonic snapshots). Each field saturates at zero: when snapshots
// straddle a counter reset (e.g. the ChangeProtocol epoch rollover) the
// older snapshot can exceed the newer one, and an unsigned wraparound
// would make Quantile/Mean nonsense. Count is recomputed from the
// clamped buckets so the delta stays internally consistent.
func (s Histogram) Sub(o Histogram) Histogram {
	if s.SumNS >= o.SumNS {
		s.SumNS -= o.SumNS
	} else {
		s.SumNS = 0
	}
	var count uint64
	for i := range s.Buckets {
		if s.Buckets[i] >= o.Buckets[i] {
			s.Buckets[i] -= o.Buckets[i]
		} else {
			s.Buckets[i] = 0
		}
		count += s.Buckets[i]
	}
	s.Count = count
	return s
}

// Mean returns the mean observed duration (0 when empty).
func (s Histogram) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / s.Count)
}

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1) from the
// bucket boundaries: the result is exact to within a factor of two.
func (s Histogram) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	if target >= s.Count {
		target = s.Count - 1
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum > target {
			return time.Duration(bucketHigh(i))
		}
	}
	return time.Duration(bucketHigh(HistBuckets - 1))
}

// bucketHigh is the exclusive upper bound of bucket i in nanoseconds.
func bucketHigh(i int) int64 {
	if i == 0 {
		return 0
	}
	return 1 << i
}
