package trace

// OpCounts is a plain-value vector of per-operation invocation counts,
// indexable by Op.
type OpCounts [NumOps]uint64

// Get returns the count for op.
func (c OpCounts) Get(op Op) uint64 {
	if op < NumOps {
		return c[op]
	}
	return 0
}

// Total returns the sum over all operations.
func (c OpCounts) Total() uint64 {
	var t uint64
	for _, v := range c {
		t += v
	}
	return t
}

// Add returns the element-wise sum of two count vectors.
func (c OpCounts) Add(o OpCounts) OpCounts {
	for i := range c {
		c[i] += o[i]
	}
	return c
}

// Sub returns the element-wise difference c - o.
func (c OpCounts) Sub(o OpCounts) OpCounts {
	for i := range c {
		c[i] -= o[i]
	}
	return c
}

// SpaceMetrics is one space's metrics on one processor (or, after
// aggregation, across processors).
type SpaceMetrics struct {
	// Space is the space id.
	Space int
	// Protocol is the space's protocol name at snapshot time.
	Protocol string
	// Ops counts protocol invocations on the space.
	Ops OpCounts
	// FastOps counts the subset of Ops that completed on the runtime's
	// lock-free bracket fast path (never entering the protocol).
	FastOps OpCounts
	// Latency holds one invocation-latency histogram per operation.
	Latency [NumOps]Histogram
}

func (m SpaceMetrics) merge(o SpaceMetrics) SpaceMetrics {
	m.Ops = m.Ops.Add(o.Ops)
	m.FastOps = m.FastOps.Add(o.FastOps)
	for i := range m.Latency {
		m.Latency[i] = m.Latency[i].Add(o.Latency[i])
	}
	if m.Protocol == "" {
		m.Protocol = o.Protocol
	}
	return m
}

// Metrics is the unified observability snapshot: operation counts and
// latencies (total and per space) plus network traffic. It is the value
// returned by the public instrumentation API (Proc.Snapshot,
// Cluster.Metrics).
type Metrics struct {
	// Ops counts protocol invocations across all spaces.
	Ops OpCounts
	// FastOps counts the subset of Ops that completed on the runtime's
	// lock-free bracket fast path.
	FastOps OpCounts
	// OpLatency aggregates invocation latency across all spaces.
	OpLatency [NumOps]Histogram
	// Spaces breaks the counts down by space and protocol.
	Spaces []SpaceMetrics
	// Net aggregates the endpoint traffic counters.
	Net NetSnapshot
}

// Add merges two metrics snapshots: counts and histograms sum, and
// per-space entries merge by space id.
func (m Metrics) Add(o Metrics) Metrics {
	m.Ops = m.Ops.Add(o.Ops)
	m.FastOps = m.FastOps.Add(o.FastOps)
	for i := range m.OpLatency {
		m.OpLatency[i] = m.OpLatency[i].Add(o.OpLatency[i])
	}
	merged := make([]SpaceMetrics, len(m.Spaces))
	copy(merged, m.Spaces)
	for _, osp := range o.Spaces {
		found := false
		for i := range merged {
			if merged[i].Space == osp.Space {
				merged[i] = merged[i].merge(osp)
				found = true
				break
			}
		}
		if !found {
			merged = append(merged, osp)
		}
	}
	m.Spaces = merged
	m.Net = m.Net.Add(o.Net)
	return m
}
