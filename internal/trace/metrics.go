package trace

// OpCounts is a plain-value vector of per-operation invocation counts,
// indexable by Op.
type OpCounts [NumOps]uint64

// Get returns the count for op.
func (c OpCounts) Get(op Op) uint64 {
	if op < NumOps {
		return c[op]
	}
	return 0
}

// Total returns the sum over all operations.
func (c OpCounts) Total() uint64 {
	var t uint64
	for _, v := range c {
		t += v
	}
	return t
}

// Add returns the element-wise sum of two count vectors.
func (c OpCounts) Add(o OpCounts) OpCounts {
	for i := range c {
		c[i] += o[i]
	}
	return c
}

// Sub returns the element-wise difference c - o, saturating at zero so
// that deltas taken across a counter reset clamp instead of wrapping.
func (c OpCounts) Sub(o OpCounts) OpCounts {
	for i := range c {
		if c[i] >= o[i] {
			c[i] -= o[i]
		} else {
			c[i] = 0
		}
	}
	return c
}

// SpaceMetrics is one space's metrics on one processor (or, after
// aggregation, across processors).
type SpaceMetrics struct {
	// Space is the space id.
	Space int
	// Protocol is the space's protocol name at snapshot time.
	Protocol string
	// Ops counts protocol invocations on the space.
	Ops OpCounts
	// FastOps counts the subset of Ops that completed on the runtime's
	// lock-free bracket fast path (never entering the protocol).
	FastOps OpCounts
	// Latency holds one invocation-latency histogram per operation.
	Latency [NumOps]Histogram
	// RemoteReadMisses / RemoteWriteMisses count bracket opens that had
	// to reach a remote home for data or permission (slow path only).
	RemoteReadMisses  uint64
	RemoteWriteMisses uint64
}

func (m SpaceMetrics) merge(o SpaceMetrics) SpaceMetrics {
	m.Ops = m.Ops.Add(o.Ops)
	m.FastOps = m.FastOps.Add(o.FastOps)
	for i := range m.Latency {
		m.Latency[i] = m.Latency[i].Add(o.Latency[i])
	}
	m.RemoteReadMisses += o.RemoteReadMisses
	m.RemoteWriteMisses += o.RemoteWriteMisses
	if m.Protocol == "" {
		m.Protocol = o.Protocol
	}
	return m
}

// Sub returns the element-wise delta m - o of two snapshots of the same
// space, saturating at zero (see OpCounts.Sub and Histogram.Sub): the
// adaptive controller's per-epoch feature vector. The protocol name is
// taken from the newer snapshot.
func (m SpaceMetrics) Sub(o SpaceMetrics) SpaceMetrics {
	m.Ops = m.Ops.Sub(o.Ops)
	m.FastOps = m.FastOps.Sub(o.FastOps)
	for i := range m.Latency {
		m.Latency[i] = m.Latency[i].Sub(o.Latency[i])
	}
	if m.RemoteReadMisses >= o.RemoteReadMisses {
		m.RemoteReadMisses -= o.RemoteReadMisses
	} else {
		m.RemoteReadMisses = 0
	}
	if m.RemoteWriteMisses >= o.RemoteWriteMisses {
		m.RemoteWriteMisses -= o.RemoteWriteMisses
	} else {
		m.RemoteWriteMisses = 0
	}
	return m
}

// AdaptStats is one space's adaptive-controller state, surfaced through
// Metrics.Adapt when Options.Adapt is set. The controller runs the same
// deterministic decision sequence on every processor, so per-processor
// snapshots agree; aggregation keeps the furthest-evolved one.
type AdaptStats struct {
	// Space is the space id.
	Space int
	// Protocol is the currently installed protocol.
	Protocol string
	// Pattern is the most recent classified access pattern (empty until
	// the first epoch with enough signal).
	Pattern string
	// Epochs counts adaptation evaluations (controller barriers).
	Epochs uint64
	// Switches counts controller-initiated ChangeProtocol calls,
	// rollbacks included.
	Switches uint64
	// Rollbacks counts the subset of Switches that reversed a switch
	// whose probation epoch cost more than the pre-switch baseline.
	Rollbacks uint64
	// Migrations counts controller-initiated MigrateHome calls (region
	// re-homing driven by the per-home traffic skew trigger).
	Migrations uint64
	// LastSwitchEpoch is the epoch of the most recent switch (0 = none).
	LastSwitchEpoch uint64
}

// Metrics is the unified observability snapshot: operation counts and
// latencies (total and per space) plus network traffic. It is the value
// returned by the public instrumentation API (Proc.Snapshot,
// Cluster.Metrics).
type Metrics struct {
	// Ops counts protocol invocations across all spaces.
	Ops OpCounts
	// FastOps counts the subset of Ops that completed on the runtime's
	// lock-free bracket fast path.
	FastOps OpCounts
	// OpLatency aggregates invocation latency across all spaces.
	OpLatency [NumOps]Histogram
	// Spaces breaks the counts down by space and protocol.
	Spaces []SpaceMetrics
	// Adapt holds per-space adaptive-controller state (empty unless the
	// cluster runs with Options.Adapt).
	Adapt []AdaptStats
	// Net aggregates the endpoint traffic counters.
	Net NetSnapshot
	// Coll aggregates the collective-topology and protocol-aggregation
	// counters.
	Coll CollSnapshot
}

// Add merges two metrics snapshots: counts and histograms sum, and
// per-space entries merge by space id.
func (m Metrics) Add(o Metrics) Metrics {
	m.Ops = m.Ops.Add(o.Ops)
	m.FastOps = m.FastOps.Add(o.FastOps)
	for i := range m.OpLatency {
		m.OpLatency[i] = m.OpLatency[i].Add(o.OpLatency[i])
	}
	merged := make([]SpaceMetrics, len(m.Spaces))
	copy(merged, m.Spaces)
	for _, osp := range o.Spaces {
		found := false
		for i := range merged {
			if merged[i].Space == osp.Space {
				merged[i] = merged[i].merge(osp)
				found = true
				break
			}
		}
		if !found {
			merged = append(merged, osp)
		}
	}
	m.Spaces = merged
	adapt := make([]AdaptStats, len(m.Adapt))
	copy(adapt, m.Adapt)
	for _, oa := range o.Adapt {
		found := false
		for i := range adapt {
			if adapt[i].Space == oa.Space {
				// The controller is deterministic and collective, so
				// per-processor states agree; keep the furthest-evolved
				// snapshot in case one was taken mid-epoch.
				if oa.Epochs > adapt[i].Epochs {
					adapt[i] = oa
				}
				found = true
				break
			}
		}
		if !found {
			adapt = append(adapt, oa)
		}
	}
	m.Adapt = adapt
	m.Net = m.Net.Add(o.Net)
	m.Coll = m.Coll.Add(o.Coll)
	return m
}
