package trace

import (
	"testing"
	"time"
)

func histOf(ns ...int64) Histogram {
	var h hist
	for _, d := range ns {
		h.observe(d)
	}
	return h.snapshot()
}

// TestHistogramSubClampsAcrossReset: Sub computes interval deltas of
// monotonic snapshots, but a counter reset (e.g. the ChangeProtocol
// epoch rollover) can make the newer snapshot smaller than the older
// one. The difference must clamp at zero instead of wrapping the uint64
// counters into astronomically large values that poison Quantile/Mean —
// the adaptive controller's epoch deltas are computed exactly this way.
func TestHistogramSubClampsAcrossReset(t *testing.T) {
	tests := []struct {
		name string
		s, o Histogram
		want Histogram
	}{
		{
			name: "plain monotonic delta",
			s:    histOf(1, 1, 100, 100, 5000),
			o:    histOf(1, 100),
			want: histOf(1, 100, 5000),
		},
		{
			name: "identical snapshots",
			s:    histOf(7, 7, 7),
			o:    histOf(7, 7, 7),
			want: Histogram{},
		},
		{
			name: "full reset: newer snapshot empty",
			s:    Histogram{},
			o:    histOf(1, 100, 5000),
			want: Histogram{},
		},
		{
			// The sum underflow clamps to zero (the true value is
			// unrecoverable after a reset); the surviving bucket keeps
			// the delta usable for Quantile.
			name: "reset then a few new observations",
			s:    histOf(30),
			o:    histOf(1, 1, 100, 5000),
			want: func() Histogram {
				var h Histogram
				h.Count = 1
				h.Buckets[bucketOf(30)] = 1
				return h
			}(),
		},
		{
			// Count is recomputed from the clamped buckets, keeping the
			// snapshot internally consistent.
			name: "partial underflow: one bucket shrank",
			s:    histOf(1, 5000, 5000),
			o:    histOf(1, 1, 5000),
			want: func() Histogram {
				var h Histogram
				h.Count = 1
				h.SumNS = 4999
				h.Buckets[bucketOf(5000)] = 1
				return h
			}(),
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.s.Sub(tt.o)
			if got != tt.want {
				t.Errorf("Sub:\n got %+v\nwant %+v", got, tt.want)
			}
			if got.Count == 0 {
				if m := got.Mean(); m != 0 {
					t.Errorf("Mean of empty delta = %v, want 0", m)
				}
				return
			}
			// A sane delta never reports a quantile above the top
			// bucket of the minuend or a mean beyond its sum.
			if q := got.Quantile(0.99); q < 0 || q > time.Duration(bucketHigh(HistBuckets-1)) {
				t.Errorf("Quantile(0.99) = %v out of range", q)
			}
			if got.SumNS > tt.s.SumNS {
				t.Errorf("delta SumNS %d exceeds minuend SumNS %d", got.SumNS, tt.s.SumNS)
			}
		})
	}
}

// TestOpCountsSubClampsAcrossReset: same clamping contract for the
// per-operation counter vector.
func TestOpCountsSubClampsAcrossReset(t *testing.T) {
	var s, o OpCounts
	s[OpStartRead] = 10
	s[OpStartWrite] = 2
	o[OpStartRead] = 4
	o[OpStartWrite] = 5 // counter reset: older snapshot is larger
	got := s.Sub(o)
	if got[OpStartRead] != 6 {
		t.Errorf("StartRead delta = %d, want 6", got[OpStartRead])
	}
	if got[OpStartWrite] != 0 {
		t.Errorf("StartWrite delta = %d, want 0 (clamped)", got[OpStartWrite])
	}
	if tot := got.Total(); tot != 6 {
		t.Errorf("Total = %d, want 6", tot)
	}
}
