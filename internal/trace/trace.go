// Package trace is the Ace runtime's unified observability layer: one
// subsystem holding the counters, latency histograms and event traces
// that were previously scattered across core.OpStats, amnet.Stats and
// ad-hoc bench counters.
//
// Three surfaces:
//
//   - Recorder: per-processor monotonic counters and latency histograms
//     for every protocol invocation point (Map, Unmap, StartRead, ...,
//     Barrier, Lock, Unlock), keyed by space and protocol name.
//   - NetStats: per-endpoint message/byte counters with per-handler
//     breakdown and sampled send→deliver latency.
//   - A bounded per-processor event ring exported as Chrome trace_event
//     JSON, so a whole run can be inspected in chrome://tracing or
//     Perfetto (see WriteChromeTrace).
//
// All hot-path entry points are nil-safe, allocation-free, and guarded
// by an atomic enable flag: with instrumentation disabled a bracket
// costs one atomic load and one branch.
//
// Snapshots (Metrics, NetSnapshot, Histogram) are plain values safe to
// copy, compare and aggregate; live state (Recorder, NetStats) is
// updated with atomics and may be snapshotted concurrently with use.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Op names an instrumented runtime primitive. The first eleven mirror
// the legacy core.OpStats fields one for one.
type Op uint8

// The instrumented operations.
const (
	OpGMalloc Op = iota
	OpMap
	OpUnmap
	OpStartRead
	OpEndRead
	OpStartWrite
	OpEndWrite
	OpBarrier
	OpLock
	OpUnlock
	OpChangeProtocol
	OpFreeSpace
	NumOps
)

var opNames = [NumOps]string{
	"gmalloc", "map", "unmap", "start_read", "end_read",
	"start_write", "end_write", "barrier", "lock", "unlock",
	"change_protocol", "free_space",
}

func (o Op) String() string {
	if o < NumOps {
		return opNames[o]
	}
	return "invalid_op"
}

// Config selects what the observability layer records. A nil *Config
// anywhere in the API means "disabled".
type Config struct {
	// Metrics enables per-space operation counters and latency
	// histograms, and send→deliver latency sampling on the network
	// endpoints.
	Metrics bool

	// Counters enables the cheap tier of Metrics: per-space operation
	// and miss counters without latency histograms, timestamps, or
	// network latency sampling. A counted bracket costs two atomic adds
	// and no clock reads, so the tier is safe to leave on under
	// benchmarks — it exists for the adaptive controller, which needs
	// the counts at every barrier but must not tax the application it
	// is trying to speed up. Implied by Metrics.
	Counters bool

	// Events, when positive, is the per-processor event ring capacity:
	// the last Events bracketed operations per processor are retained
	// and exported by WriteChromeTrace. Zero disables event tracing.
	// Event tracing implies metrics collection.
	Events int
}

// epoch anchors the package's monotonic clock. All trace timestamps are
// nanoseconds since process start, comparable across goroutines (and
// across the in-process network transports).
var epoch = time.Now()

// Now returns the current trace timestamp in nanoseconds.
func Now() int64 { return int64(time.Since(epoch)) }

// Event is one completed bracketed operation in the event ring.
type Event struct {
	// TS is the operation's start, in nanoseconds since the trace epoch.
	TS int64
	// Dur is the operation's duration in nanoseconds.
	Dur int64
	// Proc is the processor the operation ran on.
	Proc int32
	// Space is the space the operation addressed (-1 if none).
	Space int32
	// Op is the operation.
	Op Op
	// Proto is the space's protocol name at the time of the operation.
	Proto string
}

// spaceCounters is the live per-space state: one counter and one
// histogram per operation, plus the protocol name (swapped atomically on
// ChangeProtocol).
type spaceCounters struct {
	proto atomic.Pointer[string]
	ops   [NumOps]atomic.Uint64
	fast  [NumOps]atomic.Uint64
	lat   [NumOps]hist
	// rmRead/rmWrite count bracket opens that found the region's data
	// remote (home elsewhere, slow path taken): the adaptive
	// controller's sharing-pattern signal. Only the slow path reports
	// them, so the fast path stays allocation- and branch-lean.
	rmRead  atomic.Uint64
	rmWrite atomic.Uint64
}

// Recorder collects one processor's operation metrics and events. The
// zero value and the nil pointer are valid, permanently disabled
// recorders. Begin/End are safe to call from any goroutine; AddSpace and
// SetProtocol must be externally ordered with respect to End calls that
// name the space (the runtime guarantees this: spaces are created before
// they are used).
type Recorder struct {
	proc    int32
	enabled atomic.Bool
	timing  atomic.Bool // latency histograms + timestamps (full Metrics tier)
	spaces  atomic.Pointer[[]*spaceCounters]

	evOn   atomic.Bool
	mu     sync.Mutex // guards the ring and space growth
	events []Event
	evNext uint64
}

// NewRecorder creates the recorder for processor proc under cfg. A nil
// or all-zero cfg yields a disabled recorder that still tracks space
// names (so enabling later via Enable observes a correct space table).
func NewRecorder(proc int, cfg *Config) *Recorder {
	r := &Recorder{proc: int32(proc)}
	if cfg != nil && (cfg.Metrics || cfg.Counters || cfg.Events > 0) {
		r.enabled.Store(true)
		r.timing.Store(cfg.Metrics || cfg.Events > 0)
		if cfg.Events > 0 {
			r.events = make([]Event, cfg.Events)
			r.evOn.Store(true)
		}
	}
	return r
}

// Enable switches metric collection on or off at runtime, at the tier
// the recorder was configured with (a counters-only recorder re-enables
// as counters-only).
func (r *Recorder) Enable(on bool) {
	if r == nil {
		return
	}
	r.enabled.Store(on)
}

// Enabled reports whether the recorder is collecting.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled.Load() }

// AddSpace registers space id with the given protocol name. Spaces are
// dense, created in id order; AddSpace is idempotent for already-known
// ids.
func (r *Recorder) AddSpace(id int, proto string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var cur []*spaceCounters
	if p := r.spaces.Load(); p != nil {
		cur = *p
	}
	if id < len(cur) {
		return
	}
	// Copy-on-write so End may index the slice with a bare atomic load.
	grown := make([]*spaceCounters, id+1)
	copy(grown, cur)
	for i := len(cur); i <= id; i++ {
		sc := &spaceCounters{}
		name := proto
		sc.proto.Store(&name)
		grown[i] = sc
	}
	r.spaces.Store(&grown)
}

// SetProtocol records that space id switched to the named protocol.
func (r *Recorder) SetProtocol(id int, proto string) {
	if r == nil {
		return
	}
	if p := r.spaces.Load(); p != nil && id >= 0 && id < len(*p) {
		(*p)[id].proto.Store(&proto)
	}
}

// countOnly is Begin's token for the counters-only tier: the bracket is
// counted but not timed. Now() is nanoseconds since process start, so a
// negative value can never be a real timestamp.
const countOnly int64 = -1

// Begin opens a bracketed operation, returning a timestamp token to pass
// to End. It returns 0 when the recorder is disabled, which makes the
// matching End a single branch, and the countOnly token when only
// counters are collected — the token is what keeps clock reads off the
// counters-only hot path. Zero-allocation.
func (r *Recorder) Begin() int64 {
	if r == nil || !r.enabled.Load() {
		return 0
	}
	if !r.timing.Load() {
		return countOnly
	}
	return Now()
}

// End closes a bracketed operation started at begin, attributing it to
// op on the given space (-1 for no space). A zero begin (disabled
// recorder) returns immediately; a countOnly begin increments the
// operation counter and nothing else. Zero-allocation.
func (r *Recorder) End(op Op, space int, begin int64) {
	if begin == 0 {
		return
	}
	if begin == countOnly {
		if p := r.spaces.Load(); p != nil && space >= 0 && space < len(*p) {
			(*p)[space].ops[op].Add(1)
		}
		return
	}
	end := Now()
	d := end - begin
	if d < 0 {
		d = 0
	}
	var proto string
	if p := r.spaces.Load(); p != nil && space >= 0 && space < len(*p) {
		sc := (*p)[space]
		sc.ops[op].Add(1)
		sc.lat[op].observe(d)
		proto = *sc.proto.Load()
	}
	if r.evOn.Load() {
		r.pushEvent(Event{TS: begin, Dur: d, Proc: r.proc, Space: int32(space), Op: op, Proto: proto})
	}
}

// FastHit counts an invocation of op on space that completed on the
// runtime's lock-free bracket fast path. Callers also record the
// operation itself through Begin/End; FastHit only marks the subset.
// Zero-allocation; a single branch when the recorder is disabled.
func (r *Recorder) FastHit(op Op, space int) {
	if r == nil || !r.enabled.Load() {
		return
	}
	if p := r.spaces.Load(); p != nil && space >= 0 && space < len(*p) {
		(*p)[space].fast[op].Add(1)
	}
}

// RemoteMiss counts a bracket open (OpStartRead or OpStartWrite) on
// space that had to reach a remote home for data or permission — the
// slow-path analogue of a cache miss. Nil-safe, zero-allocation, one
// branch when disabled.
func (r *Recorder) RemoteMiss(op Op, space int) {
	if r == nil || !r.enabled.Load() {
		return
	}
	if p := r.spaces.Load(); p != nil && space >= 0 && space < len(*p) {
		sc := (*p)[space]
		if op == OpStartWrite {
			sc.rmWrite.Add(1)
		} else {
			sc.rmRead.Add(1)
		}
	}
}

// SpaceSnapshot returns one space's metrics (ok=false for an unknown
// space or a nil recorder). The adaptive controller diffs consecutive
// snapshots with SpaceMetrics.Sub to get per-epoch deltas.
func (r *Recorder) SpaceSnapshot(id int) (SpaceMetrics, bool) {
	if r == nil {
		return SpaceMetrics{}, false
	}
	p := r.spaces.Load()
	if p == nil || id < 0 || id >= len(*p) {
		return SpaceMetrics{}, false
	}
	return (*p)[id].snapshot(id), true
}

func (sc *spaceCounters) snapshot(id int) SpaceMetrics {
	sm := SpaceMetrics{Space: id, Protocol: *sc.proto.Load()}
	for op := Op(0); op < NumOps; op++ {
		sm.Ops[op] = sc.ops[op].Load()
		sm.FastOps[op] = sc.fast[op].Load()
		sm.Latency[op] = sc.lat[op].snapshot()
	}
	sm.RemoteReadMisses = sc.rmRead.Load()
	sm.RemoteWriteMisses = sc.rmWrite.Load()
	return sm
}

func (r *Recorder) pushEvent(ev Event) {
	r.mu.Lock()
	if n := uint64(len(r.events)); n > 0 {
		r.events[r.evNext%n] = ev
		r.evNext++
	}
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.events))
	if n == 0 {
		return nil
	}
	if r.evNext <= n {
		out := make([]Event, r.evNext)
		copy(out, r.events[:r.evNext])
		return out
	}
	out := make([]Event, 0, n)
	idx := r.evNext % n
	out = append(out, r.events[idx:]...)
	out = append(out, r.events[:idx]...)
	return out
}

// Snapshot returns the recorder's metrics: per-space operation counts
// and latency histograms plus the cross-space totals. The network half
// of the returned Metrics is zero; callers holding the matching endpoint
// fill it in.
func (r *Recorder) Snapshot() Metrics {
	var m Metrics
	if r == nil {
		return m
	}
	p := r.spaces.Load()
	if p == nil {
		return m
	}
	for id, sc := range *p {
		sm := sc.snapshot(id)
		m.Ops = m.Ops.Add(sm.Ops)
		m.FastOps = m.FastOps.Add(sm.FastOps)
		for op := Op(0); op < NumOps; op++ {
			m.OpLatency[op] = m.OpLatency[op].Add(sm.Latency[op])
		}
		m.Spaces = append(m.Spaces, sm)
	}
	return m
}
