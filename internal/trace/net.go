package trace

import "sync/atomic"

// MaxHandlers bounds the per-handler receive breakdown; it matches the
// network fabric's handler-table size (amnet.MaxHandlers is defined as
// this constant).
const MaxHandlers = 256

// NetStats is one network endpoint's traffic telemetry: message and byte
// counters for both directions, a per-handler receive breakdown, and a
// sampled send→deliver latency histogram. All updates are atomic; the
// struct may be read while the network is live, but a consistent
// snapshot requires the network to be quiescent (for example, inside a
// barrier).
type NetStats struct {
	MsgsSent  atomic.Uint64
	BytesSent atomic.Uint64
	MsgsRecv  atomic.Uint64
	BytesRecv atomic.Uint64

	// Flushes counts write-coalescing flushes on transports that batch
	// frames into buffered writes (one flush hands one batch to the
	// kernel). MsgsSent/Flushes is the mean coalescing factor; the
	// per-message counters above stay exact regardless of batching.
	Flushes atomic.Uint64

	// PerHandler counts messages received per handler id.
	PerHandler [MaxHandlers]atomic.Uint64

	sampling atomic.Bool
	deliver  hist
}

// CountSend records one sent message of the given wire footprint.
func (s *NetStats) CountSend(wire int) {
	s.MsgsSent.Add(1)
	s.BytesSent.Add(uint64(wire))
}

// CountRecv records one received message of the given wire footprint,
// destined for the given handler.
func (s *NetStats) CountRecv(handler uint16, wire int) {
	s.MsgsRecv.Add(1)
	s.BytesRecv.Add(uint64(wire))
	if int(handler) < MaxHandlers {
		s.PerHandler[handler].Add(1)
	}
}

// CountFlush records one coalesced write of a batch of frames.
func (s *NetStats) CountFlush() { s.Flushes.Add(1) }

// EnableLatencySampling switches send→deliver latency sampling on or
// off. Off (the default) makes SendStamp free apart from one atomic
// load.
func (s *NetStats) EnableLatencySampling(on bool) { s.sampling.Store(on) }

// SendStamp returns a send timestamp to attach to an outgoing message,
// or 0 when latency sampling is disabled. Transports carry the stamp to
// the destination and hand it to the receiving endpoint's
// ObserveDeliver.
func (s *NetStats) SendStamp() int64 {
	if !s.sampling.Load() {
		return 0
	}
	return Now()
}

// ObserveDeliver records the send→deliver latency of a message stamped
// with sentNS at its source. A zero stamp (sampling disabled at send
// time) is ignored. Timestamps are on the process-local trace clock, so
// the measurement is meaningful for in-process transports (the channel
// network and the loopback TCP network).
func (s *NetStats) ObserveDeliver(sentNS int64) {
	if sentNS == 0 {
		return
	}
	s.deliver.observe(Now() - sentNS)
}

// Snapshot returns the current counter values.
func (s *NetStats) Snapshot() NetSnapshot {
	return NetSnapshot{
		MsgsSent:  s.MsgsSent.Load(),
		BytesSent: s.BytesSent.Load(),
		MsgsRecv:  s.MsgsRecv.Load(),
		BytesRecv: s.BytesRecv.Load(),
		Flushes:   s.Flushes.Load(),
		Deliver:   s.deliver.snapshot(),
	}
}

// NetSnapshot is a plain-value copy of NetStats suitable for arithmetic.
type NetSnapshot struct {
	MsgsSent, BytesSent uint64
	MsgsRecv, BytesRecv uint64
	Flushes             uint64

	// Deliver is the sampled send→deliver latency distribution of
	// messages received by this endpoint.
	Deliver Histogram
}

// Sub returns the element-wise difference s - o.
func (s NetSnapshot) Sub(o NetSnapshot) NetSnapshot {
	return NetSnapshot{
		MsgsSent:  s.MsgsSent - o.MsgsSent,
		BytesSent: s.BytesSent - o.BytesSent,
		MsgsRecv:  s.MsgsRecv - o.MsgsRecv,
		BytesRecv: s.BytesRecv - o.BytesRecv,
		Flushes:   s.Flushes - o.Flushes,
		Deliver:   s.Deliver.Sub(o.Deliver),
	}
}

// Add returns the element-wise sum s + o.
func (s NetSnapshot) Add(o NetSnapshot) NetSnapshot {
	return NetSnapshot{
		MsgsSent:  s.MsgsSent + o.MsgsSent,
		BytesSent: s.BytesSent + o.BytesSent,
		MsgsRecv:  s.MsgsRecv + o.MsgsRecv,
		BytesRecv: s.BytesRecv + o.BytesRecv,
		Flushes:   s.Flushes + o.Flushes,
		Deliver:   s.Deliver.Add(o.Deliver),
	}
}
