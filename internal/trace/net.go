package trace

import "sync/atomic"

// MaxHandlers bounds the per-handler receive breakdown; it matches the
// network fabric's handler-table size (amnet.MaxHandlers is defined as
// this constant).
const MaxHandlers = 256

// FaultKind names one class of injected transport fault (see package
// faultnet). The kinds index FaultCounts.
type FaultKind uint8

// The injected fault kinds.
const (
	// FaultDelay: a message's wire transit was stretched by the
	// configured delay/jitter.
	FaultDelay FaultKind = iota
	// FaultDup: the wire carried a second copy of the message.
	FaultDup
	// FaultReorder: the message was held back so a later message on the
	// same link could overtake it on the wire.
	FaultReorder
	// FaultDrop: the first transmission was lost; a bounded redelivery
	// was scheduled.
	FaultDrop
	// FaultPartition: the message was sent into a transient partition
	// window and held until after the window healed.
	FaultPartition
	// FaultSlow: delivery was stretched by slow-receiver backpressure.
	FaultSlow
	// FaultWireDup: a duplicate or already-delivered copy was suppressed
	// by the receive-side dedup (the counterpart of FaultDup and of
	// redelivered drops).
	FaultWireDup
	NumFaultKinds
)

var faultNames = [NumFaultKinds]string{
	"delay", "dup", "reorder", "drop", "partition", "slow", "wiredup",
}

func (k FaultKind) String() string {
	if k < NumFaultKinds {
		return faultNames[k]
	}
	return "invalid_fault"
}

// FaultCounts is a plain-value vector of injected-fault counts,
// indexable by FaultKind.
type FaultCounts [NumFaultKinds]uint64

// Get returns the count for kind k.
func (c FaultCounts) Get(k FaultKind) uint64 {
	if k < NumFaultKinds {
		return c[k]
	}
	return 0
}

// Total returns the sum over all fault kinds.
func (c FaultCounts) Total() uint64 {
	var t uint64
	for _, v := range c {
		t += v
	}
	return t
}

// Add returns the element-wise sum of two count vectors.
func (c FaultCounts) Add(o FaultCounts) FaultCounts {
	for i := range c {
		c[i] += o[i]
	}
	return c
}

// Sub returns the element-wise difference c - o.
func (c FaultCounts) Sub(o FaultCounts) FaultCounts {
	for i := range c {
		c[i] -= o[i]
	}
	return c
}

// NetStats is one network endpoint's traffic telemetry: message and byte
// counters for both directions, a per-handler receive breakdown, and a
// sampled send→deliver latency histogram. All updates are atomic; the
// struct may be read while the network is live, but a consistent
// snapshot requires the network to be quiescent (for example, inside a
// barrier).
type NetStats struct {
	MsgsSent  atomic.Uint64
	BytesSent atomic.Uint64
	MsgsRecv  atomic.Uint64
	BytesRecv atomic.Uint64

	// Flushes counts write-coalescing flushes on transports that batch
	// frames into buffered writes (one flush hands one batch to the
	// kernel). MsgsSent/Flushes is the mean coalescing factor; the
	// per-message counters above stay exact regardless of batching.
	Flushes atomic.Uint64

	// PerHandler counts messages received per handler id.
	PerHandler [MaxHandlers]atomic.Uint64

	// Reconnects counts connection re-establishments on transports with
	// connection supervision; Backoffs counts the backoff sleeps taken
	// while reconnecting (Backoffs ≥ Reconnects when dials fail).
	Reconnects atomic.Uint64
	Backoffs   atomic.Uint64
	// Retransmits counts journal frames re-sent after a reconnect, and
	// DupFramesDropped the frames the receive-side sequence dedup
	// discarded (retransmitted frames that had already arrived).
	Retransmits      atomic.Uint64
	DupFramesDropped atomic.Uint64

	// Faults counts injected transport faults per kind on endpoints
	// wrapped by a fault-injecting transport (package faultnet).
	Faults [NumFaultKinds]atomic.Uint64

	// Send-queue telemetry on transports with bounded per-connection
	// send queues (the supervised TCP transport's unacked journal).
	// SendQueueDepth is a live gauge of frames currently queued across
	// this endpoint's connections; SendQueueHighWater the deepest any
	// single connection's queue has been; SendQueueStalls counts
	// enqueues that blocked because a connection's queue was full — the
	// backpressure a gateway tier must observe instead of silently
	// hanging behind it.
	SendQueueDepth     atomic.Int64
	SendQueueHighWater atomic.Uint64
	SendQueueStalls    atomic.Uint64

	sampling atomic.Bool
	deliver  hist
}

// AddSendQueueDepth moves the live send-queue gauge by delta (positive
// on enqueue, negative when acks or a teardown release frames).
func (s *NetStats) AddSendQueueDepth(delta int) {
	s.SendQueueDepth.Add(int64(delta))
}

// ObserveSendQueue folds one connection's current queue depth into the
// high-water mark.
func (s *NetStats) ObserveSendQueue(depth int) {
	d := uint64(depth)
	for {
		cur := s.SendQueueHighWater.Load()
		if d <= cur || s.SendQueueHighWater.CompareAndSwap(cur, d) {
			return
		}
	}
}

// CountSendQueueStall records one enqueue that blocked on a full
// per-connection send queue.
func (s *NetStats) CountSendQueueStall() { s.SendQueueStalls.Add(1) }

// CountFault records one injected fault of the given kind.
func (s *NetStats) CountFault(k FaultKind) {
	if k < NumFaultKinds {
		s.Faults[k].Add(1)
	}
}

// CountSend records one sent message of the given wire footprint.
func (s *NetStats) CountSend(wire int) {
	s.MsgsSent.Add(1)
	s.BytesSent.Add(uint64(wire))
}

// CountRecv records one received message of the given wire footprint,
// destined for the given handler.
func (s *NetStats) CountRecv(handler uint16, wire int) {
	s.MsgsRecv.Add(1)
	s.BytesRecv.Add(uint64(wire))
	if int(handler) < MaxHandlers {
		s.PerHandler[handler].Add(1)
	}
}

// CountFlush records one coalesced write of a batch of frames.
func (s *NetStats) CountFlush() { s.Flushes.Add(1) }

// EnableLatencySampling switches send→deliver latency sampling on or
// off. Off (the default) makes SendStamp free apart from one atomic
// load.
func (s *NetStats) EnableLatencySampling(on bool) { s.sampling.Store(on) }

// SendStamp returns a send timestamp to attach to an outgoing message,
// or 0 when latency sampling is disabled. Transports carry the stamp to
// the destination and hand it to the receiving endpoint's
// ObserveDeliver.
func (s *NetStats) SendStamp() int64 {
	if !s.sampling.Load() {
		return 0
	}
	return Now()
}

// ObserveDeliver records the send→deliver latency of a message stamped
// with sentNS at its source. A zero stamp (sampling disabled at send
// time) is ignored. Timestamps are on the process-local trace clock, so
// the measurement is meaningful for in-process transports (the channel
// network and the loopback TCP network).
func (s *NetStats) ObserveDeliver(sentNS int64) {
	if sentNS == 0 {
		return
	}
	s.deliver.observe(Now() - sentNS)
}

// Snapshot returns the current counter values.
func (s *NetStats) Snapshot() NetSnapshot {
	snap := NetSnapshot{
		MsgsSent:         s.MsgsSent.Load(),
		BytesSent:        s.BytesSent.Load(),
		MsgsRecv:         s.MsgsRecv.Load(),
		BytesRecv:        s.BytesRecv.Load(),
		Flushes:          s.Flushes.Load(),
		Reconnects:       s.Reconnects.Load(),
		Backoffs:         s.Backoffs.Load(),
		Retransmits:      s.Retransmits.Load(),
		DupFramesDropped: s.DupFramesDropped.Load(),
		SendQueueDepth:   s.SendQueueDepth.Load(),
		SendQueueHW:      s.SendQueueHighWater.Load(),
		SendQueueStalls:  s.SendQueueStalls.Load(),
		Deliver:          s.deliver.snapshot(),
	}
	for i := range snap.Faults {
		snap.Faults[i] = s.Faults[i].Load()
	}
	return snap
}

// NetSnapshot is a plain-value copy of NetStats suitable for arithmetic.
type NetSnapshot struct {
	MsgsSent, BytesSent uint64
	MsgsRecv, BytesRecv uint64
	Flushes             uint64

	// Connection-supervision counters (transports with reconnect).
	Reconnects, Backoffs          uint64
	Retransmits, DupFramesDropped uint64

	// Send-queue telemetry (transports with bounded per-connection send
	// queues). SendQueueDepth and SendQueueHW are gauges: Sub keeps the
	// minuend's values (a delta of a gauge is meaningless) and Add takes
	// the sum of depths but the max of high-waters.
	SendQueueDepth  int64
	SendQueueHW     uint64
	SendQueueStalls uint64

	// Faults counts injected transport faults per kind (package
	// faultnet); all zero on unwrapped transports.
	Faults FaultCounts

	// Deliver is the sampled send→deliver latency distribution of
	// messages received by this endpoint.
	Deliver Histogram
}

// Sub returns the element-wise difference s - o.
func (s NetSnapshot) Sub(o NetSnapshot) NetSnapshot {
	return NetSnapshot{
		MsgsSent:         s.MsgsSent - o.MsgsSent,
		BytesSent:        s.BytesSent - o.BytesSent,
		MsgsRecv:         s.MsgsRecv - o.MsgsRecv,
		BytesRecv:        s.BytesRecv - o.BytesRecv,
		Flushes:          s.Flushes - o.Flushes,
		Reconnects:       s.Reconnects - o.Reconnects,
		Backoffs:         s.Backoffs - o.Backoffs,
		Retransmits:      s.Retransmits - o.Retransmits,
		DupFramesDropped: s.DupFramesDropped - o.DupFramesDropped,
		SendQueueDepth:   s.SendQueueDepth,
		SendQueueHW:      s.SendQueueHW,
		SendQueueStalls:  s.SendQueueStalls - o.SendQueueStalls,
		Faults:           s.Faults.Sub(o.Faults),
		Deliver:          s.Deliver.Sub(o.Deliver),
	}
}

// Add returns the element-wise sum s + o.
func (s NetSnapshot) Add(o NetSnapshot) NetSnapshot {
	return NetSnapshot{
		MsgsSent:         s.MsgsSent + o.MsgsSent,
		BytesSent:        s.BytesSent + o.BytesSent,
		MsgsRecv:         s.MsgsRecv + o.MsgsRecv,
		BytesRecv:        s.BytesRecv + o.BytesRecv,
		Flushes:          s.Flushes + o.Flushes,
		Reconnects:       s.Reconnects + o.Reconnects,
		Backoffs:         s.Backoffs + o.Backoffs,
		Retransmits:      s.Retransmits + o.Retransmits,
		DupFramesDropped: s.DupFramesDropped + o.DupFramesDropped,
		SendQueueDepth:   s.SendQueueDepth + o.SendQueueDepth,
		SendQueueHW:      max(s.SendQueueHW, o.SendQueueHW),
		SendQueueStalls:  s.SendQueueStalls + o.SendQueueStalls,
		Faults:           s.Faults.Add(o.Faults),
		Deliver:          s.Deliver.Add(o.Deliver),
	}
}
