package trace

import "sync/atomic"

// FrameBuckets is the size of the regions-per-frame histogram kept for
// aggregated protocol frames: buckets 1, 2, 3-4, 5-8, 9-16, 17+.
const FrameBuckets = 6

// CollStats counts collective and aggregation traffic on one processor.
// Like NetStats it is always on and lock-free: the counting sites sit on
// the barrier and push paths, where a mutex would serialize exactly the
// traffic the counters exist to observe.
type CollStats struct {
	barriers   atomic.Uint64
	reduces    atomic.Uint64
	bcasts     atomic.Uint64
	hops       atomic.Uint64
	bytes      atomic.Uint64
	aggFrames  atomic.Uint64
	aggRegions atomic.Uint64
	aggBytes   atomic.Uint64
	frameHist  [FrameBuckets]atomic.Uint64
}

// CountBarrier records one barrier entered by the local thread.
func (s *CollStats) CountBarrier() { s.barriers.Add(1) }

// CountReduce records one all-reduce round entered by the local thread.
func (s *CollStats) CountReduce() { s.reduces.Add(1) }

// CountBcast records one broadcast participated in by the local thread.
func (s *CollStats) CountBcast() { s.bcasts.Add(1) }

// CountHops records msgs collective wire messages carrying bytes payload
// bytes in total (arrivals sent up, results and releases fanned down).
func (s *CollStats) CountHops(msgs, bytes int) {
	s.hops.Add(uint64(msgs))
	s.bytes.Add(uint64(bytes))
}

// CountFrame records one aggregated protocol frame carrying the given
// number of region records and payload bytes.
func (s *CollStats) CountFrame(regions, bytes int) {
	s.aggFrames.Add(1)
	s.aggRegions.Add(uint64(regions))
	s.aggBytes.Add(uint64(bytes))
	s.frameHist[frameBucket(regions)].Add(1)
}

// frameBucket maps a regions-per-frame count to its histogram bucket.
func frameBucket(regions int) int {
	switch {
	case regions <= 1:
		return 0
	case regions == 2:
		return 1
	case regions <= 4:
		return 2
	case regions <= 8:
		return 3
	case regions <= 16:
		return 4
	default:
		return 5
	}
}

// FrameBucketLabel returns the human-readable range of histogram bucket i.
func FrameBucketLabel(i int) string {
	return [FrameBuckets]string{"1", "2", "3-4", "5-8", "9-16", "17+"}[i]
}

// Snapshot returns a plain-value copy of the counters.
func (s *CollStats) Snapshot() CollSnapshot {
	c := CollSnapshot{
		Barriers:   s.barriers.Load(),
		Reduces:    s.reduces.Load(),
		Bcasts:     s.bcasts.Load(),
		Hops:       s.hops.Load(),
		Bytes:      s.bytes.Load(),
		AggFrames:  s.aggFrames.Load(),
		AggRegions: s.aggRegions.Load(),
		AggBytes:   s.aggBytes.Load(),
	}
	for i := range s.frameHist {
		c.FrameHist[i] = s.frameHist[i].Load()
	}
	return c
}

// CollSnapshot is a point-in-time copy of one processor's (or, after
// aggregation, a cluster's) collective and aggregation counters.
type CollSnapshot struct {
	// Barriers / Reduces / Bcasts count collective rounds entered by
	// application threads (each processor counts its own entry, so the
	// cluster-wide number is rounds × processors).
	Barriers uint64
	Reduces  uint64
	Bcasts   uint64
	// Hops counts collective wire messages sent by this processor:
	// arrivals and partials up the topology, results and releases down.
	Hops uint64
	// Bytes is the payload bytes carried by those hops.
	Bytes uint64
	// AggFrames counts aggregated protocol frames sent; AggRegions the
	// region records they carried; AggBytes their payload bytes.
	AggFrames  uint64
	AggRegions uint64
	AggBytes   uint64
	// FrameHist is the regions-per-frame histogram (see FrameBucketLabel).
	FrameHist [FrameBuckets]uint64
}

// Add returns the element-wise sum of two snapshots.
func (c CollSnapshot) Add(o CollSnapshot) CollSnapshot {
	c.Barriers += o.Barriers
	c.Reduces += o.Reduces
	c.Bcasts += o.Bcasts
	c.Hops += o.Hops
	c.Bytes += o.Bytes
	c.AggFrames += o.AggFrames
	c.AggRegions += o.AggRegions
	c.AggBytes += o.AggBytes
	for i := range c.FrameHist {
		c.FrameHist[i] += o.FrameHist[i]
	}
	return c
}
