package trace

import "sync/atomic"

// GateStats is the session gateway's telemetry: session and room
// lifecycle counts, op throughput, and — the part that matters under
// load — the backpressure counters for the bounded per-session send
// queues and per-room op queues. All updates are atomic; a consistent
// snapshot requires quiescence, like NetStats.
type GateStats struct {
	SessionsOpened atomic.Uint64
	SessionsClosed atomic.Uint64
	RoomsCreated   atomic.Uint64
	RoomsDestroyed atomic.Uint64

	FramesIn  atomic.Uint64
	FramesOut atomic.Uint64
	// BadFrames counts client frames the decoder rejected (malformed,
	// oversized, unknown op). Rejections answer with an error event or a
	// close — never a panic.
	BadFrames atomic.Uint64

	OpsApplied atomic.Uint64
	// OpsDropped counts client ops discarded before application: room op
	// queue full, room not joined, or op raced a room teardown.
	OpsDropped atomic.Uint64
	// StaleSpaceRefs counts ops that named a space generation the space
	// table no longer carries (the op raced a destroy); they are dropped,
	// never applied to the slot's new occupant.
	StaleSpaceRefs atomic.Uint64
	Broadcasts     atomic.Uint64

	// SendQueueDrops counts event frames dropped because a session's
	// bounded send queue was full (the SlowDrop policy); SlowClients
	// counts sessions closed for sustained backpressure (SlowClose, or
	// SlowDrop past its drop budget). SendQueueHighWater is the deepest
	// any session's queue has been; OpQueueHighWater the deepest any
	// room's op queue has been.
	SendQueueDrops     atomic.Uint64
	SlowClients        atomic.Uint64
	SendQueueHighWater atomic.Uint64
	OpQueueHighWater   atomic.Uint64
}

// ObserveSendQueue folds one session queue depth into the high-water mark.
func (g *GateStats) ObserveSendQueue(depth int) { observeMax(&g.SendQueueHighWater, depth) }

// ObserveOpQueue folds one room op-queue depth into the high-water mark.
func (g *GateStats) ObserveOpQueue(depth int) { observeMax(&g.OpQueueHighWater, depth) }

func observeMax(hw *atomic.Uint64, depth int) {
	d := uint64(depth)
	for {
		cur := hw.Load()
		if d <= cur || hw.CompareAndSwap(cur, d) {
			return
		}
	}
}

// Snapshot returns the current counter values.
func (g *GateStats) Snapshot() GateSnapshot {
	return GateSnapshot{
		SessionsOpened:     g.SessionsOpened.Load(),
		SessionsClosed:     g.SessionsClosed.Load(),
		RoomsCreated:       g.RoomsCreated.Load(),
		RoomsDestroyed:     g.RoomsDestroyed.Load(),
		FramesIn:           g.FramesIn.Load(),
		FramesOut:          g.FramesOut.Load(),
		BadFrames:          g.BadFrames.Load(),
		OpsApplied:         g.OpsApplied.Load(),
		OpsDropped:         g.OpsDropped.Load(),
		StaleSpaceRefs:     g.StaleSpaceRefs.Load(),
		Broadcasts:         g.Broadcasts.Load(),
		SendQueueDrops:     g.SendQueueDrops.Load(),
		SlowClients:        g.SlowClients.Load(),
		SendQueueHighWater: g.SendQueueHighWater.Load(),
		OpQueueHighWater:   g.OpQueueHighWater.Load(),
	}
}

// GateSnapshot is a plain-value copy of GateStats.
type GateSnapshot struct {
	SessionsOpened, SessionsClosed uint64
	RoomsCreated, RoomsDestroyed   uint64
	FramesIn, FramesOut, BadFrames uint64
	OpsApplied, OpsDropped         uint64
	StaleSpaceRefs, Broadcasts     uint64
	SendQueueDrops, SlowClients    uint64
	SendQueueHighWater             uint64
	OpQueueHighWater               uint64
}
