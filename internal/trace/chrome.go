package trace

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// This file exports event rings in the Chrome trace_event JSON format
// (the "JSON Array Format" with a traceEvents wrapper), loadable in
// chrome://tracing and https://ui.perfetto.dev. Each bracketed runtime
// operation becomes one complete ("X") event; processors appear as
// threads of a single "ace" process, so the per-processor timelines
// stack in the viewer.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes events as Chrome trace_event JSON. Events may
// come from multiple processors' rings in any order; they are sorted by
// start time. procs, when positive, emits thread-name metadata for
// processors 0..procs-1 so the viewer labels the rows.
func WriteChromeTrace(w io.Writer, events []Event, procs int) error {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].TS < sorted[j].TS })

	out := chromeTrace{DisplayTimeUnit: "ns"}
	out.TraceEvents = make([]chromeEvent, 0, len(sorted)+procs+1)
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: 0,
		Args: map[string]any{"name": "ace"},
	})
	for p := 0; p < procs; p++ {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: p,
			Args: map[string]any{"name": "proc " + strconv.Itoa(p)},
		})
	}
	for _, ev := range sorted {
		ce := chromeEvent{
			Name: ev.Op.String(),
			Cat:  "op",
			Ph:   "X",
			TS:   float64(ev.TS) / 1e3,
			Dur:  float64(ev.Dur) / 1e3,
			PID:  0,
			TID:  int(ev.Proc),
		}
		if ev.Space >= 0 {
			ce.Args = map[string]any{"space": int(ev.Space), "proto": ev.Proto}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
