package table4

import (
	"github.com/acedsm/ace/internal/apps/apputil"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/ir"
)

// waterKernel mirrors Water's inter-molecular phase: positions of all
// molecules are snapshotted (three shared loads per molecule), each
// processor accumulates pairwise force contributions for its pair range
// into a local delta array, and ships one partial force per molecule
// (three shared stores), combined additively at the home by the pipeline
// protocol. A barrier drains the pipeline.
//
// Table 4 behaviour reproduced here: merging redundant calls collapses the
// per-slot sections into one per molecule — the paper's dominant effect
// for Water (1.76s → 0.73s).
func waterKernel() Kernel {
	return Kernel{
		Name: "water",
		SpaceProtos: map[int][]string{
			SpLocal: {"null"},
			SpData:  {"pipeline"},
		},
		Build: buildWater,
		Setup: setupWater,
		Hand:  handWater,
	}
}

// Kernel parameters.
const (
	waIdx = iota // region of all molecule ids
	waScr        // local scratch: 3*n floats (positions)
	waDel        // local deltas: 3*n floats
	waN
	waLo
	waHi
	waSteps
	waNumParams
)

// Molecule slots: px py pz fx fy fz.

func buildWater(cfg Config) *ir.Program {
	b := ir.NewBuilder("kernel",
		regionType([]int{SpLocal}, []int{SpData}),
		regionType([]int{SpLocal}, nil),
		regionType([]int{SpLocal}, nil),
		intType(), intType(), intType(), intType(),
	)
	t := b.Local(ir.KInt)
	b.Loop(t, ir.CI(0), ir.L(waSteps), func() {
		// Snapshot positions.
		i := b.Local(ir.KInt)
		b.Loop(i, ir.CI(0), ir.L(waN), func() {
			mol := b.SharedLoad(ir.KRegion, ir.L(waIdx), ir.L(i))
			x := b.SharedLoad(ir.KFloat, ir.L(mol), ir.CI(0))
			y := b.SharedLoad(ir.KFloat, ir.L(mol), ir.CI(1))
			z := b.SharedLoad(ir.KFloat, ir.L(mol), ir.CI(2))
			k := b.Bin(ir.KInt, ir.Mul, ir.L(i), ir.CI(3))
			b.SharedStore(ir.KFloat, ir.L(waScr), ir.L(k), ir.L(x))
			b.SharedStore(ir.KFloat, ir.L(waScr), ir.L(b.Bin(ir.KInt, ir.Add, ir.L(k), ir.CI(1))), ir.L(y))
			b.SharedStore(ir.KFloat, ir.L(waScr), ir.L(b.Bin(ir.KInt, ir.Add, ir.L(k), ir.CI(2))), ir.L(z))
		})
		// Zero deltas and accumulate my pair range.
		zi := b.Local(ir.KInt)
		n3 := b.Bin(ir.KInt, ir.Mul, ir.L(waN), ir.CI(3))
		b.Loop(zi, ir.CI(0), ir.L(n3), func() {
			b.SharedStore(ir.KFloat, ir.L(waDel), ir.L(zi), ir.CF(0))
		})
		pi := b.Local(ir.KInt)
		b.Loop(pi, ir.L(waLo), ir.L(waHi), func() {
			pj := b.Local(ir.KInt)
			start := b.Bin(ir.KInt, ir.Add, ir.L(pi), ir.CI(1))
			b.Loop(pj, ir.L(start), ir.L(waN), func() {
				ik := b.Bin(ir.KInt, ir.Mul, ir.L(pi), ir.CI(3))
				jk := b.Bin(ir.KInt, ir.Mul, ir.L(pj), ir.CI(3))
				xi := b.SharedLoad(ir.KFloat, ir.L(waScr), ir.L(ik))
				yi := b.SharedLoad(ir.KFloat, ir.L(waScr), ir.L(b.Bin(ir.KInt, ir.Add, ir.L(ik), ir.CI(1))))
				zi2 := b.SharedLoad(ir.KFloat, ir.L(waScr), ir.L(b.Bin(ir.KInt, ir.Add, ir.L(ik), ir.CI(2))))
				xj := b.SharedLoad(ir.KFloat, ir.L(waScr), ir.L(jk))
				yj := b.SharedLoad(ir.KFloat, ir.L(waScr), ir.L(b.Bin(ir.KInt, ir.Add, ir.L(jk), ir.CI(1))))
				zj := b.SharedLoad(ir.KFloat, ir.L(waScr), ir.L(b.Bin(ir.KInt, ir.Add, ir.L(jk), ir.CI(2))))
				dx := b.Bin(ir.KFloat, ir.Sub, ir.L(xj), ir.L(xi))
				dy := b.Bin(ir.KFloat, ir.Sub, ir.L(yj), ir.L(yi))
				dz := b.Bin(ir.KFloat, ir.Sub, ir.L(zj), ir.L(zi2))
				r2 := b.Bin(ir.KFloat, ir.Add,
					ir.L(b.Bin(ir.KFloat, ir.Add,
						ir.L(b.Bin(ir.KFloat, ir.Mul, ir.L(dx), ir.L(dx))),
						ir.L(b.Bin(ir.KFloat, ir.Mul, ir.L(dy), ir.L(dy))))),
					ir.L(b.Bin(ir.KFloat, ir.Add,
						ir.L(b.Bin(ir.KFloat, ir.Mul, ir.L(dz), ir.L(dz))),
						ir.CF(0.25))))
				inv := b.Bin(ir.KFloat, ir.Div, ir.CF(1), ir.L(b.Bin(ir.KFloat, ir.Mul, ir.L(r2), ir.L(r2))))
				// delta[i] += f; delta[j] -= f (three slots each).
				for d := 0; d < 3; d++ {
					var comp int
					switch d {
					case 0:
						comp = b.Bin(ir.KFloat, ir.Mul, ir.L(dx), ir.L(inv))
					case 1:
						comp = b.Bin(ir.KFloat, ir.Mul, ir.L(dy), ir.L(inv))
					default:
						comp = b.Bin(ir.KFloat, ir.Mul, ir.L(dz), ir.L(inv))
					}
					iSlot := b.Bin(ir.KInt, ir.Add, ir.L(ik), ir.CI(int64(d)))
					jSlot := b.Bin(ir.KInt, ir.Add, ir.L(jk), ir.CI(int64(d)))
					cur := b.SharedLoad(ir.KFloat, ir.L(waDel), ir.L(iSlot))
					b.SharedStore(ir.KFloat, ir.L(waDel), ir.L(iSlot), ir.L(b.Bin(ir.KFloat, ir.Add, ir.L(cur), ir.L(comp))))
					cur2 := b.SharedLoad(ir.KFloat, ir.L(waDel), ir.L(jSlot))
					b.SharedStore(ir.KFloat, ir.L(waDel), ir.L(jSlot), ir.L(b.Bin(ir.KFloat, ir.Sub, ir.L(cur2), ir.L(comp))))
				}
			})
		})
		// Ship partial forces: three shared stores per molecule, combined
		// additively at the home by the pipeline protocol.
		si := b.Local(ir.KInt)
		b.Loop(si, ir.CI(0), ir.L(waN), func() {
			mol := b.SharedLoad(ir.KRegion, ir.L(waIdx), ir.L(si))
			k := b.Bin(ir.KInt, ir.Mul, ir.L(si), ir.CI(3))
			fx := b.SharedLoad(ir.KFloat, ir.L(waDel), ir.L(k))
			fy := b.SharedLoad(ir.KFloat, ir.L(waDel), ir.L(b.Bin(ir.KInt, ir.Add, ir.L(k), ir.CI(1))))
			fz := b.SharedLoad(ir.KFloat, ir.L(waDel), ir.L(b.Bin(ir.KInt, ir.Add, ir.L(k), ir.CI(2))))
			b.SharedStore(ir.KFloat, ir.L(mol), ir.CI(3), ir.L(fx))
			b.SharedStore(ir.KFloat, ir.L(mol), ir.CI(4), ir.L(fy))
			b.SharedStore(ir.KFloat, ir.L(mol), ir.CI(5), ir.L(fz))
		})
		b.Barrier(SpData)
	})
	// Checksum own force slots, weighted by molecule index: the raw sum
	// of all forces is ~0 by Newton's third law, useless as a checksum.
	sum := b.Const(ir.Float(0))
	ci := b.Local(ir.KInt)
	b.Loop(ci, ir.L(waLo), ir.L(waHi), func() {
		mol := b.SharedLoad(ir.KRegion, ir.L(waIdx), ir.L(ci))
		fx := b.SharedLoad(ir.KFloat, ir.L(mol), ir.CI(3))
		fy := b.SharedLoad(ir.KFloat, ir.L(mol), ir.CI(4))
		fz := b.SharedLoad(ir.KFloat, ir.L(mol), ir.CI(5))
		wf := b.Un(ir.KFloat, ir.IntToFloat, ir.L(b.Bin(ir.KInt, ir.Add, ir.L(ci), ir.CI(1))))
		part := b.Bin(ir.KFloat, ir.Add, ir.L(fx),
			ir.L(b.Bin(ir.KFloat, ir.Add,
				ir.L(b.Bin(ir.KFloat, ir.Mul, ir.L(fy), ir.CF(2))),
				ir.L(b.Bin(ir.KFloat, ir.Mul, ir.L(fz), ir.CF(3))))))
		b.BinTo(sum, ir.Add, ir.L(sum), ir.L(b.Bin(ir.KFloat, ir.Mul, ir.L(wf), ir.L(part))))
	})
	b.Ret(ir.L(sum))
	f := b.Func()
	return &ir.Program{
		Funcs:       map[string]*ir.Func{f.Name: f},
		SpaceProtos: map[int][]string{SpLocal: {"null"}, SpData: {"pipeline"}},
	}
}

func setupWater(p *core.Proc, spaces map[int]*core.Space, cfg Config) []ir.Value {
	local, data := spaces[SpLocal], spaces[SpData]
	ids := allocAll(p, data, cfg.N, 6*8)
	lo, hi := blockRange(cfg.N, p.Procs(), p.ID())
	for i := lo; i < hi; i++ {
		rng := apputil.RNG(5, int64(i))
		r := p.Map(ids[i])
		p.StartWrite(r)
		for d := 0; d < 3; d++ {
			r.Data.SetFloat64(d, rng.Float64()*4-2)
			r.Data.SetFloat64(3+d, 0)
		}
		p.EndWrite(r)
		p.Unmap(r)
	}
	idx := idIndexRegion(p, local, ids)
	scr := p.GMalloc(local, cfg.N*3*8)
	del := p.GMalloc(local, cfg.N*3*8)
	p.GlobalBarrier()
	return []ir.Value{
		ir.Region(idx), ir.Region(scr), ir.Region(del),
		ir.Int(int64(cfg.N)), ir.Int(int64(lo)), ir.Int(int64(hi)), ir.Int(int64(cfg.Steps)),
	}
}

// handWater is the hand-optimized version: host arrays for the snapshot
// and deltas, one read section per molecule snapshot, one write section
// per force ship.
func handWater(p *core.Proc, spaces map[int]*core.Space, cfg Config, args []ir.Value) float64 {
	data := spaces[SpData]
	n := int(args[waN].I)
	lo, hi := int(args[waLo].I), int(args[waHi].I)
	steps := int(args[waSteps].I)

	idx := p.Map(args[waIdx].R)
	p.StartRead(idx)
	mols := make([]*core.Region, n)
	for i := 0; i < n; i++ {
		mols[i] = p.Map(idx.Data.RegionID(i))
	}
	p.EndRead(idx)

	scr := make([]float64, n*3)
	del := make([]float64, n*3)
	for t := 0; t < steps; t++ {
		for i := 0; i < n; i++ {
			r := mols[i]
			p.StartRead(r)
			scr[i*3] = r.Data.Float64(0)
			scr[i*3+1] = r.Data.Float64(1)
			scr[i*3+2] = r.Data.Float64(2)
			p.EndRead(r)
		}
		for i := range del {
			del[i] = 0
		}
		for i := lo; i < hi; i++ {
			for j := i + 1; j < n; j++ {
				dx := scr[j*3] - scr[i*3]
				dy := scr[j*3+1] - scr[i*3+1]
				dz := scr[j*3+2] - scr[i*3+2]
				r2 := dx*dx + dy*dy + (dz*dz + 0.25)
				inv := 1 / (r2 * r2)
				for d, c := range [3]float64{dx * inv, dy * inv, dz * inv} {
					del[i*3+d] += c
					del[j*3+d] -= c
				}
			}
		}
		for i := 0; i < n; i++ {
			r := mols[i]
			p.StartWrite(r)
			r.Data.SetFloat64(3, del[i*3])
			r.Data.SetFloat64(4, del[i*3+1])
			r.Data.SetFloat64(5, del[i*3+2])
			p.EndWrite(r)
		}
		p.Barrier(data)
	}
	sum := 0.0
	for i := lo; i < hi; i++ {
		r := mols[i]
		p.StartRead(r)
		part := r.Data.Float64(3) + (r.Data.Float64(4)*2 + r.Data.Float64(5)*3)
		sum += float64(i+1) * part
		p.EndRead(r)
	}
	return sum
}
