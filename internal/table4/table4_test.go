package table4

import (
	"testing"

	"github.com/acedsm/ace/internal/compiler"
	"github.com/acedsm/ace/internal/ir"
	"github.com/acedsm/ace/proto"
)

func TestKernelsBuildAndCompileAtEveryLevel(t *testing.T) {
	cfg := DefaultConfig()
	decls := proto.NewRegistry().Decls()
	levels := []compiler.Level{compiler.LevelBase, compiler.LevelLI, compiler.LevelMC, compiler.LevelDC}
	for _, k := range Kernels() {
		prog := k.Build(cfg)
		if prog.Funcs["kernel"] == nil {
			t.Fatalf("%s: no kernel function", k.Name)
		}
		var prev int
		for i, lvl := range levels {
			out, err := compiler.Compile(prog, decls, lvl)
			if err != nil {
				t.Fatalf("%s at %s: %v", k.Name, lvl, err)
			}
			counts := compiler.AnnotationCounts(out)
			total := 0
			for _, v := range counts {
				total += v
			}
			if total == 0 && k.Name != "null-only" {
				t.Errorf("%s at %s: no annotations at all", k.Name, lvl)
			}
			// Static annotation count is non-increasing through the first
			// three levels (DC can only delete too).
			if i > 0 && total > prev {
				t.Errorf("%s: static annotations grew at %s: %d -> %d", k.Name, lvl, prev, total)
			}
			prev = total
		}
	}
}

func TestKernelSpaceDeclsConsistent(t *testing.T) {
	for _, k := range Kernels() {
		prog := k.Build(DefaultConfig())
		for id, protos := range k.SpaceProtos {
			got := prog.SpaceProtos[id]
			if len(got) != len(protos) {
				t.Errorf("%s: space %d protocols %v vs program's %v", k.Name, id, protos, got)
				continue
			}
			for i := range protos {
				if got[i] != protos[i] {
					t.Errorf("%s: space %d protocol %q vs program's %q", k.Name, id, protos[i], got[i])
				}
			}
		}
	}
}

func TestBlockRangePartition(t *testing.T) {
	covered := 0
	for p := 0; p < 5; p++ {
		lo, hi := blockRange(17, 5, p)
		covered += hi - lo
	}
	if covered != 17 {
		t.Fatalf("blockRange covers %d of 17", covered)
	}
}

func TestKernelProgramsAreWellTyped(t *testing.T) {
	// Every kernel's parameter list must type each region parameter with
	// at least one space (the analysis otherwise refuses to optimize).
	for _, k := range Kernels() {
		prog := k.Build(DefaultConfig())
		f := prog.Funcs["kernel"]
		for i, p := range f.Params {
			if p.Kind == ir.KRegion && len(p.Spaces) == 0 {
				t.Errorf("%s: region parameter %d has no declared spaces", k.Name, i)
			}
		}
	}
}
