package table4

import (
	"github.com/acedsm/ace/internal/apps/apputil"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/ir"
)

// tspKernel mirrors TSP's access pattern: a shared job counter under the
// atomic protocol (the benchmark's best — Section 5.2's "better management
// of accesses to a counter") bumped once per job, a shared best-bound
// region under the sequentially consistent protocol read once per job, and
// per-job search work over the replicated distance matrix. Jobs are
// statically partitioned so the checksum is deterministic — a compiled
// read-modify-write is two separate sections (Figure 5) and therefore not
// atomic, exactly as in the paper's translation scheme, so the counter
// value itself must not feed the checksum.
//
// Table 4 behaviour reproduced here: the counter and bound annotations are
// NOT optimizable (atomic and sc protocols both forbid reordering), so
// they survive every level; the distance-matrix accesses in the inner
// loops are local data whose annotations hoist, merge and vanish — the
// moderate LI/MC gains the paper reports for TSP.
func tspKernel() Kernel {
	return Kernel{
		Name: "tsp",
		SpaceProtos: map[int][]string{
			SpLocal: {"null"},
			SpData:  {"atomic"},
			SpAux:   {"sc"},
		},
		Build: buildTSP,
		Setup: setupTSP,
		Hand:  handTSP,
	}
}

// Kernel parameters.
const (
	tsDist = iota // local region: cities*cities int64 distances
	tsCounter
	tsBest
	tsCities
	tsJobs
	tsLo
	tsHi
	tsNumParams
)

func buildTSP(cfg Config) *ir.Program {
	b := ir.NewBuilder("kernel",
		regionType([]int{SpLocal}, nil),
		regionType([]int{SpData}, nil),
		regionType([]int{SpAux}, nil),
		intType(), intType(), intType(), intType(),
	)
	total := b.Const(ir.Int(0))
	jj := b.Local(ir.KInt)
	b.Loop(jj, ir.L(tsLo), ir.L(tsHi), func() {
		// Bump the shared counter (atomic protocol: a home round trip,
		// never optimized). The compiled RMW is two sections, as in
		// Figure 5.
		cur := b.SharedLoad(ir.KInt, ir.L(tsCounter), ir.CI(0))
		next := b.Bin(ir.KInt, ir.Add, ir.L(cur), ir.CI(1))
		b.SharedStore(ir.KInt, ir.L(tsCounter), ir.CI(0), ir.L(next))
		// Check the bound (sequentially consistent, never optimized).
		bound := b.SharedLoad(ir.KInt, ir.L(tsBest), ir.CI(0))
		// Per-job search work: sweep the distance matrix.
		acc := b.Const(ir.Int(0))
		a := b.Local(ir.KInt)
		b.Loop(a, ir.CI(0), ir.L(tsCities), func() {
			c := b.Local(ir.KInt)
			b.Loop(c, ir.CI(0), ir.L(tsCities), func() {
				slot := b.Bin(ir.KInt, ir.Add,
					ir.L(b.Bin(ir.KInt, ir.Mul, ir.L(a), ir.L(tsCities))), ir.L(c))
				d1 := b.SharedLoad(ir.KInt, ir.L(tsDist), ir.L(slot))
				// A second, reversed lookup: redundant map the MC pass
				// folds into the first.
				rslot := b.Bin(ir.KInt, ir.Add,
					ir.L(b.Bin(ir.KInt, ir.Mul, ir.L(c), ir.L(tsCities))), ir.L(a))
				d2 := b.SharedLoad(ir.KInt, ir.L(tsDist), ir.L(rslot))
				b.BinTo(acc, ir.Add, ir.L(acc),
					ir.L(b.Bin(ir.KInt, ir.Add, ir.L(d1), ir.L(d2))))
			})
		})
		scaled := b.Bin(ir.KInt, ir.Mul, ir.L(jj), ir.L(bound))
		withJob := b.Bin(ir.KInt, ir.Add, ir.L(acc), ir.L(scaled))
		b.BinTo(total, ir.Add, ir.L(total), ir.L(withJob))
	})
	b.Ret(ir.L(total))
	f := b.Func()
	return &ir.Program{
		Funcs: map[string]*ir.Func{f.Name: f},
		SpaceProtos: map[int][]string{
			SpLocal: {"null"}, SpData: {"atomic"}, SpAux: {"sc"},
		},
	}
}

func setupTSP(p *core.Proc, spaces map[int]*core.Space, cfg Config) []ir.Value {
	local, data, aux := spaces[SpLocal], spaces[SpData], spaces[SpAux]
	n := cfg.Cities
	dist := p.GMalloc(local, n*n*8)
	r := p.Map(dist)
	p.StartWrite(r)
	rng := apputil.RNG(7, 0)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := int64(rng.Intn(99) + 1)
			r.Data.SetInt64(i*n+j, v)
			r.Data.SetInt64(j*n+i, v)
		}
	}
	p.EndWrite(r)
	p.Unmap(r)

	var counterID, bestID core.RegionID
	if p.ID() == 0 {
		counterID = p.GMalloc(data, 8)
		bestID = p.GMalloc(aux, 8)
		br := p.Map(bestID)
		p.StartWrite(br)
		br.Data.SetInt64(0, 1000)
		p.EndWrite(br)
		p.Unmap(br)
	}
	counterID = p.BroadcastID(0, counterID)
	bestID = p.BroadcastID(0, bestID)
	lo, hi := blockRange(cfg.Jobs, p.Procs(), p.ID())
	p.GlobalBarrier()
	return []ir.Value{
		ir.Region(dist), ir.Region(counterID), ir.Region(bestID),
		ir.Int(int64(n)), ir.Int(int64(cfg.Jobs)), ir.Int(int64(lo)), ir.Int(int64(hi)),
	}
}

// handTSP is the hand-optimized version: the distance matrix cached in a
// host array up front, counter and bound accesses exactly as required.
func handTSP(p *core.Proc, spaces map[int]*core.Space, cfg Config, args []ir.Value) float64 {
	n := int(args[tsCities].I)
	lo, hi := int(args[tsLo].I), int(args[tsHi].I)

	distR := p.Map(args[tsDist].R)
	p.StartRead(distR)
	dist := make([]int64, n*n)
	for i := range dist {
		dist[i] = distR.Data.Int64(i)
	}
	p.EndRead(distR)
	counter := p.Map(args[tsCounter].R)
	best := p.Map(args[tsBest].R)

	total := int64(0)
	for jj := lo; jj < hi; jj++ {
		p.StartWrite(counter)
		counter.Data.SetInt64(0, counter.Data.Int64(0)+1)
		p.EndWrite(counter)
		p.StartRead(best)
		bound := best.Data.Int64(0)
		p.EndRead(best)
		acc := int64(0)
		for a := 0; a < n; a++ {
			for c := 0; c < n; c++ {
				acc += dist[a*n+c] + dist[c*n+a]
			}
		}
		total += acc + int64(jj)*bound
	}
	return float64(total)
}
