package table4

import (
	"github.com/acedsm/ace/internal/apps/apputil"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/ir"
)

// em3dKernel mirrors EM3D's access structure faithfully: a bipartite graph
// of E and H nodes in two spaces, both under the static update protocol.
// Each phase reads one class and writes the other, then barriers on the
// written space (Figure 2), so update pushes never reach a region with an
// open section — the phase discipline that lets the protocol declare its
// end_read handler null and the direct-dispatch pass delete the calls in
// the tight kernel (the Table 4 effect the paper highlights for EM3D).
func em3dKernel() Kernel {
	return Kernel{
		Name: "em3d",
		SpaceProtos: map[int][]string{
			SpLocal: {"null"},
			SpData:  {"staticupdate"}, // E values
			SpAux:   {"staticupdate"}, // H values
		},
		Build: buildEM3D,
		Setup: setupEM3D,
		Hand:  handEM3D,
	}
}

// Kernel parameters.
const (
	emEIdx = iota // region of my E node ids
	emEAdj        // region of H neighbor ids (myN*degree)
	emEWts        // E weights
	emHIdx
	emHAdj // region of E neighbor ids
	emHWts
	emMyN
	emDegree
	emSteps
	emNumParams
)

func buildEM3D(cfg Config) *ir.Program {
	b := ir.NewBuilder("kernel",
		regionType([]int{SpLocal}, []int{SpData}),
		regionType([]int{SpLocal}, []int{SpAux}),
		regionType([]int{SpLocal}, nil),
		regionType([]int{SpLocal}, []int{SpAux}),
		regionType([]int{SpLocal}, []int{SpData}),
		regionType([]int{SpLocal}, nil),
		intType(), intType(), intType(),
	)
	phase := func(idx, adj, wts int) {
		i := b.Local(ir.KInt)
		b.Loop(i, ir.CI(0), ir.L(emMyN), func() {
			node := b.SharedLoad(ir.KRegion, ir.L(idx), ir.L(i))
			acc := b.Const(ir.Float(0))
			d := b.Local(ir.KInt)
			b.Loop(d, ir.CI(0), ir.L(emDegree), func() {
				base := b.Bin(ir.KInt, ir.Mul, ir.L(i), ir.L(emDegree))
				k := b.Bin(ir.KInt, ir.Add, ir.L(base), ir.L(d))
				nb := b.SharedLoad(ir.KRegion, ir.L(adj), ir.L(k))
				w := b.SharedLoad(ir.KFloat, ir.L(wts), ir.L(k))
				v := b.SharedLoad(ir.KFloat, ir.L(nb), ir.CI(0))
				prod := b.Bin(ir.KFloat, ir.Mul, ir.L(w), ir.L(v))
				b.BinTo(acc, ir.Add, ir.L(acc), ir.L(prod))
			})
			b.SharedStore(ir.KFloat, ir.L(node), ir.CI(0), ir.L(acc))
		})
	}
	t := b.Local(ir.KInt)
	b.Loop(t, ir.CI(0), ir.L(emSteps), func() {
		phase(emEIdx, emEAdj, emEWts) // new E from H
		b.Barrier(SpData)
		phase(emHIdx, emHAdj, emHWts) // new H from E
		b.Barrier(SpAux)
	})
	sum := b.Const(ir.Float(0))
	for _, idx := range []int{emEIdx, emHIdx} {
		i := b.Local(ir.KInt)
		b.Loop(i, ir.CI(0), ir.L(emMyN), func() {
			node := b.SharedLoad(ir.KRegion, ir.L(idx), ir.L(i))
			v := b.SharedLoad(ir.KFloat, ir.L(node), ir.CI(0))
			b.BinTo(sum, ir.Add, ir.L(sum), ir.L(v))
		})
	}
	b.Ret(ir.L(sum))
	f := b.Func()
	return &ir.Program{
		Funcs: map[string]*ir.Func{f.Name: f},
		SpaceProtos: map[int][]string{
			SpLocal: {"null"},
			SpData:  {"staticupdate"},
			SpAux:   {"staticupdate"},
		},
	}
}

// em3dNeighbors returns, for each node this processor owns in one class,
// the global indices and weights of its neighbors in the other class
// (deterministic from the class tag).
func em3dNeighbors(cfg Config, procs, me int, class int64) (targets [][]int, weights [][]float64) {
	lo, hi := blockRange(cfg.N, procs, me)
	for i := lo; i < hi; i++ {
		rng := apputil.RNG(77, class*int64(cfg.N)+int64(i))
		var ts []int
		var ws []float64
		for d := 0; d < cfg.Degree; d++ {
			var target int
			if rng.Intn(100) < 20 && procs > 1 {
				for {
					target = rng.Intn(cfg.N)
					if apputil.Owner(cfg.N, procs, target) != me {
						break
					}
				}
			} else {
				target = lo + rng.Intn(hi-lo)
			}
			ts = append(ts, target)
			ws = append(ws, rng.Float64())
		}
		targets = append(targets, ts)
		weights = append(weights, ws)
	}
	return targets, weights
}

func setupEM3D(p *core.Proc, spaces map[int]*core.Space, cfg Config) []ir.Value {
	local := spaces[SpLocal]
	args := make([]ir.Value, emNumParams)
	lo, hi := blockRange(cfg.N, p.Procs(), p.ID())
	myN := hi - lo

	setupClass := func(sp *core.Space, class int64, initOffset float64) (ids []core.RegionID, idx, adjID, wtsID core.RegionID) {
		ids = allocAll(p, sp, cfg.N, 8)
		for i := lo; i < hi; i++ {
			r := p.Map(ids[i])
			p.StartWrite(r)
			r.Data.SetFloat64(0, initOffset+float64(i)/float64(cfg.N))
			p.EndWrite(r)
			p.Unmap(r)
		}
		idx = idIndexRegion(p, local, ids[lo:hi])
		adjID = p.GMalloc(local, myN*cfg.Degree*8)
		wtsID = p.GMalloc(local, myN*cfg.Degree*8)
		return ids, idx, adjID, wtsID
	}
	eIDs, eIdx, eAdj, eWts := setupClass(spaces[SpData], 0, 0)
	hIDs, hIdx, hAdj, hWts := setupClass(spaces[SpAux], 1, 1)

	fillAdj := func(adjID, wtsID core.RegionID, class int64, other []core.RegionID) {
		targets, weights := em3dNeighbors(cfg, p.Procs(), p.ID(), class)
		adj, wts := p.Map(adjID), p.Map(wtsID)
		p.StartWrite(adj)
		p.StartWrite(wts)
		for i := 0; i < myN; i++ {
			for d := 0; d < cfg.Degree; d++ {
				adj.Data.SetRegionID(i*cfg.Degree+d, other[targets[i][d]])
				wts.Data.SetFloat64(i*cfg.Degree+d, weights[i][d])
			}
		}
		p.EndWrite(wts)
		p.EndWrite(adj)
		p.Unmap(adj)
		p.Unmap(wts)
	}
	fillAdj(eAdj, eWts, 0, hIDs) // E reads H neighbors
	fillAdj(hAdj, hWts, 1, eIDs) // H reads E neighbors
	p.GlobalBarrier()

	args[emEIdx], args[emEAdj], args[emEWts] = ir.Region(eIdx), ir.Region(eAdj), ir.Region(eWts)
	args[emHIdx], args[emHAdj], args[emHWts] = ir.Region(hIdx), ir.Region(hAdj), ir.Region(hWts)
	args[emMyN], args[emDegree], args[emSteps] = ir.Int(int64(myN)), ir.Int(int64(cfg.Degree)), ir.Int(int64(cfg.Steps))
	return args
}

// handEM3D is the hand-optimized runtime version: maps performed once
// before the computation loop, local data cached in host arrays, one read
// section per remote value access and one write section per node — the
// code Section 5.3 says an experienced programmer writes.
func handEM3D(p *core.Proc, spaces map[int]*core.Space, cfg Config, args []ir.Value) float64 {
	myN := int(args[emMyN].I)
	degree := int(args[emDegree].I)
	steps := int(args[emSteps].I)

	load := func(idxArg, adjArg, wtsArg int) (nodes, nbs []*core.Region, weights []float64) {
		idx := p.Map(args[idxArg].R)
		adj := p.Map(args[adjArg].R)
		wts := p.Map(args[wtsArg].R)
		p.StartRead(idx)
		p.StartRead(adj)
		p.StartRead(wts)
		nodes = make([]*core.Region, myN)
		nbs = make([]*core.Region, myN*degree)
		weights = make([]float64, myN*degree)
		for i := 0; i < myN; i++ {
			nodes[i] = p.Map(idx.Data.RegionID(i))
			for d := 0; d < degree; d++ {
				k := i*degree + d
				nbs[k] = p.Map(adj.Data.RegionID(k))
				weights[k] = wts.Data.Float64(k)
			}
		}
		p.EndRead(wts)
		p.EndRead(adj)
		p.EndRead(idx)
		return nodes, nbs, weights
	}
	eNodes, eNbs, eW := load(emEIdx, emEAdj, emEWts)
	hNodes, hNbs, hW := load(emHIdx, emHAdj, emHWts)

	phase := func(nodes, nbs []*core.Region, weights []float64) {
		for i := 0; i < myN; i++ {
			acc := 0.0
			for d := 0; d < degree; d++ {
				k := i*degree + d
				nb := nbs[k]
				p.StartRead(nb)
				acc += weights[k] * nb.Data.Float64(0)
				p.EndRead(nb)
			}
			p.StartWrite(nodes[i])
			nodes[i].Data.SetFloat64(0, acc)
			p.EndWrite(nodes[i])
		}
	}
	for t := 0; t < steps; t++ {
		phase(eNodes, eNbs, eW)
		p.Barrier(spaces[SpData])
		phase(hNodes, hNbs, hW)
		p.Barrier(spaces[SpAux])
	}
	sum := 0.0
	for _, nodes := range [][]*core.Region{eNodes, hNodes} {
		for i := 0; i < myN; i++ {
			p.StartRead(nodes[i])
			sum += nodes[i].Data.Float64(0)
			p.EndRead(nodes[i])
		}
	}
	return sum
}
