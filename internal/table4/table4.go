// Package table4 defines the five compiler-experiment kernels behind the
// paper's Table 4. Each kernel exists twice:
//
//   - as an IR program (Build) that the Ace compiler annotates and
//     optimizes at the four levels of Table 4 (base, LI, LI+MC, LI+MC+DC)
//     and the VM executes against the real runtime, and
//   - as hand-written runtime code (Hand), the "code an experienced
//     programmer would write": maps hoisted, sections merged, exactly one
//     protocol call where one is needed.
//
// The kernels mirror the benchmarks' access structure at reduced scale —
// what Table 4 measures is annotation placement, not application physics —
// and each runs under the same protocol configuration as its Figure 7b
// "best" version, so checksum equality across all levels and the hand
// version is a strong end-to-end check on compiler soundness.
package table4

import (
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/ir"
)

// Space ids used by every kernel program: spLocal holds processor-local
// data (index regions, adjacency, scratch) under the null protocol;
// spData holds the kernel's shared data under its best protocol; spAux is
// kernel-specific (TSP's sequentially consistent bound).
const (
	SpLocal = 0
	SpData  = 1
	SpAux   = 2
)

// Kernel describes one Table 4 column.
type Kernel struct {
	// Name is the benchmark name the kernel mirrors.
	Name string
	// SpaceProtos maps program space ids to the protocol names they may
	// run under (input to the compiler's analysis and to the harness's
	// space creation).
	SpaceProtos map[int][]string
	// Build constructs the IR program; the entry function is "kernel".
	Build func(cfg Config) *ir.Program
	// Setup allocates and initializes the kernel's regions (collective)
	// and returns the entry function's arguments for this processor.
	Setup func(p *core.Proc, spaces map[int]*core.Space, cfg Config) []ir.Value
	// Hand runs the hand-optimized runtime-code version over the same
	// regions Setup produced (args as returned by Setup) and returns the
	// local checksum (the harness sums across processors).
	Hand func(p *core.Proc, spaces map[int]*core.Space, cfg Config, args []ir.Value) float64
}

// Config scales the kernels.
type Config struct {
	// N is the item count (graph nodes, molecules, bodies).
	N int
	// Degree is EM3D's node degree.
	Degree int
	// Steps is the iteration count for the iterative kernels.
	Steps int
	// Blocks, BlockSize and Band shape the BSC kernel.
	Blocks, BlockSize, Band int
	// Jobs and Cities shape the TSP kernel.
	Jobs, Cities int
}

// DefaultConfig returns the laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		N: 128, Degree: 6, Steps: 6,
		Blocks: 8, BlockSize: 8, Band: 3,
		Jobs: 24, Cities: 10,
	}
}

// Kernels returns all five kernels in Table 4's column order.
func Kernels() []Kernel {
	return []Kernel{
		barnesHutKernel(),
		bscKernel(),
		em3dKernel(),
		tspKernel(),
		waterKernel(),
	}
}

// ---------------------------------------------------------------------
// Shared setup helpers.
// ---------------------------------------------------------------------

// blockRange mirrors apputil.Block for the kernel partitioning.
func blockRange(n, procs, p int) (int, int) {
	base := n / procs
	rem := n % procs
	lo := p*base + min(p, rem)
	hi := lo + base
	if p < rem {
		hi++
	}
	return lo, hi
}

// allocAll allocates one region of the given byte size per item, owner by
// block partition, and returns the global id list (collective).
func allocAll(p *core.Proc, sp *core.Space, n, size int) []core.RegionID {
	lo, hi := blockRange(n, p.Procs(), p.ID())
	mine := make([]core.RegionID, 0, hi-lo)
	for i := lo; i < hi; i++ {
		mine = append(mine, p.GMalloc(sp, size))
	}
	all := make([]core.RegionID, 0, n)
	for root := 0; root < p.Procs(); root++ {
		if root == p.ID() {
			all = append(all, p.BroadcastIDs(root, mine)...)
		} else {
			rl, rh := blockRange(n, p.Procs(), root)
			all = append(all, p.BroadcastIDs(root, make([]core.RegionID, rh-rl))...)
		}
	}
	return all
}

// idIndexRegion builds a processor-local region holding the given id list.
func idIndexRegion(p *core.Proc, local *core.Space, ids []core.RegionID) core.RegionID {
	id := p.GMalloc(local, len(ids)*8)
	r := p.Map(id)
	p.StartWrite(r)
	for i, v := range ids {
		r.Data.SetRegionID(i, v)
	}
	p.EndWrite(r)
	p.Unmap(r)
	return id
}

// regionType builds the IR type of a region-valued parameter.
func regionType(spaces []int, elemSpaces []int) ir.Type {
	return ir.Type{Kind: ir.KRegion, Spaces: spaces, ElemSpaces: elemSpaces}
}

func intType() ir.Type { return ir.Type{Kind: ir.KInt} }
