package table4

import (
	"math"

	"github.com/acedsm/ace/internal/apps/apputil"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/ir"
)

// barnesHutKernel mirrors Barnes-Hut's body sharing: every step, each
// processor snapshots all bodies (position + mass: four separate shared
// loads per body in the naive translation), computes accelerations for its
// own bodies against the snapshot, and rewrites its bodies' position and
// velocity slots (six separate shared stores naively).
//
// Table 4 behaviour reproduced here: merging redundant calls collapses the
// four read sections and six write sections per body into one each — the
// paper's largest gain for Barnes-Hut. Bodies run under the dynamic update
// protocol, the benchmark's best (Figure 7b).
func barnesHutKernel() Kernel {
	return Kernel{
		Name: "barnes-hut",
		SpaceProtos: map[int][]string{
			SpLocal: {"null"},
			SpData:  {"update"},
		},
		Build: buildBH,
		Setup: setupBH,
		Hand:  handBH,
	}
}

// Kernel parameters.
const (
	bhIdx = iota // region of all body ids
	bhScr        // local scratch: 4*n floats (pos3+mass snapshot)
	bhN
	bhLo
	bhHi
	bhSteps
	bhNumParams
)

// Body slots: px py pz vx vy vz mass.

func buildBH(cfg Config) *ir.Program {
	b := ir.NewBuilder("kernel",
		regionType([]int{SpLocal}, []int{SpData}),
		regionType([]int{SpLocal}, nil),
		intType(), intType(), intType(), intType(),
	)
	t := b.Local(ir.KInt)
	b.Loop(t, ir.CI(0), ir.L(bhSteps), func() {
		// Snapshot all bodies into scratch.
		i := b.Local(ir.KInt)
		b.Loop(i, ir.CI(0), ir.L(bhN), func() {
			body := b.SharedLoad(ir.KRegion, ir.L(bhIdx), ir.L(i))
			x := b.SharedLoad(ir.KFloat, ir.L(body), ir.CI(0))
			y := b.SharedLoad(ir.KFloat, ir.L(body), ir.CI(1))
			z := b.SharedLoad(ir.KFloat, ir.L(body), ir.CI(2))
			m := b.SharedLoad(ir.KFloat, ir.L(body), ir.CI(6))
			k := b.Bin(ir.KInt, ir.Mul, ir.L(i), ir.CI(4))
			b.SharedStore(ir.KFloat, ir.L(bhScr), ir.L(k), ir.L(x))
			k1 := b.Bin(ir.KInt, ir.Add, ir.L(k), ir.CI(1))
			b.SharedStore(ir.KFloat, ir.L(bhScr), ir.L(k1), ir.L(y))
			k2 := b.Bin(ir.KInt, ir.Add, ir.L(k), ir.CI(2))
			b.SharedStore(ir.KFloat, ir.L(bhScr), ir.L(k2), ir.L(z))
			k3 := b.Bin(ir.KInt, ir.Add, ir.L(k), ir.CI(3))
			b.SharedStore(ir.KFloat, ir.L(bhScr), ir.L(k3), ir.L(m))
		})
		// Reads complete before writes begin.
		b.Barrier(SpData)
		// Compute and rewrite own bodies.
		j := b.Local(ir.KInt)
		b.Loop(j, ir.L(bhLo), ir.L(bhHi), func() {
			{
				jk := b.Bin(ir.KInt, ir.Mul, ir.L(j), ir.CI(4))
				xj := b.SharedLoad(ir.KFloat, ir.L(bhScr), ir.L(jk))
				yj := b.SharedLoad(ir.KFloat, ir.L(bhScr), ir.L(b.Bin(ir.KInt, ir.Add, ir.L(jk), ir.CI(1))))
				zj := b.SharedLoad(ir.KFloat, ir.L(bhScr), ir.L(b.Bin(ir.KInt, ir.Add, ir.L(jk), ir.CI(2))))
				ax := b.Const(ir.Float(0))
				ay := b.Const(ir.Float(0))
				az := b.Const(ir.Float(0))
				o := b.Local(ir.KInt)
				b.Loop(o, ir.CI(0), ir.L(bhN), func() {
					ne := b.Bin(ir.KInt, ir.Ne, ir.L(o), ir.L(j))
					b.If(ir.L(ne), func() {
						ok := b.Bin(ir.KInt, ir.Mul, ir.L(o), ir.CI(4))
						xo := b.SharedLoad(ir.KFloat, ir.L(bhScr), ir.L(ok))
						yo := b.SharedLoad(ir.KFloat, ir.L(bhScr), ir.L(b.Bin(ir.KInt, ir.Add, ir.L(ok), ir.CI(1))))
						zo := b.SharedLoad(ir.KFloat, ir.L(bhScr), ir.L(b.Bin(ir.KInt, ir.Add, ir.L(ok), ir.CI(2))))
						mo := b.SharedLoad(ir.KFloat, ir.L(bhScr), ir.L(b.Bin(ir.KInt, ir.Add, ir.L(ok), ir.CI(3))))
						dx := b.Bin(ir.KFloat, ir.Sub, ir.L(xo), ir.L(xj))
						dy := b.Bin(ir.KFloat, ir.Sub, ir.L(yo), ir.L(yj))
						dz := b.Bin(ir.KFloat, ir.Sub, ir.L(zo), ir.L(zj))
						r2 := b.Bin(ir.KFloat, ir.Add,
							ir.L(b.Bin(ir.KFloat, ir.Add,
								ir.L(b.Bin(ir.KFloat, ir.Mul, ir.L(dx), ir.L(dx))),
								ir.L(b.Bin(ir.KFloat, ir.Mul, ir.L(dy), ir.L(dy))))),
							ir.L(b.Bin(ir.KFloat, ir.Add,
								ir.L(b.Bin(ir.KFloat, ir.Mul, ir.L(dz), ir.L(dz))),
								ir.CF(0.25))))
						r := b.Un(ir.KFloat, ir.Sqrt, ir.L(r2))
						inv := b.Bin(ir.KFloat, ir.Div, ir.L(mo), ir.L(b.Bin(ir.KFloat, ir.Mul, ir.L(r2), ir.L(r))))
						b.BinTo(ax, ir.Add, ir.L(ax), ir.L(b.Bin(ir.KFloat, ir.Mul, ir.L(dx), ir.L(inv))))
						b.BinTo(ay, ir.Add, ir.L(ay), ir.L(b.Bin(ir.KFloat, ir.Mul, ir.L(dy), ir.L(inv))))
						b.BinTo(az, ir.Add, ir.L(az), ir.L(b.Bin(ir.KFloat, ir.Mul, ir.L(dz), ir.L(inv))))
					}, nil)
				})
				body := b.SharedLoad(ir.KRegion, ir.L(bhIdx), ir.L(j))
				// Six naive stores: pos += vel', vel += acc*dt.
				vx := b.SharedLoad(ir.KFloat, ir.L(body), ir.CI(3))
				vy := b.SharedLoad(ir.KFloat, ir.L(body), ir.CI(4))
				vz := b.SharedLoad(ir.KFloat, ir.L(body), ir.CI(5))
				dt := ir.CF(0.025)
				nvx := b.Bin(ir.KFloat, ir.Add, ir.L(vx), ir.L(b.Bin(ir.KFloat, ir.Mul, ir.L(ax), dt)))
				nvy := b.Bin(ir.KFloat, ir.Add, ir.L(vy), ir.L(b.Bin(ir.KFloat, ir.Mul, ir.L(ay), dt)))
				nvz := b.Bin(ir.KFloat, ir.Add, ir.L(vz), ir.L(b.Bin(ir.KFloat, ir.Mul, ir.L(az), dt)))
				nx := b.Bin(ir.KFloat, ir.Add, ir.L(xj), ir.L(b.Bin(ir.KFloat, ir.Mul, ir.L(nvx), dt)))
				ny := b.Bin(ir.KFloat, ir.Add, ir.L(yj), ir.L(b.Bin(ir.KFloat, ir.Mul, ir.L(nvy), dt)))
				nz := b.Bin(ir.KFloat, ir.Add, ir.L(zj), ir.L(b.Bin(ir.KFloat, ir.Mul, ir.L(nvz), dt)))
				b.SharedStore(ir.KFloat, ir.L(body), ir.CI(0), ir.L(nx))
				b.SharedStore(ir.KFloat, ir.L(body), ir.CI(1), ir.L(ny))
				b.SharedStore(ir.KFloat, ir.L(body), ir.CI(2), ir.L(nz))
				b.SharedStore(ir.KFloat, ir.L(body), ir.CI(3), ir.L(nvx))
				b.SharedStore(ir.KFloat, ir.L(body), ir.CI(4), ir.L(nvy))
				b.SharedStore(ir.KFloat, ir.L(body), ir.CI(5), ir.L(nvz))
			}
		})
		b.Barrier(SpData)
	})
	// Checksum own positions.
	sum := b.Const(ir.Float(0))
	i := b.Local(ir.KInt)
	b.Loop(i, ir.L(bhLo), ir.L(bhHi), func() {
		body := b.SharedLoad(ir.KRegion, ir.L(bhIdx), ir.L(i))
		x := b.SharedLoad(ir.KFloat, ir.L(body), ir.CI(0))
		y := b.SharedLoad(ir.KFloat, ir.L(body), ir.CI(1))
		z := b.SharedLoad(ir.KFloat, ir.L(body), ir.CI(2))
		b.BinTo(sum, ir.Add, ir.L(sum), ir.L(x))
		b.BinTo(sum, ir.Add, ir.L(sum), ir.L(y))
		b.BinTo(sum, ir.Add, ir.L(sum), ir.L(z))
	})
	b.Ret(ir.L(sum))
	f := b.Func()
	return &ir.Program{
		Funcs:       map[string]*ir.Func{f.Name: f},
		SpaceProtos: map[int][]string{SpLocal: {"null"}, SpData: {"update"}},
	}
}

func setupBH(p *core.Proc, spaces map[int]*core.Space, cfg Config) []ir.Value {
	local, data := spaces[SpLocal], spaces[SpData]
	ids := allocAll(p, data, cfg.N, 7*8)
	lo, hi := blockRange(cfg.N, p.Procs(), p.ID())
	for i := lo; i < hi; i++ {
		rng := apputil.RNG(17, int64(i))
		r := p.Map(ids[i])
		p.StartWrite(r)
		for d := 0; d < 3; d++ {
			r.Data.SetFloat64(d, rng.Float64()*2-1)
			r.Data.SetFloat64(3+d, (rng.Float64()*2-1)*0.1)
		}
		r.Data.SetFloat64(6, 0.5+rng.Float64())
		p.EndWrite(r)
		p.Unmap(r)
	}
	idx := idIndexRegion(p, local, ids)
	scr := p.GMalloc(local, cfg.N*4*8)
	p.GlobalBarrier()
	return []ir.Value{
		ir.Region(idx), ir.Region(scr),
		ir.Int(int64(cfg.N)), ir.Int(int64(lo)), ir.Int(int64(hi)), ir.Int(int64(cfg.Steps)),
	}
}

// handBH is the hand-optimized version: one mapped handle per body, one
// read section for the four snapshot loads, one write section for the six
// state stores.
func handBH(p *core.Proc, spaces map[int]*core.Space, cfg Config, args []ir.Value) float64 {
	data := spaces[SpData]
	n := int(args[bhN].I)
	lo, hi := int(args[bhLo].I), int(args[bhHi].I)
	steps := int(args[bhSteps].I)

	idx := p.Map(args[bhIdx].R)
	p.StartRead(idx)
	bodies := make([]*core.Region, n)
	for i := 0; i < n; i++ {
		bodies[i] = p.Map(idx.Data.RegionID(i))
	}
	p.EndRead(idx)

	scr := make([]float64, n*4)
	for t := 0; t < steps; t++ {
		for i := 0; i < n; i++ {
			r := bodies[i]
			p.StartRead(r)
			scr[i*4] = r.Data.Float64(0)
			scr[i*4+1] = r.Data.Float64(1)
			scr[i*4+2] = r.Data.Float64(2)
			scr[i*4+3] = r.Data.Float64(6)
			p.EndRead(r)
		}
		p.Barrier(data)
		for j := lo; j < hi; j++ {
			xj, yj, zj := scr[j*4], scr[j*4+1], scr[j*4+2]
			var ax, ay, az float64
			for o := 0; o < n; o++ {
				if o == j {
					continue
				}
				dx := scr[o*4] - xj
				dy := scr[o*4+1] - yj
				dz := scr[o*4+2] - zj
				r2 := dx*dx + dy*dy + (dz*dz + 0.25)
				r := math.Sqrt(r2)
				inv := scr[o*4+3] / (r2 * r)
				ax += dx * inv
				ay += dy * inv
				az += dz * inv
			}
			body := bodies[j]
			p.StartWrite(body)
			d := body.Data
			const dt = 0.025
			nvx := d.Float64(3) + ax*dt
			nvy := d.Float64(4) + ay*dt
			nvz := d.Float64(5) + az*dt
			d.SetFloat64(0, xj+nvx*dt)
			d.SetFloat64(1, yj+nvy*dt)
			d.SetFloat64(2, zj+nvz*dt)
			d.SetFloat64(3, nvx)
			d.SetFloat64(4, nvy)
			d.SetFloat64(5, nvz)
			p.EndWrite(body)
		}
		p.Barrier(data)
	}
	sum := 0.0
	for i := lo; i < hi; i++ {
		r := bodies[i]
		p.StartRead(r)
		sum += r.Data.Float64(0) + r.Data.Float64(1) + r.Data.Float64(2)
		p.EndRead(r)
	}
	return sum
}
