package table4

import (
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/ir"
)

// bscKernel mirrors Blocked Sparse Cholesky's access structure: block
// columns distributed round-robin, a per-column factor step by the owner,
// then owners of dependent columns read the factored column in bulk and
// apply a rank-update with deeply nested element loops. Columns live under
// the homewrite protocol (the benchmark's best).
//
// Table 4 behaviour reproduced here: the naive translation maps and
// brackets inside the innermost element loops, so loop invariance
// dominates — the paper's largest gain for BSC (20.39s → 5.60s).
//
// The arithmetic is a simplified but deterministic stand-in for the
// factor/update math (Table 4 measures annotation placement, not
// numerics); the hand version computes bit-identical results.
func bscKernel() Kernel {
	return Kernel{
		Name: "bsc",
		SpaceProtos: map[int][]string{
			SpLocal: {"null"},
			SpData:  {"homewrite"},
		},
		Build: buildBSC,
		Setup: setupBSC,
		Hand:  handBSC,
	}
}

// Kernel parameters.
const (
	bcCols = iota // region of B column ids
	bcB
	bcBS
	bcBand
	bcMe
	bcProcs
	bcN
	bcNumParams
)

func buildBSC(cfg Config) *ir.Program {
	b := ir.NewBuilder("kernel",
		regionType([]int{SpLocal}, []int{SpData}),
		intType(), intType(), intType(), intType(), intType(), intType(),
	)
	k := b.Local(ir.KInt)
	b.Loop(k, ir.CI(0), ir.L(bcB), func() {
		mineK := b.Bin(ir.KInt, ir.Eq,
			ir.L(b.Bin(ir.KInt, ir.Mod, ir.L(k), ir.L(bcProcs))), ir.L(bcMe))
		rows := b.Bin(ir.KInt, ir.Sub, ir.L(bcN),
			ir.L(b.Bin(ir.KInt, ir.Mul, ir.L(k), ir.L(bcBS))))
		b.If(ir.L(mineK), func() {
			// Factor column k: pseudo-factorization with the real loop
			// and access structure (per-element load-modify-store on the
			// owner's column).
			col := b.SharedLoad(ir.KRegion, ir.L(bcCols), ir.L(k))
			c := b.Local(ir.KInt)
			b.Loop(c, ir.CI(0), ir.L(bcBS), func() {
				r := b.Local(ir.KInt)
				b.Loop(r, ir.CI(0), ir.L(rows), func() {
					slot := b.Bin(ir.KInt, ir.Add,
						ir.L(b.Bin(ir.KInt, ir.Mul, ir.L(c), ir.L(rows))), ir.L(r))
					v := b.SharedLoad(ir.KFloat, ir.L(col), ir.L(slot))
					nv := b.Bin(ir.KFloat, ir.Add,
						ir.L(b.Bin(ir.KFloat, ir.Mul, ir.L(v), ir.CF(0.97))), ir.CF(0.5))
					b.SharedStore(ir.KFloat, ir.L(col), ir.L(slot), ir.L(nv))
				})
			})
		}, nil)
		b.Barrier(SpData)
		// Update dependent columns j = k+1 .. min(B-1, k+band).
		j := b.Local(ir.KInt)
		jEnd := b.Bin(ir.KInt, ir.Add, ir.L(k), ir.L(bcBand))
		one := b.Bin(ir.KInt, ir.Add, ir.L(jEnd), ir.CI(1))
		bCap := b.Local(ir.KInt)
		b.MoveTo(bCap, ir.L(one))
		tooBig := b.Bin(ir.KInt, ir.Lt, ir.L(bcB), ir.L(bCap))
		b.If(ir.L(tooBig), func() { b.MoveTo(bCap, ir.L(bcB)) }, nil)
		kp1 := b.Bin(ir.KInt, ir.Add, ir.L(k), ir.CI(1))
		b.Loop(j, ir.L(kp1), ir.L(bCap), func() {
			mineJ := b.Bin(ir.KInt, ir.Eq,
				ir.L(b.Bin(ir.KInt, ir.Mod, ir.L(j), ir.L(bcProcs))), ir.L(bcMe))
			b.If(ir.L(mineJ), func() {
				colK := b.SharedLoad(ir.KRegion, ir.L(bcCols), ir.L(k))
				colJ := b.SharedLoad(ir.KRegion, ir.L(bcCols), ir.L(j))
				rowsJ := b.Bin(ir.KInt, ir.Sub, ir.L(bcN),
					ir.L(b.Bin(ir.KInt, ir.Mul, ir.L(j), ir.L(bcBS))))
				off := b.Bin(ir.KInt, ir.Mul,
					ir.L(b.Bin(ir.KInt, ir.Sub, ir.L(j), ir.L(k))), ir.L(bcBS))
				c := b.Local(ir.KInt)
				b.Loop(c, ir.CI(0), ir.L(bcBS), func() {
					// L(off+c, col k) is invariant in the row loop below;
					// the naive code still maps and brackets per element.
					offc := b.Bin(ir.KInt, ir.Add, ir.L(off), ir.L(c))
					r := b.Local(ir.KInt)
					b.Loop(r, ir.CI(0), ir.L(rowsJ), func() {
						lkc := b.SharedLoad(ir.KFloat, ir.L(colK), ir.L(offc))
						offr := b.Bin(ir.KInt, ir.Add, ir.L(off), ir.L(r))
						lkr := b.SharedLoad(ir.KFloat, ir.L(colK), ir.L(offr))
						slot := b.Bin(ir.KInt, ir.Add,
							ir.L(b.Bin(ir.KInt, ir.Mul, ir.L(c), ir.L(rowsJ))), ir.L(r))
						v := b.SharedLoad(ir.KFloat, ir.L(colJ), ir.L(slot))
						prod := b.Bin(ir.KFloat, ir.Mul,
							ir.L(b.Bin(ir.KFloat, ir.Mul, ir.L(lkc), ir.L(lkr))), ir.CF(0.001))
						b.SharedStore(ir.KFloat, ir.L(colJ), ir.L(slot),
							ir.L(b.Bin(ir.KFloat, ir.Sub, ir.L(v), ir.L(prod))))
					})
				})
			}, nil)
		})
		b.Barrier(SpData)
	})
	// Checksum over own columns.
	sum := b.Const(ir.Float(0))
	k2 := b.Local(ir.KInt)
	b.Loop(k2, ir.CI(0), ir.L(bcB), func() {
		mine := b.Bin(ir.KInt, ir.Eq,
			ir.L(b.Bin(ir.KInt, ir.Mod, ir.L(k2), ir.L(bcProcs))), ir.L(bcMe))
		b.If(ir.L(mine), func() {
			col := b.SharedLoad(ir.KRegion, ir.L(bcCols), ir.L(k2))
			rows := b.Bin(ir.KInt, ir.Sub, ir.L(bcN),
				ir.L(b.Bin(ir.KInt, ir.Mul, ir.L(k2), ir.L(bcBS))))
			total := b.Bin(ir.KInt, ir.Mul, ir.L(rows), ir.L(bcBS))
			s := b.Local(ir.KInt)
			b.Loop(s, ir.CI(0), ir.L(total), func() {
				v := b.SharedLoad(ir.KFloat, ir.L(col), ir.L(s))
				b.BinTo(sum, ir.Add, ir.L(sum), ir.L(v))
			})
		}, nil)
	})
	b.Ret(ir.L(sum))
	f := b.Func()
	return &ir.Program{
		Funcs:       map[string]*ir.Func{f.Name: f},
		SpaceProtos: map[int][]string{SpLocal: {"null"}, SpData: {"homewrite"}},
	}
}

func setupBSC(p *core.Proc, spaces map[int]*core.Space, cfg Config) []ir.Value {
	local, data := spaces[SpLocal], spaces[SpData]
	B, bs := cfg.Blocks, cfg.BlockSize
	n := B * bs
	ids := make([]core.RegionID, B)
	var mine []core.RegionID
	for k := 0; k < B; k++ {
		if k%p.Procs() == p.ID() {
			id := p.GMalloc(data, (n-k*bs)*bs*8)
			r := p.Map(id)
			p.StartWrite(r)
			for s := 0; s < (n-k*bs)*bs; s++ {
				r.Data.SetFloat64(s, float64((k*131+s*17)%97)/97.0)
			}
			p.EndWrite(r)
			p.Unmap(r)
			mine = append(mine, id)
		}
	}
	for root := 0; root < p.Procs(); root++ {
		var cnt int
		for k := 0; k < B; k++ {
			if k%p.Procs() == root {
				cnt++
			}
		}
		var got []core.RegionID
		if root == p.ID() {
			got = p.BroadcastIDs(root, mine)
		} else {
			got = p.BroadcastIDs(root, make([]core.RegionID, cnt))
		}
		i := 0
		for k := 0; k < B; k++ {
			if k%p.Procs() == root {
				ids[k] = got[i]
				i++
			}
		}
	}
	cols := idIndexRegion(p, local, ids)
	p.GlobalBarrier()
	return []ir.Value{
		ir.Region(cols),
		ir.Int(int64(B)), ir.Int(int64(bs)), ir.Int(int64(cfg.Band)),
		ir.Int(int64(p.ID())), ir.Int(int64(p.Procs())), ir.Int(int64(n)),
	}
}

// handBSC is the hand-optimized version: one map and one section per
// column per step, element loops running inside.
func handBSC(p *core.Proc, spaces map[int]*core.Space, cfg Config, args []ir.Value) float64 {
	data := spaces[SpData]
	B := int(args[bcB].I)
	bs := int(args[bcBS].I)
	band := int(args[bcBand].I)
	me := int(args[bcMe].I)
	procs := int(args[bcProcs].I)
	n := int(args[bcN].I)

	colsIdx := p.Map(args[bcCols].R)
	p.StartRead(colsIdx)
	cols := make([]*core.Region, B)
	for k := 0; k < B; k++ {
		cols[k] = p.Map(colsIdx.Data.RegionID(k))
	}
	p.EndRead(colsIdx)

	for k := 0; k < B; k++ {
		rows := n - k*bs
		if k%procs == me {
			col := cols[k]
			p.StartWrite(col)
			for c := 0; c < bs; c++ {
				for r := 0; r < rows; r++ {
					slot := c*rows + r
					col.Data.SetFloat64(slot, col.Data.Float64(slot)*0.97+0.5)
				}
			}
			p.EndWrite(col)
		}
		p.Barrier(data)
		last := min(B, k+band+1)
		for j := k + 1; j < last; j++ {
			if j%procs != me {
				continue
			}
			colK, colJ := cols[k], cols[j]
			rowsJ := n - j*bs
			off := (j - k) * bs
			p.StartRead(colK)
			p.StartWrite(colJ)
			for c := 0; c < bs; c++ {
				lkc := colK.Data.Float64(off + c)
				for r := 0; r < rowsJ; r++ {
					lkr := colK.Data.Float64(off + r)
					slot := c*rowsJ + r
					colJ.Data.SetFloat64(slot, colJ.Data.Float64(slot)-lkc*lkr*0.001)
				}
			}
			p.EndWrite(colJ)
			p.EndRead(colK)
		}
		p.Barrier(data)
	}
	sum := 0.0
	for k := 0; k < B; k++ {
		if k%procs != me {
			continue
		}
		col := cols[k]
		rows := n - k*bs
		p.StartRead(col)
		for s := 0; s < rows*bs; s++ {
			sum += col.Data.Float64(s)
		}
		p.EndRead(col)
	}
	return sum
}
