package vm

import (
	"math"
	"strings"
	"sync"
	"testing"

	"github.com/acedsm/ace/internal/compiler"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/ir"
	"github.com/acedsm/ace/proto"
)

// runProgram compiles (at the given level) and executes a one-function
// program on a single-proc cluster with one "sc" space, returning the
// result.
func runProgram(t *testing.T, f *ir.Func, lvl compiler.Level, args ...ir.Value) ir.Value {
	t.Helper()
	prog := &ir.Program{Funcs: map[string]*ir.Func{f.Name: f}, SpaceProtos: map[int][]string{0: {"sc"}}}
	compiled, err := compiler.Compile(prog, proto.NewRegistry().Decls(), lvl)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := core.NewCluster(core.Options{Procs: 1, Registry: proto.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var mu sync.Mutex
	var out ir.Value
	err = cl.Run(func(p *core.Proc) error {
		sp, err := p.NewSpace("sc")
		if err != nil {
			return err
		}
		m := New(p, compiled, map[int]*core.Space{0: sp})
		v, err := m.Call(f.Name, args...)
		if err != nil {
			return err
		}
		mu.Lock()
		out = v
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestArithmetic(t *testing.T) {
	b := ir.NewBuilder("f", ir.Type{Kind: ir.KInt}, ir.Type{Kind: ir.KFloat})
	s1 := b.Bin(ir.KInt, ir.Add, ir.L(0), ir.CI(10))     // a + 10
	s2 := b.Bin(ir.KInt, ir.Mul, ir.L(s1), ir.CI(3))     // *3
	s3 := b.Bin(ir.KInt, ir.Mod, ir.L(s2), ir.CI(7))     // %7
	f1 := b.Un(ir.KFloat, ir.IntToFloat, ir.L(s3))       // to float
	f2 := b.Bin(ir.KFloat, ir.Add, ir.L(f1), ir.L(1))    // + b
	f3 := b.Un(ir.KFloat, ir.Sqrt, ir.L(f2))             // sqrt
	f4 := b.Bin(ir.KFloat, ir.Div, ir.L(f3), ir.CF(2.0)) // /2
	b.Ret(ir.L(f4))
	got := runProgram(t, b.Func(), compiler.LevelBase, ir.Int(4), ir.Float(2.75))
	want := math.Sqrt(float64((4+10)*3%7)+2.75) / 2
	if got.F != want {
		t.Fatalf("got %v, want %v", got.F, want)
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	b := ir.NewBuilder("f", ir.Type{Kind: ir.KInt})
	lt := b.Bin(ir.KInt, ir.Lt, ir.L(0), ir.CI(10))
	eq := b.Bin(ir.KInt, ir.Eq, ir.L(0), ir.CI(5))
	both := b.Bin(ir.KInt, ir.And, ir.L(lt), ir.L(eq))
	not := b.Un(ir.KInt, ir.Not, ir.L(both))
	either := b.Bin(ir.KInt, ir.Or, ir.L(not), ir.CI(0))
	b.Ret(ir.L(either))
	if got := runProgram(t, b.Func(), compiler.LevelBase, ir.Int(5)); got.I != 0 {
		t.Fatalf("5<10 && 5==5, negated: got %d, want 0", got.I)
	}
	if got := runProgram(t, b.Func(), compiler.LevelBase, ir.Int(6)); got.I != 1 {
		t.Fatalf("got %d, want 1", got.I)
	}
}

func TestLoopAndIfControl(t *testing.T) {
	// Sum of even numbers below n.
	b := ir.NewBuilder("f", ir.Type{Kind: ir.KInt})
	sum := b.Const(ir.Int(0))
	i := b.Local(ir.KInt)
	b.Loop(i, ir.CI(0), ir.L(0), func() {
		even := b.Bin(ir.KInt, ir.Eq, ir.L(b.Bin(ir.KInt, ir.Mod, ir.L(i), ir.CI(2))), ir.CI(0))
		b.If(ir.L(even), func() {
			b.BinTo(sum, ir.Add, ir.L(sum), ir.L(i))
		}, nil)
	})
	b.Ret(ir.L(sum))
	if got := runProgram(t, b.Func(), compiler.LevelBase, ir.Int(10)); got.I != 20 {
		t.Fatalf("got %d, want 20", got.I)
	}
}

func TestSharedAccessAllKinds(t *testing.T) {
	b := ir.NewBuilder("f")
	r := b.GMalloc(0, ir.CI(64))
	b.SharedStore(ir.KFloat, ir.L(r), ir.CI(0), ir.CF(2.5))
	b.SharedStore(ir.KInt, ir.L(r), ir.CI(1), ir.CI(-9))
	r2 := b.GMalloc(0, ir.CI(8))
	b.SharedStore(ir.KRegion, ir.L(r), ir.CI(2), ir.L(r2))
	b.SharedStore(ir.KFloat, ir.L(r2), ir.CI(0), ir.CF(7.0))

	fv := b.SharedLoad(ir.KFloat, ir.L(r), ir.CI(0))
	iv := b.SharedLoad(ir.KInt, ir.L(r), ir.CI(1))
	rv := b.SharedLoad(ir.KRegion, ir.L(r), ir.CI(2))
	inner := b.SharedLoad(ir.KFloat, ir.L(rv), ir.CI(0))
	ivf := b.Un(ir.KFloat, ir.IntToFloat, ir.L(iv))
	s1 := b.Bin(ir.KFloat, ir.Add, ir.L(fv), ir.L(ivf))
	s2 := b.Bin(ir.KFloat, ir.Add, ir.L(s1), ir.L(inner))
	b.Ret(ir.L(s2))
	if got := runProgram(t, b.Func(), compiler.LevelBase); got.F != 2.5-9+7 {
		t.Fatalf("got %v, want 0.5", got.F)
	}
}

func TestSameResultAtEveryLevel(t *testing.T) {
	build := func() *ir.Func {
		b := ir.NewBuilder("f", ir.Type{Kind: ir.KInt})
		r := b.GMalloc(0, ir.CI(800))
		i := b.Local(ir.KInt)
		b.Loop(i, ir.CI(0), ir.L(0), func() {
			v := b.Un(ir.KFloat, ir.IntToFloat, ir.L(i))
			b.SharedStore(ir.KFloat, ir.L(r), ir.L(i), ir.L(v))
		})
		sum := b.Const(ir.Float(0))
		j := b.Local(ir.KInt)
		b.Loop(j, ir.CI(0), ir.L(0), func() {
			v := b.SharedLoad(ir.KFloat, ir.L(r), ir.L(j))
			b.BinTo(sum, ir.Add, ir.L(sum), ir.L(v))
		})
		b.Ret(ir.L(sum))
		return b.Func()
	}
	var results []float64
	for _, lvl := range []compiler.Level{compiler.LevelBase, compiler.LevelLI, compiler.LevelMC, compiler.LevelDC} {
		got := runProgram(t, build(), lvl, ir.Int(50))
		results = append(results, got.F)
	}
	for _, r := range results[1:] {
		if r != results[0] {
			t.Fatalf("levels disagree: %v", results)
		}
	}
	if results[0] != 1225 {
		t.Fatalf("got %v, want 1225", results[0])
	}
}

func TestUnannotatedSharedAccessRejected(t *testing.T) {
	b := ir.NewBuilder("f", ir.Type{Kind: ir.KRegion, Spaces: []int{0}})
	v := b.SharedLoad(ir.KFloat, ir.L(0), ir.CI(0))
	b.Ret(ir.L(v))
	f := b.Func()
	prog := &ir.Program{Funcs: map[string]*ir.Func{"f": f}, SpaceProtos: map[int][]string{0: {"sc"}}}
	cl, err := core.NewCluster(core.Options{Procs: 1, Registry: proto.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *core.Proc) error {
		sp, _ := p.NewSpace("sc")
		m := New(p, prog, map[int]*core.Space{0: sp})
		id := p.GMalloc(sp, 8)
		_, err := m.Call("f", ir.Region(id))
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "un-annotated") {
		t.Fatalf("err = %v, want un-annotated rejection", err)
	}
}

func TestUnknownFunction(t *testing.T) {
	cl, err := core.NewCluster(core.Options{Procs: 1, Registry: proto.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *core.Proc) error {
		m := New(p, &ir.Program{Funcs: map[string]*ir.Func{}}, nil)
		_, err := m.Call("nope")
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "unknown function") {
		t.Fatalf("err = %v", err)
	}
}

func TestArgCountMismatch(t *testing.T) {
	b := ir.NewBuilder("f", ir.Type{Kind: ir.KInt})
	b.Ret(ir.L(0))
	prog := &ir.Program{Funcs: map[string]*ir.Func{"f": b.Func()}}
	cl, err := core.NewCluster(core.Options{Procs: 1, Registry: proto.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *core.Proc) error {
		m := New(p, prog, nil)
		_, err := m.Call("f") // missing arg
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "expects 1 args") {
		t.Fatalf("err = %v", err)
	}
}

func TestCountsTally(t *testing.T) {
	b := ir.NewBuilder("f")
	r := b.GMalloc(0, ir.CI(8))
	b.SharedStore(ir.KFloat, ir.L(r), ir.CI(0), ir.CF(1))
	v := b.SharedLoad(ir.KFloat, ir.L(r), ir.CI(0))
	b.Ret(ir.L(v))
	prog := &ir.Program{Funcs: map[string]*ir.Func{"f": b.Func()}, SpaceProtos: map[int][]string{0: {"sc"}}}
	compiled, err := compiler.Compile(prog, proto.NewRegistry().Decls(), compiler.LevelBase)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := core.NewCluster(core.Options{Procs: 1, Registry: proto.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *core.Proc) error {
		sp, _ := p.NewSpace("sc")
		m := New(p, compiled, map[int]*core.Space{0: sp})
		if _, err := m.Call("f"); err != nil {
			return err
		}
		if m.Counts["map"] != 2 || m.Counts["start_write"] != 1 || m.Counts["start_read"] != 1 {
			t.Errorf("counts = %v", m.Counts)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
