// Package vm interprets compiled Ace IR against the runtime, one machine
// per processor (SPMD). It is the execution vehicle for the compiler
// experiments: the same kernel runs at each optimization level, and the
// protocol calls the compiler could not remove are executed for real.
package vm

import (
	"fmt"
	"math"

	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/ir"
)

// Machine executes IR functions on one processor.
type Machine struct {
	p      *core.Proc
	prog   *ir.Program
	spaces map[int]*core.Space

	// Counts tallies executed annotation calls by point name, plus
	// "direct" for direct-bound calls — the dynamic counterpart of the
	// compiler's static counts.
	Counts map[string]uint64
}

// New builds a machine for proc p running prog. spaces maps the program's
// space ids to runtime spaces.
func New(p *core.Proc, prog *ir.Program, spaces map[int]*core.Space) *Machine {
	return &Machine{p: p, prog: prog, spaces: spaces, Counts: make(map[string]uint64)}
}

// val is a runtime value: a constant plus, for handles, the mapped region.
type val struct {
	v ir.Value
	h *core.Region
}

type frame struct {
	locals []val
}

// Call executes the named function with the given arguments.
func (m *Machine) Call(fn string, args ...ir.Value) (ir.Value, error) {
	f := m.prog.Funcs[fn]
	if f == nil {
		return ir.Value{}, fmt.Errorf("vm: unknown function %q", fn)
	}
	if len(args) != len(f.Params) {
		return ir.Value{}, fmt.Errorf("vm: %s expects %d args, got %d", fn, len(f.Params), len(args))
	}
	fr := &frame{locals: make([]val, f.NumLocals)}
	for i, a := range args {
		fr.locals[i] = val{v: a}
	}
	ret, err := m.exec(fr, f.Body)
	if err != nil {
		return ir.Value{}, err
	}
	if ret == nil {
		return ir.Value{}, nil
	}
	return *ret, nil
}

// exec runs a statement list; a non-nil result is a return value
// propagating outward.
func (m *Machine) exec(fr *frame, list []ir.Instr) (*ir.Value, error) {
	for i := range list {
		in := &list[i]
		switch in.Op {
		case ir.OpConst:
			fr.locals[in.Dst] = val{v: in.ConstVal}
		case ir.OpMove:
			fr.locals[in.Dst] = m.eval(fr, in.A)
		case ir.OpBin:
			a, b := m.eval(fr, in.A).v, m.eval(fr, in.B).v
			v, err := binop(in.Bin, a, b)
			if err != nil {
				return nil, err
			}
			fr.locals[in.Dst] = val{v: v}
		case ir.OpUn:
			a := m.eval(fr, in.A).v
			v, err := unop(in.Un, a)
			if err != nil {
				return nil, err
			}
			fr.locals[in.Dst] = val{v: v}
		case ir.OpMap:
			id := m.eval(fr, in.A).v.R
			m.count("map", in.Direct)
			fr.locals[in.Dst] = val{v: ir.Value{K: ir.KHandle}, h: m.p.Map(id)}
		case ir.OpUnmap:
			m.count("unmap", in.Direct)
			m.p.Unmap(m.handle(fr, in.A))
		case ir.OpStartRead:
			m.count("start_read", in.Direct)
			if in.Bare {
				m.p.StartReadBare(m.handle(fr, in.A))
			} else {
				m.p.StartRead(m.handle(fr, in.A))
			}
		case ir.OpEndRead:
			m.count("end_read", in.Direct)
			if in.Bare {
				m.p.EndReadBare(m.handle(fr, in.A))
			} else {
				m.p.EndRead(m.handle(fr, in.A))
			}
		case ir.OpStartWrite:
			m.count("start_write", in.Direct)
			if in.Bare {
				m.p.StartWriteBare(m.handle(fr, in.A))
			} else {
				m.p.StartWrite(m.handle(fr, in.A))
			}
		case ir.OpEndWrite:
			m.count("end_write", in.Direct)
			if in.Bare {
				m.p.EndWriteBare(m.handle(fr, in.A))
			} else {
				m.p.EndWrite(m.handle(fr, in.A))
			}
		case ir.OpLoad:
			h := m.handle(fr, in.A)
			idx := int(m.eval(fr, in.B).v.I)
			fr.locals[in.Dst] = val{v: loadElem(h, idx, in.ElemKind)}
		case ir.OpStore:
			h := m.handle(fr, in.A)
			idx := int(m.eval(fr, in.B).v.I)
			storeElem(h, idx, m.eval(fr, in.Src).v, in.ElemKind)
		case ir.OpSharedLoad, ir.OpSharedStore:
			return nil, fmt.Errorf("vm: un-annotated shared access (run the compiler first)")
		case ir.OpBarrier:
			spID := int(m.eval(fr, in.A).v.I)
			sp := m.spaces[spID]
			if sp == nil {
				return nil, fmt.Errorf("vm: barrier on unknown space %d", spID)
			}
			m.p.Barrier(sp)
		case ir.OpLoop:
			start := m.eval(fr, in.A).v.I
			for x := start; ; x++ {
				end := m.eval(fr, in.B).v.I
				if x >= end {
					break
				}
				fr.locals[in.Dst] = val{v: ir.Int(x)}
				ret, err := m.exec(fr, in.Body)
				if err != nil || ret != nil {
					return ret, err
				}
			}
		case ir.OpIf:
			cond := m.eval(fr, in.A).v.I
			body := in.Body
			if cond == 0 {
				body = in.Else
			}
			ret, err := m.exec(fr, body)
			if err != nil || ret != nil {
				return ret, err
			}
		case ir.OpCall:
			args := make([]ir.Value, len(in.Args))
			for ai, a := range in.Args {
				args[ai] = m.eval(fr, a).v
			}
			v, err := m.Call(in.Callee, args...)
			if err != nil {
				return nil, err
			}
			if in.Dst >= 0 {
				fr.locals[in.Dst] = val{v: v}
			}
		case ir.OpRet:
			v := m.eval(fr, in.A).v
			return &v, nil
		case ir.OpGMalloc:
			spID := int(m.eval(fr, in.A).v.I)
			sp := m.spaces[spID]
			if sp == nil {
				return nil, fmt.Errorf("vm: gmalloc in unknown space %d", spID)
			}
			size := int(m.eval(fr, in.B).v.I)
			fr.locals[in.Dst] = val{v: ir.Region(m.p.GMalloc(sp, size))}
		case ir.OpBcastID:
			root := int(m.eval(fr, in.A).v.I)
			id := m.eval(fr, in.Src).v.R
			fr.locals[in.Dst] = val{v: ir.Region(m.p.BroadcastID(root, id))}
		case ir.OpLock, ir.OpUnlock:
			id := m.eval(fr, in.A).v.R
			r := m.p.Map(id)
			if in.Op == ir.OpLock {
				m.p.Lock(r)
			} else {
				m.p.Unlock(r)
			}
			m.p.Unmap(r)
		case ir.OpChangeProto:
			spID := int(m.eval(fr, in.A).v.I)
			sp := m.spaces[spID]
			if sp == nil {
				return nil, fmt.Errorf("vm: changeprotocol on unknown space %d", spID)
			}
			if err := m.p.ChangeProtocol(sp, in.Callee); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("vm: bad opcode %d", in.Op)
		}
	}
	return nil, nil
}

func (m *Machine) count(point string, direct bool) {
	m.Counts[point]++
	if direct {
		m.Counts["direct"]++
	}
}

func (m *Machine) eval(fr *frame, o ir.Operand) val {
	if o.IsConst {
		return val{v: o.Const}
	}
	return fr.locals[o.Local]
}

func (m *Machine) handle(fr *frame, o ir.Operand) *core.Region {
	v := m.eval(fr, o)
	if v.h == nil {
		panic(fmt.Sprintf("vm: proc %d: operand %v is not a mapped handle", m.p.ID(), o))
	}
	return v.h
}

func loadElem(r *core.Region, idx int, k ir.Kind) ir.Value {
	switch k {
	case ir.KFloat:
		return ir.Float(r.Data.Float64(idx))
	case ir.KInt:
		return ir.Int(r.Data.Int64(idx))
	case ir.KRegion:
		return ir.Region(r.Data.RegionID(idx))
	}
	panic(fmt.Sprintf("vm: bad load kind %v", k))
}

func storeElem(r *core.Region, idx int, v ir.Value, k ir.Kind) {
	switch k {
	case ir.KFloat:
		r.Data.SetFloat64(idx, v.F)
	case ir.KInt:
		r.Data.SetInt64(idx, v.I)
	case ir.KRegion:
		r.Data.SetRegionID(idx, v.R)
	default:
		panic(fmt.Sprintf("vm: bad store kind %v", k))
	}
}

func binop(op ir.BinOp, a, b ir.Value) (ir.Value, error) {
	if a.K == ir.KFloat || b.K == ir.KFloat {
		x, y := toF(a), toF(b)
		switch op {
		case ir.Add:
			return ir.Float(x + y), nil
		case ir.Sub:
			return ir.Float(x - y), nil
		case ir.Mul:
			return ir.Float(x * y), nil
		case ir.Div:
			return ir.Float(x / y), nil
		case ir.Lt:
			return boolVal(x < y), nil
		case ir.Le:
			return boolVal(x <= y), nil
		case ir.Eq:
			return boolVal(x == y), nil
		case ir.Ne:
			return boolVal(x != y), nil
		}
		return ir.Value{}, fmt.Errorf("vm: bad float binop %d", op)
	}
	x, y := a.I, b.I
	switch op {
	case ir.Add:
		return ir.Int(x + y), nil
	case ir.Sub:
		return ir.Int(x - y), nil
	case ir.Mul:
		return ir.Int(x * y), nil
	case ir.Div:
		return ir.Int(x / y), nil
	case ir.Mod:
		return ir.Int(x % y), nil
	case ir.Lt:
		return boolVal(x < y), nil
	case ir.Le:
		return boolVal(x <= y), nil
	case ir.Eq:
		return boolVal(x == y), nil
	case ir.Ne:
		return boolVal(x != y), nil
	case ir.And:
		return boolVal(x != 0 && y != 0), nil
	case ir.Or:
		return boolVal(x != 0 || y != 0), nil
	}
	return ir.Value{}, fmt.Errorf("vm: bad int binop %d", op)
}

func unop(op ir.UnOp, a ir.Value) (ir.Value, error) {
	switch op {
	case ir.Neg:
		if a.K == ir.KFloat {
			return ir.Float(-a.F), nil
		}
		return ir.Int(-a.I), nil
	case ir.Sqrt:
		return ir.Float(math.Sqrt(toF(a))), nil
	case ir.IntToFloat:
		return ir.Float(float64(a.I)), nil
	case ir.Not:
		return boolVal(a.I == 0), nil
	}
	return ir.Value{}, fmt.Errorf("vm: bad unop %d", op)
}

func toF(v ir.Value) float64 {
	if v.K == ir.KFloat {
		return v.F
	}
	return float64(v.I)
}

func boolVal(b bool) ir.Value {
	if b {
		return ir.Int(1)
	}
	return ir.Int(0)
}
