package tcpnet

import (
	"sync"
	"testing"
	"time"

	"github.com/acedsm/ace/internal/amnet"
)

func TestQueueBatchedPop(t *testing.T) {
	q := newQueue()
	const n = 64
	for i := 0; i < n; i++ {
		q.push(frame{msg: amnet.Msg{A: uint64(i)}})
	}
	batch, ok := q.popAll(nil)
	if !ok {
		t.Fatal("popAll reported closed")
	}
	if len(batch) != n {
		t.Fatalf("batched pop returned %d frames, want %d in one swap", len(batch), n)
	}
	for i, f := range batch {
		if f.msg.A != uint64(i) {
			t.Fatalf("out of order at %d: got %d", i, f.msg.A)
		}
	}
}

func TestQueueCloseWhileNonEmptyDrains(t *testing.T) {
	q := newQueue()
	for i := 0; i < 3; i++ {
		q.push(frame{msg: amnet.Msg{A: uint64(i)}})
	}
	q.close()
	batch, ok := q.popAll(nil)
	if !ok || len(batch) != 3 {
		t.Fatalf("pop after close = %d frames, ok=%v; want 3, true", len(batch), ok)
	}
	if _, ok := q.popAll(batch); ok {
		t.Fatal("drained queue still reports frames after close")
	}
	// Pushes after close are dropped.
	q.push(frame{msg: amnet.Msg{A: 9}})
	if _, ok := q.popAll(nil); ok {
		t.Fatal("push after close was queued")
	}
}

func TestRegisterOutOfRange(t *testing.T) {
	nw, err := New(Loopback(1))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Register(MaxHandlers) did not panic")
		}
	}()
	nw.Endpoints()[0].Register(amnet.MaxHandlers, func(amnet.Msg) {})
}

// TestConcurrentSendersFIFO drives several sender goroutines per source
// node at one destination and checks per-pair FIFO survives the
// coalescing writer. Run under -race this also exercises the writer
// goroutines and pooled buffers for data races.
func TestConcurrentSendersFIFO(t *testing.T) {
	const nodes = 4
	const perSender = 3000
	nw, err := New(Loopback(nodes))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	eps := nw.Endpoints()
	var next [nodes]uint64
	done := make(chan struct{})
	seen := 0
	eps[0].Register(11, func(m amnet.Msg) {
		if m.A != next[m.Src] {
			t.Errorf("src %d out of order: got %d, want %d", m.Src, m.A, next[m.Src])
		}
		next[m.Src]++
		seen++
		if seen == (nodes-1)*perSender {
			close(done)
		}
	})
	var wg sync.WaitGroup
	for src := 1; src < nodes; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			payload := []byte("coalesce me")
			for i := 0; i < perSender; i++ {
				eps[src].Send(amnet.Msg{Dst: 0, Handler: 11, A: uint64(i), Payload: payload})
			}
		}(src)
	}
	wg.Wait()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("only %d of %d delivered", seen, (nodes-1)*perSender)
	}
}

// TestPayloadOwnershipAcrossPool checks a delivered payload stays intact
// when the receiving handler retains it while later traffic reuses pooled
// buffers, and that recycling inside the handler is safe.
func TestPayloadOwnershipAcrossPool(t *testing.T) {
	nw, err := New(Loopback(2))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	eps := nw.Endpoints()
	const n = 200
	kept := make([][]byte, 0, n)
	done := make(chan struct{})
	eps[1].Register(12, func(m amnet.Msg) {
		if len(kept)%2 == 0 {
			// Retain every other payload; the fabric must not reuse it.
			kept = append(kept, m.Payload)
		} else {
			kept = append(kept, append([]byte(nil), m.Payload...))
			amnet.Recycle(m.Payload)
		}
		if len(kept) == n {
			close(done)
		}
	})
	for i := 0; i < n; i++ {
		payload := make([]byte, 32)
		payload[0] = byte(i)
		payload[31] = byte(i >> 8)
		eps[0].Send(amnet.Msg{Dst: 1, Handler: 12, A: uint64(i), Payload: payload})
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d of %d delivered", len(kept), n)
	}
	for i, p := range kept {
		if i%2 != 0 {
			continue // recycled ones were copied
		}
		if p[0] != byte(i) || p[31] != byte(i>>8) {
			t.Fatalf("retained payload %d corrupted: [%d %d]", i, p[0], p[31])
		}
	}
}

// TestCopiesPayloadOnSend asserts the transport advertises its
// synchronous payload copy (the runtime skips its defensive clone based
// on this), and that mutating the caller's buffer right after Send does
// not corrupt the wire data.
func TestCopiesPayloadOnSend(t *testing.T) {
	nw, err := New(Loopback(2))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	eps := nw.Endpoints()
	pc, ok := eps[0].(amnet.PayloadCopier)
	if !ok || !pc.CopiesPayloadOnSend() {
		t.Fatal("tcpnet endpoint does not advertise synchronous payload copy")
	}
	got := make(chan []byte, 1)
	eps[1].Register(13, func(m amnet.Msg) { got <- m.Payload })
	buf := []byte("before")
	eps[0].Send(amnet.Msg{Dst: 1, Handler: 13, Payload: buf})
	copy(buf, "XXXXXX") // caller reuses its buffer immediately
	select {
	case p := <-got:
		if string(p) != "before" {
			t.Fatalf("wire payload = %q, want %q", p, "before")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}
