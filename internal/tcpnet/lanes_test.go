package tcpnet

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/acedsm/ace/internal/amnet"
)

// TestLanesFIFOStressTCP is the sharded-dispatch FIFO stress over real
// sockets: several concurrent senders hammer node 0 across lane counts,
// and the handler records each sender's sequence in a plain
// (unsynchronized) per-sender slot. Lane keying by source must
// serialize all handler runs for one sender, so under -race the slots
// double as a detector proof of per-sender serialization, not just
// ordering.
func TestLanesFIFOStressTCP(t *testing.T) {
	const (
		nodes     = 4
		perSender = 2000
	)
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, lanes := range []int{1, 2, 8} {
		cfg := Loopback(nodes)
		cfg.Lanes = lanes
		nw, err := New(cfg)
		if err != nil {
			t.Fatalf("lanes=%d: New: %v", lanes, err)
		}
		eps := nw.Endpoints()
		last := make([]uint64, nodes) // plain per-sender slots, see above
		var seen atomic.Uint64
		done := make(chan struct{})
		bad := make(chan string, 1)
		eps[0].Register(9, func(m amnet.Msg) {
			if m.A != last[m.Src]+1 {
				select {
				case bad <- "fifo violation":
				default:
				}
			}
			last[m.Src] = m.A
			if seen.Add(1) == uint64(perSender*(nodes-1)) {
				close(done)
			}
		})
		var wg sync.WaitGroup
		for src := 1; src < nodes; src++ {
			wg.Add(1)
			go func(src int) {
				defer wg.Done()
				for i := 1; i <= perSender; i++ {
					eps[src].Send(amnet.Msg{Dst: 0, Handler: 9, A: uint64(i)})
				}
			}(src)
		}
		wg.Wait()
		select {
		case <-done:
		case msg := <-bad:
			t.Fatalf("lanes=%d: %s", lanes, msg)
		case <-time.After(30 * time.Second):
			t.Fatalf("lanes=%d: stalled at %d/%d", lanes, seen.Load(), perSender*(nodes-1))
		}
		for src := 1; src < nodes; src++ {
			if last[src] != perSender {
				t.Fatalf("lanes=%d: sender %d delivered %d of %d", lanes, src, last[src], perSender)
			}
		}
		nw.Close()
	}
}

// TestLanesDispatchConcurrentlyTCP proves the sharded pumps dispatch
// concurrently over sockets: the handler serving sender 1 parks until
// the handler serving sender 2 — on the other lane — releases it. A
// single-pump endpoint deadlocks here.
func TestLanesDispatchConcurrentlyTCP(t *testing.T) {
	cfg := Loopback(3)
	cfg.Lanes = 2
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	eps := nw.Endpoints()
	release := make(chan struct{})
	done := make(chan struct{})
	eps[0].Register(9, func(m amnet.Msg) {
		switch m.Src {
		case 1:
			<-release
			close(done)
		case 2:
			close(release)
		}
	})
	eps[1].Send(amnet.Msg{Dst: 0, Handler: 9})
	time.Sleep(20 * time.Millisecond)
	eps[2].Send(amnet.Msg{Dst: 0, Handler: 9})
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handlers did not run concurrently: sharded lanes are serialized")
	}
}
