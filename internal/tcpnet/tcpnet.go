// Package tcpnet implements the amnet.Network interface over real TCP
// sockets (loopback by default): the same Active Messages contract —
// per-pair FIFO ordering, non-blocking sends, serialized handler delivery
// per node — carried by length-prefixed frames. It demonstrates the
// paper's portability claim: Ace runs on any system with an Active
// Messages mechanism (Section 1).
package tcpnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/acedsm/ace/internal/amnet"
)

// NewLoopbackNetwork builds an n-node network over TCP connections on
// 127.0.0.1 with a full mesh of connections.
func NewLoopbackNetwork(n int) (amnet.Network, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tcpnet: invalid node count %d", n)
	}
	nw := &network{eps: make([]*endpoint, n)}
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			nw.Close()
			return nil, err
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
		nw.eps[i] = &endpoint{id: amnet.NodeID(i), nw: nw, box: newQueue()}
	}
	// Accept side: node j accepts n connections; the first frame on each
	// identifies the sender. Dial side: node i dials everyone (including
	// itself, keeping the path uniform).
	var acceptWG sync.WaitGroup
	acceptErr := make(chan error, n)
	for j := 0; j < n; j++ {
		acceptWG.Add(1)
		go func(j int) {
			defer acceptWG.Done()
			for k := 0; k < n; k++ {
				conn, err := listeners[j].Accept()
				if err != nil {
					acceptErr <- err
					return
				}
				var hello [4]byte
				if _, err := io.ReadFull(conn, hello[:]); err != nil {
					acceptErr <- err
					return
				}
				src := int32(binary.LittleEndian.Uint32(hello[:]))
				nw.eps[j].addReader(conn, amnet.NodeID(src))
			}
		}(j)
	}
	for i := 0; i < n; i++ {
		nw.eps[i].out = make([]*sender, n)
		for j := 0; j < n; j++ {
			conn, err := net.Dial("tcp", addrs[j])
			if err != nil {
				nw.Close()
				return nil, err
			}
			var hello [4]byte
			binary.LittleEndian.PutUint32(hello[:], uint32(i))
			if _, err := conn.Write(hello[:]); err != nil {
				nw.Close()
				return nil, err
			}
			nw.eps[i].out[j] = &sender{conn: conn}
		}
	}
	acceptWG.Wait()
	close(acceptErr)
	if err := <-acceptErr; err != nil {
		nw.Close()
		return nil, err
	}
	for _, l := range listeners {
		l.Close()
	}
	for _, ep := range nw.eps {
		nw.wg.Add(1)
		go ep.pump(&nw.wg)
	}
	return nw, nil
}

type network struct {
	eps []*endpoint
	wg  sync.WaitGroup
}

func (n *network) Endpoints() []amnet.Endpoint {
	out := make([]amnet.Endpoint, len(n.eps))
	for i, ep := range n.eps {
		out[i] = ep
	}
	return out
}

func (n *network) Close() error {
	for _, ep := range n.eps {
		if ep == nil {
			continue
		}
		for _, s := range ep.out {
			if s != nil {
				s.conn.Close()
			}
		}
		ep.box.close()
	}
	n.wg.Wait()
	return nil
}

// sender serializes writes on one outgoing connection.
type sender struct {
	mu   sync.Mutex
	conn net.Conn
}

type endpoint struct {
	id       amnet.NodeID
	nw       *network
	out      []*sender
	box      *queue
	handlers [amnet.MaxHandlers]amnet.Handler
	stats    amnet.Stats
	readers  sync.WaitGroup
}

func (e *endpoint) ID() amnet.NodeID { return e.id }
func (e *endpoint) Nodes() int       { return len(e.nw.eps) }

func (e *endpoint) Register(id amnet.HandlerID, fn amnet.Handler) {
	e.handlers[id] = fn
}

// frame layout: [u32 total][i32 dst][i32 src][u16 handler][4 × u64]
// [i64 send stamp][payload]. The send stamp is on the sender's trace
// clock (0 when latency sampling is off); it is meaningful because this
// network's nodes share one process.
const frameHeader = 4 + 4 + 4 + 2 + 32 + 8

// Send encodes and writes the message on the destination's connection.
// TCP gives per-connection FIFO, matching the fabric contract.
func (e *endpoint) Send(m amnet.Msg) {
	m.Src = e.id
	e.countSend(m)
	buf := make([]byte, frameHeader+len(m.Payload))
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(buf)-4))
	binary.LittleEndian.PutUint32(buf[4:], uint32(m.Dst))
	binary.LittleEndian.PutUint32(buf[8:], uint32(m.Src))
	binary.LittleEndian.PutUint16(buf[12:], uint16(m.Handler))
	binary.LittleEndian.PutUint64(buf[14:], m.A)
	binary.LittleEndian.PutUint64(buf[22:], m.B)
	binary.LittleEndian.PutUint64(buf[30:], m.C)
	binary.LittleEndian.PutUint64(buf[38:], m.D)
	binary.LittleEndian.PutUint64(buf[46:], uint64(e.stats.SendStamp()))
	copy(buf[frameHeader:], m.Payload)
	s := e.out[m.Dst]
	s.mu.Lock()
	_, err := s.conn.Write(buf)
	s.mu.Unlock()
	if err != nil {
		panic(fmt.Sprintf("tcpnet: node %d: send to %d: %v", e.id, m.Dst, err))
	}
}

func (e *endpoint) Stats() *amnet.Stats { return &e.stats }

// addReader starts a goroutine decoding frames from one incoming
// connection into the node's queue.
func (e *endpoint) addReader(conn net.Conn, src amnet.NodeID) {
	e.readers.Add(1)
	go func() {
		defer e.readers.Done()
		defer conn.Close()
		for {
			var lenBuf [4]byte
			if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
				return // connection closed
			}
			total := binary.LittleEndian.Uint32(lenBuf[:])
			body := make([]byte, total)
			if _, err := io.ReadFull(conn, body); err != nil {
				return
			}
			m := amnet.Msg{
				Dst:     amnet.NodeID(int32(binary.LittleEndian.Uint32(body[0:]))),
				Src:     amnet.NodeID(int32(binary.LittleEndian.Uint32(body[4:]))),
				Handler: amnet.HandlerID(binary.LittleEndian.Uint16(body[8:])),
				A:       binary.LittleEndian.Uint64(body[10:]),
				B:       binary.LittleEndian.Uint64(body[18:]),
				C:       binary.LittleEndian.Uint64(body[26:]),
				D:       binary.LittleEndian.Uint64(body[34:]),
			}
			sent := int64(binary.LittleEndian.Uint64(body[42:]))
			if len(body) > frameHeader-4 {
				m.Payload = body[frameHeader-4:]
			}
			e.box.push(frame{msg: m, sent: sent})
		}
	}()
}

// pump drains the queue and dispatches handlers, one at a time.
func (e *endpoint) pump(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		f, ok := e.box.pop()
		if !ok {
			return
		}
		e.stats.ObserveDeliver(f.sent)
		m := f.msg
		e.countRecv(m)
		h := e.handlers[m.Handler]
		if h == nil {
			panic(fmt.Sprintf("tcpnet: node %d: no handler %d", e.id, m.Handler))
		}
		h(m)
	}
}

func (e *endpoint) countSend(m amnet.Msg) {
	e.stats.CountSend(frameHeader + len(m.Payload))
}

func (e *endpoint) countRecv(m amnet.Msg) {
	e.stats.CountRecv(uint16(m.Handler), frameHeader+len(m.Payload))
}

// frame is a decoded message plus its sender's trace-clock stamp (0 when
// latency sampling was off at the sender).
type frame struct {
	msg  amnet.Msg
	sent int64
}

// queue is an unbounded MPSC mailbox (the no-deadlock property of the
// fabric depends on sends never blocking on the receiver).
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []frame
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) push(f frame) {
	q.mu.Lock()
	if !q.closed {
		q.items = append(q.items, f)
	}
	q.mu.Unlock()
	q.cond.Signal()
}

func (q *queue) pop() (frame, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return frame{}, false
	}
	f := q.items[0]
	q.items[0] = frame{}
	q.items = q.items[1:]
	if len(q.items) == 0 && cap(q.items) > 1024 {
		q.items = nil
	}
	return f, true
}

func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
