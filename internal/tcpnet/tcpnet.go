// Package tcpnet implements the amnet.Network interface over real TCP
// sockets (loopback by default): the same Active Messages contract —
// per-pair FIFO ordering, non-blocking sends, serialized handler delivery
// per node — carried by length-prefixed frames. It demonstrates the
// paper's portability claim: Ace runs on any system with an Active
// Messages mechanism (Section 1).
//
// The send path is coalescing: Send encodes the frame into a pooled
// buffer and hands it to a per-connection writer goroutine, which drains
// its queue into one large buffered write and flushes only when the
// queue goes empty — a burst of n messages costs one flush syscall, a
// lone message still flushes immediately, so throughput is gained
// without a latency tax. Frame and payload buffers come from the
// amnet buffer pool (amnet.Alloc/Recycle); a delivered Msg.Payload is
// owned by the handler per the fabric's ownership contract.
package tcpnet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"

	"github.com/acedsm/ace/internal/amnet"
)

// NewLoopbackNetwork builds an n-node network over TCP connections on
// 127.0.0.1 with a full mesh of connections.
func NewLoopbackNetwork(n int) (amnet.Network, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tcpnet: invalid node count %d", n)
	}
	nw := &network{eps: make([]*endpoint, n)}
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			nw.Close()
			return nil, err
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
		nw.eps[i] = &endpoint{id: amnet.NodeID(i), nw: nw, box: newQueue()}
	}
	// Accept side: node j accepts n connections; the first frame on each
	// identifies the sender. Dial side: node i dials everyone (including
	// itself, keeping the path uniform).
	var acceptWG sync.WaitGroup
	acceptErr := make(chan error, n)
	for j := 0; j < n; j++ {
		acceptWG.Add(1)
		go func(j int) {
			defer acceptWG.Done()
			for k := 0; k < n; k++ {
				conn, err := listeners[j].Accept()
				if err != nil {
					acceptErr <- err
					return
				}
				tuneConn(conn)
				var hello [4]byte
				if _, err := io.ReadFull(conn, hello[:]); err != nil {
					acceptErr <- err
					return
				}
				src := int32(binary.LittleEndian.Uint32(hello[:]))
				nw.eps[j].addReader(conn, amnet.NodeID(src))
			}
		}(j)
	}
	for i := 0; i < n; i++ {
		nw.eps[i].out = make([]*sender, n)
		for j := 0; j < n; j++ {
			conn, err := net.Dial("tcp", addrs[j])
			if err != nil {
				nw.Close()
				return nil, err
			}
			tuneConn(conn)
			var hello [4]byte
			binary.LittleEndian.PutUint32(hello[:], uint32(i))
			if _, err := conn.Write(hello[:]); err != nil {
				nw.Close()
				return nil, err
			}
			s := newSender(conn)
			nw.eps[i].out[j] = s
			nw.wg.Add(1)
			go s.run(&nw.wg, &nw.eps[i].stats)
		}
	}
	acceptWG.Wait()
	close(acceptErr)
	if err := <-acceptErr; err != nil {
		nw.Close()
		return nil, err
	}
	for _, l := range listeners {
		l.Close()
	}
	for _, ep := range nw.eps {
		nw.wg.Add(1)
		go ep.pump(&nw.wg)
	}
	return nw, nil
}

// tuneConn shapes a mesh connection for the coalescing writer: Nagle is
// off (the writer already batches frames, so the kernel must not hold a
// flushed batch back), and the socket buffers are pinned so throughput
// does not ride on the kernel's autotuning warm-up.
func tuneConn(conn net.Conn) {
	tc, ok := conn.(*net.TCPConn)
	if !ok {
		return
	}
	tc.SetNoDelay(true)
	tc.SetWriteBuffer(1 << 20)
	tc.SetReadBuffer(1 << 20)
}

type network struct {
	eps []*endpoint
	wg  sync.WaitGroup
}

func (n *network) Endpoints() []amnet.Endpoint {
	out := make([]amnet.Endpoint, len(n.eps))
	for i, ep := range n.eps {
		out[i] = ep
	}
	return out
}

func (n *network) Close() error {
	for _, ep := range n.eps {
		if ep == nil {
			continue
		}
		for _, s := range ep.out {
			if s != nil {
				s.close()
			}
		}
		ep.box.close()
	}
	n.wg.Wait()
	return nil
}

// maxPending bounds a sender's frame queue. Enqueueing past the bound
// blocks until the writer drains — the same backpressure a blocking
// per-message conn.Write used to provide, now paid once per batch
// instead of once per message. The bound also caps queue reallocation:
// the pending and draining slices ping-pong between producer and writer,
// so at steady state enqueueing allocates nothing.
const maxPending = 4096

// sender owns one outgoing connection: Send enqueues encoded frames, the
// writer goroutine drains them in batches through a buffered writer and
// flushes when the queue goes empty. Frames are pooled; the writer
// recycles each one after copying it into the write buffer.
type sender struct {
	mu       sync.Mutex
	notEmpty *sync.Cond // writer waits: queue has frames or closed
	notFull  *sync.Cond // producers wait: queue below maxPending or closed
	conn     net.Conn
	queue    [][]byte
	closed   bool
}

func newSender(conn net.Conn) *sender {
	s := &sender{conn: conn}
	s.notEmpty = sync.NewCond(&s.mu)
	s.notFull = sync.NewCond(&s.mu)
	return s
}

// enqueue appends one encoded frame for the writer, blocking while the
// queue is at capacity. After close, frames are dropped (Network.Close
// documents that queued messages may be dropped).
func (s *sender) enqueue(frame []byte) {
	s.mu.Lock()
	for len(s.queue) >= maxPending && !s.closed {
		s.notFull.Wait()
	}
	if s.closed {
		s.mu.Unlock()
		amnet.Recycle(frame)
		return
	}
	s.queue = append(s.queue, frame)
	s.mu.Unlock()
	s.notEmpty.Signal()
}

// close asks the writer to flush what is queued and shut the connection
// down.
func (s *sender) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.notEmpty.Signal()
	s.notFull.Broadcast()
}

// run is the writer goroutine: it swaps the whole queue out under one
// lock, streams the batch into the buffered writer, and flushes only
// once the queue is empty — so bursts coalesce into single syscalls
// while a lone frame still goes out immediately.
func (s *sender) run(wg *sync.WaitGroup, stats *amnet.Stats) {
	defer wg.Done()
	bw := bufio.NewWriterSize(s.conn, 64<<10)
	var batch [][]byte
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.notEmpty.Wait()
		}
		if len(s.queue) == 0 { // closed and drained
			s.mu.Unlock()
			bw.Flush()
			s.conn.Close()
			return
		}
		batch, s.queue = s.queue, batch[:0]
		closed := s.closed
		s.mu.Unlock()
		s.notFull.Broadcast()
		for i, f := range batch {
			_, err := bw.Write(f)
			amnet.Recycle(f)
			batch[i] = nil
			if err != nil {
				s.fail(err, closed)
				return
			}
		}
		// Flush only when no more frames are waiting; otherwise loop
		// around and extend the batch.
		s.mu.Lock()
		empty := len(s.queue) == 0
		s.mu.Unlock()
		if empty {
			if err := bw.Flush(); err != nil {
				s.fail(err, closed)
				return
			}
			stats.CountFlush()
		}
	}
}

// fail handles a write error: during shutdown it exits quietly (the
// peer or Close tore the connection down); otherwise it keeps the old
// crash-on-network-error posture.
func (s *sender) fail(err error, closing bool) {
	s.conn.Close()
	s.mu.Lock()
	wasClosed := s.closed || closing
	s.closed = true
	s.mu.Unlock()
	s.notFull.Broadcast() // unblock producers; their frames are dropped
	if !wasClosed {
		panic(fmt.Sprintf("tcpnet: send: %v", err))
	}
}

type endpoint struct {
	id       amnet.NodeID
	nw       *network
	out      []*sender
	box      *queue
	handlers [amnet.MaxHandlers]amnet.Handler
	stats    amnet.Stats
	readers  sync.WaitGroup
}

func (e *endpoint) ID() amnet.NodeID { return e.id }
func (e *endpoint) Nodes() int       { return len(e.nw.eps) }

func (e *endpoint) Register(id amnet.HandlerID, fn amnet.Handler) {
	if int(id) >= amnet.MaxHandlers {
		panic(fmt.Sprintf("tcpnet: handler id %d out of range", id))
	}
	e.handlers[id] = fn
}

// CopiesPayloadOnSend reports that Send copies the payload into the
// frame buffer before returning, so callers keep ownership of their
// buffer (see amnet.PayloadCopier).
func (e *endpoint) CopiesPayloadOnSend() bool { return true }

// frame layout: [u32 total][i32 dst][i32 src][u16 handler][4 × u64]
// [i64 send stamp][payload]. The send stamp is on the sender's trace
// clock (0 when latency sampling is off); it is meaningful because this
// network's nodes share one process.
const frameHeader = 4 + 4 + 4 + 2 + 32 + 8

// Send encodes the message into a pooled frame buffer and enqueues it on
// the destination's writer. The payload is copied here, synchronously;
// per-connection writers preserve TCP's per-pair FIFO. Counters are
// per-message and exact regardless of how frames later coalesce.
func (e *endpoint) Send(m amnet.Msg) {
	if int(m.Dst) < 0 || int(m.Dst) >= len(e.out) {
		panic(fmt.Sprintf("tcpnet: send to invalid node %d", m.Dst))
	}
	m.Src = e.id
	e.countSend(m)
	buf := amnet.Alloc(frameHeader + len(m.Payload))
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(buf)-4))
	binary.LittleEndian.PutUint32(buf[4:], uint32(m.Dst))
	binary.LittleEndian.PutUint32(buf[8:], uint32(m.Src))
	binary.LittleEndian.PutUint16(buf[12:], uint16(m.Handler))
	binary.LittleEndian.PutUint64(buf[14:], m.A)
	binary.LittleEndian.PutUint64(buf[22:], m.B)
	binary.LittleEndian.PutUint64(buf[30:], m.C)
	binary.LittleEndian.PutUint64(buf[38:], m.D)
	binary.LittleEndian.PutUint64(buf[46:], uint64(e.stats.SendStamp()))
	copy(buf[frameHeader:], m.Payload)
	e.out[m.Dst].enqueue(buf)
}

func (e *endpoint) Stats() *amnet.Stats { return &e.stats }

// addReader starts a goroutine decoding frames from one incoming
// connection into the node's queue. Reads are buffered, and each
// payload lands in a pooled buffer owned by the eventual handler.
func (e *endpoint) addReader(conn net.Conn, src amnet.NodeID) {
	e.readers.Add(1)
	go func() {
		defer e.readers.Done()
		defer conn.Close()
		br := bufio.NewReaderSize(conn, 64<<10)
		var hdr [frameHeader]byte
		for {
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				return // connection closed
			}
			total := binary.LittleEndian.Uint32(hdr[:])
			m := amnet.Msg{
				Dst:     amnet.NodeID(int32(binary.LittleEndian.Uint32(hdr[4:]))),
				Src:     amnet.NodeID(int32(binary.LittleEndian.Uint32(hdr[8:]))),
				Handler: amnet.HandlerID(binary.LittleEndian.Uint16(hdr[12:])),
				A:       binary.LittleEndian.Uint64(hdr[14:]),
				B:       binary.LittleEndian.Uint64(hdr[22:]),
				C:       binary.LittleEndian.Uint64(hdr[30:]),
				D:       binary.LittleEndian.Uint64(hdr[38:]),
			}
			sent := int64(binary.LittleEndian.Uint64(hdr[46:]))
			if paylen := int(total) - (frameHeader - 4); paylen > 0 {
				m.Payload = amnet.Alloc(paylen)
				if _, err := io.ReadFull(br, m.Payload); err != nil {
					return
				}
			}
			e.box.push(frame{msg: m, sent: sent})
		}
	}()
}

// pump drains the queue in batches and dispatches handlers, one at a
// time: one lock/wake per burst instead of per message.
func (e *endpoint) pump(wg *sync.WaitGroup) {
	defer wg.Done()
	var scratch []frame
	for {
		batch, ok := e.box.popAll(scratch)
		if !ok {
			return
		}
		for i := range batch {
			f := &batch[i]
			e.stats.ObserveDeliver(f.sent)
			m := f.msg
			e.countRecv(m)
			h := e.handlers[m.Handler]
			if h == nil {
				panic(fmt.Sprintf("tcpnet: node %d: no handler %d", e.id, m.Handler))
			}
			h(m)
			batch[i] = frame{} // drop payload references promptly
		}
		scratch = batch
	}
}

func (e *endpoint) countSend(m amnet.Msg) {
	e.stats.CountSend(frameHeader + len(m.Payload))
}

func (e *endpoint) countRecv(m amnet.Msg) {
	e.stats.CountRecv(uint16(m.Handler), frameHeader+len(m.Payload))
}

// frame is a decoded message plus its sender's trace-clock stamp (0 when
// latency sampling was off at the sender).
type frame struct {
	msg  amnet.Msg
	sent int64
}

// queue is an unbounded MPSC mailbox (the no-deadlock property of the
// fabric depends on sends never blocking on the receiver). The pump
// drains it with popAll, one lock acquisition per burst.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []frame
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// deepWater is the pending depth past which push starts yielding the
// processor after each frame. The mailbox must stay unbounded for the
// runtime's deadlock-freedom argument (handlers may send while every
// peer's queue is deep), so readers are never blocked — but on a
// loaded scheduler the readers can otherwise starve the pump for long
// stretches, ballooning the queue and defeating the buffer pool.
// Gosched is only a hint: liveness is unaffected.
const deepWater = 1024

func (q *queue) push(f frame) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		amnet.Recycle(f.msg.Payload)
		return
	}
	q.items = append(q.items, f)
	deep := len(q.items) >= deepWater
	q.mu.Unlock()
	q.cond.Signal()
	if deep {
		runtime.Gosched()
	}
}

// popAll blocks until at least one frame is pending, then swaps the
// whole pending slice with `into` (reset to length zero) and returns it.
// ok is false only when the queue is closed and fully drained. The
// caller owns the returned slice until it passes it back in.
func (q *queue) popAll(into []frame) (batch []frame, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return into[:0], false
	}
	batch = q.items
	q.items = into[:0]
	return batch, true
}

func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
