// Package tcpnet implements the amnet.Network interface over real TCP
// sockets (loopback by default): the same Active Messages contract —
// per-pair FIFO ordering, non-blocking sends, serialized handler delivery
// per sender — carried by length-prefixed frames. It demonstrates the
// paper's portability claim: Ace runs on any system with an Active
// Messages mechanism (Section 1).
//
// The send path is coalescing: Send encodes the frame into a pooled
// buffer and hands it to a per-connection writer goroutine, which drains
// its queue in batches and flushes only when the queue goes empty — a
// burst of n messages costs one flush syscall, a lone message still
// flushes immediately, so throughput is gained without a latency tax.
// Small batches are copied through a buffered writer; batches past a
// byte threshold go to the kernel as one vectored write (net.Buffers /
// writev) straight from the pooled frames, skipping the copy entirely.
// Frame and payload buffers come from the amnet buffer pool
// (amnet.Alloc/Recycle); a delivered Msg.Payload is owned by the
// handler per the fabric's ownership contract.
//
// Dispatch can be sharded across cores: Config.Lanes splits each local
// node's inbound queue into N lanes keyed by source node, each drained
// by its own pump goroutine. Per-(sender, handler) FIFO is preserved —
// one sender's frames always land in one lane — but handlers for
// different senders may run concurrently (see the amnet package comment
// for the contract this demands from handler code).
//
// Connections are supervised. Every data frame carries a per-link
// sequence number and stays journaled on the sender until the receiver
// acknowledges it (cumulative acks ride back as control frames); a
// broken connection is redialed with exponential backoff and jitter,
// the journal is retransmitted, and the receiver drops the frames it
// already delivered — so a transient connection loss costs latency, not
// the fabric contract. A peer that stays unreachable past the reconnect
// budget is declared down through amnet.PeerAware, turning would-be
// hangs into typed errors upstream. Reconnects, backoffs, retransmits
// and duplicate drops are all counted in the endpoint Stats.
package tcpnet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/trace"
)

// Config describes the transport: the cluster topology (total node
// count, addresses, which nodes this process hosts) plus connection
// supervision tuning. It satisfies amnet.Transport, so a Config is
// assigned directly to Options.Transport; Loopback is the in-process
// preset. The zero value of every supervision field means its default.
type Config struct {
	// Nodes is the total number of logical nodes in the cluster. Zero is
	// filled in by Connect with the cluster's processor count.
	Nodes int

	// Addrs, when set, is every node's data address indexed by node id
	// (len must equal Nodes). Empty means loopback: every node is hosted
	// in this process on an ephemeral 127.0.0.1 port.
	Addrs []string

	// Local lists the node ids hosted by this process; each gets a
	// listener (at Addrs[id] when Addrs is set, else an ephemeral
	// loopback port), a mailbox and a dispatch pump. Empty means all
	// Nodes are local — the single-process mesh.
	Local []int

	// DialTimeout bounds each dial (initial and reconnect) and the
	// accept side's wait for the hello frame. Default 2s.
	DialTimeout time.Duration

	// WriteTimeout bounds each batch write; an expired deadline is a
	// connection failure and triggers reconnection. Default 10s.
	WriteTimeout time.Duration

	// BackoffBase is the first reconnect backoff; each attempt doubles
	// it up to BackoffMax, plus up to 100% jitter. Defaults 5ms / 500ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// MaxAttempts is the number of consecutive failed reconnect
	// attempts after which the peer is declared down (amnet.PeerAware).
	// Default 8.
	MaxAttempts int

	// AckEvery is the receive-side ack cadence in data frames; an ack
	// is also sent whenever the reader drains its buffer. Default 64.
	AckEvery int

	// ProbeInterval is the cadence of the ack-stall probe. When a
	// sender's journal is non-empty but its queue is empty, the writer
	// is idle — if the connection silently died in that state nothing
	// would ever touch it again, leaving producers blocked on
	// backpressure forever with the peer never declared down. The probe
	// enqueues a harmless control frame so the writer exercises the
	// connection and a dead one enters the normal reconnect→peer-down
	// path. Default 1s.
	ProbeInterval time.Duration

	// Lanes shards each local node's dispatch into this many pump
	// goroutines keyed by source node (lane = src mod Lanes), so
	// handlers for frames from different senders can run on different
	// cores. One sender's frames always land in one lane, preserving
	// per-(sender, handler) FIFO; whole-node handler serialization is
	// given up, so handler state must tolerate concurrent invocations
	// from distinct senders. Zero or one means the classic single pump
	// per node; values above Nodes are clamped.
	Lanes int
}

func (c Config) withDefaults() Config {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 5 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 500 * time.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.AckEvery <= 0 {
		c.AckEvery = 64
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.Lanes < 1 {
		c.Lanes = 1
	}
	if c.Nodes > 0 && c.Lanes > c.Nodes {
		c.Lanes = c.Nodes
	}
	return c
}

// Loopback is the in-process preset: an n-node full TCP mesh on
// ephemeral 127.0.0.1 ports with default supervision — what test and
// benchmark clusters run on. Tune supervision by setting fields on the
// returned Config.
func Loopback(n int) Config { return Config{Nodes: n} }

// Connect implements amnet.Transport: a Config is assigned directly to
// Options.Transport and NewCluster asks it for the fabric. A Nodes
// count already set must agree with the cluster's processor count.
func (c Config) Connect(n int) (amnet.Network, error) {
	if c.Nodes == 0 {
		c.Nodes = n
	}
	if c.Nodes != n {
		return nil, fmt.Errorf("tcpnet: transport configured for %d nodes, cluster wants %d", c.Nodes, n)
	}
	return New(c)
}

// New builds the transport for cfg: a listener, mailbox and dispatch
// pump per local node, and supervised senders from every local node to
// every node in the cluster. With the loopback preset (no Addrs) that
// is the full in-process mesh; with Addrs and Local set it is one
// process's share of a multi-process cluster.
func New(cfg Config) (amnet.Network, error) {
	nd, err := Listen(cfg)
	if err != nil {
		return nil, err
	}
	addrs := cfg.Addrs
	if addrs == nil {
		addrs = nd.Addrs() // loopback: every node local, addresses just bound
	}
	return nd.Connect(addrs)
}

// Listen binds the local nodes' listeners without dialing anyone: the
// first half of New, split out for bootstrap flows (the gossip
// rendezvous) that must learn their own ephemeral addresses — and
// advertise them — before the full address list is known. Complete the
// mesh with Node.Connect, or abandon it with Node.Close.
func Listen(cfg Config) (*Node, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("tcpnet: invalid node count %d", cfg.Nodes)
	}
	if cfg.Addrs != nil && len(cfg.Addrs) != cfg.Nodes {
		return nil, fmt.Errorf("tcpnet: %d addresses for %d nodes", len(cfg.Addrs), cfg.Nodes)
	}
	local := cfg.Local
	if local == nil {
		local = make([]int, cfg.Nodes)
		for i := range local {
			local[i] = i
		}
	}
	if len(local) == 0 {
		return nil, fmt.Errorf("tcpnet: no local nodes")
	}
	nw := &network{
		cfg:       cfg.withDefaults(),
		nodes:     cfg.Nodes,
		local:     local,
		eps:       make([]*endpoint, len(local)),
		byID:      make([]*endpoint, cfg.Nodes),
		listeners: make([]net.Listener, len(local)),
		started:   make(chan struct{}),
		wired:     make(chan struct{}),
	}
	for i, id := range local {
		if id < 0 || id >= cfg.Nodes || nw.byID[id] != nil {
			nw.Close()
			return nil, fmt.Errorf("tcpnet: bad local node id %d", id)
		}
		bind := "127.0.0.1:0"
		if cfg.Addrs != nil {
			bind = cfg.Addrs[id]
		}
		l, err := net.Listen("tcp", bind)
		if err != nil {
			nw.Close()
			return nil, err
		}
		nw.listeners[i] = l
		ep := &endpoint{
			id:       amnet.NodeID(id),
			nw:       nw,
			boxes:    make([]*queue, nw.cfg.Lanes),
			links:    make([]recvLink, cfg.Nodes),
			downSent: make(map[amnet.NodeID]bool),
			inbound:  make(map[net.Conn]struct{}),
		}
		for k := range ep.boxes {
			ep.boxes[k] = newQueue()
		}
		nw.eps[i] = ep
		nw.byID[id] = ep
	}
	// Accept side: each local node runs a persistent accept loop for the
	// network's lifetime; the first frame on each connection identifies
	// the sender, so initial mesh connections and reconnects look the
	// same.
	for i := range local {
		nw.acceptWG.Add(1)
		go nw.acceptLoop(i)
	}
	return &Node{nw: nw}, nil
}

// Node is a bound-but-unconnected transport share: Listen's result,
// holding the local listeners while bootstrap learns the peer
// addresses.
type Node struct {
	nw        *network
	connected bool
}

// Addrs returns the bound listen addresses of the local nodes, in
// Config.Local order — what a bootstrap layer advertises to peers.
func (nd *Node) Addrs() []string {
	out := make([]string, len(nd.nw.listeners))
	for i, l := range nd.nw.listeners {
		out[i] = l.Addr().String()
	}
	return out
}

// Connect completes the mesh: addrs is every node's data address,
// indexed by node id, and each local node dials a supervised sender to
// every one of them (including itself, keeping the path uniform). The
// returned network's endpoints are the local nodes in Config.Local
// order; dispatch is held back until amnet.Starter's Start (or the
// first local Send) so the runtime can finish registering handlers
// before a fast peer's frames are delivered.
func (nd *Node) Connect(addrs []string) (amnet.Network, error) {
	nw := nd.nw
	if nd.connected {
		return nil, fmt.Errorf("tcpnet: Connect called twice")
	}
	if len(addrs) != nw.nodes {
		return nil, fmt.Errorf("tcpnet: %d addresses for %d nodes", len(addrs), nw.nodes)
	}
	nd.connected = true
	nw.addrs = append([]string(nil), addrs...)
	for _, ep := range nw.eps {
		ep.out = make([]*sender, nw.nodes)
		for j := 0; j < nw.nodes; j++ {
			conn, err := nw.dialInitial(addrs[j])
			if err != nil {
				nw.Close()
				return nil, err
			}
			tuneConn(conn)
			s := newSender(ep, amnet.NodeID(j), addrs[j], conn)
			if _, err := conn.Write(s.hello[:]); err != nil {
				conn.Close()
				nw.Close()
				return nil, err
			}
			ep.out[j] = s
			nw.sendWG.Add(2)
			go s.run(&nw.sendWG, &ep.stats)
			go s.probeLoop(&nw.sendWG)
		}
	}
	// Sender tables exist for every local endpoint; inbound readers
	// parked on the wire gate (a peer that connected faster than our
	// bootstrap) may begin decoding and acking.
	nw.wire()
	for _, ep := range nw.eps {
		for lane := range ep.boxes {
			nw.pumpWG.Add(1)
			go ep.pump(&nw.pumpWG, lane)
		}
	}
	return nw, nil
}

// Close abandons an unconnected Node (bootstrap failure), releasing its
// listeners. After a successful Connect the returned network owns them.
func (nd *Node) Close() error {
	if nd.connected {
		return nil
	}
	return nd.nw.Close()
}

// dialInitial dials a peer with retry: in a multi-process bootstrap the
// peers bind before they advertise, but a dial can still race a loaded
// accept queue, and one transient refusal must not fail the whole
// mesh. The budget mirrors reconnect's.
func (n *network) dialInitial(addr string) (net.Conn, error) {
	backoff := n.cfg.BackoffBase
	for attempt := 1; ; attempt++ {
		conn, err := net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
		if err == nil {
			return conn, nil
		}
		if attempt >= n.cfg.MaxAttempts {
			return nil, fmt.Errorf("tcpnet: dial %s: %w", addr, err)
		}
		time.Sleep(backoff + time.Duration(rand.Int63n(int64(backoff))))
		if backoff *= 2; backoff > n.cfg.BackoffMax {
			backoff = n.cfg.BackoffMax
		}
	}
}

// tuneConn shapes a mesh connection for the coalescing writer: Nagle is
// off (the writer already batches frames, so the kernel must not hold a
// flushed batch back), and the socket buffers are pinned so throughput
// does not ride on the kernel's autotuning warm-up.
func tuneConn(conn net.Conn) {
	tc, ok := conn.(*net.TCPConn)
	if !ok {
		return
	}
	tc.SetNoDelay(true)
	tc.SetWriteBuffer(1 << 20)
	tc.SetReadBuffer(1 << 20)
}

type network struct {
	cfg       Config
	nodes     int         // total cluster size
	local     []int       // node ids hosted here, in Config.Local order
	eps       []*endpoint // parallel to local
	byID      []*endpoint // indexed by node id; nil for remote nodes
	listeners []net.Listener
	addrs     []string
	started   chan struct{} // closed by Start: dispatch may begin
	startOnce sync.Once
	wired     chan struct{} // closed by Connect: sender tables exist
	wireOnce  sync.Once
	acceptWG  sync.WaitGroup
	sendWG    sync.WaitGroup
	pumpWG    sync.WaitGroup
	closed    atomic.Bool
}

func (n *network) Endpoints() []amnet.Endpoint {
	out := make([]amnet.Endpoint, len(n.eps))
	for i, ep := range n.eps {
		out[i] = ep
	}
	return out
}

// Start implements amnet.Starter: it releases the dispatch pumps, held
// back so a fast peer's frames cannot reach an empty handler table.
// Incoming frames queue (and are acked) meanwhile, so nothing is lost.
func (n *network) Start() { n.startOnce.Do(func() { close(n.started) }) }

// wire releases inbound readers: before Connect builds the sender
// tables, a reader delivering frames would have no reverse link to ack
// on. Closed by Connect, and by Close so an abandoned bootstrap's
// parked readers exit.
func (n *network) wire() { n.wireOnce.Do(func() { close(n.wired) }) }

// DeclarePeerDown forces the supervised senders to peer as lost, as if
// their reconnect budgets were exhausted: the gossip layer's suspicion
// verdict feeding the same amnet.PeerAware path the transport uses for
// its own failures. Idempotent; a no-op for a local or already-lost
// peer's healthy links is avoided by the per-endpoint downSent guard.
func (n *network) DeclarePeerDown(peer amnet.NodeID) {
	if int(peer) < 0 || int(peer) >= n.nodes {
		return
	}
	for _, ep := range n.eps {
		if ep == nil || ep.id == peer {
			continue
		}
		if ep.out != nil && ep.out[peer] != nil {
			ep.out[peer].peerLost()
		} else {
			ep.firePeerDown(peer)
		}
	}
}

// acceptLoop accepts connections for node j until the listener closes.
// Each connection opens with a 4-byte hello naming the sender; a
// connection that fails the hello (timeout, bad id) is dropped without
// disturbing the node.
func (n *network) acceptLoop(j int) {
	defer n.acceptWG.Done()
	for {
		conn, err := n.listeners[j].Accept()
		if err != nil {
			return // listener closed
		}
		tuneConn(conn)
		conn.SetReadDeadline(time.Now().Add(n.cfg.DialTimeout))
		var hello [4]byte
		if _, err := io.ReadFull(conn, hello[:]); err != nil {
			conn.Close()
			continue
		}
		conn.SetReadDeadline(time.Time{})
		src := int32(binary.LittleEndian.Uint32(hello[:]))
		if src < 0 || int(src) >= n.nodes {
			conn.Close()
			continue
		}
		n.eps[j].addReader(conn, amnet.NodeID(src))
	}
}

// KillLink forcibly closes the current src→dst connection, as if the
// network dropped it. The supervised sender redials, retransmits its
// journal, and the receiver dedups — a test hook for the reconnect
// machinery. src must be a local node.
func (n *network) KillLink(src, dst int) {
	n.byID[src].out[dst].killConn()
}

// Close tears the mesh down in dependency order: stop accepting, drain
// and close every sender (closing its connection unblocks the remote
// reader), wait for readers, then close the mailboxes so the pumps
// exit.
func (n *network) Close() error {
	n.closed.Store(true)
	n.Start() // release gated pumps so they can drain and exit
	n.wire()  // release parked readers so they can exit
	for _, l := range n.listeners {
		if l != nil {
			l.Close()
		}
	}
	n.acceptWG.Wait()
	for _, ep := range n.eps {
		if ep == nil {
			continue
		}
		for _, s := range ep.out {
			if s != nil {
				s.close()
			}
		}
	}
	n.sendWG.Wait()
	// Sever inbound connections locally: a peer that outlives this mesh
	// (multi-process shutdown is not synchronized) would otherwise hold
	// our readers open indefinitely.
	for _, ep := range n.eps {
		if ep == nil {
			continue
		}
		ep.inboundMu.Lock()
		for conn := range ep.inbound {
			conn.Close()
		}
		ep.inboundMu.Unlock()
	}
	for _, ep := range n.eps {
		if ep != nil {
			ep.readers.Wait()
		}
	}
	for _, ep := range n.eps {
		if ep == nil {
			continue
		}
		for _, box := range ep.boxes {
			box.close()
		}
	}
	n.pumpWG.Wait()
	return nil
}

// maxPending bounds a sender's unacknowledged journal (which includes
// the not-yet-written queue). Enqueueing past the bound blocks until
// acks drain it — backpressure against a slow or absent receiver. The
// wait is bounded by network round-trips, not by remote handler
// progress (acks come from the peer's reader goroutine), so the
// fabric's deadlock-freedom argument is unaffected.
const maxPending = 4096

// sender owns one outgoing link: Send enqueues encoded frames, the
// writer goroutine drains them in batches through a buffered writer and
// flushes when the queue goes empty. Data frames carry a sequence
// number and are retained in the journal until the peer's cumulative
// ack covers them; on connection failure the writer redials with
// backoff and replays the journal. Frames are pooled: control frames
// are recycled after writing, data frames when acked.
type sender struct {
	mu       sync.Mutex
	notEmpty *sync.Cond // writer waits: queue has frames or closed
	notFull  *sync.Cond // producers wait: journal below maxPending or closed
	conn     net.Conn
	queue    [][]byte // frames not yet handed to the writer
	journal  [][]byte // data frames not yet acked, in seq order (superset of queue's data frames)
	nextSeq  uint64   // last assigned data sequence number (0 = control)
	acked    uint64   // highest cumulative ack received
	// replaying is set while reconnect writes a journal snapshot outside
	// the lock; ack() then only records the ack and defers recycling to
	// releaseAcked, so snapshot frames stay valid through the replay.
	replaying bool
	closed    bool

	ep    *endpoint
	peer  amnet.NodeID
	addr  string
	hello [4]byte

	// iov is the writer's reusable iovec for the vectored write path:
	// net.Buffers.WriteTo consumes its slice (re-slicing entries as the
	// kernel accepts bytes), so writeBatch hands it a scratch copy of
	// the batch rather than the batch itself — the journal keeps its own
	// references, and batch entries stay intact for the recycle sweep.
	iov net.Buffers

	// stop ends the ack-stall probe goroutine; closed once the sender
	// shuts down (close or peerLost).
	stop     chan struct{}
	stopOnce sync.Once
}

func newSender(ep *endpoint, peer amnet.NodeID, addr string, conn net.Conn) *sender {
	s := &sender{conn: conn, ep: ep, peer: peer, addr: addr, stop: make(chan struct{})}
	binary.LittleEndian.PutUint32(s.hello[:], uint32(ep.id))
	s.notEmpty = sync.NewCond(&s.mu)
	s.notFull = sync.NewCond(&s.mu)
	return s
}

// probeLoop is the ack-stall watchdog: while the journal holds unacked
// frames and the queue is empty, the writer is parked — if the
// connection died in that state nothing would ever write to it again,
// so the reconnect budget would never be consumed and producers blocked
// on backpressure would hang forever with the peer never declared
// down. Enqueueing a no-op control frame (a stale ack the peer
// ignores) forces the writer through a write: on a live connection it
// is invisible, on a dead one it triggers the normal
// reconnect→peerLost path, whose notFull broadcast frees the
// producers.
func (s *sender) probeLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	t := time.NewTicker(s.ep.nw.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		s.mu.Lock()
		stalled := !s.closed && len(s.journal) > 0 && len(s.queue) == 0
		s.mu.Unlock()
		if stalled {
			s.ep.sendAck(s.peer, 0)
		}
	}
}

// enqueue appends one encoded data frame, assigning its sequence number
// and journaling it, blocking while the unacked journal is at capacity.
// After close, frames are dropped (Network.Close documents that queued
// messages may be dropped).
func (s *sender) enqueue(frame []byte) {
	s.mu.Lock()
	if len(s.journal) >= maxPending && !s.closed {
		// Count the stall before parking: a gateway watching NetStats must
		// see the backpressure while the producer is blocked, not after.
		s.ep.stats.CountSendQueueStall()
		for len(s.journal) >= maxPending && !s.closed {
			s.notFull.Wait()
		}
	}
	if s.closed {
		s.mu.Unlock()
		amnet.Recycle(frame)
		return
	}
	s.nextSeq++
	binary.LittleEndian.PutUint64(frame[seqOff:], s.nextSeq)
	s.queue = append(s.queue, frame)
	s.journal = append(s.journal, frame)
	depth := len(s.journal)
	s.mu.Unlock()
	s.ep.stats.AddSendQueueDepth(1)
	s.ep.stats.ObserveSendQueue(depth)
	s.notEmpty.Signal()
}

// enqueueControl appends a control frame (seq 0). Control frames skip
// the journal and the backpressure bound: acks must flow even when the
// data path is saturated, or the saturation could never clear.
func (s *sender) enqueueControl(frame []byte) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		amnet.Recycle(frame)
		return
	}
	s.queue = append(s.queue, frame)
	s.mu.Unlock()
	s.notEmpty.Signal()
}

// ack processes a cumulative acknowledgment: every journaled frame with
// seq ≤ n is released. Monotonic — stale acks (reordered across a
// reconnect) are ignored. During a journal replay only the ack level is
// recorded; releaseAcked recycles the covered frames afterwards.
func (s *sender) ack(n uint64) {
	s.mu.Lock()
	if n <= s.acked {
		s.mu.Unlock()
		return
	}
	if n > s.nextSeq {
		// An ack for a sequence never journaled here can only come from
		// a corrupt or hostile peer. Accepting it would recycle
		// in-flight journal frames (a use-after-free through the buffer
		// pool) and pin acked above every genuine ack, wedging the
		// link's backpressure forever.
		s.mu.Unlock()
		return
	}
	s.acked = n
	if s.replaying {
		s.mu.Unlock()
		return
	}
	i := 0
	for i < len(s.journal) && seqOf(s.journal[i]) <= n {
		amnet.Recycle(s.journal[i])
		s.journal[i] = nil
		i++
	}
	if i > 0 {
		s.journal = s.journal[i:]
	}
	s.mu.Unlock()
	if i > 0 {
		s.ep.stats.AddSendQueueDepth(-i)
		s.notFull.Broadcast()
	}
}

// close asks the writer to flush what is queued and shut the connection
// down.
func (s *sender) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })
	s.notEmpty.Signal()
	s.notFull.Broadcast()
}

// killConn severs the current connection (test hook; see
// network.KillLink).
func (s *sender) killConn() {
	s.mu.Lock()
	c := s.conn
	s.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

func (s *sender) shuttingDown() bool {
	s.mu.Lock()
	c := s.closed
	s.mu.Unlock()
	return c || s.ep.nw.closed.Load()
}

// run is the writer goroutine: it swaps the whole queue out under one
// lock, writes the batch (copied through the buffered writer when
// small, handed to writev when large), and flushes only once the queue
// is empty — so bursts coalesce into single syscalls while a lone frame
// still goes out immediately. A write failure outside shutdown enters
// the reconnect loop instead of crashing.
func (s *sender) run(wg *sync.WaitGroup, stats *trace.NetStats) {
	defer wg.Done()
	conn := s.conn
	bw := bufio.NewWriterSize(conn, 64<<10)
	var batch [][]byte
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.notEmpty.Wait()
		}
		if len(s.queue) == 0 { // closed and drained
			s.mu.Unlock()
			bw.Flush()
			conn.Close()
			return
		}
		batch, s.queue = s.queue, batch[:0]
		s.mu.Unlock()
		s.notFull.Broadcast()
		if d := s.ep.nw.cfg.WriteTimeout; d > 0 {
			conn.SetWriteDeadline(time.Now().Add(d))
		}
		err := s.writeBatch(conn, bw, batch, stats)
		batch = batch[:0]
		if err == nil {
			// Flush only when no more frames are waiting; otherwise loop
			// around and extend the batch. After a vectored batch the
			// buffered writer is empty and there is nothing to flush (the
			// writev already counted itself).
			s.mu.Lock()
			empty := len(s.queue) == 0
			s.mu.Unlock()
			if empty && bw.Buffered() > 0 {
				if err = bw.Flush(); err == nil {
					stats.CountFlush()
				}
			}
		}
		if err != nil {
			if s.shuttingDown() {
				conn.Close()
				return
			}
			var ok bool
			conn, bw, ok = s.reconnect(stats)
			if !ok {
				return
			}
		}
	}
}

// The writer switches from copying frames through the buffered writer
// to handing them to the kernel as one vectored write when a batch
// clears both thresholds: enough total bytes that a dedicated syscall
// pays (writevMinBytes — below it the buffered writer also keeps
// coalescing consecutive tiny batches into one flush syscall, which
// writev, a syscall per batch, gives up), and enough bytes per frame
// that the copy it saves outweighs the kernel's per-iovec processing
// (writevMinFrame). The second gate is what keeps small-message bursts
// on bufio: a coalesced batch of hundreds of ~100 B frames easily
// tops 16 KB, but memcpying 100 B costs far less than an iovec entry,
// and routing such batches through writev measured ~10-15% slower.
// Large update payloads are the writev case: a burst of 16 KB frames
// moves megabytes through memory twice on the bufio path and once on
// the writev path. See DESIGN.md §11 for the measured crossover.
const (
	writevMinBytes = 16 << 10
	writevMinFrame = 2 << 10 // mean frame size, total/len(batch)
)

// writeBatch writes one batch: small batches stream into the buffered
// writer (flushed later, when the queue goes empty), large ones bypass
// it as a single net.Buffers vectored write straight from the pooled
// frames — zero copies, one (counted) kernel handoff. Any bytes still
// sitting in the buffered writer are flushed first so frame order on
// the wire is preserved. Control frames are recycled here (written or
// not — a lost ack regenerates); data frames stay journaled until
// acked. On error the remaining frames are skipped: the journal replay
// during reconnect covers them.
func (s *sender) writeBatch(conn net.Conn, bw *bufio.Writer, batch [][]byte, stats *trace.NetStats) error {
	var err error
	total := 0
	for _, f := range batch {
		total += len(f)
	}
	if total >= writevMinBytes && total >= len(batch)*writevMinFrame {
		if bw.Buffered() > 0 {
			if err = bw.Flush(); err == nil {
				stats.CountFlush()
			}
		}
		if err == nil {
			s.iov = append(s.iov[:0], batch...)
			_, err = s.iov.WriteTo(conn)
			for i := range s.iov {
				s.iov[i] = nil // drop frame references; WriteTo may have kept tails
			}
			s.iov = s.iov[:0]
			if err == nil {
				stats.CountFlush()
			}
		}
		for i, f := range batch {
			if seqOf(f) == 0 {
				amnet.Recycle(f)
			}
			batch[i] = nil
		}
		return err
	}
	for i, f := range batch {
		if err == nil {
			_, err = bw.Write(f)
		}
		if seqOf(f) == 0 {
			amnet.Recycle(f)
		}
		batch[i] = nil
	}
	return err
}

// reconnect redials the peer with exponential backoff and jitter,
// resends the hello, and replays the journal on the fresh connection
// (the receiver drops what it already delivered). After MaxAttempts
// consecutive failures the peer is declared down and the sender shuts
// itself off.
func (s *sender) reconnect(stats *trace.NetStats) (net.Conn, *bufio.Writer, bool) {
	s.killConn()
	cfg := s.ep.nw.cfg
	backoff := cfg.BackoffBase
	for attempt := 1; ; attempt++ {
		if s.shuttingDown() {
			return nil, nil, false
		}
		time.Sleep(backoff + time.Duration(rand.Int63n(int64(backoff))))
		stats.Backoffs.Add(1)
		if backoff *= 2; backoff > cfg.BackoffMax {
			backoff = cfg.BackoffMax
		}
		if s.shuttingDown() {
			return nil, nil, false
		}
		conn, err := net.DialTimeout("tcp", s.addr, cfg.DialTimeout)
		if err == nil {
			tuneConn(conn)
			if cfg.WriteTimeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(cfg.WriteTimeout))
			}
			if _, err = conn.Write(s.hello[:]); err != nil {
				conn.Close()
			}
		}
		if err != nil {
			if attempt >= cfg.MaxAttempts {
				s.peerLost()
				return nil, nil, false
			}
			continue
		}
		bw := bufio.NewWriterSize(conn, 64<<10)
		// Adopt the connection and snapshot the journal under the lock,
		// then replay outside it: a replay can take up to WriteTimeout,
		// and holding the lock that long would stall enqueue and — via
		// the reader's ack path — the receive path for this peer. The
		// queue is dropped (its data frames are journaled; its control
		// frames are stale); frames enqueued during the replay land
		// behind the snapshot in the queue, preserving seq order. The
		// replaying flag keeps concurrent acks from recycling snapshot
		// frames mid-write; killConn still interrupts a stuck replay
		// because the new connection is already adopted.
		s.mu.Lock()
		s.conn = conn
		fresh := 0
		for i, f := range s.queue {
			if seqOf(f) == 0 {
				amnet.Recycle(f)
			} else {
				fresh++
			}
			s.queue[i] = nil
		}
		s.queue = s.queue[:0]
		retrans := len(s.journal) - fresh
		snap := append([][]byte(nil), s.journal...)
		s.replaying = true
		s.mu.Unlock()
		if cfg.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(cfg.WriteTimeout))
		}
		werr := error(nil)
		for _, f := range snap {
			if werr == nil {
				_, werr = bw.Write(f)
			}
		}
		if werr == nil {
			werr = bw.Flush()
		}
		s.releaseAcked()
		if werr != nil {
			conn.Close()
			if attempt >= cfg.MaxAttempts {
				s.peerLost()
				return nil, nil, false
			}
			continue
		}
		if retrans > 0 {
			stats.Retransmits.Add(uint64(retrans))
		}
		stats.Reconnects.Add(1)
		return conn, bw, true
	}
}

// releaseAcked ends a journal replay: it recycles the journal prefix
// covered by acks that arrived while the replay held no lock, and
// reopens normal ack processing.
func (s *sender) releaseAcked() {
	s.mu.Lock()
	n := s.acked
	i := 0
	for i < len(s.journal) && seqOf(s.journal[i]) <= n {
		amnet.Recycle(s.journal[i])
		s.journal[i] = nil
		i++
	}
	if i > 0 {
		s.journal = s.journal[i:]
	}
	s.replaying = false
	s.mu.Unlock()
	if i > 0 {
		s.ep.stats.AddSendQueueDepth(-i)
		s.notFull.Broadcast()
	}
}

// peerLost shuts the sender down after an exhausted reconnect budget
// and notifies the endpoint's peer-down handler: graceful degradation
// instead of a hang (the runtime turns it into ErrPeerLost).
func (s *sender) peerLost() {
	s.mu.Lock()
	s.closed = true
	for i, f := range s.queue {
		if seqOf(f) == 0 {
			amnet.Recycle(f) // data frames are recycled via the journal
		}
		s.queue[i] = nil
	}
	s.queue = nil
	dropped := len(s.journal)
	for i, f := range s.journal {
		amnet.Recycle(f)
		s.journal[i] = nil
	}
	s.journal = nil
	s.mu.Unlock()
	if dropped > 0 {
		s.ep.stats.AddSendQueueDepth(-dropped)
	}
	s.stopOnce.Do(func() { close(s.stop) })
	// Wake or interrupt the writer: when the declaration is external
	// (DeclarePeerDown) the writer may be parked on the queue or blocked
	// mid-write; on the writer's own path both are no-ops.
	s.notEmpty.Signal()
	s.killConn()
	s.notFull.Broadcast()
	s.ep.firePeerDown(s.peer)
}

// recvLink is the receive-side state of one incoming link. It lives on
// the endpoint, not the connection, so the dedup horizon survives
// reconnects — exactly what makes journal replay safe.
type recvLink struct {
	mu       sync.Mutex
	seen     uint64 // highest data seq delivered from this src
	sinceAck int    // data frames since the last ack went out
}

type endpoint struct {
	id  amnet.NodeID
	nw  *network
	out []*sender
	// boxes holds one inbound frame queue per dispatch lane (a single
	// element unless Config.Lanes sharded it), each drained by its own
	// pump. Readers push into the lane of the frame's source node.
	boxes    []*queue
	handlers [amnet.MaxHandlers]amnet.Handler
	stats    trace.NetStats
	readers  sync.WaitGroup
	links    []recvLink

	// inbound tracks the accepted connections feeding the readers, so
	// Close can sever them locally instead of waiting for the remote
	// sender to hang up (peers may well outlive this process's mesh).
	inboundMu sync.Mutex
	inbound   map[net.Conn]struct{}

	downMu   sync.Mutex
	downFn   func(amnet.NodeID)
	downSent map[amnet.NodeID]bool
}

func (e *endpoint) ID() amnet.NodeID { return e.id }
func (e *endpoint) Nodes() int       { return e.nw.nodes }

func (e *endpoint) Register(id amnet.HandlerID, fn amnet.Handler) {
	if int(id) >= amnet.MaxHandlers {
		panic(fmt.Sprintf("tcpnet: handler id %d out of range", id))
	}
	e.handlers[id] = fn
}

// CopiesPayloadOnSend reports that Send copies the payload into the
// frame buffer before returning, so callers keep ownership of their
// buffer (see amnet.PayloadCopier).
func (e *endpoint) CopiesPayloadOnSend() bool { return true }

// SetPeerDownHandler implements amnet.PeerAware: fn is invoked (once
// per peer) when a peer exhausts the reconnect budget.
func (e *endpoint) SetPeerDownHandler(fn func(peer amnet.NodeID)) {
	e.downMu.Lock()
	e.downFn = fn
	e.downMu.Unlock()
}

func (e *endpoint) firePeerDown(peer amnet.NodeID) {
	e.downMu.Lock()
	fn := e.downFn
	already := e.downSent[peer]
	e.downSent[peer] = true
	e.downMu.Unlock()
	if fn != nil && !already {
		fn(peer)
	}
}

// frame layout: [u32 total][i32 dst][i32 src][u16 handler][4 × u64]
// [i64 send stamp][u64 seq][payload]. The send stamp is on the sender's
// trace clock (0 when latency sampling is off); it is meaningful because
// this network's nodes share one process. seq is the per-link data
// sequence number; 0 marks a control frame (cumulative ack in A),
// which is consumed by the reader and never dispatched or counted.
const (
	frameHeader = 4 + 4 + 4 + 2 + 32 + 8 + 8
	seqOff      = frameHeader - 8

	// maxFramePayload bounds a frame's payload; the decoder rejects
	// anything larger before allocating, so a corrupt or hostile length
	// prefix cannot balloon memory.
	maxFramePayload = 64 << 20
	maxFrameTotal   = frameHeader - 4 + maxFramePayload
)

// seqOf reads the sequence number of an encoded frame.
func seqOf(f []byte) uint64 { return binary.LittleEndian.Uint64(f[seqOff:]) }

// Send encodes the message into a pooled frame buffer and enqueues it on
// the destination's writer. The payload is copied here, synchronously;
// per-connection writers preserve TCP's per-pair FIFO. Counters are
// per-message and exact regardless of how frames later coalesce.
func (e *endpoint) Send(m amnet.Msg) {
	if int(m.Dst) < 0 || int(m.Dst) >= len(e.out) {
		panic(fmt.Sprintf("tcpnet: send to invalid node %d", m.Dst))
	}
	if len(m.Payload) > maxFramePayload {
		panic(fmt.Sprintf("tcpnet: payload %d exceeds frame limit %d", len(m.Payload), maxFramePayload))
	}
	m.Src = e.id
	e.nw.Start() // a local send implies local handlers are registered
	e.countSend(m)
	buf := amnet.Alloc(frameHeader + len(m.Payload))
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(buf)-4))
	binary.LittleEndian.PutUint32(buf[4:], uint32(m.Dst))
	binary.LittleEndian.PutUint32(buf[8:], uint32(m.Src))
	binary.LittleEndian.PutUint16(buf[12:], uint16(m.Handler))
	binary.LittleEndian.PutUint64(buf[14:], m.A)
	binary.LittleEndian.PutUint64(buf[22:], m.B)
	binary.LittleEndian.PutUint64(buf[30:], m.C)
	binary.LittleEndian.PutUint64(buf[38:], m.D)
	binary.LittleEndian.PutUint64(buf[46:], uint64(e.stats.SendStamp()))
	copy(buf[frameHeader:], m.Payload)
	e.out[m.Dst].enqueue(buf) // assigns seq under the sender lock
}

// sendAck emits a cumulative ack (control frame, seq 0) for everything
// received from src so far. Acks bypass the journal, the backpressure
// bound and the traffic counters.
func (e *endpoint) sendAck(src amnet.NodeID, n uint64) {
	buf := amnet.Alloc(frameHeader)
	binary.LittleEndian.PutUint32(buf[0:], frameHeader-4)
	binary.LittleEndian.PutUint32(buf[4:], uint32(src))
	binary.LittleEndian.PutUint32(buf[8:], uint32(e.id))
	binary.LittleEndian.PutUint16(buf[12:], 0)
	binary.LittleEndian.PutUint64(buf[14:], n)
	binary.LittleEndian.PutUint64(buf[22:], 0)
	binary.LittleEndian.PutUint64(buf[30:], 0)
	binary.LittleEndian.PutUint64(buf[38:], 0)
	binary.LittleEndian.PutUint64(buf[46:], 0)
	binary.LittleEndian.PutUint64(buf[seqOff:], 0)
	e.out[src].enqueueControl(buf)
}

func (e *endpoint) Stats() *trace.NetStats { return &e.stats }

// addReader starts a goroutine decoding frames from one incoming
// connection into the node's queue. Reads are buffered, and each
// payload lands in a pooled buffer owned by the eventual handler.
// The dedup horizon (recvLink) outlives the connection: a replacement
// reader after a reconnect drops the replayed frames the old one
// already delivered, and pushes under the link lock so the mailbox
// keeps per-link sequence order even if old and new briefly overlap.
func (e *endpoint) addReader(conn net.Conn, src amnet.NodeID) {
	e.inboundMu.Lock()
	e.inbound[conn] = struct{}{}
	e.inboundMu.Unlock()
	e.readers.Add(1)
	go func() {
		defer e.readers.Done()
		defer func() {
			conn.Close()
			e.inboundMu.Lock()
			delete(e.inbound, conn)
			e.inboundMu.Unlock()
		}()
		// A peer whose bootstrap outpaced ours can connect — and send —
		// before Connect has built our sender tables. Park until wired;
		// frames wait in the socket buffer, bounded by the peer's
		// journal backpressure.
		<-e.nw.wired
		if e.out == nil {
			return // closed without ever connecting
		}
		br := bufio.NewReaderSize(conn, 64<<10)
		link := &e.links[src]
		box := e.boxes[int(src)%len(e.boxes)]
		ackEvery := e.nw.cfg.AckEvery
		for {
			f, err := readFrame(br)
			if err != nil {
				return // connection closed or stream corrupt
			}
			if f.seq == 0 { // control: cumulative ack for our reverse sender
				amnet.Recycle(f.msg.Payload)
				e.out[src].ack(f.msg.A)
				continue
			}
			link.mu.Lock()
			if f.seq <= link.seen {
				// A duplicate means the sender is replaying frames whose
				// ack it never saw (it died with the old connection).
				// Re-ack the dedup horizon on the usual cadence: dropping
				// dups silently would leave a journal that is already at
				// the backpressure bound permanently full — no new data
				// frame could ever flow to earn a fresh ack.
				link.sinceAck++
				reack := link.sinceAck >= ackEvery || br.Buffered() == 0
				var reackSeq uint64
				if reack {
					link.sinceAck = 0
					reackSeq = link.seen
				}
				link.mu.Unlock()
				e.stats.DupFramesDropped.Add(1)
				amnet.Recycle(f.msg.Payload)
				if reack {
					e.sendAck(src, reackSeq)
				}
				continue
			}
			link.seen = f.seq
			box.push(f)
			link.sinceAck++
			ackNow := link.sinceAck >= ackEvery || br.Buffered() == 0
			var ackSeq uint64
			if ackNow {
				link.sinceAck = 0
				ackSeq = link.seen
			}
			link.mu.Unlock()
			if ackNow {
				e.sendAck(src, ackSeq)
			}
		}
	}()
}

// readFrame decodes one length-prefixed frame from the stream. It
// validates the length prefix before allocating, so truncated, corrupt
// or hostile input yields an error — never a panic or an oversized
// allocation.
func readFrame(br *bufio.Reader) (frame, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return frame{}, err
	}
	f, paylen, err := decodeHeader(&hdr)
	if err != nil {
		return frame{}, err
	}
	if paylen > 0 {
		f.msg.Payload = amnet.Alloc(paylen)
		if _, err := io.ReadFull(br, f.msg.Payload); err != nil {
			amnet.Recycle(f.msg.Payload)
			return frame{}, err
		}
	}
	return f, nil
}

// decodeHeader parses and validates a frame header, returning the
// decoded message envelope and the payload length still to be read.
func decodeHeader(hdr *[frameHeader]byte) (frame, int, error) {
	total := binary.LittleEndian.Uint32(hdr[0:])
	if total < frameHeader-4 {
		return frame{}, 0, fmt.Errorf("tcpnet: frame length %d shorter than header", total)
	}
	if total > maxFrameTotal {
		return frame{}, 0, fmt.Errorf("tcpnet: frame length %d exceeds limit %d", total, uint64(maxFrameTotal))
	}
	f := frame{
		msg: amnet.Msg{
			Dst:     amnet.NodeID(int32(binary.LittleEndian.Uint32(hdr[4:]))),
			Src:     amnet.NodeID(int32(binary.LittleEndian.Uint32(hdr[8:]))),
			Handler: amnet.HandlerID(binary.LittleEndian.Uint16(hdr[12:])),
			A:       binary.LittleEndian.Uint64(hdr[14:]),
			B:       binary.LittleEndian.Uint64(hdr[22:]),
			C:       binary.LittleEndian.Uint64(hdr[30:]),
			D:       binary.LittleEndian.Uint64(hdr[38:]),
		},
		sent: int64(binary.LittleEndian.Uint64(hdr[46:])),
		seq:  binary.LittleEndian.Uint64(hdr[seqOff:]),
	}
	return f, int(total) - (frameHeader - 4), nil
}

// pump drains one lane's queue in batches and dispatches its handlers,
// one at a time: one lock/wake per burst instead of per message. With a
// single lane this serializes all handlers on the node; with sharding it
// serializes each sender's handlers while different lanes run in
// parallel.
func (e *endpoint) pump(wg *sync.WaitGroup, lane int) {
	defer wg.Done()
	<-e.nw.started // hold dispatch until handler registration finishes
	box := e.boxes[lane]
	var scratch []frame
	for {
		batch, ok := box.popAll(scratch)
		if !ok {
			return
		}
		for i := range batch {
			f := &batch[i]
			e.stats.ObserveDeliver(f.sent)
			m := f.msg
			e.countRecv(m)
			h := e.handlers[m.Handler]
			if h == nil {
				panic(fmt.Sprintf("tcpnet: node %d: no handler %d", e.id, m.Handler))
			}
			h(m)
			batch[i] = frame{} // drop payload references promptly
		}
		scratch = batch
	}
}

func (e *endpoint) countSend(m amnet.Msg) {
	e.stats.CountSend(frameHeader + len(m.Payload))
}

func (e *endpoint) countRecv(m amnet.Msg) {
	e.stats.CountRecv(uint16(m.Handler), frameHeader+len(m.Payload))
}

// frame is a decoded message plus its sender's trace-clock stamp (0 when
// latency sampling was off at the sender) and its link sequence number
// (0 for control frames).
type frame struct {
	msg  amnet.Msg
	sent int64
	seq  uint64
}

// queue is an unbounded MPSC mailbox (the no-deadlock property of the
// fabric depends on sends never blocking on the receiver). The pump
// drains it with popAll, one lock acquisition per burst.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []frame
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// deepWater is the pending depth past which push starts yielding the
// processor after each frame. The mailbox must stay unbounded for the
// runtime's deadlock-freedom argument (handlers may send while every
// peer's queue is deep), so readers are never blocked — but on a
// loaded scheduler the readers can otherwise starve the pump for long
// stretches, ballooning the queue and defeating the buffer pool.
// Gosched is only a hint: liveness is unaffected.
const deepWater = 1024

func (q *queue) push(f frame) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		amnet.Recycle(f.msg.Payload)
		return
	}
	q.items = append(q.items, f)
	deep := len(q.items) >= deepWater
	q.mu.Unlock()
	q.cond.Signal()
	// The deep-water yield only helps when reader and pump compete for
	// one hardware context (where the scheduler can starve the pump for
	// whole timeslices); with real cores available the pump runs in
	// parallel and yielding just throttles the reader. The GOMAXPROCS
	// read is two atomic loads — cheap enough to pay per deep event, and
	// it tracks runtime.GOMAXPROCS changes (the scaling harness sweeps
	// it) instead of freezing the startup value.
	if deep && runtime.GOMAXPROCS(0) == 1 {
		runtime.Gosched()
	}
}

// popAll blocks until at least one frame is pending, then swaps the
// whole pending slice with `into` (reset to length zero) and returns it.
// ok is false only when the queue is closed and fully drained. The
// caller owns the returned slice until it passes it back in.
func (q *queue) popAll(into []frame) (batch []frame, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return into[:0], false
	}
	batch = q.items
	q.items = into[:0]
	return batch, true
}

func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
