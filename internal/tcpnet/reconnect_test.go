package tcpnet

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/proto"
)

// TestKillLinkReconnectsWithoutLossOrDup severs a busy link mid-stream
// and checks the supervision machinery restores the fabric contract:
// every frame delivered exactly once, in order, with reconnect,
// backoff and retransmit events visible in the counters.
func TestKillLinkReconnectsWithoutLossOrDup(t *testing.T) {
	nwi, err := New(Config{Nodes: 2,
		BackoffBase: time.Millisecond,
		AckEvery:    256, // widen the received-but-unacked window the replay dedups
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nwi.Close()
	nw := nwi.(*network)
	eps := nw.Endpoints()

	const total = 20000
	var next, bad atomic.Uint64
	done := make(chan struct{})
	eps[1].Register(7, func(m amnet.Msg) {
		if m.A != next.Load() {
			bad.Add(1)
		}
		next.Store(m.A + 1)
		if m.A == total-1 {
			close(done)
		}
	})
	go func() {
		for i := 0; i < total; i++ {
			eps[0].Send(amnet.Msg{Dst: 1, Handler: 7, A: uint64(i)})
			if i == total/2 {
				nw.KillLink(0, 1)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("stream stalled: delivered %d of %d", next.Load(), total)
	}
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d frames broke FIFO/exactly-once across the reconnect", n)
	}
	sent := eps[0].Stats().Snapshot()
	if sent.Reconnects == 0 {
		t.Error("no reconnect counted")
	}
	if sent.Backoffs == 0 {
		t.Error("no backoff counted")
	}
	if sent.Retransmits == 0 {
		t.Error("no retransmit counted")
	}
}

// TestReplayedFramesDeduped plays a journal replay by hand: a raw
// connection introduces itself as node 0 and sends frames 1,2,3, then —
// as a reconnecting sender whose acks were lost would — replays 2,3
// before continuing with 4. The receiver must deliver each sequence
// exactly once and count the dropped duplicates.
func TestReplayedFramesDeduped(t *testing.T) {
	nwi, err := New(Loopback(2))
	if err != nil {
		t.Fatal(err)
	}
	defer nwi.Close()
	nw := nwi.(*network)
	eps := nw.Endpoints()
	var got []uint64
	var mu sync.Mutex
	eps[1].Register(7, func(m amnet.Msg) {
		mu.Lock()
		got = append(got, m.A)
		mu.Unlock()
	})
	nw.Start() // registration done; open the dispatch gate

	conn, err := net.Dial("tcp", nw.addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hello [4]byte
	binary.LittleEndian.PutUint32(hello[:], 0) // introduce as node 0
	if _, err := conn.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	rawFrame := func(a, seq uint64) []byte {
		buf := make([]byte, frameHeader)
		binary.LittleEndian.PutUint32(buf[0:], frameHeader-4)
		binary.LittleEndian.PutUint32(buf[4:], 1)
		binary.LittleEndian.PutUint32(buf[8:], 0)
		binary.LittleEndian.PutUint16(buf[12:], 7)
		binary.LittleEndian.PutUint64(buf[14:], a)
		binary.LittleEndian.PutUint64(buf[seqOff:], seq)
		return buf
	}
	for _, sa := range [][2]uint64{{1, 1}, {2, 2}, {3, 3}, {2, 2}, {3, 3}, {4, 4}} {
		if _, err := conn.Write(rawFrame(sa[0], sa[1])); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 4 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if want := []uint64{1, 2, 3, 4}; len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("delivered %v, want %v", got, want)
			}
		}
	}
	if d := eps[1].Stats().Snapshot().DupFramesDropped; d != 2 {
		t.Errorf("DupFramesDropped = %d, want 2", d)
	}
}

// TestKillLinkUnderCluster reruns a coherence workload over a link that
// dies mid-run: the runtime on top must not notice (no lost or
// duplicated coherence messages).
func TestKillLinkUnderCluster(t *testing.T) {
	nwi, err := New(Config{Nodes: 2, BackoffBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer nwi.Close()
	nw := nwi.(*network)
	cl, err := core.NewCluster(core.Options{Procs: 2, Registry: proto.NewRegistry(), Transport: amnet.Fixed(nwi)})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 200
	err = cl.Run(func(p *core.Proc) error {
		var id core.RegionID
		if p.ID() == 0 {
			id = p.GMalloc(p.DefaultSpace(), 8)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		for i := 0; i < rounds; i++ {
			if i == rounds/2 && p.ID() == 1 {
				nw.KillLink(1, 0)
				nw.KillLink(0, 1)
			}
			if p.ID() == i%2 {
				p.StartWrite(r)
				r.Data.SetInt64(0, r.Data.Int64(0)+1)
				p.EndWrite(r)
			}
			p.GlobalBarrier()
		}
		p.StartRead(r)
		got := r.Data.Int64(0)
		p.EndRead(r)
		if got != rounds {
			return errRounds
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The supervision events must surface through the cluster-level
	// metrics aggregation (what ace.Metrics exposes), not only on the
	// raw endpoints.
	net := cl.Metrics().Net
	if net.Reconnects == 0 {
		t.Error("no reconnect counted despite KillLink")
	}
	if net.Backoffs == 0 {
		t.Error("no backoff counted despite KillLink")
	}
}

var errRounds = errors.New("counter diverged across reconnect")

// TestUnreachablePeerDeclaredDown points a sender at a peer that will
// never come back (listener closed, connection severed) and expects the
// reconnect budget to expire into a peer-down notification instead of
// an unbounded retry loop.
func TestUnreachablePeerDeclaredDown(t *testing.T) {
	nwi, err := New(Config{Nodes: 2,
		DialTimeout: 100 * time.Millisecond,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		MaxAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nwi.Close()
	nw := nwi.(*network)
	eps := nw.Endpoints()
	downs := make(chan amnet.NodeID, 1)
	eps[0].(amnet.PeerAware).SetPeerDownHandler(func(peer amnet.NodeID) { downs <- peer })
	eps[1].Register(7, func(m amnet.Msg) {})

	// Make node 1 unreachable: stop its listener, then sever the link so
	// the sender notices on the next write.
	nw.listeners[1].Close()
	nw.KillLink(0, 1)
	eps[0].Send(amnet.Msg{Dst: 1, Handler: 7})

	select {
	case peer := <-downs:
		if peer != 1 {
			t.Fatalf("peer down for %d, want 1", peer)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("peer never declared down")
	}
	// Sends to a downed peer are dropped, not blocked or crashed.
	eps[0].Send(amnet.Msg{Dst: 1, Handler: 7})
}

// TestBlockedEnqueueUnblocksOnPeerDown reproduces the enqueue hang: a
// sender whose journal sits at maxPending fully written but unacked has
// an idle writer (queue empty, parked on notEmpty), so nothing ever
// touches the connection again after the peer dies — the reconnect
// budget is never consumed, peerLost is never reached, and a producer
// blocked in enqueue on notFull hangs forever instead of the peer being
// declared down and the send failing out. The ack-stall probe must
// drive the writer onto the dead connection so the existing
// reconnect→peerLost path runs and its notFull broadcast frees the
// producer.
func TestBlockedEnqueueUnblocksOnPeerDown(t *testing.T) {
	nwi, err := New(Config{Nodes: 2,
		DialTimeout: 100 * time.Millisecond,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		MaxAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nwi.Close()
	nw := nwi.(*network)
	eps := nw.Endpoints()
	downs := make(chan amnet.NodeID, 1)
	eps[0].(amnet.PeerAware).SetPeerDownHandler(func(peer amnet.NodeID) { downs <- peer })
	var delivered atomic.Uint64
	eps[1].Register(7, func(m amnet.Msg) { delivered.Add(1) })

	// Silence the ack path first: acks from node 1 ride its own 1→0
	// sender, so closing node 0's listener and severing that link stops
	// every ack while 0→1 data keeps flowing — the journal fills with
	// frames that are written but never acknowledged.
	nw.listeners[0].Close()
	nw.KillLink(1, 0)

	for i := 0; i < maxPending; i++ {
		eps[0].Send(amnet.Msg{Dst: 1, Handler: 7, A: uint64(i)})
	}
	// Wait until every frame is delivered and the writer has gone idle
	// with the journal at capacity.
	s := nw.eps[0].out[1]
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.mu.Lock()
		idle := len(s.journal) == maxPending && len(s.queue) == 0
		s.mu.Unlock()
		if idle && delivered.Load() == maxPending {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached the stalled state: delivered %d", delivered.Load())
		}
		time.Sleep(time.Millisecond)
	}

	sendDone := make(chan struct{})
	go func() {
		eps[0].Send(amnet.Msg{Dst: 1, Handler: 7, A: maxPending})
		close(sendDone)
	}()
	time.Sleep(50 * time.Millisecond)
	select {
	case <-sendDone:
		t.Fatal("send did not block with the journal at maxPending")
	default:
	}

	// Now the peer dies for good. The blocked producer must be released
	// by the peer-down path, not left hanging.
	nw.listeners[1].Close()
	nw.KillLink(0, 1)

	select {
	case peer := <-downs:
		if peer != 1 {
			t.Fatalf("peer down for %d, want 1", peer)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("peer never declared down while a sender was blocked in enqueue")
	}
	select {
	case <-sendDone:
	case <-time.After(5 * time.Second):
		t.Fatal("enqueue still blocked after the peer was declared down")
	}
}

// TestAckNeverJournaledIgnored pins the ack guard: a cumulative ack for
// a sequence number beyond anything this sender ever journaled (a
// corrupt or hostile peer) must be ignored — accepting it would recycle
// in-flight journal frames (use-after-free via the buffer pool) and
// wedge the link by making every genuine ack look stale.
func TestAckNeverJournaledIgnored(t *testing.T) {
	s := &sender{ep: &endpoint{}} // ack updates the endpoint's queue gauge
	s.notEmpty = sync.NewCond(&s.mu)
	s.notFull = sync.NewCond(&s.mu)
	for i := uint64(1); i <= 3; i++ {
		f := amnet.Alloc(frameHeader)
		binary.LittleEndian.PutUint64(f[seqOff:], i)
		s.journal = append(s.journal, f)
		s.nextSeq = i
	}
	s.ack(100) // never journaled: must be a no-op
	if len(s.journal) != 3 || s.acked != 0 {
		t.Fatalf("bogus ack accepted: journal %d frames, acked %d", len(s.journal), s.acked)
	}
	s.ack(2) // genuine ack still works after the bogus one
	if len(s.journal) != 1 || s.acked != 2 {
		t.Fatalf("genuine ack after bogus one: journal %d frames, acked %d", len(s.journal), s.acked)
	}
	if got := seqOf(s.journal[0]); got != 3 {
		t.Fatalf("surviving journal frame has seq %d, want 3", got)
	}
	amnet.Recycle(s.journal[0])
}
