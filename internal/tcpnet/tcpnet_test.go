package tcpnet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/proto"
)

func TestBasicDelivery(t *testing.T) {
	nw, err := New(Loopback(2))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	eps := nw.Endpoints()
	got := make(chan amnet.Msg, 1)
	eps[1].Register(9, func(m amnet.Msg) { got <- m })
	eps[0].Send(amnet.Msg{Dst: 1, Handler: 9, A: 7, B: 8, C: 9, D: 10, Payload: []byte("over tcp")})
	select {
	case m := <-got:
		if m.Src != 0 || m.A != 7 || m.D != 10 || string(m.Payload) != "over tcp" {
			t.Fatalf("bad message: %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

func TestOrderingPerPair(t *testing.T) {
	nw, err := New(Loopback(2))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	eps := nw.Endpoints()
	const n = 500
	done := make(chan int, 1)
	seen := 0
	eps[1].Register(3, func(m amnet.Msg) {
		if int(m.A) != seen {
			t.Errorf("out of order: got %d want %d", m.A, seen)
		}
		seen++
		if seen == n {
			done <- seen
		}
	})
	for i := 0; i < n; i++ {
		eps[0].Send(amnet.Msg{Dst: 1, Handler: 3, A: uint64(i)})
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d delivered", seen)
	}
}

// TestAceClusterOverTCP runs the full runtime — coherence, barriers,
// protocol library — over real sockets.
func TestAceClusterOverTCP(t *testing.T) {
	nw, err := New(Loopback(3))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := core.NewCluster(core.Options{Procs: 3, Registry: proto.NewRegistry(), Transport: amnet.Fixed(nw)})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	err = cl.Run(func(p *core.Proc) error {
		var id core.RegionID
		if p.ID() == 0 {
			id = p.GMalloc(p.DefaultSpace(), 16)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		for i := 0; i < 20; i++ {
			p.StartWrite(r)
			r.Data.SetInt64(0, r.Data.Int64(0)+1)
			p.EndWrite(r)
		}
		p.GlobalBarrier()
		p.StartRead(r)
		got := r.Data.Int64(0)
		p.EndRead(r)
		if got != 60 {
			return fmt.Errorf("got %d, want 60", got)
		}
		// The update protocol over TCP, too.
		sp, err := p.NewSpace("update")
		if err != nil {
			return err
		}
		var uid core.RegionID
		if p.ID() == 1 {
			uid = p.GMalloc(sp, 8)
		}
		uid = p.BroadcastID(1, uid)
		ur := p.Map(uid)
		p.StartRead(ur)
		p.EndRead(ur)
		p.Barrier(sp)
		if p.ID() == 1 {
			p.StartWrite(ur)
			ur.Data.SetInt64(0, 5)
			p.EndWrite(ur)
		}
		p.Barrier(sp)
		p.StartRead(ur)
		v := ur.Data.Int64(0)
		p.EndRead(ur)
		if v != 5 {
			return fmt.Errorf("update over tcp: got %d", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidCount(t *testing.T) {
	if _, err := New(Loopback(0)); err == nil {
		t.Fatal("expected error")
	}
}

// TestStatsMatchTraffic asserts the endpoint counters agree exactly with
// the frames a loopback exchange actually put on the wire.
func TestStatsMatchTraffic(t *testing.T) {
	nw, err := New(Loopback(2))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	eps := nw.Endpoints()
	eps[0].Stats().EnableLatencySampling(true)

	const n = 50
	payloads := []int{0, 1, 7, 64, 1024}
	wantBytes := uint64(0)
	done := make(chan struct{})
	seen := 0
	eps[1].Register(5, func(m amnet.Msg) {
		seen++
		if seen == n {
			close(done)
		}
	})
	for i := 0; i < n; i++ {
		pl := payloads[i%len(payloads)]
		eps[0].Send(amnet.Msg{Dst: 1, Handler: 5, A: uint64(i), Payload: make([]byte, pl)})
		wantBytes += uint64(frameHeader + pl)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d of %d delivered", seen, n)
	}

	sent := eps[0].Stats().Snapshot()
	recv := eps[1].Stats().Snapshot()
	if sent.MsgsSent != n {
		t.Errorf("MsgsSent = %d, want %d", sent.MsgsSent, n)
	}
	if sent.BytesSent != wantBytes {
		t.Errorf("BytesSent = %d, want %d", sent.BytesSent, wantBytes)
	}
	if recv.MsgsRecv != n {
		t.Errorf("MsgsRecv = %d, want %d", recv.MsgsRecv, n)
	}
	if recv.BytesRecv != wantBytes {
		t.Errorf("BytesRecv = %d, want %d", recv.BytesRecv, wantBytes)
	}
	if got := eps[1].Stats().PerHandler[5].Load(); got != n {
		t.Errorf("PerHandler[5] = %d, want %d", got, n)
	}
	// Sampling was enabled on the sender: the receiver observed the
	// stamped frames.
	if recv.Deliver.Count != n {
		t.Errorf("deliver samples = %d, want %d", recv.Deliver.Count, n)
	}
	// Coalescing must not distort the per-message counters; the flush
	// count only tells how the same messages were batched onto the wire.
	if sent.Flushes == 0 {
		t.Error("sender recorded no flushes")
	}
	if sent.Flushes > sent.MsgsSent {
		t.Errorf("Flushes = %d exceeds MsgsSent = %d", sent.Flushes, sent.MsgsSent)
	}
}

// TestStatsExactUnderConcurrentBurst asserts counter exactness while
// many senders coalesce frames concurrently: the per-message counters
// must equal the traffic regardless of how the writer batched it.
func TestStatsExactUnderConcurrentBurst(t *testing.T) {
	const nodes = 4
	const perSender = 2000
	const payload = 24
	nw, err := New(Loopback(nodes))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	eps := nw.Endpoints()
	total := (nodes - 1) * perSender
	done := make(chan struct{})
	seen := 0
	eps[0].Register(6, func(m amnet.Msg) {
		seen++
		if seen == total {
			close(done)
		}
	})
	var wg sync.WaitGroup
	for src := 1; src < nodes; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			data := make([]byte, payload)
			for i := 0; i < perSender; i++ {
				eps[src].Send(amnet.Msg{Dst: 0, Handler: 6, Payload: data})
			}
		}(src)
	}
	wg.Wait()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("only %d of %d delivered", seen, total)
	}
	recv := eps[0].Stats().Snapshot()
	if recv.MsgsRecv != uint64(total) {
		t.Errorf("MsgsRecv = %d, want %d", recv.MsgsRecv, total)
	}
	if want := uint64(total * (frameHeader + payload)); recv.BytesRecv != want {
		t.Errorf("BytesRecv = %d, want %d", recv.BytesRecv, want)
	}
	var sentMsgs, flushes uint64
	for _, ep := range eps[1:] {
		s := ep.Stats().Snapshot()
		sentMsgs += s.MsgsSent
		flushes += s.Flushes
	}
	if sentMsgs != uint64(total) {
		t.Errorf("sum MsgsSent = %d, want %d", sentMsgs, total)
	}
	if flushes == 0 || flushes > sentMsgs {
		t.Errorf("sum Flushes = %d, want in [1, %d]", flushes, sentMsgs)
	}
	t.Logf("coalescing factor: %d msgs / %d flushes = %.1f msgs/flush",
		sentMsgs, flushes, float64(sentMsgs)/float64(flushes))
}
