package tcpnet

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/core"
)

// encodeTestFrame builds a well-formed frame for seeding the fuzzer.
func encodeTestFrame(seq uint64, payload []byte) []byte {
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(buf)-4))
	binary.LittleEndian.PutUint32(buf[4:], 1)
	binary.LittleEndian.PutUint32(buf[8:], 0)
	binary.LittleEndian.PutUint16(buf[12:], 7)
	binary.LittleEndian.PutUint64(buf[14:], 0xdeadbeef)
	binary.LittleEndian.PutUint64(buf[seqOff:], seq)
	copy(buf[frameHeader:], payload)
	return buf
}

// FuzzReadFrame feeds arbitrary byte streams to the frame decoder. The
// invariants under fuzz: readFrame never panics, never allocates a
// payload beyond the frame limit, returns frames whose payload length
// matches the header, and terminates (an error ends the stream, exactly
// as a reader goroutine treats a corrupt connection).
func FuzzReadFrame(f *testing.F) {
	f.Add(encodeTestFrame(1, []byte("hello fabric")))
	f.Add(encodeTestFrame(0, nil)) // control frame
	// Control frame acking a sequence number no sender ever journaled:
	// the decoder passes it through, and the sender's ack() must treat
	// it as a no-op (see TestAckNeverJournaledIgnored).
	bogusAck := encodeTestFrame(0, nil)
	binary.LittleEndian.PutUint64(bogusAck[14:], ^uint64(0))
	f.Add(bogusAck)
	f.Add(encodeTestFrame(1, nil)[:10])
	f.Add([]byte{})
	f.Add([]byte("garbage that is definitely not a frame header at all.."))
	// Length prefix shorter than a header.
	short := encodeTestFrame(1, nil)
	binary.LittleEndian.PutUint32(short[0:], 3)
	f.Add(short)
	// Oversized length prefix: must be rejected before allocation.
	huge := encodeTestFrame(1, nil)
	binary.LittleEndian.PutUint32(huge[0:], 0xffffffff)
	f.Add(huge)
	// Length prefix just past the limit.
	past := encodeTestFrame(1, nil)
	binary.LittleEndian.PutUint32(past[0:], uint32(maxFrameTotal+1))
	f.Add(past)
	// Header promises more payload than the stream carries.
	trunc := encodeTestFrame(1, make([]byte, 100))
	f.Add(trunc[:frameHeader+10])
	// Two valid frames back to back.
	f.Add(append(encodeTestFrame(1, []byte("a")), encodeTestFrame(2, []byte("b"))...))
	// A frame carrying a real encoded checkpoint: rejoin ships these
	// over the fabric verbatim, so the corpus should mutate from the
	// ACK1 layout (magic, cursors, proto names, region table).
	ckpt := core.EncodeCheckpoint(&core.Checkpoint{
		Rank: 1, Procs: 4, Gen: 9, CollSeq: 12, NextSeq: 3, App: 2,
		Protos: []string{"sc", "update"},
		Regions: []core.CheckpointRegion{
			{ID: 1, Space: 0, Size: 8, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
			{ID: 2, Space: 1, Size: 4, Data: []byte{9, 8, 7, 6}},
		},
	})
	f.Add(encodeTestFrame(5, ckpt))
	// The same checkpoint cut off mid-region-table: the frame itself is
	// well-formed (the length prefix matches), so the decoder must hand
	// the truncated payload up intact for DecodeCheckpoint to reject.
	f.Add(encodeTestFrame(6, ckpt[:len(ckpt)/2]))
	// Journal replay past a checkpoint: a rejoiner resumes from the
	// checkpoint cut while the sender's journal still holds frames with
	// sequence numbers far beyond it. Seed that shape — a checkpoint
	// frame followed by a data frame whose seq jumps past it — so the
	// fuzzer explores reordered/stale-seq streams around the cut.
	replay := append(encodeTestFrame(7, ckpt), encodeTestFrame(1<<40, []byte("journal tail"))...)
	f.Add(replay)

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		consumed := 0
		for {
			fr, err := readFrame(br)
			if err != nil {
				// Whatever the input, decoding must end in a clean error
				// (typically io.EOF / ErrUnexpectedEOF) — never a panic.
				break
			}
			if len(fr.msg.Payload) > maxFramePayload {
				t.Fatalf("decoded payload of %d bytes exceeds limit %d", len(fr.msg.Payload), maxFramePayload)
			}
			amnet.Recycle(fr.msg.Payload)
			consumed++
			if consumed > len(data) {
				t.Fatal("decoded more frames than input bytes — decoder not consuming")
			}
		}
		// A partial trailing frame must not have consumed unbounded
		// memory; nothing to assert beyond not-panicking, but make sure
		// the reader really is exhausted or errored.
		if _, err := br.Peek(1); err == nil && consumed == 0 && len(data) >= frameHeader {
			// The decoder refused the stream without consuming it fully:
			// fine (validation error), as long as it errored above.
			_ = err
		}
	})
}

// TestReadFrameRejectsOversizedLength pins the allocation guard: a
// length prefix past the limit errors out before any payload
// allocation is attempted.
func TestReadFrameRejectsOversizedLength(t *testing.T) {
	buf := encodeTestFrame(1, nil)
	binary.LittleEndian.PutUint32(buf[0:], 0xfffffff0)
	_, err := readFrame(bufio.NewReader(bytes.NewReader(buf)))
	if err == nil {
		t.Fatal("oversized frame accepted")
	}
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		t.Fatalf("oversized frame surfaced as %v, want a validation error", err)
	}
}

// TestReadFrameRoundTrip pins the codec against Send's encoder.
func TestReadFrameRoundTrip(t *testing.T) {
	payload := []byte("round trip payload")
	stream := append(encodeTestFrame(3, payload), encodeTestFrame(4, nil)...)
	br := bufio.NewReader(bytes.NewReader(stream))
	f1, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if f1.seq != 3 || f1.msg.A != 0xdeadbeef || string(f1.msg.Payload) != string(payload) {
		t.Fatalf("bad first frame: %+v", f1)
	}
	f2, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if f2.seq != 4 || f2.msg.Payload != nil {
		t.Fatalf("bad second frame: %+v", f2)
	}
	if _, err := readFrame(br); err != io.EOF {
		t.Fatalf("stream end = %v, want io.EOF", err)
	}
}
