package tcpnet

import (
	"sync/atomic"
	"testing"

	"github.com/acedsm/ace/internal/amnet"
)

// BenchmarkLargeFrameThroughput streams 16 KB payloads over loopback —
// the frame size the vectored write path exists for (writev moved this
// from ~590 to ~680 MB/s by not memcpying every frame through the
// buffered writer; see DESIGN.md §11). The small-frame regime is
// covered by the fabric benchmarks, whose 16 B messages must stay on
// the bufio path (writevMinFrame).
func BenchmarkLargeFrameThroughput(b *testing.B) {
	nw, err := New(Loopback(2))
	if err != nil {
		b.Fatal(err)
	}
	defer nw.Close()
	eps := nw.Endpoints()
	const payload = 16 << 10
	var seen atomic.Uint64
	done := make(chan struct{})
	want := uint64(b.N)
	eps[1].Register(9, func(m amnet.Msg) {
		amnet.Recycle(m.Payload)
		if seen.Add(1) == want {
			close(done)
		}
	})
	b.SetBytes(payload)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := amnet.Alloc(payload)
		eps[0].Send(amnet.Msg{Dst: 1, Handler: 9, Payload: buf})
	}
	<-done
}
