// Package rtiface defines a runtime-neutral interface over the Ace and CRL
// runtimes, so each benchmark exists as a single source that runs on both —
// mirroring the paper's methodology of porting benchmarks between the two
// systems by replacing primitives one for one (Section 5.1).
package rtiface

import (
	"fmt"

	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/crl"
)

// Capability is a bitset of optional runtime facilities. Benchmarks
// probe Capabilities once up front instead of handling per-call
// "unsupported" errors (the old ErrUnsupported sentinel).
type Capability uint32

// The optional facilities.
const (
	// CapSpaces: the runtime has spaces (NewSpace, MallocIn,
	// BarrierSpace via SpaceRT).
	CapSpaces Capability = 1 << iota
	// CapCustomProtocols: spaces may bind protocols other than the
	// default sequentially consistent one.
	CapCustomProtocols
	// CapChangeProtocol: a space's protocol may be switched at runtime.
	CapChangeProtocol
)

// Has reports whether c includes every capability in want.
func (c Capability) Has(want Capability) bool { return c&want == want }

// Handle is an opaque mapped-region handle.
type Handle interface {
	// Data returns the region's local data view, valid between start and
	// end operations.
	Data() core.RegionData
	// ID returns the region's global identifier.
	ID() core.RegionID
}

// SpaceID names a space on runtimes that support them.
type SpaceID int

// RT is the runtime-neutral per-processor interface: the least common
// denominator of the Ace and CRL runtimes.
type RT interface {
	ID() int
	Procs() int

	// Malloc allocates a region homed at the caller, from the default
	// space on runtimes that have spaces.
	Malloc(size int) core.RegionID
	Map(id core.RegionID) Handle
	Unmap(h Handle)
	StartRead(h Handle)
	EndRead(h Handle)
	StartWrite(h Handle)
	EndWrite(h Handle)

	// Barrier synchronizes all processors with the default semantics.
	Barrier()
	Lock(h Handle)
	Unlock(h Handle)

	Broadcast(root int, data []byte) []byte
	BroadcastID(root int, id core.RegionID) core.RegionID
	BroadcastIDs(root int, ids []core.RegionID) []core.RegionID
	AllReduceInt64(op core.ReduceOp, v int64) int64
	AllReduceFloat64(op core.ReduceOp, v float64) float64

	// Name identifies the runtime ("ace" or "crl") for reporting.
	Name() string

	// Capabilities reports the optional facilities this runtime
	// supports. A runtime reporting CapSpaces also implements SpaceRT.
	Capabilities() Capability
}

// SpaceRT extends RT with Ace's space and protocol facilities. Benchmarks
// request it with a type assertion when configured to use custom
// protocols.
type SpaceRT interface {
	RT
	NewSpace(protoName string) (SpaceID, error)
	// FreeSpace destroys the space and recycles its slot (collective).
	// The SpaceID is dead afterwards; a later NewSpace may hand it out
	// again for a different space.
	FreeSpace(sp SpaceID) error
	MallocIn(sp SpaceID, size int) core.RegionID
	// MallocInE is MallocIn with the validity checks surfaced as errors
	// instead of panics — the variant for sizes derived from external
	// input (a gateway's client frames).
	MallocInE(sp SpaceID, size int) (core.RegionID, error)
	BarrierSpace(sp SpaceID)
	ChangeProtocol(sp SpaceID, protoName string) error
}

// AceRT adapts a core.Proc to RT and SpaceRT.
type AceRT struct {
	P *core.Proc

	spaces []*core.Space
}

var _ SpaceRT = (*AceRT)(nil)

// NewAce wraps p.
func NewAce(p *core.Proc) *AceRT { return &AceRT{P: p} }

// Name returns "ace".
func (a *AceRT) Name() string { return "ace" }

// Capabilities: Ace has spaces, customizable protocols and runtime
// protocol changes.
func (a *AceRT) Capabilities() Capability {
	return CapSpaces | CapCustomProtocols | CapChangeProtocol
}

func (a *AceRT) ID() int    { return a.P.ID() }
func (a *AceRT) Procs() int { return a.P.Procs() }

func (a *AceRT) Malloc(size int) core.RegionID {
	return a.P.GMalloc(a.P.DefaultSpace(), size)
}

func (a *AceRT) Map(id core.RegionID) Handle { return aceHandle{a.P.Map(id)} }
func (a *AceRT) Unmap(h Handle)              { a.P.Unmap(h.(aceHandle).r) }
func (a *AceRT) StartRead(h Handle)          { a.P.StartRead(h.(aceHandle).r) }
func (a *AceRT) EndRead(h Handle)            { a.P.EndRead(h.(aceHandle).r) }
func (a *AceRT) StartWrite(h Handle)         { a.P.StartWrite(h.(aceHandle).r) }
func (a *AceRT) EndWrite(h Handle)           { a.P.EndWrite(h.(aceHandle).r) }

// Barrier runs the default space's protocol barrier (the paper's full
// access control: even the plain barrier dispatches through the
// protocol). Under the default sc protocol this is exactly the global
// barrier, but it keeps the barrier's coherence actions — and the
// adaptive controller's evaluation point — attached to the space the
// runtime-neutral benchmarks allocate from.
func (a *AceRT) Barrier()        { a.P.Barrier(a.P.DefaultSpace()) }
func (a *AceRT) Lock(h Handle)   { a.P.Lock(h.(aceHandle).r) }
func (a *AceRT) Unlock(h Handle) { a.P.Unlock(h.(aceHandle).r) }

func (a *AceRT) Broadcast(root int, data []byte) []byte { return a.P.Broadcast(root, data) }
func (a *AceRT) BroadcastID(root int, id core.RegionID) core.RegionID {
	return a.P.BroadcastID(root, id)
}
func (a *AceRT) BroadcastIDs(root int, ids []core.RegionID) []core.RegionID {
	return a.P.BroadcastIDs(root, ids)
}
func (a *AceRT) AllReduceInt64(op core.ReduceOp, v int64) int64 {
	return a.P.AllReduceInt64(op, v)
}
func (a *AceRT) AllReduceFloat64(op core.ReduceOp, v float64) float64 {
	return a.P.AllReduceFloat64(op, v)
}

// NewSpace creates a space with the named protocol (collective).
func (a *AceRT) NewSpace(protoName string) (SpaceID, error) {
	sp, err := a.P.NewSpace(protoName)
	if err != nil {
		return 0, err
	}
	for len(a.spaces) <= sp.ID {
		a.spaces = append(a.spaces, nil)
	}
	a.spaces[sp.ID] = sp
	return SpaceID(sp.ID), nil
}

// FreeSpace destroys the space and recycles its table slot (collective).
func (a *AceRT) FreeSpace(sp SpaceID) error {
	if int(sp) <= 0 || int(sp) >= len(a.spaces) || a.spaces[sp] == nil {
		return fmt.Errorf("rtiface: FreeSpace of unknown space %d", sp)
	}
	if err := a.P.FreeSpace(a.spaces[sp]); err != nil {
		return err
	}
	a.spaces[sp] = nil // a later NewSpace may recycle the slot
	return nil
}

// MallocIn allocates from the given space.
func (a *AceRT) MallocIn(sp SpaceID, size int) core.RegionID {
	return a.P.GMalloc(a.space(sp), size)
}

// MallocInE allocates from the given space, returning errors (bad size,
// freed space, unknown space) instead of panicking.
func (a *AceRT) MallocInE(sp SpaceID, size int) (core.RegionID, error) {
	var csp *core.Space
	if int(sp) == 0 {
		csp = a.P.DefaultSpace()
	} else if int(sp) > 0 && int(sp) < len(a.spaces) && a.spaces[sp] != nil {
		csp = a.spaces[sp]
	} else {
		return 0, fmt.Errorf("rtiface: MallocInE in unknown space %d", sp)
	}
	return a.P.GMallocE(csp, size)
}

// BarrierSpace runs a barrier with the space's protocol semantics.
func (a *AceRT) BarrierSpace(sp SpaceID) { a.P.Barrier(a.space(sp)) }

// ChangeProtocol switches the space's protocol (collective).
func (a *AceRT) ChangeProtocol(sp SpaceID, protoName string) error {
	return a.P.ChangeProtocol(a.space(sp), protoName)
}

func (a *AceRT) space(sp SpaceID) *core.Space {
	if int(sp) >= len(a.spaces) || a.spaces[sp] == nil {
		if int(sp) == 0 {
			return a.P.DefaultSpace()
		}
		panic(fmt.Sprintf("rtiface: unknown space %d", sp))
	}
	return a.spaces[sp]
}

type aceHandle struct{ r *core.Region }

func (h aceHandle) Data() core.RegionData { return h.r.Data }
func (h aceHandle) ID() core.RegionID     { return h.r.ID }

// CRLRT adapts a crl.Proc to RT. CRL has no spaces, no region locks and no
// customizable protocols.
type CRLRT struct {
	P *crl.Proc
}

var _ RT = (*CRLRT)(nil)

// NewCRL wraps p.
func NewCRL(p *crl.Proc) *CRLRT { return &CRLRT{P: p} }

// Name returns "crl".
func (c *CRLRT) Name() string { return "crl" }

// Capabilities: CRL has none of the optional facilities (one fixed
// protocol, no spaces).
func (c *CRLRT) Capabilities() Capability { return 0 }

func (c *CRLRT) ID() int    { return c.P.ID() }
func (c *CRLRT) Procs() int { return c.P.Procs() }

func (c *CRLRT) Malloc(size int) core.RegionID { return c.P.Malloc(size) }
func (c *CRLRT) Map(id core.RegionID) Handle   { return crlHandle{c.P.Map(id)} }
func (c *CRLRT) Unmap(h Handle)                { c.P.Unmap(h.(crlHandle).r) }
func (c *CRLRT) StartRead(h Handle)            { c.P.StartRead(h.(crlHandle).r) }
func (c *CRLRT) EndRead(h Handle)              { c.P.EndRead(h.(crlHandle).r) }
func (c *CRLRT) StartWrite(h Handle)           { c.P.StartWrite(h.(crlHandle).r) }
func (c *CRLRT) EndWrite(h Handle)             { c.P.EndWrite(h.(crlHandle).r) }
func (c *CRLRT) Barrier()                      { c.P.Barrier() }

// Lock emulates a region lock with an exclusive write section (CRL
// programs use exclusive sections for mutual exclusion).
func (c *CRLRT) Lock(h Handle)   { c.P.StartWrite(h.(crlHandle).r) }
func (c *CRLRT) Unlock(h Handle) { c.P.EndWrite(h.(crlHandle).r) }

func (c *CRLRT) Broadcast(root int, data []byte) []byte { return c.P.Broadcast(root, data) }
func (c *CRLRT) BroadcastID(root int, id core.RegionID) core.RegionID {
	return c.P.BroadcastID(root, id)
}
func (c *CRLRT) BroadcastIDs(root int, ids []core.RegionID) []core.RegionID {
	return c.P.BroadcastIDs(root, ids)
}
func (c *CRLRT) AllReduceInt64(op core.ReduceOp, v int64) int64 {
	return c.P.AllReduceInt64(op, v)
}
func (c *CRLRT) AllReduceFloat64(op core.ReduceOp, v float64) float64 {
	return c.P.AllReduceFloat64(op, v)
}

type crlHandle struct{ r *crl.Region }

func (h crlHandle) Data() core.RegionData { return h.r.Data() }
func (h crlHandle) ID() core.RegionID     { return h.r.ID() }
