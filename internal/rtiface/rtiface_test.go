package rtiface_test

import (
	"fmt"
	"sync"
	"testing"

	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/crl"
	"github.com/acedsm/ace/internal/rtiface"
	"github.com/acedsm/ace/proto"
)

// program is a runtime-neutral workload used to check that both adapters
// expose identical semantics.
func program(rt rtiface.RT) (int64, error) {
	var id core.RegionID
	if rt.ID() == 0 {
		id = rt.Malloc(8)
	}
	id = rt.BroadcastID(0, id)
	h := rt.Map(id)
	for i := 0; i < 30; i++ {
		rt.StartWrite(h)
		h.Data().SetInt64(0, h.Data().Int64(0)+1)
		rt.EndWrite(h)
	}
	rt.Barrier()
	rt.StartRead(h)
	total := h.Data().Int64(0)
	rt.EndRead(h)
	rt.Unmap(h)
	if got := rt.AllReduceInt64(core.OpMax, total); got != total {
		return 0, fmt.Errorf("allreduce disagrees: %d vs %d", got, total)
	}
	return total, nil
}

func TestAdaptersAgree(t *testing.T) {
	const procs = 3
	runAce := func() int64 {
		cl, err := core.NewCluster(core.Options{Procs: procs, Registry: proto.NewRegistry()})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		var mu sync.Mutex
		var out int64
		if err := cl.Run(func(p *core.Proc) error {
			v, err := program(rtiface.NewAce(p))
			if p.ID() == 0 {
				mu.Lock()
				out = v
				mu.Unlock()
			}
			return err
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	runCRL := func() int64 {
		cl, err := crl.NewCluster(crl.Options{Procs: procs})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		var mu sync.Mutex
		var out int64
		if err := cl.Run(func(p *crl.Proc) error {
			v, err := program(rtiface.NewCRL(p))
			if p.ID() == 0 {
				mu.Lock()
				out = v
				mu.Unlock()
			}
			return err
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, c := runAce(), runCRL()
	if a != 90 || c != 90 {
		t.Fatalf("ace=%d crl=%d, want 90", a, c)
	}
}

func TestAdapterNamesAndSpaces(t *testing.T) {
	cl, err := core.NewCluster(core.Options{Procs: 2, Registry: proto.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *core.Proc) error {
		rt := rtiface.NewAce(p)
		if rt.Name() != "ace" {
			return fmt.Errorf("name = %q", rt.Name())
		}
		// The capability bitset advertises the full space machinery.
		caps := rt.Capabilities()
		if !caps.Has(rtiface.CapSpaces | rtiface.CapCustomProtocols | rtiface.CapChangeProtocol) {
			return fmt.Errorf("ace capabilities = %b", caps)
		}
		var srt rtiface.SpaceRT = rt
		sp, err := srt.NewSpace("update")
		if err != nil {
			return err
		}
		id := srt.MallocIn(sp, 8)
		h := rt.Map(id)
		rt.StartWrite(h)
		h.Data().SetInt64(0, 7)
		rt.EndWrite(h)
		srt.BarrierSpace(sp)
		if err := srt.ChangeProtocol(sp, "sc"); err != nil {
			return err
		}
		rt.StartRead(h)
		if h.Data().Int64(0) != 7 {
			return fmt.Errorf("data lost across ChangeProtocol")
		}
		rt.EndRead(h)
		rt.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCRLHasNoSpaces(t *testing.T) {
	cl, err := crl.NewCluster(crl.Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *crl.Proc) error {
		rt := rtiface.NewCRL(p)
		if rt.Name() != "crl" {
			return fmt.Errorf("name = %q", rt.Name())
		}
		if _, ok := any(rt).(rtiface.SpaceRT); ok {
			return fmt.Errorf("CRL adapter must not claim SpaceRT")
		}
		if caps := rt.Capabilities(); caps.Has(rtiface.CapSpaces) ||
			caps.Has(rtiface.CapCustomProtocols) || caps.Has(rtiface.CapChangeProtocol) {
			return fmt.Errorf("CRL capabilities = %b, want none", caps)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCRLLockViaExclusiveSection(t *testing.T) {
	// The CRL adapter emulates Lock with an exclusive section; increments
	// under it must not be lost.
	const procs, incs = 4, 25
	cl, err := crl.NewCluster(crl.Options{Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *crl.Proc) error {
		rt := rtiface.NewCRL(p)
		var id core.RegionID
		if rt.ID() == 0 {
			id = rt.Malloc(8)
		}
		id = rt.BroadcastID(0, id)
		h := rt.Map(id)
		for i := 0; i < incs; i++ {
			rt.Lock(h)
			h.Data().SetInt64(0, h.Data().Int64(0)+1)
			rt.Unlock(h)
		}
		rt.Barrier()
		rt.StartRead(h)
		got := h.Data().Int64(0)
		rt.EndRead(h)
		if got != procs*incs {
			return fmt.Errorf("got %d, want %d", got, procs*incs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
