package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev single = %v", got)
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.138089935299395) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	mn, ok1 := Min(xs)
	mx, ok2 := Max(xs)
	if mn != -1 || mx != 7 || !ok1 || !ok2 {
		t.Errorf("Min/Max = %v,%v / %v,%v", mn, ok1, mx, ok2)
	}
	if mn, ok := Min(nil); mn != 0 || ok {
		t.Errorf("Min(nil) = %v, %v, want 0, false", mn, ok)
	}
	if mx, ok := Max(nil); mx != 0 || ok {
		t.Errorf("Max(nil) = %v, %v, want 0, false", mx, ok)
	}
}

func TestMeanBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip degenerate inputs
			}
		}
		m := Mean(xs)
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		return m >= mn-1e-9 && m <= mx+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value", "ratio")
	tb.AddRow("alpha", 12, 1.25)
	tb.AddRow("a-much-longer-name", uint64(7), 0.5)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "ratio") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("separator: %q", lines[1])
	}
	if !strings.Contains(lines[2], "1.250") {
		t.Errorf("floats should render with 3 decimals: %q", lines[2])
	}
	// All rows align: the "value" column starts at the same offset.
	idx := strings.Index(lines[0], "value")
	for _, l := range lines[2:] {
		if len(l) < idx {
			t.Errorf("row shorter than header: %q", l)
		}
	}
}
