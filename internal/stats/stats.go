// Package stats provides small numeric helpers and fixed-width table
// rendering for the experiment harness.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Min returns the minimum of xs. For empty input it returns 0 with
// ok=false (instead of the +Inf sentinel it used to return, which leaked
// into reports when a sweep produced no samples).
func Min(xs []float64) (m float64, ok bool) {
	if len(xs) == 0 {
		return 0, false
	}
	m = xs[0]
	for _, x := range xs[1:] {
		m = math.Min(m, x)
	}
	return m, true
}

// Max returns the maximum of xs. For empty input it returns 0 with
// ok=false.
func Max(xs []float64) (m float64, ok bool) {
	if len(xs) == 0 {
		return 0, false
	}
	m = xs[0]
	for _, x := range xs[1:] {
		m = math.Max(m, x)
	}
	return m, true
}

// Table renders rows of columns with aligned widths.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given header.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Write renders the table to w.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(fmt.Sprintf("%-*s", widths[i], c))
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Write(&b)
	return b.String()
}
