package memory

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMakeIDRoundTrip(t *testing.T) {
	cases := []struct {
		home int32
		seq  uint64
	}{
		{0, 1}, {0, 12345}, {31, 1}, {31, 1 << 39}, {1000, 999999},
	}
	for _, c := range cases {
		id := MakeID(c.home, c.seq)
		if id.Home() != c.home || id.Seq() != c.seq {
			t.Errorf("MakeID(%d,%d) round-trip gave (%d,%d)", c.home, c.seq, id.Home(), id.Seq())
		}
		if id.IsZero() {
			t.Errorf("MakeID(%d,%d) is zero", c.home, c.seq)
		}
	}
}

func TestMakeIDPanicsOnZeroSeq(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for seq 0")
		}
	}()
	MakeID(0, 0)
}

func TestMakeIDPanicsOnNegativeHome(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative home")
		}
	}()
	MakeID(-1, 1)
}

func TestRegionIDRoundTripProperty(t *testing.T) {
	f := func(home uint16, seq uint32) bool {
		h, s := int32(home), uint64(seq)+1
		id := MakeID(h, s)
		return id.Home() == h && id.Seq() == s && !id.IsZero()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegionIDString(t *testing.T) {
	if got := MakeID(3, 7).String(); got != "region<3:7>" {
		t.Errorf("String = %q", got)
	}
	if got := RegionID(0).String(); got != "region<nil>" {
		t.Errorf("zero String = %q", got)
	}
}

func TestTableBasic(t *testing.T) {
	var tb Table[*int]
	a, b := new(int), new(int)
	*a, *b = 1, 2

	if got := tb.Get(MakeID(0, 1)); got != nil {
		t.Fatalf("empty Get = %v", got)
	}
	tb.Put(MakeID(0, 1), a)
	tb.Put(MakeID(5, 100), b)
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
	if got := tb.Get(MakeID(0, 1)); got != a {
		t.Fatalf("Get(0:1) = %v", got)
	}
	if got := tb.Get(MakeID(5, 100)); got != b {
		t.Fatalf("Get(5:100) = %v", got)
	}
	if got := tb.Get(MakeID(5, 99)); got != nil {
		t.Fatalf("Get(5:99) = %v, want nil", got)
	}
	if got := tb.Get(MakeID(9, 1)); got != nil {
		t.Fatalf("Get(9:1) = %v, want nil", got)
	}

	// Overwrite does not change Len.
	tb.Put(MakeID(0, 1), b)
	if tb.Len() != 2 {
		t.Fatalf("Len after overwrite = %d", tb.Len())
	}

	tb.Delete(MakeID(0, 1))
	if tb.Len() != 1 || tb.Get(MakeID(0, 1)) != nil {
		t.Fatalf("Delete failed: len=%d", tb.Len())
	}
	// Deleting absent entries is a no-op.
	tb.Delete(MakeID(0, 1))
	tb.Delete(MakeID(77, 3))
	if tb.Len() != 1 {
		t.Fatalf("Len after no-op deletes = %d", tb.Len())
	}
}

func TestTableForEach(t *testing.T) {
	var tb Table[*int]
	want := map[RegionID]*int{
		MakeID(0, 1): new(int),
		MakeID(0, 2): new(int),
		MakeID(2, 9): new(int),
	}
	for id, v := range want {
		tb.Put(id, v)
	}
	got := map[RegionID]*int{}
	tb.ForEach(func(id RegionID, v *int) { got[id] = v })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d entries, want %d", len(got), len(want))
	}
	for id, v := range want {
		if got[id] != v {
			t.Errorf("ForEach missing %v", id)
		}
	}
}

func TestTablePutGetProperty(t *testing.T) {
	// Whatever sequence of Puts happens, Get returns the last value put.
	f := func(homes []uint8, seqs []uint16) bool {
		var tb Table[*int]
		last := map[RegionID]*int{}
		n := min(len(homes), len(seqs))
		for i := 0; i < n; i++ {
			id := MakeID(int32(homes[i]), uint64(seqs[i])+1)
			v := new(int)
			tb.Put(id, v)
			last[id] = v
		}
		if tb.Len() != len(last) {
			return false
		}
		for id, v := range last {
			if tb.Get(id) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDataAccessors(t *testing.T) {
	d := make(Data, 64)
	d.SetFloat64(0, 3.5)
	d.SetFloat64(7, -1e300)
	if d.Float64(0) != 3.5 || d.Float64(7) != -1e300 {
		t.Fatal("float64 round trip failed")
	}
	d.SetInt64(1, -42)
	if d.Int64(1) != -42 {
		t.Fatal("int64 round trip failed")
	}
	d.SetUint64(2, math.MaxUint64)
	if d.Uint64(2) != math.MaxUint64 {
		t.Fatal("uint64 round trip failed")
	}
	d.SetInt32(6, -7)
	if d.Int32(6) != -7 {
		t.Fatal("int32 round trip failed")
	}
	id := MakeID(4, 99)
	d.SetRegionID(3, id)
	if d.RegionID(3) != id {
		t.Fatal("region id round trip failed")
	}
	if d.Words() != 8 {
		t.Fatalf("Words = %d, want 8", d.Words())
	}
}

func TestDataAccessorProperty(t *testing.T) {
	f := func(vals []float64) bool {
		d := make(Data, len(vals)*8)
		for i, v := range vals {
			d.SetFloat64(i, v)
		}
		for i, v := range vals {
			got := d.Float64(i)
			if math.IsNaN(v) {
				if !math.IsNaN(got) {
					return false
				}
			} else if got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
