// Package memory provides region identifiers, per-processor region tables
// and typed accessors over raw region bytes.
//
// A region is the unit of coherence in the Ace runtime: an arbitrarily
// sized, contiguous block of bytes with a unique id whose high bits encode
// the region's home node. Regions are allocated by their home, so ids are
// unique without global coordination and region tables can be dense
// two-level arrays rather than hash maps — the "more efficient mapping
// technique" the paper credits for Ace's edge over CRL on fine-grained
// applications.
package memory

import (
	"encoding/binary"
	"fmt"
	"math"
)

// RegionID uniquely names a shared region. The top 24 bits hold the home
// node, the low 40 bits the home-local allocation sequence number. The zero
// RegionID is reserved as "no region".
type RegionID uint64

const seqBits = 40

// MakeID builds a region id from a home node and a home-local sequence
// number. Sequence numbers start at 1; MakeID panics on 0 so that the zero
// RegionID stays reserved.
func MakeID(home int32, seq uint64) RegionID {
	if seq == 0 || seq >= 1<<seqBits {
		panic(fmt.Sprintf("memory: sequence %d out of range", seq))
	}
	if home < 0 {
		panic(fmt.Sprintf("memory: negative home %d", home))
	}
	return RegionID(uint64(home)<<seqBits | seq)
}

// Home returns the home node encoded in the id.
func (id RegionID) Home() int32 { return int32(id >> seqBits) }

// Seq returns the home-local sequence number encoded in the id.
func (id RegionID) Seq() uint64 { return uint64(id) & (1<<seqBits - 1) }

// IsZero reports whether id is the reserved "no region" value.
func (id RegionID) IsZero() bool { return id == 0 }

func (id RegionID) String() string {
	if id.IsZero() {
		return "region<nil>"
	}
	return fmt.Sprintf("region<%d:%d>", id.Home(), id.Seq())
}

// Table is a per-processor two-level region table mapping RegionID to a
// value of type V (a pointer type in practice; the zero V means "absent").
// Lookup is two array indexing operations; no hashing. The zero Table is
// ready to use. Table is not safe for concurrent use; callers synchronize
// externally (the per-proc runtime mutex).
type Table[V comparable] struct {
	byHome [][]V
	count  int
}

// Get returns the value for id, or the zero V if absent.
func (t *Table[V]) Get(id RegionID) V {
	var zero V
	h := int(id.Home())
	if h >= len(t.byHome) {
		return zero
	}
	row := t.byHome[h]
	s := id.Seq()
	if s >= uint64(len(row)) {
		return zero
	}
	return row[s]
}

// Put stores v for id, growing the table as needed.
func (t *Table[V]) Put(id RegionID, v V) {
	h := int(id.Home())
	for h >= len(t.byHome) {
		t.byHome = append(t.byHome, nil)
	}
	row := t.byHome[h]
	s := id.Seq()
	if s >= uint64(len(row)) {
		grown := make([]V, max(int(s)+1, 2*len(row), 8))
		copy(grown, row)
		row = grown
		t.byHome[h] = row
	}
	var zero V
	if row[s] == zero && v != zero {
		t.count++
	} else if row[s] != zero && v == zero {
		t.count--
	}
	row[s] = v
}

// Delete removes the entry for id, if present.
func (t *Table[V]) Delete(id RegionID) {
	var zero V
	h := int(id.Home())
	if h >= len(t.byHome) {
		return
	}
	row := t.byHome[h]
	s := id.Seq()
	if s >= uint64(len(row)) {
		return
	}
	if row[s] != zero {
		t.count--
	}
	row[s] = zero
}

// Len returns the number of non-zero entries.
func (t *Table[V]) Len() int { return t.count }

// ForEach calls fn for every non-zero entry. Mutating the table during
// iteration is not allowed.
func (t *Table[V]) ForEach(fn func(RegionID, V)) {
	var zero V
	for h, row := range t.byHome {
		for s, v := range row {
			if v != zero {
				fn(MakeID(int32(h), uint64(s)), v)
			}
		}
	}
}

// Data is a byte view of a region's storage with typed accessors. All
// multi-byte values use little-endian encoding, so region contents are
// well-defined across transports (including TCP between processes).
type Data []byte

// Float64 reads the i-th float64.
func (d Data) Float64(i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(d[i*8:]))
}

// SetFloat64 writes the i-th float64.
func (d Data) SetFloat64(i int, v float64) {
	binary.LittleEndian.PutUint64(d[i*8:], math.Float64bits(v))
}

// Int64 reads the i-th int64.
func (d Data) Int64(i int) int64 {
	return int64(binary.LittleEndian.Uint64(d[i*8:]))
}

// SetInt64 writes the i-th int64.
func (d Data) SetInt64(i int, v int64) {
	binary.LittleEndian.PutUint64(d[i*8:], uint64(v))
}

// Uint64 reads the i-th uint64.
func (d Data) Uint64(i int) uint64 {
	return binary.LittleEndian.Uint64(d[i*8:])
}

// SetUint64 writes the i-th uint64.
func (d Data) SetUint64(i int, v uint64) {
	binary.LittleEndian.PutUint64(d[i*8:], v)
}

// Int32 reads the i-th int32.
func (d Data) Int32(i int) int32 {
	return int32(binary.LittleEndian.Uint32(d[i*4:]))
}

// SetInt32 writes the i-th int32.
func (d Data) SetInt32(i int, v int32) {
	binary.LittleEndian.PutUint32(d[i*4:], uint32(v))
}

// RegionID reads the i-th RegionID (stored as a uint64 slot). This is how
// shared pointers are represented in region storage.
func (d Data) RegionID(i int) RegionID { return RegionID(d.Uint64(i)) }

// SetRegionID writes the i-th RegionID slot.
func (d Data) SetRegionID(i int, id RegionID) { d.SetUint64(i, uint64(id)) }

// Words returns the number of 8-byte slots in the region.
func (d Data) Words() int { return len(d) / 8 }
