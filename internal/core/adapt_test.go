package core

import (
	"testing"
	"time"
)

// namedBase is a no-op protocol with a name, for registry tests.
type namedBase struct {
	Base
	name string
}

func (n *namedBase) Name() string { return n.name }

// TestClassifyPattern pins the classifier's decision table: each row is
// one epoch's cluster-wide feature vector and the label it must map to.
func TestClassifyPattern(t *testing.T) {
	cases := []struct {
		name                                                  string
		reads, writes, locks, remoteReads, nReaders, nWriters int64
		homeOnly                                              bool
		current                                               string
		want                                                  string
	}{
		{"read-only", 100, 0, 0, 10, 4, 0, true, "", PatternGeneral},
		{"lock-mediated", 10, 10, 8, 2, 4, 4, false, "", PatternMigratory},
		{"locks-without-writes", 100, 0, 8, 2, 4, 0, true, "", PatternGeneral},
		{"producer-consumer", 300, 100, 0, 50, 4, 4, true, "", PatternProducerConsumer},
		{"home-write", 100, 300, 0, 20, 4, 4, true, "", PatternHomeWrite},
		{"home-only-no-remote-readers", 100, 300, 0, 0, 4, 4, true, "", PatternGeneral},
		{"single-writer", 300, 50, 0, 40, 4, 1, false, "", PatternSingleWriter},
		{"single-writer-home-only", 300, 50, 0, 40, 4, 1, true, "", PatternProducerConsumer},
		{"many-writers-no-locks", 100, 100, 0, 30, 4, 4, false, "", PatternGeneral},
		{"single-reader", 100, 100, 0, 0, 1, 1, false, "", PatternGeneral},
		// Sticky push family: a barrier-push protocol suppresses remote
		// read misses; their absence must not read as pattern exit.
		{"sticky-producer-consumer", 300, 100, 0, 0, 4, 4, true, PatternProducerConsumer, PatternProducerConsumer},
		{"sticky-home-write", 100, 300, 0, 0, 4, 4, true, PatternHomeWrite, PatternHomeWrite},
		{"sticky-crossover", 300, 100, 0, 0, 4, 4, true, PatternHomeWrite, PatternProducerConsumer},
		{"sticky-exit-on-locks", 100, 100, 8, 0, 4, 4, true, PatternProducerConsumer, PatternMigratory},
		{"no-sticky-under-sc", 300, 100, 0, 0, 4, 4, true, PatternGeneral, PatternGeneral},
	}
	for _, c := range cases {
		got := classifyPattern(c.reads, c.writes, c.locks, c.remoteReads, c.nReaders, c.nWriters, c.homeOnly, c.current)
		if got != c.want {
			t.Errorf("%s: classified %q, want %q", c.name, got, c.want)
		}
	}
}

// TestAdaptTargetTable pins pattern→protocol resolution from registry
// hints: adaptive protocols with a pattern become targets, opted-out and
// pattern-less protocols do not.
func TestAdaptTargetTable(t *testing.T) {
	mk := func(name string) func() Protocol {
		return func() Protocol { return &namedBase{name: name} }
	}
	reg := NewRegistry() // has "sc": Adaptive, PatternGeneral
	reg.MustRegister(Info{
		Name: "mig", New: mk("mig"),
		Adapt: AdaptHints{Adaptive: true, Pattern: PatternMigratory},
	})
	reg.MustRegister(Info{
		Name: "sourceonly", New: mk("sourceonly"),
		Adapt: AdaptHints{Adaptive: true}, // no pattern: never a target
	})
	reg.MustRegister(Info{
		Name: "optout", New: mk("optout"),
	})
	tt := adaptTargetTable(reg)
	want := map[string]string{
		PatternGeneral:   "sc",
		PatternMigratory: "mig",
	}
	if len(tt) != len(want) {
		t.Fatalf("target table %v, want %v", tt, want)
	}
	for pat, name := range want {
		if tt[pat] != name {
			t.Errorf("pattern %q resolves to %q, want %q", pat, tt[pat], name)
		}
	}
}

// TestAdaptConfigDefaults pins withDefaults, including the negative-
// cooldown and negative-margin escape hatches.
func TestAdaptConfigDefaults(t *testing.T) {
	d := AdaptConfig{}.withDefaults()
	if d.EpochBarriers != 4 || d.Hysteresis != 3 || d.Cooldown != 2 || d.MinOps != 64 || d.RollbackMargin != 1.25 {
		t.Fatalf("zero-value defaults = %+v", d)
	}
	e := AdaptConfig{EpochBarriers: 1, Hysteresis: 1, Cooldown: -1, MinOps: 1, RollbackMargin: -1}.withDefaults()
	if e.EpochBarriers != 1 || e.Hysteresis != 1 || e.Cooldown != 0 || e.MinOps != 1 || e.RollbackMargin != 0 {
		t.Fatalf("explicit config normalized to %+v", e)
	}
}

// slugProto is sequentially consistent with an artificial per-write
// stall: an adaptation target that is strictly worse than what it
// replaces, for exercising the controller's rollback path.
type slugProto struct {
	SCProtocol
	stall time.Duration
}

func (s *slugProto) Name() string { return "slug" }
func (s *slugProto) StartWrite(ctx *Ctx, r *Region) {
	time.Sleep(s.stall)
	s.SCProtocol.StartWrite(ctx, r)
}

// TestAdaptRollback: the classifier points the controller at a protocol
// that turns out slower than the one it replaced. The probation epoch
// after the switch must reverse it — back to the original protocol —
// and the misleading pattern must stay retired: later epochs with the
// same signature may not re-switch.
func TestAdaptRollback(t *testing.T) {
	const stall = 50 * time.Millisecond
	reg := NewRegistry()
	reg.MustRegister(Info{
		Name:  "slug",
		New:   func() Protocol { return &slugProto{stall: stall} },
		Adapt: AdaptHints{Adaptive: true, Pattern: PatternMigratory},
	})
	cl, err := NewCluster(Options{
		Procs:    2,
		Registry: reg,
		Adapt: &AdaptConfig{
			EpochBarriers: 1,
			Hysteresis:    1,
			Cooldown:      -1, // probation epoch immediately follows the switch
			MinOps:        1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const epochs = 6
	err = cl.Run(func(p *Proc) error {
		sp := p.DefaultSpace()
		id := p.BroadcastID(0, func() RegionID {
			if p.ID() != 0 {
				return 0
			}
			return p.GMalloc(sp, 8)
		}())
		r := p.Map(id)
		// Every epoch is lock-mediated writing — the migratory
		// signature — so the controller switches to slug, pays for it,
		// rolls back, and must then resist the identical signal.
		for range [epochs]struct{}{} {
			p.Lock(r)
			p.StartWrite(r)
			r.Data.SetInt64(0, r.Data.Int64(0)+1)
			p.EndWrite(r)
			p.Unlock(r)
			p.Barrier(sp)
		}
		p.Unmap(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	adapt := cl.Metrics().Adapt
	if len(adapt) != 1 {
		t.Fatalf("adapt stats for %d spaces, want 1", len(adapt))
	}
	st := adapt[0]
	if st.Protocol != "sc" {
		t.Errorf("final protocol %q, want rollback to %q", st.Protocol, "sc")
	}
	if st.Rollbacks != 1 {
		t.Errorf("rollbacks = %d, want 1", st.Rollbacks)
	}
	// Exactly one forward switch and its reversal: the retired pattern
	// must not have earned a third.
	if st.Switches != 2 {
		t.Errorf("switches = %d, want 2 (switch + rollback)", st.Switches)
	}
}
