package core

import "testing"

// namedBase is a no-op protocol with a name, for registry tests.
type namedBase struct {
	Base
	name string
}

func (n *namedBase) Name() string { return n.name }

// TestClassifyPattern pins the classifier's decision table: each row is
// one epoch's cluster-wide feature vector and the label it must map to.
func TestClassifyPattern(t *testing.T) {
	cases := []struct {
		name                                                  string
		reads, writes, locks, remoteReads, nReaders, nWriters int64
		homeOnly                                              bool
		current                                               string
		want                                                  string
	}{
		{"read-only", 100, 0, 0, 10, 4, 0, true, "", PatternGeneral},
		{"lock-mediated", 10, 10, 8, 2, 4, 4, false, "", PatternMigratory},
		{"locks-without-writes", 100, 0, 8, 2, 4, 0, true, "", PatternGeneral},
		{"producer-consumer", 300, 100, 0, 50, 4, 4, true, "", PatternProducerConsumer},
		{"home-write", 100, 300, 0, 20, 4, 4, true, "", PatternHomeWrite},
		{"home-only-no-remote-readers", 100, 300, 0, 0, 4, 4, true, "", PatternGeneral},
		{"single-writer", 300, 50, 0, 40, 4, 1, false, "", PatternSingleWriter},
		{"single-writer-home-only", 300, 50, 0, 40, 4, 1, true, "", PatternProducerConsumer},
		{"many-writers-no-locks", 100, 100, 0, 30, 4, 4, false, "", PatternGeneral},
		{"single-reader", 100, 100, 0, 0, 1, 1, false, "", PatternGeneral},
		// Sticky push family: a barrier-push protocol suppresses remote
		// read misses; their absence must not read as pattern exit.
		{"sticky-producer-consumer", 300, 100, 0, 0, 4, 4, true, PatternProducerConsumer, PatternProducerConsumer},
		{"sticky-home-write", 100, 300, 0, 0, 4, 4, true, PatternHomeWrite, PatternHomeWrite},
		{"sticky-crossover", 300, 100, 0, 0, 4, 4, true, PatternHomeWrite, PatternProducerConsumer},
		{"sticky-exit-on-locks", 100, 100, 8, 0, 4, 4, true, PatternProducerConsumer, PatternMigratory},
		{"no-sticky-under-sc", 300, 100, 0, 0, 4, 4, true, PatternGeneral, PatternGeneral},
	}
	for _, c := range cases {
		got := classifyPattern(c.reads, c.writes, c.locks, c.remoteReads, c.nReaders, c.nWriters, c.homeOnly, c.current)
		if got != c.want {
			t.Errorf("%s: classified %q, want %q", c.name, got, c.want)
		}
	}
}

// TestAdaptTargetTable pins pattern→protocol resolution from registry
// hints: adaptive protocols with a pattern become targets, opted-out and
// pattern-less protocols do not.
func TestAdaptTargetTable(t *testing.T) {
	mk := func(name string) func() Protocol {
		return func() Protocol { return &namedBase{name: name} }
	}
	reg := NewRegistry() // has "sc": Adaptive, PatternGeneral
	reg.MustRegister(Info{
		Name: "mig", New: mk("mig"),
		Adapt: AdaptHints{Adaptive: true, Pattern: PatternMigratory},
	})
	reg.MustRegister(Info{
		Name: "sourceonly", New: mk("sourceonly"),
		Adapt: AdaptHints{Adaptive: true}, // no pattern: never a target
	})
	reg.MustRegister(Info{
		Name: "optout", New: mk("optout"),
	})
	tt := adaptTargetTable(reg)
	want := map[string]string{
		PatternGeneral:   "sc",
		PatternMigratory: "mig",
	}
	if len(tt) != len(want) {
		t.Fatalf("target table %v, want %v", tt, want)
	}
	for pat, name := range want {
		if tt[pat] != name {
			t.Errorf("pattern %q resolves to %q, want %q", pat, tt[pat], name)
		}
	}
}

// TestAdaptConfigDefaults pins withDefaults, including the negative-
// cooldown escape hatch.
func TestAdaptConfigDefaults(t *testing.T) {
	d := AdaptConfig{}.withDefaults()
	if d.EpochBarriers != 4 || d.Hysteresis != 3 || d.Cooldown != 2 || d.MinOps != 64 {
		t.Fatalf("zero-value defaults = %+v", d)
	}
	e := AdaptConfig{EpochBarriers: 1, Hysteresis: 1, Cooldown: -1, MinOps: 1}.withDefaults()
	if e.EpochBarriers != 1 || e.Hysteresis != 1 || e.Cooldown != 0 || e.MinOps != 1 {
		t.Fatalf("explicit config normalized to %+v", e)
	}
}
