package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/acedsm/ace/internal/trace"
)

// TestMetricsParityWithOpStats runs a workload touching every
// instrumented primitive and checks the new per-space metrics agree with
// the legacy OpStats counters on the same run.
func TestMetricsParityWithOpStats(t *testing.T) {
	cl, err := NewCluster(Options{Procs: 4, Trace: &trace.Config{Metrics: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *Proc) error {
		sp, err := p.NewSpace("sc")
		if err != nil {
			return err
		}
		var id RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, 16)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		for i := 0; i < 10; i++ {
			p.Lock(r)
			p.StartWrite(r)
			r.Data.SetInt64(0, r.Data.Int64(0)+1)
			p.EndWrite(r)
			p.Unlock(r)
		}
		p.Barrier(sp)
		p.StartRead(r)
		got := r.Data.Int64(0)
		p.EndRead(r)
		if got != 40 {
			return fmt.Errorf("count = %d, want 40", got)
		}
		if err := p.ChangeProtocol(sp, "sc"); err != nil {
			return err
		}
		p.Unmap(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m := cl.Metrics()
	// Exact counts from the workload: 4 procs × 10 locked increments.
	wants := []struct {
		op   trace.Op
		want uint64
	}{
		{trace.OpGMalloc, 1},
		{trace.OpMap, 4},
		{trace.OpUnmap, 4},
		{trace.OpStartWrite, 40},
		{trace.OpEndWrite, 40},
		{trace.OpLock, 40},
		{trace.OpUnlock, 40},
		{trace.OpStartRead, 4},
		{trace.OpEndRead, 4},
	}
	for _, pr := range wants {
		if got := m.Ops.Get(pr.op); got != pr.want {
			t.Errorf("%v: metrics %d != want %d", pr.op, got, pr.want)
		}
	}
	// Every operation's latency histogram count matches its op count.
	for op := trace.Op(0); op < trace.NumOps; op++ {
		if h := m.OpLatency[op]; h.Count != m.Ops.Get(op) {
			t.Errorf("%v: latency count %d != op count %d", op, h.Count, m.Ops.Get(op))
		}
	}
	// Per-proc snapshots sum to the cluster aggregate.
	var perProc uint64
	for _, p := range cl.procs {
		perProc += p.Snapshot().Ops.Total()
	}
	if perProc != m.Ops.Total() {
		t.Errorf("per-proc sum %d != cluster total %d", perProc, m.Ops.Total())
	}
	// Spaces: default space 0 plus the collectively created space 1.
	if len(m.Spaces) != 2 || m.Spaces[1].Protocol != "sc" {
		t.Errorf("spaces: %+v", m.Spaces)
	}
	if m.Net.MsgsSent == 0 || m.Net.MsgsSent != m.Net.MsgsRecv {
		t.Errorf("net totals inconsistent: %+v", m.Net)
	}
	if m.Net.Deliver.Count == 0 {
		t.Error("no send→deliver latency samples with metrics enabled")
	}
}

// TestSnapshotDuringRun reads metrics concurrently with the processors'
// execution; under -race this checks the snapshot path against the
// bracket hot path.
func TestSnapshotDuringRun(t *testing.T) {
	cl, err := NewCluster(Options{Procs: 4, Trace: &trace.Config{Metrics: true, Events: 128}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = cl.Metrics()
				_ = cl.TraceEvents()
			}
		}
	}()
	err = cl.Run(func(p *Proc) error {
		var id RegionID
		if p.ID() == 0 {
			id = p.GMalloc(p.DefaultSpace(), 8)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		for i := 0; i < 200; i++ {
			p.StartWrite(r)
			p.EndWrite(r)
			p.StartRead(r)
			p.EndRead(r)
		}
		p.GlobalBarrier()
		return nil
	})
	close(stop)
	reader.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := cl.Metrics().Ops.Get(trace.OpStartWrite); got != 4*200 {
		t.Errorf("start_write = %d, want %d", got, 4*200)
	}
	if len(cl.TraceEvents()) == 0 {
		t.Error("no events retained")
	}
}
