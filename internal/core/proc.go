package core

import (
	"fmt"
	"sync"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/memory"
	"github.com/acedsm/ace/internal/trace"
)

// Proc is one logical processor's handle on the runtime. All methods are
// called from the processor's single application thread (the SPMD model);
// message handlers run on the processor's pump goroutine and synchronize
// with the application thread through the runtime mutex.
type Proc struct {
	id  amnet.NodeID
	cl  *Cluster
	ep  amnet.Endpoint
	ctx *Ctx

	mu      sync.Mutex
	regions memory.Table[*Region]
	nextSeq uint64
	spaces  []*Space

	waiters    map[uint64]*waiter
	nextWaiter uint64

	// Barrier state. barGen counts this processor's barrier arrivals;
	// barArr (node 0 only) maps generation to arrivals so far.
	barGen uint64
	barArr map[uint64][]PendingReq

	// Collective state. collSeq tags collectives in program order;
	// collGot buffers payloads that arrive before the local thread asks;
	// collWait maps tag to a waiter; collAcc (node 0 only) accumulates
	// reduction contributions.
	collSeq  uint64
	collGot  map[uint64][]byte
	collWait map[uint64]uint64
	collAcc  map[uint64]*collAcc

	// fabricCopies is true when the endpoint's Send copies the payload
	// before returning (amnet.PayloadCopier), letting the runtime pass
	// region data to Send without a defensive clone of its own.
	fabricCopies bool

	stats OpStats
	rec   *trace.Recorder
}

type waiter struct{ ch chan amnet.Msg }

// collAcc accumulates reduction contributions, indexed by source
// processor so the combining order is deterministic (floating-point sums
// must not depend on message arrival order).
type collAcc struct {
	vals  [][]byte
	count int
}

func newProc(c *Cluster, ep amnet.Endpoint) *Proc {
	p := &Proc{
		id:       ep.ID(),
		cl:       c,
		ep:       ep,
		waiters:  make(map[uint64]*waiter),
		collGot:  make(map[uint64][]byte),
		collWait: make(map[uint64]uint64),
		rec:      trace.NewRecorder(int(ep.ID()), c.opts.Trace),
	}
	p.ctx = &Ctx{p: p}
	if pc, ok := ep.(amnet.PayloadCopier); ok && pc.CopiesPayloadOnSend() {
		p.fabricCopies = true
	}
	if p.id == 0 {
		p.barArr = make(map[uint64][]PendingReq)
		p.collAcc = make(map[uint64]*collAcc)
	}
	p.registerHandlers()
	// The default space (index 0) exists on every processor from the
	// start, carrying the cluster's default protocol.
	p.mu.Lock()
	p.addSpace(c.opts.DefaultProtocol)
	p.mu.Unlock()
	return p
}

// ID returns this processor's id.
func (p *Proc) ID() int { return int(p.id) }

// Procs returns the cluster size.
func (p *Proc) Procs() int { return p.cl.Procs() }

// Cluster returns the owning cluster.
func (p *Proc) Cluster() *Cluster { return p.cl }

// DefaultSpace returns the predefined space with the cluster's default
// protocol (sequentially consistent unless configured otherwise).
func (p *Proc) DefaultSpace() *Space {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spaces[0]
}

// Stats returns a copy of this processor's operation counters.
//
// Deprecated: use Snapshot, which carries the same counts keyed by
// space and protocol plus invocation latency (when Options.Trace
// enables them) and this processor's network traffic.
func (p *Proc) Stats() OpStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Snapshot returns this processor's observability snapshot: per-space
// operation counts and latency histograms (populated when Options.Trace
// enabled metrics) plus this endpoint's traffic counters (always live).
// It may be called concurrently with the processor's execution; the ops
// half is then a momentary view.
func (p *Proc) Snapshot() trace.Metrics {
	m := p.rec.Snapshot()
	m.Net = p.ep.Stats().Snapshot()
	return m
}

// addSpace creates a space locally. Caller holds p.mu and guarantees the
// collective discipline (all processors create spaces in the same order).
func (p *Proc) addSpace(protoName string) *Space {
	info, ok := p.cl.reg.Lookup(protoName)
	if !ok {
		panic(fmt.Sprintf("core: unknown protocol %q", protoName))
	}
	sp := &Space{
		ID:        len(p.spaces),
		ProtoName: protoName,
		Proto:     info.New(),
		proc:      p,
	}
	p.spaces = append(p.spaces, sp)
	p.rec.AddSpace(sp.ID, protoName)
	sp.Proto.InitSpace(p.ctx, sp)
	return sp
}

// NewSpace creates a new space governed by the named protocol. It is a
// collective operation: every processor must call it, in the same program
// order, with the same protocol name (verified at runtime).
func (p *Proc) NewSpace(protoName string) (*Space, error) {
	if _, ok := p.cl.reg.Lookup(protoName); !ok {
		return nil, fmt.Errorf("core: unknown protocol %q", protoName)
	}
	if err := p.verifyCollective("newspace:" + protoName); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.addSpace(protoName), nil
}

// GMalloc allocates a shared region of size bytes from sp. The calling
// processor becomes the region's home. The returned id is valid on every
// processor (communicate it with Broadcast or by storing it in another
// region).
func (p *Proc) GMalloc(sp *Space, size int) RegionID {
	if size <= 0 {
		panic(fmt.Sprintf("core: GMalloc size %d", size))
	}
	t := p.rec.Begin()
	p.mu.Lock()
	defer p.mu.Unlock()
	defer p.rec.End(trace.OpGMalloc, sp.ID, t)
	p.nextSeq++
	id := memory.MakeID(int32(p.id), p.nextSeq)
	r := &Region{
		ID:    id,
		Home:  p.id,
		Size:  size,
		Data:  make(memory.Data, size),
		Space: sp,
		Dir:   NewDirectory(),
	}
	p.regions.Put(id, r)
	p.stats.GMallocs++
	sp.Proto.RegionCreated(p.ctx, r)
	return id
}

// Map translates a region id into this processor's local view of the
// region, materializing it (fetching its metadata from the home) if this
// is the first encounter. The data is not necessarily valid until a
// StartRead or StartWrite.
func (p *Proc) Map(id RegionID) *Region {
	t := p.rec.Begin()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Maps++
	r := p.regions.Get(id)
	if r == nil {
		r = p.fetchRegion(id)
	}
	r.MapCount++
	r.Space.Proto.Map(p.ctx, r)
	p.rec.End(trace.OpMap, r.Space.ID, t)
	return r
}

// fetchRegion materializes a remote region, asking its home for metadata.
// Caller holds p.mu.
func (p *Proc) fetchRegion(id RegionID) *Region {
	if amnet.NodeID(id.Home()) == p.id {
		panic(fmt.Sprintf("core: proc %d: unknown home region %v", p.id, id))
	}
	seq := p.ctx.NewWaiter()
	p.ep.Send(amnet.Msg{Dst: amnet.NodeID(id.Home()), Handler: hLookup, A: uint64(id), B: seq})
	m := p.ctx.Wait(seq)
	// A protocol push may have materialized the region while we waited.
	if r := p.regions.Get(id); r != nil {
		return r
	}
	return p.materialize(id, int(m.A), int(m.C))
}

// materialize creates the local view of a region homed elsewhere. Caller
// holds p.mu.
func (p *Proc) materialize(id RegionID, size, spaceID int) *Region {
	if spaceID < 0 || spaceID >= len(p.spaces) {
		panic(fmt.Sprintf("core: proc %d: region %v names unknown space %d", p.id, id, spaceID))
	}
	r := &Region{
		ID:    id,
		Home:  amnet.NodeID(id.Home()),
		Size:  size,
		Data:  make(memory.Data, size),
		Space: p.spaces[spaceID],
	}
	p.regions.Put(id, r)
	r.Space.Proto.RegionCreated(p.ctx, r)
	return r
}

// Unmap releases one map of r. Cached data survives unmapping and remains
// under coherence (CRL-style unmapped-region caching).
func (p *Proc) Unmap(r *Region) {
	t := p.rec.Begin()
	p.mu.Lock()
	defer p.mu.Unlock()
	defer p.rec.End(trace.OpUnmap, r.Space.ID, t)
	p.stats.Unmaps++
	if r.MapCount <= 0 {
		panic(fmt.Sprintf("core: proc %d: unmap of unmapped region %v", p.id, r.ID))
	}
	r.MapCount--
	r.Space.Proto.Unmap(p.ctx, r)
}

// StartRead opens a read section on r. On return r.Data is valid for
// reading under the space's protocol.
func (p *Proc) StartRead(r *Region) {
	t := p.rec.Begin()
	p.mu.Lock()
	defer p.mu.Unlock()
	defer p.rec.End(trace.OpStartRead, r.Space.ID, t)
	p.stats.StartReads++
	r.Space.Proto.StartRead(p.ctx, r)
	r.Readers++
}

// EndRead closes a read section on r.
func (p *Proc) EndRead(r *Region) {
	t := p.rec.Begin()
	p.mu.Lock()
	defer p.mu.Unlock()
	defer p.rec.End(trace.OpEndRead, r.Space.ID, t)
	p.stats.EndReads++
	if r.Readers <= 0 {
		panic(fmt.Sprintf("core: proc %d: EndRead without StartRead on %v", p.id, r.ID))
	}
	r.Readers--
	r.Space.Proto.EndRead(p.ctx, r)
}

// StartWrite opens a write section on r. On return r.Data is valid for
// writing under the space's protocol.
func (p *Proc) StartWrite(r *Region) {
	t := p.rec.Begin()
	p.mu.Lock()
	defer p.mu.Unlock()
	defer p.rec.End(trace.OpStartWrite, r.Space.ID, t)
	p.stats.StartWrites++
	r.Space.Proto.StartWrite(p.ctx, r)
	r.Writers++
}

// EndWrite closes a write section on r.
func (p *Proc) EndWrite(r *Region) {
	t := p.rec.Begin()
	p.mu.Lock()
	defer p.mu.Unlock()
	defer p.rec.End(trace.OpEndWrite, r.Space.ID, t)
	p.stats.EndWrites++
	if r.Writers <= 0 {
		panic(fmt.Sprintf("core: proc %d: EndWrite without StartWrite on %v", p.id, r.ID))
	}
	r.Writers--
	r.Space.Proto.EndWrite(p.ctx, r)
}

// Barrier executes a barrier with the semantics of sp's protocol (for
// example, a static update protocol propagates updates here).
func (p *Proc) Barrier(sp *Space) {
	t := p.rec.Begin()
	p.mu.Lock()
	defer p.mu.Unlock()
	defer p.rec.End(trace.OpBarrier, sp.ID, t)
	p.stats.Barriers++
	sp.Proto.Barrier(p.ctx, sp)
}

// GlobalBarrier synchronizes all processors without protocol semantics.
func (p *Proc) GlobalBarrier() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ctx.DefaultBarrier()
}

// Lock acquires the region lock with the semantics of the region's
// protocol.
func (p *Proc) Lock(r *Region) {
	t := p.rec.Begin()
	p.mu.Lock()
	defer p.mu.Unlock()
	defer p.rec.End(trace.OpLock, r.Space.ID, t)
	p.stats.Locks++
	r.Space.Proto.Lock(p.ctx, r)
}

// Unlock releases the region lock.
func (p *Proc) Unlock(r *Region) {
	t := p.rec.Begin()
	p.mu.Lock()
	defer p.mu.Unlock()
	defer p.rec.End(trace.OpUnlock, r.Space.ID, t)
	p.stats.Unlocks++
	r.Space.Proto.Unlock(p.ctx, r)
}

// DropCopy asks r's protocol to discard the local cached copy if safe,
// reporting whether it did. Runtimes with bounded region caches use this
// for eviction.
func (p *Proc) DropCopy(r *Region) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if d, ok := r.Space.Proto.(Dropper); ok {
		return d.DropCopy(p.ctx, r)
	}
	return false
}

// ChangeProtocol changes sp's protocol. It is a collective operation. The
// semantics follow the paper: the old protocol flushes every region of the
// space to the base state (authoritative data at the home, no cached
// copies), then the new protocol is initialized.
func (p *Proc) ChangeProtocol(sp *Space, protoName string) error {
	info, ok := p.cl.reg.Lookup(protoName)
	if !ok {
		return fmt.Errorf("core: unknown protocol %q", protoName)
	}
	if err := p.verifyCollective(fmt.Sprintf("chgproto:%d:%s", sp.ID, protoName)); err != nil {
		return err
	}
	t := p.rec.Begin()
	p.mu.Lock()
	defer p.mu.Unlock()
	defer p.rec.End(trace.OpChangeProtocol, sp.ID, t)
	p.stats.ProtocolChanges++
	p.ctx.DefaultBarrier()
	sp.Proto.FlushSpace(p.ctx, sp)
	p.ctx.DefaultBarrier()
	// All data is now home-valid and no coherence traffic is in flight:
	// reset protocol-owned state.
	p.regions.ForEach(func(_ RegionID, r *Region) {
		if r.Space != sp {
			return
		}
		r.State = 0
		r.Flags = 0
		r.PState = nil
		if r.Dir != nil {
			if len(r.Dir.Waiting) != 0 || r.Dir.Busy {
				panic(fmt.Sprintf("core: proc %d: ChangeProtocol with busy directory on %v", p.id, r.ID))
			}
			r.Dir.ResetCoherence()
		}
	})
	sp.Proto = info.New()
	sp.ProtoName = protoName
	sp.Epoch++
	sp.PData = nil
	p.rec.SetProtocol(sp.ID, protoName)
	sp.Proto.InitSpace(p.ctx, sp)
	p.ctx.DefaultBarrier()
	return nil
}

// verifyCollective checks that every processor reached the same collective
// call: processor 0 broadcasts the tag and the others compare.
func (p *Proc) verifyCollective(tag string) error {
	got := p.Broadcast(0, []byte(tag))
	if string(got) != tag {
		return fmt.Errorf("core: proc %d: collective mismatch: local %q, proc 0 %q", p.id, tag, got)
	}
	return nil
}

// registerHandlers installs the runtime's message handlers. Handlers run
// on the pump goroutine and take p.mu.
func (p *Proc) registerHandlers() {
	p.ep.Register(hComplete, func(m amnet.Msg) {
		p.mu.Lock()
		defer p.mu.Unlock()
		p.ctx.Complete(m.B, m)
	})
	p.ep.Register(hLookup, func(m amnet.Msg) {
		p.mu.Lock()
		defer p.mu.Unlock()
		r := p.regions.Get(RegionID(m.A))
		if r == nil || !r.IsHome() {
			panic(fmt.Sprintf("core: proc %d: lookup of unknown region %v", p.id, RegionID(m.A)))
		}
		p.ep.Send(amnet.Msg{Dst: m.Src, Handler: hComplete, A: uint64(r.Size), B: m.B, C: uint64(r.Space.ID)})
	})
	p.ep.Register(hBarArrive, func(m amnet.Msg) {
		p.mu.Lock()
		defer p.mu.Unlock()
		p.barrierArrive(m)
	})
	p.ep.Register(hLockReq, func(m amnet.Msg) {
		p.mu.Lock()
		defer p.mu.Unlock()
		p.lockRequest(m)
	})
	p.ep.Register(hUnlockMsg, func(m amnet.Msg) {
		p.mu.Lock()
		defer p.mu.Unlock()
		p.unlockRequest(m)
	})
	p.ep.Register(hColl, func(m amnet.Msg) {
		p.mu.Lock()
		defer p.mu.Unlock()
		p.collDeliver(m)
		// collDeliver clones every payload it keeps (accumulator entries
		// and buffered broadcast values), so the wire buffer is free.
		amnet.Recycle(m.Payload)
	})
	p.ep.Register(hProto, func(m amnet.Msg) {
		p.mu.Lock()
		defer p.mu.Unlock()
		r := p.regions.Get(RegionID(m.A))
		var sp *Space
		if r != nil {
			sp = r.Space
		} else {
			spID := int(m.D)
			if spID < 0 || spID >= len(p.spaces) {
				panic(fmt.Sprintf("core: proc %d: protocol message for unknown space %d", p.id, spID))
			}
			sp = p.spaces[spID]
		}
		sp.Proto.Deliver(p.ctx, sp, r, m)
		// Deliver implementations consume the payload synchronously
		// (copy into region data, clone into deferred queues, or forward
		// through Send, which also copies); the wire buffer is free.
		amnet.Recycle(m.Payload)
	})
}

// Space is a named allocation arena with an associated protocol: the
// paper's central abstraction for binding protocols to data structures.
type Space struct {
	// ID is the space's index, identical on every processor (spaces are
	// created collectively).
	ID int
	// ProtoName is the current protocol's registered name.
	ProtoName string
	// Proto is this processor's instance of the protocol.
	Proto Protocol
	// Epoch increments on every ChangeProtocol.
	Epoch int
	// PData is arbitrary per-space protocol data (for example a static
	// update protocol's sharer lists).
	PData any

	proc *Proc
}

// OpStats counts runtime primitive invocations on one processor.
type OpStats struct {
	GMallocs        uint64
	Maps            uint64
	Unmaps          uint64
	StartReads      uint64
	EndReads        uint64
	StartWrites     uint64
	EndWrites       uint64
	Barriers        uint64
	Locks           uint64
	Unlocks         uint64
	ProtocolChanges uint64
}

// Add returns the element-wise sum of two OpStats.
func (s OpStats) Add(o OpStats) OpStats {
	return OpStats{
		GMallocs:        s.GMallocs + o.GMallocs,
		Maps:            s.Maps + o.Maps,
		Unmaps:          s.Unmaps + o.Unmaps,
		StartReads:      s.StartReads + o.StartReads,
		EndReads:        s.EndReads + o.EndReads,
		StartWrites:     s.StartWrites + o.StartWrites,
		EndWrites:       s.EndWrites + o.EndWrites,
		Barriers:        s.Barriers + o.Barriers,
		Locks:           s.Locks + o.Locks,
		Unlocks:         s.Unlocks + o.Unlocks,
		ProtocolChanges: s.ProtocolChanges + o.ProtocolChanges,
	}
}

// The Bare section operations invoke the protocol routine without the
// runtime's section pairing bookkeeping. Compiled code uses them when the
// matching bracket was a null handler the direct-dispatch pass deleted;
// the protocol's null declaration is its promise that it needs no open-
// section accounting at these points (the paper's runtime kept none).

// StartReadBare opens a read section without bookkeeping.
func (p *Proc) StartReadBare(r *Region) {
	t := p.rec.Begin()
	p.mu.Lock()
	defer p.mu.Unlock()
	defer p.rec.End(trace.OpStartRead, r.Space.ID, t)
	p.stats.StartReads++
	r.Space.Proto.StartRead(p.ctx, r)
}

// EndReadBare closes a read section without bookkeeping.
func (p *Proc) EndReadBare(r *Region) {
	t := p.rec.Begin()
	p.mu.Lock()
	defer p.mu.Unlock()
	defer p.rec.End(trace.OpEndRead, r.Space.ID, t)
	p.stats.EndReads++
	r.Space.Proto.EndRead(p.ctx, r)
}

// StartWriteBare opens a write section without bookkeeping.
func (p *Proc) StartWriteBare(r *Region) {
	t := p.rec.Begin()
	p.mu.Lock()
	defer p.mu.Unlock()
	defer p.rec.End(trace.OpStartWrite, r.Space.ID, t)
	p.stats.StartWrites++
	r.Space.Proto.StartWrite(p.ctx, r)
}

// EndWriteBare closes a write section without bookkeeping.
func (p *Proc) EndWriteBare(r *Region) {
	t := p.rec.Begin()
	p.mu.Lock()
	defer p.mu.Unlock()
	defer p.rec.End(trace.OpEndWrite, r.Space.ID, t)
	p.stats.EndWrites++
	r.Space.Proto.EndWrite(p.ctx, r)
}
