package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/memory"
	"github.com/acedsm/ace/internal/trace"
)

// Proc is one logical processor's handle on the runtime. All methods are
// called from the processor's single application thread (the SPMD model);
// message handlers run on the processor's pump goroutine.
//
// Concurrency model (see DESIGN.md for the full treatment). The former
// per-processor runtime mutex is decomposed so a bracket hit never
// contends with the coherence engine:
//
//   - Space.eng, one per space, is the engine lock: it protects the
//     space's protocol instance, every protocol-owned region field
//     (State, Flags, PState, Dir coherence state) of the space's
//     regions, and MapCount. Protocol routines and Deliver run under it.
//   - regMu protects the region table and the allocation sequence.
//   - wMu protects the waiter table.
//   - collMu protects the collective rendezvous maps (collGot,
//     collWait), the collective state shared between the application
//     thread and the pump. barGen and collSeq are
//     application-thread-private.
//   - barMu protects node 0's barrier arrival table (barArr) and accMu
//     node 0's reduction accumulators (collAcc). Both used to be
//     pump-private; with sharded dispatch (Options.DispatchLanes,
//     transport Lanes) handlers from different senders run concurrently,
//     so the per-sender FIFO that lane keying preserves no longer
//     implies whole-node handler serialization. The same goes for the
//     region lock queue, guarded by Directory.lockMu. Completions are
//     sent after the lock is released — a Send can block on transport
//     backpressure, and arrival processing must not stall behind it.
//   - spaceMu serializes space creation; lookup reads the atomic
//     spaces snapshot and never locks.
//   - Region.hot is the lock-free fast path: brackets on a region whose
//     protocol published a fast-path eligibility bit commit with one
//     CAS and never take eng (see region.go).
//
// Lock ordering: eng → {regMu, wMu, collMu}; collMu → wMu. A handler
// must never lock eng while holding regMu, and engine locks of two
// spaces never nest. barMu, accMu and Directory.lockMu are leaves:
// nothing is acquired under them.
type Proc struct {
	id  amnet.NodeID
	cl  *Cluster
	ep  amnet.Endpoint
	ctx *Ctx // proc-level ctx: no engine lock (collectives, lookups)

	// regMu guards the region table and the allocation sequence.
	regMu   sync.RWMutex
	regions memory.Table[*Region]
	nextSeq uint64

	// spaceMu serializes space creation and destruction. The table
	// itself is published as a copy-on-write snapshot so space lookup is
	// one atomic load. Freed slots are nil in the snapshot; spaceFree
	// holds their indices (ascending, so reuse is deterministic across
	// processors) and slotGen the per-slot generation, bumped at every
	// free so a recycled slot's new occupant never aliases a stale
	// SpaceRef. Both are identical on every processor because the space
	// lifecycle is collective.
	spaceMu   sync.Mutex
	spaces    atomic.Pointer[[]*Space]
	spaceFree []int
	slotGen   []uint64

	// wMu guards the waiter table and the retired tombstones (waiters
	// whose Wait failed; late completions for them are dropped).
	wMu        sync.Mutex
	waiters    map[uint64]*waiter
	retired    map[uint64]struct{}
	nextWaiter uint64

	// Barrier state. barGen counts this processor's barrier arrivals
	// (application thread only); barArr (node 0 on the star topology,
	// under barMu) maps generation to arrivals so far — arrival handlers
	// from different senders run concurrently under sharded dispatch.
	// On the tree topology barTree (every node, under barMu) holds each
	// generation's subtree arrival state instead.
	barGen  uint64
	barMu   sync.Mutex
	barArr  map[uint64][]PendingReq
	barTree map[uint64]*treeBar

	// Binomial-tree neighbors (tree topology only): treeParent is -1 at
	// the root, and treeKids lists this rank's children in increasing
	// rank order. Fixed at creation.
	treeParent amnet.NodeID
	treeKids   []amnet.NodeID

	// Collective state. collSeq tags collectives in program order
	// (application thread only); collGot buffers payloads that arrive
	// before the local thread asks and collWait maps tag to a waiter
	// (both under collMu); collAcc (under accMu) accumulates reduction
	// contributions — at node 0 on the star, at every interior node on
	// the tree.
	collMu   sync.Mutex
	collSeq  uint64
	collGot  map[uint64][]byte
	collWait map[uint64]uint64
	accMu    sync.Mutex
	collAcc  map[uint64]*collAcc

	// fabricCopies is true when the endpoint's Send copies the payload
	// before returning (amnet.PayloadCopier), letting the runtime pass
	// region data to Send without a defensive clone of its own.
	fabricCopies bool

	// downCh is closed when the transport declares a peer lost
	// (amnet.PeerAware); downPeer then holds the peer's id. Blocked
	// synchronization waits select on it and fail with ErrPeerLost
	// instead of hanging forever. downMu guards the latch (downClosed)
	// so Cluster.Revive can re-arm it with a fresh channel — a plain
	// sync.Once could fire only for the first kill of the cluster's
	// lifetime. reviveEpoch counts revivals; it keys the out-of-band
	// resynchronization collective (application thread reads it, revive
	// writes it before Resume starts the thread).
	downCh      chan struct{}
	downMu      sync.Mutex
	downClosed  bool
	downPeer    atomic.Int32
	reviveEpoch uint64

	// ops counts runtime primitive invocations; fastOps the subset that
	// completed on the lock-free bracket fast path. Indexed by trace.Op.
	// Only the application thread increments them, so the atomic adds
	// are uncontended; atomics make Stats/FastHits safe to read
	// concurrently.
	ops     [trace.NumOps]atomic.Uint64
	fastOps [trace.NumOps]atomic.Uint64

	// coll counts collective rounds, hops and bytes plus aggregated
	// protocol frames (always on, lock-free; see trace.CollStats).
	coll trace.CollStats

	rec *trace.Recorder
}

type waiter struct{ ch chan amnet.Msg }

// collAcc accumulates reduction contributions, slotted so the combining
// order is deterministic (floating-point sums must not depend on
// message arrival order): by source rank at the star root, by canonical
// position (own value, then children in rank order) at a tree node.
type collAcc struct {
	vals   [][]byte
	count  int
	expect int
}

func newProc(c *Cluster, ep amnet.Endpoint) *Proc {
	p := &Proc{
		id:       ep.ID(),
		cl:       c,
		ep:       ep,
		waiters:  make(map[uint64]*waiter),
		collGot:  make(map[uint64][]byte),
		collWait: make(map[uint64]uint64),
		rec:      trace.NewRecorder(int(ep.ID()), c.opts.Trace),
	}
	p.ctx = &Ctx{p: p}
	p.downCh = make(chan struct{})
	p.downPeer.Store(-1)
	if pc, ok := ep.(amnet.PayloadCopier); ok && pc.CopiesPayloadOnSend() {
		p.fabricCopies = true
	}
	if pa, ok := ep.(amnet.PeerAware); ok {
		pa.SetPeerDownHandler(p.peerDown)
	}
	p.treeParent = -1
	if c.collTree {
		if p.id != 0 {
			p.treeParent = amnet.NodeID(treeParentOf(int(p.id)))
		}
		for _, k := range treeKidsOf(int(p.id), c.nodes) {
			p.treeKids = append(p.treeKids, amnet.NodeID(k))
		}
		p.barTree = make(map[uint64]*treeBar)
		p.collAcc = make(map[uint64]*collAcc)
	} else if p.id == 0 {
		p.barArr = make(map[uint64][]PendingReq)
		p.collAcc = make(map[uint64]*collAcc)
	}
	p.registerHandlers()
	// The default space (index 0) exists on every processor from the
	// start, carrying the cluster's default protocol.
	p.addSpace(c.opts.DefaultProtocol)
	return p
}

// peerDown records the first lost peer and releases every blocked
// synchronization wait (current and future) into the ErrPeerLost path.
// It is called from a transport goroutine and never blocks.
func (p *Proc) peerDown(peer amnet.NodeID) {
	p.downMu.Lock()
	if p.downClosed {
		p.downMu.Unlock()
		return
	}
	p.downClosed = true
	p.downPeer.Store(int32(peer))
	close(p.downCh)
	p.downMu.Unlock()
	// Purge pending collective and lock state on a fresh goroutine:
	// this callback runs on a transport goroutine that must not
	// block, and the purge takes runtime locks a handler may hold.
	// downPeer is visibly set before the purge starts, and arrival
	// handlers drop messages once it is (checked under the same
	// locks), so the purged tables cannot repopulate.
	go p.purgeSyncState()
}

// ID returns this processor's id.
func (p *Proc) ID() int { return int(p.id) }

// Procs returns the cluster size.
func (p *Proc) Procs() int { return p.cl.Procs() }

// Cluster returns the owning cluster.
func (p *Proc) Cluster() *Cluster { return p.cl }

// DefaultSpace returns the predefined space with the cluster's default
// protocol (sequentially consistent unless configured otherwise). Space
// lookup reads the atomic snapshot: it never contends with the pump.
func (p *Proc) DefaultSpace() *Space {
	return (*p.spaces.Load())[0]
}

// space returns the space with the given id, panicking on unknown or
// freed ids. Runtime wire handlers may use it because the collective
// space lifecycle guarantees no protocol traffic for a freed space is
// in flight (FreeSpace flushes and barriers before recycling the slot);
// anything fed by external input goes through SpaceByRef instead.
func (p *Proc) space(id int) *Space {
	sps := p.spaces.Load()
	if sps == nil || id < 0 || id >= len(*sps) {
		panic(fmt.Sprintf("core: proc %d: unknown space %d", p.id, id))
	}
	sp := (*sps)[id]
	if sp == nil {
		panic(fmt.Sprintf("core: proc %d: space %d has been freed", p.id, id))
	}
	return sp
}

// FastHits returns how many invocations of each operation completed on
// the lock-free bracket fast path (always a subset of the counts in
// Stats/Snapshot).
func (p *Proc) FastHits() trace.OpCounts {
	var c trace.OpCounts
	for i := range c {
		c[i] = p.fastOps[i].Load()
	}
	return c
}

// Snapshot returns this processor's observability snapshot: per-space
// operation counts and latency histograms (populated when Options.Trace
// enabled metrics) plus this endpoint's traffic counters (always live).
// It may be called concurrently with the processor's execution; the ops
// half is then a momentary view.
func (p *Proc) Snapshot() trace.Metrics {
	m := p.rec.Snapshot()
	if sps := p.spaces.Load(); sps != nil {
		for _, sp := range *sps {
			if sp == nil {
				continue
			}
			if st := sp.adapt.Load(); st != nil {
				if s := st.pub.Load(); s != nil {
					m.Adapt = append(m.Adapt, *s)
				}
			}
		}
	}
	m.Net = p.ep.Stats().Snapshot()
	m.Coll = p.coll.Snapshot()
	return m
}

// addSpace creates a space locally, reusing the lowest freed table slot
// if one exists. Callers guarantee the collective discipline (all
// processors create and free spaces in the same order), which keeps the
// chosen slot and its generation identical everywhere.
func (p *Proc) addSpace(protoName string) *Space {
	info, ok := p.cl.reg.Lookup(protoName)
	if !ok {
		panic(fmt.Sprintf("core: unknown protocol %q", protoName))
	}
	p.spaceMu.Lock()
	var cur []*Space
	if sps := p.spaces.Load(); sps != nil {
		cur = *sps
	}
	slot := -1
	if len(p.spaceFree) > 0 {
		slot = p.spaceFree[0]
		p.spaceFree = p.spaceFree[1:]
	}
	grown := make([]*Space, len(cur), len(cur)+1)
	copy(grown, cur)
	if slot < 0 {
		slot = len(cur)
		grown = append(grown, nil)
	}
	for len(p.slotGen) <= slot {
		p.slotGen = append(p.slotGen, 0)
	}
	sp := &Space{
		ID:        slot,
		Gen:       p.slotGen[slot],
		ProtoName: protoName,
		Proto:     info.New(),
		proc:      p,
	}
	sp.ctx = &Ctx{p: p, eng: &sp.eng}
	sp.fp, _ = sp.Proto.(FastPather)
	grown[slot] = sp
	p.spaces.Store(&grown)
	p.spaceMu.Unlock()
	p.rec.AddSpace(sp.ID, protoName)
	// On a recycled slot AddSpace is a no-op (counters accumulate per
	// slot); record the occupant's protocol explicitly.
	p.rec.SetProtocol(sp.ID, protoName)
	sp.eng.Lock()
	sp.Proto.InitSpace(sp.ctx, sp)
	sp.eng.Unlock()
	return sp
}

// NewSpace creates a new space governed by the named protocol. It is a
// collective operation: every processor must call it, in the same program
// order, with the same protocol name (verified at runtime).
func (p *Proc) NewSpace(protoName string) (*Space, error) {
	if _, ok := p.cl.reg.Lookup(protoName); !ok {
		return nil, fmt.Errorf("core: unknown protocol %q", protoName)
	}
	if err := p.verifyCollective("newspace:" + protoName); err != nil {
		return nil, err
	}
	return p.addSpace(protoName), nil
}

// GMalloc allocates a shared region of size bytes from sp. The calling
// processor becomes the region's home. The returned id is valid on every
// processor (communicate it with Broadcast or by storing it in another
// region). It panics on an invalid size or a freed space — programmer
// errors in SPMD code; boundaries that feed client-derived input through
// use GMallocE, which returns the error instead.
func (p *Proc) GMalloc(sp *Space, size int) RegionID {
	id, err := p.GMallocE(sp, size)
	if err != nil {
		panic(fmt.Sprintf("core: GMalloc: %v", err))
	}
	return id
}

// GMallocE is GMalloc with the validity checks surfaced as errors: a
// non-positive or oversized (MaxRegionSize) size fails with ErrBadSize,
// allocation from a freed space with ErrStaleSpace. It never panics on
// bad input, so it is safe at boundaries where sizes derive from
// untrusted client frames.
func (p *Proc) GMallocE(sp *Space, size int) (RegionID, error) {
	if size <= 0 || size > MaxRegionSize {
		return 0, &BadSizeError{Size: size}
	}
	if sp.dead.Load() {
		return 0, &StaleSpaceError{Ref: sp.Ref()}
	}
	t := p.rec.Begin()
	p.ops[trace.OpGMalloc].Add(1)
	p.regMu.Lock()
	p.nextSeq++
	id := memory.MakeID(int32(p.id), p.nextSeq)
	r := &Region{
		ID:    id,
		Home:  p.id,
		Size:  size,
		Data:  make(memory.Data, size),
		Space: sp,
		Dir:   NewDirectory(),
	}
	p.regions.Put(id, r)
	p.regMu.Unlock()
	sp.eng.Lock()
	sp.Proto.RegionCreated(sp.ctx, r)
	sp.refreshFast(r)
	sp.eng.Unlock()
	p.rec.End(trace.OpGMalloc, sp.ID, t)
	return id, nil
}

// Map translates a region id into this processor's local view of the
// region, materializing it (fetching its metadata from the home) if this
// is the first encounter. The data is not necessarily valid until a
// StartRead or StartWrite.
func (p *Proc) Map(id RegionID) *Region {
	t := p.rec.Begin()
	p.ops[trace.OpMap].Add(1)
	p.regMu.RLock()
	r := p.regions.Get(id)
	p.regMu.RUnlock()
	if r == nil {
		r = p.fetchRegion(id)
	}
	sp := r.Space
	sp.eng.Lock()
	r.MapCount++
	sp.Proto.Map(sp.ctx, r)
	sp.refreshFast(r)
	sp.eng.Unlock()
	p.rec.End(trace.OpMap, sp.ID, t)
	return r
}

// fetchRegion materializes a remote region, asking its home for metadata.
func (p *Proc) fetchRegion(id RegionID) *Region {
	if amnet.NodeID(id.Home()) == p.id {
		panic(fmt.Sprintf("core: proc %d: unknown home region %v", p.id, id))
	}
	seq := p.ctx.NewWaiter()
	p.ep.Send(amnet.Msg{Dst: amnet.NodeID(id.Home()), Handler: hLookup, A: uint64(id), B: seq})
	m := p.ctx.Wait(seq)
	sp := p.space(int(m.C))
	sp.eng.Lock()
	r := p.materializeAt(id, int(m.A), sp, amnet.NodeID(m.D))
	sp.eng.Unlock()
	return r
}

// materialize creates the local view of a region homed elsewhere at the
// home its id encodes, returning the existing view if a protocol push
// raced it in. Caller holds sp's engine lock.
func (p *Proc) materialize(id RegionID, size int, sp *Space) *Region {
	return p.materializeAt(id, size, sp, amnet.NodeID(id.Home()))
}

// materializeAt is materialize with an explicit home: a lookup reply
// names the region's current home, which after a MigrateHome differs
// from the allocator the id encodes.
func (p *Proc) materializeAt(id RegionID, size int, sp *Space, home amnet.NodeID) *Region {
	p.regMu.Lock()
	if r := p.regions.Get(id); r != nil {
		p.regMu.Unlock()
		return r
	}
	r := &Region{
		ID:    id,
		Home:  home,
		Size:  size,
		Data:  make(memory.Data, size),
		Space: sp,
	}
	p.regions.Put(id, r)
	p.regMu.Unlock()
	sp.Proto.RegionCreated(sp.ctx, r)
	sp.refreshFast(r)
	return r
}

// Unmap releases one map of r. Cached data survives unmapping and remains
// under coherence (CRL-style unmapped-region caching).
func (p *Proc) Unmap(r *Region) {
	t := p.rec.Begin()
	p.ops[trace.OpUnmap].Add(1)
	sp := r.Space
	sp.eng.Lock()
	if r.MapCount <= 0 {
		panic(fmt.Sprintf("core: proc %d: unmap of unmapped region %v", p.id, r.ID))
	}
	r.MapCount--
	sp.Proto.Unmap(sp.ctx, r)
	sp.refreshFast(r)
	sp.eng.Unlock()
	p.rec.End(trace.OpUnmap, sp.ID, t)
}

// StartRead opens a read section on r. On return r.Data is valid for
// reading under the space's protocol.
//
// The fast path: when r's protocol has published the FastRead
// eligibility bit, opening the section is a single CAS on the region's
// hot word — no lock, no protocol invocation. Any interference (bit
// withdrawn by the engine, concurrent word update) falls back to the
// engine-locked slow path.
func (p *Proc) StartRead(r *Region) {
	t := p.rec.Begin()
	p.ops[trace.OpStartRead].Add(1)
	if r.tryFastStart(rwFastRead, rwReaderShift) {
		p.fastOps[trace.OpStartRead].Add(1)
		p.rec.FastHit(trace.OpStartRead, r.Space.ID)
		p.rec.End(trace.OpStartRead, r.Space.ID, t)
		return
	}
	sp := r.Space
	sp.eng.Lock()
	sp.Proto.StartRead(sp.ctx, r)
	r.adjSections(1, rwReaderShift)
	sp.refreshFast(r)
	sp.eng.Unlock()
	if !r.IsHome() {
		p.rec.RemoteMiss(trace.OpStartRead, sp.ID)
	}
	p.rec.End(trace.OpStartRead, sp.ID, t)
}

// EndRead closes a read section on r.
func (p *Proc) EndRead(r *Region) {
	t := p.rec.Begin()
	p.ops[trace.OpEndRead].Add(1)
	if r.tryFastEnd(rwFastRead, rwReaderShift) {
		p.fastOps[trace.OpEndRead].Add(1)
		p.rec.FastHit(trace.OpEndRead, r.Space.ID)
		p.rec.End(trace.OpEndRead, r.Space.ID, t)
		return
	}
	sp := r.Space
	sp.eng.Lock()
	if r.Readers() <= 0 {
		panic(fmt.Sprintf("core: proc %d: EndRead without StartRead on %v", p.id, r.ID))
	}
	r.adjSections(-1, rwReaderShift)
	sp.Proto.EndRead(sp.ctx, r)
	sp.refreshFast(r)
	sp.eng.Unlock()
	p.rec.End(trace.OpEndRead, sp.ID, t)
}

// StartWrite opens a write section on r. On return r.Data is valid for
// writing under the space's protocol. Fast path as in StartRead, gated
// on FastWrite.
func (p *Proc) StartWrite(r *Region) {
	t := p.rec.Begin()
	p.ops[trace.OpStartWrite].Add(1)
	if r.tryFastStart(rwFastWrite, rwWriterShift) {
		p.fastOps[trace.OpStartWrite].Add(1)
		p.rec.FastHit(trace.OpStartWrite, r.Space.ID)
		p.rec.End(trace.OpStartWrite, r.Space.ID, t)
		return
	}
	sp := r.Space
	sp.eng.Lock()
	sp.Proto.StartWrite(sp.ctx, r)
	r.adjSections(1, rwWriterShift)
	sp.refreshFast(r)
	sp.eng.Unlock()
	if !r.IsHome() {
		p.rec.RemoteMiss(trace.OpStartWrite, sp.ID)
	}
	p.rec.End(trace.OpStartWrite, sp.ID, t)
}

// EndWrite closes a write section on r.
func (p *Proc) EndWrite(r *Region) {
	t := p.rec.Begin()
	p.ops[trace.OpEndWrite].Add(1)
	if r.tryFastEnd(rwFastWrite, rwWriterShift) {
		p.fastOps[trace.OpEndWrite].Add(1)
		p.rec.FastHit(trace.OpEndWrite, r.Space.ID)
		p.rec.End(trace.OpEndWrite, r.Space.ID, t)
		return
	}
	sp := r.Space
	sp.eng.Lock()
	if r.Writers() <= 0 {
		panic(fmt.Sprintf("core: proc %d: EndWrite without StartWrite on %v", p.id, r.ID))
	}
	r.adjSections(-1, rwWriterShift)
	sp.Proto.EndWrite(sp.ctx, r)
	sp.refreshFast(r)
	sp.eng.Unlock()
	p.rec.End(trace.OpEndWrite, sp.ID, t)
}

// Barrier executes a barrier with the semantics of sp's protocol (for
// example, a static update protocol propagates updates here). When the
// cluster runs with Options.Adapt, the adaptive controller evaluates the
// space here, after the barrier completes and the engine is released.
func (p *Proc) Barrier(sp *Space) {
	t := p.rec.Begin()
	p.ops[trace.OpBarrier].Add(1)
	sp.eng.Lock()
	sp.Proto.Barrier(sp.ctx, sp)
	sp.eng.Unlock()
	p.rec.End(trace.OpBarrier, sp.ID, t)
	if p.cl.adapt != nil {
		p.adaptTick(sp)
	}
}

// GlobalBarrier synchronizes all processors without protocol semantics.
// It is deliberately not a controller evaluation point: a program
// synchronizing through protocol-less barriers gives the controller no
// license to install a protocol whose coherence actions live in the
// space barrier (the push family acts there), so adaptation only ticks
// in Barrier, where the space's protocol barrier actually ran.
func (p *Proc) GlobalBarrier() {
	p.ctx.DefaultBarrier()
}

// Lock acquires the region lock with the semantics of the region's
// protocol.
func (p *Proc) Lock(r *Region) {
	t := p.rec.Begin()
	p.ops[trace.OpLock].Add(1)
	sp := r.Space
	sp.eng.Lock()
	sp.Proto.Lock(sp.ctx, r)
	sp.eng.Unlock()
	p.rec.End(trace.OpLock, sp.ID, t)
}

// Unlock releases the region lock.
func (p *Proc) Unlock(r *Region) {
	t := p.rec.Begin()
	p.ops[trace.OpUnlock].Add(1)
	sp := r.Space
	sp.eng.Lock()
	sp.Proto.Unlock(sp.ctx, r)
	sp.eng.Unlock()
	p.rec.End(trace.OpUnlock, sp.ID, t)
}

// DropCopy asks r's protocol to discard the local cached copy if safe,
// reporting whether it did. Runtimes with bounded region caches use this
// for eviction.
func (p *Proc) DropCopy(r *Region) bool {
	d, ok := r.Space.Proto.(Dropper)
	if !ok {
		return false
	}
	sp := r.Space
	sp.eng.Lock()
	dropped := d.DropCopy(sp.ctx, r)
	if dropped {
		sp.refreshFast(r)
	}
	sp.eng.Unlock()
	return dropped
}

// ChangeProtocol changes sp's protocol. It is a collective operation. The
// semantics follow the paper: the old protocol flushes every region of the
// space to the base state (authoritative data at the home, no cached
// copies), then the new protocol is initialized.
func (p *Proc) ChangeProtocol(sp *Space, protoName string) error {
	info, ok := p.cl.reg.Lookup(protoName)
	if !ok {
		return fmt.Errorf("core: unknown protocol %q", protoName)
	}
	if err := p.verifyCollective(fmt.Sprintf("chgproto:%d:%s", sp.ID, protoName)); err != nil {
		return err
	}
	t := p.rec.Begin()
	p.ops[trace.OpChangeProtocol].Add(1)
	p.ctx.DefaultBarrier()
	sp.eng.Lock()
	sp.Proto.FlushSpace(sp.ctx, sp)
	sp.eng.Unlock()
	p.ctx.DefaultBarrier()
	// All data is now home-valid and no coherence traffic is in flight:
	// reset protocol-owned state. Withdrawing the fast bits here covers
	// any left stale by the flush; the new protocol republishes lazily
	// as brackets take the slow path.
	sp.eng.Lock()
	for _, r := range p.regionList() {
		if r.Space != sp {
			continue
		}
		r.State = 0
		r.Flags = 0
		r.PState = nil
		r.publishFast(0)
		if r.Dir != nil {
			if len(r.Dir.Waiting) != 0 || r.Dir.Busy {
				panic(fmt.Sprintf("core: proc %d: ChangeProtocol with busy directory on %v", p.id, r.ID))
			}
			r.Dir.ResetCoherence()
		}
	}
	sp.Proto = info.New()
	sp.ProtoName = protoName
	sp.Epoch++
	sp.PData = nil
	sp.fp, _ = sp.Proto.(FastPather)
	p.rec.SetProtocol(sp.ID, protoName)
	sp.Proto.InitSpace(sp.ctx, sp)
	sp.eng.Unlock()
	p.ctx.DefaultBarrier()
	p.rec.End(trace.OpChangeProtocol, sp.ID, t)
	return nil
}

// regionList snapshots the region table under regMu so callers can
// iterate without holding the table lock across protocol callbacks.
func (p *Proc) regionList() []*Region {
	p.regMu.RLock()
	out := make([]*Region, 0, p.regions.Len())
	p.regions.ForEach(func(_ RegionID, r *Region) { out = append(out, r) })
	p.regMu.RUnlock()
	return out
}

// verifyCollective checks that every processor reached the same collective
// call: processor 0 broadcasts the tag and the others compare.
func (p *Proc) verifyCollective(tag string) error {
	got := p.Broadcast(0, []byte(tag))
	if string(got) != tag {
		return fmt.Errorf("core: proc %d: collective mismatch: local %q, proc 0 %q", p.id, tag, got)
	}
	return nil
}

// registerHandlers installs the runtime's message handlers. Handlers run
// on a pump goroutine — under sharded dispatch, handlers for different
// senders run on different pumps concurrently; each takes only the lock
// guarding the state it touches, so a directory transaction on one space
// never serializes against brackets, collectives, or other spaces.
func (p *Proc) registerHandlers() {
	p.ep.Register(hComplete, func(m amnet.Msg) {
		p.ctx.Complete(m.B, m)
	})
	p.ep.Register(hLookup, func(m amnet.Msg) {
		p.regMu.RLock()
		r := p.regions.Get(RegionID(m.A))
		p.regMu.RUnlock()
		if r == nil {
			panic(fmt.Sprintf("core: proc %d: lookup of unknown region %v", p.id, RegionID(m.A)))
		}
		// Size and Space are immutable after creation; Home is not
		// (MigrateHome), so read it under the engine and carry it in the
		// reply. Lookups are addressed to the region's original
		// allocator, which always retains a view and updates its Home at
		// every migration flip — so the requester materializes against
		// the current home even when this node no longer is it.
		sp := r.Space
		sp.eng.Lock()
		home := r.Home
		sp.eng.Unlock()
		p.ep.Send(amnet.Msg{Dst: m.Src, Handler: hComplete, A: uint64(r.Size), B: m.B, C: uint64(sp.ID), D: uint64(home)})
	})
	p.ep.Register(hBarArrive, func(m amnet.Msg) {
		p.barrierArrive(m) // node-0 state under barMu
	})
	p.ep.Register(hLockReq, func(m amnet.Msg) {
		p.lockRequest(m) // home directory state under Dir.lockMu
	})
	p.ep.Register(hUnlockMsg, func(m amnet.Msg) {
		p.unlockRequest(m) // home directory state under Dir.lockMu
	})
	p.ep.Register(hColl, func(m amnet.Msg) {
		p.collDeliver(m)
		// collDeliver clones every payload it keeps (accumulator entries
		// and buffered broadcast values), so the wire buffer is free.
		amnet.Recycle(m.Payload)
	})
	p.ep.Register(hProto, func(m amnet.Msg) {
		sp := p.space(int(m.D))
		sp.eng.Lock()
		p.regMu.RLock()
		r := p.regions.Get(RegionID(m.A))
		p.regMu.RUnlock()
		if r != nil {
			if r.Space != sp {
				panic(fmt.Sprintf("core: proc %d: protocol message for %v names space %d, region is in %d",
					p.id, r.ID, sp.ID, r.Space.ID))
			}
			// Withdraw the fast bits before Deliver examines the section
			// counts: a concurrent fast bracket either committed before
			// this point (and its count is visible below) or its CAS
			// fails and it retries through the slow path behind eng.
			r.disableFast()
			if p.cl.migrate && r.IsHome() {
				sp.countHomeIn(r.ID, 1)
			}
		}
		sp.Proto.Deliver(sp.ctx, sp, r, m)
		if r != nil {
			sp.refreshFast(r)
		}
		sp.eng.Unlock()
		// Deliver implementations consume the payload synchronously
		// (copy into region data, clone into deferred queues, or forward
		// through Send, which also copies); the wire buffer is free.
		amnet.Recycle(m.Payload)
	})
	p.ep.Register(hProtoBatch, func(m amnet.Msg) {
		sp := p.space(int(m.D))
		bd, ok := sp.Proto.(BatchDeliverer)
		sp.eng.Lock()
		if !ok {
			panic(fmt.Sprintf("core: proc %d: aggregate frame for space %d, but protocol %q takes no batches",
				p.id, sp.ID, sp.ProtoName))
		}
		recs := p.decodeBatch(sp, m)
		if p.cl.migrate {
			for _, rec := range recs {
				if rec.R.IsHome() {
					sp.countHomeIn(rec.R.ID, 1)
				}
			}
		}
		bd.DeliverBatch(sp.ctx, sp, m.Src, m.C, m.B, recs)
		for _, rec := range recs {
			sp.refreshFast(rec.R)
		}
		sp.eng.Unlock()
		// DeliverBatch consumes record data synchronously, like Deliver.
		amnet.Recycle(m.Payload)
	})
	p.ep.Register(hMigrate, func(m amnet.Msg) {
		// A MigrateHome pull: the incoming home asks the current home for
		// the authoritative data and lock ownership. Runs between the
		// flush barrier and the flip barrier, so no coherence traffic
		// races the copy; the engine lock still brackets it so the read
		// is ordered against any local slow-path bracket.
		sp := p.space(int(m.D))
		sp.eng.Lock()
		p.regMu.RLock()
		r := p.regions.Get(RegionID(m.A))
		p.regMu.RUnlock()
		if r == nil || !r.IsHome() {
			panic(fmt.Sprintf("core: proc %d: migrate pull for non-home region %v", p.id, RegionID(m.A)))
		}
		r.Dir.lockMu.Lock()
		holder := r.Dir.LockHolder
		r.Dir.lockMu.Unlock()
		p.ep.Send(amnet.Msg{
			Dst: m.Src, Handler: hComplete, B: m.B,
			A:       uint64(int64(holder) + 1), // -1 (unheld) encodes as 0
			C:       uint64(r.Size),
			Payload: p.cloneForSend(r.Data),
		})
		sp.eng.Unlock()
	})
}

// Space is a named allocation arena with an associated protocol: the
// paper's central abstraction for binding protocols to data structures.
type Space struct {
	// ID is the space's index, identical on every processor (spaces are
	// created collectively). Table slots are recycled by FreeSpace, so
	// an ID alone does not name a space across its whole lifetime — the
	// (ID, Gen) pair does (see Ref).
	ID int
	// Gen is the table slot's generation at creation, bumped every time
	// the slot is freed. A SpaceRef carrying an older generation is
	// stale and refuses to resolve (SpaceByRef), so recycled slots never
	// alias.
	Gen uint64
	// ProtoName is the current protocol's registered name.
	ProtoName string
	// Proto is this processor's instance of the protocol.
	Proto Protocol
	// Epoch increments on every ChangeProtocol.
	Epoch int
	// PData is arbitrary per-space protocol data (for example a static
	// update protocol's sharer lists).
	PData any

	proc *Proc

	// eng is the space's engine lock: it serializes the protocol
	// instance, the protocol-owned fields of the space's regions, and
	// MapCount, between the application thread's slow-path operations
	// and the pump's Deliver. ProtoName/Proto/Epoch/PData mutate only
	// under it (by ChangeProtocol).
	eng sync.Mutex
	// ctx is the Ctx bound to eng: protocol routines of this space run
	// with it so ctx.Wait releases the engine while blocked.
	ctx *Ctx
	// fp is the protocol's fast-path view, nil when the protocol does
	// not implement FastPather.
	fp FastPather
	// adapt is the adaptive controller's per-space state, created at the
	// space's first barrier when Options.Adapt is set. Atomic only so
	// Proc.Snapshot can read the published stats concurrently; all other
	// access is from the application thread.
	adapt atomic.Pointer[adaptState]

	// homeIn counts protocol messages delivered to regions homed at this
	// processor since the controller's last epoch snapshot; regIn breaks
	// the count down per region so the controller can nominate the
	// hottest one for re-homing. Both under eng, maintained only when
	// migration is enabled (Cluster.migrate).
	homeIn uint64
	regIn  map[RegionID]uint64

	// dead is set by FreeSpace once the space has been flushed and its
	// slot recycled; allocation and lookup paths check it lock-free.
	dead atomic.Bool
}

// Ref returns the space's generation-tagged identifier, the handle a
// layer above the runtime (a session gateway mapping rooms to spaces)
// holds across the space's lifetime. Identical on every processor.
func (sp *Space) Ref() SpaceRef { return SpaceRef{ID: sp.ID, Gen: sp.Gen} }

// Freed reports whether the space has been destroyed by FreeSpace.
func (sp *Space) Freed() bool { return sp.dead.Load() }

// countHomeIn charges n delivered protocol messages to the home region
// id. Caller holds sp.eng.
func (sp *Space) countHomeIn(id RegionID, n uint64) {
	sp.homeIn += n
	if sp.regIn == nil {
		sp.regIn = make(map[RegionID]uint64)
	}
	sp.regIn[id] += n
}

// refreshFast recomputes and publishes r's fast-path eligibility bits
// from the space's protocol. Caller holds sp.eng. Runtimes call it after
// every protocol invocation that can change r's coherence state; bulk
// operations that mutate other regions use Ctx.RefreshFast per region.
func (sp *Space) refreshFast(r *Region) {
	var bits FastBits
	if sp.fp != nil {
		bits = sp.fp.FastBits(r)
	}
	r.publishFast(bits)
}

// The Bare section operations invoke the protocol routine without the
// runtime's section pairing bookkeeping. Compiled code uses them when the
// matching bracket was a null handler the direct-dispatch pass deleted;
// the protocol's null declaration is its promise that it needs no open-
// section accounting at these points (the paper's runtime kept none).
//
// Their fast path is a bare eligibility-bit load: publishing the bit
// already promises the protocol routine is a no-op, and Bare variants
// keep no counts, so there is nothing to CAS.

// StartReadBare opens a read section without bookkeeping.
func (p *Proc) StartReadBare(r *Region) {
	t := p.rec.Begin()
	p.ops[trace.OpStartRead].Add(1)
	if r.fastEligible(rwFastRead) {
		p.fastOps[trace.OpStartRead].Add(1)
		p.rec.FastHit(trace.OpStartRead, r.Space.ID)
		p.rec.End(trace.OpStartRead, r.Space.ID, t)
		return
	}
	sp := r.Space
	sp.eng.Lock()
	sp.Proto.StartRead(sp.ctx, r)
	sp.refreshFast(r)
	sp.eng.Unlock()
	if !r.IsHome() {
		p.rec.RemoteMiss(trace.OpStartRead, sp.ID)
	}
	p.rec.End(trace.OpStartRead, sp.ID, t)
}

// EndReadBare closes a read section without bookkeeping.
func (p *Proc) EndReadBare(r *Region) {
	t := p.rec.Begin()
	p.ops[trace.OpEndRead].Add(1)
	if r.fastEligible(rwFastRead) {
		p.fastOps[trace.OpEndRead].Add(1)
		p.rec.FastHit(trace.OpEndRead, r.Space.ID)
		p.rec.End(trace.OpEndRead, r.Space.ID, t)
		return
	}
	sp := r.Space
	sp.eng.Lock()
	sp.Proto.EndRead(sp.ctx, r)
	sp.refreshFast(r)
	sp.eng.Unlock()
	p.rec.End(trace.OpEndRead, sp.ID, t)
}

// StartWriteBare opens a write section without bookkeeping.
func (p *Proc) StartWriteBare(r *Region) {
	t := p.rec.Begin()
	p.ops[trace.OpStartWrite].Add(1)
	if r.fastEligible(rwFastWrite) {
		p.fastOps[trace.OpStartWrite].Add(1)
		p.rec.FastHit(trace.OpStartWrite, r.Space.ID)
		p.rec.End(trace.OpStartWrite, r.Space.ID, t)
		return
	}
	sp := r.Space
	sp.eng.Lock()
	sp.Proto.StartWrite(sp.ctx, r)
	sp.refreshFast(r)
	sp.eng.Unlock()
	if !r.IsHome() {
		p.rec.RemoteMiss(trace.OpStartWrite, sp.ID)
	}
	p.rec.End(trace.OpStartWrite, sp.ID, t)
}

// EndWriteBare closes a write section without bookkeeping.
func (p *Proc) EndWriteBare(r *Region) {
	t := p.rec.Begin()
	p.ops[trace.OpEndWrite].Add(1)
	if r.fastEligible(rwFastWrite) {
		p.fastOps[trace.OpEndWrite].Add(1)
		p.rec.FastHit(trace.OpEndWrite, r.Space.ID)
		p.rec.End(trace.OpEndWrite, r.Space.ID, t)
		return
	}
	sp := r.Space
	sp.eng.Lock()
	sp.Proto.EndWrite(sp.ctx, r)
	sp.refreshFast(r)
	sp.eng.Unlock()
	p.rec.End(trace.OpEndWrite, sp.ID, t)
}
