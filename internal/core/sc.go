package core

import (
	"fmt"

	"github.com/acedsm/ace/internal/amnet"
)

// This file implements the runtime's default protocol: a sequentially
// consistent, invalidation-based, home-directory protocol in the style of
// CRL, redesigned as the paper describes (Section 5.1). The protocol keeps
// a directory at each region's home tracking the exclusive owner or the
// sharer set; read and write sections acquire shared or exclusive copies,
// and invalidations arriving while a region is in use are deferred to the
// end of the section.

// Local cache states for remote copies (the home's state is derived from
// its directory).
const (
	scInvalid int32 = iota
	scShared
	scExclusive
)

// Flag bits in Region.Flags.
const (
	scFlagPendInval     uint32 = 1 << iota // invalidate when section ends
	scFlagPendDowngrade                    // write back + drop to shared when write ends
	scFlagPendWbInval                      // write back + invalidate when section ends
	scFlagFetchRead                        // shared fetch outstanding
	scFlagFetchWrite                       // exclusive fetch outstanding
)

// Protocol message verbs (field C of hProto messages).
const (
	scSReq       uint64 = iota + 1 // remote → home: shared copy request
	scWReq                         // remote → home: exclusive copy request
	scInval                        // home → sharer: invalidate
	scInvalAck                     // sharer → home: invalidation done
	scWbReq                        // home → owner: write back, downgrade to shared
	scWbAck                        // owner → home: data, now shared
	scWbInval                      // home → owner: write back and invalidate
	scWbInvalAck                   // owner → home: data, now invalid
	scFlushData                    // remote → home: flush exclusive data (ChangeProtocol)
)

// Pending request kinds at the home.
const (
	pkRemoteRead int = iota + 1
	pkRemoteWrite
	pkHomeRead
	pkHomeWrite
)

// scInfo is the registry entry for the protocol. Sequential consistency
// forbids compiler reordering, so Optimizable is false and no points are
// declared null (Section 4.2).
func scInfo() Info {
	return Info{
		Name:        "sc",
		New:         func() Protocol { return &SCProtocol{} },
		Optimizable: false,
		Null:        0,
		Adapt:       AdaptHints{Adaptive: true, Pattern: PatternGeneral},
	}
}

// SCProtocol is the default sequentially consistent invalidation protocol.
// All its state lives in Region/Directory fields, so the struct itself is
// empty.
type SCProtocol struct{ Base }

// Name returns "sc".
func (s *SCProtocol) Name() string { return "sc" }

// StartRead acquires a readable copy of r.
func (s *SCProtocol) StartRead(ctx *Ctx, r *Region) {
	if r.IsHome() {
		s.homeAccess(ctx, r, pkHomeRead)
		return
	}
	if r.State == scInvalid {
		r.Flags |= scFlagFetchRead
		seq := ctx.NewWaiter()
		ctx.SendProto(r.Home, uint64(r.ID), seq, scSReq, uint64(r.Space.ID), nil)
		m := ctx.Wait(seq)
		copy(r.Data, m.Payload)
		ctx.Recycle(m.Payload)
		r.State = scShared
		r.Flags &^= scFlagFetchRead
	}
}

// StartWrite acquires an exclusive copy of r.
func (s *SCProtocol) StartWrite(ctx *Ctx, r *Region) {
	if r.IsHome() {
		s.homeAccess(ctx, r, pkHomeWrite)
		return
	}
	if r.State != scExclusive {
		r.Flags |= scFlagFetchWrite
		seq := ctx.NewWaiter()
		ctx.SendProto(r.Home, uint64(r.ID), seq, scWReq, uint64(r.Space.ID), nil)
		m := ctx.Wait(seq)
		copy(r.Data, m.Payload)
		ctx.Recycle(m.Payload)
		r.State = scExclusive
		r.Flags &^= scFlagFetchWrite
	}
}

// EndRead completes deferred coherence work once the last section closes.
func (s *SCProtocol) EndRead(ctx *Ctx, r *Region) {
	if r.IsHome() {
		s.kick(ctx, r)
		return
	}
	s.remoteSectionEnd(ctx, r)
}

// EndWrite completes deferred coherence work once the last section closes.
func (s *SCProtocol) EndWrite(ctx *Ctx, r *Region) {
	if r.IsHome() {
		s.kick(ctx, r)
		return
	}
	s.remoteSectionEnd(ctx, r)
}

// remoteSectionEnd performs deferred invalidations and writebacks on a
// remote copy whose sections have (partially) closed.
func (s *SCProtocol) remoteSectionEnd(ctx *Ctx, r *Region) {
	if r.Writers() == 0 && r.Flags&scFlagPendDowngrade != 0 {
		r.Flags &^= scFlagPendDowngrade
		r.State = scShared
		ctx.SendProto(r.Home, uint64(r.ID), 0, scWbAck, uint64(r.Space.ID), r.Data)
	}
	if r.InUse() {
		return
	}
	if r.Flags&scFlagPendWbInval != 0 {
		r.Flags &^= scFlagPendWbInval
		r.State = scInvalid
		ctx.SendProto(r.Home, uint64(r.ID), 0, scWbInvalAck, uint64(r.Space.ID), r.Data)
	} else if r.Flags&scFlagPendInval != 0 {
		r.Flags &^= scFlagPendInval
		r.State = scInvalid
		ctx.SendProto(r.Home, uint64(r.ID), 0, scInvalAck, uint64(r.Space.ID), nil)
	}
}

// homeAccess opens a section at the home, waiting for the directory to
// reach a compatible state.
func (s *SCProtocol) homeAccess(ctx *Ctx, r *Region, kind int) {
	d := r.Dir
	for {
		if !d.Busy && len(d.Waiting) == 0 && d.Owner < 0 {
			if kind == pkHomeRead || d.Sharers.Empty() {
				return
			}
		}
		seq := ctx.NewWaiter()
		d.Waiting = append(d.Waiting, PendingReq{Kind: kind, Src: ctx.ID(), Seq: seq})
		s.kick(ctx, r)
		ctx.Wait(seq)
		// The mutex was released during the wait; another request may
		// have slipped in between our grant and our wakeup, so recheck.
	}
}

// kick serves queued directory requests while possible. Caller holds the
// runtime mutex at the home.
func (s *SCProtocol) kick(ctx *Ctx, r *Region) {
	d := r.Dir
	for !d.Busy && len(d.Waiting) > 0 {
		req := d.Waiting[0]
		if !canStart(r, req) {
			return
		}
		d.Waiting = d.Waiting[1:]
		s.startReq(ctx, r, req)
	}
}

// canStart reports whether req conflicts with the home's open sections.
func canStart(r *Region, req PendingReq) bool {
	switch req.Kind {
	case pkRemoteRead:
		return r.Writers() == 0
	case pkRemoteWrite:
		return !r.InUse()
	default: // home-local requests never self-conflict
		return true
	}
}

// startReq begins serving req, either completing it immediately or opening
// a multi-message transaction (d.Busy).
func (s *SCProtocol) startReq(ctx *Ctx, r *Region, req PendingReq) {
	d := r.Dir
	switch req.Kind {
	case pkRemoteRead:
		if d.Owner >= 0 {
			d.Busy = true
			d.Cur = req
			ctx.SendProto(d.Owner, uint64(r.ID), 0, scWbReq, uint64(r.Space.ID), nil)
			return
		}
		s.grantRead(ctx, r, req)
	case pkRemoteWrite:
		if d.Owner >= 0 {
			d.Busy = true
			d.Cur = req
			ctx.SendProto(d.Owner, uint64(r.ID), 0, scWbInval, uint64(r.Space.ID), nil)
			return
		}
		others := d.Sharers
		others.Remove(req.Src)
		if !others.Empty() {
			d.Busy = true
			d.Cur = req
			d.PendingAcks = others.Count()
			others.ForEach(func(n amnet.NodeID) {
				ctx.SendProto(n, uint64(r.ID), 0, scInval, uint64(r.Space.ID), nil)
			})
			return
		}
		s.grantWrite(ctx, r, req)
	case pkHomeRead:
		if d.Owner >= 0 {
			d.Busy = true
			d.Cur = req
			ctx.SendProto(d.Owner, uint64(r.ID), 0, scWbReq, uint64(r.Space.ID), nil)
			return
		}
		ctx.Complete(req.Seq, amnet.Msg{})
	case pkHomeWrite:
		if d.Owner >= 0 {
			d.Busy = true
			d.Cur = req
			ctx.SendProto(d.Owner, uint64(r.ID), 0, scWbInval, uint64(r.Space.ID), nil)
			return
		}
		if !d.Sharers.Empty() {
			d.Busy = true
			d.Cur = req
			d.PendingAcks = d.Sharers.Count()
			d.Sharers.ForEach(func(n amnet.NodeID) {
				ctx.SendProto(n, uint64(r.ID), 0, scInval, uint64(r.Space.ID), nil)
			})
			return
		}
		ctx.Complete(req.Seq, amnet.Msg{})
	default:
		panic(fmt.Sprintf("core: sc: bad request kind %d", req.Kind))
	}
}

// grantRead adds the requester to the sharer set and replies with the home
// copy.
func (s *SCProtocol) grantRead(ctx *Ctx, r *Region, req PendingReq) {
	r.Dir.Sharers.Add(req.Src)
	ctx.SendComplete(req.Src, req.Seq, 0, r.Data)
}

// grantWrite hands the requester exclusive ownership; the home copy
// becomes stale.
func (s *SCProtocol) grantWrite(ctx *Ctx, r *Region, req PendingReq) {
	d := r.Dir
	d.Sharers = 0
	d.Owner = req.Src
	ctx.SendComplete(req.Src, req.Seq, 0, r.Data)
}

// Deliver handles protocol messages: requests and acknowledgements at the
// home, invalidations and writeback requests at remotes.
func (s *SCProtocol) Deliver(ctx *Ctx, sp *Space, r *Region, m amnet.Msg) {
	switch m.C {
	case scSReq:
		s.mustHome(ctx, r, m)
		r.Dir.Waiting = append(r.Dir.Waiting, PendingReq{Kind: pkRemoteRead, Src: m.Src, Seq: m.B})
		s.kick(ctx, r)
	case scWReq:
		s.mustHome(ctx, r, m)
		r.Dir.Waiting = append(r.Dir.Waiting, PendingReq{Kind: pkRemoteWrite, Src: m.Src, Seq: m.B})
		s.kick(ctx, r)
	case scInval:
		s.handleInval(ctx, r, m)
	case scWbReq:
		s.handleWbReq(ctx, r, m)
	case scWbInval:
		s.handleWbInval(ctx, r, m)
	case scInvalAck:
		s.mustHome(ctx, r, m)
		s.ackArrived(ctx, r, false, nil)
	case scWbAck:
		s.mustHome(ctx, r, m)
		s.wbArrived(ctx, r, m, false)
	case scWbInvalAck:
		s.mustHome(ctx, r, m)
		s.wbArrived(ctx, r, m, true)
	case scFlushData:
		s.mustHome(ctx, r, m)
		s.handleFlush(ctx, r, m)
	default:
		panic(fmt.Sprintf("core: sc: bad verb %d", m.C))
	}
}

func (s *SCProtocol) mustHome(ctx *Ctx, r *Region, m amnet.Msg) {
	if r == nil || !r.IsHome() {
		panic(fmt.Sprintf("core: sc: proc %d is not home for message %d on %v", ctx.ID(), m.C, RegionID(m.A)))
	}
}

// handleInval processes an invalidation at a sharer.
func (s *SCProtocol) handleInval(ctx *Ctx, r *Region, m amnet.Msg) {
	if r == nil {
		// The region was never materialized here; acknowledge so the
		// home's count stays right (possible only in protocol-change
		// corner cases, but harmless to handle uniformly).
		ctx.SendProto(m.Src, m.A, 0, scInvalAck, m.D, nil)
		return
	}
	switch {
	case r.InUse() || r.Flags&scFlagFetchRead != 0:
		// Either an open section, or a shared fetch whose grant is
		// already ordered ahead of this invalidation: defer until the
		// section ends.
		r.Flags |= scFlagPendInval
	default:
		// Idle, or an exclusive fetch still waiting for its grant (the
		// upgrade race): drop the shared copy now.
		r.State = scInvalid
		ctx.SendProto(m.Src, m.A, 0, scInvalAck, m.D, nil)
	}
}

// handleWbReq processes a downgrade request at the owner.
func (s *SCProtocol) handleWbReq(ctx *Ctx, r *Region, m amnet.Msg) {
	if r == nil {
		panic(fmt.Sprintf("core: sc: proc %d: downgrade for unknown region %v", ctx.ID(), RegionID(m.A)))
	}
	if r.Writers() > 0 || r.Flags&scFlagFetchWrite != 0 {
		r.Flags |= scFlagPendDowngrade
		return
	}
	r.State = scShared
	ctx.SendProto(m.Src, m.A, 0, scWbAck, m.D, r.Data)
}

// handleWbInval processes a writeback-and-invalidate at the owner.
func (s *SCProtocol) handleWbInval(ctx *Ctx, r *Region, m amnet.Msg) {
	if r == nil {
		panic(fmt.Sprintf("core: sc: proc %d: wbinval for unknown region %v", ctx.ID(), RegionID(m.A)))
	}
	if r.InUse() || r.Flags&scFlagFetchWrite != 0 {
		r.Flags |= scFlagPendWbInval
		return
	}
	r.State = scInvalid
	ctx.SendProto(m.Src, m.A, 0, scWbInvalAck, m.D, r.Data)
}

// ackArrived counts an invalidation acknowledgement toward the current
// transaction.
func (s *SCProtocol) ackArrived(ctx *Ctx, r *Region, _ bool, _ []byte) {
	d := r.Dir
	if !d.Busy || d.PendingAcks <= 0 {
		panic(fmt.Sprintf("core: sc: proc %d: stray invalidation ack on %v", ctx.ID(), r.ID))
	}
	d.PendingAcks--
	if d.PendingAcks > 0 {
		return
	}
	d.Sharers = 0
	cur := d.Cur
	d.Busy = false
	switch cur.Kind {
	case pkRemoteWrite:
		s.grantWrite(ctx, r, cur)
	case pkHomeWrite:
		ctx.Complete(cur.Seq, amnet.Msg{})
	default:
		panic(fmt.Sprintf("core: sc: proc %d: acks for non-write transaction on %v", ctx.ID(), r.ID))
	}
	s.kick(ctx, r)
}

// wbArrived installs a writeback from the owner and finishes the current
// transaction. inval reports whether the owner also invalidated its copy.
func (s *SCProtocol) wbArrived(ctx *Ctx, r *Region, m amnet.Msg, inval bool) {
	d := r.Dir
	if !d.Busy {
		panic(fmt.Sprintf("core: sc: proc %d: stray writeback on %v", ctx.ID(), r.ID))
	}
	copy(r.Data, m.Payload)
	oldOwner := d.Owner
	d.Owner = -1
	if !inval {
		d.Sharers.Add(oldOwner)
	}
	cur := d.Cur
	d.Busy = false
	switch cur.Kind {
	case pkRemoteRead:
		s.grantRead(ctx, r, cur)
	case pkHomeRead:
		ctx.Complete(cur.Seq, amnet.Msg{})
	case pkRemoteWrite:
		// The owner invalidated; grant exclusivity directly (the
		// invariant Owner >= 0 ⇒ Sharers empty makes invalidations
		// unnecessary).
		s.grantWrite(ctx, r, cur)
	case pkHomeWrite:
		ctx.Complete(cur.Seq, amnet.Msg{})
	default:
		panic(fmt.Sprintf("core: sc: proc %d: bad writeback transaction on %v", ctx.ID(), r.ID))
	}
	s.kick(ctx, r)
}

// handleFlush installs flushed data from a remote exclusive copy during a
// protocol change.
func (s *SCProtocol) handleFlush(ctx *Ctx, r *Region, m amnet.Msg) {
	d := r.Dir
	if d.Owner != m.Src {
		panic(fmt.Sprintf("core: sc: proc %d: flush of %v from %d, owner %d", ctx.ID(), r.ID, m.Src, d.Owner))
	}
	copy(r.Data, m.Payload)
	d.Owner = -1
	ctx.SendComplete(m.Src, m.B, 0, nil)
}

// FastBits reports when the runtime may complete brackets on r without
// entering the protocol, implementing FastPather. The invariants:
//
//   - Remote copies: every bracket routine is a no-op exactly when no
//     flag is pending and no fetch is outstanding (Flags == 0) and the
//     state already grants the access — shared grants reads, exclusive
//     grants both. A deferred invalidation (scFlagPendInval et al.)
//     clears eligibility because the section-end check must run.
//   - The home: with the directory quiescent (not Busy, nothing
//     Waiting, no remote owner) homeAccess returns immediately and kick
//     has nothing to serve, so reads are free; writes additionally
//     require no sharers (else StartWrite must invalidate). Anything
//     queued clears eligibility because the end-of-section kick must
//     run — the fast path skipping kick would strand waiters.
//
// The pump withdraws these bits before Deliver mutates the state and
// the runtime republishes after, so a bracket that raced the transition
// either committed against a still-valid word or fell to the slow path.
func (s *SCProtocol) FastBits(r *Region) FastBits {
	if r.IsHome() {
		d := r.Dir
		if d.Busy || len(d.Waiting) > 0 || d.Owner >= 0 {
			return 0
		}
		if d.Sharers.Empty() {
			return FastRead | FastWrite
		}
		return FastRead
	}
	if r.Flags != 0 {
		return 0
	}
	switch r.State {
	case scShared:
		return FastRead
	case scExclusive:
		return FastRead | FastWrite
	}
	return 0
}

// DropCopy discards a clean shared copy, implementing core.Dropper. Only
// quiescent shared copies can be dropped unilaterally: the home may still
// list this processor as a sharer, but a later invalidation simply finds
// the copy already invalid and is acknowledged immediately.
func (s *SCProtocol) DropCopy(ctx *Ctx, r *Region) bool {
	if r.IsHome() || r.InUse() || r.Flags != 0 || r.State != scShared {
		return false
	}
	r.State = scInvalid
	return true
}

// FlushSpace pushes every locally cached exclusive copy home and drops
// shared copies, returning the space to the base state (ChangeProtocol
// semantics, Section 3.1).
func (s *SCProtocol) FlushSpace(ctx *Ctx, sp *Space) {
	var dirty []*Region
	ctx.ForEachRegion(func(r *Region) {
		if r.Space != sp || r.IsHome() {
			return
		}
		if r.InUse() {
			panic(fmt.Sprintf("core: sc: proc %d: ChangeProtocol with open section on %v", ctx.ID(), r.ID))
		}
		if r.State == scExclusive {
			dirty = append(dirty, r)
		}
		r.State = scInvalid
		r.Flags = 0
	})
	for _, r := range dirty {
		seq := ctx.NewWaiter()
		ctx.SendProto(r.Home, uint64(r.ID), seq, scFlushData, uint64(sp.ID), r.Data)
		ctx.Wait(seq)
	}
}
