// Package core implements the Ace runtime system: a region-based software
// distributed shared memory with customizable coherence protocols.
//
// The design follows Raghavachari & Rogers, "Ace: Linguistic Mechanisms for
// Customizable Protocols" (PPoPP 1997). Shared data lives in arbitrarily
// sized regions allocated from spaces; every space has an associated
// protocol, and all runtime primitives (map, start/end read, start/end
// write, barrier, lock, unlock) dispatch through the space's protocol. The
// protocol of a space can be changed at runtime, with the old protocol
// flushing regions back to a base state.
package core

import (
	"strings"

	"github.com/acedsm/ace/internal/amnet"
)

// Point names an access or synchronization point at which a protocol
// routine can be invoked. This is the paper's "full access control": unlike
// access-fault schemes, protocols run both before and after accesses and at
// synchronization points.
type Point uint8

// The protocol invocation points, in the order they appear in the protocol
// configuration file.
const (
	PointMap Point = iota
	PointUnmap
	PointStartRead
	PointEndRead
	PointStartWrite
	PointEndWrite
	PointBarrier
	PointLock
	PointUnlock
	NumPoints
)

var pointNames = [NumPoints]string{
	"map", "unmap", "start_read", "end_read",
	"start_write", "end_write", "barrier", "lock", "unlock",
}

func (p Point) String() string {
	if p < NumPoints {
		return pointNames[p]
	}
	return "invalid_point"
}

// ParsePoint converts a configuration-file point name back to a Point.
func ParsePoint(s string) (Point, bool) {
	for i, n := range pointNames {
		if n == s {
			return Point(i), true
		}
	}
	return 0, false
}

// PointSet is a bitmask of Points.
type PointSet uint16

// AllPoints contains every invocation point.
const AllPoints PointSet = 1<<NumPoints - 1

// With returns s with p added.
func (s PointSet) With(p Point) PointSet { return s | 1<<p }

// Without returns s with p removed.
func (s PointSet) Without(p Point) PointSet { return s &^ (1 << p) }

// Has reports whether p is in s.
func (s PointSet) Has(p Point) bool { return s&(1<<p) != 0 }

func (s PointSet) String() string {
	var parts []string
	for p := Point(0); p < NumPoints; p++ {
		if s.Has(p) {
			parts = append(parts, p.String())
		}
	}
	return strings.Join(parts, ",")
}

// Protocol is the interface a protocol library implements. One instance is
// created per (space, processor) pair, so instances may keep per-processor
// state in their fields without synchronization: every method is invoked
// with the owning space's engine lock held, either from the application
// thread (access and synchronization points) or from the message pump
// (Deliver). Brackets that commit on the lock-free fast path never enter
// the protocol at all — see FastPather.
//
// Methods must not block except by ctx.Wait on a waiter they created, and
// Deliver must never block at all (it runs on the message pump).
type Protocol interface {
	// Name returns the protocol's registered name.
	Name() string

	// InitSpace runs when the protocol is attached to a space, either at
	// space creation or after a ChangeProtocol. All regions of the space
	// are in the base state: data valid at its home, no cached copies.
	InitSpace(ctx *Ctx, sp *Space)

	// FlushSpace returns the space to the base state: every region's
	// authoritative contents at its home, no cached copies, directories
	// about to be reset by the runtime. It is called collectively on all
	// processors with a global barrier before and after, so it may both
	// push local dirty data home and (at the home) wait for pushes.
	FlushSpace(ctx *Ctx, sp *Space)

	// RegionCreated runs at the home when a region is allocated from the
	// space, and on a remote processor when it first materializes the
	// region (at first map). r.Dir is non-nil exactly at the home.
	RegionCreated(ctx *Ctx, r *Region)

	// Map and Unmap run at region map/unmap. The runtime maintains the
	// map count; protocols typically use these to prefetch or flush.
	Map(ctx *Ctx, r *Region)
	Unmap(ctx *Ctx, r *Region)

	// StartRead/EndRead/StartWrite/EndWrite bracket accesses to r.Data.
	// On return from StartRead (StartWrite), r.Data must be valid for
	// reading (writing) under the protocol's consistency model.
	StartRead(ctx *Ctx, r *Region)
	EndRead(ctx *Ctx, r *Region)
	StartWrite(ctx *Ctx, r *Region)
	EndWrite(ctx *Ctx, r *Region)

	// Barrier implements the space's barrier semantics. Most protocols
	// perform protocol actions (propagating updates, draining pipelines)
	// and then call ctx.DefaultBarrier.
	Barrier(ctx *Ctx, sp *Space)

	// Lock and Unlock implement region locks. The default implementation
	// is ctx.DefaultLock / ctx.DefaultUnlock (a home-based queue lock).
	Lock(ctx *Ctx, r *Region)
	Unlock(ctx *Ctx, r *Region)

	// Deliver handles a protocol message. r is the local region the
	// message names, or nil if the region is not materialized here (the
	// protocol may create it with ctx.EnsureRegion). Deliver runs on the
	// message pump and must not block.
	Deliver(ctx *Ctx, sp *Space, r *Region, m amnet.Msg)
}

// FastPather is an optional Protocol extension: protocols whose bracket
// routines are no-ops for a region in certain states implement it to let
// the runtime complete those brackets with a lock-free CAS on the
// region's hot word, never invoking the protocol.
//
// FastBits is called with the space's engine lock held, after every
// protocol invocation on the region, and must be a pure function of the
// region's current protocol state. Returning FastRead (FastWrite) is
// the promise that, in the state just established:
//
//   - StartRead/EndRead (StartWrite/EndWrite) on this processor are
//     no-ops, and r.Data is valid for reading (writing) under the
//     protocol's consistency model for as long as the bits stay
//     published;
//   - skipping the routines has no protocol-visible effect — in
//     particular, no deferred work (pending invalidations, queued
//     directory requests, dirty-list bookkeeping) hinges on a
//     section-end invocation.
//
// The runtime withdraws the bits before every Deliver on the region and
// republishes them after, so protocol state changes made in handlers
// cannot race a fast bracket. Protocol code that mutates the coherence
// state of other regions (bulk invalidation at barriers) must withdraw
// their bits itself with Ctx.DisableFast first.
//
// Protocols for which every access must run handlers (for example the
// race-checking debug protocol) simply do not implement the interface.
type FastPather interface {
	// FastBits returns the bracket kinds currently hit-eligible for r.
	FastBits(r *Region) FastBits
}

// Dropper is an optional Protocol extension: protocols that can discard a
// clean locally cached copy implement it, letting runtimes with bounded
// caching (the CRL baseline's unmapped-region cache) evict safely.
type Dropper interface {
	// DropCopy discards the local cached copy of r if that is safe right
	// now, reporting whether it did.
	DropCopy(ctx *Ctx, r *Region) bool
}

// Base is an embeddable no-op implementation of every Protocol method
// except Name. Protocol authors embed Base and override the points their
// protocol acts at; the registry's null-point declaration should match the
// overridden set.
type Base struct{}

func (Base) InitSpace(*Ctx, *Space)                   {}
func (Base) FlushSpace(*Ctx, *Space)                  {}
func (Base) RegionCreated(*Ctx, *Region)              {}
func (Base) Map(*Ctx, *Region)                        {}
func (Base) Unmap(*Ctx, *Region)                      {}
func (Base) StartRead(*Ctx, *Region)                  {}
func (Base) EndRead(*Ctx, *Region)                    {}
func (Base) StartWrite(*Ctx, *Region)                 {}
func (Base) EndWrite(*Ctx, *Region)                   {}
func (Base) Barrier(ctx *Ctx, _ *Space)               { ctx.DefaultBarrier() }
func (Base) Lock(ctx *Ctx, r *Region)                 { ctx.DefaultLock(r) }
func (Base) Unlock(ctx *Ctx, r *Region)               { ctx.DefaultUnlock(r) }
func (Base) Deliver(*Ctx, *Space, *Region, amnet.Msg) {}
