package core

import (
	"errors"
	"fmt"
	"time"
)

// The runtime's failure model (DESIGN.md §6): synchronization that
// blocks on a remote processor — barriers, region locks, collectives,
// coherence fetches — fails with a typed error instead of hanging
// forever when the transport reports the peer down (tcpnet after an
// exhausted reconnect budget, faultnet after an injected kill) or when
// Options.SyncTimeout elapses. The failure surfaces as the error of the
// affected processor's Run function; match it with errors.Is.

// ErrPeerLost is the sentinel matched by errors.Is when blocked
// synchronization failed because a peer was declared down.
var ErrPeerLost = errors.New("peer lost")

// ErrSyncStall is the sentinel matched by errors.Is when blocked
// synchronization exceeded Options.SyncTimeout.
var ErrSyncStall = errors.New("synchronization stalled")

// PeerLostError reports which processor observed which peer down. It
// unwraps to ErrPeerLost.
type PeerLostError struct {
	Local, Peer int
}

func (e *PeerLostError) Error() string {
	return fmt.Sprintf("core: proc %d: peer %d lost", e.Local, e.Peer)
}

// Unwrap makes errors.Is(err, ErrPeerLost) match.
func (e *PeerLostError) Unwrap() error { return ErrPeerLost }

// SyncStallError reports a synchronization wait that exceeded
// Options.SyncTimeout. It unwraps to ErrSyncStall.
type SyncStallError struct {
	Local int
	After time.Duration
}

func (e *SyncStallError) Error() string {
	return fmt.Sprintf("core: proc %d: synchronization stalled for %v", e.Local, e.After)
}

// Unwrap makes errors.Is(err, ErrSyncStall) match.
func (e *SyncStallError) Unwrap() error { return ErrSyncStall }

// typedRuntimeError reports whether a recovered panic value is one of
// the runtime's typed failures, which Run passes through as-is so
// callers can match them with errors.Is.
func typedRuntimeError(r any) (error, bool) {
	err, ok := r.(error)
	if !ok {
		return nil, false
	}
	if errors.Is(err, ErrPeerLost) || errors.Is(err, ErrSyncStall) {
		return err, true
	}
	return nil, false
}
