package core

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/faultnet"
	"github.com/acedsm/ace/internal/trace"
)

// TestSyncTimeoutFailsStalledBarrier: with SyncTimeout set, a barrier
// that can never complete (one processor skips it) fails the stalled
// processor's Run with ErrSyncStall instead of hanging forever.
func TestSyncTimeoutFailsStalledBarrier(t *testing.T) {
	cl, err := NewCluster(Options{Procs: 2, SyncTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *Proc) error {
		if p.ID() == 1 {
			return nil // never arrives at the barrier
		}
		p.GlobalBarrier()
		return nil
	})
	if !errors.Is(err, ErrSyncStall) {
		t.Fatalf("Run error = %v, want ErrSyncStall", err)
	}
	var stall *SyncStallError
	if !errors.As(err, &stall) || stall.Local != 0 {
		t.Fatalf("Run error = %#v, want SyncStallError on proc 0", err)
	}
}

// TestPeerLostFailsBlockedBarrier: killing a peer under faultnet turns
// the survivor's blocked barrier wait into an error matching ErrPeerLost
// that names the lost peer.
func TestPeerLostFailsBlockedBarrier(t *testing.T) {
	inner, err := amnet.NewChanNetwork(amnet.ChanConfig{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	nw := faultnet.Wrap(inner, faultnet.Policy{})
	cl, err := NewCluster(Options{Procs: 2, Transport: amnet.Fixed(nw)})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *Proc) error {
		if p.ID() == 1 {
			// Simulate this processor dying before the collective.
			nw.Kill(1)
			return nil
		}
		p.GlobalBarrier()
		return nil
	})
	if !errors.Is(err, ErrPeerLost) {
		t.Fatalf("Run error = %v, want ErrPeerLost", err)
	}
	var lost *PeerLostError
	if !errors.As(err, &lost) || lost.Local != 0 || lost.Peer != 1 {
		t.Fatalf("Run error = %#v, want PeerLostError{Local: 0, Peer: 1}", err)
	}
}

// TestLateCompletionAfterStallIsDropped: a completion arriving after
// Wait already failed with ErrSyncStall — the likely shape of a stall,
// a slow but alive peer answering just past the timeout — must be
// dropped by the pump, not crash the process with an unknown-waiter
// panic. The fault delay holds proc 1's barrier arrival (and the
// completions node 0 eventually fans out) past both processors'
// SyncTimeout, so each pump later dispatches a completion for a retired
// waiter; surviving the post-Run window is the assertion.
func TestLateCompletionAfterStallIsDropped(t *testing.T) {
	inner, err := amnet.NewChanNetwork(amnet.ChanConfig{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	nw := faultnet.Wrap(inner, faultnet.Policy{Delay: 150 * time.Millisecond})
	cl, err := NewCluster(Options{Procs: 2, Transport: amnet.Fixed(nw), SyncTimeout: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *Proc) error {
		p.GlobalBarrier()
		return nil
	})
	if !errors.Is(err, ErrSyncStall) {
		t.Fatalf("Run error = %v, want ErrSyncStall", err)
	}
	// Proc 0's late completion lands ~150ms in, proc 1's ~300ms; an
	// unknown-waiter panic on either pump would kill the test binary.
	time.Sleep(400 * time.Millisecond)
}

// TestFaultsOptionEndToEnd: Options.Faults wraps the cluster transport
// in the fault injector; a coherent workload still computes the right
// answer and the injected faults show up in Metrics.
func TestFaultsOptionEndToEnd(t *testing.T) {
	cl, err := NewCluster(Options{
		Procs: 3,
		Faults: &faultnet.Policy{
			Seed:        11,
			Delay:       50 * time.Microsecond,
			Jitter:      100 * time.Microsecond,
			DupProb:     0.15,
			DropProb:    0.15,
			ReorderProb: 0.15,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const rounds = 8
	err = cl.Run(func(p *Proc) error {
		var id RegionID
		if p.ID() == 0 {
			id = p.GMalloc(p.DefaultSpace(), 8)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		for i := 0; i < rounds; i++ {
			if p.ID() == i%p.Procs() {
				p.StartWrite(r)
				r.Data[0]++
				p.EndWrite(r)
			}
			p.GlobalBarrier()
			p.StartRead(r)
			got := r.Data[0]
			p.EndRead(r)
			if got != byte(i+1) {
				return &stale{proc: p.ID(), round: i, got: got}
			}
			p.GlobalBarrier()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if total := cl.Metrics().Net.Faults.Total(); total == 0 {
		t.Fatal("no faults injected despite Options.Faults")
	}
	if d := cl.Metrics().Net.Faults.Get(trace.FaultDrop); d == 0 {
		t.Error("drop fault never injected")
	}
}

type stale struct {
	proc, round int
	got         byte
}

func (s *stale) Error() string {
	return "stale read"
}

// TestCompleteRetireRaceNoStrandedCompletion: Complete used to publish
// the message to the waiter's channel after dropping p.wMu, so a waiter
// retired between the lookup and the send (Wait failing with
// ErrSyncStall/ErrPeerLost at just the wrong moment) received the
// completion into an abandoned channel: the message — and its pooled
// payload — was stranded instead of being dropped and recycled.
//
// The schedule is made deterministic (the window is a few nanoseconds,
// unhittable by chance on one CPU): the waiter's cap-1 channel is
// pre-filled, so the racing Complete passes its waiter lookup and then
// parks exactly inside the window, between the lookup and the delivery.
// The main goroutine then runs waitSync's failure path — one last
// non-blocking drain, then retirement — and the drain releases the
// parked Complete straight into the just-retired waiter. The assertion
// is the invariant the fix establishes: once retireWaiter returns, no
// completion can remain in (or later enter) the waiter's channel.
func TestCompleteRetireRaceNoStrandedCompletion(t *testing.T) {
	cl, err := NewCluster(Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	p := cl.procs[0]
	ctx := &Ctx{p: p}
	for i := 0; i < 200; i++ {
		seq := ctx.NewWaiter()
		p.wMu.Lock()
		w := p.waiters[seq]
		p.wMu.Unlock()
		w.ch <- amnet.Msg{} // occupy the buffer slot
		done := make(chan struct{})
		go func() {
			ctx.Complete(seq, amnet.Msg{B: seq, Payload: amnet.Alloc(16)})
			close(done)
		}()
		// Let the completer run up to its delivery (or, post-fix, all
		// the way through its non-blocking fallback).
		for j := 0; j < 100; j++ {
			select {
			case <-done:
				j = 100
			default:
				runtime.Gosched()
			}
		}
		// waitSync's failure path: final non-blocking drain, then
		// retirement.
		select {
		case <-w.ch:
		default:
		}
		p.retireWaiter(seq)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("Complete still blocked after retirement")
		}
		if n := len(w.ch); n != 0 {
			t.Fatalf("iteration %d: completion stranded in a retired waiter's channel", i)
		}
	}
}

// TestCompleteRetireConcurrentStress: the same pairing without the
// deterministic schedule, for the race detector's benefit.
func TestCompleteRetireConcurrentStress(t *testing.T) {
	cl, err := NewCluster(Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	p := cl.procs[0]
	ctx := &Ctx{p: p}
	for i := 0; i < 2000; i++ {
		seq := ctx.NewWaiter()
		p.wMu.Lock()
		w := p.waiters[seq]
		p.wMu.Unlock()
		var wg sync.WaitGroup
		var delivered atomic.Bool
		wg.Add(2)
		go func() {
			defer wg.Done()
			ctx.Complete(seq, amnet.Msg{B: seq, Payload: amnet.Alloc(16)})
		}()
		go func() {
			defer wg.Done()
			select {
			case m := <-w.ch:
				delivered.Store(true)
				amnet.Recycle(m.Payload)
				return
			default:
			}
			p.retireWaiter(seq)
		}()
		wg.Wait()
		if !delivered.Load() && len(w.ch) != 0 {
			t.Fatalf("iteration %d: completion stranded in a retired waiter's channel", i)
		}
		p.wMu.Lock()
		delete(p.waiters, seq)
		p.wMu.Unlock()
	}
}
