package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/trace"
)

// TestNetworkSizeMismatch: a supplied network must match the proc count.
func TestNetworkSizeMismatch(t *testing.T) {
	nw, err := amnet.NewChanNetwork(amnet.ChanConfig{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	if _, err := NewCluster(Options{Procs: 2, Transport: amnet.Fixed(nw)}); err == nil {
		t.Fatal("expected endpoint-count mismatch error")
	}
}

// TestLatencyOption: the built-in network honors the latency knob.
func TestLatencyOption(t *testing.T) {
	cl, err := NewCluster(Options{Procs: 2, Latency: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	err = cl.Run(func(p *Proc) error {
		p.GlobalBarrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The barrier needs at least one inter-node round trip.
	if since := time.Since(start); since < 20*time.Millisecond {
		t.Fatalf("barrier completed in %v despite 20ms latency", since)
	}
}

// TestLockFIFOUnderContention: the home lock queue serves requesters in
// arrival order; with staggered arrivals, the observed critical sections
// never overlap (checked via a shared region only ever mutated inside
// the lock).
func TestLockFIFOUnderContention(t *testing.T) {
	const procs = 5
	run(t, procs, func(p *Proc) error {
		var id RegionID
		if p.ID() == 0 {
			id = p.GMalloc(p.DefaultSpace(), 16)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		for i := 0; i < 40; i++ {
			p.Lock(r)
			p.StartRead(r)
			v := r.Data.Int64(0)
			p.EndRead(r)
			p.StartWrite(r)
			r.Data.SetInt64(0, v+1)
			p.EndWrite(r)
			p.Unlock(r)
		}
		p.GlobalBarrier()
		p.StartRead(r)
		got := r.Data.Int64(0)
		p.EndRead(r)
		if got != procs*40 {
			return fmt.Errorf("lost increments under lock: %d", got)
		}
		return nil
	})
}

// TestDropCopyRules: only clean shared copies may be dropped.
func TestDropCopyRules(t *testing.T) {
	run(t, 2, func(p *Proc) error {
		var id RegionID
		if p.ID() == 0 {
			id = p.GMalloc(p.DefaultSpace(), 8)
			r := p.Map(id)
			p.StartWrite(r)
			r.Data.SetInt64(0, 3)
			p.EndWrite(r)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		if p.ID() == 0 {
			// The home has no droppable cached copy.
			if p.DropCopy(r) {
				return fmt.Errorf("home copy dropped")
			}
		}
		p.GlobalBarrier()
		if p.ID() == 1 {
			// Invalid: nothing to drop.
			if p.DropCopy(r) {
				return fmt.Errorf("invalid copy dropped")
			}
			p.StartRead(r)
			// In use: must refuse.
			if p.DropCopy(r) {
				return fmt.Errorf("in-use copy dropped")
			}
			p.EndRead(r)
			// Clean shared copy: dropped, and a re-read still works.
			if !p.DropCopy(r) {
				return fmt.Errorf("clean shared copy not dropped")
			}
			p.StartRead(r)
			if r.Data.Int64(0) != 3 {
				return fmt.Errorf("re-fetch after drop failed")
			}
			p.EndRead(r)
			// Exclusive: must refuse (dirty).
			p.StartWrite(r)
			r.Data.SetInt64(0, 4)
			p.EndWrite(r)
			if p.DropCopy(r) {
				return fmt.Errorf("exclusive copy dropped")
			}
		}
		p.GlobalBarrier()
		return nil
	})
}

// TestChangeProtocolRejectsUnknown and mismatch behaviors.
func TestChangeProtocolRejectsUnknown(t *testing.T) {
	run(t, 2, func(p *Proc) error {
		sp := p.DefaultSpace()
		if err := p.ChangeProtocol(sp, "nonexistent"); err == nil {
			return fmt.Errorf("unknown protocol accepted")
		}
		return nil
	})
}

// TestUnmapTooMany panics.
func TestUnmapTooMany(t *testing.T) {
	cl, err := NewCluster(Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *Proc) error {
		id := p.GMalloc(p.DefaultSpace(), 8)
		r := p.Map(id)
		p.Unmap(r)
		p.Unmap(r)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "unmap of unmapped") {
		t.Fatalf("err = %v", err)
	}
}

// TestStatsSnapshot: per-proc op counters are visible through Snapshot().
func TestStatsSnapshot(t *testing.T) {
	cl, err := NewCluster(Options{Procs: 1, Trace: &trace.Config{Counters: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *Proc) error {
		id := p.GMalloc(p.DefaultSpace(), 8)
		r := p.Map(id)
		p.StartRead(r)
		p.EndRead(r)
		s := p.Snapshot()
		if s.Ops.Get(trace.OpGMalloc) != 1 || s.Ops.Get(trace.OpMap) != 1 || s.Ops.Get(trace.OpStartRead) != 1 {
			return fmt.Errorf("stats = %+v", s.Ops)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDeferredInvalidationUnderLoad: readers hold long sections while a
// writer storms; every read section must observe internally consistent
// monotone values (the deferred-invalidation machinery under pressure).
func TestDeferredInvalidationUnderLoad(t *testing.T) {
	const procs = 4
	run(t, procs, func(p *Proc) error {
		var id RegionID
		if p.ID() == 0 {
			id = p.GMalloc(p.DefaultSpace(), 16)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		if p.ID() == 0 {
			for i := 1; i <= 150; i++ {
				p.StartWrite(r)
				r.Data.SetInt64(0, int64(i))
				r.Data.SetInt64(1, int64(-i))
				p.EndWrite(r)
			}
		} else {
			last := int64(0)
			for i := 0; i < 100; i++ {
				p.StartRead(r)
				a := r.Data.Int64(0)
				b := r.Data.Int64(1)
				// Within a section the two slots must be a consistent
				// pair: the writer updates them atomically inside one
				// exclusive section.
				if a != -b {
					p.EndRead(r)
					return fmt.Errorf("torn read: %d, %d", a, b)
				}
				p.EndRead(r)
				if a < last {
					return fmt.Errorf("non-monotone: %d after %d", a, last)
				}
				last = a
			}
		}
		p.GlobalBarrier()
		return nil
	})
}
