package core

import (
	"fmt"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/trace"
)

// HomeMigrator is an optional protocol interface: a protocol that keeps
// per-region state keyed by the home (dirty lists, push targets) can
// observe a MigrateHome flip. MigrateRegion is invoked on every
// processor during the flip, under the space's engine lock, after the
// runtime has reset r's protocol-owned state and reassigned the
// directory — oldHome and newHome let the protocol drop or rebuild any
// home-keyed bookkeeping of its own. Protocols without home-keyed state
// need not implement it: the base-state reset already leaves every
// cached copy invalid, so readers re-fetch from the new home and
// re-register as sharers lazily.
type HomeMigrator interface {
	MigrateRegion(ctx *Ctx, r *Region, oldHome, newHome amnet.NodeID)
}

// MigrateHome reassigns region id's home to newHome. It is a collective
// operation modeled on ChangeProtocol's flush discipline: a barrier
// fences in-flight brackets, the space flushes to the base state
// (authoritative data at the current home, no dirty copies), a second
// barrier fences the flush traffic, the new home pulls the data and
// lock ownership from the old one, and then every processor flips its
// view — directory moves, fast-path bits withdrawn and republished,
// cached state reset so the next access re-fetches from the new home.
// Barriers are the only safe migration points for the same reason they
// are the only safe protocol-change points: between the flush barrier
// and the release barrier no coherence message is in flight anywhere,
// so moving the directory cannot strand a transaction mid-protocol.
//
// Processors that never materialized id simply don't flip (their first
// lookup learns the current home from the allocator, which always
// keeps a view). The region lock must be free or held by a processor
// that is at this collective — i.e. not mid-critical-section — which
// the old home asserts; migrating a region out from under an active
// lock queue is a program error, as with ChangeProtocol.
func (p *Proc) MigrateHome(sp *Space, id RegionID, newHome amnet.NodeID) error {
	if int(newHome) < 0 || int(newHome) >= p.cl.Procs() {
		return fmt.Errorf("core: MigrateHome to %d, cluster has %d procs", newHome, p.cl.Procs())
	}
	if err := p.verifyCollective(fmt.Sprintf("migrate:%d:%d:%d", sp.ID, uint64(id), newHome)); err != nil {
		return err
	}
	// Migrations are recorded under the change-protocol op: both are
	// whole-space reconfiguration collectives with the same flush cost.
	t := p.rec.Begin()
	p.ops[trace.OpChangeProtocol].Add(1)
	p.ctx.DefaultBarrier()
	sp.eng.Lock()
	sp.Proto.FlushSpace(sp.ctx, sp)
	// The flush invalidated cached copies space-wide, so every region's
	// fast bits must be withdrawn — not just the migrating one — or a
	// bracket could keep fast-hitting a flushed copy. The protocol
	// republishes lazily as brackets take the slow path, exactly as
	// after ChangeProtocol.
	for _, r := range p.regionList() {
		if r.Space == sp {
			r.publishFast(0)
		}
	}
	sp.eng.Unlock()
	p.ctx.DefaultBarrier()

	// Agree on the current home. Only the home has a directory; every
	// other processor (including ones that never saw id) contributes -1.
	r := p.ctx.Region(id)
	if r != nil && r.Space != sp {
		panic(fmt.Sprintf("core: proc %d: MigrateHome of %v in space %d, region is in %d",
			p.id, id, sp.ID, r.Space.ID))
	}
	mine := int64(-1)
	if r != nil && r.IsHome() {
		mine = int64(p.id)
	}
	oldHome := amnet.NodeID(p.AllReduceInt64(OpMax, mine))
	if oldHome < 0 {
		return fmt.Errorf("core: MigrateHome of %v: no processor is home", id)
	}
	if oldHome == newHome {
		return nil // symmetric no-op on every processor
	}

	// The new home pulls the authoritative data and lock ownership.
	// Between the two barriers around this step nothing else is on the
	// wire for the space, so the copy cannot interleave with coherence.
	holder := amnet.NodeID(-1)
	if p.id == newHome {
		seq := p.ctx.NewWaiter()
		p.ep.Send(amnet.Msg{Dst: oldHome, Handler: hMigrate, A: uint64(id), B: seq, D: uint64(sp.ID)})
		m := p.ctx.Wait(seq)
		holder = amnet.NodeID(int64(m.A) - 1)
		sp.eng.Lock()
		r = p.materializeAt(id, int(m.C), sp, oldHome)
		copy(r.Data, m.Payload)
		sp.eng.Unlock()
		amnet.Recycle(m.Payload)
	}
	p.ctx.DefaultBarrier()

	// Flip: every processor with a view reassigns the home and resets
	// protocol-owned state to base, exactly as a protocol change would.
	sp.eng.Lock()
	if r != nil {
		r.disableFast()
		if p.id == oldHome {
			d := r.Dir
			d.lockMu.Lock()
			queued := len(d.LockQueue)
			d.lockMu.Unlock()
			if d.Busy || len(d.Waiting) != 0 || queued != 0 {
				panic(fmt.Sprintf("core: proc %d: MigrateHome of %v with busy directory", p.id, r.ID))
			}
			r.Dir = nil
		}
		if p.id == newHome && r.Dir == nil {
			d := NewDirectory()
			d.LockHolder = holder
			r.Dir = d
		}
		r.Home = newHome
		r.State = 0
		r.Flags = 0
		r.PState = nil
		if hm, ok := sp.Proto.(HomeMigrator); ok {
			hm.MigrateRegion(sp.ctx, r, oldHome, newHome)
		}
		sp.refreshFast(r)
	}
	delete(sp.regIn, id)
	sp.eng.Unlock()
	p.ctx.DefaultBarrier()
	p.rec.End(trace.OpChangeProtocol, sp.ID, t)
	return nil
}
