package core

import (
	"fmt"
	"testing"
)

// TestShardedDispatchSyncStress exercises the handler-state audit for
// sharded dispatch: with DispatchLanes > 1, barrier arrivals, lock
// requests and reduction contributions from different processors run on
// node 0 (and each home) concurrently, so barArr, the directory lock
// queues and collAcc are hit from multiple pump goroutines at once.
// Under -race this is the proof the new leaf locks cover them; the
// lock-protected counter and the reduction results check the semantics.
func TestShardedDispatchSyncStress(t *testing.T) {
	const (
		procs = 6
		iters = 40
	)
	for _, lanes := range []int{2, 8} {
		t.Run(fmt.Sprintf("lanes=%d", lanes), func(t *testing.T) {
			cl, err := NewCluster(Options{Procs: procs, DispatchLanes: lanes})
			if err != nil {
				t.Fatalf("NewCluster: %v", err)
			}
			defer cl.Close()
			err = cl.Run(func(p *Proc) error {
				var id RegionID
				if p.ID() == 0 {
					id = p.GMalloc(p.DefaultSpace(), 8)
				}
				id = p.BroadcastID(0, id)
				r := p.Map(id)
				for i := 0; i < iters; i++ {
					// All-reduce: every proc contributes, node 0's collAcc
					// takes contributions on several lanes.
					want := int64(procs * i)
					if got := p.AllReduceInt64(OpSum, int64(i)); got != want {
						return fmt.Errorf("proc %d iter %d: AllReduceInt64 = %d, want %d", p.ID(), i, got, want)
					}
					// Region lock: increment a shared counter under the
					// home-queued lock; requests race on node 0's lanes.
					p.Lock(r)
					p.StartWrite(r)
					r.Data.SetUint64(0, r.Data.Uint64(0)+1)
					p.EndWrite(r)
					p.Unlock(r)
					// Barrier: arrivals race on node 0's lanes.
					p.GlobalBarrier()
				}
				p.Lock(r)
				p.StartRead(r)
				got := r.Data.Uint64(0)
				p.EndRead(r)
				p.Unlock(r)
				if got != procs*iters {
					return fmt.Errorf("proc %d: counter = %d, want %d", p.ID(), got, procs*iters)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
		})
	}
}
