package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/trace"
)

// The access-pattern labels the adaptive controller classifies spaces
// into. Protocols advertise the pattern they serve through
// Info.Adapt.Pattern; the controller switches a space to the protocol
// registered for its observed pattern.
const (
	PatternGeneral          = "general"
	PatternMigratory        = "migratory"
	PatternSingleWriter     = "single-writer"
	PatternProducerConsumer = "producer-consumer"
	PatternHomeWrite        = "home-write"
)

// probeEpochs is the length of a switch's probation window: the number
// of post-cooldown epochs whose mean duration prices the freshly
// installed protocol against the pre-switch per-epoch baseline.
const probeEpochs = 2

// The controller's monitoring collective is an extra cluster-wide
// synchronization round every epoch — real money on a converged space
// that will never switch again. After stableEpochs consecutive epochs
// that gave the controller nothing to do, the epoch length doubles, up
// to maxEpochStretch times the configured EpochBarriers; any signal
// snaps it back. Both windows of a switch measurement (pre-switch
// baseline, post-switch probe) run at the configured length, so their
// per-epoch costs stay comparable.
const (
	stableEpochs    = 3
	maxEpochStretch = 8
)

// AdaptHints is a protocol's declaration to the adaptive controller, part
// of its registry Info. The zero value opts the protocol out entirely:
// the controller neither installs it nor switches a space away from it.
type AdaptHints struct {
	// Adaptive opts the protocol into online adaptation, in both
	// directions: the controller may install it, and a space currently
	// running it may be switched away. Only protocols whose barrier
	// globally synchronizes all processors may declare this — the
	// controller runs collectives at barrier points and relies on every
	// processor reaching them in lockstep.
	Adaptive bool
	// Pattern names the access pattern the protocol serves best (one of
	// the Pattern* constants). The controller installs the protocol when
	// a space's observed pattern matches. Empty means the protocol is a
	// legal switch source but never a target.
	Pattern string
	// HomeWritesOnly marks protocols that reject write sections on
	// regions homed elsewhere (staticupdate, homewrite panic on them).
	// The controller installs such a protocol only while no processor
	// has ever opened a remote write section in the run — the strongest
	// evidence available that the application honors the restriction.
	HomeWritesOnly bool
}

// AdaptConfig enables and tunes the online protocol controller
// (Options.Adapt). The controller observes each adaptable space's access
// pattern through the trace counters and, at barrier points, switches
// the space to the registered protocol matching the pattern. All
// decisions are made from cluster-wide aggregates reduced with the
// runtime's collectives, so every processor takes the same decision at
// the same barrier and the underlying ChangeProtocol stays collective.
type AdaptConfig struct {
	// EpochBarriers is the number of barriers on a space forming one
	// observation epoch; the controller evaluates once per epoch.
	// Epochs that give the controller nothing to do stretch this
	// geometrically (up to 8×) so a converged space stops paying the
	// per-epoch collective; any signal snaps back. Default 4.
	EpochBarriers int
	// Hysteresis is the number of consecutive epochs a space's observed
	// pattern must point at the same non-installed protocol before the
	// controller switches. Default 3.
	Hysteresis int
	// Cooldown is the number of epochs after a switch during which the
	// controller only observes, letting the new protocol warm up (fast-
	// path bits republish lazily, sharer lists rebuild). Default 2;
	// negative means no cooldown.
	Cooldown int
	// MinOps is the minimum cluster-wide bracket count (reads + writes)
	// per epoch for the epoch to carry signal; quieter epochs decay the
	// hysteresis streak instead of feeding it. Default 64.
	MinOps uint64
	// RollbackMargin is the slack factor a switch is granted before the
	// controller reverses it: the first few epochs after the cooldown
	// are the probation window, and if their mean cost per barrier
	// (cluster-wide processor-nanoseconds, quiet epochs included)
	// exceeds the incumbent's recent-epoch baseline times this factor,
	// the controller switches back and stops targeting that pattern on
	// the space for the rest of the run. Default 1.25; negative disables
	// rollback.
	RollbackMargin float64

	// MigrateFactor enables traffic-driven region re-homing: when one
	// processor's share of a space's home-bound protocol traffic in an
	// epoch exceeds this factor times the per-processor mean, the
	// controller migrates that home's hottest region to the least loaded
	// processor (MigrateHome). Zero (the default) disables re-homing
	// entirely — the traffic counters are not even maintained.
	MigrateFactor float64
	// MinMigrateMsgs is the minimum cluster-wide home-bound message
	// count per epoch before the re-homing trigger fires; quieter epochs
	// carry no placement signal. Default 64.
	MinMigrateMsgs uint64
}

func (c AdaptConfig) withDefaults() AdaptConfig {
	if c.EpochBarriers <= 0 {
		c.EpochBarriers = 4
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 3
	}
	if c.Cooldown == 0 {
		c.Cooldown = 2
	} else if c.Cooldown < 0 {
		c.Cooldown = 0
	}
	if c.MinOps == 0 {
		c.MinOps = 64
	}
	if c.RollbackMargin == 0 {
		c.RollbackMargin = 1.25
	} else if c.RollbackMargin < 0 {
		c.RollbackMargin = 0
	}
	if c.MigrateFactor < 0 {
		c.MigrateFactor = 0
	}
	if c.MinMigrateMsgs == 0 {
		c.MinMigrateMsgs = 64
	}
	return c
}

// adaptTargetTable maps each advertised pattern to the protocol
// registered for it. Built once at cluster creation from the registry's
// sorted name list, so every processor resolves patterns identically;
// protocols registered after NewCluster are not considered.
func adaptTargetTable(reg *Registry) map[string]string {
	t := make(map[string]string)
	for _, name := range reg.Names() {
		info, _ := reg.Lookup(name)
		h := info.Adapt
		if !h.Adaptive || h.Pattern == "" {
			continue
		}
		if _, dup := t[h.Pattern]; !dup {
			t[h.Pattern] = name
		}
	}
	return t
}

// adaptState is one space's controller state on one processor. It is
// touched only by the application thread (at barrier points), except for
// pub, the stats snapshot Proc.Snapshot reads concurrently. Every field
// that feeds a decision is derived from cluster-wide aggregates, so the
// states on all processors evolve in lockstep.
type adaptState struct {
	prev     trace.SpaceMetrics // counter snapshot at the last epoch boundary
	barriers int                // barriers since the last epoch boundary
	epoch    uint64
	pattern  string // most recent classification
	target   string // protocol the current mismatch streak points at
	streak   int    // consecutive epochs pointing at target
	cooldown int    // epochs left before evaluation resumes
	switches uint64
	lastSw   uint64

	lastTick time.Time // this processor's clock at the last epoch boundary

	// A switch is measured on both sides. recent is a ring of the
	// incumbent protocol's last few epochs, each priced per barrier
	// (cluster-wide processor-nanoseconds over the epoch's barrier
	// count, so cadence-stretched epochs weigh the same as base ones);
	// its mean at switch time becomes baseCost, and baseProto holds the
	// protocol to restore. Then the new protocol is on probation: after
	// the cooldown, probeEpochs epochs are priced the same way — loud or
	// quiet, wall time is wall time in a bulk-synchronous program — and
	// a mean above baseCost × RollbackMargin restores baseProto.
	// Patterns whose switch regressed land in cooled and are never
	// targeted on this space again.
	recent        [probeEpochs * 2]int64
	recentN       int
	baseProto     string
	basePattern   string
	baseCost      float64
	probeNanos    int64
	probeBarriers int64
	probeCount    int
	cooled        map[string]bool
	rollbacks     uint64
	migrations    uint64

	// Monitoring-cadence backoff (see stableEpochs): stable counts
	// consecutive do-nothing epochs, epochLen is the current barriers-
	// per-epoch (0 means the configured EpochBarriers).
	stable   int
	epochLen int

	pub atomic.Pointer[trace.AdaptStats]
}

// calm records a do-nothing epoch: after stableEpochs in a row the
// monitoring cadence halves (the epoch length doubles, capped at
// maxEpochStretch×), so a converged space stops paying the per-epoch
// collective.
func (st *adaptState) calm(cfg *AdaptConfig) {
	st.stable++
	if st.stable < stableEpochs {
		return
	}
	st.stable = 0
	cur := st.epochLen
	if cur <= 0 {
		cur = cfg.EpochBarriers
	}
	if next := cur * 2; next <= cfg.EpochBarriers*maxEpochStretch {
		st.epochLen = next
	}
}

// wake snaps the cadence back to the configured epoch length: the epoch
// carried signal and the controller needs full resolution again.
func (st *adaptState) wake() {
	st.stable = 0
	st.epochLen = 0
}

// adaptState returns sp's controller state, creating it on first use.
// The baseline snapshot is taken at creation — the first barrier — so
// the setup phase (allocation, data distribution) does not bias the
// first epoch's classification.
func (sp *Space) adaptState() *adaptState {
	if st := sp.adapt.Load(); st != nil {
		return st
	}
	st := &adaptState{lastTick: time.Now()}
	if cur, ok := sp.proc.rec.SpaceSnapshot(sp.ID); ok {
		st.prev = cur
	}
	sp.adapt.Store(st)
	return st
}

func (st *adaptState) publish(sp *Space) {
	s := trace.AdaptStats{
		Space:           sp.ID,
		Protocol:        sp.ProtoName,
		Pattern:         st.pattern,
		Epochs:          st.epoch,
		Switches:        st.switches,
		Rollbacks:       st.rollbacks,
		Migrations:      st.migrations,
		LastSwitchEpoch: st.lastSw,
	}
	st.pub.Store(&s)
}

// adaptTick runs the controller for sp at a barrier point. Called by
// Proc.Barrier (application thread, engine lock released) when
// Options.Adapt is set.
//
// Collective discipline: the tick is gated on the installed protocol's
// Adaptive hint, and adaptive protocols have globally synchronizing
// barriers — so when one processor reaches an epoch boundary, all do,
// and the AllReduce sequence below lines up across processors. Every
// decision input is a cluster-wide aggregate, making the decision — and
// therefore the ChangeProtocol call — identical everywhere without any
// extra coordination round.
func (p *Proc) adaptTick(sp *Space) {
	cfg := p.cl.adapt
	info, ok := p.cl.reg.Lookup(sp.ProtoName)
	if !ok || !info.Adapt.Adaptive {
		return
	}
	st := sp.adaptState()
	st.barriers++
	epochLen := st.epochLen
	if epochLen <= 0 {
		epochLen = cfg.EpochBarriers
	}
	if st.barriers < epochLen {
		return
	}
	st.barriers = 0
	st.epoch++

	cur, ok := p.rec.SpaceSnapshot(sp.ID)
	if !ok {
		return
	}
	delta := cur.Sub(st.prev)
	st.prev = cur
	now := time.Now()
	epochNanos := now.Sub(st.lastTick).Nanoseconds()
	st.lastTick = now

	// The cluster-wide feature vector for this epoch, combined in a
	// single collective round (the tick runs at barrier frequency, so
	// its cost is paid on the application's critical path). Per-processor
	// deltas differ; the aggregates — and everything derived from them —
	// are identical on every processor.
	var wf, rf int64
	if delta.Ops[trace.OpStartWrite] > 0 {
		wf = 1
	}
	if delta.Ops[trace.OpStartRead] > 0 {
		rf = 1
	}
	feats := []int64{
		int64(delta.Ops[trace.OpStartRead]),
		int64(delta.Ops[trace.OpStartWrite]),
		int64(delta.Ops[trace.OpLock]),
		int64(delta.RemoteReadMisses),
		wf,
		rf,
		// Cumulative on purpose: home-writes-only targets are eligible
		// only while no processor has ever opened a remote write section
		// on the space. The counter cannot miss one — a region's first
		// write bracket after creation or a protocol change always takes
		// the slow path (fast bits start withdrawn), which is where
		// misses are counted.
		int64(cur.RemoteWriteMisses),
		// Processor-nanoseconds spent in the epoch; with the op counts
		// it prices the installed protocol, so a switch can be judged
		// against its pre-switch baseline (and reversed).
		epochNanos,
	}
	if p.cl.migrate {
		// Per-home traffic vector, one slot per processor: each
		// contributes its own epoch delta in its own slot, so the reduced
		// vector — like every other decision input — is identical
		// everywhere.
		sp.eng.Lock()
		my := int64(sp.homeIn)
		sp.homeIn = 0
		sp.eng.Unlock()
		loads := make([]int64, p.cl.Procs())
		loads[p.id] = my
		feats = append(feats, loads...)
	}
	agg := p.AllReduceInt64s(OpSum, feats)
	reads, writes, locks := agg[0], agg[1], agg[2]
	remoteReads, nWriters, nReaders := agg[3], agg[4], agg[5]
	remoteWritesEver, nanos := agg[6], agg[7]

	if st.cooldown > 0 {
		st.cooldown--
		st.streak = 0
		st.wake()
		st.publish(sp)
		return
	}

	// Probation: the first probeEpochs epochs after the cooldown price
	// the freshly installed protocol — per barrier, and with quiet
	// epochs included, because barriers delimit the program's work units
	// and a protocol that stretches them costs wall time whether or not
	// the brackets were busy. A mean above the pre-switch baseline (with
	// margin) means the classifier was wrong about this space — switch
	// back and stop chasing the pattern that misled it. Like the
	// decision aggregates, cost is cluster-wide, so every processor
	// reverses (or confirms) in the same collective round.
	if st.baseProto != "" && cfg.RollbackMargin > 0 {
		st.wake()
		st.probeNanos += nanos
		st.probeBarriers += int64(epochLen)
		st.probeCount++
		if st.probeCount < probeEpochs {
			st.publish(sp)
			return
		}
		cost := float64(st.probeNanos) / float64(st.probeBarriers)
		if cost > st.baseCost*cfg.RollbackMargin {
			restore := st.baseProto
			if st.cooled == nil {
				st.cooled = make(map[string]bool)
			}
			st.cooled[st.basePattern] = true
			st.baseProto = ""
			st.rollbacks++
			st.switches++
			st.lastSw = st.epoch
			st.cooldown = cfg.Cooldown
			st.streak = 0
			st.target = ""
			if err := p.ChangeProtocol(sp, restore); err != nil {
				panic(fmt.Sprintf("core: proc %d: adaptive rollback of space %d to %q failed: %v",
					p.id, sp.ID, restore, err))
			}
			if cur, ok := p.rec.SpaceSnapshot(sp.ID); ok {
				st.prev = cur
			}
			st.lastTick = time.Now()
			st.publish(sp)
			return
		}
		st.baseProto = "" // probation passed; the switch stands
	}

	// Placement: with re-homing enabled, a sufficiently skewed per-home
	// traffic vector triggers a MigrateHome before (and instead of) this
	// epoch's protocol evaluation. Runs only outside cooldown and
	// probation — both gates above are lockstep decisions, so every
	// processor reaches (or skips) the migration collective together.
	if p.cl.migrate && p.adaptMigrate(sp, st, agg[8:], cfg) {
		st.streak = 0
		st.target = ""
		st.wake()
		// Re-baseline so the migration's flush traffic is not read as
		// application signal next epoch.
		if cur, ok := p.rec.SpaceSnapshot(sp.ID); ok {
			st.prev = cur
		}
		st.lastTick = time.Now()
		st.publish(sp)
		return
	}

	// This epoch is the status quo protocol's to account for: it feeds
	// the per-barrier cost baseline the next switch will be judged by.
	st.recent[st.recentN%len(st.recent)] = nanos / int64(epochLen)
	st.recentN++

	if uint64(reads+writes) < cfg.MinOps {
		st.streak = 0
		st.calm(cfg)
		st.publish(sp)
		return
	}

	st.pattern = classifyPattern(reads, writes, locks, remoteReads,
		nReaders, nWriters, remoteWritesEver == 0, info.Adapt.Pattern)
	target, ok := p.cl.adaptTargets[st.pattern]
	if ok && st.cooled[st.pattern] {
		ok = false // a switch for this pattern already regressed here
	}
	if ok {
		tinfo, _ := p.cl.reg.Lookup(target)
		if tinfo.Adapt.HomeWritesOnly && remoteWritesEver != 0 {
			ok = false
		}
	}
	if !ok || target == sp.ProtoName {
		st.streak = 0
		st.target = ""
		st.calm(cfg)
		st.publish(sp)
		return
	}
	if st.target != target {
		st.target = target
		st.streak = 0
	}
	st.streak++
	st.wake()
	if st.streak < cfg.Hysteresis {
		st.publish(sp)
		return
	}

	st.streak = 0
	st.target = ""
	st.cooldown = cfg.Cooldown
	st.switches++
	st.lastSw = st.epoch
	// Arm probation: remember where we came from and what the incumbent's
	// recent epochs cost per barrier, so the post-cooldown probe window
	// can judge the switch.
	st.baseProto = sp.ProtoName
	st.basePattern = st.pattern
	n := st.recentN
	if n > len(st.recent) {
		n = len(st.recent)
	}
	var sum int64
	for i := 0; i < n; i++ {
		sum += st.recent[i]
	}
	st.baseCost = float64(sum) / float64(n)
	st.probeNanos = 0
	st.probeBarriers = 0
	st.probeCount = 0
	if err := p.ChangeProtocol(sp, target); err != nil {
		// Unreachable unless the lockstep invariant above is broken:
		// the target was looked up, and verifyCollective can only
		// mismatch if processors decided differently.
		panic(fmt.Sprintf("core: proc %d: adaptive switch of space %d to %q failed: %v",
			p.id, sp.ID, target, err))
	}
	// Re-baseline so the switch's own flush/init traffic is not read as
	// application signal next epoch.
	if cur, ok := p.rec.SpaceSnapshot(sp.ID); ok {
		st.prev = cur
	}
	st.lastTick = time.Now()
	st.publish(sp)
}

// adaptMigrate evaluates the re-homing trigger against the epoch's
// reduced per-home traffic vector and, when one home dominates,
// migrates its hottest region to the least loaded processor. Returns
// whether a migration ran. Collective discipline: the decision is a
// pure function of the identical reduced vector, the candidate region
// is broadcast from the hot home, and MigrateHome is itself collective
// — so all processors take the same path.
func (p *Proc) adaptMigrate(sp *Space, st *adaptState, loads []int64, cfg *AdaptConfig) bool {
	if len(loads) != p.cl.Procs() {
		panic(fmt.Sprintf("core: proc %d: migration load vector has %d slots for %d procs",
			p.id, len(loads), p.cl.Procs()))
	}
	var total int64
	hot, cold := 0, 0
	for i, v := range loads {
		total += v
		if v > loads[hot] {
			hot = i
		}
		if v < loads[cold] {
			cold = i
		}
	}
	if total < int64(cfg.MinMigrateMsgs) || hot == cold {
		return false
	}
	mean := float64(total) / float64(len(loads))
	if float64(loads[hot]) <= cfg.MigrateFactor*mean {
		return false
	}
	// The hot home nominates its busiest region of the space; everyone
	// else learns it from the broadcast. Zero means the traffic was not
	// attributable to a region still homed there — no-op epoch.
	var cand RegionID
	if int(p.id) == hot {
		var best uint64
		sp.eng.Lock()
		for id, n := range sp.regIn {
			r := p.ctx.Region(id)
			if r == nil || !r.IsHome() || r.Space != sp {
				continue
			}
			if n > best || (n == best && (cand == 0 || id < cand)) {
				best, cand = n, id
			}
		}
		sp.eng.Unlock()
	}
	id := p.BroadcastID(hot, cand)
	if id == 0 {
		return false
	}
	if err := p.MigrateHome(sp, id, amnet.NodeID(cold)); err != nil {
		// Unreachable unless the lockstep invariant is broken (see the
		// adaptive-switch panic above).
		panic(fmt.Sprintf("core: proc %d: adaptive migration of %v to %d failed: %v",
			p.id, id, cold, err))
	}
	st.migrations++
	return true
}

// classifyPattern maps one epoch's cluster-wide features to an access-
// pattern label. Pure and deterministic: every processor computes the
// same label from the same aggregates.
//
// The heuristics mirror the protocol library's intended niches
// (package proto):
//
//   - lock-mediated writes → migratory: data moves in exclusive bursts
//     with the lock, so ownership should travel once per burst.
//   - home-only writes with remote readers → the barrier push-or-pull
//     family. Read-dominated epochs choose the push side
//     (producer-consumer → staticupdate, which learns sharer lists and
//     pushes at barriers); write-dominated epochs choose the pull side
//     (home-write → homewrite, where pushing every write would waste
//     bandwidth).
//   - one writer, several readers, writes not home-confined →
//     single-writer: the update protocol propagates each completed
//     write without exclusive-ownership round trips.
//   - anything else → general: sequentially consistent invalidation.
//
// current is the installed protocol's advertised pattern ("" when it
// advertises none) and makes the push-family classification sticky: a
// barrier-push protocol suppresses the very remote read misses that
// betrayed the pattern under the invalidation protocol, so absence of
// misses while one is installed is evidence of success, not of pattern
// exit. The remoteReads > 0 requirement therefore gates only the entry
// into the family; leaving it requires a positive signal (locks, a
// second writer, remote writes) classified by the earlier cases.
func classifyPattern(reads, writes, locks, remoteReads, nReaders, nWriters int64, homeWritesOnly bool, current string) string {
	inPushFamily := current == PatternProducerConsumer || current == PatternHomeWrite
	switch {
	case locks > 0 && writes > 0:
		return PatternMigratory
	case homeWritesOnly && writes > 0 && nReaders > 1 && (remoteReads > 0 || inPushFamily):
		if reads >= writes {
			return PatternProducerConsumer
		}
		return PatternHomeWrite
	case nWriters == 1 && writes > 0 && nReaders > 1:
		return PatternSingleWriter
	default:
		return PatternGeneral
	}
}
