package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/faultnet"
)

// runColl spins up a cluster with the given collective topology and
// runs fn SPMD.
func runColl(t *testing.T, n int, topo CollTopology, fn func(p *Proc) error) {
	t.Helper()
	cl, err := NewCluster(Options{Procs: n, Coll: CollConfig{Topology: topo}})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cl.Close()
	if err := cl.Run(fn); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestTreeShape(t *testing.T) {
	// parent(v) clears the lowest set bit.
	for _, tc := range []struct{ v, parent int }{
		{1, 0}, {2, 0}, {3, 2}, {4, 0}, {5, 4}, {6, 4}, {7, 6}, {8, 0}, {12, 8}, {13, 12},
	} {
		if got := treeParentOf(tc.v); got != tc.parent {
			t.Errorf("treeParentOf(%d) = %d, want %d", tc.v, got, tc.parent)
		}
	}
	// Children invert the parent relation exactly, for assorted sizes.
	for _, n := range []int{1, 2, 3, 5, 8, 9, 16, 17, 31} {
		seen := make(map[int]bool)
		for v := 0; v < n; v++ {
			for _, k := range treeKidsOf(v, n) {
				if k <= v || k >= n {
					t.Fatalf("n=%d: child %d of %d out of range", n, k, v)
				}
				if seen[k] {
					t.Fatalf("n=%d: rank %d has two parents", n, k)
				}
				seen[k] = true
				if got := treeParentOf(k); got != v {
					t.Fatalf("n=%d: treeParentOf(%d) = %d, want %d", n, k, got, v)
				}
			}
		}
		if len(seen) != n-1 {
			t.Fatalf("n=%d: %d ranks have parents, want %d", n, len(seen), n-1)
		}
	}
}

func TestTopologySelection(t *testing.T) {
	for _, tc := range []struct {
		procs int
		topo  CollTopology
		tree  bool
	}{
		{2, CollAuto, false},
		{collStarMax, CollAuto, false},
		{collStarMax + 1, CollAuto, true},
		{8, CollStar, false},
		{2, CollTree, true},
	} {
		cl, err := NewCluster(Options{Procs: tc.procs, Coll: CollConfig{Topology: tc.topo}})
		if err != nil {
			t.Fatalf("NewCluster(%d, %v): %v", tc.procs, tc.topo, err)
		}
		if cl.collTree != tc.tree {
			t.Errorf("procs=%d topo=%v: collTree = %v, want %v", tc.procs, tc.topo, cl.collTree, tc.tree)
		}
		cl.Close()
	}
	if _, err := NewCluster(Options{Procs: 2, Coll: CollConfig{Topology: CollTopology(99)}}); err == nil {
		t.Error("expected error for unknown collective topology")
	}
}

// TestTreeCollectivesCorrect runs the full collective API on the tree
// topology across sizes that exercise every tree shape: powers of two,
// one-past, odd, and the trivial pair.
func TestTreeCollectivesCorrect(t *testing.T) {
	for _, procs := range []int{2, 3, 5, 8, 9, 16} {
		procs := procs
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			t.Parallel()
			runColl(t, procs, CollTree, func(p *Proc) error {
				for round := 0; round < 3; round++ {
					p.GlobalBarrier()
					if got, want := p.AllReduceInt64(OpSum, int64(p.ID()+1)), int64(procs*(procs+1)/2); got != want {
						return fmt.Errorf("sum = %d, want %d", got, want)
					}
					if got := p.AllReduceInt64(OpMin, int64(p.ID())-3); got != -3 {
						return fmt.Errorf("min = %d, want -3", got)
					}
					if got, want := p.AllReduceInt64(OpMax, int64(p.ID())), int64(procs-1); got != want {
						return fmt.Errorf("max = %d, want %d", got, want)
					}
					if got, want := p.AllReduceFloat64(OpSum, 0.5), float64(procs)*0.5; got != want {
						return fmt.Errorf("fsum = %v, want %v", got, want)
					}
					if got := p.AllReduceFloat64(OpMin, float64(p.ID())+0.25); got != 0.25 {
						return fmt.Errorf("fmin = %v, want 0.25", got)
					}
					vec := p.AllReduceInt64s(OpSum, []int64{1, int64(p.ID()), -2})
					if vec[0] != int64(procs) || vec[1] != int64(procs*(procs-1)/2) || vec[2] != int64(-2*procs) {
						return fmt.Errorf("vector sum = %v", vec)
					}
					for root := 0; root < procs; root++ {
						var data []byte
						if p.ID() == root {
							data = []byte(fmt.Sprintf("r%d-%d", root, round))
						}
						got := p.Broadcast(root, data)
						if want := fmt.Sprintf("r%d-%d", root, round); string(got) != want {
							return fmt.Errorf("proc %d: broadcast from %d gave %q, want %q", p.ID(), root, got, want)
						}
					}
				}
				p.GlobalBarrier()
				return nil
			})
		})
	}
}

// TestStarTreeBitIdentical: the two topologies must produce the same
// bits for the non-associative float sum, because both fold
// contributions in the canonical binomial order.
func TestStarTreeBitIdentical(t *testing.T) {
	const procs = 8
	contrib := func(id int) float64 {
		// Values chosen so different association orders give different
		// bits (verified: naive left-to-right vs pairwise differ).
		return math.Sqrt(float64(id)+1) * math.Pow(10, float64(id%5-2))
	}
	results := make(map[CollTopology][]uint64)
	for _, topo := range []CollTopology{CollStar, CollTree} {
		var got []uint64
		cl, err := NewCluster(Options{Procs: procs, Coll: CollConfig{Topology: topo}})
		if err != nil {
			t.Fatal(err)
		}
		err = cl.Run(func(p *Proc) error {
			for round := 0; round < 4; round++ {
				v := p.AllReduceFloat64(OpSum, contrib(p.ID()+round))
				if p.ID() == 0 {
					got = append(got, math.Float64bits(v))
				}
				p.GlobalBarrier()
			}
			return nil
		})
		cl.Close()
		if err != nil {
			t.Fatalf("topo %v: %v", topo, err)
		}
		results[topo] = got
	}
	for i := range results[CollStar] {
		if results[CollStar][i] != results[CollTree][i] {
			t.Errorf("round %d: star bits %x != tree bits %x", i, results[CollStar][i], results[CollTree][i])
		}
	}
}

// TestTreeRootNotSerialized: on the tree, the root handles O(log P)
// messages per reduction instead of O(P) — the tentpole's structural
// claim, asserted via the hop counters (each node counts the messages
// it sends, so node 0's recv load is the sum of everyone's sends to
// it; instead we check no node *sends* more than its tree degree).
func TestTreeRootNotSerialized(t *testing.T) {
	const procs = 16
	cl, err := NewCluster(Options{Procs: procs, Coll: CollConfig{Topology: CollTree}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const rounds = 10
	if err := cl.Run(func(p *Proc) error {
		for i := 0; i < rounds; i++ {
			p.AllReduceInt64(OpSum, 1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Root of a 16-node binomial tree has 4 children: one partial recv
	// per child and a 4-message result fan per round, so its own sends
	// are 4 per round — star would send 16 per round from node 0.
	root := cl.procs[0].coll.Snapshot()
	if perRound := float64(root.Hops) / rounds; perRound > float64(len(cl.procs[0].treeKids))+0.01 {
		t.Errorf("root sends %.1f msgs/round, want <= %d (tree degree)", perRound, len(cl.procs[0].treeKids))
	}
}

// TestTreeBarrierLaneOverlapStress: with sharded dispatch, arrivals for
// generation g+1 race the release wave of generation g on different
// lanes; the per-generation keying must keep them straight, and the
// state tables must drain to empty when the run ends.
func TestTreeBarrierLaneOverlapStress(t *testing.T) {
	const procs, rounds = 8, 200
	cl, err := NewCluster(Options{Procs: procs, DispatchLanes: 4, Coll: CollConfig{Topology: CollTree}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Run(func(p *Proc) error {
		for i := 0; i < rounds; i++ {
			p.GlobalBarrier()
			if i%10 == 0 {
				// Mix in reductions so hColl and hBarArrive interleave.
				if got := p.AllReduceInt64(OpSum, 1); got != procs {
					return fmt.Errorf("sum = %d", got)
				}
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, p := range cl.procs {
		p.barMu.Lock()
		nbar := len(p.barTree)
		p.barMu.Unlock()
		p.accMu.Lock()
		nacc := len(p.collAcc)
		p.accMu.Unlock()
		if nbar != 0 || nacc != 0 {
			t.Errorf("proc %d: %d barrier generations, %d reduce partials leaked", p.id, nbar, nacc)
		}
	}
}

// TestBatcherRoundTrip: the aggregation wire format survives
// encode/decode, preserving record order, sizes and contents.
func TestBatcherRoundTrip(t *testing.T) {
	run(t, 1, func(p *Proc) error {
		sp := p.DefaultSpace()
		ctx := sp.ctx
		var regions []*Region
		for i, size := range []int{8, 24, 8, 64} {
			r := p.Map(p.GMalloc(sp, size))
			p.StartWrite(r)
			for j := range r.Data {
				r.Data[j] = byte(i*16 + j)
			}
			p.EndWrite(r)
			regions = append(regions, r)
		}
		b := ctx.NewBatcher(sp, 42)
		if b.Pending() {
			return fmt.Errorf("fresh batcher pending")
		}
		for _, r := range regions {
			b.Add(0, r)
		}
		if !b.Pending() {
			return fmt.Errorf("batcher not pending after Add")
		}
		bb := b.bufs[0]
		recs := p.decodeBatch(sp, amnet.Msg{A: uint64(bb.n), Payload: bb.data})
		if len(recs) != len(regions) {
			return fmt.Errorf("decoded %d records, want %d", len(recs), len(regions))
		}
		for i, rec := range recs {
			if rec.R != regions[i] {
				return fmt.Errorf("record %d: wrong region %v", i, rec.R.ID)
			}
			if len(rec.Data) != len(regions[i].Data) {
				return fmt.Errorf("record %d: %d bytes, want %d", i, len(rec.Data), len(regions[i].Data))
			}
			for j := range rec.Data {
				if rec.Data[j] != byte(i*16+j) {
					return fmt.Errorf("record %d byte %d: %d", i, j, rec.Data[j])
				}
			}
		}
		// Flushing to self delivers through the real handler path; the
		// default protocol is not a BatchDeliverer, so just reset here
		// and verify buffer reuse re-registers the destination.
		bb.data, bb.n = bb.data[:0], 0
		b.order = b.order[:0]
		if b.Pending() {
			return fmt.Errorf("batcher pending after reset")
		}
		b.Add(0, regions[0])
		if !b.Pending() || b.bufs[0].n != 1 {
			return fmt.Errorf("batcher did not re-register destination after reset")
		}
		return nil
	})
}

// TestBatchFrameTruncationPanics: a malformed frame must fail loudly,
// not decode garbage.
func TestBatchFrameTruncationPanics(t *testing.T) {
	run(t, 1, func(p *Proc) error {
		sp := p.DefaultSpace()
		r := p.Map(p.GMalloc(sp, 16))
		var buf []byte
		var hdr [12]byte
		binary.LittleEndian.PutUint64(hdr[:8], uint64(r.ID))
		binary.LittleEndian.PutUint32(hdr[8:], 999) // size beyond payload
		buf = append(buf, hdr[:]...)
		buf = append(buf, make([]byte, 16)...)
		defer func() {
			if recover() == nil {
				t.Error("truncated frame did not panic")
			}
		}()
		p.decodeBatch(sp, amnet.Msg{A: 1, Payload: buf})
		return nil
	})
}

// waitPurged polls until cond holds or the deadline passes — the purge
// runs on its own goroutine after peer loss, so tests must wait for it.
func waitPurged(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Errorf("%s not purged after peer loss", what)
}

// collStateEmpty reports whether p holds no pending collective state.
func collStateEmpty(p *Proc) bool {
	p.barMu.Lock()
	nbar := len(p.barArr) + len(p.barTree)
	p.barMu.Unlock()
	p.accMu.Lock()
	nacc := len(p.collAcc)
	p.accMu.Unlock()
	return nbar == 0 && nacc == 0
}

// TestPeerLossPurgesCollectiveState: killing a peer between arrival and
// release must (a) fail the survivors' blocked collectives with
// ErrPeerLost and (b) purge every pending barrier generation and
// reduction partial, on both topologies.
func TestPeerLossPurgesCollectiveState(t *testing.T) {
	for _, tc := range []struct {
		name  string
		topo  CollTopology
		procs int
	}{
		{"star", CollStar, 3},
		{"tree", CollTree, 5},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			inner, err := amnet.NewChanNetwork(amnet.ChanConfig{Nodes: tc.procs})
			if err != nil {
				t.Fatal(err)
			}
			nw := faultnet.Wrap(inner, faultnet.Policy{})
			cl, err := NewCluster(Options{
				Procs:     tc.procs,
				Transport: amnet.Fixed(nw),
				Coll:      CollConfig{Topology: tc.topo},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			victim := tc.procs - 1
			err = cl.Run(func(p *Proc) error {
				// A completed round first, so state tables have been
				// exercised and drained once.
				p.AllReduceInt64(OpSum, 1)
				if p.ID() == victim {
					// Die between the survivors' arrival and the release:
					// never contribute to the next round.
					nw.Kill(amnet.NodeID(victim))
					return nil
				}
				p.AllReduceInt64(OpSum, 1) // partials strand at interior nodes
				p.GlobalBarrier()          // arrivals strand in barArr/barTree
				return nil
			})
			if !errors.Is(err, ErrPeerLost) {
				t.Fatalf("Run error = %v, want ErrPeerLost", err)
			}
			for _, p := range cl.procs {
				p := p
				waitPurged(t, fmt.Sprintf("proc %d collective state", p.id), func() bool { return collStateEmpty(p) })
			}
		})
	}
}

// TestPeerLossPurgesLockQueue: a queued lock waiter purges with the
// rest of the synchronization state when a peer dies.
func TestPeerLossPurgesLockQueue(t *testing.T) {
	const procs = 3
	inner, err := amnet.NewChanNetwork(amnet.ChanConfig{Nodes: procs})
	if err != nil {
		t.Fatal(err)
	}
	nw := faultnet.Wrap(inner, faultnet.Policy{})
	cl, err := NewCluster(Options{Procs: procs, Transport: amnet.Fixed(nw)})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *Proc) error {
		var id RegionID
		if p.ID() == 0 {
			id = p.GMalloc(p.DefaultSpace(), 8)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		switch p.ID() {
		case 0:
			p.Lock(r) // holder; never unlocks
			p.GlobalBarrier()
		case 1:
			p.Lock(r) // queues behind proc 0, then fails on peer loss
		case 2:
			time.Sleep(50 * time.Millisecond) // let proc 1 queue
			nw.Kill(2)
		}
		return nil
	})
	if !errors.Is(err, ErrPeerLost) {
		t.Fatalf("Run error = %v, want ErrPeerLost", err)
	}
	home := cl.procs[0]
	waitPurged(t, "lock queue", func() bool {
		empty := true
		for _, r := range home.regionList() {
			if r.Dir == nil {
				continue
			}
			r.Dir.lockMu.Lock()
			if len(r.Dir.LockQueue) != 0 {
				empty = false
			}
			r.Dir.lockMu.Unlock()
		}
		return empty
	})
}
