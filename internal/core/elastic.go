package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"github.com/acedsm/ace/internal/faultnet"
)

// This file implements elastic membership: collective checkpoints of
// per-space region state, restoration of a checkpoint into a freshly
// set-up (or revived) cluster, and the revive/resume path that lets an
// in-process cluster recover from a Kill instead of being unusable
// after ErrPeerLost.
//
// The recovery model is coordinated rollback plus re-execution. A
// barrier generation cannot be replayed by one processor alone — its
// peers' arrival records for completed generations are gone — so after
// a peer loss every processor rolls back to the last collective
// checkpoint and re-executes the program from its cursor. Execution is
// deterministic (the SPMD programs the harness runs derive all values
// from seeds), so the re-executed run converges to bit-identical state,
// and the work replayed is bounded by the checkpoint generation, not
// the full history.

// CheckpointRegion is one home region's snapshot inside a Checkpoint.
type CheckpointRegion struct {
	ID    RegionID
	Space int
	Size  int
	Data  []byte
}

// Checkpoint is one processor's collectively-taken snapshot: the data
// of every region homed here, the per-space protocol bindings, and the
// cursors (barrier generation, collective sequence, allocation
// sequence, application step) that version it. Checkpoints taken by
// the same Proc.Checkpoint call on different processors share Gen and
// App, which is what makes a set of per-rank checkpoint files a
// consistent cut.
type Checkpoint struct {
	Rank    int    // processor that took the snapshot
	Procs   int    // cluster size at snapshot time
	Gen     uint64 // barrier generation at the snapshot barrier
	CollSeq uint64 // collective sequence at snapshot time
	NextSeq uint64 // region allocation cursor
	App     uint64 // application-defined cursor (e.g. the step count)

	// Protos is the protocol name of each space, indexed by space id.
	Protos []string

	// Regions holds every region homed at Rank, sorted by id.
	Regions []CheckpointRegion
}

// Checkpoint takes a collective snapshot of every space. All
// processors must call it at the same program point with the same app
// cursor (verified). The sequence mirrors ChangeProtocol's safety
// argument: a barrier fences in-flight brackets, FlushSpace drives
// every region to the base state (authoritative data at the home, no
// dirty cached copies), a second barrier fences the flush traffic, and
// only then — with no coherence message in flight anywhere — is the
// home data copied. A final barrier holds every processor until all
// snapshots are done, so no post-checkpoint write can race a copy.
func (p *Proc) Checkpoint(app uint64) (*Checkpoint, error) {
	if err := p.verifyCollective(fmt.Sprintf("ckpt:%d", app)); err != nil {
		return nil, err
	}
	p.ctx.DefaultBarrier()
	sps := *p.spaces.Load()
	for _, sp := range sps {
		if sp == nil {
			continue // freed slot awaiting reuse
		}
		sp.eng.Lock()
		sp.Proto.FlushSpace(sp.ctx, sp)
		// The flush invalidated cached copies space-wide; withdraw every
		// region's fast bits so no bracket keeps fast-hitting a flushed
		// copy (the protocol republishes lazily, as after ChangeProtocol).
		for _, r := range p.regionList() {
			if r.Space == sp {
				r.publishFast(0)
			}
		}
		sp.eng.Unlock()
	}
	p.ctx.DefaultBarrier()

	ck := &Checkpoint{
		Rank:    int(p.id),
		Procs:   p.cl.Procs(),
		Gen:     p.barGen,
		CollSeq: p.collSeq,
		App:     app,
		Protos:  make([]string, len(sps)),
	}
	p.regMu.RLock()
	ck.NextSeq = p.nextSeq
	p.regMu.RUnlock()
	for i, sp := range sps {
		if sp == nil {
			continue // freed slot: Protos[i] stays "", no regions to record
		}
		sp.eng.Lock()
		ck.Protos[i] = sp.ProtoName
		for _, r := range p.regionList() {
			if r.Space != sp || !r.IsHome() {
				continue
			}
			data := make([]byte, r.Size)
			copy(data, r.Data)
			ck.Regions = append(ck.Regions, CheckpointRegion{
				ID: r.ID, Space: sp.ID, Size: r.Size, Data: data,
			})
		}
		sp.eng.Unlock()
	}
	sort.Slice(ck.Regions, func(i, j int) bool { return ck.Regions[i].ID < ck.Regions[j].ID })
	p.ctx.DefaultBarrier()
	return ck, nil
}

// RestoreCheckpoint installs ck's state into this processor: every
// region of every checkpointed space is reset to the base state (as a
// protocol change would), each space's protocol is re-instantiated to
// the recorded binding, and the home-region data is copied back in.
// The caller orchestrates the collective discipline: all processors
// restore checkpoints of the same Gen/App before any resumes
// execution, with no traffic in flight (a fresh bootstrap, or after
// Cluster.Revive).
//
// The region table itself is not recorded: the caller re-runs its
// deterministic setup first (GMalloc sequences restart at the same
// ids), or resumes an in-process cluster whose tables survived. A
// checkpointed region the table does not have — or has at the wrong
// size, or no longer homed here — fails the restore, which is how a
// stale or mismatched checkpoint is caught instead of poisoning the
// cluster.
func (p *Proc) RestoreCheckpoint(ck *Checkpoint) error {
	if ck == nil {
		return errors.New("core: restore of nil checkpoint")
	}
	if ck.Procs != p.cl.Procs() {
		return fmt.Errorf("core: checkpoint is for %d procs, cluster has %d", ck.Procs, p.cl.Procs())
	}
	if ck.Rank != int(p.id) {
		return fmt.Errorf("core: proc %d restoring checkpoint of rank %d", p.id, ck.Rank)
	}
	sps := *p.spaces.Load()
	if len(ck.Protos) != len(sps) {
		return fmt.Errorf("core: checkpoint names %d spaces, cluster has %d — re-run setup first",
			len(ck.Protos), len(sps))
	}
	for i, name := range ck.Protos {
		sp := sps[i]
		if name == "" {
			// Slot i was freed at snapshot time; it must still be free (the
			// caller re-ran the same deterministic setup).
			if sp != nil {
				return fmt.Errorf("core: checkpoint has space %d freed, cluster has it live — re-run setup first", i)
			}
			continue
		}
		if sp == nil {
			return fmt.Errorf("core: checkpoint names space %d, cluster has the slot freed — re-run setup first", i)
		}
		info, ok := p.cl.reg.Lookup(name)
		if !ok {
			return fmt.Errorf("core: checkpoint protocol %q not registered", name)
		}
		sp.eng.Lock()
		for _, r := range p.regionList() {
			if r.Space != sp {
				continue
			}
			r.disableFast()
			r.State = 0
			r.Flags = 0
			r.PState = nil
			if r.Dir != nil {
				r.Dir.ResetCoherence()
				r.Dir.lockMu.Lock()
				r.Dir.LockHolder = -1
				r.Dir.LockQueue = nil
				r.Dir.lockMu.Unlock()
			}
			r.publishFast(0)
		}
		sp.Proto = info.New()
		sp.ProtoName = name
		sp.Epoch++
		sp.PData = nil
		sp.homeIn = 0
		sp.regIn = nil
		sp.fp, _ = sp.Proto.(FastPather)
		p.rec.SetProtocol(sp.ID, name)
		sp.Proto.InitSpace(sp.ctx, sp)
		sp.eng.Unlock()
	}
	for _, cr := range ck.Regions {
		r := p.ctx.Region(cr.ID)
		if r == nil {
			return fmt.Errorf("core: proc %d: checkpointed region %v missing — setup mismatch", p.id, cr.ID)
		}
		if !r.IsHome() {
			return fmt.Errorf("core: proc %d: checkpointed region %v no longer homed here", p.id, cr.ID)
		}
		if r.Size != cr.Size || len(cr.Data) != cr.Size {
			return fmt.Errorf("core: proc %d: checkpointed region %v size %d, local %d", p.id, cr.ID, cr.Size, r.Size)
		}
		sp := r.Space
		sp.eng.Lock()
		copy(r.Data, cr.Data)
		sp.eng.Unlock()
	}
	p.regMu.Lock()
	if p.nextSeq < ck.NextSeq {
		p.nextSeq = ck.NextSeq
	}
	p.regMu.Unlock()
	return nil
}

// ckptMagic versions the checkpoint wire format.
const ckptMagic uint32 = 0x41434b31 // "ACK1"

// EncodeCheckpoint renders ck in the versioned binary checkpoint
// format (little-endian):
//
//	magic u32, procs u32, rank u32, spaces u32,
//	gen u64, collseq u64, nextseq u64, app u64,
//	per space: nameLen u32 + name bytes,
//	nregions u32, per region: id u64, space u32, size u32, data bytes.
func EncodeCheckpoint(ck *Checkpoint) []byte {
	size := 4*4 + 4*8
	for _, name := range ck.Protos {
		size += 4 + len(name)
	}
	size += 4
	for _, cr := range ck.Regions {
		size += 8 + 4 + 4 + len(cr.Data)
	}
	buf := make([]byte, 0, size)
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	u32(ckptMagic)
	u32(uint32(ck.Procs))
	u32(uint32(ck.Rank))
	u32(uint32(len(ck.Protos)))
	u64(ck.Gen)
	u64(ck.CollSeq)
	u64(ck.NextSeq)
	u64(ck.App)
	for _, name := range ck.Protos {
		u32(uint32(len(name)))
		buf = append(buf, name...)
	}
	u32(uint32(len(ck.Regions)))
	for _, cr := range ck.Regions {
		u64(uint64(cr.ID))
		u32(uint32(cr.Space))
		u32(uint32(cr.Size))
		buf = append(buf, cr.Data...)
	}
	return buf
}

// DecodeCheckpoint parses the binary checkpoint format, rejecting
// truncated or malformed input with an error (never a panic): a
// half-written checkpoint file must fail a rejoin loudly, not poison
// the cluster with partial state.
func DecodeCheckpoint(buf []byte) (*Checkpoint, error) {
	off := 0
	u32 := func() (uint32, error) {
		if off+4 > len(buf) {
			return 0, fmt.Errorf("core: truncated checkpoint at byte %d of %d", off, len(buf))
		}
		v := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		return v, nil
	}
	u64 := func() (uint64, error) {
		if off+8 > len(buf) {
			return 0, fmt.Errorf("core: truncated checkpoint at byte %d of %d", off, len(buf))
		}
		v := binary.LittleEndian.Uint64(buf[off:])
		off += 8
		return v, nil
	}
	magic, err := u32()
	if err != nil {
		return nil, err
	}
	if magic != ckptMagic {
		return nil, fmt.Errorf("core: bad checkpoint magic %#x", magic)
	}
	var ck Checkpoint
	procs, err := u32()
	if err != nil {
		return nil, err
	}
	rank, err := u32()
	if err != nil {
		return nil, err
	}
	nspaces, err := u32()
	if err != nil {
		return nil, err
	}
	if procs == 0 || procs > MaxProcs || rank >= procs || nspaces > 1<<16 {
		return nil, fmt.Errorf("core: implausible checkpoint header: procs %d rank %d spaces %d", procs, rank, nspaces)
	}
	ck.Procs, ck.Rank = int(procs), int(rank)
	if ck.Gen, err = u64(); err != nil {
		return nil, err
	}
	if ck.CollSeq, err = u64(); err != nil {
		return nil, err
	}
	if ck.NextSeq, err = u64(); err != nil {
		return nil, err
	}
	if ck.App, err = u64(); err != nil {
		return nil, err
	}
	ck.Protos = make([]string, nspaces)
	for i := range ck.Protos {
		n, err := u32()
		if err != nil {
			return nil, err
		}
		if off+int(n) > len(buf) || n > 1<<10 {
			return nil, fmt.Errorf("core: truncated checkpoint protocol name at byte %d", off)
		}
		ck.Protos[i] = string(buf[off : off+int(n)])
		off += int(n)
	}
	nregions, err := u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nregions; i++ {
		id, err := u64()
		if err != nil {
			return nil, err
		}
		space, err := u32()
		if err != nil {
			return nil, err
		}
		size, err := u32()
		if err != nil {
			return nil, err
		}
		if space >= nspaces {
			return nil, fmt.Errorf("core: checkpoint region %v names unknown space %d", RegionID(id), space)
		}
		if off+int(size) > len(buf) {
			return nil, fmt.Errorf("core: truncated checkpoint region data at byte %d of %d", off, len(buf))
		}
		data := make([]byte, size)
		copy(data, buf[off:off+int(size)])
		off += int(size)
		ck.Regions = append(ck.Regions, CheckpointRegion{
			ID: RegionID(id), Space: int(space), Size: int(size), Data: data,
		})
	}
	if off != len(buf) {
		return nil, fmt.Errorf("core: %d trailing bytes after checkpoint", len(buf)-off)
	}
	return &ck, nil
}

// FaultNet returns the fault-injection wrapper around the cluster's
// network, or nil when the cluster runs without Options.Faults. Chaos
// harnesses use it to Kill a peer mid-run and Revive it for a rejoin
// drill.
func (c *Cluster) FaultNet() *faultnet.Network {
	fn, _ := c.net.(*faultnet.Network)
	return fn
}

// Revive resets every local processor's peer-loss state after a
// simulated kill, so the cluster can Resume: the down latch re-arms,
// purged synchronization tables are re-cleared, and every outstanding
// waiter is retired (its seq is never reused — nextWaiter is
// monotonic — so a stale completion still in flight strands
// harmlessly).
//
// Only in-process clusters (all processors local) can revive; a
// multi-process deployment recovers by tearing down and re-Joining at
// a higher recovery epoch instead. The caller must first quiesce the
// transport (FaultNet().Revive + Quiesce) so no pre-kill message is
// released after the down latch resets — the arrival handlers drop
// stale traffic only while downPeer is set.
func (c *Cluster) Revive() error {
	if len(c.procs) != c.nodes {
		return errors.New("core: Revive on a multi-process cluster — re-Join instead")
	}
	if !c.ran {
		return errors.New("core: Revive before Run")
	}
	c.reviveEpoch++
	for _, p := range c.procs {
		p.purgeSyncState()
		p.revive(c.reviveEpoch)
	}
	c.revived = true
	return nil
}

// Resume re-runs an SPMD program on a revived cluster. Each processor
// first resynchronizes its collective cursors (see resyncAfterRevive),
// then runs fn — which restores a checkpoint and re-executes from its
// cursor. Resume is only legal directly after Revive.
func (c *Cluster) Resume(fn func(p *Proc) error) error {
	if !c.revived {
		return errors.New("core: Resume without Revive")
	}
	c.revived = false
	c.ran = false
	return c.Run(func(p *Proc) error {
		p.resyncAfterRevive()
		return fn(p)
	})
}

// revive re-arms this processor's peer-loss machinery and clears the
// rendezvous state a failed run left behind. Called with no
// application thread running and the transport quiesced.
func (p *Proc) revive(epoch uint64) {
	p.downMu.Lock()
	if p.downClosed {
		p.downCh = make(chan struct{})
		p.downClosed = false
	}
	p.downPeer.Store(-1)
	p.downMu.Unlock()
	p.reviveEpoch = epoch

	p.wMu.Lock()
	seqs := make([]uint64, 0, len(p.waiters))
	for seq := range p.waiters {
		seqs = append(seqs, seq)
	}
	p.wMu.Unlock()
	for _, seq := range seqs {
		p.retireWaiter(seq)
	}
	p.collMu.Lock()
	clear(p.collGot)
	clear(p.collWait)
	p.collMu.Unlock()
}

// resyncTagBase is the reserved out-of-band collective tag space for
// post-revive resynchronization. Program-order tags (barGen, collSeq)
// are small counters; a resync tag has bit 62 set, so it can never
// collide with a stale in-flight tag from before the kill.
const resyncTagBase = uint64(1) << 62

// resyncAfterRevive aligns the collective cursors across processors
// after a revive. Survivors crashed at different points, so their
// barGen/collSeq disagree; everyone adopts the maximum, which makes
// every re-executed collective's tag strictly greater than any stale
// tag still buffered in the fabric — stale arrivals strand in dead
// table entries instead of completing live rendezvous. The reduce
// itself cannot use a program-order tag (the cursors disagree), so it
// runs in the reserved resync tag space, keyed by the revive epoch.
func (p *Proc) resyncAfterRevive() {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], p.barGen)
	binary.LittleEndian.PutUint64(buf[8:], p.collSeq)
	out := p.reduceRoundTag(resyncTagBase+p.reviveEpoch, collOpMaxI, buf[:])
	p.barGen = binary.LittleEndian.Uint64(out)
	p.collSeq = binary.LittleEndian.Uint64(out[8:])
}
