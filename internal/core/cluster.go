package core

import (
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/faultnet"
	"github.com/acedsm/ace/internal/trace"
)

// Options configures a cluster.
type Options struct {
	// Procs is the number of logical processors (SPMD threads). Must be
	// between 1 and MaxProcs.
	Procs int

	// Registry supplies the available protocols. Nil means a fresh
	// registry containing only the default "sc" protocol.
	Registry *Registry

	// DefaultProtocol names the protocol of the default space. Empty
	// means "sc".
	DefaultProtocol string

	// Transport, if non-nil, supplies the fabric factory: an
	// amnet.ChanConfig, a tcpnet.Config, or amnet.Fixed around an
	// already-built network. Connect is asked for Procs nodes; the
	// endpoints it returns are this process's share of the cluster —
	// all Procs of them in-process, a subset in a multi-process
	// deployment (see Join). Nil means an in-process channel network.
	Transport amnet.Transport

	// Latency, for the default in-process network, delays every
	// inter-node message by the given duration. Ignored when Transport
	// is set.
	Latency time.Duration

	// DispatchLanes, for the default in-process network, shards each
	// processor's dispatch into the given number of pump lanes keyed by
	// source node, so handlers for messages from different senders run
	// on different cores (amnet.ChanConfig.Lanes). Zero or one keeps the
	// classic single pump per processor. The runtime's own handlers are
	// safe under sharding: per-sender FIFO is preserved by lane keying,
	// and the handler-touched state that used to be pump-private
	// (barrier arrivals, reduction accumulators, region lock queues) is
	// locked. Ignored when Transport is set — put the lane count in the
	// transport's own config (amnet.ChanConfig.Lanes, tcpnet.Config.Lanes)
	// instead.
	DispatchLanes int

	// Trace, if non-nil, enables the observability layer (package
	// trace): per-space operation counters and latency histograms,
	// network send→deliver latency sampling, and — when Trace.Events is
	// positive — per-processor event rings exported by WriteTrace. Nil
	// disables instrumentation at near-zero cost.
	Trace *trace.Config

	// Faults, if non-nil, wraps the transport (own or provided) in a
	// fault-injecting layer (package faultnet): seeded per-link delay,
	// duplication, reordering, drop-with-redelivery, partition windows
	// and slow-receiver backpressure, all surfaced in Metrics. The
	// wrapper preserves the fabric's FIFO/exactly-once contract; only
	// timing is perturbed. When the network came through amnet.Fixed,
	// the wrapper (and the wrapped network with it) is closed by Close.
	Faults *faultnet.Policy

	// Adapt, if non-nil, enables the online adaptive protocol controller:
	// at barrier points the runtime classifies each adaptable space's
	// access pattern from the trace counters and switches the space to
	// the registered protocol matching the pattern (via the collective
	// ChangeProtocol). Setting Adapt forces the counters-only tier of
	// the observability layer on (Trace.Counters) — the controller
	// consumes counts, and the full tier's clock reads would tax the
	// very application the controller is speeding up. See AdaptConfig
	// for tuning and AdaptHints for how protocols opt in.
	Adapt *AdaptConfig

	// SyncTimeout, when positive, bounds every blocking synchronization
	// wait (barriers, locks, coherence fetches, collectives). A wait
	// that exceeds it fails the processor's Run with an error matching
	// ErrSyncStall instead of hanging. Zero means wait forever.
	SyncTimeout time.Duration

	// Coll tunes the collective substrate: the topology of the built-in
	// collectives (barrier, all-reduce, broadcast) and the
	// per-destination aggregation of protocol push traffic. The zero
	// value selects automatically: star topology up to collStarMax
	// processors, binomial tree above, aggregation on.
	Coll CollConfig
}

// CollConfig configures the collective substrate (Options.Coll).
type CollConfig struct {
	// Topology selects the collective communication shape. CollAuto
	// (the zero value) picks by cluster size.
	Topology CollTopology
	// NoAggregation disables per-destination coalescing of barrier-time
	// protocol pushes (see ProtoBatcher): every push then travels as its
	// own message, as the update-family protocols did before aggregation
	// existed. It is the baseline switch for BENCH_coll's unaggregated
	// rows and for conformance diffing.
	NoAggregation bool
}

// CollTopology selects how the built-in collectives route.
type CollTopology int

const (
	// CollAuto picks by cluster size: star for Procs <= collStarMax,
	// binomial tree above.
	CollAuto CollTopology = iota
	// CollStar is the original node-0 star: every arrival, contribution
	// and result serializes at processor 0. Kept for small clusters
	// (fewer hops when P is tiny) and as the reference implementation
	// for conformance diffing against the tree.
	CollStar
	// CollTree routes collectives through a binomial tree rooted at
	// processor 0: O(log P) latency and no root serialization.
	CollTree
)

// collStarMax is the largest cluster the automatic topology keeps on
// the star: below this size the tree saves no hops on the critical
// path, and the star's one-hop arrival is simpler to reason about.
const collStarMax = 4

// Cluster is a set of logical processors sharing regions through the Ace
// runtime. Create one with NewCluster, execute an SPMD program with Run,
// then Close it.
type Cluster struct {
	opts   Options
	reg    *Registry
	net    amnet.Network
	ownNet bool
	nodes  int     // total logical processors in the cluster
	procs  []*Proc // the processors hosted by this OS process
	ran    bool

	// revived is set by Revive and consumed by Resume; reviveEpoch
	// counts revivals, keying each resume's out-of-band resync round.
	revived     bool
	reviveEpoch uint64

	// migrate is true when the adaptive controller may re-home regions
	// (Adapt.MigrateFactor > 0): only then do the protocol handlers
	// maintain the per-home traffic counters the trigger consumes.
	migrate bool

	// collTree and agg are the resolved collective configuration:
	// whether the built-in collectives route through the binomial tree,
	// and whether protocol push aggregation is on.
	collTree bool
	agg      bool

	// adapt is the normalized controller configuration (nil when
	// adaptation is off); adaptTargets maps each advertised access
	// pattern to its registered protocol, resolved once at creation.
	adapt        *AdaptConfig
	adaptTargets map[string]string

	// onClose holds auxiliary teardown hooks (the gossip membership
	// machinery a bootstrap layer attached), run by Close after the
	// network shuts down.
	onClose []func() error
}

// RegisterCloser attaches fn to Close: bootstrap layers (Join) park the
// teardown of whatever they started — gossip tickers, discovery
// sockets — on the cluster, so callers only ever close one thing.
func (c *Cluster) RegisterCloser(fn func() error) {
	c.onClose = append(c.onClose, fn)
}

// NewCluster creates a cluster and its processors.
func NewCluster(opts Options) (*Cluster, error) {
	if opts.Procs < 1 || opts.Procs > MaxProcs {
		return nil, fmt.Errorf("core: proc count %d out of range [1,%d]", opts.Procs, MaxProcs)
	}
	reg := opts.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	if opts.DefaultProtocol == "" {
		opts.DefaultProtocol = "sc"
	}
	if _, ok := reg.Lookup(opts.DefaultProtocol); !ok {
		return nil, fmt.Errorf("core: unknown default protocol %q", opts.DefaultProtocol)
	}
	if opts.Adapt != nil {
		ac := opts.Adapt.withDefaults()
		opts.Adapt = &ac
		// The controller reads the per-space counters every epoch; force
		// the counters-only tier of the observability layer on (copying
		// the caller's config rather than mutating it). Counters, not
		// full Metrics: the latency histograms and clock reads of the
		// full tier cost more than the hand-tuned protocols the
		// controller is chasing, and it only consumes counts.
		tc := trace.Config{Counters: true}
		if opts.Trace != nil {
			tc = *opts.Trace
			tc.Counters = true
		}
		opts.Trace = &tc
	}
	tr := opts.Transport
	own := true
	if tr == nil {
		tr = amnet.ChanConfig{Latency: opts.Latency, Lanes: opts.DispatchLanes}
	} else if _, fixed := tr.(amnet.FixedTransport); fixed {
		// A pre-built network stays caller-owned.
		own = false
	}
	nw, err := tr.Connect(opts.Procs)
	if err != nil {
		return nil, err
	}
	if opts.Faults != nil {
		// The wrapper owns the inner network (its Close closes both), so
		// a caller-provided transport is closed through it as well.
		nw = faultnet.Wrap(nw, *opts.Faults)
		own = true
	}
	eps := nw.Endpoints()
	if len(eps) == 0 || len(eps) > opts.Procs || eps[0].Nodes() != opts.Procs {
		total := 0
		if len(eps) > 0 {
			total = eps[0].Nodes()
		}
		if own {
			nw.Close()
		}
		return nil, fmt.Errorf("core: network is %d nodes (%d local), cluster wants %d", total, len(eps), opts.Procs)
	}
	c := &Cluster{opts: opts, reg: reg, net: nw, ownNet: own, nodes: opts.Procs}
	switch opts.Coll.Topology {
	case CollAuto:
		c.collTree = opts.Procs > collStarMax
	case CollStar:
		c.collTree = false
	case CollTree:
		c.collTree = true
	default:
		if own {
			nw.Close()
		}
		return nil, fmt.Errorf("core: unknown collective topology %d", opts.Coll.Topology)
	}
	c.agg = !opts.Coll.NoAggregation
	if opts.Adapt != nil {
		c.adapt = opts.Adapt
		c.adaptTargets = adaptTargetTable(reg)
		c.migrate = opts.Adapt.MigrateFactor > 0
	}
	if opts.Trace != nil && opts.Trace.Metrics {
		for _, ep := range eps {
			ep.Stats().EnableLatencySampling(true)
		}
	}
	c.procs = make([]*Proc, len(eps))
	for i := range c.procs {
		c.procs[i] = newProc(c, eps[i])
	}
	// Every local handler table is installed; a gated transport
	// (amnet.Starter) may begin dispatching remote frames.
	if st, ok := nw.(amnet.Starter); ok {
		st.Start()
	}
	return c, nil
}

// Registry returns the cluster's protocol registry.
func (c *Cluster) Registry() *Registry { return c.reg }

// Procs returns the total number of logical processors in the cluster —
// across every OS process in a multi-process deployment, not just the
// local ones (see Local).
func (c *Cluster) Procs() int { return c.nodes }

// Local returns the processors hosted by this OS process, in endpoint
// order. In a single-process cluster that is all of them.
func (c *Cluster) Local() []*Proc { return c.procs }

// Run executes fn on every local processor concurrently (the SPMD
// model: one user thread per processor — in a multi-process cluster,
// each process Runs its own share) and waits for all to finish. It
// returns the joined errors, including recovered panics. Run may be
// called at most once per cluster.
func (c *Cluster) Run(fn func(p *Proc) error) error {
	if c.ran {
		return errors.New("core: cluster Run called twice")
	}
	c.ran = true
	errs := make([]error, len(c.procs))
	var wg sync.WaitGroup
	for i, p := range c.procs {
		wg.Add(1)
		go func(i int, p *Proc) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if err, ok := typedRuntimeError(r); ok {
						errs[i] = err
						return
					}
					errs[i] = fmt.Errorf("core: proc %d panicked: %v\n%s", i, r, debug.Stack())
				}
			}()
			errs[i] = fn(p)
		}(i, p)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Close shuts the cluster's network down, then runs any registered
// auxiliary closers.
func (c *Cluster) Close() error {
	var errs []error
	if c.ownNet {
		errs = append(errs, c.net.Close())
	}
	for _, fn := range c.onClose {
		errs = append(errs, fn())
	}
	return errors.Join(errs...)
}

// Metrics aggregates the observability snapshot across the local
// processors:
// per-space operation counts and latency histograms (populated when
// Options.Trace enabled them) plus network traffic counters (always
// live). Call it only while the cluster is quiescent (before Run, after
// Run, or inside a barrier) for a consistent view.
func (c *Cluster) Metrics() trace.Metrics {
	var m trace.Metrics
	for _, p := range c.procs {
		m = m.Add(p.Snapshot())
	}
	return m
}

// TraceEvents returns the retained events from every processor's ring,
// ordered by start time. Empty unless Options.Trace.Events was positive.
func (c *Cluster) TraceEvents() []trace.Event {
	var evs []trace.Event
	for _, p := range c.procs {
		evs = append(evs, p.rec.Events()...)
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
	return evs
}

// WriteTrace writes the retained events as Chrome trace_event JSON,
// loadable in chrome://tracing or Perfetto. Call it after Run.
func (c *Cluster) WriteTrace(w io.Writer) error {
	return trace.WriteChromeTrace(w, c.TraceEvents(), c.Procs())
}

// The handler identifiers reserved by the runtime.
const (
	hComplete   amnet.HandlerID = 1 // completes waiter m.B with the message
	hLookup     amnet.HandlerID = 2 // region metadata request: A=id, B=seq
	hBarArrive  amnet.HandlerID = 3 // barrier arrival at node 0: A=gen, B=seq
	hLockReq    amnet.HandlerID = 4 // region lock request: A=id, B=seq
	hUnlockMsg  amnet.HandlerID = 5 // region unlock: A=id
	hColl       amnet.HandlerID = 6 // collective: A=tag, C=op, payload=value
	hProto      amnet.HandlerID = 7 // protocol message: A=region, B=seq, C=verb, D=space
	hProtoBatch amnet.HandlerID = 8 // aggregated protocol frame: A=records, B=tag, C=verb, D=space
	hMigrate    amnet.HandlerID = 9 // MigrateHome pull at the old home: A=region, B=seq, D=space
)
