package core

import (
	"errors"
	"fmt"

	"github.com/acedsm/ace/internal/trace"
)

// Space lifecycle (DESIGN.md §14). Spaces are created and destroyed
// collectively, and the table slot a destroyed space occupied is
// recycled. Layers that hold space handles across collective boundaries
// — a session gateway mapping rooms to spaces — identify a space by its
// generation-tagged SpaceRef, never by the bare table index: a recycled
// slot's new occupant carries a higher generation, so a stale reference
// fails SpaceByRef instead of silently aliasing the new space.

// MaxRegionSize bounds a single region allocation (1 GiB). The limit
// exists for the error-returning allocation path: client-derived sizes
// beyond it fail with ErrBadSize instead of attempting the allocation.
const MaxRegionSize = 1 << 30

// ErrStaleSpace is the sentinel matched by errors.Is when a SpaceRef
// names a space that has been freed (or a slot generation that has been
// recycled past it).
var ErrStaleSpace = errors.New("stale space reference")

// ErrBadSize is the sentinel matched by errors.Is when an allocation
// size is non-positive or exceeds MaxRegionSize.
var ErrBadSize = errors.New("invalid region size")

// StaleSpaceError reports the stale reference. It unwraps to
// ErrStaleSpace.
type StaleSpaceError struct {
	Ref SpaceRef
}

func (e *StaleSpaceError) Error() string {
	return fmt.Sprintf("core: space %d gen %d has been freed", e.Ref.ID, e.Ref.Gen)
}

// Unwrap makes errors.Is(err, ErrStaleSpace) match.
func (e *StaleSpaceError) Unwrap() error { return ErrStaleSpace }

// BadSizeError reports the rejected allocation size. It unwraps to
// ErrBadSize.
type BadSizeError struct {
	Size int
}

func (e *BadSizeError) Error() string {
	return fmt.Sprintf("core: region size %d out of range (0, %d]", e.Size, MaxRegionSize)
}

// Unwrap makes errors.Is(err, ErrBadSize) match.
func (e *BadSizeError) Unwrap() error { return ErrBadSize }

// SpaceRef is a generation-tagged space identifier: the table slot plus
// the slot's generation at the space's creation. It is identical on
// every processor and stays meaningful after the space dies — resolving
// a stale ref reports ErrStaleSpace rather than the slot's next
// occupant.
type SpaceRef struct {
	ID  int
	Gen uint64
}

func (ref SpaceRef) String() string {
	return fmt.Sprintf("space(%d.%d)", ref.ID, ref.Gen)
}

// SpaceByRef resolves a generation-tagged reference. It returns
// ErrStaleSpace (as a *StaleSpaceError) when the slot has been freed or
// recycled since ref was minted, and is safe for references derived
// from external input: it never panics.
func (p *Proc) SpaceByRef(ref SpaceRef) (*Space, error) {
	sps := p.spaces.Load()
	if sps == nil || ref.ID < 0 || ref.ID >= len(*sps) {
		return nil, &StaleSpaceError{Ref: ref}
	}
	sp := (*sps)[ref.ID]
	if sp == nil || sp.Gen != ref.Gen || sp.dead.Load() {
		return nil, &StaleSpaceError{Ref: ref}
	}
	return sp, nil
}

// SpaceSlots returns the space table's current length — slots in use
// plus freed slots awaiting reuse. A workload that creates and destroys
// spaces in waves keeps this bounded by its peak concurrency, which is
// the leak check the churn tests enforce.
func (p *Proc) SpaceSlots() int {
	if sps := p.spaces.Load(); sps != nil {
		return len(*sps)
	}
	return 0
}

// LiveSpaces returns how many spaces currently occupy table slots.
func (p *Proc) LiveSpaces() int {
	n := 0
	if sps := p.spaces.Load(); sps != nil {
		for _, sp := range *sps {
			if sp != nil {
				n++
			}
		}
	}
	return n
}

// FreeSpace destroys sp and recycles its table slot. It is a collective
// operation: every processor must call it, in the same program order,
// for the same space. The destruction follows the ChangeProtocol flush
// discipline — barrier, flush every region of the space to the base
// state (authoritative data at the home, no cached copies, no coherence
// traffic in flight), barrier — and then goes further than a protocol
// change: the fast bits are withdrawn for good, every region of the
// space is deleted from the region table, and the table slot is nilled
// with its generation bumped, so the next NewSpace may recycle it under
// a fresh SpaceRef.
//
// The caller must have quiesced the space: no open sections, no held
// region locks, no processor still using its regions. The default space
// (slot 0) cannot be freed.
func (p *Proc) FreeSpace(sp *Space) error {
	if sp.ID == 0 {
		return fmt.Errorf("core: proc %d: cannot free the default space", p.id)
	}
	if sp.dead.Load() {
		return &StaleSpaceError{Ref: sp.Ref()}
	}
	if err := p.verifyCollective(fmt.Sprintf("freespace:%d:%d", sp.ID, sp.Gen)); err != nil {
		return err
	}
	t := p.rec.Begin()
	p.ops[trace.OpFreeSpace].Add(1)
	p.ctx.DefaultBarrier()
	sp.eng.Lock()
	sp.Proto.FlushSpace(sp.ctx, sp)
	sp.eng.Unlock()
	p.ctx.DefaultBarrier()
	// All data is home-valid and no coherence traffic is in flight.
	// Withdraw the fast bits and collect the space's regions; a region
	// still inside a bracket, holding queued coherence work, or with the
	// region lock held means the caller broke the quiescence contract.
	sp.eng.Lock()
	var purged []RegionID
	for _, r := range p.regionList() {
		if r.Space != sp {
			continue
		}
		r.publishFast(0)
		if r.InUse() {
			panic(fmt.Sprintf("core: proc %d: FreeSpace with open sections on %v", p.id, r.ID))
		}
		if r.Dir != nil {
			if len(r.Dir.Waiting) != 0 || r.Dir.Busy {
				panic(fmt.Sprintf("core: proc %d: FreeSpace with busy directory on %v", p.id, r.ID))
			}
			r.Dir.lockMu.Lock()
			held := r.Dir.LockHolder >= 0 || len(r.Dir.LockQueue) != 0
			r.Dir.lockMu.Unlock()
			if held {
				panic(fmt.Sprintf("core: proc %d: FreeSpace with held region lock on %v", p.id, r.ID))
			}
		}
		purged = append(purged, r.ID)
	}
	sp.dead.Store(true)
	sp.eng.Unlock()
	p.regMu.Lock()
	for _, id := range purged {
		p.regions.Delete(id)
	}
	p.regMu.Unlock()
	// Recycle the slot: nil it in a fresh snapshot, bump the slot
	// generation, and file the index for ascending reuse. The collective
	// discipline keeps free list and generations identical everywhere.
	p.spaceMu.Lock()
	cur := *p.spaces.Load()
	next := make([]*Space, len(cur))
	copy(next, cur)
	next[sp.ID] = nil
	p.spaces.Store(&next)
	p.slotGen[sp.ID]++
	p.spaceFree = insertSortedInt(p.spaceFree, sp.ID)
	p.spaceMu.Unlock()
	p.rec.End(trace.OpFreeSpace, sp.ID, t)
	// Leave together: nobody returns (and can start reusing the slot)
	// before every processor has finished recycling.
	p.ctx.DefaultBarrier()
	return nil
}

// insertSortedInt inserts v into ascending-sorted s, keeping it sorted.
func insertSortedInt(s []int, v int) []int {
	i := 0
	for i < len(s) && s[i] < v {
		i++
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
