package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/faultnet"
)

// TestMigrateHomeRace runs under the race detector (this package is in
// RACE_PKGS): brackets hammer the fast path on a working set of regions
// while MigrateHome collectives rotate every region's home between the
// hammering rounds. With sharded dispatch, each processor's pump lanes
// deliver flush and directory traffic concurrently with the application
// thread's fast-path CASes — the surface the migration flip (withdraw,
// move directory, republish) must keep race-free.
func TestMigrateHomeRace(t *testing.T) {
	const procs, regions, rounds = 4, 4, 16
	for _, lanes := range []int{2, 8} {
		lanes := lanes
		t.Run(fmt.Sprintf("lanes%d", lanes), func(t *testing.T) {
			cl, err := NewCluster(Options{
				Procs:         procs,
				DispatchLanes: lanes,
				SyncTimeout:   time.Minute,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			err = cl.Run(func(p *Proc) error {
				sp := p.DefaultSpace()
				ids := make([]RegionID, regions)
				for r := 0; r < regions; r++ {
					if r%procs == p.ID() {
						ids[r] = p.GMalloc(sp, 8)
					}
					ids[r] = p.BroadcastID(r%procs, ids[r])
				}
				hs := make([]*Region, regions)
				for r, id := range ids {
					hs[r] = p.Map(id)
					p.StartRead(hs[r])
					p.EndRead(hs[r])
				}
				p.Barrier(sp)
				homeOf := make([]int, regions)
				for r := range homeOf {
					homeOf[r] = r % procs
				}
				for round := 0; round < rounds; round++ {
					for r := 0; r < regions; r++ {
						if homeOf[r] == p.ID() {
							p.StartWrite(hs[r])
							hs[r].Data.SetInt64(0, int64(round*regions+r))
							p.EndWrite(hs[r])
						}
					}
					p.Barrier(sp)
					// Hammer the bracket fast path: after the first slow
					// fetch, these reads should be eligibility-bit hits
					// racing only the pump's withdraw/republish.
					for k := 0; k < 120; k++ {
						h := hs[k%regions]
						p.StartRead(h)
						got := h.Data.Int64(0)
						p.EndRead(h)
						if want := int64(round*regions + k%regions); got != want {
							return fmt.Errorf("proc %d round %d: region %d = %d, want %d",
								p.ID(), round, k%regions, got, want)
						}
					}
					p.Barrier(sp)
					// Rotate every region's home while cached copies and
					// fast bits from the hammering are still hot.
					for r := 0; r < regions; r++ {
						next := (homeOf[r] + 1) % procs
						if err := p.MigrateHome(sp, ids[r], amnet.NodeID(next)); err != nil {
							return err
						}
						homeOf[r] = next
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRejoinVsTreeReduction: a five-processor cluster on the binomial
// tree topology runs a stream of jitter-delayed AllReduce rounds with a
// collective checkpoint partway in; a victim is killed while peers are
// skewed across in-flight reductions, the survivors fail typed, and the
// revived cluster restores the checkpoint and re-reduces to the same
// answers. This pins the resync path (out-of-band cursor agreement)
// against stale tree-collective traffic buffered from before the kill.
func TestRejoinVsTreeReduction(t *testing.T) {
	const procs, total, ckptAt, killAt = 5, 30, 10, 20
	victim := amnet.NodeID(procs - 1)
	cl, err := NewCluster(Options{
		Procs: procs,
		Coll:  CollConfig{Topology: CollTree},
		Faults: &faultnet.Policy{
			Seed:   7,
			Delay:  20 * time.Microsecond,
			Jitter: 300 * time.Microsecond,
		},
		SyncTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	expect := func(i int) int64 {
		var s int64
		for id := 0; id < procs; id++ {
			s += int64((id + 1) * (i + 7))
		}
		return s
	}
	saved := make([][]byte, procs)
	err = cl.Run(func(p *Proc) error {
		for i := 0; i < total; i++ {
			if i == ckptAt {
				ck, err := p.Checkpoint(uint64(i))
				if err != nil {
					return err
				}
				saved[p.ID()] = EncodeCheckpoint(ck)
			}
			if i == killAt && p.ID() == 0 {
				cl.FaultNet().Kill(victim)
			}
			got := p.AllReduceInt64(OpSum, int64((p.ID()+1)*(i+7)))
			if i < killAt && got != expect(i) {
				return fmt.Errorf("proc %d round %d: reduced %d, want %d", p.ID(), i, got, expect(i))
			}
		}
		return fmt.Errorf("proc %d survived the kill", p.ID())
	})
	if !errors.Is(err, ErrPeerLost) {
		t.Fatalf("crashed run failed with %v, want ErrPeerLost", err)
	}
	for r, enc := range saved {
		if enc == nil {
			t.Fatalf("rank %d has no checkpoint", r)
		}
	}
	fn := cl.FaultNet()
	fn.Revive(victim)
	fn.Quiesce()
	if err := cl.Revive(); err != nil {
		t.Fatal(err)
	}
	err = cl.Resume(func(p *Proc) error {
		ck, err := DecodeCheckpoint(saved[p.ID()])
		if err != nil {
			return err
		}
		if err := p.RestoreCheckpoint(ck); err != nil {
			return err
		}
		// Restore is local; fence it collectively before re-execution.
		p.GlobalBarrier()
		for i := ckptAt; i < total; i++ {
			got := p.AllReduceInt64(OpSum, int64((p.ID()+1)*(i+7)))
			if got != expect(i) {
				return fmt.Errorf("proc %d replayed round %d: reduced %d, want %d", p.ID(), i, got, expect(i))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
}
