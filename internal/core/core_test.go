package core

import (
	"fmt"
	"strings"
	"testing"

	"github.com/acedsm/ace/internal/trace"
)

// run spins up a cluster of n procs, runs fn SPMD, and fails the test on
// any error.
func run(t *testing.T, n int, fn func(p *Proc) error) {
	t.Helper()
	cl, err := NewCluster(Options{Procs: n})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cl.Close()
	if err := cl.Run(fn); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestClusterOptionsValidation(t *testing.T) {
	if _, err := NewCluster(Options{Procs: 0}); err == nil {
		t.Error("expected error for 0 procs")
	}
	if _, err := NewCluster(Options{Procs: MaxProcs + 1}); err == nil {
		t.Error("expected error for too many procs")
	}
	if _, err := NewCluster(Options{Procs: 2, DefaultProtocol: "nope"}); err == nil {
		t.Error("expected error for unknown default protocol")
	}
}

func TestRunTwiceFails(t *testing.T) {
	cl, err := NewCluster(Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Run(func(p *Proc) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(func(p *Proc) error { return nil }); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestRunRecoversPanics(t *testing.T) {
	cl, err := NewCluster(Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *Proc) error {
		if p.ID() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want panic capture", err)
	}
}

func TestGMallocAndLocalReadWrite(t *testing.T) {
	run(t, 1, func(p *Proc) error {
		sp := p.DefaultSpace()
		id := p.GMalloc(sp, 64)
		r := p.Map(id)
		p.StartWrite(r)
		r.Data.SetFloat64(0, 2.5)
		r.Data.SetInt64(1, -9)
		p.EndWrite(r)
		p.StartRead(r)
		if r.Data.Float64(0) != 2.5 || r.Data.Int64(1) != -9 {
			return fmt.Errorf("local round trip failed")
		}
		p.EndRead(r)
		p.Unmap(r)
		return nil
	})
}

func TestRemoteReadSeesHomeWrite(t *testing.T) {
	run(t, 4, func(p *Proc) error {
		var id RegionID
		if p.ID() == 0 {
			id = p.GMalloc(p.DefaultSpace(), 8)
			r := p.Map(id)
			p.StartWrite(r)
			r.Data.SetInt64(0, 777)
			p.EndWrite(r)
			p.Unmap(r)
		}
		id = p.BroadcastID(0, id)
		p.GlobalBarrier()
		r := p.Map(id)
		p.StartRead(r)
		if got := r.Data.Int64(0); got != 777 {
			return fmt.Errorf("proc %d read %d, want 777", p.ID(), got)
		}
		p.EndRead(r)
		p.Unmap(r)
		return nil
	})
}

func TestRemoteWriteSeenByAll(t *testing.T) {
	run(t, 4, func(p *Proc) error {
		var id RegionID
		if p.ID() == 0 {
			id = p.GMalloc(p.DefaultSpace(), 8)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		if p.ID() == 3 {
			p.StartWrite(r)
			r.Data.SetInt64(0, 31337)
			p.EndWrite(r)
		}
		p.GlobalBarrier()
		p.StartRead(r)
		if got := r.Data.Int64(0); got != 31337 {
			return fmt.Errorf("proc %d read %d, want 31337", p.ID(), got)
		}
		p.EndRead(r)
		return nil
	})
}

// TestWriteSerialization is the key coherence test: concurrent increments
// through exclusive write sections must never lose updates, because
// ownership transfer carries the latest data.
func TestWriteSerialization(t *testing.T) {
	const procs, incs, regions = 8, 100, 4
	run(t, procs, func(p *Proc) error {
		var ids []RegionID
		if p.ID() == 0 {
			for i := 0; i < regions; i++ {
				ids = append(ids, p.GMalloc(p.DefaultSpace(), 8))
			}
		} else {
			ids = make([]RegionID, regions)
		}
		ids = p.BroadcastIDs(0, ids)
		rs := make([]*Region, regions)
		for i, id := range ids {
			rs[i] = p.Map(id)
		}
		for i := 0; i < incs; i++ {
			r := rs[(i+p.ID())%regions]
			p.StartWrite(r)
			r.Data.SetInt64(0, r.Data.Int64(0)+1)
			p.EndWrite(r)
		}
		p.GlobalBarrier()
		total := int64(0)
		for _, r := range rs {
			p.StartRead(r)
			total += r.Data.Int64(0)
			p.EndRead(r)
		}
		if total != procs*incs {
			return fmt.Errorf("proc %d: total %d, want %d", p.ID(), total, procs*incs)
		}
		return nil
	})
}

// TestReadersSeeMonotonicValues: one writer increments, readers must never
// observe the counter going backwards.
func TestReadersSeeMonotonicValues(t *testing.T) {
	run(t, 4, func(p *Proc) error {
		var id RegionID
		if p.ID() == 0 {
			id = p.GMalloc(p.DefaultSpace(), 8)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		if p.ID() == 0 {
			for i := 1; i <= 200; i++ {
				p.StartWrite(r)
				r.Data.SetInt64(0, int64(i))
				p.EndWrite(r)
			}
		} else {
			last := int64(-1)
			for i := 0; i < 200; i++ {
				p.StartRead(r)
				v := r.Data.Int64(0)
				p.EndRead(r)
				if v < last {
					return fmt.Errorf("proc %d: counter went backwards %d -> %d", p.ID(), last, v)
				}
				last = v
			}
		}
		p.GlobalBarrier()
		return nil
	})
}

func TestHomeAndRemoteContention(t *testing.T) {
	// The home itself participates in the increment storm, exercising the
	// home-access queue paths.
	const procs, incs = 6, 120
	run(t, procs, func(p *Proc) error {
		var id RegionID
		if p.ID() == 2 {
			id = p.GMalloc(p.DefaultSpace(), 8)
		}
		id = p.BroadcastID(2, id)
		r := p.Map(id)
		for i := 0; i < incs; i++ {
			p.StartWrite(r)
			r.Data.SetInt64(0, r.Data.Int64(0)+1)
			p.EndWrite(r)
		}
		p.GlobalBarrier()
		p.StartRead(r)
		got := r.Data.Int64(0)
		p.EndRead(r)
		if got != procs*incs {
			return fmt.Errorf("proc %d: got %d, want %d", p.ID(), got, procs*incs)
		}
		return nil
	})
}

func TestNestedReadSections(t *testing.T) {
	run(t, 2, func(p *Proc) error {
		var id RegionID
		if p.ID() == 0 {
			id = p.GMalloc(p.DefaultSpace(), 8)
			r := p.Map(id)
			p.StartWrite(r)
			r.Data.SetInt64(0, 5)
			p.EndWrite(r)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		p.StartRead(r)
		p.StartRead(r)
		if r.Data.Int64(0) != 5 {
			return fmt.Errorf("nested read failed")
		}
		p.EndRead(r)
		p.EndRead(r)
		p.GlobalBarrier()
		return nil
	})
}

func TestBarrierOrdersWrites(t *testing.T) {
	// Classic phase pattern: everyone writes their slot, barrier, everyone
	// reads all slots.
	const procs = 8
	run(t, procs, func(p *Proc) error {
		var ids []RegionID
		if p.ID() == 0 {
			for i := 0; i < procs; i++ {
				ids = append(ids, p.GMalloc(p.DefaultSpace(), 8))
			}
		} else {
			ids = make([]RegionID, procs)
		}
		ids = p.BroadcastIDs(0, ids)
		mine := p.Map(ids[p.ID()])
		p.StartWrite(mine)
		mine.Data.SetInt64(0, int64(100+p.ID()))
		p.EndWrite(mine)
		p.GlobalBarrier()
		for i, id := range ids {
			r := p.Map(id)
			p.StartRead(r)
			if got := r.Data.Int64(0); got != int64(100+i) {
				return fmt.Errorf("proc %d slot %d: got %d", p.ID(), i, got)
			}
			p.EndRead(r)
			p.Unmap(r)
		}
		p.GlobalBarrier()
		return nil
	})
}

func TestLockMutualExclusion(t *testing.T) {
	// Read-modify-write under the region lock; also covers lock queueing.
	const procs, incs = 6, 80
	run(t, procs, func(p *Proc) error {
		var id RegionID
		if p.ID() == 0 {
			id = p.GMalloc(p.DefaultSpace(), 8)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		for i := 0; i < incs; i++ {
			p.Lock(r)
			p.StartWrite(r)
			r.Data.SetInt64(0, r.Data.Int64(0)+1)
			p.EndWrite(r)
			p.Unlock(r)
		}
		p.GlobalBarrier()
		p.StartRead(r)
		got := r.Data.Int64(0)
		p.EndRead(r)
		if got != procs*incs {
			return fmt.Errorf("got %d, want %d", got, procs*incs)
		}
		return nil
	})
}

func TestBroadcastFromEveryRoot(t *testing.T) {
	run(t, 4, func(p *Proc) error {
		for root := 0; root < 4; root++ {
			var data []byte
			if p.ID() == root {
				data = []byte(fmt.Sprintf("from-%d", root))
			}
			got := p.Broadcast(root, data)
			want := fmt.Sprintf("from-%d", root)
			if string(got) != want {
				return fmt.Errorf("proc %d: broadcast from %d gave %q", p.ID(), root, got)
			}
		}
		return nil
	})
}

func TestAllReduce(t *testing.T) {
	run(t, 5, func(p *Proc) error {
		if got := p.AllReduceInt64(OpSum, int64(p.ID()+1)); got != 15 {
			return fmt.Errorf("sum = %d, want 15", got)
		}
		if got := p.AllReduceInt64(OpMin, int64(10-p.ID())); got != 6 {
			return fmt.Errorf("min = %d, want 6", got)
		}
		if got := p.AllReduceInt64(OpMax, int64(p.ID())); got != 4 {
			return fmt.Errorf("max = %d, want 4", got)
		}
		if got := p.AllReduceFloat64(OpSum, 0.5); got != 2.5 {
			return fmt.Errorf("fsum = %v, want 2.5", got)
		}
		if got := p.AllReduceFloat64(OpMin, float64(p.ID())-1.5); got != -1.5 {
			return fmt.Errorf("fmin = %v", got)
		}
		if got := p.AllReduceFloat64(OpMax, float64(p.ID())); got != 4 {
			return fmt.Errorf("fmax = %v", got)
		}
		return nil
	})
}

// TestAllReduceVector: the element-wise vector all-reduce combines each
// position independently in one round, including negative values, and a
// vector round interleaves correctly with scalar rounds.
func TestAllReduceVector(t *testing.T) {
	run(t, 5, func(p *Proc) error {
		id := int64(p.ID())
		got := p.AllReduceInt64s(OpSum, []int64{id + 1, -id, 7, 0})
		want := []int64{15, -10, 35, 0}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("vector sum[%d] = %d, want %d (full: %v)", i, got[i], want[i], got)
			}
		}
		if got := p.AllReduceInt64s(OpMax, []int64{id, -id}); got[0] != 4 || got[1] != 0 {
			return fmt.Errorf("vector max = %v, want [4 0]", got)
		}
		if got := p.AllReduceInt64(OpSum, 1); got != 5 {
			return fmt.Errorf("scalar sum after vector = %d, want 5", got)
		}
		return nil
	})
}

func TestNewSpaceCollective(t *testing.T) {
	run(t, 3, func(p *Proc) error {
		sp, err := p.NewSpace("sc")
		if err != nil {
			return err
		}
		if sp.ID != 1 {
			return fmt.Errorf("space id = %d, want 1", sp.ID)
		}
		var id RegionID
		if p.ID() == 1 {
			id = p.GMalloc(sp, 16)
			r := p.Map(id)
			p.StartWrite(r)
			r.Data.SetInt64(0, 11)
			p.EndWrite(r)
		}
		id = p.BroadcastID(1, id)
		r := p.Map(id)
		if r.Space.ID != 1 {
			return fmt.Errorf("mapped region in space %d", r.Space.ID)
		}
		p.StartRead(r)
		if r.Data.Int64(0) != 11 {
			return fmt.Errorf("cross-space read failed")
		}
		p.EndRead(r)
		p.GlobalBarrier()
		return nil
	})
}

func TestNewSpaceUnknownProtocol(t *testing.T) {
	run(t, 2, func(p *Proc) error {
		if _, err := p.NewSpace("no-such-protocol"); err == nil {
			return fmt.Errorf("expected error")
		}
		return nil
	})
}

func TestCollectiveMismatchDetected(t *testing.T) {
	cl, err := NewCluster(Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *Proc) error {
		name := "sc"
		if p.ID() == 1 {
			// Both processors reach a NewSpace call, but proc 1 asks for
			// a different (registered) protocol — the runtime must flag
			// the divergence. Register a second protocol first.
			name = "sc"
		}
		_, e := p.NewSpace(name)
		return e
	})
	if err != nil {
		t.Fatalf("matched collectives should succeed: %v", err)
	}
}

func TestChangeProtocolFlushes(t *testing.T) {
	run(t, 4, func(p *Proc) error {
		sp, err := p.NewSpace("sc")
		if err != nil {
			return err
		}
		var id RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, 8)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		if p.ID() == 3 {
			p.StartWrite(r)
			r.Data.SetInt64(0, 99)
			p.EndWrite(r)
			// Proc 3 holds the region exclusively; ChangeProtocol must
			// flush its dirty data home.
		}
		p.GlobalBarrier()
		if err := p.ChangeProtocol(sp, "sc"); err != nil {
			return err
		}
		if sp.Epoch != 1 {
			return fmt.Errorf("epoch = %d, want 1", sp.Epoch)
		}
		p.StartRead(r)
		if got := r.Data.Int64(0); got != 99 {
			return fmt.Errorf("proc %d: after change read %d, want 99", p.ID(), got)
		}
		p.EndRead(r)
		p.GlobalBarrier()
		return nil
	})
}

func TestOpStatsCounted(t *testing.T) {
	cl, err := NewCluster(Options{Procs: 2, Trace: &trace.Config{Counters: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *Proc) error {
		var id RegionID
		if p.ID() == 0 {
			id = p.GMalloc(p.DefaultSpace(), 8)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		p.StartWrite(r)
		p.EndWrite(r)
		p.StartRead(r)
		p.EndRead(r)
		p.Unmap(r)
		p.GlobalBarrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m := cl.Metrics()
	if m.Ops.Get(trace.OpGMalloc) != 1 || m.Ops.Get(trace.OpMap) != 2 ||
		m.Ops.Get(trace.OpStartWrite) != 2 || m.Ops.Get(trace.OpStartRead) != 2 ||
		m.Ops.Get(trace.OpUnmap) != 2 {
		t.Fatalf("unexpected op totals: %+v", m.Ops)
	}
	if m.Net.MsgsSent == 0 || m.Net.MsgsSent != m.Net.MsgsRecv {
		t.Fatalf("net totals inconsistent: %+v", m.Net)
	}
}

func TestMessageCountsSingleRemoteRead(t *testing.T) {
	// Directed message accounting: a cold remote read costs exactly one
	// lookup round trip plus one data round trip.
	cl, err := NewCluster(Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var before, after uint64
	err = cl.Run(func(p *Proc) error {
		var id RegionID
		if p.ID() == 0 {
			id = p.GMalloc(p.DefaultSpace(), 8)
		}
		id = p.BroadcastID(0, id)
		// Synchronize via a broadcast rather than a barrier: the root's
		// send is counted before the receiver proceeds, so proc 1's
		// snapshots bracket exactly the traffic its own accesses cause.
		p.Broadcast(0, []byte("ready"))
		if p.ID() == 1 {
			before = p.ep.Stats().MsgsSent.Load() + p.cl.procs[0].ep.Stats().MsgsSent.Load()
			r := p.Map(id)
			p.StartRead(r)
			p.EndRead(r)
			after = p.ep.Stats().MsgsSent.Load() + p.cl.procs[0].ep.Stats().MsgsSent.Load()
		}
		p.Broadcast(1, []byte("done"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// lookup req + reply, sread req + data reply = 4 messages.
	if got := after - before; got != 4 {
		t.Fatalf("cold remote read cost %d messages, want 4", got)
	}
}

func TestEndWithoutStartPanics(t *testing.T) {
	cl, err := NewCluster(Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *Proc) error {
		id := p.GMalloc(p.DefaultSpace(), 8)
		r := p.Map(id)
		p.EndRead(r) // must panic, recovered by Run
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "EndRead without StartRead") {
		t.Fatalf("err = %v", err)
	}
}

func TestGMallocInvalidSize(t *testing.T) {
	cl, err := NewCluster(Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(p *Proc) error {
		p.GMalloc(p.DefaultSpace(), 0)
		return nil
	})
	if err == nil {
		t.Fatal("expected panic-derived error for zero-size GMalloc")
	}
}

func TestManyRegionsManyProcs(t *testing.T) {
	// A broader stress: every proc allocates regions, everyone reads
	// everyone's, then a second phase overwrites and re-reads.
	const procs, per = 6, 10
	run(t, procs, func(p *Proc) error {
		sp := p.DefaultSpace()
		mine := make([]RegionID, per)
		for i := range mine {
			mine[i] = p.GMalloc(sp, 16)
			r := p.Map(mine[i])
			p.StartWrite(r)
			r.Data.SetInt64(0, int64(p.ID()*1000+i))
			p.EndWrite(r)
		}
		all := make([][]RegionID, procs)
		for root := 0; root < procs; root++ {
			if root == p.ID() {
				all[root] = p.BroadcastIDs(root, mine)
			} else {
				all[root] = p.BroadcastIDs(root, make([]RegionID, per))
			}
		}
		p.GlobalBarrier()
		for root := 0; root < procs; root++ {
			for i, id := range all[root] {
				r := p.Map(id)
				p.StartRead(r)
				if got := r.Data.Int64(0); got != int64(root*1000+i) {
					return fmt.Errorf("phase1 proc %d: region %d/%d = %d", p.ID(), root, i, got)
				}
				p.EndRead(r)
			}
		}
		p.GlobalBarrier()
		// Phase 2: proc (root+1)%procs overwrites root's regions.
		for root := 0; root < procs; root++ {
			if p.ID() == (root+1)%procs {
				for i, id := range all[root] {
					r := p.Map(id)
					p.StartWrite(r)
					r.Data.SetInt64(0, int64(root*1000+i+7))
					p.EndWrite(r)
				}
			}
		}
		p.GlobalBarrier()
		for root := 0; root < procs; root++ {
			for i, id := range all[root] {
				r := p.Map(id)
				p.StartRead(r)
				if got := r.Data.Int64(0); got != int64(root*1000+i+7) {
					return fmt.Errorf("phase2 proc %d: region %d/%d = %d", p.ID(), root, i, got)
				}
				p.EndRead(r)
			}
		}
		p.GlobalBarrier()
		return nil
	})
}
