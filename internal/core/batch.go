package core

import (
	"encoding/binary"
	"fmt"

	"github.com/acedsm/ace/internal/amnet"
)

// This file implements per-destination aggregation of protocol push
// traffic. Update-family protocols emit one small message per (dirty
// region, sharer) pair at every barrier; a ProtoBatcher coalesces all
// pushes bound for the same destination into one multi-region frame
// with a single ack, turning R x S tiny messages into at most S frames
// per barrier — and handing the transport's vectored-write path real
// batch sizes.
//
// Ordering: an aggregated frame travels as one active message, so the
// per-(sender, handler) FIFO the fabric guarantees applies to the frame
// exactly as it applied to the individual pushes — every region record
// in it is ordered, as a unit, against the sender's other traffic. Lane
// keying is by source node, so a frame and the per-region messages it
// replaces always dispatch on the same lane of the destination.
//
// Wire format of a frame payload: repeated records of
// [region id u64][data size u32][data], little-endian. The message
// scalars carry A = record count, B = an optional protocol tag (for
// per-frame ack transactions), C = the protocol verb the records stand
// for, and D = the space id.

// ProtoBatcher accumulates per-destination frames. It is protocol-owned
// state, accessed under the space's engine lock like the rest of the
// protocol instance. Destination buffers are retained across barriers,
// so the steady state appends into warm memory.
type ProtoBatcher struct {
	sp    *Space
	verb  uint64
	bufs  map[amnet.NodeID]*batchBuf
	order []amnet.NodeID // destinations with pending records, in first-Add order
}

type batchBuf struct {
	data []byte
	n    int
}

// NewBatcher returns a batcher sending verb-frames on behalf of sp.
func (c *Ctx) NewBatcher(sp *Space, verb uint64) *ProtoBatcher {
	return &ProtoBatcher{sp: sp, verb: verb, bufs: make(map[amnet.NodeID]*batchBuf)}
}

// Aggregating reports whether the cluster runs with protocol push
// aggregation enabled (Options.Coll.NoAggregation unset). Protocols
// with batchable push paths consult it and pick the frame or the
// per-region wire path; the answer is fixed for the cluster's lifetime.
func (c *Ctx) Aggregating() bool { return c.p.cl.agg }

// Add appends r's contents to the frame pending for dst.
func (b *ProtoBatcher) Add(dst amnet.NodeID, r *Region) {
	bb := b.bufs[dst]
	if bb == nil {
		bb = &batchBuf{}
		b.bufs[dst] = bb
	}
	if bb.n == 0 {
		b.order = append(b.order, dst)
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(r.ID))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(r.Data)))
	bb.data = append(bb.data, hdr[:]...)
	bb.data = append(bb.data, r.Data...)
	bb.n++
}

// Pending reports whether any records await a Flush.
func (b *ProtoBatcher) Pending() bool { return len(b.order) > 0 }

// Flush sends one frame per pending destination, in first-Add order,
// and returns the number of frames sent. When tag is non-nil it is
// called per frame and its result rides in the frame's B field (the
// hook protocols use to bind a frame to an ack transaction); nil sends
// B=0.
func (b *ProtoBatcher) Flush(c *Ctx, tag func(dst amnet.NodeID, regions int) uint64) int {
	frames := 0
	for _, dst := range b.order {
		bb := b.bufs[dst]
		var t uint64
		if tag != nil {
			t = tag(dst, bb.n)
		}
		c.p.coll.CountFrame(bb.n, len(bb.data))
		c.p.ep.Send(amnet.Msg{
			Dst: dst, Handler: hProtoBatch,
			A: uint64(bb.n), B: t, C: b.verb, D: uint64(b.sp.ID),
			Payload: c.p.cloneForSend(bb.data),
		})
		bb.data = bb.data[:0]
		bb.n = 0
		frames++
	}
	b.order = b.order[:0]
	return frames
}

// BatchRecord is one region's slot in a decoded aggregate frame. Data
// aliases the wire buffer, which the runtime recycles after
// DeliverBatch returns: the protocol must consume it synchronously
// (copy into region data or clone into deferred state), exactly as with
// Deliver's payload.
type BatchRecord struct {
	R    *Region
	Data []byte
}

// BatchDeliverer is implemented by protocols that accept aggregated
// push frames (see ProtoBatcher). DeliverBatch is called under the
// space's engine lock, once per frame, with every record's fast-path
// bits already withdrawn — so the protocol sees consistent section
// counts and can acknowledge the whole frame with a single message.
type BatchDeliverer interface {
	DeliverBatch(ctx *Ctx, sp *Space, src amnet.NodeID, verb, tag uint64, recs []BatchRecord)
}

// decodeBatch splits an aggregate frame into per-region records,
// materializing regions unknown here and withdrawing each region's
// fast bits before the protocol examines section counts (the same
// discipline as the hProto handler). Caller holds sp's engine lock.
func (p *Proc) decodeBatch(sp *Space, m amnet.Msg) []BatchRecord {
	recs := make([]BatchRecord, 0, m.A)
	buf := m.Payload
	for len(buf) >= 12 {
		id := RegionID(binary.LittleEndian.Uint64(buf))
		size := int(binary.LittleEndian.Uint32(buf[8:]))
		buf = buf[12:]
		if size > len(buf) {
			panic(fmt.Sprintf("core: proc %d: truncated aggregate frame from %d (record %v wants %d of %d bytes)",
				p.id, m.Src, id, size, len(buf)))
		}
		r := sp.ctx.EnsureRegion(id, size, sp.ID)
		if r.Space != sp {
			panic(fmt.Sprintf("core: proc %d: aggregate frame record for %v names space %d, region is in %d",
				p.id, r.ID, sp.ID, r.Space.ID))
		}
		r.disableFast()
		recs = append(recs, BatchRecord{R: r, Data: buf[:size:size]})
		buf = buf[size:]
	}
	if len(recs) != int(m.A) || len(buf) != 0 {
		panic(fmt.Sprintf("core: proc %d: malformed aggregate frame from %d: %d records decoded, header says %d, %d bytes left",
			p.id, m.Src, len(recs), m.A, len(buf)))
	}
	return recs
}
