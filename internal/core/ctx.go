package core

import (
	"fmt"
	"sync"
	"time"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/trace"
)

// Ctx provides the services protocol implementations build on: sending
// protocol messages, blocking the application thread on a waiter, default
// barrier and lock implementations, and access to the region table. Each
// space owns a Ctx bound to its engine lock; protocol routines always
// receive that Ctx, so Wait can release the engine while blocked. The
// proc-level Ctx (no engine) backs the runtime's own collectives and
// lookups.
type Ctx struct {
	p *Proc
	// eng is the engine lock the caller holds while running protocol
	// code, released across Wait; nil for the proc-level Ctx.
	eng *sync.Mutex
}

// ID returns the processor id.
func (c *Ctx) ID() amnet.NodeID { return c.p.id }

// Procs returns the cluster size.
func (c *Ctx) Procs() int { return c.p.cl.Procs() }

// Region returns the local view of id, or nil if not materialized here.
func (c *Ctx) Region(id RegionID) *Region {
	c.p.regMu.RLock()
	r := c.p.regions.Get(id)
	c.p.regMu.RUnlock()
	return r
}

// EnsureRegion returns the local view of id, materializing it with the
// given size and space if absent. Push-based protocols use this when data
// arrives for a region the local processor has never mapped. The caller
// must hold the engine lock of the space named by spaceID — always the
// case inside Deliver, which runs under the addressed space's engine.
func (c *Ctx) EnsureRegion(id RegionID, size, spaceID int) *Region {
	if r := c.Region(id); r != nil {
		return r
	}
	return c.p.materialize(id, size, c.p.space(spaceID))
}

// ForEachRegion visits every locally known region. The visited set is a
// snapshot: regions materialized during the iteration may be missed.
func (c *Ctx) ForEachRegion(fn func(*Region)) {
	for _, r := range c.p.regionList() {
		fn(r)
	}
}

// Space returns the space with the given id.
func (c *Ctx) Space(id int) *Space {
	return c.p.space(id)
}

// DisableFast atomically withdraws r's fast-path eligibility bits.
// Protocol code that is about to mutate the coherence state of a region
// other than the one the runtime invoked it for (bulk invalidation
// loops, barrier-time self-invalidation) must call it first, so a
// concurrent fast bracket cannot commit against the stale state; the
// runtime handles the invoked region itself.
func (c *Ctx) DisableFast(r *Region) { r.disableFast() }

// RefreshFast recomputes and republishes r's eligibility bits from its
// space's protocol. Call it (with the space's engine held) after bulk
// mutations disabled the fast path with DisableFast.
func (c *Ctx) RefreshFast(r *Region) { r.Space.refreshFast(r) }

// NewWaiter allocates a waiter and returns its sequence number. The
// application thread passes the number in a request message (field B by
// convention) and calls Wait; the reply handler calls Complete.
func (c *Ctx) NewWaiter() uint64 {
	p := c.p
	p.wMu.Lock()
	p.nextWaiter++
	seq := p.nextWaiter
	p.waiters[seq] = &waiter{ch: make(chan amnet.Msg, 1)}
	p.wMu.Unlock()
	return seq
}

// Wait blocks until Complete is called for seq, releasing the caller's
// engine lock (if any) while blocked and reacquiring it before
// returning. Only the application thread may call Wait. The waiter is
// retired here, not in Complete: the pump may complete a waiter in the
// window between the application thread's NewWaiter and its Wait, and
// the entry must still be present when Wait looks it up (the buffered
// channel holds the already-delivered message).
//
// The wait is interruptible: when the transport declares a peer lost
// (amnet.PeerAware) or Options.SyncTimeout elapses, Wait panics with a
// typed error (*PeerLostError, *SyncStallError) that Run converts to
// the processor's error — so barriers, locks and coherence fetches fail
// instead of hanging forever. The panic unwinds with the engine lock
// released (Wait had released it to block); the cluster is not usable
// afterwards.
func (c *Ctx) Wait(seq uint64) amnet.Msg {
	p := c.p
	p.wMu.Lock()
	w := p.waiters[seq]
	p.wMu.Unlock()
	if w == nil {
		panic(fmt.Sprintf("core: proc %d: wait on unknown waiter %d", p.id, seq))
	}
	if c.eng != nil {
		c.eng.Unlock()
	}
	m := p.waitSync(w, seq)
	if c.eng != nil {
		c.eng.Lock()
	}
	p.wMu.Lock()
	delete(p.waiters, seq)
	p.wMu.Unlock()
	return m
}

// waitSync blocks on the waiter's channel, the peer-down signal, and —
// when configured — the synchronization timeout. A completion that
// raced in ahead of a failure signal still wins.
func (p *Proc) waitSync(w *waiter, seq uint64) amnet.Msg {
	if d := p.cl.opts.SyncTimeout; d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case m := <-w.ch:
			return m
		case <-p.downCh:
		case <-t.C:
			select {
			case m := <-w.ch:
				return m
			default:
			}
			p.retireWaiter(seq)
			panic(&SyncStallError{Local: int(p.id), After: d})
		}
	} else {
		select {
		case m := <-w.ch:
			return m
		case <-p.downCh:
		}
	}
	// Peer down. Drain a completion that raced in, else fail typed.
	select {
	case m := <-w.ch:
		return m
	default:
	}
	p.retireWaiter(seq)
	panic(&PeerLostError{Local: int(p.id), Peer: int(p.downPeer.Load())})
}

// retireWaiter removes a waiter whose Wait is failing, leaving a
// tombstone so a completion arriving after the failure (a slow but
// alive peer answering just past the stall timeout) does not hit the
// unknown-waiter panic in Complete — the late message is dropped
// instead. Tombstones are never reclaimed: retirement only happens on
// the failure paths, after which the cluster is unusable.
func (p *Proc) retireWaiter(seq uint64) {
	p.wMu.Lock()
	if w := p.waiters[seq]; w != nil {
		// Drop a completion that slipped in between the caller's final
		// drain and this retirement — once the waiter is retired nobody
		// will ever read the channel again.
		select {
		case m := <-w.ch:
			amnet.Recycle(m.Payload)
		default:
		}
	}
	delete(p.waiters, seq)
	if p.retired == nil {
		p.retired = make(map[uint64]struct{})
	}
	p.retired[seq] = struct{}{}
	p.wMu.Unlock()
}

// Complete finishes the waiter seq, handing it m. It is typically called
// from a Deliver handler (for locally served requests it may also be
// called from the application thread). Complete never blocks. A
// completion for a retired waiter (one whose Wait already failed with
// ErrSyncStall or ErrPeerLost) is dropped and its payload recycled;
// completing a waiter that never existed is a protocol bug and panics.
func (c *Ctx) Complete(seq uint64, m amnet.Msg) {
	p := c.p
	p.wMu.Lock()
	w := p.waiters[seq]
	if w == nil {
		_, retired := p.retired[seq]
		p.wMu.Unlock()
		if retired {
			amnet.Recycle(m.Payload)
			return
		}
		panic(fmt.Sprintf("core: proc %d: complete of unknown waiter %d", p.id, seq))
	}
	// Deliver while still holding wMu: retireWaiter runs under the same
	// lock, so the waiter cannot be retired between the lookup above and
	// the send — delivering after unlocking stranded the message (and
	// leaked its pooled payload) in an abandoned channel when Wait
	// failed at just the wrong moment. The channel is buffered for the
	// one completion a waiter expects, so the send never blocks a live
	// waiter; the fallback keeps the never-blocks contract regardless.
	select {
	case w.ch <- m:
	default:
		amnet.Recycle(m.Payload)
	}
	p.wMu.Unlock()
}

// SendProto sends a protocol message. A names the region (0 for space-
// level messages), B carries a waiter sequence when a reply is expected, C
// is the protocol verb and D the space id (used by the destination to
// dispatch when the region is not materialized there). The payload is
// copied before Send returns, so callers may pass region data directly.
func (c *Ctx) SendProto(dst amnet.NodeID, a, b, verb, spaceID uint64, payload []byte) {
	c.p.ep.Send(amnet.Msg{
		Dst: dst, Handler: hProto,
		A: a, B: b, C: verb, D: spaceID,
		Payload: c.p.cloneForSend(payload),
	})
}

// SendComplete sends a completion for the waiter seq on dst, carrying the
// scalar a and an optional payload (copied before Send returns).
func (c *Ctx) SendComplete(dst amnet.NodeID, seq, a uint64, payload []byte) {
	c.p.ep.Send(amnet.Msg{
		Dst: dst, Handler: hComplete,
		A: a, B: seq,
		Payload: c.p.cloneForSend(payload),
	})
}

// Recycle returns a delivered payload to the fabric's buffer pool. Call
// it once the payload's contents have been consumed (for example after
// copying a fetch reply into r.Data); the buffer must not be touched
// afterwards. Recycling is optional — a payload that escapes to longer-
// lived state can simply be retained and left to the garbage collector.
func (c *Ctx) Recycle(payload []byte) { amnet.Recycle(payload) }

// DefaultBarrier blocks until every processor has entered a barrier. It is
// the building block protocols compose their Barrier semantics from.
// barGen is application-thread-private, so no lock is taken for the
// generation tag. On the star topology the arrival goes to processor 0;
// on the tree it folds into the local subtree state (treeBarEvent
// climbs when the subtree completes).
func (c *Ctx) DefaultBarrier() {
	p := c.p
	p.barGen++
	gen := p.barGen
	seq := c.NewWaiter()
	p.coll.CountBarrier()
	if p.cl.collTree {
		p.treeBarEvent(gen, true, seq)
	} else {
		p.coll.CountHops(1, 0)
		p.ep.Send(amnet.Msg{Dst: 0, Handler: hBarArrive, A: gen, B: seq})
	}
	c.Wait(seq)
}

// DefaultLock acquires the home-based queue lock on r.
func (c *Ctx) DefaultLock(r *Region) {
	seq := c.NewWaiter()
	c.p.ep.Send(amnet.Msg{Dst: r.Home, Handler: hLockReq, A: uint64(r.ID), B: seq})
	c.Wait(seq)
}

// DefaultUnlock releases the home-based queue lock on r. The release is
// asynchronous; per-pair FIFO ordering guarantees a subsequent DefaultLock
// from this processor is served after the release.
func (c *Ctx) DefaultUnlock(r *Region) {
	c.p.ep.Send(amnet.Msg{Dst: r.Home, Handler: hUnlockMsg, A: uint64(r.ID)})
}

// NetStats returns the processor's endpoint traffic counters.
func (c *Ctx) NetStats() *trace.NetStats { return c.p.ep.Stats() }

// cloneForSend prepares a payload for Endpoint.Send. On fabrics that
// copy the payload synchronously (amnet.PayloadCopier) the caller's
// buffer is passed straight through — Send has finished reading it by
// the time it returns, so no defensive clone is needed. On by-reference
// fabrics each send gets its own pooled copy, which also keeps the
// one-owner rule: two destinations must never share a payload slice.
func (p *Proc) cloneForSend(b []byte) []byte {
	if p.fabricCopies {
		return b
	}
	return clone(b)
}

// clone copies b into a pooled buffer (see amnet.Alloc). The copy is
// handed to the fabric or to a waiter, whose consumer may recycle it.
func clone(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := amnet.Alloc(len(b))
	copy(out, b)
	return out
}
