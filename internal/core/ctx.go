package core

import (
	"fmt"

	"github.com/acedsm/ace/internal/amnet"
)

// Ctx provides the services protocol implementations build on: sending
// protocol messages, blocking the application thread on a waiter, default
// barrier and lock implementations, and access to the region table. Every
// Ctx method must be called with the owning processor's runtime mutex held
// — which is always the case inside Protocol methods, since the runtime
// invokes them under the mutex.
type Ctx struct {
	p *Proc
}

// ID returns the processor id.
func (c *Ctx) ID() amnet.NodeID { return c.p.id }

// Procs returns the cluster size.
func (c *Ctx) Procs() int { return c.p.cl.Procs() }

// Region returns the local view of id, or nil if not materialized here.
func (c *Ctx) Region(id RegionID) *Region { return c.p.regions.Get(id) }

// EnsureRegion returns the local view of id, materializing it with the
// given size and space if absent. Push-based protocols use this when data
// arrives for a region the local processor has never mapped.
func (c *Ctx) EnsureRegion(id RegionID, size, spaceID int) *Region {
	if r := c.p.regions.Get(id); r != nil {
		return r
	}
	return c.p.materialize(id, size, spaceID)
}

// ForEachRegion visits every locally known region. The table must not be
// mutated during iteration.
func (c *Ctx) ForEachRegion(fn func(*Region)) {
	c.p.regions.ForEach(func(_ RegionID, r *Region) { fn(r) })
}

// Space returns the space with the given id.
func (c *Ctx) Space(id int) *Space {
	if id < 0 || id >= len(c.p.spaces) {
		panic(fmt.Sprintf("core: proc %d: unknown space %d", c.p.id, id))
	}
	return c.p.spaces[id]
}

// NewWaiter allocates a waiter and returns its sequence number. The
// application thread passes the number in a request message (field B by
// convention) and calls Wait; the reply handler calls Complete.
func (c *Ctx) NewWaiter() uint64 {
	c.p.nextWaiter++
	seq := c.p.nextWaiter
	c.p.waiters[seq] = &waiter{ch: make(chan amnet.Msg, 1)}
	return seq
}

// Wait blocks until Complete is called for seq, releasing the runtime
// mutex while blocked and reacquiring it before returning. Only the
// application thread may call Wait.
func (c *Ctx) Wait(seq uint64) amnet.Msg {
	w := c.p.waiters[seq]
	if w == nil {
		panic(fmt.Sprintf("core: proc %d: wait on unknown waiter %d", c.p.id, seq))
	}
	c.p.mu.Unlock()
	m := <-w.ch
	c.p.mu.Lock()
	return m
}

// Complete finishes the waiter seq, handing it m. It is typically called
// from a Deliver handler (for locally served requests it may also be
// called from the application thread). Complete never blocks.
func (c *Ctx) Complete(seq uint64, m amnet.Msg) {
	w := c.p.waiters[seq]
	if w == nil {
		panic(fmt.Sprintf("core: proc %d: complete of unknown waiter %d", c.p.id, seq))
	}
	delete(c.p.waiters, seq)
	w.ch <- m
}

// SendProto sends a protocol message. A names the region (0 for space-
// level messages), B carries a waiter sequence when a reply is expected, C
// is the protocol verb and D the space id (used by the destination to
// dispatch when the region is not materialized there). The payload is
// copied before Send returns, so callers may pass region data directly.
func (c *Ctx) SendProto(dst amnet.NodeID, a, b, verb, spaceID uint64, payload []byte) {
	c.p.ep.Send(amnet.Msg{
		Dst: dst, Handler: hProto,
		A: a, B: b, C: verb, D: spaceID,
		Payload: c.p.cloneForSend(payload),
	})
}

// SendComplete sends a completion for the waiter seq on dst, carrying the
// scalar a and an optional payload (copied before Send returns).
func (c *Ctx) SendComplete(dst amnet.NodeID, seq, a uint64, payload []byte) {
	c.p.ep.Send(amnet.Msg{
		Dst: dst, Handler: hComplete,
		A: a, B: seq,
		Payload: c.p.cloneForSend(payload),
	})
}

// Recycle returns a delivered payload to the fabric's buffer pool. Call
// it once the payload's contents have been consumed (for example after
// copying a fetch reply into r.Data); the buffer must not be touched
// afterwards. Recycling is optional — a payload that escapes to longer-
// lived state can simply be retained and left to the garbage collector.
func (c *Ctx) Recycle(payload []byte) { amnet.Recycle(payload) }

// DefaultBarrier blocks until every processor has entered a barrier. It is
// the building block protocols compose their Barrier semantics from.
func (c *Ctx) DefaultBarrier() {
	p := c.p
	p.barGen++
	gen := p.barGen
	seq := c.NewWaiter()
	p.ep.Send(amnet.Msg{Dst: 0, Handler: hBarArrive, A: gen, B: seq})
	c.Wait(seq)
}

// DefaultLock acquires the home-based queue lock on r.
func (c *Ctx) DefaultLock(r *Region) {
	seq := c.NewWaiter()
	c.p.ep.Send(amnet.Msg{Dst: r.Home, Handler: hLockReq, A: uint64(r.ID), B: seq})
	c.Wait(seq)
}

// DefaultUnlock releases the home-based queue lock on r. The release is
// asynchronous; per-pair FIFO ordering guarantees a subsequent DefaultLock
// from this processor is served after the release.
func (c *Ctx) DefaultUnlock(r *Region) {
	c.p.ep.Send(amnet.Msg{Dst: r.Home, Handler: hUnlockMsg, A: uint64(r.ID)})
}

// NetStats returns the processor's endpoint traffic counters.
func (c *Ctx) NetStats() *amnet.Stats { return c.p.ep.Stats() }

// cloneForSend prepares a payload for Endpoint.Send. On fabrics that
// copy the payload synchronously (amnet.PayloadCopier) the caller's
// buffer is passed straight through — Send has finished reading it by
// the time it returns, so no defensive clone is needed. On by-reference
// fabrics each send gets its own pooled copy, which also keeps the
// one-owner rule: two destinations must never share a payload slice.
func (p *Proc) cloneForSend(b []byte) []byte {
	if p.fabricCopies {
		return b
	}
	return clone(b)
}

// clone copies b into a pooled buffer (see amnet.Alloc). The copy is
// handed to the fabric or to a waiter, whose consumer may recycle it.
func clone(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := amnet.Alloc(len(b))
	copy(out, b)
	return out
}
