package core

import (
	"errors"
	"fmt"
	"testing"
)

// TestFreeSpaceRecyclesSlot pins the lifecycle basics: FreeSpace nils
// the table slot, a subsequent NewSpace reuses the lowest freed slot
// under a bumped generation, and the freed space's regions leave the
// region table.
func TestFreeSpaceRecyclesSlot(t *testing.T) {
	run(t, 2, func(p *Proc) error {
		sp, err := p.NewSpace("sc")
		if err != nil {
			return err
		}
		slot, ref := sp.ID, sp.Ref()

		var id RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, 64)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		p.StartWrite(r)
		r.Data.SetInt64(0, int64(p.ID()))
		p.EndWrite(r)
		p.Unmap(r)
		p.Barrier(sp)

		before := p.regions.Len()
		if err := p.FreeSpace(sp); err != nil {
			return err
		}
		if !sp.Freed() {
			return errors.New("space not marked freed")
		}
		if got := p.regions.Len(); got >= before {
			return fmt.Errorf("region table did not shrink: %d -> %d", before, got)
		}
		if _, err := p.SpaceByRef(ref); !errors.Is(err, ErrStaleSpace) {
			return fmt.Errorf("stale ref resolved: err=%v", err)
		}

		sp2, err := p.NewSpace("sc")
		if err != nil {
			return err
		}
		if sp2.ID != slot {
			return fmt.Errorf("freed slot %d not recycled: got %d", slot, sp2.ID)
		}
		if sp2.Gen != ref.Gen+1 {
			return fmt.Errorf("recycled slot generation %d, want %d", sp2.Gen, ref.Gen+1)
		}
		// The stale ref must still refuse to resolve to the new occupant.
		if _, err := p.SpaceByRef(ref); !errors.Is(err, ErrStaleSpace) {
			return fmt.Errorf("stale ref aliased recycled slot: err=%v", err)
		}
		if got, err := p.SpaceByRef(sp2.Ref()); err != nil || got != sp2 {
			return fmt.Errorf("fresh ref failed: %v", err)
		}
		return p.FreeSpace(sp2)
	})
}

// TestFreeSpaceGuards pins the refusals: the default space cannot be
// freed, and a double free fails with ErrStaleSpace on every processor
// (checked before the collective rendezvous, so a lone double-free call
// cannot hang the cluster).
func TestFreeSpaceGuards(t *testing.T) {
	run(t, 2, func(p *Proc) error {
		if err := p.FreeSpace(p.DefaultSpace()); err == nil {
			return errors.New("freed the default space")
		}
		sp, err := p.NewSpace("sc")
		if err != nil {
			return err
		}
		if err := p.FreeSpace(sp); err != nil {
			return err
		}
		if err := p.FreeSpace(sp); !errors.Is(err, ErrStaleSpace) {
			return fmt.Errorf("double free: err=%v", err)
		}
		return nil
	})
}

// TestGMallocEErrors is the regression test for the GMalloc panic
// bugfix: client-derived sizes and stale spaces must come back as
// errors from GMallocE, never as panics.
func TestGMallocEErrors(t *testing.T) {
	run(t, 1, func(p *Proc) error {
		sp := p.DefaultSpace()
		for _, size := range []int{0, -1, MaxRegionSize + 1} {
			if _, err := p.GMallocE(sp, size); !errors.Is(err, ErrBadSize) {
				return fmt.Errorf("size %d: err=%v, want ErrBadSize", size, err)
			}
		}
		if _, err := p.GMallocE(sp, 8); err != nil {
			return fmt.Errorf("valid size: %v", err)
		}
		sp2, err := p.NewSpace("sc")
		if err != nil {
			return err
		}
		if err := p.FreeSpace(sp2); err != nil {
			return err
		}
		if _, err := p.GMallocE(sp2, 8); !errors.Is(err, ErrStaleSpace) {
			return fmt.Errorf("freed space: err=%v, want ErrStaleSpace", err)
		}
		return nil
	})
}

// TestGMallocStillPanics pins GMalloc's contract for SPMD code: the
// panic on a programmer-error size is unchanged by the bugfix.
func TestGMallocStillPanics(t *testing.T) {
	run(t, 1, func(p *Proc) error {
		defer func() {
			if recover() == nil {
				t.Error("GMalloc(0) did not panic")
			}
		}()
		p.GMalloc(p.DefaultSpace(), 0)
		return nil
	})
}

// TestSpaceChurnBounded creates and destroys spaces in waves across
// procs and asserts the table stays bounded by the wave's width — the
// leak the append-only space table had. Runs under -race in CI.
func TestSpaceChurnBounded(t *testing.T) {
	const waves, width = 8, 4
	run(t, 3, func(p *Proc) error {
		base := p.SpaceSlots()
		for w := 0; w < waves; w++ {
			var sps []*Space
			for i := 0; i < width; i++ {
				sp, err := p.NewSpace("sc")
				if err != nil {
					return err
				}
				sps = append(sps, sp)
			}
			// Touch each space so destruction has regions to purge.
			for _, sp := range sps {
				var id RegionID
				if p.ID() == 0 {
					id = p.GMalloc(sp, 32)
				}
				id = p.BroadcastID(0, id)
				r := p.Map(id)
				p.StartWrite(r)
				r.Data.SetInt64(0, int64(w))
				p.EndWrite(r)
				p.Unmap(r)
				p.Barrier(sp)
			}
			// Free in a different order than creation: slot reuse must
			// stay deterministic because the free list is sorted.
			for i := len(sps) - 1; i >= 0; i-- {
				if err := p.FreeSpace(sps[i]); err != nil {
					return err
				}
			}
			if got := p.SpaceSlots(); got > base+width {
				return fmt.Errorf("wave %d: table grew to %d slots (base %d, width %d)", w, got, base, width)
			}
		}
		if live := p.LiveSpaces(); live != 1 {
			return fmt.Errorf("%d live spaces after churn, want 1 (default)", live)
		}
		return nil
	})
}

// TestCheckpointSkipsFreedSlots pins elastic interop: a checkpoint
// taken while the table holds freed slots records them as empty and
// restores onto a matching table.
func TestCheckpointSkipsFreedSlots(t *testing.T) {
	run(t, 2, func(p *Proc) error {
		sp, err := p.NewSpace("sc")
		if err != nil {
			return err
		}
		if err := p.FreeSpace(sp); err != nil {
			return err
		}
		var id RegionID
		if p.ID() == 0 {
			id = p.GMalloc(p.DefaultSpace(), 16)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		p.StartWrite(r)
		r.Data.SetInt64(0, 7)
		p.EndWrite(r)
		p.GlobalBarrier()

		ck, err := p.Checkpoint(1)
		if err != nil {
			return err
		}
		if len(ck.Protos) != p.SpaceSlots() {
			return fmt.Errorf("checkpoint names %d spaces, table has %d slots", len(ck.Protos), p.SpaceSlots())
		}
		if ck.Protos[sp.ID] != "" {
			return fmt.Errorf("freed slot recorded as %q", ck.Protos[sp.ID])
		}
		ck2, err := DecodeCheckpoint(EncodeCheckpoint(ck))
		if err != nil {
			return err
		}
		if err := p.RestoreCheckpoint(ck2); err != nil {
			return err
		}
		p.StartRead(r)
		v := r.Data.Int64(0)
		p.EndRead(r)
		if v != 7 {
			return fmt.Errorf("restored value %d, want 7", v)
		}
		p.GlobalBarrier()
		return nil
	})
}
