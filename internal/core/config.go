package core

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// This file implements the textual system configuration file that carries
// protocol declarations from the runtime to the compiler — the role played
// in the paper by the file generated from the Tcl/Tk registration script
// (Figure 1). The format:
//
//	protocol Update {
//	    start_read  null
//	    end_read    null
//	    start_write proc
//	    end_write   proc
//	    barrier     proc
//	    optimizable yes
//	}
//
// Points not mentioned default to "proc" (a real handler). The compiler
// derives handler names by concatenating the protocol name with the point
// name (Update_StartWrite), exactly as described in Section 3.2.

// WriteConfig emits the configuration file for all registered protocols.
func (r *Registry) WriteConfig(w io.Writer) error {
	for _, d := range r.Decls() {
		if err := writeDecl(w, d); err != nil {
			return err
		}
	}
	return nil
}

func writeDecl(w io.Writer, d Decl) error {
	if _, err := fmt.Fprintf(w, "protocol %s {\n", d.Name); err != nil {
		return err
	}
	for p := Point(0); p < NumPoints; p++ {
		kind := "proc"
		if d.Null.Has(p) {
			kind = "null"
		}
		if _, err := fmt.Fprintf(w, "    %-12s %s\n", p, kind); err != nil {
			return err
		}
	}
	opt := "no"
	if d.Optimizable {
		opt = "yes"
	}
	_, err := fmt.Fprintf(w, "    optimizable  %s\n}\n\n", opt)
	return err
}

// ParseConfig reads a configuration file and returns the protocol
// declarations it contains.
func ParseConfig(r io.Reader) ([]Decl, error) {
	sc := bufio.NewScanner(r)
	var decls []Decl
	var cur *Decl
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(text, "protocol "):
			if cur != nil {
				return nil, fmt.Errorf("config line %d: nested protocol block", line)
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, "protocol "))
			name, ok := strings.CutSuffix(rest, "{")
			if !ok {
				return nil, fmt.Errorf("config line %d: expected '{'", line)
			}
			cur = &Decl{Name: strings.TrimSpace(name)}
			if cur.Name == "" {
				return nil, fmt.Errorf("config line %d: empty protocol name", line)
			}
		case text == "}":
			if cur == nil {
				return nil, fmt.Errorf("config line %d: '}' outside protocol block", line)
			}
			decls = append(decls, *cur)
			cur = nil
		default:
			if cur == nil {
				return nil, fmt.Errorf("config line %d: statement outside protocol block", line)
			}
			fields := strings.Fields(text)
			if len(fields) != 2 {
				return nil, fmt.Errorf("config line %d: expected 'key value'", line)
			}
			key, val := fields[0], fields[1]
			if key == "optimizable" {
				switch val {
				case "yes":
					cur.Optimizable = true
				case "no":
					cur.Optimizable = false
				default:
					return nil, fmt.Errorf("config line %d: optimizable must be yes or no", line)
				}
				continue
			}
			p, ok := ParsePoint(key)
			if !ok {
				return nil, fmt.Errorf("config line %d: unknown point %q", line, key)
			}
			switch val {
			case "null":
				cur.Null = cur.Null.With(p)
			case "proc":
				cur.Null = cur.Null.Without(p)
			default:
				return nil, fmt.Errorf("config line %d: handler must be proc or null", line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("config: unterminated protocol block %q", cur.Name)
	}
	return decls, nil
}

// HandlerName derives the compiler-visible handler symbol for a protocol
// point, concatenating the protocol name with the point name as in the
// paper (e.g. Update_StartRead).
func HandlerName(proto string, p Point) string {
	camel := map[Point]string{
		PointMap: "Map", PointUnmap: "Unmap",
		PointStartRead: "StartRead", PointEndRead: "EndRead",
		PointStartWrite: "StartWrite", PointEndWrite: "EndWrite",
		PointBarrier: "Barrier", PointLock: "Lock", PointUnlock: "Unlock",
	}
	return proto + "_" + camel[p]
}
