package core

import (
	"fmt"
	"testing"

	"github.com/acedsm/ace/internal/trace"
)

// These tests stress the lock-free bracket fast path against the message
// pump. They are most valuable under -race: the fast path commits section
// entry/exit with a CAS on the region's hot word while the pump delivers
// protocol messages that mutate coherence state, and the disable-bits-
// before-Deliver discipline is what keeps the two from racing.

// TestFastPathStressSiblingInvalidation hammers hit brackets on each
// processor's home region while its left neighbor generates coherence
// traffic against that same region (exclusive-write increments). The
// pump's deliveries (revokes, grants, directory updates) race the app
// thread's fast CASes; SC must still deliver monotonic values and the
// exact final count.
func TestFastPathStressSiblingInvalidation(t *testing.T) {
	const (
		nprocs = 4
		writes = 200
		reads  = 30
	)
	run(t, nprocs, func(p *Proc) error {
		me := p.ID()
		mine := p.GMalloc(p.DefaultSpace(), 8)
		regs := make([]*Region, nprocs)
		for i := 0; i < nprocs; i++ {
			regs[i] = p.Map(p.BroadcastID(i, mine))
		}
		p.GlobalBarrier()

		victim := regs[(me+1)%nprocs]
		last := int64(-1)
		for w := 0; w < writes; w++ {
			p.StartWrite(victim)
			victim.Data.SetInt64(0, victim.Data.Int64(0)+1)
			p.EndWrite(victim)
			for i := 0; i < reads; i++ {
				p.StartRead(regs[me])
				v := regs[me].Data.Int64(0)
				p.EndRead(regs[me])
				if v < last {
					return fmt.Errorf("proc %d: value went backwards: %d after %d", me, v, last)
				}
				last = v
			}
		}
		p.GlobalBarrier()

		p.StartRead(regs[me])
		got := regs[me].Data.Int64(0)
		p.EndRead(regs[me])
		if got != writes {
			return fmt.Errorf("proc %d: final value %d, want %d", me, got, writes)
		}

		// Quiescent epilogue: with no traffic in flight the home's
		// directory settles, so all but the first of these brackets must
		// commit on the fast path.
		before := p.FastHits()[trace.OpStartRead]
		for i := 0; i < 100; i++ {
			p.StartRead(regs[me])
			p.EndRead(regs[me])
		}
		if hits := p.FastHits()[trace.OpStartRead] - before; hits < 99 {
			return fmt.Errorf("proc %d: %d/100 quiescent brackets hit the fast path, want >= 99", me, hits)
		}
		p.GlobalBarrier()
		return nil
	})
}

// TestFastPathStressChangeProtocol interleaves bracket hammering with
// collective protocol changes. ChangeProtocol must withdraw every
// region's published fast bits before resetting coherence state: a stale
// bit surviving the flush would let a post-change fast read observe
// pre-flush data, which the per-round value check catches.
func TestFastPathStressChangeProtocol(t *testing.T) {
	const rounds = 20
	run(t, 4, func(p *Proc) error {
		sp, err := p.NewSpace("sc")
		if err != nil {
			return err
		}
		var id RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, 8)
		}
		r := p.Map(p.BroadcastID(0, id))
		p.GlobalBarrier()

		for round := 0; round < rounds; round++ {
			if p.ID() == round%p.Procs() {
				p.StartWrite(r)
				r.Data.SetInt64(0, int64(round+1))
				p.EndWrite(r)
			}
			// Concurrent readers may observe the previous or the new
			// value, never anything else.
			for i := 0; i < 100; i++ {
				p.StartRead(r)
				v := r.Data.Int64(0)
				p.EndRead(r)
				if v != int64(round) && v != int64(round+1) {
					return fmt.Errorf("proc %d round %d: read %d", p.ID(), round, v)
				}
			}
			p.GlobalBarrier()
			if err := p.ChangeProtocol(sp, "sc"); err != nil {
				return err
			}
			p.StartRead(r)
			v := r.Data.Int64(0)
			p.EndRead(r)
			if v != int64(round+1) {
				return fmt.Errorf("proc %d round %d: post-change read %d, want %d", p.ID(), round, v, round+1)
			}
			p.GlobalBarrier()
		}
		return nil
	})
}

// TestFastHitCounters checks the bookkeeping around fast hits: every hit
// is still counted as an operation, the hit counts are a subset of the
// operation counts, and the observability layer's FastOps agree with the
// runtime's own counters.
func TestFastHitCounters(t *testing.T) {
	cl, err := NewCluster(Options{Procs: 1, Trace: &trace.Config{Metrics: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const k = 1000
	err = cl.Run(func(p *Proc) error {
		r := p.Map(p.GMalloc(p.DefaultSpace(), 16))
		for i := 0; i < k; i++ {
			p.StartRead(r)
			p.StartRead(r) // nested sections exercise counts > 1
			p.EndRead(r)
			p.EndRead(r)
		}
		for i := 0; i < k; i++ {
			p.StartWrite(r)
			r.Data.SetInt64(0, int64(i))
			p.EndWrite(r)
		}
		st := p.Snapshot().Ops
		if st.Get(trace.OpStartRead) != 2*k || st.Get(trace.OpEndRead) != 2*k ||
			st.Get(trace.OpStartWrite) != k || st.Get(trace.OpEndWrite) != k {
			return fmt.Errorf("op counts: %+v", st)
		}
		fast := p.FastHits()
		if fast[trace.OpStartRead] > st.Get(trace.OpStartRead) || fast[trace.OpEndRead] > st.Get(trace.OpEndRead) {
			return fmt.Errorf("fast hits exceed op counts: %v vs %+v", fast, st)
		}
		// A single-proc home region is permanently quiescent: at most the
		// first bracket of each kind takes the slow path.
		if fast[trace.OpStartRead] < 2*k-1 || fast[trace.OpEndRead] < 2*k-1 ||
			fast[trace.OpStartWrite] < k-1 || fast[trace.OpEndWrite] < k-1 {
			return fmt.Errorf("fast hits %v, want near-total on a quiescent home region", fast)
		}
		m := p.Snapshot()
		for op := trace.Op(0); op < trace.NumOps; op++ {
			if m.FastOps[op] != fast[op] {
				return fmt.Errorf("metrics FastOps[%v] = %d, runtime counter %d", op, m.FastOps[op], fast[op])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
