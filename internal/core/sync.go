package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/acedsm/ace/internal/amnet"
)

// This file implements the runtime's synchronization substrate: the
// centralized barrier, home-based region locks, and the bootstrap
// collectives (broadcast and all-reduce) applications use to distribute
// region ids and combine scalars.

// barrierArrive handles a barrier arrival at processor 0. barArr is
// under barMu: with sharded dispatch, arrivals from different
// processors are handled concurrently. The completions go out after
// barMu is released — Send can block on transport backpressure, and a
// late arrival for the next generation must not queue behind it.
func (p *Proc) barrierArrive(m amnet.Msg) {
	if p.id != 0 {
		panic(fmt.Sprintf("core: proc %d received barrier arrival", p.id))
	}
	gen := m.A
	var release []PendingReq
	p.barMu.Lock()
	p.barArr[gen] = append(p.barArr[gen], PendingReq{Src: m.Src, Seq: m.B})
	if len(p.barArr[gen]) == p.cl.Procs() {
		release = p.barArr[gen]
		delete(p.barArr, gen)
	}
	p.barMu.Unlock()
	for _, a := range release {
		p.ep.Send(amnet.Msg{Dst: a.Src, Handler: hComplete, B: a.Seq})
	}
}

// lockRequest handles a region lock request at the region's home. The
// directory's lock fields (LockHolder, LockQueue) are under the
// directory's lockMu: with sharded dispatch, requests from different
// processors are handled concurrently. The grant is sent after lockMu
// is released.
func (p *Proc) lockRequest(m amnet.Msg) {
	p.regMu.RLock()
	r := p.regions.Get(RegionID(m.A))
	p.regMu.RUnlock()
	if r == nil || !r.IsHome() {
		panic(fmt.Sprintf("core: proc %d: lock request for non-home region %v", p.id, RegionID(m.A)))
	}
	d := r.Dir
	d.lockMu.Lock()
	if d.LockHolder < 0 {
		d.LockHolder = m.Src
		d.lockMu.Unlock()
		p.ep.Send(amnet.Msg{Dst: m.Src, Handler: hComplete, B: m.B})
		return
	}
	d.LockQueue = append(d.LockQueue, lockWaiter{src: m.Src, seq: m.B})
	d.lockMu.Unlock()
}

// unlockRequest handles a region unlock at the region's home. Same
// lockMu discipline as lockRequest.
func (p *Proc) unlockRequest(m amnet.Msg) {
	p.regMu.RLock()
	r := p.regions.Get(RegionID(m.A))
	p.regMu.RUnlock()
	if r == nil || !r.IsHome() {
		panic(fmt.Sprintf("core: proc %d: unlock for non-home region %v", p.id, RegionID(m.A)))
	}
	d := r.Dir
	d.lockMu.Lock()
	if d.LockHolder != m.Src {
		holder := d.LockHolder
		d.lockMu.Unlock()
		panic(fmt.Sprintf("core: proc %d: unlock of %v by %d, holder %d", p.id, r.ID, m.Src, holder))
	}
	if len(d.LockQueue) == 0 {
		d.LockHolder = -1
		d.lockMu.Unlock()
		return
	}
	next := d.LockQueue[0]
	d.LockQueue = d.LockQueue[1:]
	d.LockHolder = next.src
	d.lockMu.Unlock()
	p.ep.Send(amnet.Msg{Dst: next.src, Handler: hComplete, B: next.seq})
}

// Collective operation codes (field C of hColl messages).
const (
	collOpBcast uint64 = iota
	collOpSumI
	collOpMinI
	collOpMaxI
	collOpSumF
	collOpMinF
	collOpMaxF
	collOpResult
)

// collDeliver handles a collective message on a pump goroutine. The
// reduction accumulator is under accMu — with sharded dispatch,
// contributions from different processors are handled concurrently —
// and the combine plus result fan-out happen after accMu is released:
// the final contributor owns the accumulator once it is deleted from
// the table, and Send can block on transport backpressure.
// collArrived takes collMu itself.
func (p *Proc) collDeliver(m amnet.Msg) {
	switch m.C {
	case collOpBcast, collOpResult:
		p.collArrived(m.A, m.Payload)
	default:
		// A reduction contribution; only processor 0 accumulates.
		if p.id != 0 {
			panic(fmt.Sprintf("core: proc %d received reduction contribution", p.id))
		}
		p.accMu.Lock()
		acc := p.collAcc[m.A]
		if acc == nil {
			acc = &collAcc{vals: make([][]byte, p.cl.Procs())}
			p.collAcc[m.A] = acc
		}
		acc.vals[m.Src] = clone(m.Payload)
		acc.count++
		done := acc.count == p.cl.Procs()
		if done {
			delete(p.collAcc, m.A)
		}
		p.accMu.Unlock()
		if done {
			result := reduce(m.C, acc.vals)
			for n := 0; n < p.cl.Procs(); n++ {
				p.ep.Send(amnet.Msg{Dst: amnet.NodeID(n), Handler: hColl, A: m.A, C: collOpResult, Payload: p.cloneForSend(result)})
			}
		}
	}
}

// collArrived records a collective payload for tag, waking a waiter if one
// is registered.
func (p *Proc) collArrived(tag uint64, payload []byte) {
	p.collMu.Lock()
	if seq, ok := p.collWait[tag]; ok {
		delete(p.collWait, tag)
		p.collMu.Unlock()
		p.ctx.Complete(seq, amnet.Msg{Payload: clone(payload)})
		return
	}
	p.collGot[tag] = clone(payload)
	p.collMu.Unlock()
}

// collAwait blocks until the payload for tag arrives. The registration
// (check collGot, else record a waiter in collWait) happens atomically
// under collMu, which is released before blocking.
func (p *Proc) collAwait(tag uint64) []byte {
	p.collMu.Lock()
	if v, ok := p.collGot[tag]; ok {
		delete(p.collGot, tag)
		p.collMu.Unlock()
		return v
	}
	seq := p.ctx.NewWaiter()
	p.collWait[tag] = seq
	p.collMu.Unlock()
	m := p.ctx.Wait(seq)
	return m.Payload
}

// Broadcast distributes data from the root processor to all processors and
// returns it. It is collective: every processor must call it in the same
// program order. The root's data argument is the value broadcast; other
// processors may pass nil.
func (p *Proc) Broadcast(root int, data []byte) []byte {
	// collSeq is application-thread-private; no lock needed for the tag.
	p.collSeq++
	tag := p.collSeq
	if int(p.id) == root {
		for n := 0; n < p.cl.Procs(); n++ {
			if n == root {
				continue
			}
			p.ep.Send(amnet.Msg{Dst: amnet.NodeID(n), Handler: hColl, A: tag, C: collOpBcast, Payload: p.cloneForSend(data)})
		}
		return data
	}
	return p.collAwait(tag)
}

// BroadcastID broadcasts a region id from root.
func (p *Proc) BroadcastID(root int, id RegionID) RegionID {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(id))
	out := p.Broadcast(root, buf[:])
	return RegionID(binary.LittleEndian.Uint64(out))
}

// BroadcastIDs broadcasts a slice of region ids from root. Non-root
// processors may pass nil; all processors must agree on the length only at
// the root.
func (p *Proc) BroadcastIDs(root int, ids []RegionID) []RegionID {
	buf := make([]byte, 8*len(ids))
	for i, id := range ids {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(id))
	}
	out := p.Broadcast(root, buf)
	res := make([]RegionID, len(out)/8)
	for i := range res {
		res[i] = RegionID(binary.LittleEndian.Uint64(out[i*8:]))
	}
	return res
}

// ReduceOp selects the combining operator for AllReduce collectives.
type ReduceOp int

// The supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMin
	OpMax
)

// AllReduceInt64 combines v across all processors with op and returns the
// result on every processor. Collective.
func (p *Proc) AllReduceInt64(op ReduceOp, v int64) int64 {
	code := map[ReduceOp]uint64{OpSum: collOpSumI, OpMin: collOpMinI, OpMax: collOpMaxI}[op]
	out := p.allReduce(code, uint64(v))
	return int64(out)
}

// AllReduceInt64s combines each element of v across all processors with
// op — element-wise, in a single collective round — and returns the
// combined vector on every processor. All processors must pass the same
// length. One round costs the same as one scalar AllReduceInt64, which
// is the point: callers combining a feature vector (the adaptive
// controller reduces seven counters per epoch) pay one round trip, not
// seven. Collective.
func (p *Proc) AllReduceInt64s(op ReduceOp, v []int64) []int64 {
	code := map[ReduceOp]uint64{OpSum: collOpSumI, OpMin: collOpMinI, OpMax: collOpMaxI}[op]
	p.collSeq++
	tag := p.collSeq
	buf := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(x))
	}
	p.ep.Send(amnet.Msg{Dst: 0, Handler: hColl, A: tag, C: code, Payload: buf})
	out := p.collAwait(tag)
	res := make([]int64, len(out)/8)
	for i := range res {
		res[i] = int64(binary.LittleEndian.Uint64(out[i*8:]))
	}
	return res
}

// AllReduceFloat64 combines v across all processors with op and returns
// the result on every processor. Collective.
func (p *Proc) AllReduceFloat64(op ReduceOp, v float64) float64 {
	code := map[ReduceOp]uint64{OpSum: collOpSumF, OpMin: collOpMinF, OpMax: collOpMaxF}[op]
	out := p.allReduce(code, math.Float64bits(v))
	return math.Float64frombits(out)
}

func (p *Proc) allReduce(code uint64, word uint64) uint64 {
	p.collSeq++
	tag := p.collSeq
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], word)
	p.ep.Send(amnet.Msg{Dst: 0, Handler: hColl, A: tag, C: code, Payload: buf[:]})
	out := p.collAwait(tag)
	return binary.LittleEndian.Uint64(out)
}

// reduce combines contribution payloads element-wise with the operator
// encoded in code. Payloads are vectors of 64-bit words — the scalar
// collectives send one-word vectors — and every contribution has the
// same length.
func reduce(code uint64, vals [][]byte) []byte {
	out := make([]byte, len(vals[0]))
	words := make([]uint64, len(vals))
	for e := 0; e < len(out); e += 8 {
		for i, v := range vals {
			words[i] = binary.LittleEndian.Uint64(v[e:])
		}
		var acc uint64
		switch code {
		case collOpSumI:
			var s int64
			for _, w := range words {
				s += int64(w)
			}
			acc = uint64(s)
		case collOpMinI:
			s := int64(words[0])
			for _, w := range words[1:] {
				s = min(s, int64(w))
			}
			acc = uint64(s)
		case collOpMaxI:
			s := int64(words[0])
			for _, w := range words[1:] {
				s = max(s, int64(w))
			}
			acc = uint64(s)
		case collOpSumF:
			var s float64
			for _, w := range words {
				s += math.Float64frombits(w)
			}
			acc = math.Float64bits(s)
		case collOpMinF:
			s := math.Float64frombits(words[0])
			for _, w := range words[1:] {
				s = math.Min(s, math.Float64frombits(w))
			}
			acc = math.Float64bits(s)
		case collOpMaxF:
			s := math.Float64frombits(words[0])
			for _, w := range words[1:] {
				s = math.Max(s, math.Float64frombits(w))
			}
			acc = math.Float64bits(s)
		default:
			panic(fmt.Sprintf("core: bad reduction code %d", code))
		}
		binary.LittleEndian.PutUint64(out[e:], acc)
	}
	return out
}
