package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/acedsm/ace/internal/amnet"
)

// This file implements the runtime's synchronization substrate: the
// barrier, home-based region locks, and the bootstrap collectives
// (broadcast and all-reduce) applications use to distribute region ids
// and combine scalars.
//
// Collectives route through one of two topologies (Options.Coll). The
// star is the original reference implementation: every arrival,
// contribution and result serializes at processor 0, which is simple
// and fine for small P. The binomial tree removes the root bottleneck:
// rank v's parent is v with its lowest set bit cleared, its children
// are v+1, v+2, v+4, ... within its subtree, so every collective is one
// reduce-up/fan-down round of O(log P) depth with no node touching more
// than log P messages. Both topologies combine reduction contributions
// in the same canonical order (see reduce), so their results are
// bit-identical even for the non-associative float sum — the chaos
// harness cross-checks this.

// treeParentOf returns the binomial-tree parent of rank v (root 0): v
// with its lowest set bit cleared.
func treeParentOf(v int) int { return v & (v - 1) }

// treeKidsOf appends the binomial-tree children of rank v in a cluster
// of n ranks, in increasing order. Rank v's subtree spans [v, v+lsb(v))
// (the whole cluster for the root), so its children are v+1, v+2, v+4,
// ... below that bound, clipped to n.
func treeKidsOf(v, n int) []int {
	limit := v & -v
	if v == 0 {
		limit = n
	}
	var kids []int
	for step := 1; step < limit && v+step < n; step <<= 1 {
		kids = append(kids, v+step)
	}
	return kids
}

// Barrier-arrival subtypes (field C of hBarArrive messages on the tree
// topology; the star only ever sends arrivals).
const (
	barArriveUp   uint64 = 0 // a subtree completed; sent child -> parent
	barArriveDown uint64 = 1 // release wave; sent parent -> child
)

// barrierArrive handles a barrier message. On the star topology it runs
// only at processor 0 and collects arrivals; on the tree every node
// folds subtree arrivals into its own generation state and propagates.
// State is under barMu: with sharded dispatch, arrivals from different
// processors are handled concurrently. Sends go out after barMu is
// released — Send can block on transport backpressure, and a late
// arrival for the next generation must not queue behind it.
func (p *Proc) barrierArrive(m amnet.Msg) {
	if p.cl.collTree {
		if m.C == barArriveDown {
			p.barMu.Lock()
			tb := p.barTree[m.A]
			delete(p.barTree, m.A)
			p.barMu.Unlock()
			if tb == nil {
				// Only possible after a peer-down purge dropped the
				// generation; the release wave dies here (the local
				// waiter already failed with ErrPeerLost).
				return
			}
			p.treeBarRelease(m.A, tb.seq)
			return
		}
		p.treeBarEvent(m.A, false, 0)
		return
	}
	if p.id != 0 {
		panic(fmt.Sprintf("core: proc %d received barrier arrival", p.id))
	}
	gen := m.A
	var release []PendingReq
	p.barMu.Lock()
	if p.downPeer.Load() >= 0 {
		// A peer is lost and the pending-barrier purge ran or is about
		// to: drop the arrival rather than repopulate the table (the
		// sender's Wait fails with ErrPeerLost).
		p.barMu.Unlock()
		return
	}
	p.barArr[gen] = append(p.barArr[gen], PendingReq{Src: m.Src, Seq: m.B})
	if len(p.barArr[gen]) == p.cl.Procs() {
		release = p.barArr[gen]
		delete(p.barArr, gen)
	}
	p.barMu.Unlock()
	if release != nil {
		p.coll.CountHops(len(release), 0)
	}
	for _, a := range release {
		p.ep.Send(amnet.Msg{Dst: a.Src, Handler: hComplete, B: a.Seq})
	}
}

// treeBar is one generation's arrival state at one node of the
// collective tree (under barMu).
type treeBar struct {
	kids int    // child subtrees that completed
	own  bool   // the local application thread arrived
	seq  uint64 // local waiter, completed by the release wave
}

// purgeSyncState drops every pending synchronization record after a
// peer loss: barrier generations (star table and tree state), in-flight
// reduction partials, and home-region lock queues. The blocked local
// waits have already failed (or will fail) with ErrPeerLost via downCh;
// without the purge their arrival records would strand in the tables,
// and a late arrival from a surviving peer would repopulate them — the
// arrival handlers drop messages once downPeer is set, checked under
// the same locks, so the tables stay empty. LockHolder is left as is:
// the holder may be alive, and the cluster is unusable regardless.
func (p *Proc) purgeSyncState() {
	p.barMu.Lock()
	clear(p.barArr)
	clear(p.barTree)
	p.barMu.Unlock()
	p.accMu.Lock()
	clear(p.collAcc)
	p.accMu.Unlock()
	for _, r := range p.regionList() {
		if r.Dir == nil {
			continue
		}
		r.Dir.lockMu.Lock()
		r.Dir.LockQueue = nil
		r.Dir.lockMu.Unlock()
	}
}

// treeBarEvent folds one arrival event — the local application thread's
// (own=true, carrying its waiter seq) or a child subtree's — into the
// generation's state and, when the subtree is complete, propagates: up
// to the parent, or into the release wave at the root. Generations are
// keyed independently because they overlap under sharded dispatch: a
// child's arrival for generation g+1 can be handled while generation
// g's release is still fanning out. Propagation happens outside barMu.
func (p *Proc) treeBarEvent(gen uint64, own bool, seq uint64) {
	root := p.treeParent < 0
	p.barMu.Lock()
	if p.downPeer.Load() >= 0 {
		p.barMu.Unlock()
		return // purged; drop (see barrierArrive)
	}
	tb := p.barTree[gen]
	if tb == nil {
		tb = &treeBar{}
		p.barTree[gen] = tb
	}
	if own {
		tb.own, tb.seq = true, seq
	} else {
		tb.kids++
	}
	ready := tb.own && tb.kids == len(p.treeKids)
	if ready && root {
		// The root releases immediately; interior nodes keep the entry
		// until the release wave returns (it carries their waiter seq).
		delete(p.barTree, gen)
	}
	p.barMu.Unlock()
	if !ready {
		return
	}
	if !root {
		p.coll.CountHops(1, 0)
		p.ep.Send(amnet.Msg{Dst: p.treeParent, Handler: hBarArrive, A: gen, C: barArriveUp})
		return
	}
	p.treeBarRelease(gen, tb.seq)
}

// treeBarRelease fans the release wave to this node's subtrees and
// completes the local waiter.
func (p *Proc) treeBarRelease(gen, seq uint64) {
	p.coll.CountHops(len(p.treeKids), 0)
	for _, k := range p.treeKids {
		p.ep.Send(amnet.Msg{Dst: k, Handler: hBarArrive, A: gen, C: barArriveDown})
	}
	p.ctx.Complete(seq, amnet.Msg{})
}

// lockRequest handles a region lock request at the region's home. The
// directory's lock fields (LockHolder, LockQueue) are under the
// directory's lockMu: with sharded dispatch, requests from different
// processors are handled concurrently. The grant is sent after lockMu
// is released.
func (p *Proc) lockRequest(m amnet.Msg) {
	p.regMu.RLock()
	r := p.regions.Get(RegionID(m.A))
	p.regMu.RUnlock()
	if r == nil || !r.IsHome() {
		panic(fmt.Sprintf("core: proc %d: lock request for non-home region %v", p.id, RegionID(m.A)))
	}
	d := r.Dir
	d.lockMu.Lock()
	if p.downPeer.Load() >= 0 {
		// Purged (see purgeSyncState): don't queue new waiters — the
		// requester's Wait fails with ErrPeerLost.
		d.lockMu.Unlock()
		return
	}
	if d.LockHolder < 0 {
		d.LockHolder = m.Src
		d.lockMu.Unlock()
		p.ep.Send(amnet.Msg{Dst: m.Src, Handler: hComplete, B: m.B})
		return
	}
	d.LockQueue = append(d.LockQueue, lockWaiter{src: m.Src, seq: m.B})
	d.lockMu.Unlock()
}

// unlockRequest handles a region unlock at the region's home. Same
// lockMu discipline as lockRequest.
func (p *Proc) unlockRequest(m amnet.Msg) {
	p.regMu.RLock()
	r := p.regions.Get(RegionID(m.A))
	p.regMu.RUnlock()
	if r == nil || !r.IsHome() {
		panic(fmt.Sprintf("core: proc %d: unlock for non-home region %v", p.id, RegionID(m.A)))
	}
	d := r.Dir
	d.lockMu.Lock()
	if d.LockHolder != m.Src {
		holder := d.LockHolder
		d.lockMu.Unlock()
		panic(fmt.Sprintf("core: proc %d: unlock of %v by %d, holder %d", p.id, r.ID, m.Src, holder))
	}
	if len(d.LockQueue) == 0 {
		d.LockHolder = -1
		d.lockMu.Unlock()
		return
	}
	next := d.LockQueue[0]
	d.LockQueue = d.LockQueue[1:]
	d.LockHolder = next.src
	d.lockMu.Unlock()
	p.ep.Send(amnet.Msg{Dst: next.src, Handler: hComplete, B: next.seq})
}

// Collective operation codes (field C of hColl messages).
const (
	collOpBcast uint64 = iota
	collOpSumI
	collOpMinI
	collOpMaxI
	collOpSumF
	collOpMinF
	collOpMaxF
	collOpResult
)

// collDeliver handles a collective message on a pump goroutine. The
// reduction accumulator is under accMu — with sharded dispatch,
// contributions from different processors are handled concurrently —
// and the combine plus result fan-out happen after accMu is released:
// the final contributor owns the accumulator once it is deleted from
// the table, and Send can block on transport backpressure.
// collArrived takes collMu itself.
func (p *Proc) collDeliver(m amnet.Msg) {
	switch m.C {
	case collOpBcast:
		if p.cl.collTree {
			p.bcastFan(int(m.D), m.A, m.Payload)
		}
		p.collArrived(m.A, m.Payload)
	case collOpResult:
		if p.cl.collTree {
			// Forward the result wave down before waking the local
			// waiter, so the subtree's latency is not behind it.
			p.sendFan(p.treeKids, amnet.Msg{Handler: hColl, A: m.A, C: collOpResult, Payload: m.Payload})
		}
		p.collArrived(m.A, m.Payload)
	default:
		// A reduction contribution: a child subtree's partial on the
		// tree, any processor's value at the star root.
		if p.cl.collTree {
			p.treeContribute(m.A, m.C, m.Src, m.Payload)
			return
		}
		if p.id != 0 {
			panic(fmt.Sprintf("core: proc %d received reduction contribution", p.id))
		}
		p.accMu.Lock()
		if p.downPeer.Load() >= 0 {
			p.accMu.Unlock()
			return // purged; drop (see barrierArrive)
		}
		acc := p.collAcc[m.A]
		if acc == nil {
			acc = &collAcc{vals: make([][]byte, p.cl.Procs()), expect: p.cl.Procs()}
			p.collAcc[m.A] = acc
		}
		acc.vals[m.Src] = clone(m.Payload)
		acc.count++
		done := acc.count == acc.expect
		if done {
			delete(p.collAcc, m.A)
		}
		p.accMu.Unlock()
		if done {
			result := reduce(m.C, acc.vals)
			p.sendFan(p.allNodes(), amnet.Msg{Handler: hColl, A: m.A, C: collOpResult, Payload: result})
			for _, v := range acc.vals {
				amnet.Recycle(v) // result aliases vals[0]; sendFan copied
			}
		}
	}
}

// treeContribute folds one reduction contribution — the local value or
// a child subtree's partial — into the tag's accumulator. Slots follow
// the canonical combine order (own value, then children in increasing
// rank; see reduce), so combining a full accumulator left-to-right at
// every level yields the same bits the star's canonical reduce does.
// The finishing contributor owns the accumulator once it is deleted
// from the table and combines outside accMu.
func (p *Proc) treeContribute(tag, code uint64, src amnet.NodeID, val []byte) {
	p.accMu.Lock()
	if p.downPeer.Load() >= 0 {
		p.accMu.Unlock()
		return // purged; drop (see barrierArrive)
	}
	acc := p.collAcc[tag]
	if acc == nil {
		acc = &collAcc{vals: make([][]byte, len(p.treeKids)+1), expect: len(p.treeKids) + 1}
		p.collAcc[tag] = acc
	}
	slot := 0
	if src != p.id {
		slot = 1 + p.kidSlot(src)
	}
	acc.vals[slot] = clone(val)
	acc.count++
	done := acc.count == acc.expect
	if done {
		delete(p.collAcc, tag)
	}
	p.accMu.Unlock()
	if !done {
		return
	}
	part := acc.vals[0]
	for _, v := range acc.vals[1:] {
		combineInto(code, part, v)
		amnet.Recycle(v)
	}
	if p.treeParent >= 0 {
		p.coll.CountHops(1, len(part))
		// part is a pooled clone this node owns; on a by-reference
		// fabric ownership passes to the parent's handler, on a copying
		// fabric Send is done with it when it returns.
		p.ep.Send(amnet.Msg{Dst: p.treeParent, Handler: hColl, A: tag, C: code, Payload: part})
		if p.fabricCopies {
			amnet.Recycle(part)
		}
		return
	}
	p.sendFan(p.treeKids, amnet.Msg{Handler: hColl, A: tag, C: collOpResult, Payload: part})
	p.collArrived(tag, part)
	amnet.Recycle(part)
}

// kidSlot returns src's index among this node's tree children.
func (p *Proc) kidSlot(src amnet.NodeID) int {
	for i, k := range p.treeKids {
		if k == src {
			return i
		}
	}
	panic(fmt.Sprintf("core: proc %d: contribution from %d, not a tree child", p.id, src))
}

// allNodes returns every node id, for the star root's result fan-out
// (the root contributes and awaits like everyone else, so it addresses
// itself too; the fabric handles self-sends).
func (p *Proc) allNodes() []amnet.NodeID {
	out := make([]amnet.NodeID, p.cl.Procs())
	for i := range out {
		out[i] = amnet.NodeID(i)
	}
	return out
}

// sendFan delivers one collective message to each destination,
// materializing the payload once when the fabric can share it
// (amnet.MultiSender) and falling back to per-destination sends with
// the usual clone discipline otherwise. The caller keeps ownership of
// m.Payload either way. Fan-out hops and bytes are counted here.
func (p *Proc) sendFan(dsts []amnet.NodeID, m amnet.Msg) {
	if len(dsts) == 0 {
		return
	}
	p.coll.CountHops(len(dsts), len(dsts)*len(m.Payload))
	if ms, ok := p.ep.(amnet.MultiSender); ok {
		ms.SendMulti(dsts, m)
		return
	}
	for _, d := range dsts {
		mm := m
		mm.Dst = d
		mm.Payload = p.cloneForSend(m.Payload)
		p.ep.Send(mm)
	}
}

// collArrived records a collective payload for tag, waking a waiter if one
// is registered.
func (p *Proc) collArrived(tag uint64, payload []byte) {
	p.collMu.Lock()
	if seq, ok := p.collWait[tag]; ok {
		delete(p.collWait, tag)
		p.collMu.Unlock()
		p.ctx.Complete(seq, amnet.Msg{Payload: clone(payload)})
		return
	}
	p.collGot[tag] = clone(payload)
	p.collMu.Unlock()
}

// collAwait blocks until the payload for tag arrives. The registration
// (check collGot, else record a waiter in collWait) happens atomically
// under collMu, which is released before blocking.
func (p *Proc) collAwait(tag uint64) []byte {
	p.collMu.Lock()
	if v, ok := p.collGot[tag]; ok {
		delete(p.collGot, tag)
		p.collMu.Unlock()
		return v
	}
	seq := p.ctx.NewWaiter()
	p.collWait[tag] = seq
	p.collMu.Unlock()
	m := p.ctx.Wait(seq)
	return m.Payload
}

// Broadcast distributes data from the root processor to all processors and
// returns it. It is collective: every processor must call it in the same
// program order. The root's data argument is the value broadcast; other
// processors may pass nil. The payload is encoded once and shared across
// the fan-out sends (amnet.MultiSender); on the tree topology each level
// forwards to its own subtrees, so no node sends more than log P copies.
func (p *Proc) Broadcast(root int, data []byte) []byte {
	// collSeq is application-thread-private; no lock needed for the tag.
	p.collSeq++
	tag := p.collSeq
	p.coll.CountBcast()
	if int(p.id) != root {
		return p.collAwait(tag)
	}
	if p.cl.collTree {
		p.bcastFan(root, tag, data)
		return data
	}
	dsts := make([]amnet.NodeID, 0, p.cl.Procs()-1)
	for n := 0; n < p.cl.Procs(); n++ {
		if n != root {
			dsts = append(dsts, amnet.NodeID(n))
		}
	}
	p.sendFan(dsts, amnet.Msg{Handler: hColl, A: tag, C: collOpBcast, Payload: data})
	return data
}

// bcastFan forwards a broadcast payload to this node's children in the
// binomial tree rooted at the broadcast's root. The tree is relabeled
// by virtual rank (id - root) mod P so any root gets the same O(log P)
// fan-out; D carries the root so forwarders can compute their place.
func (p *Proc) bcastFan(root int, tag uint64, data []byte) {
	n := p.cl.Procs()
	vr := (int(p.id) - root + n) % n
	kids := treeKidsOf(vr, n)
	if len(kids) == 0 {
		return
	}
	dsts := make([]amnet.NodeID, len(kids))
	for i, k := range kids {
		dsts[i] = amnet.NodeID((k + root) % n)
	}
	p.sendFan(dsts, amnet.Msg{Handler: hColl, A: tag, C: collOpBcast, D: uint64(root), Payload: data})
}

// BroadcastID broadcasts a region id from root.
func (p *Proc) BroadcastID(root int, id RegionID) RegionID {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(id))
	out := p.Broadcast(root, buf[:])
	return RegionID(binary.LittleEndian.Uint64(out))
}

// BroadcastIDs broadcasts a slice of region ids from root. Non-root
// processors may pass nil; all processors must agree on the length only at
// the root.
func (p *Proc) BroadcastIDs(root int, ids []RegionID) []RegionID {
	buf := make([]byte, 8*len(ids))
	for i, id := range ids {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(id))
	}
	out := p.Broadcast(root, buf)
	res := make([]RegionID, len(out)/8)
	for i := range res {
		res[i] = RegionID(binary.LittleEndian.Uint64(out[i*8:]))
	}
	return res
}

// ReduceOp selects the combining operator for AllReduce collectives.
type ReduceOp int

// The supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMin
	OpMax
)

// AllReduceInt64 combines v across all processors with op and returns the
// result on every processor. Collective.
func (p *Proc) AllReduceInt64(op ReduceOp, v int64) int64 {
	code := map[ReduceOp]uint64{OpSum: collOpSumI, OpMin: collOpMinI, OpMax: collOpMaxI}[op]
	out := p.allReduce(code, uint64(v))
	return int64(out)
}

// AllReduceInt64s combines each element of v across all processors with
// op — element-wise, in a single collective round — and returns the
// combined vector on every processor. All processors must pass the same
// length. One round costs the same as one scalar AllReduceInt64, which
// is the point: callers combining a feature vector (the adaptive
// controller reduces seven counters per epoch) pay one round trip, not
// seven. Collective.
func (p *Proc) AllReduceInt64s(op ReduceOp, v []int64) []int64 {
	code := map[ReduceOp]uint64{OpSum: collOpSumI, OpMin: collOpMinI, OpMax: collOpMaxI}[op]
	buf := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(x))
	}
	out := p.reduceRound(code, buf)
	res := make([]int64, len(out)/8)
	for i := range res {
		res[i] = int64(binary.LittleEndian.Uint64(out[i*8:]))
	}
	return res
}

// reduceRound runs one all-reduce round over a word-vector payload:
// contribute the local value, block until the combined result arrives.
// On the star the contribution goes to processor 0, which fans the
// result to everyone; on the tree it folds into the local accumulator
// and climbs (treeContribute sends the subtree partial up when the last
// child reports, and the root starts the result wave down).
func (p *Proc) reduceRound(code uint64, buf []byte) []byte {
	p.collSeq++
	return p.reduceRoundTag(p.collSeq, code, buf)
}

// reduceRoundTag is reduceRound with a caller-chosen tag. Program-order
// collectives tag with collSeq; the post-revive resynchronization round
// cannot (the cursors it is aligning disagree across processors) and
// uses a reserved out-of-band tag instead (see resyncAfterRevive).
func (p *Proc) reduceRoundTag(tag, code uint64, buf []byte) []byte {
	p.coll.CountReduce()
	if p.cl.collTree {
		p.treeContribute(tag, code, p.id, buf)
	} else {
		p.coll.CountHops(1, len(buf))
		p.ep.Send(amnet.Msg{Dst: 0, Handler: hColl, A: tag, C: code, Payload: p.cloneForSend(buf)})
	}
	return p.collAwait(tag)
}

// AllReduceFloat64 combines v across all processors with op and returns
// the result on every processor. Collective.
func (p *Proc) AllReduceFloat64(op ReduceOp, v float64) float64 {
	code := map[ReduceOp]uint64{OpSum: collOpSumF, OpMin: collOpMinF, OpMax: collOpMaxF}[op]
	out := p.allReduce(code, math.Float64bits(v))
	return math.Float64frombits(out)
}

func (p *Proc) allReduce(code uint64, word uint64) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], word)
	out := p.reduceRound(code, buf[:])
	return binary.LittleEndian.Uint64(out)
}

// reduce combines the per-rank contribution payloads with the operator
// encoded in code, walking them in canonical binomial-tree order: rank
// v's subtree combines as (own value, then each child subtree in
// increasing child order). That is exactly the order the tree topology
// folds partials in at every level, so the star (which calls this at
// the root with all P contributions) and the tree produce bit-identical
// results even for the non-associative float sum. Payloads are vectors
// of 64-bit words — the scalar collectives send one-word vectors — all
// the same length. Contributions are consumed: the result aliases
// vals[0].
func reduce(code uint64, vals [][]byte) []byte {
	return reduceSubtree(code, vals, 0)
}

// reduceSubtree combines the contributions of the subtree rooted at
// rank v into vals[v] and returns it.
func reduceSubtree(code uint64, vals [][]byte, v int) []byte {
	acc := vals[v]
	for _, k := range treeKidsOf(v, len(vals)) {
		combineInto(code, acc, reduceSubtree(code, vals, k))
	}
	return acc
}

// combineInto folds src into dst element-wise with the operator in code.
func combineInto(code uint64, dst, src []byte) {
	for e := 0; e+8 <= len(dst); e += 8 {
		a := binary.LittleEndian.Uint64(dst[e:])
		b := binary.LittleEndian.Uint64(src[e:])
		var acc uint64
		switch code {
		case collOpSumI:
			acc = uint64(int64(a) + int64(b))
		case collOpMinI:
			acc = uint64(min(int64(a), int64(b)))
		case collOpMaxI:
			acc = uint64(max(int64(a), int64(b)))
		case collOpSumF:
			acc = math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
		case collOpMinF:
			acc = math.Float64bits(math.Min(math.Float64frombits(a), math.Float64frombits(b)))
		case collOpMaxF:
			acc = math.Float64bits(math.Max(math.Float64frombits(a), math.Float64frombits(b)))
		default:
			panic(fmt.Sprintf("core: bad reduction code %d", code))
		}
		binary.LittleEndian.PutUint64(dst[e:], acc)
	}
}
