package core

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/memory"
)

// RegionID re-exports memory.RegionID for convenience.
type RegionID = memory.RegionID

// RegionData re-exports memory.Data: a byte view with typed accessors.
type RegionData = memory.Data

// Region is one processor's view of a shared region. Mutable fields are
// protected by the owning space's engine lock (Space.eng), except the
// hot word, which also admits the bracket fast path's lock-free CAS
// transitions (see hot word layout below). The State, PState and Flags
// fields belong to the space's protocol; the runtime zeroes them when the
// protocol changes.
type Region struct {
	ID   RegionID
	Home amnet.NodeID
	Size int
	Data memory.Data

	// Space is the space the region was allocated from.
	Space *Space

	// MapCount is the number of outstanding maps; maintained by the
	// runtime. Cached copies survive unmapping (CRL-style unmapped-region
	// caching), so MapCount==0 does not imply the copy is invalid.
	MapCount int

	// hot packs the region's runtime-visible hot state into one atomic
	// word so a bracket hit is a single CAS (see the rw* layout
	// constants): the open-section counts, the fast-path eligibility
	// bits the space's protocol publishes, and a mirror of the
	// protocol's State for observability. Counts are mutated only by
	// the application thread (fast CAS or slow-path add under the
	// engine lock); the eligibility bits are cleared and republished by
	// whichever thread holds the engine lock.
	hot atomic.Uint64

	// State is protocol-defined (for the SC protocol: Invalid, Shared,
	// Exclusive).
	State int32

	// Flags is protocol-defined transient state (deferred invalidations
	// and the like).
	Flags uint32

	// PState is arbitrary per-region protocol data.
	PState any

	// Dir is the coherence directory; non-nil exactly at the home.
	Dir *Directory
}

// The hot word layout. One 64-bit word carries everything the bracket
// fast path and the protocol's section checks need, so a single
// CompareAndSwap is a linearization point for both:
//
//	bits  0–15  open read sections (Readers)
//	bits 16–31  open write sections (Writers)
//	bit  32     fast-path-eligible for read brackets (FastRead)
//	bit  33     fast-path-eligible for write brackets (FastWrite)
//	bits 40–47  mirror of the protocol State's low byte (observability
//	            only; the authoritative State field is engine-locked)
//
// ABA on the word is benign: the entire decision state of a fast
// bracket (eligibility bit plus count) lives in the word itself, so any
// successful CAS observed a word for which the transition is valid,
// regardless of intervening history.
const (
	rwReaderShift = 0
	rwWriterShift = 16
	rwCountMask   = uint64(0xffff)
	rwFastShift   = 32
	rwFastRead    = uint64(FastRead) << rwFastShift
	rwFastWrite   = uint64(FastWrite) << rwFastShift
	rwFastMask    = rwFastRead | rwFastWrite
	rwStateShift  = 40
	rwStateMask   = uint64(0xff) << rwStateShift
	rwInUseMask   = rwCountMask<<rwReaderShift | rwCountMask<<rwWriterShift
)

// FastBits is the set of bracket kinds a protocol declares hit-eligible
// for a region in its current state. Publishing FastRead (FastWrite) is
// the protocol's promise that, until the bit is withdrawn, its
// StartRead/EndRead (StartWrite/EndWrite) routines are no-ops for the
// region and r.Data is valid for reading (writing) — so the runtime may
// complete the bracket with a lock-free count transition and never
// enter the protocol.
type FastBits uint8

// The fast-path eligibility bits.
const (
	FastRead FastBits = 1 << iota
	FastWrite
)

// IsHome reports whether this processor is the region's home.
func (r *Region) IsHome() bool { return r.Dir != nil }

// Readers returns the number of open read sections.
func (r *Region) Readers() int { return int(r.hot.Load() >> rwReaderShift & rwCountMask) }

// Writers returns the number of open write sections.
func (r *Region) Writers() int { return int(r.hot.Load() >> rwWriterShift & rwCountMask) }

// InUse reports whether the region has an open read or write section.
func (r *Region) InUse() bool { return r.hot.Load()&rwInUseMask != 0 }

// tryFastStart attempts the lock-free bracket-open transition for the
// section kind counted at shift, gated on the eligibility bit. A single
// CAS attempt: any interference (bit withdrawn, concurrent engine
// update, count saturation) falls back to the locked slow path.
func (r *Region) tryFastStart(bit uint64, shift uint) bool {
	w := r.hot.Load()
	if w&bit == 0 || w>>shift&rwCountMask == rwCountMask {
		return false
	}
	return r.hot.CompareAndSwap(w, w+1<<shift)
}

// tryFastEnd attempts the lock-free bracket-close transition. The count
// guard routes unbalanced closes to the slow path, which panics with
// the diagnostic.
func (r *Region) tryFastEnd(bit uint64, shift uint) bool {
	w := r.hot.Load()
	if w&bit == 0 || w>>shift&rwCountMask == 0 {
		return false
	}
	return r.hot.CompareAndSwap(w, w-1<<shift)
}

// fastEligible reports whether the eligibility bit is currently
// published — the entire fast path for the Bare bracket variants, which
// keep no section counts.
func (r *Region) fastEligible(bit uint64) bool { return r.hot.Load()&bit != 0 }

// adjSections adjusts an open-section count from the locked slow path.
// Only the application thread mutates counts (the SPMD model: one
// application thread per processor), so a blind atomic add cannot race
// with another count mutation; concurrent eligibility-bit CASes from
// the engine side compose with it because both are atomic RMWs. Callers
// guard against underflow (count already checked > 0) so the
// subtraction cannot borrow into adjacent fields; overflow of a 16-bit
// count would need 65535 simultaneously open sections on one thread.
func (r *Region) adjSections(delta int64, shift uint) {
	r.hot.Add(uint64(delta) << shift)
}

// disableFast atomically withdraws both eligibility bits. After it
// returns, no fast bracket can commit until a republish, and every fast
// transition that committed before it is visible in the counts — the
// ordering the engine relies on when it checks InUse/Readers/Writers
// before acting on a region (a concurrent fast close either lands
// before the withdrawal and is visible, or its CAS fails and the close
// retries through the locked slow path).
func (r *Region) disableFast() {
	for {
		w := r.hot.Load()
		if w&rwFastMask == 0 {
			return
		}
		if r.hot.CompareAndSwap(w, w&^rwFastMask) {
			return
		}
	}
}

// publishFast installs the eligibility bits and refreshes the State
// mirror. Caller holds the region's space engine lock (which serializes
// publishers); the loop absorbs concurrent count CASes from the
// application thread's fast path.
func (r *Region) publishFast(bits FastBits) {
	state := uint64(uint8(r.State)) << rwStateShift
	for {
		w := r.hot.Load()
		nw := w&^(rwFastMask|rwStateMask) | uint64(bits)<<rwFastShift | state
		if w == nw || r.hot.CompareAndSwap(w, nw) {
			return
		}
	}
}

// Directory is the per-region coherence directory kept at the home. The
// generic fields (lock queue) are managed by the runtime; Sharers, Owner,
// Busy, Waiting, PendingAcks and PData belong to the protocol.
type Directory struct {
	// Sharers is the set of processors with (potentially) valid cached
	// copies, excluding the home.
	Sharers Bitset

	// Owner is the processor holding the region exclusively, or -1. When
	// Owner >= 0 the home copy is stale.
	Owner amnet.NodeID

	// Busy marks a multi-message transaction in progress; new requests
	// queue on Waiting.
	Busy bool

	// Waiting holds queued coherence requests, served FIFO.
	Waiting []PendingReq

	// Cur is the request the current transaction serves (valid while
	// Busy).
	Cur PendingReq

	// PendingAcks counts outstanding invalidation acknowledgements for
	// the current transaction.
	PendingAcks int

	// PData is arbitrary per-region protocol directory data.
	PData any

	// Lock state, managed by the runtime's default region lock. Under
	// lockMu, a leaf lock: with sharded dispatch, lock and unlock
	// requests from different senders are handled concurrently, and
	// nothing else is acquired while it is held.
	lockMu     sync.Mutex
	LockHolder amnet.NodeID // -1 when free
	LockQueue  []lockWaiter
}

// NewDirectory returns a directory in the base state.
func NewDirectory() *Directory {
	return &Directory{Owner: -1, LockHolder: -1}
}

// ResetCoherence returns the protocol-owned directory fields to the base
// state, preserving lock state.
func (d *Directory) ResetCoherence() {
	d.Sharers = 0
	d.Owner = -1
	d.Busy = false
	d.Waiting = nil
	d.PendingAcks = 0
	d.PData = nil
}

// PendingReq is a queued coherence request at the home: either a remote
// request (Src, Seq identify the requester's waiter) or a home-local
// request (Src == home).
type PendingReq struct {
	Kind int
	Src  amnet.NodeID
	Seq  uint64
}

type lockWaiter struct {
	src amnet.NodeID
	seq uint64
}

// Bitset is a set of processor ids, supporting up to 64 processors (the
// paper's evaluation used 32).
type Bitset uint64

// MaxProcs is the largest supported cluster size.
const MaxProcs = 64

// Add inserts node n.
func (b *Bitset) Add(n amnet.NodeID) { *b |= 1 << uint(n) }

// Remove deletes node n.
func (b *Bitset) Remove(n amnet.NodeID) { *b &^= 1 << uint(n) }

// Has reports whether node n is present.
func (b Bitset) Has(n amnet.NodeID) bool { return b&(1<<uint(n)) != 0 }

// Count returns the number of members.
func (b Bitset) Count() int { return bits.OnesCount64(uint64(b)) }

// Empty reports whether the set has no members.
func (b Bitset) Empty() bool { return b == 0 }

// ForEach calls fn for each member in increasing order.
func (b Bitset) ForEach(fn func(amnet.NodeID)) {
	for v := uint64(b); v != 0; {
		n := bits.TrailingZeros64(v)
		fn(amnet.NodeID(n))
		v &^= 1 << uint(n)
	}
}
