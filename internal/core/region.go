package core

import (
	"math/bits"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/memory"
)

// RegionID re-exports memory.RegionID for convenience.
type RegionID = memory.RegionID

// RegionData re-exports memory.Data: a byte view with typed accessors.
type RegionData = memory.Data

// Region is one processor's view of a shared region. Fields are protected
// by the owning processor's runtime mutex. The State, PState and Flags
// fields belong to the space's protocol; the runtime zeroes them when the
// protocol changes.
type Region struct {
	ID   RegionID
	Home amnet.NodeID
	Size int
	Data memory.Data

	// Space is the space the region was allocated from.
	Space *Space

	// MapCount is the number of outstanding maps; maintained by the
	// runtime. Cached copies survive unmapping (CRL-style unmapped-region
	// caching), so MapCount==0 does not imply the copy is invalid.
	MapCount int

	// Readers and Writers count open read and write sections.
	Readers, Writers int

	// State is protocol-defined (for the SC protocol: Invalid, Shared,
	// Exclusive).
	State int32

	// Flags is protocol-defined transient state (deferred invalidations
	// and the like).
	Flags uint32

	// PState is arbitrary per-region protocol data.
	PState any

	// Dir is the coherence directory; non-nil exactly at the home.
	Dir *Directory
}

// IsHome reports whether this processor is the region's home.
func (r *Region) IsHome() bool { return r.Dir != nil }

// InUse reports whether the region has an open read or write section.
func (r *Region) InUse() bool { return r.Readers > 0 || r.Writers > 0 }

// Directory is the per-region coherence directory kept at the home. The
// generic fields (lock queue) are managed by the runtime; Sharers, Owner,
// Busy, Waiting, PendingAcks and PData belong to the protocol.
type Directory struct {
	// Sharers is the set of processors with (potentially) valid cached
	// copies, excluding the home.
	Sharers Bitset

	// Owner is the processor holding the region exclusively, or -1. When
	// Owner >= 0 the home copy is stale.
	Owner amnet.NodeID

	// Busy marks a multi-message transaction in progress; new requests
	// queue on Waiting.
	Busy bool

	// Waiting holds queued coherence requests, served FIFO.
	Waiting []PendingReq

	// Cur is the request the current transaction serves (valid while
	// Busy).
	Cur PendingReq

	// PendingAcks counts outstanding invalidation acknowledgements for
	// the current transaction.
	PendingAcks int

	// PData is arbitrary per-region protocol directory data.
	PData any

	// Lock state, managed by the runtime's default region lock.
	LockHolder amnet.NodeID // -1 when free
	LockQueue  []lockWaiter
}

// NewDirectory returns a directory in the base state.
func NewDirectory() *Directory {
	return &Directory{Owner: -1, LockHolder: -1}
}

// ResetCoherence returns the protocol-owned directory fields to the base
// state, preserving lock state.
func (d *Directory) ResetCoherence() {
	d.Sharers = 0
	d.Owner = -1
	d.Busy = false
	d.Waiting = nil
	d.PendingAcks = 0
	d.PData = nil
}

// PendingReq is a queued coherence request at the home: either a remote
// request (Src, Seq identify the requester's waiter) or a home-local
// request (Src == home).
type PendingReq struct {
	Kind int
	Src  amnet.NodeID
	Seq  uint64
}

type lockWaiter struct {
	src amnet.NodeID
	seq uint64
}

// Bitset is a set of processor ids, supporting up to 64 processors (the
// paper's evaluation used 32).
type Bitset uint64

// MaxProcs is the largest supported cluster size.
const MaxProcs = 64

// Add inserts node n.
func (b *Bitset) Add(n amnet.NodeID) { *b |= 1 << uint(n) }

// Remove deletes node n.
func (b *Bitset) Remove(n amnet.NodeID) { *b &^= 1 << uint(n) }

// Has reports whether node n is present.
func (b Bitset) Has(n amnet.NodeID) bool { return b&(1<<uint(n)) != 0 }

// Count returns the number of members.
func (b Bitset) Count() int { return bits.OnesCount64(uint64(b)) }

// Empty reports whether the set has no members.
func (b Bitset) Empty() bool { return b == 0 }

// ForEach calls fn for each member in increasing order.
func (b Bitset) ForEach(fn func(amnet.NodeID)) {
	for v := uint64(b); v != 0; {
		n := bits.TrailingZeros64(v)
		fn(amnet.NodeID(n))
		v &^= 1 << uint(n)
	}
}
