package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/acedsm/ace/internal/amnet"
)

func TestPointSetOperations(t *testing.T) {
	var s PointSet
	s = s.With(PointStartRead).With(PointBarrier)
	if !s.Has(PointStartRead) || !s.Has(PointBarrier) || s.Has(PointEndRead) {
		t.Fatalf("set ops broken: %v", s)
	}
	s = s.Without(PointStartRead)
	if s.Has(PointStartRead) {
		t.Fatal("Without failed")
	}
	if got := s.String(); got != "barrier" {
		t.Errorf("String = %q", got)
	}
	if AllPoints.String() == "" || !AllPoints.Has(PointUnlock) {
		t.Error("AllPoints incomplete")
	}
}

func TestPointParseRoundTrip(t *testing.T) {
	for p := Point(0); p < NumPoints; p++ {
		got, ok := ParsePoint(p.String())
		if !ok || got != p {
			t.Errorf("ParsePoint(%q) = %v, %v", p.String(), got, ok)
		}
	}
	if _, ok := ParsePoint("nonsense"); ok {
		t.Error("ParsePoint accepted nonsense")
	}
	if Point(200).String() != "invalid_point" {
		t.Error("out-of-range Point String")
	}
}

func TestConfigRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(Info{
		Name:        "Update",
		New:         func() Protocol { return &SCProtocol{} },
		Optimizable: true,
		Null:        PointSet(0).With(PointStartRead).With(PointEndRead),
	})
	var sb strings.Builder
	if err := reg.WriteConfig(&sb); err != nil {
		t.Fatal(err)
	}
	decls, err := ParseConfig(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseConfig: %v\n%s", err, sb.String())
	}
	want := reg.Decls()
	if len(decls) != len(want) {
		t.Fatalf("got %d decls, want %d", len(decls), len(want))
	}
	for i := range want {
		if decls[i] != want[i] {
			t.Errorf("decl %d: got %+v, want %+v", i, decls[i], want[i])
		}
	}
}

func TestConfigRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reg := &Registry{m: map[string]Info{}}
		n := rng.Intn(5) + 1
		for i := 0; i < n; i++ {
			reg.MustRegister(Info{
				Name:        strings.Repeat("p", i+1),
				New:         func() Protocol { return &SCProtocol{} },
				Optimizable: rng.Intn(2) == 0,
				Null:        PointSet(rng.Intn(int(AllPoints) + 1)),
			})
		}
		var sb strings.Builder
		if reg.WriteConfig(&sb) != nil {
			return false
		}
		decls, err := ParseConfig(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		want := reg.Decls()
		if len(decls) != len(want) {
			return false
		}
		for i := range want {
			if decls[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigParseErrors(t *testing.T) {
	cases := []string{
		"protocol {",                        // empty name
		"}",                                 // stray close
		"stray statement",                   // outside block
		"protocol a {\n  bad_point null\n}", // unknown point
		"protocol a {\n  map maybe\n}",      // bad handler kind
		"protocol a {\n  optimizable perhaps\n}",
		"protocol a {\n  map\n}",       // missing value
		"protocol a {\nprotocol b {\n", // nested
		"protocol a {",                 // unterminated
	}
	for _, src := range cases {
		if _, err := ParseConfig(strings.NewReader(src)); err == nil {
			t.Errorf("ParseConfig(%q) should fail", src)
		}
	}
}

func TestConfigCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
protocol X {
    map          null

    # another comment
    optimizable  yes
}
`
	decls, err := ParseConfig(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(decls) != 1 || decls[0].Name != "X" || !decls[0].Optimizable || !decls[0].Null.Has(PointMap) {
		t.Fatalf("decls = %+v", decls)
	}
}

func TestHandlerName(t *testing.T) {
	if got := HandlerName("Update", PointStartRead); got != "Update_StartRead" {
		t.Errorf("HandlerName = %q", got)
	}
	if got := HandlerName("sc", PointEndWrite); got != "sc_EndWrite" {
		t.Errorf("HandlerName = %q", got)
	}
}

func TestRegistryErrors(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(Info{Name: "", New: func() Protocol { return nil }}); err == nil {
		t.Error("empty name accepted")
	}
	if err := reg.Register(Info{Name: "x", New: nil}); err == nil {
		t.Error("nil factory accepted")
	}
	if err := reg.Register(Info{Name: "sc", New: func() Protocol { return nil }}); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := reg.New("unknown"); err == nil {
		t.Error("unknown protocol instantiated")
	}
	if p, err := reg.New("sc"); err != nil || p.Name() != "sc" {
		t.Errorf("New(sc) = %v, %v", p, err)
	}
	if names := reg.Names(); len(names) != 1 || names[0] != "sc" {
		t.Errorf("Names = %v", names)
	}
}

func TestRegistryMustRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRegistry().MustRegister(Info{Name: "sc", New: func() Protocol { return nil }})
}

func TestBitset(t *testing.T) {
	var b Bitset
	if !b.Empty() || b.Count() != 0 {
		t.Fatal("zero Bitset not empty")
	}
	b.Add(0)
	b.Add(5)
	b.Add(63)
	if b.Count() != 3 || !b.Has(5) || b.Has(4) {
		t.Fatalf("bitset = %b", b)
	}
	b.Remove(5)
	if b.Has(5) || b.Count() != 2 {
		t.Fatal("Remove failed")
	}
	var visited []amnet.NodeID
	b.ForEach(func(n amnet.NodeID) { visited = append(visited, n) })
	if len(visited) != 2 || visited[0] != 0 || visited[1] != 63 {
		t.Fatalf("ForEach = %v", visited)
	}
}

func TestBitsetProperty(t *testing.T) {
	f := func(members []uint8) bool {
		var b Bitset
		ref := map[amnet.NodeID]bool{}
		for _, m := range members {
			n := amnet.NodeID(m % 64)
			b.Add(n)
			ref[n] = true
		}
		if b.Count() != len(ref) {
			return false
		}
		ok := true
		b.ForEach(func(n amnet.NodeID) {
			if !ref[n] {
				ok = false
			}
			delete(ref, n)
		})
		return ok && len(ref) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryReset(t *testing.T) {
	d := NewDirectory()
	if d.Owner != -1 || d.LockHolder != -1 {
		t.Fatal("NewDirectory bad defaults")
	}
	d.Sharers.Add(2)
	d.Owner = 3
	d.Busy = true
	d.Waiting = append(d.Waiting, PendingReq{})
	d.PendingAcks = 2
	d.PData = "x"
	d.LockHolder = 1
	d.ResetCoherence()
	if !d.Sharers.Empty() || d.Owner != -1 || d.Busy || d.Waiting != nil || d.PendingAcks != 0 || d.PData != nil {
		t.Fatalf("ResetCoherence incomplete: %+v", d)
	}
	if d.LockHolder != 1 {
		t.Fatal("ResetCoherence must preserve lock state")
	}
}
