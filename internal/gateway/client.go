package gateway

import (
	"errors"
	"fmt"
	"time"
)

// Client is a scripted websocket client for tests, the smoke harness,
// and the gate benchmark: synchronous ops with event waiting, one
// connection per client, no goroutines of its own.
type Client struct {
	ws *wsConn
}

// DialClient connects a client to a gateway server at addr.
func DialClient(addr string) (*Client, error) {
	ws, err := wsDial(addr, "/ws")
	if err != nil {
		return nil, err
	}
	return &Client{ws: ws}, nil
}

// Close closes the connection.
func (c *Client) Close() { c.ws.close() }

// Send encodes and sends one client op.
func (c *Client) Send(f Frame) error {
	buf, err := EncodeFrame(f)
	if err != nil {
		return err
	}
	return c.ws.writeMessage(buf)
}

// SendRaw sends an arbitrary payload as one websocket binary message —
// the malformed-frame hammer for fuzz corpora replayed against a live
// gateway.
func (c *Client) SendRaw(payload []byte) error {
	return c.ws.writeMessage(payload)
}

// Recv returns the next decoded server event.
func (c *Client) Recv() (Frame, error) {
	payload, err := c.ws.readMessage()
	if err != nil {
		return Frame{}, err
	}
	return DecodeFrame(payload)
}

// SetDeadline bounds every subsequent read and write.
func (c *Client) SetDeadline(t time.Time) { c.ws.conn.SetDeadline(t) }

// WaitFor reads events until one of the wanted kind arrives for the
// room (empty room matches any), returning it. Other events are
// discarded — scripted clients know what they are waiting for.
func (c *Client) WaitFor(kind byte, room string) (Frame, error) {
	for {
		f, err := c.Recv()
		if err != nil {
			return Frame{}, err
		}
		if f.Kind == kind && (room == "" || f.Room == room) {
			return f, nil
		}
		if f.Kind == EvError && kind != EvError {
			return Frame{}, fmt.Errorf("gateway client: server error: %s", f.Msg)
		}
	}
}

// Join joins a room and waits for the join event, returning the room
// space's generation-tagged identity. The gateway follows every join
// with an initial EvState snapshot; Join consumes it so that a later
// Get never matches the stale initial state.
func (c *Client) Join(room string) (space int, gen uint64, err error) {
	if err := c.Send(Frame{Kind: OpJoin, Room: room}); err != nil {
		return 0, 0, err
	}
	f, err := c.WaitFor(EvJoined, room)
	if err != nil {
		return 0, 0, err
	}
	if _, err := c.WaitFor(EvState, room); err != nil {
		return 0, 0, err
	}
	return f.Space, f.Gen, nil
}

// Leave leaves a room and waits for the leave event.
func (c *Client) Leave(room string) error {
	if err := c.Send(Frame{Kind: OpLeave, Room: room}); err != nil {
		return err
	}
	_, err := c.WaitFor(EvLeft, room)
	return err
}

// Add applies a delta to a cell. Fire-and-forget: the apply is
// observed via deltas or a later Get.
func (c *Client) Add(room string, cell int, delta int64) error {
	return c.Send(Frame{Kind: OpAdd, Room: room, Cell: cell, Value: delta})
}

// Set writes a cell.
func (c *Client) Set(room string, cell int, value int64) error {
	return c.Send(Frame{Kind: OpSet, Room: room, Cell: cell, Value: value})
}

// Get fetches the room state.
func (c *Client) Get(room string) ([]int64, error) {
	if err := c.Send(Frame{Kind: OpGet, Room: room}); err != nil {
		return nil, err
	}
	f, err := c.WaitFor(EvState, room)
	if err != nil {
		return nil, err
	}
	return f.State, nil
}

// Checksum folds a room state into one value for parity checks.
func Checksum(state []int64) uint64 {
	var sum uint64
	for i, v := range state {
		sum = sum*1099511628211 + uint64(v) + uint64(i)
	}
	return sum
}

// ErrSlowClosed is returned by helpers when the server closed the
// connection (for example under the SlowClose policy).
var ErrSlowClosed = errors.New("gateway client: connection closed by server")
