package gateway

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/acedsm/ace/internal/core"
)

// startGateway spins up a gateway and a loopback server for it.
func startGateway(t *testing.T, cfg Config) (*Gateway, *Server) {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		g.Close()
		t.Fatalf("listen: %v", err)
	}
	srv := g.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		if err := g.Close(); err != nil {
			t.Errorf("gateway close: %v", err)
		}
	})
	return g, srv
}

func dial(t *testing.T, srv *Server) *Client {
	t.Helper()
	c, err := DialClient(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c.SetDeadline(time.Now().Add(30 * time.Second))
	return c
}

// waitFor polls cond for up to 5s — for effects that trail the wire
// protocol (room teardown runs after the leave event is sent).
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestWireRoundTrip(t *testing.T) {
	state := make([]int64, RoomCells)
	for i := range state {
		state[i] = int64(i * 31)
	}
	frames := []Frame{
		{Kind: OpJoin, Room: "lobby"},
		{Kind: OpLeave, Room: "lobby"},
		{Kind: OpSet, Room: "a", Cell: 7, Value: -12345},
		{Kind: OpAdd, Room: "b", Cell: 63, Value: 1 << 40},
		{Kind: OpGet, Room: "c"},
		{Kind: EvJoined, Room: "d", Space: 9, Gen: 4},
		{Kind: EvLeft, Room: "d"},
		{Kind: EvDelta, Room: "e", Cell: 0, Value: 1},
		{Kind: EvState, Room: "f", State: state},
		{Kind: EvError, Room: "g", Msg: "nope"},
	}
	for _, f := range frames {
		buf, err := EncodeFrame(f)
		if err != nil {
			t.Fatalf("encode %#x: %v", f.Kind, err)
		}
		got, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("decode %#x: %v", f.Kind, err)
		}
		if got.Kind != f.Kind || got.Room != f.Room || got.Cell != f.Cell ||
			got.Value != f.Value || got.Space != f.Space || got.Gen != f.Gen || got.Msg != f.Msg {
			t.Fatalf("roundtrip %#x: got %+v, want %+v", f.Kind, got, f)
		}
		for i := range f.State {
			if got.State[i] != f.State[i] {
				t.Fatalf("roundtrip state[%d]: %d != %d", i, got.State[i], f.State[i])
			}
		}
	}
}

func TestDecodeFrameMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{OpJoin},
		{OpJoin, 5, 'a'},                       // truncated room
		{0x00, 0},                              // unknown kind
		{0xFF, 0},                              // unknown kind
		{OpJoin, 0, 1, 2, 3},                   // trailing bytes
		{OpSet, 0, 9},                          // short body
		{OpSet, 0, 64, 0, 0, 0, 0, 0, 0, 0, 0}, // cell out of range
		{EvJoined, 0, 1, 2, 3},                 // short EvJoined
		append([]byte{EvState, 0}, make([]byte, 8)...), // short state
	}
	for i, buf := range cases {
		if _, err := DecodeFrame(buf); !errors.Is(err, ErrBadFrame) {
			t.Errorf("case %d (% x): err=%v, want ErrBadFrame", i, buf, err)
		}
	}
}

// TestJoinApplyLeave is the end-to-end happy path: join creates the
// room space, ops apply through brackets, the last leave destroys it
// and the table slot is recycled.
func TestJoinApplyLeave(t *testing.T) {
	g, srv := startGateway(t, Config{Procs: 2})
	c := dial(t, srv)
	defer c.Close()

	slots := g.SpaceSlots()
	if _, _, err := c.Join("alpha"); err != nil {
		t.Fatalf("join: %v", err)
	}
	if got := g.LiveRooms(); got != 1 {
		t.Fatalf("live rooms %d, want 1", got)
	}
	for i := int64(1); i <= 10; i++ {
		if err := c.Add("alpha", 3, i); err != nil {
			t.Fatalf("add: %v", err)
		}
	}
	if err := c.Set("alpha", 5, 42); err != nil {
		t.Fatalf("set: %v", err)
	}
	state, err := c.Get("alpha")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if state[3] != 55 || state[5] != 42 {
		t.Fatalf("state[3]=%d state[5]=%d, want 55 and 42", state[3], state[5])
	}
	if err := c.Leave("alpha"); err != nil {
		t.Fatalf("leave: %v", err)
	}
	// The room unpublishes before the collective FreeSpace completes and
	// bumps RoomsDestroyed, so wait on the counter too.
	waitFor(t, "room destroy", func() bool {
		return g.LiveRooms() == 0 && g.Stats().Snapshot().RoomsDestroyed == 1
	})
	if got := g.SpaceSlots(); got > slots+1 {
		t.Fatalf("space table grew %d -> %d after one room's lifetime", slots, got)
	}
	if s := g.Stats().Snapshot(); s.RoomsCreated != 1 {
		t.Fatalf("rooms created %d, want 1", s.RoomsCreated)
	}
}

// TestBroadcastDeltas: a second member of the room observes the
// writer's deltas.
func TestBroadcastDeltas(t *testing.T) {
	_, srv := startGateway(t, Config{Procs: 2})
	writer, watcher := dial(t, srv), dial(t, srv)
	defer writer.Close()
	defer watcher.Close()

	if _, _, err := writer.Join("r"); err != nil {
		t.Fatalf("writer join: %v", err)
	}
	if _, _, err := watcher.Join("r"); err != nil {
		t.Fatalf("watcher join: %v", err)
	}
	if err := writer.Add("r", 1, 5); err != nil {
		t.Fatalf("add: %v", err)
	}
	f, err := watcher.WaitFor(EvDelta, "r")
	if err != nil {
		t.Fatalf("watcher delta: %v", err)
	}
	if f.Cell != 1 || f.Value != 5 {
		t.Fatalf("delta cell %d value %d, want 1/5", f.Cell, f.Value)
	}
}

// TestRoomChurnBounded is the gateway-level churn test: rooms created
// and destroyed in waves leave the space table bounded by the wave
// width, and the generation of a recycled slot advances.
func TestRoomChurnBounded(t *testing.T) {
	g, srv := startGateway(t, Config{Procs: 3})
	c := dial(t, srv)
	defer c.Close()

	const waves, width = 6, 5
	base := g.SpaceSlots()
	gens := map[string]uint64{}
	for w := 0; w < waves; w++ {
		names := make([]string, width)
		for i := range names {
			names[i] = fmt.Sprintf("room-%d", i)
			if _, gen, err := c.Join(names[i]); err != nil {
				t.Fatalf("wave %d join %s: %v", w, names[i], err)
			} else if w > 0 && gen <= gens[names[i]] {
				t.Fatalf("wave %d: %s generation %d did not advance past %d", w, names[i], gen, gens[names[i]])
			} else {
				gens[names[i]] = gen
			}
			if err := c.Add(names[i], 0, int64(w)); err != nil {
				t.Fatalf("add: %v", err)
			}
		}
		for _, name := range names {
			if err := c.Leave(name); err != nil {
				t.Fatalf("wave %d leave %s: %v", w, name, err)
			}
		}
		// Rooms unpublish before the collective FreeSpace completes and
		// bumps the counter, so wait on the counter, not just LiveRooms.
		wantDestroyed := uint64((w + 1) * width)
		waitFor(t, "wave teardown", func() bool {
			return g.LiveRooms() == 0 && g.Stats().Snapshot().RoomsDestroyed == wantDestroyed
		})
		if got := g.SpaceSlots(); got > base+width {
			t.Fatalf("wave %d: table at %d slots (base %d, width %d) — leak", w, got, base, width)
		}
	}
	s := g.Stats().Snapshot()
	if s.RoomsCreated != waves*width || s.RoomsDestroyed != waves*width {
		t.Fatalf("rooms created %d destroyed %d, want %d", s.RoomsCreated, s.RoomsDestroyed, waves*width)
	}
}

// TestStaleRefRejected: a destroyed room's generation-tagged ref must
// refuse to resolve even after the slot is recycled by a new room.
func TestStaleRefRejected(t *testing.T) {
	g, srv := startGateway(t, Config{Procs: 2})
	c := dial(t, srv)
	defer c.Close()

	space, gen, err := c.Join("old")
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	stale := core.SpaceRef{ID: space, Gen: gen}
	if err := c.Leave("old"); err != nil {
		t.Fatalf("leave: %v", err)
	}
	waitFor(t, "destroy", func() bool { return g.LiveRooms() == 0 })

	space2, gen2, err := c.Join("new")
	if err != nil {
		t.Fatalf("join new: %v", err)
	}
	if space2 != space {
		t.Fatalf("slot %d not recycled: new room got %d", space, space2)
	}
	if gen2 <= gen {
		t.Fatalf("generation did not advance: %d -> %d", gen, gen2)
	}
	p := g.cl.Local()[0]
	if _, err := p.SpaceByRef(stale); !errors.Is(err, core.ErrStaleSpace) {
		t.Fatalf("stale ref resolved: err=%v", err)
	}
}

// TestMalformedFramesNoPanic hammers the decode boundary over a live
// connection: every malformed payload answers with EvError (or is
// survived), the connection keeps working, and nothing panics.
func TestMalformedFramesNoPanic(t *testing.T) {
	g, srv := startGateway(t, Config{Procs: 2})
	c := dial(t, srv)
	defer c.Close()

	bad := [][]byte{
		{},
		{0x00},
		{0xFF, 0xFF},
		{OpJoin, 200},
		{OpSet, 0, 64, 1, 2, 3, 4, 5, 6, 7, 8},
		{EvDelta, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0}, // server kind from a client
		make([]byte, 300),
	}
	for i, payload := range bad {
		if err := c.SendRaw(payload); err != nil {
			t.Fatalf("send raw %d: %v", i, err)
		}
		if _, err := c.WaitFor(EvError, ""); err != nil {
			t.Fatalf("bad frame %d: no error event: %v", i, err)
		}
	}
	// The session survived all of it: a normal op still works.
	if _, _, err := c.Join("after"); err != nil {
		t.Fatalf("join after malformed frames: %v", err)
	}
	if s := g.Stats().Snapshot(); s.BadFrames < uint64(len(bad)) {
		t.Fatalf("BadFrames %d, want >= %d", s.BadFrames, len(bad))
	}
}

// TestSlowClientClose: with the SlowClose policy and a tiny send
// queue, a member that never reads is closed instead of stalling the
// room's broadcasts.
func TestSlowClientClose(t *testing.T) {
	g, srv := startGateway(t, Config{Procs: 2, SendQueue: 2, Policy: SlowClose})
	writer, slow := dial(t, srv), dial(t, srv)
	defer writer.Close()
	defer slow.Close()

	if _, _, err := writer.Join("s"); err != nil {
		t.Fatalf("writer join: %v", err)
	}
	if _, _, err := slow.Join("s"); err != nil {
		t.Fatalf("slow join: %v", err)
	}
	// The slow client stops reading; the writer floods broadcasts. The
	// writer doesn't read its own deltas either, so with a cap-2 queue
	// the server may legitimately close it too — stop flooding then.
	for i := 0; i < 200; i++ {
		if err := writer.Add("s", 0, 1); err != nil {
			break
		}
	}
	waitFor(t, "slow client close", func() bool {
		return g.Stats().SlowClients.Load() >= 1
	})
}

// TestSlowClientDropBudget: with SlowDrop, events are dropped and
// counted; past the budget the session is closed.
func TestSlowClientDropBudget(t *testing.T) {
	g, srv := startGateway(t, Config{Procs: 2, SendQueue: 2, Policy: SlowDrop, DropBudget: 8})
	writer, slow := dial(t, srv), dial(t, srv)
	defer writer.Close()
	defer slow.Close()

	if _, _, err := writer.Join("s"); err != nil {
		t.Fatalf("writer join: %v", err)
	}
	if _, _, err := slow.Join("s"); err != nil {
		t.Fatalf("slow join: %v", err)
	}
	// As in TestSlowClientClose: the non-reading writer may exhaust its
	// own drop budget and be closed — the flood has done its job then.
	for i := 0; i < 500; i++ {
		if err := writer.Add("s", 0, 1); err != nil {
			break
		}
	}
	waitFor(t, "drop budget exhaustion", func() bool {
		s := g.Stats().Snapshot()
		return s.SendQueueDrops > 0 && s.SlowClients >= 1
	})
}

// TestConcurrentSessionsChurn runs many sessions joining, writing and
// leaving overlapping rooms concurrently — the -race workout for the
// coordinator, the worker pump, and the session queues.
func TestConcurrentSessionsChurn(t *testing.T) {
	g, srv := startGateway(t, Config{Procs: 3})
	const sessions, rounds, rooms = 12, 4, 5
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := DialClient(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			c.SetDeadline(time.Now().Add(60 * time.Second))
			for r := 0; r < rounds; r++ {
				room := fmt.Sprintf("churn-%d", (id+r)%rooms)
				if _, _, err := c.Join(room); err != nil {
					errs <- fmt.Errorf("session %d join %s: %w", id, room, err)
					return
				}
				cell := id % RoomCells
				for k := 0; k < 10; k++ {
					if err := c.Add(room, cell, 1); err != nil {
						errs <- err
						return
					}
				}
				if _, err := c.Get(room); err != nil {
					errs <- fmt.Errorf("session %d get %s: %w", id, room, err)
					return
				}
				if err := c.Leave(room); err != nil {
					errs <- fmt.Errorf("session %d leave %s: %w", id, room, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	waitFor(t, "teardown", func() bool { return g.LiveRooms() == 0 })
	if slots := g.SpaceSlots(); slots > 1+rooms {
		t.Fatalf("space table at %d slots after churn (max %d rooms live)", slots, rooms)
	}
}
