package gateway

import (
	"net"
	"net/http"
	"sync/atomic"
)

// Server accepts websocket sessions for a Gateway over HTTP.
type Server struct {
	g  *Gateway
	ln net.Listener
	hs *http.Server
}

// Serve starts accepting websocket upgrades on ln at any path. It
// returns immediately; Close stops the listener.
func (g *Gateway) Serve(ln net.Listener) *Server {
	s := &Server{g: g, ln: ln}
	s.hs = &http.Server{Handler: http.HandlerFunc(s.handle)}
	go s.hs.Serve(ln)
	return s
}

// Addr returns the listener's address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and closes the listener. Live sessions die
// with their connections.
func (s *Server) Close() error { return s.hs.Close() }

func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	ws, err := upgrade(w, r)
	if err != nil {
		return // upgrade already answered the HTTP side
	}
	sess := &session{
		g:      s.g,
		ws:     ws,
		id:     s.g.nextSID.Add(1),
		out:    make(chan []byte, s.g.cfg.SendQueue),
		done:   make(chan struct{}),
		joined: make(map[string]struct{}),
	}
	s.g.stats.SessionsOpened.Add(1)
	go sess.writeLoop()
	sess.readLoop()
}

// session is one connected client. The reader goroutine decodes ops
// and routes them; the writer goroutine drains the bounded send queue.
// joined is the reader-side membership view, touched only by the
// coordinator (requests are processed single-threaded there).
type session struct {
	g    *Gateway
	ws   *wsConn
	id   uint64
	out  chan []byte
	done chan struct{}

	closed atomic.Bool
	drops  atomic.Int64 // consecutive SlowDrop drops

	joined map[string]struct{} // coordinator-owned
}

func (s *session) isClosed() bool { return s.closed.Load() }

// closeSession makes the writer exit and the connection die; the
// reader then unblocks with an error and files the disconnect.
func (s *session) closeSession() {
	if s.closed.CompareAndSwap(false, true) {
		close(s.done)
		s.ws.conn.Close()
	}
}

// send enqueues one encoded event frame, applying the slow-client
// policy when the bounded queue is full. Never blocks: a gateway
// worker must not stall behind one slow client.
func (s *session) send(frame []byte) {
	if s.closed.Load() {
		return
	}
	select {
	case s.out <- frame:
		s.drops.Store(0)
		s.g.stats.FramesOut.Add(1)
		s.g.stats.ObserveSendQueue(len(s.out))
	default:
		switch s.g.cfg.Policy {
		case SlowClose:
			s.g.stats.SlowClients.Add(1)
			s.closeSession()
		default: // SlowDrop
			s.g.stats.SendQueueDrops.Add(1)
			if int(s.drops.Add(1)) > s.g.cfg.DropBudget {
				s.g.stats.SlowClients.Add(1)
				s.closeSession()
			}
		}
	}
}

// sendFrame encodes and enqueues one event.
func (s *session) sendFrame(f Frame) {
	buf, err := EncodeFrame(f)
	if err != nil {
		return
	}
	s.send(buf)
}

// writeLoop drains the send queue onto the websocket.
func (s *session) writeLoop() {
	for {
		select {
		case <-s.done:
			s.ws.close()
			return
		case frame := <-s.out:
			if err := s.ws.writeMessage(frame); err != nil {
				s.closeSession()
				return
			}
		}
	}
}

// readLoop decodes client frames and routes them: joins and leaves to
// the coordinator, data ops straight onto the room's op queue.
// Malformed frames are counted and answered with EvError — never a
// panic, and never a crashed session for a recoverable decode error.
// request files a request with the coordinator, giving up if the
// gateway is shutting down (the coordinator no longer drains reqCh).
func (s *session) request(req request) {
	select {
	case s.g.reqCh <- req:
	case <-s.g.coDone:
	}
}

func (s *session) readLoop() {
	defer func() {
		s.closeSession()
		s.request(request{kind: reqDisconnect, sess: s})
	}()
	for {
		payload, err := s.ws.readMessage()
		if err != nil {
			return // io error, close, or a malformed websocket frame
		}
		s.g.stats.FramesIn.Add(1)
		f, err := DecodeFrame(payload)
		if err != nil {
			s.g.stats.BadFrames.Add(1)
			s.sendFrame(Frame{Kind: EvError, Room: f.Room, Msg: err.Error()})
			continue
		}
		switch f.Kind {
		case OpJoin:
			s.request(request{kind: reqJoin, room: f.Room, sess: s})
		case OpLeave:
			s.request(request{kind: reqLeave, room: f.Room, sess: s})
		case OpSet, OpAdd, OpGet:
			s.g.mu.Lock()
			rm := s.g.rooms[f.Room]
			s.g.mu.Unlock()
			if rm == nil {
				s.g.stats.OpsDropped.Add(1)
				s.sendFrame(Frame{Kind: EvError, Room: f.Room, Msg: "no such room"})
				continue
			}
			s.g.enqueueOp(rm, roomOp{f: f, sess: s})
		default:
			// Server-to-client kinds arriving from a client.
			s.g.stats.BadFrames.Add(1)
			s.sendFrame(Frame{Kind: EvError, Room: f.Room, Msg: "not a client op"})
		}
	}
}
