// Package gateway is the session front door: a websocket gateway that
// multiplexes large numbers of external client sessions onto spaces.
// Each room maps to one space (created collectively on first join,
// destroyed collectively on last leave — exercising the space
// lifecycle DESIGN.md §14 describes), client ops are applied through
// brackets by the room's home processor, and when the adaptive
// controller is enabled each room's protocol follows its live traffic.
//
// Concurrency model. The gateway runs an in-process Ace cluster whose
// application threads execute a command loop instead of an SPMD
// program. A single coordinator goroutine is the only producer of
// commands: collective commands (create, destroy, barrier) are pushed
// to every processor's channel in the same order — which is exactly
// the collective call discipline NewSpace/FreeSpace/Barrier demand —
// while drain commands go only to the room's home processor. Client
// sessions never touch the runtime directly: readers enqueue decoded
// ops on the room's bounded op queue, the home processor's loop
// applies them through brackets, and events flow back through each
// session's bounded send queue under a slow-client policy.
package gateway

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/trace"
	"github.com/acedsm/ace/proto"
)

// SlowPolicy selects what happens to a session whose bounded send
// queue is full when an event must be delivered.
type SlowPolicy int

const (
	// SlowDrop drops the event and counts it; a session exceeding its
	// drop budget in a row is closed as a slow client.
	SlowDrop SlowPolicy = iota
	// SlowClose closes the session at the first full-queue event.
	SlowClose
)

// Config configures a Gateway.
type Config struct {
	// Procs is the cluster size backing the gateway. Default 4.
	Procs int
	// Protocol is the protocol new room spaces start on. Default "sc".
	Protocol string
	// Adapt, if non-nil, enables the adaptive controller: each room's
	// protocol then follows its live traffic, evaluated at the
	// gateway's periodic room barriers.
	Adapt *core.AdaptConfig
	// OpQueue bounds each room's pending-op queue. Default 256.
	OpQueue int
	// SendQueue bounds each session's event send queue. Default 64.
	SendQueue int
	// Policy is the slow-client policy. Default SlowDrop.
	Policy SlowPolicy
	// DropBudget is how many consecutive drops a SlowDrop session
	// survives before it is closed. Default 64.
	DropBudget int
	// Quantum is the most ops one drain applies before the room yields
	// to other rooms on the same home processor. Default 32.
	Quantum int
	// BarrierEvery is how many drains a room goes between collective
	// space barriers (the adaptive controller's evaluation points).
	// Default 16.
	BarrierEvery int
}

func (c Config) withDefaults() Config {
	if c.Procs <= 0 {
		c.Procs = 4
	}
	if c.Protocol == "" {
		c.Protocol = "sc"
	}
	if c.OpQueue <= 0 {
		c.OpQueue = 256
	}
	if c.SendQueue <= 0 {
		c.SendQueue = 64
	}
	if c.DropBudget <= 0 {
		c.DropBudget = 64
	}
	if c.Quantum <= 0 {
		c.Quantum = 32
	}
	if c.BarrierEvery <= 0 {
		c.BarrierEvery = 16
	}
	return c
}

// ctl command kinds.
const (
	ctlCreate  = iota // collective: NewSpace + room region setup
	ctlDestroy        // collective: FreeSpace
	ctlBarrier        // collective: space barrier (adapt evaluation)
	ctlDrain          // home only: apply queued ops through brackets
	ctlStop           // collective: exit the command loop
)

type ctlCmd struct {
	kind int
	room *room
	done *sync.WaitGroup // collective commands: one Done per processor
}

// roomOp is one client op queued for the room's home processor.
type roomOp struct {
	f    Frame
	sess *session
}

// room is one live room: a space, its state region, its members, and
// its bounded op queue.
type room struct {
	name string
	home int // home processor: applies ops, owns the state region

	// sps holds each processor's handle on the room's space, written by
	// that processor during ctlCreate (disjoint indices) and read only
	// after the create completes.
	sps []*core.Space
	ref core.SpaceRef // generation-tagged id, identical on every proc
	rid core.RegionID // room state region, homed at home
	reg *core.Region  // home processor's mapped view (home only)

	mu      sync.Mutex
	members map[*session]struct{}
	ops     []roomOp
	dead    bool

	// queued marks the room as present in the gateway's ready queue, so
	// it occupies at most one slot there (the fairness scheduler's
	// round-robin invariant).
	queued atomic.Bool

	drains int // drains since the last barrier tick (home proc only)
}

// request kinds from sessions to the coordinator.
const (
	reqJoin = iota
	reqLeave
	reqDisconnect
)

type request struct {
	kind int
	room string
	sess *session
}

// Gateway multiplexes websocket sessions onto room spaces.
type Gateway struct {
	cfg   Config
	cl    *core.Cluster
	stats trace.GateStats

	reqCh   chan request
	readyCh chan *room // rooms with queued ops; ≤1 entry per room
	ctl     []chan ctlCmd

	mu     sync.Mutex
	rooms  map[string]*room
	closed bool

	runDone chan error // cluster Run result
	coDone  chan struct{}
	nextSID atomic.Uint64
}

// New starts a gateway: the backing cluster's processors enter their
// command loops and the coordinator starts. Close shuts it down.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	opts := core.Options{
		Procs:    cfg.Procs,
		Registry: proto.NewRegistry(),
		Adapt:    cfg.Adapt,
	}
	cl, err := core.NewCluster(opts)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		cfg:     cfg,
		cl:      cl,
		reqCh:   make(chan request, 1024),
		readyCh: make(chan *room, 1<<16),
		ctl:     make([]chan ctlCmd, cfg.Procs),
		rooms:   make(map[string]*room),
		runDone: make(chan error, 1),
		coDone:  make(chan struct{}),
	}
	for i := range g.ctl {
		g.ctl[i] = make(chan ctlCmd, 256)
	}
	go func() {
		g.runDone <- cl.Run(g.procLoop)
	}()
	go g.coordinator()
	return g, nil
}

// Stats returns the gateway's telemetry.
func (g *Gateway) Stats() *trace.GateStats { return &g.stats }

// SpaceSlots returns the backing space table's length on processor 0 —
// the bound the churn tests watch.
func (g *Gateway) SpaceSlots() int { return g.cl.Local()[0].SpaceSlots() }

// LiveRooms returns the number of live rooms.
func (g *Gateway) LiveRooms() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.rooms)
}

// Close destroys every room, stops the cluster, and waits for it.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return errors.New("gateway: already closed")
	}
	g.closed = true
	g.mu.Unlock()
	close(g.coDone)
	err := <-g.runDone
	g.cl.Close()
	return err
}

// coordinator is the single producer of processor commands. It owns
// room lifecycle: create-on-first-join, destroy-on-last-leave, and
// round-robin drain dispatch across ready rooms (per-room fairness:
// every ready room gets one quantum before any room gets a second).
func (g *Gateway) coordinator() {
	for {
		select {
		case <-g.coDone:
			g.shutdown()
			return
		case req := <-g.reqCh:
			g.handleRequest(req)
		case rm := <-g.readyCh:
			g.dispatchDrain(rm)
		}
	}
}

// shutdown destroys all rooms and stops the processor loops.
func (g *Gateway) shutdown() {
	g.mu.Lock()
	rooms := make([]*room, 0, len(g.rooms))
	for _, rm := range g.rooms {
		rooms = append(rooms, rm)
	}
	g.rooms = map[string]*room{}
	g.mu.Unlock()
	for _, rm := range rooms {
		g.destroyRoom(rm)
	}
	g.collective(ctlCmd{kind: ctlStop})
}

// collective pushes cmd to every processor in rank order and waits for
// all of them to execute it.
func (g *Gateway) collective(cmd ctlCmd) {
	var wg sync.WaitGroup
	wg.Add(len(g.ctl))
	cmd.done = &wg
	for _, ch := range g.ctl {
		ch <- cmd
	}
	wg.Wait()
}

func (g *Gateway) handleRequest(req request) {
	switch req.kind {
	case reqJoin:
		g.join(req.sess, req.room)
	case reqLeave:
		g.leave(req.sess, req.room)
	case reqDisconnect:
		for name := range req.sess.joined {
			g.leave(req.sess, name)
		}
		g.stats.SessionsClosed.Add(1)
	}
}

func (g *Gateway) join(s *session, name string) {
	if s.isClosed() {
		return
	}
	g.mu.Lock()
	rm := g.rooms[name]
	g.mu.Unlock()
	if rm == nil {
		rm = g.createRoom(name)
		if rm == nil {
			s.sendFrame(Frame{Kind: EvError, Room: name, Msg: "room create failed"})
			return
		}
	}
	rm.mu.Lock()
	rm.members[s] = struct{}{}
	rm.mu.Unlock()
	s.joined[name] = struct{}{}
	s.sendFrame(Frame{Kind: EvJoined, Room: name, Space: rm.ref.ID, Gen: rm.ref.Gen})
	// Serve the initial state through the normal op path, so it is
	// ordered after every previously applied op.
	g.enqueueOp(rm, roomOp{f: Frame{Kind: OpGet, Room: name}, sess: s})
}

func (g *Gateway) leave(s *session, name string) {
	g.mu.Lock()
	rm := g.rooms[name]
	g.mu.Unlock()
	delete(s.joined, name)
	if rm == nil {
		return
	}
	rm.mu.Lock()
	_, was := rm.members[s]
	delete(rm.members, s)
	empty := len(rm.members) == 0
	rm.mu.Unlock()
	if was {
		s.sendFrame(Frame{Kind: EvLeft, Room: name})
	}
	if empty {
		g.mu.Lock()
		delete(g.rooms, name)
		g.mu.Unlock()
		g.destroyRoom(rm)
	}
}

// createRoom drives the collective space creation for a new room and
// publishes it. Runs on the coordinator, so creations are serialized.
func (g *Gateway) createRoom(name string) *room {
	if len(name) == 0 || len(name) > MaxRoomName {
		return nil
	}
	rm := &room{
		name:    name,
		home:    roomHome(name, g.cfg.Procs),
		sps:     make([]*core.Space, g.cfg.Procs),
		members: make(map[*session]struct{}),
	}
	g.collective(ctlCmd{kind: ctlCreate, room: rm})
	if rm.reg == nil {
		// Create failed after the collective NewSpace; free the orphan
		// spaces so the failure doesn't leak table slots.
		g.destroyRoom(rm)
		return nil
	}
	g.mu.Lock()
	g.rooms[name] = rm
	g.mu.Unlock()
	g.stats.RoomsCreated.Add(1)
	return rm
}

// destroyRoom drains the room's last ops and drives the collective
// FreeSpace. The room must already be unpublished from g.rooms.
func (g *Gateway) destroyRoom(rm *room) {
	rm.mu.Lock()
	rm.dead = true
	dropped := len(rm.ops)
	rm.ops = nil
	rm.mu.Unlock()
	if dropped > 0 {
		g.stats.OpsDropped.Add(uint64(dropped))
	}
	g.collective(ctlCmd{kind: ctlDestroy, room: rm})
	g.stats.RoomsDestroyed.Add(1)
}

// dispatchDrain hands one ready room a quantum on its home processor.
func (g *Gateway) dispatchDrain(rm *room) {
	rm.queued.Store(false)
	rm.mu.Lock()
	skip := rm.dead || len(rm.ops) == 0
	rm.mu.Unlock()
	if skip {
		return
	}
	g.ctl[rm.home] <- ctlCmd{kind: ctlDrain, room: rm}
	if rm.drains++; rm.drains >= g.cfg.BarrierEvery {
		rm.drains = 0
		g.collective(ctlCmd{kind: ctlBarrier, room: rm})
	}
}

// enqueueOp appends one client op to the room's bounded queue and
// marks the room ready. A full queue or a dead room drops the op.
func (g *Gateway) enqueueOp(rm *room, op roomOp) {
	rm.mu.Lock()
	if rm.dead || len(rm.ops) >= g.cfg.OpQueue {
		rm.mu.Unlock()
		g.stats.OpsDropped.Add(1)
		return
	}
	rm.ops = append(rm.ops, op)
	depth := len(rm.ops)
	rm.mu.Unlock()
	g.stats.ObserveOpQueue(depth)
	if rm.queued.CompareAndSwap(false, true) {
		g.readyCh <- rm
	}
}

// roomHome maps a room name to its home processor (FNV-1a).
func roomHome(name string, procs int) int {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return int(h % uint32(procs))
}

// procLoop is each processor's application thread: it executes the
// coordinator's command stream. Collective commands appear in the same
// order in every stream; drains only in the home's.
func (g *Gateway) procLoop(p *core.Proc) error {
	me := p.ID()
	for cmd := range g.ctl[me] {
		switch cmd.kind {
		case ctlCreate:
			g.doCreate(p, cmd.room)
			cmd.done.Done()
		case ctlDestroy:
			rm := cmd.room
			if sp := rm.sps[me]; sp != nil {
				if err := p.FreeSpace(sp); err != nil {
					// A failed collective free leaves the cluster wedged;
					// surface it loudly through Run's error.
					cmd.done.Done()
					return fmt.Errorf("gateway: proc %d: free %q: %w", me, rm.name, err)
				}
				rm.sps[me] = nil
			}
			cmd.done.Done()
		case ctlBarrier:
			if sp := cmd.room.sps[me]; sp != nil && !sp.Freed() {
				p.Barrier(sp)
			}
			cmd.done.Done()
		case ctlDrain:
			g.drain(p, cmd.room)
		case ctlStop:
			cmd.done.Done()
			return nil
		}
	}
	return nil
}

// doCreate is the per-processor half of room creation: collective
// NewSpace, then the home allocates the state region (through the
// error-returning allocator — the size is a constant here, but the
// boundary stays panic-free) and shares its id.
func (g *Gateway) doCreate(p *core.Proc, rm *room) {
	me := p.ID()
	sp, err := p.NewSpace(g.cfg.Protocol)
	if err != nil {
		return // collective mismatch: Run is about to fail anyway
	}
	rm.sps[me] = sp // recorded before any failure so cleanup can free it
	var id core.RegionID
	if me == rm.home {
		id, err = p.GMallocE(sp, RoomStateBytes)
		if err != nil {
			id = 0
		}
	}
	id = p.BroadcastID(rm.home, id)
	if id == 0 {
		return // allocation failed; rm.reg stays nil and create fails
	}
	if me == rm.home {
		rm.ref = sp.Ref()
		rm.rid = id
		rm.reg = p.Map(id)
	}
}

// drain applies up to one quantum of the room's queued ops through
// brackets on the home processor, broadcasting deltas to members. The
// space is resolved through its generation-tagged ref: a drain racing
// a destroy observes the stale ref and drops the batch instead of
// touching the slot's next occupant.
func (g *Gateway) drain(p *core.Proc, rm *room) {
	rm.mu.Lock()
	n := len(rm.ops)
	if n > g.cfg.Quantum {
		n = g.cfg.Quantum
	}
	batch := rm.ops[:n:n]
	rm.ops = rm.ops[n:]
	rm.mu.Unlock()
	if n == 0 {
		return
	}
	if _, err := p.SpaceByRef(rm.ref); err != nil {
		g.stats.StaleSpaceRefs.Add(uint64(n))
		g.stats.OpsDropped.Add(uint64(n))
		return
	}
	r := rm.reg
	for _, op := range batch {
		switch op.f.Kind {
		case OpSet:
			p.StartWrite(r)
			r.Data.SetInt64(op.f.Cell, op.f.Value)
			p.EndWrite(r)
			g.stats.OpsApplied.Add(1)
			g.broadcast(rm, Frame{Kind: EvDelta, Room: rm.name, Cell: op.f.Cell, Value: op.f.Value})
		case OpAdd:
			p.StartWrite(r)
			v := r.Data.Int64(op.f.Cell) + op.f.Value
			r.Data.SetInt64(op.f.Cell, v)
			p.EndWrite(r)
			g.stats.OpsApplied.Add(1)
			g.broadcast(rm, Frame{Kind: EvDelta, Room: rm.name, Cell: op.f.Cell, Value: v})
		case OpGet:
			state := make([]int64, RoomCells)
			p.StartRead(r)
			for i := range state {
				state[i] = r.Data.Int64(i)
			}
			p.EndRead(r)
			g.stats.OpsApplied.Add(1)
			op.sess.sendFrame(Frame{Kind: EvState, Room: rm.name, State: state})
		default:
			g.stats.OpsDropped.Add(1)
		}
	}
	// Requeue behind every other ready room if work remains — the
	// per-room fairness half of the scheduler.
	rm.mu.Lock()
	more := !rm.dead && len(rm.ops) > 0
	rm.mu.Unlock()
	if more && rm.queued.CompareAndSwap(false, true) {
		g.readyCh <- rm
	}
}

// broadcast sends an event to every member through its bounded send
// queue (the slow-client policy applies per session).
func (g *Gateway) broadcast(rm *room, f Frame) {
	buf, err := EncodeFrame(f)
	if err != nil {
		return
	}
	g.stats.Broadcasts.Add(1)
	rm.mu.Lock()
	members := make([]*session, 0, len(rm.members))
	for s := range rm.members {
		members = append(members, s)
	}
	rm.mu.Unlock()
	for _, s := range members {
		s.send(buf)
	}
}
