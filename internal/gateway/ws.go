package gateway

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
)

// A minimal RFC 6455 websocket layer, hand-rolled over the standard
// library (the repo takes no dependencies). It implements exactly what
// the gateway needs: the HTTP upgrade handshake on both sides, binary
// data frames, the mask rules (client frames masked, server frames
// not), and enough control-frame handling to answer pings and close
// cleanly. No fragmentation (the gateway's frames are small), no
// extensions, no subprotocol negotiation.

// wsGUID is the key-accept GUID fixed by RFC 6455 §1.3.
const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// maxWSPayload bounds a single websocket frame's payload. Client
// frames beyond it are rejected before any allocation sized from the
// attacker-controlled length field.
const maxWSPayload = 1 << 20

// Websocket opcodes (RFC 6455 §5.2).
const (
	wsContinuation = 0x0
	wsText         = 0x1
	wsBinary       = 0x2
	wsClose        = 0x8
	wsPing         = 0x9
	wsPong         = 0xA
)

var errWSClosed = errors.New("gateway: websocket closed")

// wsAccept computes the Sec-WebSocket-Accept token for a key.
func wsAccept(key string) string {
	h := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// wsConn is one websocket connection after the handshake. One reader
// goroutine at a time; writes are serialized by wmu because the read
// side also writes (pong replies to pings) concurrently with the
// writer goroutine's message sends.
type wsConn struct {
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	wmu    sync.Mutex // serializes writers: message sends vs. pong/close replies
	client bool       // client side masks outgoing frames
}

// upgrade performs the server half of the handshake: it validates the
// upgrade request, hijacks the HTTP connection, and answers 101.
func upgrade(w http.ResponseWriter, r *http.Request) (*wsConn, error) {
	if r.Method != http.MethodGet {
		http.Error(w, "websocket: method not GET", http.StatusMethodNotAllowed)
		return nil, errors.New("gateway: upgrade method not GET")
	}
	if !headerHasToken(r.Header, "Connection", "upgrade") || !headerHasToken(r.Header, "Upgrade", "websocket") {
		http.Error(w, "websocket: not an upgrade request", http.StatusBadRequest)
		return nil, errors.New("gateway: not an upgrade request")
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "websocket: missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, errors.New("gateway: missing Sec-WebSocket-Key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "websocket: cannot hijack", http.StatusInternalServerError)
		return nil, errors.New("gateway: response writer cannot hijack")
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("gateway: hijack: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + wsAccept(key) + "\r\n\r\n"
	if _, err := rw.Writer.WriteString(resp); err != nil {
		conn.Close()
		return nil, err
	}
	if err := rw.Writer.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	return &wsConn{conn: conn, br: rw.Reader, bw: rw.Writer}, nil
}

// headerHasToken reports whether a comma-separated header contains the
// token (case-insensitive), as required for Connection: keep-alive,
// Upgrade.
func headerHasToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// wsDial performs the client half of the handshake against
// ws://host/path expressed as a plain address + path.
func wsDial(addr, path string) (*wsConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	var keyRaw [16]byte
	if _, err := io.ReadFull(rand.Reader, keyRaw[:]); err != nil {
		conn.Close()
		return nil, err
	}
	key := base64.StdEncoding.EncodeToString(keyRaw[:])
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + addr + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		conn.Close()
		return nil, err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		conn.Close()
		return nil, fmt.Errorf("gateway: handshake status %s", resp.Status)
	}
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != wsAccept(key) {
		conn.Close()
		return nil, errors.New("gateway: bad Sec-WebSocket-Accept")
	}
	return &wsConn{conn: conn, br: br, bw: bufio.NewWriter(conn), client: true}, nil
}

// readMessage returns the next binary message's payload, transparently
// answering pings and returning errWSClosed on a close frame. Malformed
// frames (unmasked client frames on the server side, oversized
// payloads, unexpected opcodes) come back as errors, never panics.
func (c *wsConn) readMessage() ([]byte, error) {
	for {
		var hdr [2]byte
		if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
			return nil, err
		}
		fin := hdr[0]&0x80 != 0
		if hdr[0]&0x70 != 0 {
			return nil, errors.New("gateway: websocket reserved bits set")
		}
		opcode := hdr[0] & 0x0F
		masked := hdr[1]&0x80 != 0
		length := uint64(hdr[1] & 0x7F)
		switch length {
		case 126:
			var ext [2]byte
			if _, err := io.ReadFull(c.br, ext[:]); err != nil {
				return nil, err
			}
			length = uint64(binary.BigEndian.Uint16(ext[:]))
		case 127:
			var ext [8]byte
			if _, err := io.ReadFull(c.br, ext[:]); err != nil {
				return nil, err
			}
			length = binary.BigEndian.Uint64(ext[:])
		}
		if length > maxWSPayload {
			return nil, fmt.Errorf("gateway: websocket frame of %d bytes exceeds limit", length)
		}
		// RFC 6455 §5.1: client→server frames MUST be masked,
		// server→client MUST NOT be.
		if !c.client && !masked {
			return nil, errors.New("gateway: unmasked client frame")
		}
		if c.client && masked {
			return nil, errors.New("gateway: masked server frame")
		}
		var maskKey [4]byte
		if masked {
			if _, err := io.ReadFull(c.br, maskKey[:]); err != nil {
				return nil, err
			}
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(c.br, payload); err != nil {
			return nil, err
		}
		if masked {
			for i := range payload {
				payload[i] ^= maskKey[i&3]
			}
		}
		switch opcode {
		case wsBinary, wsText:
			if !fin {
				return nil, errors.New("gateway: fragmented frames unsupported")
			}
			return payload, nil
		case wsPing:
			if err := c.writeControl(wsPong, payload); err != nil {
				return nil, err
			}
		case wsPong:
			// Unsolicited pong: ignore.
		case wsClose:
			c.writeControl(wsClose, nil)
			return nil, errWSClosed
		default:
			return nil, fmt.Errorf("gateway: unexpected websocket opcode %#x", opcode)
		}
	}
}

// writeMessage sends one binary message.
func (c *wsConn) writeMessage(payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.writeFrame(wsBinary, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// writeControl sends a control frame immediately. Control frames come
// from the read side (pong replies) and from close, so the write lock
// is what keeps them from interleaving with message frames.
func (c *wsConn) writeControl(opcode byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.writeFrame(opcode, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *wsConn) writeFrame(opcode byte, payload []byte) error {
	var hdr [14]byte
	hdr[0] = 0x80 | opcode
	n := 2
	switch l := len(payload); {
	case l < 126:
		hdr[1] = byte(l)
	case l <= 0xFFFF:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:], uint16(l))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:], uint64(l))
		n = 10
	}
	if c.client {
		hdr[1] |= 0x80
		var maskKey [4]byte
		if _, err := io.ReadFull(rand.Reader, maskKey[:]); err != nil {
			return err
		}
		copy(hdr[n:], maskKey[:])
		n += 4
		if _, err := c.bw.Write(hdr[:n]); err != nil {
			return err
		}
		// Mask into a scratch copy: the caller keeps its payload.
		masked := make([]byte, len(payload))
		for i, b := range payload {
			masked[i] = b ^ maskKey[i&3]
		}
		_, err := c.bw.Write(masked)
		return err
	}
	if _, err := c.bw.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := c.bw.Write(payload)
	return err
}

// close sends a close frame (best effort) and closes the connection.
func (c *wsConn) close() {
	c.writeControl(wsClose, nil)
	c.conn.Close()
}
