package gateway

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The gateway's application wire protocol, carried in websocket binary
// messages. Every frame — client op or server event — shares one
// layout:
//
//	[1] kind  [1] roomLen  [roomLen] room  [...] body
//
// Client ops:
//
//	OpJoin   body empty
//	OpLeave  body empty
//	OpSet    body [1] cell  [8] value (LE)
//	OpAdd    body [1] cell  [8] delta (LE)
//	OpGet    body empty
//
// Server events:
//
//	EvJoined body [4] space id (LE)  [8] space generation (LE)
//	EvLeft   body empty
//	EvDelta  body [1] cell  [8] new value (LE)
//	EvState  body [RoomCells × 8] cell values (LE)
//	EvError  body UTF-8 message
//
// DecodeFrame validates everything that is attacker-controlled —
// lengths, kinds, cell indices — and returns errors, never panics:
// this is the boundary the fuzz target hammers.

// RoomCells is the number of 8-byte cells in a room's shared state.
const RoomCells = 64

// RoomStateBytes is a room region's size.
const RoomStateBytes = RoomCells * 8

// MaxRoomName bounds a room name (the wire field is one byte anyway).
const MaxRoomName = 128

// Client op kinds.
const (
	OpJoin  byte = 0x01
	OpLeave byte = 0x02
	OpSet   byte = 0x03
	OpAdd   byte = 0x04
	OpGet   byte = 0x05
)

// Server event kinds.
const (
	EvJoined byte = 0x81
	EvLeft   byte = 0x82
	EvDelta  byte = 0x83
	EvState  byte = 0x84
	EvError  byte = 0x85
)

// ErrBadFrame is the sentinel matched by errors.Is for any frame
// DecodeFrame rejects.
var ErrBadFrame = errors.New("malformed gateway frame")

// Frame is one decoded wire frame.
type Frame struct {
	Kind  byte
	Room  string
	Cell  int     // OpSet, OpAdd, EvDelta
	Value int64   // OpSet, OpAdd, EvDelta
	Space int     // EvJoined
	Gen   uint64  // EvJoined
	State []int64 // EvState (length RoomCells)
	Msg   string  // EvError
}

func badFrame(format string, args ...any) error {
	return fmt.Errorf("gateway: %s: %w", fmt.Sprintf(format, args...), ErrBadFrame)
}

// DecodeFrame parses one wire frame. Every length and index is checked
// against the buffer before use; malformed input of any shape returns
// an error wrapping ErrBadFrame.
func DecodeFrame(buf []byte) (Frame, error) {
	var f Frame
	if len(buf) < 2 {
		return f, badFrame("frame of %d bytes", len(buf))
	}
	f.Kind = buf[0]
	roomLen := int(buf[1])
	if roomLen > MaxRoomName {
		return f, badFrame("room name of %d bytes", roomLen)
	}
	if len(buf) < 2+roomLen {
		return f, badFrame("room name truncated: %d bytes for length %d", len(buf)-2, roomLen)
	}
	f.Room = string(buf[2 : 2+roomLen])
	body := buf[2+roomLen:]
	switch f.Kind {
	case OpJoin, OpLeave, OpGet, EvLeft:
		if len(body) != 0 {
			return f, badFrame("kind %#x carries %d unexpected body bytes", f.Kind, len(body))
		}
	case OpSet, OpAdd, EvDelta:
		if len(body) != 9 {
			return f, badFrame("kind %#x body of %d bytes, want 9", f.Kind, len(body))
		}
		f.Cell = int(body[0])
		if f.Cell >= RoomCells {
			return f, badFrame("cell %d out of range", f.Cell)
		}
		f.Value = int64(binary.LittleEndian.Uint64(body[1:]))
	case EvJoined:
		if len(body) != 12 {
			return f, badFrame("EvJoined body of %d bytes, want 12", len(body))
		}
		f.Space = int(binary.LittleEndian.Uint32(body))
		f.Gen = binary.LittleEndian.Uint64(body[4:])
	case EvState:
		if len(body) != RoomStateBytes {
			return f, badFrame("EvState body of %d bytes, want %d", len(body), RoomStateBytes)
		}
		f.State = make([]int64, RoomCells)
		for i := range f.State {
			f.State[i] = int64(binary.LittleEndian.Uint64(body[i*8:]))
		}
	case EvError:
		if len(body) > maxWSPayload {
			return f, badFrame("EvError message of %d bytes", len(body))
		}
		f.Msg = string(body)
	default:
		return f, badFrame("unknown kind %#x", f.Kind)
	}
	return f, nil
}

// EncodeFrame renders f in the wire layout. It is DecodeFrame's
// inverse for valid frames; invalid field combinations (room too long,
// cell out of range) return an error.
func EncodeFrame(f Frame) ([]byte, error) {
	if len(f.Room) > MaxRoomName {
		return nil, badFrame("room name of %d bytes", len(f.Room))
	}
	buf := make([]byte, 0, 2+len(f.Room)+RoomStateBytes)
	buf = append(buf, f.Kind, byte(len(f.Room)))
	buf = append(buf, f.Room...)
	switch f.Kind {
	case OpJoin, OpLeave, OpGet, EvLeft:
	case OpSet, OpAdd, EvDelta:
		if f.Cell < 0 || f.Cell >= RoomCells {
			return nil, badFrame("cell %d out of range", f.Cell)
		}
		buf = append(buf, byte(f.Cell))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Value))
	case EvJoined:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f.Space))
		buf = binary.LittleEndian.AppendUint64(buf, f.Gen)
	case EvState:
		if len(f.State) != RoomCells {
			return nil, badFrame("EvState with %d cells", len(f.State))
		}
		for _, v := range f.State {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
	case EvError:
		buf = append(buf, f.Msg...)
	default:
		return nil, badFrame("unknown kind %#x", f.Kind)
	}
	return buf, nil
}
