package gateway

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame hammers the gateway's client-facing decode boundary:
// DecodeFrame must never panic, and anything it accepts must re-encode
// and re-decode to the same frame (a decode/encode fixed point). The
// seed corpus in testdata/fuzz/FuzzDecodeFrame covers every frame kind
// plus the historically interesting malformed shapes.
func FuzzDecodeFrame(f *testing.F) {
	// One well-formed seed per kind.
	for _, fr := range []Frame{
		{Kind: OpJoin, Room: "lobby"},
		{Kind: OpLeave, Room: "lobby"},
		{Kind: OpSet, Room: "r", Cell: 1, Value: 7},
		{Kind: OpAdd, Room: "r", Cell: 63, Value: -1},
		{Kind: OpGet, Room: "r"},
		{Kind: EvJoined, Room: "r", Space: 3, Gen: 9},
		{Kind: EvLeft, Room: "r"},
		{Kind: EvDelta, Room: "r", Cell: 0, Value: 1},
		{Kind: EvState, Room: "r", State: make([]int64, RoomCells)},
		{Kind: EvError, Room: "r", Msg: "boom"},
	} {
		buf, err := EncodeFrame(fr)
		if err != nil {
			f.Fatalf("seed encode %#x: %v", fr.Kind, err)
		}
		f.Add(buf)
	}
	// Malformed seeds: truncations, bad lengths, bad kinds.
	f.Add([]byte{})
	f.Add([]byte{OpJoin})
	f.Add([]byte{OpJoin, 255})
	f.Add([]byte{OpSet, 0, 64, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xFF, 0x00})
	f.Add(bytes.Repeat([]byte{0x84}, 600))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return // rejected — that is fine, as long as we got here
		}
		buf, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("decoded frame %+v does not re-encode: %v", fr, err)
		}
		fr2, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if fr2.Kind != fr.Kind || fr2.Room != fr.Room || fr2.Cell != fr.Cell ||
			fr2.Value != fr.Value || fr2.Space != fr.Space || fr2.Gen != fr.Gen || fr2.Msg != fr.Msg {
			t.Fatalf("decode/encode not a fixed point: %+v vs %+v", fr, fr2)
		}
		if len(fr2.State) != len(fr.State) {
			t.Fatalf("state length changed: %d vs %d", len(fr.State), len(fr2.State))
		}
		for i := range fr.State {
			if fr.State[i] != fr2.State[i] {
				t.Fatalf("state[%d] changed: %d vs %d", i, fr.State[i], fr2.State[i])
			}
		}
	})
}
