// Package crl implements a CRL-like region-based software DSM: the
// baseline system the paper compares Ace against (Johnson, Kaashoek &
// Wallach, SOSP 1995; the CRL 1.0 distribution).
//
// Like Ace, CRL shares arbitrarily sized regions bracketed by map/unmap
// and start/end read/write operations, running a fixed sequentially
// consistent invalidation protocol. It differs from the Ace runtime in
// exactly the mechanisms the paper credits for the Figure 7a results:
//
//   - Mapping goes through hash tables: a mapped-region table plus an
//     unmapped-region cache (URC), instead of Ace's dense two-level
//     region table.
//   - The URC has bounded capacity; unmapping beyond the bound evicts
//     clean cached copies FIFO, so fine-grained applications that map and
//     unmap many regions re-fetch data the Ace runtime would still have
//     cached.
//   - There is no space/protocol indirection — calls go straight to the
//     one protocol — which is why coarse-grained applications (BSC) see
//     no benefit from Ace's runtime redesign.
//
// The coherence engine itself is shared with the Ace runtime (both run
// the same home-directory invalidation protocol), which mirrors the
// paper's methodology of comparing runtimes, not protocol implementations.
package crl

import (
	"fmt"

	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/trace"
)

// Options configures a CRL cluster.
type Options struct {
	// Procs is the number of logical processors.
	Procs int
	// URCCapacity bounds the unmapped-region cache (per processor);
	// 0 means the default of 64 regions.
	URCCapacity int
}

// DefaultURCCapacity is the per-processor unmapped-region cache bound.
const DefaultURCCapacity = 64

// Cluster is a CRL cluster. Create with NewCluster, execute with Run.
type Cluster struct {
	inner *core.Cluster
	urc   int
}

// NewCluster creates a CRL cluster of opts.Procs processors.
func NewCluster(opts Options) (*Cluster, error) {
	if opts.URCCapacity == 0 {
		opts.URCCapacity = DefaultURCCapacity
	}
	if opts.URCCapacity < 0 {
		return nil, fmt.Errorf("crl: bad URC capacity %d", opts.URCCapacity)
	}
	inner, err := core.NewCluster(core.Options{Procs: opts.Procs})
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner, urc: opts.URCCapacity}, nil
}

// Procs returns the cluster size.
func (c *Cluster) Procs() int { return c.inner.Procs() }

// Run executes fn on every processor concurrently, one user thread per
// processor.
func (c *Cluster) Run(fn func(p *Proc) error) error {
	return c.inner.Run(func(ip *core.Proc) error {
		p := &Proc{
			inner:  ip,
			cl:     c,
			mapped: make(map[core.RegionID]*Region),
			urc:    make(map[core.RegionID]*Region),
			meta:   make(map[core.RegionID]*regionMeta),
		}
		return fn(p)
	})
}

// Close shuts the cluster down.
func (c *Cluster) Close() error { return c.inner.Close() }

// Metrics aggregates the observability snapshot across all processors
// (quiescent clusters only). CRL does not expose Options.Trace, so only
// the network half is populated.
func (c *Cluster) Metrics() trace.Metrics { return c.inner.Metrics() }

// Region is a CRL region handle: rgn_map's return value.
type Region struct {
	cr       *core.Region
	mapCount int
}

// Data returns the region's local data view, valid for access between
// start/end operations.
func (r *Region) Data() core.RegionData { return r.cr.Data }

// ID returns the region's global identifier.
func (r *Region) ID() core.RegionID { return r.cr.ID }

// Size returns the region's size in bytes.
func (r *Region) Size() int { return r.cr.Size }

// Proc is one processor's handle on the CRL runtime (crl.h's per-node
// interface).
type Proc struct {
	inner *core.Proc
	cl    *Cluster

	// mapped is the hash table of currently mapped regions.
	mapped map[core.RegionID]*Region
	// urc is the unmapped-region cache, FIFO-evicted at capacity.
	urc      map[core.RegionID]*Region
	urcOrder []core.RegionID
	// meta is CRL's per-region operation bookkeeping (version numbers and
	// state-table entries consulted on every start/end operation); its
	// hash lookups model CRL 1.0's heavier per-operation path, one of the
	// two mechanisms behind Figure 7a.
	meta map[core.RegionID]*regionMeta
}

// regionMeta is the per-region bookkeeping updated on every operation.
type regionMeta struct {
	version   uint64
	sendCount uint64
	state     int32
}

// note records an operation on a region in the CRL bookkeeping tables.
func (p *Proc) note(id core.RegionID, state int32) {
	m := p.meta[id]
	if m == nil {
		m = &regionMeta{}
		p.meta[id] = m
	}
	m.version++
	m.state = state
}

// ID returns this processor's id.
func (p *Proc) ID() int { return p.inner.ID() }

// Procs returns the cluster size.
func (p *Proc) Procs() int { return p.inner.Procs() }

// Malloc allocates a shared region of size bytes homed here (rgn_create).
func (p *Proc) Malloc(size int) core.RegionID {
	return p.inner.GMalloc(p.inner.DefaultSpace(), size)
}

// Map maps a region into the local address space (rgn_map): a hash lookup
// in the mapped table, then the URC, then a metadata fetch from the home.
func (p *Proc) Map(id core.RegionID) *Region {
	if r, ok := p.mapped[id]; ok {
		r.mapCount++
		p.inner.Map(id) // keep the shared engine's count in step
		return r
	}
	if r, ok := p.urc[id]; ok {
		delete(p.urc, id)
		p.urcRemoveOrder(id)
		r.mapCount = 1
		p.mapped[id] = r
		p.inner.Map(id)
		return r
	}
	cr := p.inner.Map(id)
	r := &Region{cr: cr, mapCount: 1}
	p.mapped[id] = r
	return r
}

// Unmap unmaps a region (rgn_unmap). The region moves to the URC; if the
// cache is over capacity the oldest entry is evicted, discarding its clean
// cached copy.
func (p *Proc) Unmap(r *Region) {
	p.inner.Unmap(r.cr)
	r.mapCount--
	if r.mapCount > 0 {
		return
	}
	delete(p.mapped, r.cr.ID)
	p.urc[r.cr.ID] = r
	p.urcOrder = append(p.urcOrder, r.cr.ID)
	for len(p.urcOrder) > p.cl.urc {
		victim := p.urcOrder[0]
		p.urcOrder = p.urcOrder[1:]
		vr, ok := p.urc[victim]
		if !ok {
			continue
		}
		delete(p.urc, victim)
		p.inner.DropCopy(vr.cr)
	}
}

// StartRead opens a read section (rgn_start_read).
func (p *Proc) StartRead(r *Region) {
	p.note(r.cr.ID, 1)
	p.inner.StartRead(r.cr)
}

// EndRead closes a read section (rgn_end_read).
func (p *Proc) EndRead(r *Region) {
	p.note(r.cr.ID, 2)
	p.inner.EndRead(r.cr)
}

// StartWrite opens a write section (rgn_start_write).
func (p *Proc) StartWrite(r *Region) {
	p.note(r.cr.ID, 3)
	p.inner.StartWrite(r.cr)
}

// EndWrite closes a write section (rgn_end_write).
func (p *Proc) EndWrite(r *Region) {
	p.note(r.cr.ID, 4)
	p.inner.EndWrite(r.cr)
}

// Barrier synchronizes all processors (rgn_barrier).
func (p *Proc) Barrier() { p.inner.GlobalBarrier() }

// Broadcast distributes data from root (collective).
func (p *Proc) Broadcast(root int, data []byte) []byte { return p.inner.Broadcast(root, data) }

// BroadcastID distributes a region id from root (collective).
func (p *Proc) BroadcastID(root int, id core.RegionID) core.RegionID {
	return p.inner.BroadcastID(root, id)
}

// BroadcastIDs distributes a slice of region ids from root (collective).
func (p *Proc) BroadcastIDs(root int, ids []core.RegionID) []core.RegionID {
	return p.inner.BroadcastIDs(root, ids)
}

// AllReduceInt64 combines v across processors (collective).
func (p *Proc) AllReduceInt64(op core.ReduceOp, v int64) int64 {
	return p.inner.AllReduceInt64(op, v)
}

// AllReduceFloat64 combines v across processors (collective).
func (p *Proc) AllReduceFloat64(op core.ReduceOp, v float64) float64 {
	return p.inner.AllReduceFloat64(op, v)
}

func (p *Proc) urcRemoveOrder(id core.RegionID) {
	for i, v := range p.urcOrder {
		if v == id {
			p.urcOrder = append(p.urcOrder[:i], p.urcOrder[i+1:]...)
			return
		}
	}
}
