package crl

import (
	"fmt"
	"testing"

	"github.com/acedsm/ace/internal/core"
)

func runCRL(t *testing.T, procs int, opts Options, fn func(p *Proc) error) *Cluster {
	t.Helper()
	opts.Procs = procs
	cl, err := NewCluster(opts)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	if err := cl.Run(fn); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return cl
}

func TestCRLBasicSharing(t *testing.T) {
	runCRL(t, 4, Options{}, func(p *Proc) error {
		var id core.RegionID
		if p.ID() == 0 {
			id = p.Malloc(8)
			r := p.Map(id)
			p.StartWrite(r)
			r.Data().SetInt64(0, 42)
			p.EndWrite(r)
			p.Unmap(r)
		}
		id = p.BroadcastID(0, id)
		p.Barrier()
		r := p.Map(id)
		p.StartRead(r)
		if got := r.Data().Int64(0); got != 42 {
			return fmt.Errorf("proc %d: got %d", p.ID(), got)
		}
		p.EndRead(r)
		p.Unmap(r)
		return nil
	})
}

func TestCRLWriteSerialization(t *testing.T) {
	const procs, incs = 6, 60
	runCRL(t, procs, Options{}, func(p *Proc) error {
		var id core.RegionID
		if p.ID() == 0 {
			id = p.Malloc(8)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		for i := 0; i < incs; i++ {
			p.StartWrite(r)
			r.Data().SetInt64(0, r.Data().Int64(0)+1)
			p.EndWrite(r)
		}
		p.Barrier()
		p.StartRead(r)
		got := r.Data().Int64(0)
		p.EndRead(r)
		if got != procs*incs {
			return fmt.Errorf("got %d, want %d", got, procs*incs)
		}
		return nil
	})
}

func TestCRLRemapFromURC(t *testing.T) {
	runCRL(t, 2, Options{}, func(p *Proc) error {
		var id core.RegionID
		if p.ID() == 0 {
			id = p.Malloc(8)
			r := p.Map(id)
			p.StartWrite(r)
			r.Data().SetInt64(0, 7)
			p.EndWrite(r)
			p.Unmap(r)
		}
		id = p.BroadcastID(0, id)
		p.Barrier()
		if p.ID() == 1 {
			// Map/unmap/map cycles should hit the URC and keep working.
			for i := 0; i < 5; i++ {
				r := p.Map(id)
				p.StartRead(r)
				if r.Data().Int64(0) != 7 {
					return fmt.Errorf("iteration %d: bad data", i)
				}
				p.EndRead(r)
				p.Unmap(r)
			}
		}
		p.Barrier()
		return nil
	})
}

// TestCRLEvictionRefetches shows the mechanism behind Figure 7a: with a
// tiny URC, cycling through more regions than the cache holds forces
// re-fetches, while the Ace runtime (unbounded caching) would not.
func TestCRLEvictionRefetches(t *testing.T) {
	const regions = 8
	var coldMsgs, warmMsgs uint64
	cl := runCRL(t, 2, Options{URCCapacity: 2}, func(p *Proc) error {
		ids := make([]core.RegionID, regions)
		if p.ID() == 0 {
			for i := range ids {
				ids[i] = p.Malloc(64)
			}
		}
		ids = p.BroadcastIDs(0, ids)
		p.Barrier()
		sweep := func() error {
			if p.ID() != 1 {
				return nil
			}
			for _, id := range ids {
				r := p.Map(id)
				p.StartRead(r)
				_ = r.Data().Int64(0)
				p.EndRead(r)
				p.Unmap(r)
			}
			return nil
		}
		if err := sweep(); err != nil {
			return err
		}
		p.Barrier()
		if p.ID() == 0 {
			coldMsgs = p.inner.Cluster().Metrics().Net.MsgsSent
		}
		p.Barrier()
		if err := sweep(); err != nil {
			return err
		}
		p.Barrier()
		if p.ID() == 0 {
			warmMsgs = p.inner.Cluster().Metrics().Net.MsgsSent
		}
		p.Barrier()
		return nil
	})
	_ = cl
	// The second sweep must re-fetch evicted regions: it costs at least
	// one data round trip per region beyond barrier traffic.
	secondSweep := warmMsgs - coldMsgs
	if secondSweep < 2*(regions-2) {
		t.Fatalf("second sweep cost only %d messages; eviction should force re-fetches", secondSweep)
	}
}

func TestCRLBadURC(t *testing.T) {
	if _, err := NewCluster(Options{Procs: 2, URCCapacity: -1}); err == nil {
		t.Fatal("negative URC capacity should fail")
	}
}

func TestCRLAllReduce(t *testing.T) {
	runCRL(t, 3, Options{}, func(p *Proc) error {
		if got := p.AllReduceInt64(core.OpSum, 2); got != 6 {
			return fmt.Errorf("sum = %d", got)
		}
		if got := p.AllReduceFloat64(core.OpMax, float64(p.ID())); got != 2 {
			return fmt.Errorf("max = %v", got)
		}
		return nil
	})
}

// TestCRLEvictionSkipsDirtyCopies: the URC never drops an exclusive
// (dirty) copy — only clean shared ones.
func TestCRLEvictionSkipsDirtyCopies(t *testing.T) {
	runCRL(t, 2, Options{URCCapacity: 1}, func(p *Proc) error {
		var ids []core.RegionID
		if p.ID() == 0 {
			for i := 0; i < 4; i++ {
				ids = append(ids, p.Malloc(8))
			}
		} else {
			ids = make([]core.RegionID, 4)
		}
		ids = p.BroadcastIDs(0, ids)
		p.Barrier()
		if p.ID() == 1 {
			// Dirty one region, then churn the tiny URC with others.
			r0 := p.Map(ids[0])
			p.StartWrite(r0)
			r0.Data().SetInt64(0, 42)
			p.EndWrite(r0)
			p.Unmap(r0)
			for _, id := range ids[1:] {
				r := p.Map(id)
				p.StartRead(r)
				p.EndRead(r)
				p.Unmap(r)
			}
			// The dirty copy survived eviction: remapping reads it
			// locally, and its value is intact.
			r0 = p.Map(ids[0])
			p.StartRead(r0)
			if got := r0.Data().Int64(0); got != 42 {
				return fmt.Errorf("dirty copy lost: %d", got)
			}
			p.EndRead(r0)
			p.Unmap(r0)
		}
		p.Barrier()
		// And the home still obtains the final value through coherence.
		if p.ID() == 0 {
			r0 := p.Map(ids[0])
			p.StartRead(r0)
			if got := r0.Data().Int64(0); got != 42 {
				return fmt.Errorf("home read %d", got)
			}
			p.EndRead(r0)
			p.Unmap(r0)
		}
		p.Barrier()
		return nil
	})
}

// TestCRLNestedMapCounts: nested maps of the same region keep one handle.
func TestCRLNestedMapCounts(t *testing.T) {
	runCRL(t, 1, Options{}, func(p *Proc) error {
		id := p.Malloc(8)
		a := p.Map(id)
		b := p.Map(id)
		if a != b {
			return fmt.Errorf("nested map returned a different handle")
		}
		p.Unmap(b)
		p.StartWrite(a)
		a.Data().SetInt64(0, 9)
		p.EndWrite(a)
		p.Unmap(a)
		c := p.Map(id)
		p.StartRead(c)
		if c.Data().Int64(0) != 9 {
			return fmt.Errorf("data lost across unmap")
		}
		p.EndRead(c)
		p.Unmap(c)
		return nil
	})
}
