package lang

import "fmt"

// AST node types. The tree is deliberately small: MiniAce is the vehicle
// for the paper's mechanisms, not a general-purpose language.

// File is a parsed program.
type File struct {
	Spaces []SpaceDecl
	Funcs  []*FuncDecl
}

// SpaceDecl declares a space and the protocols it may run under: the first
// is the creation protocol, the rest are ChangeProtocol targets (the
// compiler's analysis needs the full set).
type SpaceDecl struct {
	Name   string
	Protos []string
	Line   int
}

// FuncDecl declares a function.
type FuncDecl struct {
	Name   string
	Params []Param
	Ret    *TypeExpr // nil for none
	Body   []Stmt
	Line   int
}

// Param is a function parameter.
type Param struct {
	Name string
	Type TypeExpr
}

// TypeExpr is a source-level type.
type TypeExpr struct {
	Name  string    // "int", "float", "region"
	Space string    // for region types: the space name
	Elem  *TypeExpr // for region types: the slot element type (default float)
	Line  int
}

// Stmt is a statement.
type Stmt interface{ stmtLine() int }

// VarStmt declares and initializes a local.
type VarStmt struct {
	Name string
	Type TypeExpr
	Init Expr
	Line int
}

// AssignStmt assigns to a variable or a region slot.
type AssignStmt struct {
	Name  string
	Index Expr // nil for plain variable assignment
	Value Expr
	Line  int
}

// ForStmt is `for i = a to b { ... }` (i ranges over [a, b)).
type ForStmt struct {
	Var      string
	From, To Expr
	Body     []Stmt
	Line     int
}

// IfStmt is a conditional.
type IfStmt struct {
	Cond       Expr
	Then, Else []Stmt
	Line       int
}

// LockStmt is `lock expr;` or `unlock expr;` on a region value.
type LockStmt struct {
	Unlock bool
	X      Expr
	Line   int
}

func (s *LockStmt) stmtLine() int { return s.Line }

// BarrierStmt is `barrier space;`.
type BarrierStmt struct {
	Space string
	Line  int
}

// ChangeProtoStmt is `changeprotocol space, "proto";`.
type ChangeProtoStmt struct {
	Space string
	Proto string
	Line  int
}

// ReturnStmt is `return expr;`.
type ReturnStmt struct {
	Value Expr
	Line  int
}

// ExprStmt evaluates an expression for effect (calls).
type ExprStmt struct {
	X    Expr
	Line int
}

func (s *VarStmt) stmtLine() int         { return s.Line }
func (s *AssignStmt) stmtLine() int      { return s.Line }
func (s *ForStmt) stmtLine() int         { return s.Line }
func (s *IfStmt) stmtLine() int          { return s.Line }
func (s *BarrierStmt) stmtLine() int     { return s.Line }
func (s *ChangeProtoStmt) stmtLine() int { return s.Line }
func (s *ReturnStmt) stmtLine() int      { return s.Line }
func (s *ExprStmt) stmtLine() int        { return s.Line }

// Expr is an expression.
type Expr interface{ exprLine() int }

// IntLit / FloatLit are literals.
type IntLit struct {
	V    int64
	Line int
}

// FloatLit is a float literal.
type FloatLit struct {
	V    float64
	Line int
}

// VarRef reads a variable.
type VarRef struct {
	Name string
	Line int
}

// IndexExpr reads a region slot: base[index].
type IndexExpr struct {
	Name  string
	Index Expr
	Line  int
}

// BinExpr applies a binary operator.
type BinExpr struct {
	Op   string
	L, R Expr
	Line int
}

// UnExpr applies a unary operator ("-", "!").
type UnExpr struct {
	Op   string
	X    Expr
	Line int
}

// CallExpr calls a function or builtin (gmalloc, bcastid, sqrt, float).
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

func (e *IntLit) exprLine() int    { return e.Line }
func (e *FloatLit) exprLine() int  { return e.Line }
func (e *VarRef) exprLine() int    { return e.Line }
func (e *IndexExpr) exprLine() int { return e.Line }
func (e *BinExpr) exprLine() int   { return e.Line }
func (e *UnExpr) exprLine() int    { return e.Line }
func (e *CallExpr) exprLine() int  { return e.Line }

// parser consumes the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses MiniAce source into a File.
func Parse(src string) (*File, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for !p.at(tokEOF, "") {
		switch {
		case p.atIdent("space"):
			sd, err := p.spaceDecl()
			if err != nil {
				return nil, err
			}
			f.Spaces = append(f.Spaces, sd)
		case p.atIdent("func"):
			fd, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fd)
		default:
			return nil, p.errf("expected 'space' or 'func', got %q", p.cur().text)
		}
	}
	return f, nil
}

func (p *parser) cur() token { return p.toks[min(p.pos, len(p.toks)-1)] }

// next consumes and returns the current token; the trailing EOF token is
// never consumed, so cur stays valid after errors.
func (p *parser) next() token {
	t := p.cur()
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) atIdent(name string) bool { return p.at(tokIdent, name) }

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, text string) (token, error) {
	if !p.at(k, text) {
		return token{}, p.errf("expected %q, got %q", text, p.cur().text)
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) spaceDecl() (SpaceDecl, error) {
	line := p.cur().line
	p.next() // space
	name := p.next()
	if name.kind != tokIdent {
		return SpaceDecl{}, p.errf("expected space name")
	}
	if _, err := p.expect(tokIdent, "protocol"); err != nil {
		return SpaceDecl{}, err
	}
	var protos []string
	for {
		s := p.next()
		if s.kind != tokString {
			return SpaceDecl{}, p.errf("expected protocol name string")
		}
		protos = append(protos, s.text)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return SpaceDecl{}, err
	}
	return SpaceDecl{Name: name.text, Protos: protos, Line: line}, nil
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	line := p.cur().line
	p.next() // func
	name := p.next()
	if name.kind != tokIdent {
		return nil, p.errf("expected function name")
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var params []Param
	for !p.at(tokPunct, ")") {
		pn := p.next()
		if pn.kind != tokIdent {
			return nil, p.errf("expected parameter name")
		}
		if _, err := p.expect(tokPunct, ":"); err != nil {
			return nil, err
		}
		t, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		params = append(params, Param{Name: pn.text, Type: t})
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	var ret *TypeExpr
	if p.accept(tokPunct, ":") {
		t, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		ret = &t
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: name.text, Params: params, Ret: ret, Body: body, Line: line}, nil
}

func (p *parser) typeExpr() (TypeExpr, error) {
	t := p.next()
	if t.kind != tokIdent {
		return TypeExpr{}, p.errf("expected type")
	}
	switch t.text {
	case "int", "float":
		return TypeExpr{Name: t.text, Line: t.line}, nil
	case "region":
		te := TypeExpr{Name: "region", Line: t.line}
		if _, err := p.expect(tokPunct, "<"); err != nil {
			return TypeExpr{}, err
		}
		sp := p.next()
		if sp.kind != tokIdent {
			return TypeExpr{}, p.errf("expected space name in region type")
		}
		te.Space = sp.text
		if _, err := p.expect(tokPunct, ">"); err != nil {
			return TypeExpr{}, err
		}
		if p.accept(tokIdent, "of") {
			elem, err := p.typeExpr()
			if err != nil {
				return TypeExpr{}, err
			}
			te.Elem = &elem
		}
		return te, nil
	default:
		return TypeExpr{}, p.errf("unknown type %q", t.text)
	}
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.at(tokPunct, "}") {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.next() // }
	return stmts, nil
}

func (p *parser) stmt() (Stmt, error) {
	line := p.cur().line
	switch {
	case p.atIdent("var"):
		p.next()
		name := p.next()
		if name.kind != tokIdent {
			return nil, p.errf("expected variable name")
		}
		if _, err := p.expect(tokPunct, ":"); err != nil {
			return nil, err
		}
		t, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &VarStmt{Name: name.text, Type: t, Init: init, Line: line}, nil
	case p.atIdent("for"):
		p.next()
		v := p.next()
		if v.kind != tokIdent {
			return nil, p.errf("expected loop variable")
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		from, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokIdent, "to"); err != nil {
			return nil, err
		}
		to, err := p.expr()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Var: v.text, From: from, To: to, Body: body, Line: line}, nil
	case p.atIdent("if"):
		p.next()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.accept(tokIdent, "else") {
			els, err = p.block()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els, Line: line}, nil
	case p.atIdent("lock") || p.atIdent("unlock"):
		unlock := p.cur().text == "unlock"
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &LockStmt{Unlock: unlock, X: x, Line: line}, nil
	case p.atIdent("barrier"):
		p.next()
		sp := p.next()
		if sp.kind != tokIdent {
			return nil, p.errf("expected space name after barrier")
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &BarrierStmt{Space: sp.text, Line: line}, nil
	case p.atIdent("changeprotocol"):
		p.next()
		sp := p.next()
		if sp.kind != tokIdent {
			return nil, p.errf("expected space name")
		}
		if _, err := p.expect(tokPunct, ","); err != nil {
			return nil, err
		}
		proto := p.next()
		if proto.kind != tokString {
			return nil, p.errf("expected protocol string")
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &ChangeProtoStmt{Space: sp.text, Proto: proto.text, Line: line}, nil
	case p.atIdent("return"):
		p.next()
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{Value: v, Line: line}, nil
	case p.cur().kind == tokIdent:
		// assignment or expression statement
		name := p.next()
		switch {
		case p.accept(tokPunct, "["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "="); err != nil {
				return nil, err
			}
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
			return &AssignStmt{Name: name.text, Index: idx, Value: v, Line: line}, nil
		case p.accept(tokPunct, "="):
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
			return &AssignStmt{Name: name.text, Value: v, Line: line}, nil
		case p.accept(tokPunct, "("):
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
			return &ExprStmt{X: &CallExpr{Name: name.text, Args: args, Line: line}, Line: line}, nil
		default:
			return nil, p.errf("expected assignment or call after %q", name.text)
		}
	default:
		return nil, p.errf("unexpected token %q", p.cur().text)
	}
}

func (p *parser) callArgs() ([]Expr, error) {
	var args []Expr
	for !p.at(tokPunct, ")") {
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	return args, nil
}

// Expression parsing with precedence climbing.

var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
	"+": 4, "-": 4,
	"*": 5, "/": 5, "%": 5,
}

func (p *parser) expr() (Expr, error) { return p.binExpr(1) }

func (p *parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, ok := binPrec[t.text]
		if t.kind != tokPunct || !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Op: t.text, L: lhs, R: rhs, Line: t.line}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!") {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: t.text, X: x, Line: t.line}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokInt:
		return &IntLit{V: t.i, Line: t.line}, nil
	case tokFloat:
		return &FloatLit{V: t.f, Line: t.line}, nil
	case tokIdent:
		switch {
		case p.accept(tokPunct, "("):
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Name: t.text, Args: args, Line: t.line}, nil
		case p.accept(tokPunct, "["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: t.text, Index: idx, Line: t.line}, nil
		default:
			return &VarRef{Name: t.text, Line: t.line}, nil
		}
	case tokPunct:
		if t.text == "(" {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("line %d: unexpected token %q in expression", t.line, t.text)
}
