package lang

import (
	"strings"
	"sync"
	"testing"

	"github.com/acedsm/ace/internal/compiler"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/ir"
	"github.com/acedsm/ace/internal/vm"
	"github.com/acedsm/ace/proto"
)

const quickProgram = `
// Every processor allocates a region, broadcasts processor 0's id, and
// processor 0's value is read by all.
space data protocol "sc";

func main(me: int, procs: int): float {
    var r: region<data> = gmalloc(data, 64);
    if me == 0 {
        r[0] = 42.5;
    }
    var shared_r: region<data> = bcastid(0, r);
    barrier data;
    var v: float = shared_r[0];
    barrier data;
    return v;
}
`

// runMiniAce compiles and executes a MiniAce program SPMD, returning
// processor 0's result.
func runMiniAce(t *testing.T, src string, procs int, lvl compiler.Level) float64 {
	t.Helper()
	prog, spaces, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	compiled, err := compiler.Compile(prog, proto.NewRegistry().Decls(), lvl)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	cl, err := core.NewCluster(core.Options{Procs: procs, Registry: proto.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var mu sync.Mutex
	var out float64
	err = cl.Run(func(p *core.Proc) error {
		rtSpaces := make(map[int]*core.Space, len(spaces))
		for i, sd := range spaces {
			sp, err := p.NewSpace(sd.Protos[0])
			if err != nil {
				return err
			}
			rtSpaces[i] = sp
		}
		m := vm.New(p, compiled, rtSpaces)
		v, err := m.Call("main", ir.Int(int64(p.ID())), ir.Int(int64(p.Procs())))
		if err != nil {
			return err
		}
		if p.ID() == 0 {
			mu.Lock()
			out = v.F
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestQuickProgramAllLevels(t *testing.T) {
	for _, lvl := range []compiler.Level{compiler.LevelBase, compiler.LevelLI, compiler.LevelMC, compiler.LevelDC} {
		if got := runMiniAce(t, quickProgram, 4, lvl); got != 42.5 {
			t.Errorf("level %v: got %v, want 42.5", lvl, got)
		}
	}
}

func TestLoopsAndFunctions(t *testing.T) {
	src := `
space acc protocol "sc";

func fill(r: region<acc>, n: int): int {
    for i = 0 to n {
        r[i] = float(i) * 2.0;
    }
    return n;
}

func main(me: int, procs: int): float {
    var r: region<acc> = gmalloc(acc, 160);
    var n: int = fill(r, 20);
    var sum: float = 0.0;
    for i = 0 to n {
        sum = sum + r[i];
    }
    barrier acc;
    return sum;
}
`
	// sum of 2*i for i in [0,20) = 380
	if got := runMiniAce(t, src, 2, compiler.LevelDC); got != 380 {
		t.Errorf("got %v, want 380", got)
	}
}

func TestChangeProtocolStatement(t *testing.T) {
	src := `
space d protocol "sc", "update";

func main(me: int, procs: int): float {
    var r: region<d> = gmalloc(d, 8);
    if me == 0 {
        r[0] = 7.0;
    }
    var s: region<d> = bcastid(0, r);
    barrier d;
    changeprotocol d, "update";
    var v: float = s[0];
    barrier d;
    return v;
}
`
	if got := runMiniAce(t, src, 3, compiler.LevelBase); got != 7 {
		t.Errorf("got %v, want 7", got)
	}
}

func TestSharedPointerTable1(t *testing.T) {
	// Table 1: region-of-region types — a shared pointer stored in a
	// shared region, dereferenced through two levels.
	src := `
space outer protocol "sc";
space inner protocol "sc";

func main(me: int, procs: int): float {
    var box: region<outer> of region<inner> = gmalloc(outer, 8);
    var cell: region<inner> = gmalloc(inner, 8);
    if me == 0 {
        cell[0] = 3.25;
    }
    var sharedCell: region<inner> = bcastid(0, cell);
    box[0] = sharedCell;
    barrier outer;
    var p: region<inner> = box[0];
    var v: float = p[0];
    barrier inner;
    return v;
}
`
	if got := runMiniAce(t, src, 2, compiler.LevelDC); got != 3.25 {
		t.Errorf("got %v, want 3.25", got)
	}
}

func TestPointerArithmeticRejected(t *testing.T) {
	src := `
space d protocol "sc";
func main(me: int, procs: int): int {
    var r: region<d> = gmalloc(d, 8);
    var x: region<d> = r + 1;
    return 0;
}
`
	_, _, err := Compile(src)
	if err == nil || !strings.Contains(err.Error(), "arithmetic on shared pointers") {
		t.Fatalf("err = %v, want pointer-arithmetic rejection", err)
	}
}

func TestErrorCases(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"unknown space", `func main(me: int, procs: int): int { var r: region<zz> = gmalloc(zz, 8); return 0; }`, "unknown space"},
		{"undefined var", `space d protocol "sc"; func main(me: int, procs: int): int { x = 1; return 0; }`, "undefined variable"},
		{"bad index", `space d protocol "sc"; func main(me: int, procs: int): int { var x: int = 3; var y: float = x[0]; return 0; }`, "indexing non-region"},
		{"unknown func", `space d protocol "sc"; func main(me: int, procs: int): int { var x: int = nope(); return 0; }`, "unknown function"},
		{"dup space", `space d protocol "sc"; space d protocol "sc"; func main(me: int, procs: int): int { return 0; }`, "duplicate space"},
		{"type mismatch", `space d protocol "sc"; func main(me: int, procs: int): int { var x: int = 1.5; return x; }`, "cannot assign"},
		{"float index", `space d protocol "sc"; func main(me: int, procs: int): int { var r: region<d> = gmalloc(d, 8); var v: float = r[1.5]; return 0; }`, "index must be int"},
	}
	for _, tc := range cases {
		_, _, err := Compile(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		`space`,
		`func main( { }`,
		`space d protocol sc;`,
		`func main(me: int): int { for i = 0 { } }`,
		`@`,
		`func main(me: int): int { var x: int = "str"; }`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestCompilerReducesAnnotationsOnMiniAce(t *testing.T) {
	src := `
space local protocol "null";

func main(me: int, procs: int): float {
    var r: region<local> = gmalloc(local, 800);
    var sum: float = 0.0;
    for i = 0 to 100 {
        r[i] = float(i);
    }
    for i = 0 to 100 {
        sum = sum + r[i];
    }
    return sum;
}
`
	prog, _, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	decls := proto.NewRegistry().Decls()
	base, err := compiler.Compile(prog, decls, compiler.LevelBase)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := compiler.Compile(prog, decls, compiler.LevelDC)
	if err != nil {
		t.Fatal(err)
	}
	nb, no := total(compiler.AnnotationCounts(base)), total(compiler.AnnotationCounts(opt))
	if no >= nb {
		t.Errorf("static annotations not reduced: base=%d optimized=%d", nb, no)
	}
	// And the optimized program still computes the right answer.
	if got := runMiniAce(t, src, 2, compiler.LevelDC); got != 4950 {
		t.Errorf("got %v, want 4950", got)
	}
}

func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func TestLockUnlockStatements(t *testing.T) {
	src := `
space d protocol "sc";

func main(me: int, procs: int): float {
    var r: region<d> = gmalloc(d, 8);
    if me == 0 {
        r[0] = 0.0;
    }
    var s: region<d> = bcastid(0, r);
    barrier d;
    for i = 0 to 20 {
        lock s;
        s[0] = s[0] + 1.0;
        unlock s;
    }
    barrier d;
    return s[0];
}
`
	if got := runMiniAce(t, src, 4, compiler.LevelBase); got != 80 {
		t.Errorf("got %v, want 80", got)
	}
}

func TestLockNeedsRegion(t *testing.T) {
	src := `
space d protocol "sc";
func main(me: int, procs: int): int { var x: int = 1; lock x; return 0; }
`
	_, _, err := Compile(src)
	if err == nil || !strings.Contains(err.Error(), "lock/unlock needs a region") {
		t.Fatalf("err = %v", err)
	}
}
