package lang

import (
	"fmt"

	"github.com/acedsm/ace/internal/ir"
)

// CompileFile lowers a parsed MiniAce file to an IR program, performing
// the language's checks: region-valued expressions admit no arithmetic
// (Section 3.1's pointer restriction), region indexing requires a region
// operand, spaces must be declared, and all names must resolve. It also
// returns the space declarations in id order (the runner creates runtime
// spaces from them).
func CompileFile(f *File) (*ir.Program, []SpaceDecl, error) {
	spaceIDs := map[string]int{}
	spaceProtos := map[int][]string{}
	for i, sd := range f.Spaces {
		if len(sd.Protos) == 0 {
			return nil, nil, fmt.Errorf("line %d: space %s has no protocol", sd.Line, sd.Name)
		}
		if _, dup := spaceIDs[sd.Name]; dup {
			return nil, nil, fmt.Errorf("line %d: duplicate space %s", sd.Line, sd.Name)
		}
		spaceIDs[sd.Name] = i
		spaceProtos[i] = append([]string(nil), sd.Protos...)
	}
	prog := &ir.Program{Funcs: map[string]*ir.Func{}, SpaceProtos: spaceProtos}
	sigs := map[string]*FuncDecl{}
	for _, fd := range f.Funcs {
		if _, dup := sigs[fd.Name]; dup {
			return nil, nil, fmt.Errorf("line %d: duplicate function %s", fd.Line, fd.Name)
		}
		sigs[fd.Name] = fd
	}
	for _, fd := range f.Funcs {
		c := &fnCompiler{spaceIDs: spaceIDs, sigs: sigs}
		irf, err := c.compile(fd)
		if err != nil {
			return nil, nil, err
		}
		prog.Funcs[fd.Name] = irf
	}
	return prog, f.Spaces, nil
}

// Compile parses and lowers MiniAce source.
func Compile(src string) (*ir.Program, []SpaceDecl, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	return CompileFile(f)
}

// symbol is a scoped variable binding.
type symbol struct {
	slot int
	typ  TypeExpr
}

// fnCompiler lowers one function.
type fnCompiler struct {
	spaceIDs map[string]int
	sigs     map[string]*FuncDecl
	b        *ir.Builder
	scopes   []map[string]symbol
}

func (c *fnCompiler) compile(fd *FuncDecl) (*ir.Func, error) {
	params := make([]ir.Type, len(fd.Params))
	for i, p := range fd.Params {
		t, err := c.irType(p.Type)
		if err != nil {
			return nil, err
		}
		params[i] = t
	}
	c.b = ir.NewBuilder(fd.Name, params...)
	c.scopes = []map[string]symbol{{}}
	for i, p := range fd.Params {
		if err := c.bind(p.Name, symbol{slot: i, typ: p.Type}, p.Type.Line); err != nil {
			return nil, err
		}
	}
	if err := c.stmts(fd.Body); err != nil {
		return nil, err
	}
	return c.b.Func(), nil
}

// irType converts a source type to an IR type.
func (c *fnCompiler) irType(t TypeExpr) (ir.Type, error) {
	switch t.Name {
	case "int":
		return ir.Type{Kind: ir.KInt}, nil
	case "float":
		return ir.Type{Kind: ir.KFloat}, nil
	case "region":
		id, ok := c.spaceIDs[t.Space]
		if !ok {
			return ir.Type{}, fmt.Errorf("line %d: unknown space %q", t.Line, t.Space)
		}
		out := ir.Type{Kind: ir.KRegion, Spaces: []int{id}}
		if t.Elem != nil && t.Elem.Name == "region" {
			eid, ok := c.spaceIDs[t.Elem.Space]
			if !ok {
				return ir.Type{}, fmt.Errorf("line %d: unknown space %q", t.Elem.Line, t.Elem.Space)
			}
			out.ElemSpaces = []int{eid}
		}
		return out, nil
	}
	return ir.Type{}, fmt.Errorf("line %d: bad type %q", t.Line, t.Name)
}

func (c *fnCompiler) bind(name string, s symbol, line int) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return fmt.Errorf("line %d: %s redeclared", line, name)
	}
	top[name] = s
	return nil
}

func (c *fnCompiler) lookup(name string, line int) (symbol, error) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s, nil
		}
	}
	return symbol{}, fmt.Errorf("line %d: undefined variable %q", line, name)
}

func (c *fnCompiler) pushScope() { c.scopes = append(c.scopes, map[string]symbol{}) }
func (c *fnCompiler) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *fnCompiler) stmts(list []Stmt) error {
	for _, s := range list {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *fnCompiler) stmt(s Stmt) error {
	switch st := s.(type) {
	case *VarStmt:
		t, err := c.irType(st.Type)
		if err != nil {
			return err
		}
		op, vt, err := c.expr(st.Init)
		if err != nil {
			return err
		}
		if err := c.checkAssignable(st.Type, vt, st.Line); err != nil {
			return err
		}
		slot := c.b.LocalTyped(t)
		c.b.MoveTo(slot, op)
		return c.bind(st.Name, symbol{slot: slot, typ: st.Type}, st.Line)
	case *AssignStmt:
		sym, err := c.lookup(st.Name, st.Line)
		if err != nil {
			return err
		}
		vOp, vt, err := c.expr(st.Value)
		if err != nil {
			return err
		}
		if st.Index == nil {
			if err := c.checkAssignable(sym.typ, vt, st.Line); err != nil {
				return err
			}
			c.b.MoveTo(sym.slot, vOp)
			return nil
		}
		// Region slot store.
		if sym.typ.Name != "region" {
			return fmt.Errorf("line %d: indexing non-region %q", st.Line, st.Name)
		}
		iOp, it, err := c.expr(st.Index)
		if err != nil {
			return err
		}
		if it.Name != "int" {
			return fmt.Errorf("line %d: region index must be int", st.Line)
		}
		elem := regionElem(sym.typ)
		ek, err := c.elemKind(elem, st.Line)
		if err != nil {
			return err
		}
		if err := c.checkAssignable(elem, vt, st.Line); err != nil {
			return err
		}
		c.b.SharedStore(ek, ir.L(sym.slot), iOp, vOp)
		return nil
	case *ForStmt:
		from, ft, err := c.expr(st.From)
		if err != nil {
			return err
		}
		to, tt, err := c.expr(st.To)
		if err != nil {
			return err
		}
		if ft.Name != "int" || tt.Name != "int" {
			return fmt.Errorf("line %d: loop bounds must be int", st.Line)
		}
		v := c.b.Local(ir.KInt)
		c.pushScope()
		if err := c.bind(st.Var, symbol{slot: v, typ: TypeExpr{Name: "int"}}, st.Line); err != nil {
			return err
		}
		var bodyErr error
		c.b.Loop(v, from, to, func() { bodyErr = c.stmts(st.Body) })
		c.popScope()
		return bodyErr
	case *IfStmt:
		cond, ct, err := c.expr(st.Cond)
		if err != nil {
			return err
		}
		if ct.Name != "int" {
			return fmt.Errorf("line %d: condition must be int (boolean)", st.Line)
		}
		var thenErr, elseErr error
		var elseFn func()
		if st.Else != nil {
			elseFn = func() {
				c.pushScope()
				elseErr = c.stmts(st.Else)
				c.popScope()
			}
		}
		c.b.If(cond, func() {
			c.pushScope()
			thenErr = c.stmts(st.Then)
			c.popScope()
		}, elseFn)
		if thenErr != nil {
			return thenErr
		}
		return elseErr
	case *LockStmt:
		op, xt, err := c.expr(st.X)
		if err != nil {
			return err
		}
		if xt.Name != "region" {
			return fmt.Errorf("line %d: lock/unlock needs a region", st.Line)
		}
		if st.Unlock {
			c.b.Unlock(op)
		} else {
			c.b.Lock(op)
		}
		return nil
	case *BarrierStmt:
		id, ok := c.spaceIDs[st.Space]
		if !ok {
			return fmt.Errorf("line %d: unknown space %q", st.Line, st.Space)
		}
		c.b.Barrier(id)
		return nil
	case *ChangeProtoStmt:
		id, ok := c.spaceIDs[st.Space]
		if !ok {
			return fmt.Errorf("line %d: unknown space %q", st.Line, st.Space)
		}
		c.b.ChangeProto(id, st.Proto)
		return nil
	case *ReturnStmt:
		op, _, err := c.expr(st.Value)
		if err != nil {
			return err
		}
		c.b.Ret(op)
		return nil
	case *ExprStmt:
		_, _, err := c.expr(st.X)
		return err
	}
	return fmt.Errorf("line %d: unhandled statement", s.stmtLine())
}

// regionElem returns a region type's element type (float by default).
func regionElem(t TypeExpr) TypeExpr {
	if t.Elem != nil {
		return *t.Elem
	}
	return TypeExpr{Name: "float"}
}

func (c *fnCompiler) elemKind(t TypeExpr, line int) (ir.Kind, error) {
	switch t.Name {
	case "int":
		return ir.KInt, nil
	case "float":
		return ir.KFloat, nil
	case "region":
		return ir.KRegion, nil
	}
	return 0, fmt.Errorf("line %d: bad element type %q", line, t.Name)
}

// checkAssignable enforces kind compatibility (region types must match the
// same space-kind; ints and floats do not mix implicitly except int→float).
func (c *fnCompiler) checkAssignable(dst, src TypeExpr, line int) error {
	if dst.Name == src.Name {
		return nil
	}
	if dst.Name == "float" && src.Name == "int" {
		return nil // widened at use sites by the VM's arithmetic
	}
	return fmt.Errorf("line %d: cannot assign %s to %s", line, src.Name, dst.Name)
}

// expr compiles an expression, returning its operand and source type.
func (c *fnCompiler) expr(e Expr) (ir.Operand, TypeExpr, error) {
	switch ex := e.(type) {
	case *IntLit:
		return ir.CI(ex.V), TypeExpr{Name: "int"}, nil
	case *FloatLit:
		return ir.CF(ex.V), TypeExpr{Name: "float"}, nil
	case *VarRef:
		sym, err := c.lookup(ex.Name, ex.Line)
		if err != nil {
			return ir.Operand{}, TypeExpr{}, err
		}
		return ir.L(sym.slot), sym.typ, nil
	case *IndexExpr:
		sym, err := c.lookup(ex.Name, ex.Line)
		if err != nil {
			return ir.Operand{}, TypeExpr{}, err
		}
		if sym.typ.Name != "region" {
			return ir.Operand{}, TypeExpr{}, fmt.Errorf("line %d: indexing non-region %q", ex.Line, ex.Name)
		}
		iOp, it, err := c.expr(ex.Index)
		if err != nil {
			return ir.Operand{}, TypeExpr{}, err
		}
		if it.Name != "int" {
			return ir.Operand{}, TypeExpr{}, fmt.Errorf("line %d: region index must be int", ex.Line)
		}
		elem := regionElem(sym.typ)
		ek, err := c.elemKind(elem, ex.Line)
		if err != nil {
			return ir.Operand{}, TypeExpr{}, err
		}
		dst := c.b.SharedLoad(ek, ir.L(sym.slot), iOp)
		return ir.L(dst), elem, nil
	case *UnExpr:
		op, t, err := c.expr(ex.X)
		if err != nil {
			return ir.Operand{}, TypeExpr{}, err
		}
		if t.Name == "region" {
			return ir.Operand{}, TypeExpr{}, fmt.Errorf("line %d: no operators on region values", ex.Line)
		}
		switch ex.Op {
		case "-":
			k := ir.KInt
			if t.Name == "float" {
				k = ir.KFloat
			}
			return ir.L(c.b.Un(k, ir.Neg, op)), t, nil
		case "!":
			if t.Name != "int" {
				return ir.Operand{}, TypeExpr{}, fmt.Errorf("line %d: ! needs int", ex.Line)
			}
			return ir.L(c.b.Un(ir.KInt, ir.Not, op)), t, nil
		}
		return ir.Operand{}, TypeExpr{}, fmt.Errorf("line %d: bad unary %q", ex.Line, ex.Op)
	case *BinExpr:
		lOp, lt, err := c.expr(ex.L)
		if err != nil {
			return ir.Operand{}, TypeExpr{}, err
		}
		rOp, rt, err := c.expr(ex.R)
		if err != nil {
			return ir.Operand{}, TypeExpr{}, err
		}
		// Table 1 / Section 3.1: no arithmetic on pointers to shared data.
		if lt.Name == "region" || rt.Name == "region" {
			return ir.Operand{}, TypeExpr{}, fmt.Errorf("line %d: arithmetic on shared pointers is not allowed", ex.Line)
		}
		bin, isCmp, err := binOpFor(ex.Op, ex.Line)
		if err != nil {
			return ir.Operand{}, TypeExpr{}, err
		}
		resT := TypeExpr{Name: "int"}
		k := ir.KInt
		if !isCmp && (lt.Name == "float" || rt.Name == "float") {
			resT = TypeExpr{Name: "float"}
			k = ir.KFloat
		}
		// Normalize > and >= by swapping.
		if ex.Op == ">" {
			lOp, rOp = rOp, lOp
		}
		if ex.Op == ">=" {
			lOp, rOp = rOp, lOp
		}
		return ir.L(c.b.Bin(k, bin, lOp, rOp)), resT, nil
	case *CallExpr:
		return c.call(ex)
	}
	return ir.Operand{}, TypeExpr{}, fmt.Errorf("unhandled expression")
}

func binOpFor(op string, line int) (ir.BinOp, bool, error) {
	switch op {
	case "+":
		return ir.Add, false, nil
	case "-":
		return ir.Sub, false, nil
	case "*":
		return ir.Mul, false, nil
	case "/":
		return ir.Div, false, nil
	case "%":
		return ir.Mod, false, nil
	case "<", ">":
		return ir.Lt, true, nil
	case "<=", ">=":
		return ir.Le, true, nil
	case "==":
		return ir.Eq, true, nil
	case "!=":
		return ir.Ne, true, nil
	case "&&":
		return ir.And, true, nil
	case "||":
		return ir.Or, true, nil
	}
	return 0, false, fmt.Errorf("line %d: bad operator %q", line, op)
}

// call compiles builtins and user function calls.
func (c *fnCompiler) call(ex *CallExpr) (ir.Operand, TypeExpr, error) {
	switch ex.Name {
	case "gmalloc":
		if len(ex.Args) != 2 {
			return ir.Operand{}, TypeExpr{}, fmt.Errorf("line %d: gmalloc(space, size)", ex.Line)
		}
		ref, ok := ex.Args[0].(*VarRef)
		if !ok {
			return ir.Operand{}, TypeExpr{}, fmt.Errorf("line %d: gmalloc needs a space name", ex.Line)
		}
		id, ok := c.spaceIDs[ref.Name]
		if !ok {
			return ir.Operand{}, TypeExpr{}, fmt.Errorf("line %d: unknown space %q", ex.Line, ref.Name)
		}
		size, st, err := c.expr(ex.Args[1])
		if err != nil {
			return ir.Operand{}, TypeExpr{}, err
		}
		if st.Name != "int" {
			return ir.Operand{}, TypeExpr{}, fmt.Errorf("line %d: gmalloc size must be int", ex.Line)
		}
		dst := c.b.GMalloc(id, size)
		return ir.L(dst), TypeExpr{Name: "region", Space: ref.Name}, nil
	case "bcastid":
		if len(ex.Args) != 2 {
			return ir.Operand{}, TypeExpr{}, fmt.Errorf("line %d: bcastid(root, id)", ex.Line)
		}
		root, rt, err := c.expr(ex.Args[0])
		if err != nil {
			return ir.Operand{}, TypeExpr{}, err
		}
		if rt.Name != "int" {
			return ir.Operand{}, TypeExpr{}, fmt.Errorf("line %d: bcastid root must be int", ex.Line)
		}
		id, it, err := c.expr(ex.Args[1])
		if err != nil {
			return ir.Operand{}, TypeExpr{}, err
		}
		if it.Name != "region" {
			return ir.Operand{}, TypeExpr{}, fmt.Errorf("line %d: bcastid needs a region", ex.Line)
		}
		t, err := c.irType(it)
		if err != nil {
			return ir.Operand{}, TypeExpr{}, err
		}
		dst := c.b.BcastID(t, root, id)
		return ir.L(dst), it, nil
	case "sqrt":
		if len(ex.Args) != 1 {
			return ir.Operand{}, TypeExpr{}, fmt.Errorf("line %d: sqrt(x)", ex.Line)
		}
		x, _, err := c.expr(ex.Args[0])
		if err != nil {
			return ir.Operand{}, TypeExpr{}, err
		}
		return ir.L(c.b.Un(ir.KFloat, ir.Sqrt, x)), TypeExpr{Name: "float"}, nil
	case "float":
		if len(ex.Args) != 1 {
			return ir.Operand{}, TypeExpr{}, fmt.Errorf("line %d: float(x)", ex.Line)
		}
		x, _, err := c.expr(ex.Args[0])
		if err != nil {
			return ir.Operand{}, TypeExpr{}, err
		}
		return ir.L(c.b.Un(ir.KFloat, ir.IntToFloat, x)), TypeExpr{Name: "float"}, nil
	default:
		fd, ok := c.sigs[ex.Name]
		if !ok {
			return ir.Operand{}, TypeExpr{}, fmt.Errorf("line %d: unknown function %q", ex.Line, ex.Name)
		}
		if len(ex.Args) != len(fd.Params) {
			return ir.Operand{}, TypeExpr{}, fmt.Errorf("line %d: %s expects %d args", ex.Line, ex.Name, len(fd.Params))
		}
		args := make([]ir.Operand, len(ex.Args))
		for i, a := range ex.Args {
			op, at, err := c.expr(a)
			if err != nil {
				return ir.Operand{}, TypeExpr{}, err
			}
			if err := c.checkAssignable(fd.Params[i].Type, at, ex.Line); err != nil {
				return ir.Operand{}, TypeExpr{}, err
			}
			args[i] = op
		}
		ret := TypeExpr{Name: "int"}
		retKind := ir.KInt
		if fd.Ret != nil {
			ret = *fd.Ret
			var err error
			retKind, err = c.elemKind(ret, ex.Line)
			if err != nil {
				return ir.Operand{}, TypeExpr{}, err
			}
		}
		dst := c.b.Local(retKind)
		c.b.Call(dst, ex.Name, args...)
		return ir.L(dst), ret, nil
	}
}
