// Package lang implements MiniAce, the front end of the Ace compiler: a
// small C-like language with the paper's linguistic mechanisms — spaces
// bound to protocols, shared regions as first-class typed values (Table 1),
// region indexing as the only access path (no arithmetic on pointers to
// shared data, Section 3.1), barriers on spaces, and ChangeProtocol.
//
// A MiniAce program:
//
//	space data protocol "sc", "update";
//
//	func main(me: int, procs: int): float {
//	    var r: region<data> = gmalloc(data, 64);
//	    r[0] = 3.5;
//	    barrier data;
//	    changeprotocol data, "update";
//	    return r[0];
//	}
//
// The front end produces package ir programs; package compiler optimizes
// them and package vm executes them (one SPMD instance per processor).
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokPunct // single/double character punctuation, in text
)

type token struct {
	kind tokKind
	text string
	i    int64
	f    float64
	line int
}

// lexer tokenizes MiniAce source.
type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex tokenizes the whole input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return l.scan()
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
}

func (l *lexer) scan() (token, error) {
	c := l.src[l.pos]
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		start := l.pos
		for l.pos < len(l.src) && (isIdentChar(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}, nil
	case unicode.IsDigit(rune(c)):
		start := l.pos
		isFloat := false
		for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '.') {
			if l.src[l.pos] == '.' {
				isFloat = true
			}
			l.pos++
		}
		text := l.src[start:l.pos]
		if isFloat {
			var f float64
			if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
				return token{}, l.errf("bad float literal %q", text)
			}
			return token{kind: tokFloat, f: f, text: text, line: l.line}, nil
		}
		var i int64
		if _, err := fmt.Sscanf(text, "%d", &i); err != nil {
			return token{}, l.errf("bad int literal %q", text)
		}
		return token{kind: tokInt, i: i, text: text, line: l.line}, nil
	case c == '"':
		end := strings.IndexByte(l.src[l.pos+1:], '"')
		if end < 0 {
			return token{}, l.errf("unterminated string")
		}
		text := l.src[l.pos+1 : l.pos+1+end]
		l.pos += end + 2
		return token{kind: tokString, text: text, line: l.line}, nil
	default:
		// Two-character operators first.
		for _, op := range []string{"==", "!=", "<=", ">=", "&&", "||"} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += 2
				return token{kind: tokPunct, text: op, line: l.line}, nil
			}
		}
		if strings.ContainsRune("+-*/%<>=!(){}[],;:", rune(c)) {
			l.pos++
			return token{kind: tokPunct, text: string(c), line: l.line}, nil
		}
		return token{}, l.errf("unexpected character %q", c)
	}
}

func isIdentChar(c byte) bool {
	return unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_'
}
