package bench

import (
	"testing"

	"github.com/acedsm/ace/internal/apps/apputil"
	"github.com/acedsm/ace/internal/apps/bsc"
	"github.com/acedsm/ace/internal/apps/tsp"
	"github.com/acedsm/ace/internal/rtiface"
)

func TestFig7aSmall(t *testing.T) {
	w := WorkloadsFor(ScaleSmall, 4)
	rows, err := Fig7a(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Checksum {
			t.Errorf("%s: checksum mismatch between runtimes: %v vs %v", r.App, r.Base.Checksum, r.Opt.Checksum)
		}
		if r.Base.Msgs == 0 || r.Opt.Msgs == 0 {
			t.Errorf("%s: zero traffic recorded", r.App)
		}
	}
	t.Logf("\n%s", FormatRows(rows, "crl", "ace"))
}

func TestFig7bSmall(t *testing.T) {
	w := WorkloadsFor(ScaleSmall, 4)
	rows, err := Fig7b(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Checksum {
			t.Errorf("%s: checksum mismatch sc vs custom: %v vs %v", r.App, r.Base.Checksum, r.Opt.Checksum)
		}
	}
	t.Logf("\n%s", FormatRows(rows, "sc", "custom"))
}

// TestFig7bTrafficShape checks the message-count shape that drives the
// paper's Figure 7b at a deterministic level (wall times are noisy in unit
// tests): the update-family protocols must cut traffic for em3d, and the
// atomic counter must cut traffic for tsp.
func TestFig7bTrafficShape(t *testing.T) {
	w := WorkloadsFor(ScaleDefault, 4)
	rows, err := Fig7b(w)
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]Row{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	if r := byApp["em3d"]; r.Opt.Msgs >= r.Base.Msgs {
		t.Errorf("em3d: staticupdate used %d msgs, sc used %d; expected fewer", r.Opt.Msgs, r.Base.Msgs)
	}
	if r := byApp["water"]; r.Opt.Msgs >= r.Base.Msgs {
		t.Errorf("water: pipeline/null used %d msgs, sc used %d; expected fewer", r.Opt.Msgs, r.Base.Msgs)
	}
	// TSP's atomic-counter win is a round-trip/latency effect, not a raw
	// message-count one (acquire+release is four messages either way);
	// assert only that the custom run stays correct and bounded.
	if r := byApp["tsp"]; r.Opt.Msgs == 0 {
		t.Errorf("tsp: no traffic recorded for atomic counter run")
	}
}

func TestTSPMatchesSequential(t *testing.T) {
	cfg := tsp.DefaultConfig()
	cfg.Cities = 9
	want := tsp.SequentialBest(cfg)
	res, err := RunAce(4, func(rt rtiface.RT) (apputil.Result, error) { return tsp.Run(rt, cfg) })
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.Checksum) != want {
		t.Fatalf("parallel best %v, sequential %d", res.Checksum, want)
	}
}

func TestBSCMatchesSequential(t *testing.T) {
	cfg := bsc.Config{Blocks: 6, BlockSize: 8, Bandwidth: 3, Seed: 3}
	want := bsc.SequentialFactor(cfg)
	res, err := RunAce(3, func(rt rtiface.RT) (apputil.Result, error) { return bsc.Run(rt, cfg) })
	if err != nil {
		t.Fatal(err)
	}
	diff := res.Checksum - want
	if diff < 0 {
		diff = -diff
	}
	if diff > 1e-6 {
		t.Fatalf("parallel checksum %v, sequential %v", res.Checksum, want)
	}
	// And under the homewrite protocol.
	cfg.Proto = "homewrite"
	res2, err := RunAce(3, func(rt rtiface.RT) (apputil.Result, error) { return bsc.Run(rt, cfg) })
	if err != nil {
		t.Fatal(err)
	}
	if d := res2.Checksum - want; d > 1e-6 || d < -1e-6 {
		t.Fatalf("homewrite checksum %v, sequential %v", res2.Checksum, want)
	}
}
