// Adaptive-convergence experiment: every Figure-7b benchmark is started
// on the single sequentially consistent protocol with the online
// protocol controller enabled, and its throughput is compared against
// the same benchmark under sc (controller off) and under the paper's
// hand-picked protocols. The question the artifact answers is the
// adaptive-coherence one: how much of the hand-tuning win does the
// runtime recover with no application changes at all? Feeds the
// committed BENCH_adapt.json artifact (`acebench -exp adapt`); see
// EXPERIMENTS.md.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/stats"
)

// AdaptResult is one benchmark's outcome in BENCH_adapt.json.
type AdaptResult struct {
	App          string  `json:"app"`
	SCSeconds    float64 `json:"sc_seconds"`    // controller off, sc everywhere
	HandSeconds  float64 `json:"hand_seconds"`  // hand-picked protocols (fig 7b)
	AdaptSeconds float64 `json:"adapt_seconds"` // started on sc, controller on
	// SpeedupVsSC is sc time / adaptive time: > 1 means adaptation beat
	// the untuned baseline it started from.
	SpeedupVsSC float64 `json:"speedup_vs_sc"`
	// FracOfHand is hand time / adaptive time: 1.0 means the controller
	// fully recovered the hand-tuned throughput, 0.9 means it got within
	// 10% of it.
	FracOfHand float64 `json:"frac_of_hand"`
	// Switches is the total number of controller-initiated protocol
	// switches across the run's spaces.
	Switches uint64 `json:"switches"`
	// AdaptedTo lists "protocol(pattern)" for every space the controller
	// switched, from Metrics.Adapt.
	AdaptedTo []string `json:"adapted_to,omitempty"`
	// HandReachable marks benchmarks whose hand tuning lies inside the
	// controller's target set. tsp's atomic counter protocol and water's
	// phase-switching schedule are hand tunings the controller cannot
	// express, so FracOfHand < 1 is expected there, not a shortfall.
	HandReachable bool `json:"hand_reachable"`
	// ChecksumOK: the adaptive run computed the same answer as sc.
	ChecksumOK bool `json:"checksum_ok"`
	// Cluster-wide message totals, for the traffic side of the story.
	SCMsgs    uint64 `json:"sc_msgs"`
	HandMsgs  uint64 `json:"hand_msgs"`
	AdaptMsgs uint64 `json:"adapt_msgs"`
}

// AdaptReport is the BENCH_adapt.json document.
type AdaptReport struct {
	Generated  string        `json:"generated_by"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Procs      int           `json:"procs"`
	Results    []AdaptResult `json:"results"`
}

// adaptBenchConfig tunes the controller for benchmark-length runs: the
// workloads at default scale run tens of barriers, so epochs are short
// and switching is eager; MinOps keeps idle phases from feeding the
// streak.
func adaptBenchConfig() *core.AdaptConfig {
	return &core.AdaptConfig{EpochBarriers: 2, Hysteresis: 2, Cooldown: 1, MinOps: 8}
}

// adaptHandReachable: whether the fig-7b hand tuning for an app is a
// configuration the controller could in principle install (every tuned
// space's protocol is in the pattern target set and space-wide). See
// AdaptResult.HandReachable.
var adaptHandReachable = map[string]bool{
	"barnes-hut": true,  // update
	"bsc":        true,  // homewrite
	"em3d":       true,  // staticupdate
	"tsp":        false, // atomic counter: not a pattern target
	"water":      false, // phase-switching schedule: not expressible
}

// AdaptRows measures the adaptive-convergence comparison, best time of
// `runs` per variant (controller statistics are taken from the adaptive
// run whose time is kept).
func AdaptRows(w Workloads, runs int) ([]AdaptResult, error) {
	if runs <= 0 {
		runs = 1
	}
	sc := apps(w, false)
	hand := apps(w, true)
	var out []AdaptResult
	for i := range sc {
		name := sc[i].name
		scRes, err := bestResult(runs, func() (Observed, error) {
			r, err := RunAce(w.Procs, sc[i].fn)
			return Observed{Result: r}, err
		})
		if err != nil {
			return nil, fmt.Errorf("adapt %s (sc): %w", name, err)
		}
		handRes, err := bestResult(runs, func() (Observed, error) {
			r, err := RunAce(w.Procs, hand[i].fn)
			return Observed{Result: r}, err
		})
		if err != nil {
			return nil, fmt.Errorf("adapt %s (hand): %w", name, err)
		}
		adRes, err := bestResult(runs, func() (Observed, error) {
			return RunAceAdaptive(w.Procs, sc[i].fn, adaptBenchConfig())
		})
		if err != nil {
			return nil, fmt.Errorf("adapt %s (adaptive): %w", name, err)
		}
		var switches uint64
		var adaptedTo []string
		for _, a := range adRes.Metrics.Adapt {
			switches += a.Switches
			if a.Switches > 0 {
				adaptedTo = append(adaptedTo, fmt.Sprintf("%s(%s)", a.Protocol, a.Pattern))
			}
		}
		out = append(out, AdaptResult{
			App:           name,
			SCSeconds:     timeOf(scRes.Result).Seconds(),
			HandSeconds:   timeOf(handRes.Result).Seconds(),
			AdaptSeconds:  timeOf(adRes.Result).Seconds(),
			SpeedupVsSC:   ratio(timeOf(scRes.Result), timeOf(adRes.Result)),
			FracOfHand:    ratio(timeOf(handRes.Result), timeOf(adRes.Result)),
			Switches:      switches,
			AdaptedTo:     adaptedTo,
			HandReachable: adaptHandReachable[name],
			ChecksumOK:    checksumsMatch(scRes.Result.Checksum, adRes.Result.Checksum),
			SCMsgs:        scRes.Result.Msgs,
			HandMsgs:      handRes.Result.Msgs,
			AdaptMsgs:     adRes.Result.Msgs,
		})
	}
	return out, nil
}

// bestResult keeps the run with the lowest comparable time.
func bestResult(runs int, f func() (Observed, error)) (Observed, error) {
	var best Observed
	for i := 0; i < runs; i++ {
		o, err := f()
		if err != nil {
			return Observed{}, err
		}
		if i == 0 || timeOf(o.Result) < timeOf(best.Result) {
			best = o
		}
	}
	return best, nil
}

// WriteAdaptReport runs AdaptRows and writes the JSON document.
func WriteAdaptReport(w io.Writer, wl Workloads, runs int) (AdaptReport, error) {
	res, err := AdaptRows(wl, runs)
	if err != nil {
		return AdaptReport{}, err
	}
	rep := AdaptReport{
		Generated:  "acebench -exp adapt",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Procs:      wl.Procs,
		Results:    res,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return rep, enc.Encode(rep)
}

// FormatAdapt renders adaptive-convergence results as a table.
func FormatAdapt(res []AdaptResult) string {
	t := stats.NewTable("benchmark", "sc", "hand", "adaptive",
		"vs sc", "of hand", "switches", "adapted to", "adapt msgs", "checksum")
	for _, r := range res {
		check := "ok"
		if !r.ChecksumOK {
			check = "MISMATCH"
		}
		adapted := "-"
		if len(r.AdaptedTo) > 0 {
			adapted = ""
			for i, a := range r.AdaptedTo {
				if i > 0 {
					adapted += " "
				}
				adapted += a
			}
		}
		ofHand := fmt.Sprintf("%.2f", r.FracOfHand)
		if !r.HandReachable {
			ofHand += "*"
		}
		t.AddRow(r.App,
			secs(r.SCSeconds), secs(r.HandSeconds), secs(r.AdaptSeconds),
			r.SpeedupVsSC, ofHand, r.Switches, adapted,
			fmt.Sprintf("%d (sc %d, hand %d)", r.AdaptMsgs, r.SCMsgs, r.HandMsgs), check)
	}
	return t.String() + "(* hand tuning outside the controller's target set: atomic counters, phase schedules)\n"
}

func secs(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
