//go:build unix

package bench

import "syscall"

// raiseNoFile lifts the soft RLIMIT_NOFILE toward need (capped at the
// hard limit) so the gate benchmark can hold both ends of tens of
// thousands of loopback sockets in one process. Best effort: a failure
// just leaves the limit where it was, and the benchmark reports dial
// errors if it then runs out.
func raiseNoFile(need uint64) {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return
	}
	if lim.Cur >= need {
		return
	}
	want := need
	if want > lim.Max {
		want = lim.Max
	}
	lim.Cur = want
	syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim)
}
