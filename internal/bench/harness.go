// Package bench is the experiment harness: it runs the five benchmarks on
// the Ace and CRL runtimes under the protocol configurations of the
// paper's evaluation and regenerates Figure 7a, Figure 7b and Table 4.
package bench

import (
	"fmt"
	"sync"

	"github.com/acedsm/ace/internal/apps/apputil"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/crl"
	"github.com/acedsm/ace/internal/rtiface"
	"github.com/acedsm/ace/internal/trace"
	"github.com/acedsm/ace/proto"
)

// AppFunc runs one benchmark on a runtime-neutral interface.
type AppFunc func(rt rtiface.RT) (apputil.Result, error)

// Observed is the outcome of an instrumented run: the benchmark result
// plus the cluster-wide observability snapshot and (when the trace
// config retained events) the event log.
type Observed struct {
	Result  apputil.Result
	Metrics trace.Metrics
	Events  []trace.Event
}

// RunAce executes app on a fresh Ace cluster of procs processors and
// returns processor 0's result with cluster traffic totals filled in.
func RunAce(procs int, app AppFunc) (apputil.Result, error) {
	o, err := RunAceObserved(procs, app, nil)
	return o.Result, err
}

// RunAceObserved executes app on a fresh Ace cluster with the given
// trace configuration (nil runs uninstrumented) and returns processor
// 0's result together with the cluster metrics and retained events.
func RunAceObserved(procs int, app AppFunc, cfg *trace.Config) (Observed, error) {
	return runAceCluster(core.Options{Procs: procs, Registry: proto.NewRegistry(), Trace: cfg}, app)
}

// RunAceAdaptive executes app on a fresh Ace cluster with the online
// protocol controller enabled (which forces metrics on, so the returned
// snapshot carries Metrics.Adapt — the controller's switching record).
func RunAceAdaptive(procs int, app AppFunc, cfg *core.AdaptConfig) (Observed, error) {
	return runAceCluster(core.Options{Procs: procs, Registry: proto.NewRegistry(), Adapt: cfg}, app)
}

func runAceCluster(opts core.Options, app AppFunc) (Observed, error) {
	cl, err := core.NewCluster(opts)
	if err != nil {
		return Observed{}, err
	}
	defer cl.Close()
	var mu sync.Mutex
	var o Observed
	err = cl.Run(func(p *core.Proc) error {
		r, err := app(rtiface.NewAce(p))
		if err != nil {
			return fmt.Errorf("proc %d: %w", p.ID(), err)
		}
		if p.ID() == 0 {
			mu.Lock()
			o.Result = r
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return o, err
	}
	o.Metrics = cl.Metrics()
	o.Events = cl.TraceEvents()
	o.Result.Msgs = o.Metrics.Net.MsgsSent
	o.Result.Bytes = o.Metrics.Net.BytesSent
	return o, nil
}

// RunCRL executes app on a fresh CRL cluster of procs processors.
func RunCRL(procs int, app AppFunc) (apputil.Result, error) {
	cl, err := crl.NewCluster(crl.Options{Procs: procs})
	if err != nil {
		return apputil.Result{}, err
	}
	defer cl.Close()
	var mu sync.Mutex
	var res apputil.Result
	err = cl.Run(func(p *crl.Proc) error {
		r, err := app(rtiface.NewCRL(p))
		if err != nil {
			return fmt.Errorf("proc %d: %w", p.ID(), err)
		}
		if p.ID() == 0 {
			mu.Lock()
			res = r
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	m := cl.Metrics()
	res.Msgs = m.Net.MsgsSent
	res.Bytes = m.Net.BytesSent
	return res, nil
}
