// Package bench is the experiment harness: it runs the five benchmarks on
// the Ace and CRL runtimes under the protocol configurations of the
// paper's evaluation and regenerates Figure 7a, Figure 7b and Table 4.
package bench

import (
	"fmt"
	"sync"

	"github.com/acedsm/ace/internal/apps/apputil"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/crl"
	"github.com/acedsm/ace/internal/rtiface"
	"github.com/acedsm/ace/proto"
)

// AppFunc runs one benchmark on a runtime-neutral interface.
type AppFunc func(rt rtiface.RT) (apputil.Result, error)

// RunAce executes app on a fresh Ace cluster of procs processors and
// returns processor 0's result with cluster traffic totals filled in.
func RunAce(procs int, app AppFunc) (apputil.Result, error) {
	cl, err := core.NewCluster(core.Options{Procs: procs, Registry: proto.NewRegistry()})
	if err != nil {
		return apputil.Result{}, err
	}
	defer cl.Close()
	var mu sync.Mutex
	var res apputil.Result
	err = cl.Run(func(p *core.Proc) error {
		r, err := app(rtiface.NewAce(p))
		if err != nil {
			return fmt.Errorf("proc %d: %w", p.ID(), err)
		}
		if p.ID() == 0 {
			mu.Lock()
			res = r
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	snap := cl.NetSnapshot()
	res.Msgs = snap.MsgsSent
	res.Bytes = snap.BytesSent
	return res, nil
}

// RunCRL executes app on a fresh CRL cluster of procs processors.
func RunCRL(procs int, app AppFunc) (apputil.Result, error) {
	cl, err := crl.NewCluster(crl.Options{Procs: procs})
	if err != nil {
		return apputil.Result{}, err
	}
	defer cl.Close()
	var mu sync.Mutex
	var res apputil.Result
	err = cl.Run(func(p *crl.Proc) error {
		r, err := app(rtiface.NewCRL(p))
		if err != nil {
			return fmt.Errorf("proc %d: %w", p.ID(), err)
		}
		if p.ID() == 0 {
			mu.Lock()
			res = r
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	snap := cl.NetSnapshot()
	res.Msgs = snap.MsgsSent
	res.Bytes = snap.BytesSent
	return res, nil
}
