package bench

import (
	"testing"

	"github.com/acedsm/ace/internal/table4"
)

// TestTable4SmallAllKernels runs the whole Table 4 experiment at a small
// scale: every kernel at every optimization level plus the hand version,
// with checksum agreement enforced by RunTable4 itself.
func TestTable4SmallAllKernels(t *testing.T) {
	cfg := table4.Config{
		N: 48, Degree: 4, Steps: 3,
		Blocks: 6, BlockSize: 6, Band: 2,
		Jobs: 12, Cities: 6,
	}
	results, err := RunTable4(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d kernels", len(results))
	}
	for name, rows := range results {
		if len(rows) != 5 {
			t.Fatalf("%s: %d rows", name, len(rows))
		}
		// Executed annotation calls must decrease monotonically (weakly)
		// through base → LI → LI+MC, and LI+MC+DC must beat LI.
		base, li, mc, dc := rows[0].Calls, rows[1].Calls, rows[2].Calls, rows[3].Calls
		if li > base || mc > li {
			t.Errorf("%s: calls not monotone: base=%d li=%d mc=%d", name, base, li, mc)
		}
		if dc > mc {
			t.Errorf("%s: DC increased executed calls: mc=%d dc=%d", name, mc, dc)
		}
		if base == 0 {
			t.Errorf("%s: no annotation calls recorded", name)
		}
	}
	// Per-benchmark shape assertions from the paper's Table 4:
	// LI's largest effect is BSC; MC matters most for barnes-hut and
	// water; DC removes calls for em3d (null handlers in the kernel).
	ratio := func(name string, a, b int) float64 {
		return float64(results[name][a].Calls) / float64(max(results[name][b].Calls, 1))
	}
	if r := ratio("bsc", 0, 1); r < 10 {
		t.Errorf("bsc: LI should eliminate most calls (base/LI = %.1f)", r)
	}
	if r := ratio("barnes-hut", 1, 2); r < 2 {
		t.Errorf("barnes-hut: MC should collapse sections (LI/MC = %.1f)", r)
	}
	if r := ratio("water", 1, 2); r < 1.5 {
		t.Errorf("water: MC should collapse sections (LI/MC = %.1f)", r)
	}
	if results["em3d"][3].Calls >= results["em3d"][2].Calls {
		t.Errorf("em3d: DC should delete null-handler calls: mc=%d dc=%d",
			results["em3d"][2].Calls, results["em3d"][3].Calls)
	}
	// TSP's counter and bound calls are non-optimizable and must survive
	// every level.
	if results["tsp"][3].Calls == 0 {
		t.Errorf("tsp: non-optimizable calls must survive DC")
	}
}
