package bench

// GOMAXPROCS scaling harness: the same throughput-shaped measurements
// the fabric and bracket suites run, swept over GOMAXPROCS ∈ {1,2,4,8}
// with the dispatch-lane count matched to the core count. The sweep
// answers the multicore question the per-measurement artifacts cannot:
// does giving the runtime more hardware contexts (and sharding each
// node's dispatch across them) buy raw speed, and where does it stop?
// GOMAXPROCS=1 rows double as the embedded baseline — the speedup
// column of every other row is relative to the 1-core row of the same
// measurement. The same sweep backs the committed BENCH_scale.json
// artifact (`acebench -exp scale` or `make bench`). See DESIGN.md §11
// for the measured curves and their interpretation on hosts with fewer
// hardware contexts than the sweep requests.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/tcpnet"
	"github.com/acedsm/ace/proto"
)

// ScalePoints is the swept GOMAXPROCS schedule. Values above the host's
// core count are still measured — oversubscription is part of the
// curve, not an error — and the report records the host's capacity so a
// flat tail can be told apart from a scaling failure.
var ScalePoints = []int{1, 2, 4, 8}

// ScaleRow is one measurement at one GOMAXPROCS setting, JSON-shaped
// for BENCH_scale.json.
type ScaleRow struct {
	Name       string  `json:"name"` // e.g. "throughput/tcp", "em3d"
	GoMaxProcs int     `json:"gomaxprocs"`
	Lanes      int     `json:"lanes"` // dispatch lanes per node
	Ops        int     `json:"ops"`   // messages, bracket pairs, or em3d runs
	Seconds    float64 `json:"seconds"`
	PerSec     float64 `json:"per_sec"`
	// SpeedupVs1 is PerSec over the GOMAXPROCS=1 row of the same
	// measurement — those rows are the sweep's embedded baseline and
	// carry 1.0 here.
	SpeedupVs1 float64 `json:"speedup_vs_1core"`
}

// ScaleReport is the BENCH_scale.json document.
type ScaleReport struct {
	Generated string     `json:"generated_by"`
	HostCPUs  int        `json:"host_cpus"` // runtime.NumCPU at sweep time
	Points    []int      `json:"gomaxprocs_points"`
	Procs     int        `json:"procs"`
	Results   []ScaleRow `json:"results"`
}

// newScaleFabric builds an n-node network on the named transport with
// the given dispatch-lane count (clamped to n by the transports).
func newScaleFabric(transport string, n, lanes int) (amnet.Network, error) {
	switch transport {
	case "chan":
		return amnet.NewChanNetwork(amnet.ChanConfig{Nodes: n, Lanes: lanes})
	case "tcp":
		cfg := tcpnet.Loopback(n)
		cfg.Lanes = lanes
		return tcpnet.New(cfg)
	default:
		return nil, fmt.Errorf("bench: unknown transport %q", transport)
	}
}

// measureScalePoint runs the suite once at the current GOMAXPROCS
// setting: many-to-one fabric throughput on both transports (the
// pattern where sharded dispatch can actually use a second core — one
// pump per sender lane), the bracket hit/churn rate (application thread
// vs saturated pump), and the em3d application benchmark end to end.
func measureScalePoint(w Workloads, gmp, lanes, perSender, payload int) ([]ScaleRow, error) {
	var out []ScaleRow
	mk := func(name string, ops int, el time.Duration) ScaleRow {
		return ScaleRow{
			Name: name, GoMaxProcs: gmp, Lanes: lanes, Ops: ops,
			Seconds: el.Seconds(),
			PerSec:  float64(ops) / el.Seconds(),
		}
	}

	for _, tr := range []string{"chan", "tcp"} {
		tr := tr
		el, err := bestOf(
			func() (amnet.Network, error) { return newScaleFabric(tr, w.Procs, lanes) },
			func(nw amnet.Network) (time.Duration, error) { return FabricThroughput(nw, perSender, payload) },
		)
		if err != nil {
			return nil, fmt.Errorf("%s throughput: %w", tr, err)
		}
		out = append(out, mk("throughput/"+tr, perSender*(w.Procs-1), el))
	}

	// Bracket hit/churn: fixed-time, so the median of churnReps (cf.
	// MeasureBracket — the interference is the point, a best-of pick
	// would reward the run whose scheduling starved the flood).
	type churnRep struct {
		hits int
		el   time.Duration
	}
	reps := make([]churnRep, 0, churnReps)
	for i := 0; i < churnReps; i++ {
		h, el, _, _, err := bracketHitChurnLanes(w.Procs, churnWindow, lanes)
		if err != nil {
			return nil, fmt.Errorf("hit/churn: %w", err)
		}
		reps = append(reps, churnRep{h, el})
	}
	sort.Slice(reps, func(i, j int) bool {
		return float64(reps[i].hits)/reps[i].el.Seconds() < float64(reps[j].hits)/reps[j].el.Seconds()
	})
	med := reps[len(reps)/2]
	out = append(out, mk("bracket-hit/churn", med.hits, med.el))

	// em3d end to end: the application whose 16 KB remote payloads
	// exercise the writev path and whose per-step update fan-out
	// exercises sharded dispatch.
	fn, ok := App(w, "em3d", false)
	if !ok {
		return nil, fmt.Errorf("em3d: unknown app")
	}
	var best time.Duration
	for i := 0; i < fabricReps; i++ {
		o, err := runAceCluster(core.Options{Procs: w.Procs, Registry: proto.NewRegistry(), DispatchLanes: lanes}, fn)
		if err != nil {
			return nil, fmt.Errorf("em3d: %w", err)
		}
		if el := timeOf(o.Result); best == 0 || el < best {
			best = el
		}
	}
	out = append(out, mk("em3d", 1, best))
	return out, nil
}

// bracketHitChurnLanes is bracketHitChurn with the cluster's dispatch
// sharded across the given lane count.
func bracketHitChurnLanes(procs int, window time.Duration, lanes int) (int, time.Duration, time.Duration, int64, error) {
	return bracketHitChurnOpts(core.Options{Procs: procs, Registry: proto.NewRegistry(), DispatchLanes: lanes}, window)
}

// MeasureScale sweeps the scaling suite over the given GOMAXPROCS
// points (ScalePoints when nil), restoring the entry setting before
// returning. Each point runs with dispatch lanes matched to its core
// count — one pump lane per hardware context is the configuration the
// sharding exists for; lane counts beyond the node count are clamped by
// the transports.
func MeasureScale(w Workloads, points []int, perSender, payload int) ([]ScaleRow, error) {
	if points == nil {
		points = ScalePoints
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var rows []ScaleRow
	for _, gmp := range points {
		runtime.GOMAXPROCS(gmp)
		got, err := measureScalePoint(w, gmp, gmp, perSender, payload)
		if err != nil {
			return nil, fmt.Errorf("gomaxprocs=%d: %w", gmp, err)
		}
		rows = append(rows, got...)
	}
	// Fill the speedup column from each measurement's own 1-core row.
	base := map[string]float64{}
	for _, r := range rows {
		if r.GoMaxProcs == 1 {
			base[r.Name] = r.PerSec
		}
	}
	for i := range rows {
		if b := base[rows[i].Name]; b > 0 {
			rows[i].SpeedupVs1 = rows[i].PerSec / b
		}
	}
	return rows, nil
}

// WriteScaleReport runs MeasureScale and writes the JSON document.
func WriteScaleReport(out io.Writer, w Workloads, points []int, perSender, payload int) (ScaleReport, error) {
	rows, err := MeasureScale(w, points, perSender, payload)
	if err != nil {
		return ScaleReport{}, err
	}
	if points == nil {
		points = ScalePoints
	}
	rep := ScaleReport{
		Generated: "acebench -exp scale",
		HostCPUs:  runtime.NumCPU(),
		Points:    points,
		Procs:     w.Procs,
		Results:   rows,
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return rep, enc.Encode(rep)
}

// FormatScale renders the sweep as a table grouped by measurement, one
// row per GOMAXPROCS point, with the speedup-vs-1-core column.
func FormatScale(rows []ScaleRow) string {
	var out string
	out += fmt.Sprintf("%-20s %6s %6s %12s %14s %8s\n", "benchmark", "gmp", "lanes", "ops", "per_sec", "speedup")
	var names []string
	seen := map[string]bool{}
	for _, r := range rows {
		if !seen[r.Name] {
			seen[r.Name] = true
			names = append(names, r.Name)
		}
	}
	for _, name := range names {
		for _, r := range rows {
			if r.Name != name {
				continue
			}
			out += fmt.Sprintf("%-20s %6d %6d %12d %14.1f %7.2fx\n",
				r.Name, r.GoMaxProcs, r.Lanes, r.Ops, r.PerSec, r.SpeedupVs1)
		}
	}
	return out
}
