package bench

import (
	"fmt"
	"strings"
	"time"

	"github.com/acedsm/ace/internal/apps/apputil"
	"github.com/acedsm/ace/internal/apps/em3d"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/crl"
	"github.com/acedsm/ace/internal/rtiface"
	"github.com/acedsm/ace/internal/stats"
	"github.com/acedsm/ace/proto"
)

// This file holds the ablation experiments for the design choices
// DESIGN.md calls out: the CRL baseline's bounded unmapped-region cache,
// the network-latency sensitivity of update protocols (the paper's core
// premise scales with communication cost), and user-specified granularity
// as a bulk-transfer mechanism (Section 2.3).

// URCSweep runs EM3D on the CRL runtime across unmapped-region-cache
// capacities and returns message counts: smaller caches evict clean
// copies that must be re-fetched.
func URCSweep(procs int, capacities []int) (map[int]uint64, error) {
	cfg := em3d.DefaultConfig()
	cfg.Nodes = 128
	cfg.Steps = 5
	out := make(map[int]uint64, len(capacities))
	for _, capacity := range capacities {
		cl, err := crl.NewCluster(crl.Options{Procs: procs, URCCapacity: capacity})
		if err != nil {
			return nil, err
		}
		err = cl.Run(func(p *crl.Proc) error {
			_, err := em3d.Run(rtiface.NewCRL(p), cfg)
			return err
		})
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("urc sweep capacity %d: %w", capacity, err)
		}
		out[capacity] = cl.Metrics().Net.MsgsSent
		cl.Close()
	}
	return out, nil
}

// LatencyPoint is one latency setting's outcome.
type LatencyPoint struct {
	Latency   time.Duration
	SC        time.Duration // em3d per-iteration under sc
	Update    time.Duration // em3d per-iteration under staticupdate
	Speedup   float64
	MsgsSC    uint64
	MsgsCusto uint64
}

// LatencySweep measures the custom-protocol speedup for EM3D at several
// injected network latencies. The update protocols' advantage is replacing
// synchronous read-miss round trips with asynchronous pushes, so the
// speedup must grow with latency.
func LatencySweep(procs int, latencies []time.Duration) ([]LatencyPoint, error) {
	cfg := em3d.DefaultConfig()
	cfg.Nodes = 64
	cfg.Steps = 5
	var out []LatencyPoint
	for _, lat := range latencies {
		runOne := func(protoName string) (apputil.Result, error) {
			c := cfg
			c.Proto = protoName
			cl, err := core.NewCluster(core.Options{Procs: procs, Registry: proto.NewRegistry(), Latency: lat})
			if err != nil {
				return apputil.Result{}, err
			}
			defer cl.Close()
			var res apputil.Result
			err = cl.Run(func(p *core.Proc) error {
				r, err := em3d.Run(rtiface.NewAce(p), c)
				if p.ID() == 0 {
					res = r
				}
				return err
			})
			res.Msgs = cl.Metrics().Net.MsgsSent
			return res, err
		}
		sc, err := runOne("")
		if err != nil {
			return nil, err
		}
		cu, err := runOne("staticupdate")
		if err != nil {
			return nil, err
		}
		out = append(out, LatencyPoint{
			Latency: lat, SC: sc.TimePerIter, Update: cu.TimePerIter,
			Speedup:   float64(sc.TimePerIter) / float64(cu.TimePerIter),
			MsgsSC:    sc.Msgs,
			MsgsCusto: cu.Msgs,
		})
	}
	return out, nil
}

// GranularityPoint is one region-size setting's outcome.
type GranularityPoint struct {
	Words int // region size in 8-byte words
	Msgs  uint64
	Time  time.Duration
}

// GranularitySweep moves a fixed volume of producer-consumer data per
// iteration while varying the region size: the same bytes as many small
// regions or few large ones. User-specified granularity is the paper's
// bulk-transfer mechanism (Section 2.3) — message counts must fall as
// region size grows.
func GranularitySweep(procs int, totalWords int, sizes []int) ([]GranularityPoint, error) {
	var out []GranularityPoint
	for _, words := range sizes {
		if totalWords%words != 0 {
			return nil, fmt.Errorf("granularity: %d words not divisible by region size %d", totalWords, words)
		}
		nRegions := totalWords / words
		cl, err := core.NewCluster(core.Options{Procs: procs, Registry: proto.NewRegistry()})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		err = cl.Run(func(p *core.Proc) error {
			sp := p.DefaultSpace()
			ids := make([]core.RegionID, nRegions)
			if p.ID() == 0 {
				for i := range ids {
					ids[i] = p.GMalloc(sp, words*8)
				}
			}
			ids = p.BroadcastIDs(0, ids)
			for iter := 0; iter < 5; iter++ {
				if p.ID() == 0 {
					for _, id := range ids {
						r := p.Map(id)
						p.StartWrite(r)
						for w := 0; w < words; w++ {
							r.Data.SetInt64(w, int64(iter*totalWords+w))
						}
						p.EndWrite(r)
						p.Unmap(r)
					}
				}
				p.GlobalBarrier()
				// Every consumer reads the full volume.
				if p.ID() != 0 {
					for _, id := range ids {
						r := p.Map(id)
						p.StartRead(r)
						_ = r.Data.Int64(0)
						p.EndRead(r)
						p.Unmap(r)
					}
				}
				p.GlobalBarrier()
			}
			return nil
		})
		if err != nil {
			cl.Close()
			return nil, err
		}
		out = append(out, GranularityPoint{Words: words, Msgs: cl.Metrics().Net.MsgsSent, Time: time.Since(start)})
		cl.Close()
	}
	return out, nil
}

// Ablations runs all three sweeps and renders them.
func Ablations(procs int) (string, error) {
	var sb strings.Builder
	urc, err := URCSweep(procs, []int{8, 32, 128, 512})
	if err != nil {
		return "", err
	}
	t1 := stats.NewTable("URC capacity", "messages (em3d on crl)")
	for _, c := range []int{8, 32, 128, 512} {
		t1.AddRow(c, urc[c])
	}
	sb.WriteString("--- CRL unmapped-region cache capacity (eviction forces re-fetches) ---\n")
	sb.WriteString(t1.String())

	lats, err := LatencySweep(procs, []time.Duration{0, 20 * time.Microsecond, 100 * time.Microsecond})
	if err != nil {
		return "", err
	}
	t2 := stats.NewTable("injected latency", "sc/iter", "staticupdate/iter", "speedup")
	for _, pt := range lats {
		t2.AddRow(pt.Latency.String(), pt.SC.Round(time.Microsecond).String(),
			pt.Update.Round(time.Microsecond).String(), pt.Speedup)
	}
	sb.WriteString("\n--- network latency vs custom-protocol speedup (em3d) ---\n")
	sb.WriteString(t2.String())

	grans, err := GranularitySweep(procs, 4096, []int{1, 16, 256, 4096})
	if err != nil {
		return "", err
	}
	t3 := stats.NewTable("region size (words)", "messages", "time")
	for _, pt := range grans {
		t3.AddRow(pt.Words, pt.Msgs, pt.Time.Round(time.Millisecond).String())
	}
	sb.WriteString("\n--- user-specified granularity as bulk transfer (fixed data volume) ---\n")
	sb.WriteString(t3.String())
	return sb.String(), nil
}
