package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/acedsm/ace/internal/compiler"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/ir"
	"github.com/acedsm/ace/internal/stats"
	"github.com/acedsm/ace/internal/table4"
	"github.com/acedsm/ace/internal/vm"
	"github.com/acedsm/ace/proto"
)

// Table4Result holds one (kernel, level) measurement.
type Table4Result struct {
	Kernel   string
	Level    string // "base", "LI", "LI+MC", "LI+MC+DC", "hand"
	Time     time.Duration
	Checksum float64
	// Calls is the number of annotation calls executed across all
	// processors (0 for the hand row, which is not instrumented).
	Calls uint64
}

// Table4Levels are the measured configurations, matching the paper's rows.
var Table4Levels = []compiler.Level{
	compiler.LevelBase, compiler.LevelLI, compiler.LevelMC, compiler.LevelDC,
}

// RunTable4 measures every kernel at every optimization level plus the
// hand-written version, verifying checksum agreement, and returns the
// results grouped by kernel.
func RunTable4(procs int, cfg table4.Config) (map[string][]Table4Result, error) {
	decls := proto.NewRegistry().Decls()
	out := make(map[string][]Table4Result)
	for _, k := range table4.Kernels() {
		var rows []Table4Result
		prog := k.Build(cfg)
		for _, lvl := range Table4Levels {
			compiled, err := compiler.Compile(prog, decls, lvl)
			if err != nil {
				return nil, fmt.Errorf("table4 %s %s: %w", k.Name, lvl, err)
			}
			res, err := RunKernelVM(procs, k, cfg, compiled)
			if err != nil {
				return nil, fmt.Errorf("table4 %s %s: %w", k.Name, lvl, err)
			}
			res.Level = lvl.String()
			rows = append(rows, res)
		}
		hand, err := RunKernelHand(procs, k, cfg)
		if err != nil {
			return nil, fmt.Errorf("table4 %s hand: %w", k.Name, err)
		}
		hand.Level = "hand"
		rows = append(rows, hand)
		// Every level and the hand version must agree (small relative
		// tolerance: the pipeline protocol combines floating-point
		// contributions in arrival order).
		for _, r := range rows[1:] {
			if !checksumsMatch(rows[0].Checksum, r.Checksum) {
				return nil, fmt.Errorf("table4 %s: checksum mismatch: %s=%v, %s=%v",
					k.Name, rows[0].Level, rows[0].Checksum, r.Level, r.Checksum)
			}
		}
		out[k.Name] = rows
	}
	return out, nil
}

// kernelSpaces creates the runtime spaces a kernel declares, in
// deterministic id order (collective).
func kernelSpaces(p *core.Proc, k table4.Kernel) (map[int]*core.Space, error) {
	ids := make([]int, 0, len(k.SpaceProtos))
	for id := range k.SpaceProtos {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	spaces := make(map[int]*core.Space, len(ids))
	for _, id := range ids {
		sp, err := p.NewSpace(k.SpaceProtos[id][0])
		if err != nil {
			return nil, err
		}
		spaces[id] = sp
	}
	return spaces, nil
}

// RunKernelVM executes a compiled kernel on a fresh cluster.
func RunKernelVM(procs int, k table4.Kernel, cfg table4.Config, compiled *ir.Program) (Table4Result, error) {
	cl, err := core.NewCluster(core.Options{Procs: procs, Registry: proto.NewRegistry()})
	if err != nil {
		return Table4Result{}, err
	}
	defer cl.Close()
	var mu sync.Mutex
	res := Table4Result{Kernel: k.Name}
	err = cl.Run(func(p *core.Proc) error {
		spaces, err := kernelSpaces(p, k)
		if err != nil {
			return err
		}
		args := k.Setup(p, spaces, cfg)
		p.GlobalBarrier()
		m := vm.New(p, compiled, spaces)
		start := time.Now()
		v, err := m.Call("kernel", args...)
		if err != nil {
			return err
		}
		elapsed := p.AllReduceInt64(core.OpMax, int64(time.Since(start)))
		local := v.F
		if v.K == ir.KInt {
			local = float64(v.I)
		}
		sum := p.AllReduceFloat64(core.OpSum, local)
		var calls uint64
		for point, c := range m.Counts {
			if point != "direct" {
				calls += c
			}
		}
		totalCalls := p.AllReduceInt64(core.OpSum, int64(calls))
		if p.ID() == 0 {
			mu.Lock()
			res.Time = time.Duration(elapsed)
			res.Checksum = sum
			res.Calls = uint64(totalCalls)
			mu.Unlock()
		}
		return nil
	})
	return res, err
}

// RunKernelHand executes the hand-written version on a fresh cluster.
func RunKernelHand(procs int, k table4.Kernel, cfg table4.Config) (Table4Result, error) {
	cl, err := core.NewCluster(core.Options{Procs: procs, Registry: proto.NewRegistry()})
	if err != nil {
		return Table4Result{}, err
	}
	defer cl.Close()
	var mu sync.Mutex
	res := Table4Result{Kernel: k.Name}
	err = cl.Run(func(p *core.Proc) error {
		spaces, err := kernelSpaces(p, k)
		if err != nil {
			return err
		}
		args := k.Setup(p, spaces, cfg)
		p.GlobalBarrier()
		start := time.Now()
		local := k.Hand(p, spaces, cfg, args)
		elapsed := p.AllReduceInt64(core.OpMax, int64(time.Since(start)))
		sum := p.AllReduceFloat64(core.OpSum, local)
		if p.ID() == 0 {
			mu.Lock()
			res.Time = time.Duration(elapsed)
			res.Checksum = sum
			mu.Unlock()
		}
		return nil
	})
	return res, err
}

// Table4 runs the whole experiment and renders the paper-style table:
// rows are optimization levels, columns benchmarks.
func Table4(procs int) (string, error) {
	results, err := RunTable4(procs, table4.DefaultConfig())
	if err != nil {
		return "", err
	}
	kernels := make([]string, 0, len(results))
	for name := range results {
		kernels = append(kernels, name)
	}
	sort.Strings(kernels)

	var sb strings.Builder
	times := stats.NewTable(append([]string{"Optimization"}, kernels...)...)
	levels := []string{"base", "LI", "LI+MC", "LI+MC+DC", "hand"}
	labels := map[string]string{
		"base": "Base case", "LI": "Loop Invariance (LI)",
		"LI+MC": "LI + Merging Calls (MC)", "LI+MC+DC": "LI + MC + Direct Calls",
		"hand": "Hand-optimized",
	}
	for _, lvl := range levels {
		row := []any{labels[lvl]}
		for _, kn := range kernels {
			for _, r := range results[kn] {
				if r.Level == lvl {
					row = append(row, r.Time.Round(time.Microsecond).String())
				}
			}
		}
		times.AddRow(row...)
	}
	sb.WriteString(times.String())

	sb.WriteString("\nAnnotation calls executed (all processors):\n")
	calls := stats.NewTable(append([]string{"Optimization"}, kernels...)...)
	for _, lvl := range levels[:4] {
		row := []any{labels[lvl]}
		for _, kn := range kernels {
			for _, r := range results[kn] {
				if r.Level == lvl {
					row = append(row, r.Calls)
				}
			}
		}
		calls.AddRow(row...)
	}
	sb.WriteString(calls.String())
	return sb.String(), nil
}
