package bench

// Collective-communication and coherence-traffic measurements backing
// BENCH_coll.json (`acebench -exp coll` or `make bench`). Two suites:
//
//   - Collective micro-ops (barrier, allreduce, 64-byte broadcast) swept
//     over cluster sizes on both topologies. The star rows are the
//     embedded baseline: the root_msgs_per_op column is the structural
//     root-serialization figure (O(P) on the star, O(log P) on the
//     binomial tree) and is what the acceptance gate checks — wall-clock
//     columns are informative only, message counts are deterministic.
//
//   - EM3D coherence traffic per time step for the update-family
//     protocols, with per-destination push aggregation on vs off. The
//     per-step figure is a two-point delta (runs at S and 3S steps,
//     divided by 2S) so graph construction and cold-read traffic cancel
//     out exactly; the unaggregated rows are the embedded baseline for
//     the >= 2x reduction gate.
//
// See DESIGN.md §12 for the topology and aggregation design.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/acedsm/ace/internal/apps/apputil"
	"github.com/acedsm/ace/internal/apps/em3d"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/rtiface"
	"github.com/acedsm/ace/proto"
)

// CollPoint is one collective micro-measurement at one cluster size on
// one topology, JSON-shaped for BENCH_coll.json.
type CollPoint struct {
	Op    string `json:"op"` // "barrier", "allreduce", "bcast64"
	Procs int    `json:"procs"`
	Topo  string `json:"topology"` // "star" or "tree"
	Ops   int    `json:"ops"`      // timed operations (metrics also cover warmup)
	// NsPerOp is wall-clock; MsgsPerOp/BytesPerOp are cluster-wide wire
	// messages and payload bytes per operation; RootMsgsPerOp is
	// processor 0's sends per operation — the serialization point the
	// tree exists to remove.
	NsPerOp       float64 `json:"ns_per_op"`
	MsgsPerOp     float64 `json:"msgs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	RootMsgsPerOp float64 `json:"root_msgs_per_op"`
}

// EM3DAggRow is EM3D's coherence traffic per time step under one
// topology/aggregation configuration.
type EM3DAggRow struct {
	Proto      string `json:"protocol"` // "staticupdate" or "update"
	Topo       string `json:"topology"`
	Aggregated bool   `json:"aggregated"`
	Procs      int    `json:"procs"`
	// MsgsPerStep and BytesPerStep are the two-point deltas (see the
	// package comment); setup traffic cancels out of both.
	MsgsPerStep  float64 `json:"msgs_per_step"`
	BytesPerStep float64 `json:"bytes_per_step"`
	// AggFrames/RegionsPerFrame describe the aggregated frames of the
	// longer run (zero when aggregation is off).
	AggFrames       uint64  `json:"agg_frames"`
	RegionsPerFrame float64 `json:"regions_per_frame"`
}

// CollReport is the BENCH_coll.json document.
type CollReport struct {
	Generated   string       `json:"generated_by"`
	Scale       string       `json:"scale"`
	ProcsSwept  []int        `json:"collective_procs"`
	EM3DProcs   int          `json:"em3d_procs"`
	Collectives []CollPoint  `json:"collectives"`
	EM3D        []EM3DAggRow `json:"em3d"`
}

// collProcsFor returns the swept cluster sizes. Every schedule crosses
// the auto-selection cutoff so both topologies are exercised at sizes
// where they are the default choice.
func collProcsFor(scale Scale) []int {
	switch scale {
	case ScaleSmall:
		return []int{4, 8}
	case ScalePaper:
		return []int{2, 4, 8, 16, 32}
	default:
		return []int{2, 4, 8, 16}
	}
}

// collItersFor returns the timed operation count per micro-measurement.
func collItersFor(scale Scale) int {
	switch scale {
	case ScaleSmall:
		return 60
	case ScalePaper:
		return 300
	default:
		return 200
	}
}

func topoName(t core.CollTopology) string {
	if t == core.CollTree {
		return "tree"
	}
	return "star"
}

// collWarmup is the untimed lead-in per micro-measurement: same
// operation type as the timed loop, so the per-op message averages
// (computed over warmup+timed) stay exact.
const collWarmup = 2

// measureCollective runs one micro-op at one size on one forced
// topology and returns its row. Message counts come from the post-Run
// counters, so they are deterministic; the timed section is bracketed
// by same-type warmup ops that also align the processors.
func measureCollective(op string, procs int, topo core.CollTopology, iters int) (CollPoint, error) {
	cl, err := core.NewCluster(core.Options{Procs: procs, Coll: core.CollConfig{Topology: topo}})
	if err != nil {
		return CollPoint{}, err
	}
	defer cl.Close()

	// The broadcast root returns without blocking, so a non-root
	// processor holds the stopwatch for bcast rows.
	timer := 0
	if op == "bcast64" && procs > 1 {
		timer = 1
	}
	var elapsed time.Duration
	payload := make([]byte, 64)
	err = cl.Run(func(p *core.Proc) error {
		one := func() {
			switch op {
			case "barrier":
				p.GlobalBarrier()
			case "allreduce":
				p.AllReduceInt64(core.OpSum, int64(p.ID()))
			case "bcast64":
				var data []byte
				if p.ID() == 0 {
					data = payload
				}
				p.Broadcast(0, data)
			}
		}
		for i := 0; i < collWarmup; i++ {
			one()
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			one()
		}
		if p.ID() == timer {
			elapsed = time.Since(start)
		}
		return nil
	})
	if err != nil {
		return CollPoint{}, err
	}

	total := cl.Metrics().Coll
	root := cl.Local()[0].Snapshot().Coll
	ops := float64(iters + collWarmup)
	return CollPoint{
		Op:            op,
		Procs:         procs,
		Topo:          topoName(topo),
		Ops:           iters,
		NsPerOp:       float64(elapsed.Nanoseconds()) / float64(iters),
		MsgsPerOp:     float64(total.Hops) / ops,
		BytesPerOp:    float64(total.Bytes) / ops,
		RootMsgsPerOp: float64(root.Hops) / ops,
	}, nil
}

// runEM3D runs the EM3D benchmark once under a forced collective
// configuration and returns the observed metrics.
func runEM3D(procs int, cfg em3d.Config, coll core.CollConfig) (Observed, error) {
	app := func(rt rtiface.RT) (apputil.Result, error) { return em3d.Run(rt, cfg) }
	return runAceCluster(core.Options{Procs: procs, Registry: proto.NewRegistry(), Coll: coll}, app)
}

// measureEM3DAgg produces one EM3D traffic row: two runs at S and 3S
// steps, per-step traffic from the delta.
func measureEM3DAgg(w Workloads, protoName string, topo core.CollTopology, aggregated bool) (EM3DAggRow, error) {
	coll := core.CollConfig{Topology: topo, NoAggregation: !aggregated}
	short := w.EM3D
	short.Proto = protoName
	long := short
	long.Steps = short.Steps * 3

	so, err := runEM3D(w.Procs, short, coll)
	if err != nil {
		return EM3DAggRow{}, fmt.Errorf("em3d %s/%s steps=%d: %w", protoName, topoName(topo), short.Steps, err)
	}
	lo, err := runEM3D(w.Procs, long, coll)
	if err != nil {
		return EM3DAggRow{}, fmt.Errorf("em3d %s/%s steps=%d: %w", protoName, topoName(topo), long.Steps, err)
	}

	steps := float64(long.Steps - short.Steps)
	row := EM3DAggRow{
		Proto:        protoName,
		Topo:         topoName(topo),
		Aggregated:   aggregated,
		Procs:        w.Procs,
		MsgsPerStep:  float64(lo.Metrics.Net.MsgsSent-so.Metrics.Net.MsgsSent) / steps,
		BytesPerStep: float64(lo.Metrics.Net.BytesSent-so.Metrics.Net.BytesSent) / steps,
		AggFrames:    lo.Metrics.Coll.AggFrames,
	}
	if row.AggFrames > 0 {
		row.RegionsPerFrame = float64(lo.Metrics.Coll.AggRegions) / float64(row.AggFrames)
	}
	return row, nil
}

// MeasureColl runs both suites and returns the report body.
func MeasureColl(w Workloads, scale Scale) (CollReport, error) {
	rep := CollReport{
		Generated:  "acebench -exp coll",
		Scale:      string(scale),
		ProcsSwept: collProcsFor(scale),
		EM3DProcs:  w.Procs,
	}
	iters := collItersFor(scale)
	for _, op := range []string{"barrier", "allreduce", "bcast64"} {
		for _, procs := range rep.ProcsSwept {
			for _, topo := range []core.CollTopology{core.CollStar, core.CollTree} {
				pt, err := measureCollective(op, procs, topo, iters)
				if err != nil {
					return rep, fmt.Errorf("%s procs=%d topo=%s: %w", op, procs, topoName(topo), err)
				}
				rep.Collectives = append(rep.Collectives, pt)
			}
		}
	}
	for _, protoName := range []string{"staticupdate", "update"} {
		for _, cell := range []struct {
			topo core.CollTopology
			agg  bool
		}{
			{core.CollStar, false}, // the baseline: star fan-out, R×S per-region pushes
			{core.CollStar, true},
			{core.CollTree, false},
			{core.CollTree, true}, // the default configuration above the star cutoff
		} {
			row, err := measureEM3DAgg(w, protoName, cell.topo, cell.agg)
			if err != nil {
				return rep, err
			}
			rep.EM3D = append(rep.EM3D, row)
		}
	}
	return rep, nil
}

// CheckCollGates validates the report's structural acceptance criteria
// and returns a joined error describing every violated gate:
//
//  1. Aggregation must cut EM3D's per-step message traffic at least in
//     half versus the unaggregated run on the same topology (R sharers
//     × S regions collapsing toward S frames).
//  2. The tree must eliminate allreduce root serialization: at every
//     swept size the root's sends per operation must not exceed the
//     star's, and must stay within the binomial-tree bound
//     ceil(log2 P) + 1 rather than growing linearly.
//
// Wall-clock columns are never gated — message counts are deterministic,
// latency on a loaded host is not.
func CheckCollGates(rep CollReport) error {
	var errs []error
	type cellKey struct {
		proto string
		topo  string
		agg   bool
	}
	cells := map[cellKey]EM3DAggRow{}
	for _, r := range rep.EM3D {
		cells[cellKey{r.Proto, r.Topo, r.Aggregated}] = r
	}
	for k, agg := range cells {
		if !k.agg {
			continue
		}
		base, ok := cells[cellKey{k.proto, k.topo, false}]
		if !ok {
			errs = append(errs, fmt.Errorf("em3d %s/%s: aggregated row has no unaggregated baseline", k.proto, k.topo))
			continue
		}
		if agg.MsgsPerStep*2 > base.MsgsPerStep {
			errs = append(errs, fmt.Errorf("em3d %s/%s: aggregation reduced msgs/step only %.2fx (%.1f -> %.1f), want >= 2x",
				k.proto, k.topo, base.MsgsPerStep/agg.MsgsPerStep, base.MsgsPerStep, agg.MsgsPerStep))
		}
	}
	type arKey struct {
		procs int
		topo  string
	}
	ar := map[arKey]CollPoint{}
	for _, pt := range rep.Collectives {
		if pt.Op == "allreduce" {
			ar[arKey{pt.Procs, pt.Topo}] = pt
		}
	}
	for _, procs := range rep.ProcsSwept {
		star, okS := ar[arKey{procs, "star"}]
		tree, okT := ar[arKey{procs, "tree"}]
		if !okS || !okT {
			errs = append(errs, fmt.Errorf("allreduce procs=%d: missing star or tree row", procs))
			continue
		}
		if tree.RootMsgsPerOp > star.RootMsgsPerOp {
			errs = append(errs, fmt.Errorf("allreduce procs=%d: tree root sends %.2f msgs/op, star baseline %.2f — root serialization not eliminated",
				procs, tree.RootMsgsPerOp, star.RootMsgsPerOp))
		}
		if bound := math.Ceil(math.Log2(float64(procs))) + 1; tree.RootMsgsPerOp > bound {
			errs = append(errs, fmt.Errorf("allreduce procs=%d: tree root sends %.2f msgs/op, above the log bound %.0f",
				procs, tree.RootMsgsPerOp, bound))
		}
	}
	return joinErrs(errs)
}

func joinErrs(errs []error) error {
	switch len(errs) {
	case 0:
		return nil
	case 1:
		return errs[0]
	}
	s := errs[0].Error()
	for _, e := range errs[1:] {
		s += "\n" + e.Error()
	}
	return fmt.Errorf("%s", s)
}

// WriteCollReport runs MeasureColl and writes the JSON document.
func WriteCollReport(out io.Writer, w Workloads, scale Scale) (CollReport, error) {
	rep, err := MeasureColl(w, scale)
	if err != nil {
		return rep, err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return rep, enc.Encode(rep)
}

// FormatColl renders the report as two tables: the micro-op sweep with
// star and tree rows interleaved per size, then the EM3D traffic cells.
func FormatColl(rep CollReport) string {
	out := fmt.Sprintf("%-10s %6s %-5s %12s %12s %12s %14s\n",
		"op", "procs", "topo", "ns_per_op", "msgs_per_op", "bytes_per_op", "root_msgs_op")
	for _, r := range rep.Collectives {
		out += fmt.Sprintf("%-10s %6d %-5s %12.0f %12.2f %12.1f %14.2f\n",
			r.Op, r.Procs, r.Topo, r.NsPerOp, r.MsgsPerOp, r.BytesPerOp, r.RootMsgsPerOp)
	}
	out += fmt.Sprintf("\n%-14s %-5s %-6s %6s %14s %14s %10s %10s\n",
		"em3d proto", "topo", "agg", "procs", "msgs_per_step", "bytes_per_step", "frames", "regs/frame")
	for _, r := range rep.EM3D {
		agg := "off"
		if r.Aggregated {
			agg = "on"
		}
		out += fmt.Sprintf("%-14s %-5s %-6s %6d %14.1f %14.1f %10d %10.1f\n",
			r.Proto, r.Topo, agg, r.Procs, r.MsgsPerStep, r.BytesPerStep, r.AggFrames, r.RegionsPerFrame)
	}
	return out
}
