package bench

// Fabric microbenchmarks: latency (roundtrip) and throughput (many-to-one
// small-message streams) of the Active Messages fabric itself, on both
// transports. Every Ace primitive — SC fetches, barriers, locks,
// collectives — bottoms out here, so per-message fabric overhead bounds
// everything the paper's E1 claim measures. The same measurements back
// the committed BENCH_fabric.json artifact (`acebench -exp fabric` or
// `make bench`).

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/tcpnet"
)

// Handler ids used by the fabric microbenchmarks (any id clear of the
// runtime's reserved range works; these match none of core's).
const (
	fabPing amnet.HandlerID = 40
	fabPong amnet.HandlerID = 41
	fabSink amnet.HandlerID = 42
)

// FabricResult is one fabric measurement, JSON-shaped for
// BENCH_fabric.json.
type FabricResult struct {
	Name       string  `json:"name"`      // e.g. "throughput/tcp"
	Transport  string  `json:"transport"` // "chan" or "tcp"
	Nodes      int     `json:"nodes"`
	Payload    int     `json:"payload_bytes"`
	Msgs       int     `json:"messages"`
	Seconds    float64 `json:"seconds"`
	MsgsPerSec float64 `json:"msgs_per_sec"`
	NsPerMsg   float64 `json:"ns_per_msg"`
}

// FabricReport is the BENCH_fabric.json document.
type FabricReport struct {
	Generated  string         `json:"generated_by"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Results    []FabricResult `json:"results"`
	// Baseline, when present, carries the same measurements taken at the
	// pre-fast-path commit, so the artifact itself documents the delta.
	Baseline []FabricResult `json:"pre_fastpath_baseline,omitempty"`
}

// newFabric builds a network of n nodes on the named transport.
func newFabric(transport string, n int) (amnet.Network, error) {
	switch transport {
	case "chan":
		return amnet.NewChanNetwork(amnet.ChanConfig{Nodes: n})
	case "tcp":
		return tcpnet.New(tcpnet.Loopback(n))
	default:
		return nil, fmt.Errorf("bench: unknown transport %q", transport)
	}
}

// payloadSource returns a per-send payload supplier honoring the
// fabric's ownership contract: on transports whose Send copies
// synchronously (amnet.PayloadCopier) one buffer is reused for every
// send; on by-reference transports each send gives up a pooled buffer,
// which the receiving handler recycles.
func payloadSource(ep amnet.Endpoint, payload int) func() []byte {
	if payload <= 0 {
		return func() []byte { return nil }
	}
	if pc, ok := ep.(amnet.PayloadCopier); ok && pc.CopiesPayloadOnSend() {
		buf := make([]byte, payload)
		return func() []byte { return buf }
	}
	return func() []byte { return amnet.Alloc(payload) }
}

// FabricRoundtrip measures rounds ping-pong roundtrips between node 0 and
// node 1 and returns the elapsed time. The reply is sent from the pong
// handler, so one roundtrip is two full send→deliver→dispatch traversals.
func FabricRoundtrip(nw amnet.Network, rounds, payload int) (time.Duration, error) {
	eps := nw.Endpoints()
	if len(eps) < 2 {
		return 0, fmt.Errorf("bench: roundtrip needs 2 nodes")
	}
	done := make(chan struct{})
	data := payloadSource(eps[0], payload)
	eps[1].Register(fabPing, func(m amnet.Msg) {
		amnet.Recycle(m.Payload)
		eps[1].Send(amnet.Msg{Dst: 0, Handler: fabPong, A: m.A})
	})
	eps[0].Register(fabPong, func(m amnet.Msg) {
		if int(m.A) == rounds {
			close(done)
			return
		}
		eps[0].Send(amnet.Msg{Dst: 1, Handler: fabPing, A: m.A + 1, Payload: data()})
	})
	start := time.Now()
	eps[0].Send(amnet.Msg{Dst: 1, Handler: fabPing, A: 1, Payload: data()})
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		return 0, fmt.Errorf("bench: roundtrip stalled")
	}
	return time.Since(start), nil
}

// FabricThroughput blasts perSender small messages from every node to a
// single sink handler on node 0 (the many-to-one pattern of barriers,
// locks and directory homes) and returns the elapsed time until the sink
// has seen all of them.
func FabricThroughput(nw amnet.Network, perSender, payload int) (time.Duration, error) {
	eps := nw.Endpoints()
	n := len(eps)
	total := uint64(perSender * (n - 1))
	var seen atomic.Uint64
	done := make(chan struct{})
	eps[0].Register(fabSink, func(m amnet.Msg) {
		amnet.Recycle(m.Payload)
		if seen.Add(1) == total {
			close(done)
		}
	})
	start := time.Now()
	var wg sync.WaitGroup
	for src := 1; src < n; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			ep := eps[src]
			data := payloadSource(ep, payload)
			for i := 0; i < perSender; i++ {
				ep.Send(amnet.Msg{Dst: 0, Handler: fabSink, A: uint64(i), Payload: data()})
			}
		}(src)
	}
	wg.Wait()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		return 0, fmt.Errorf("bench: throughput stalled at %d/%d", seen.Load(), total)
	}
	return time.Since(start), nil
}

// fabricReps is how many times each fabric measurement runs; the best
// run is reported — the usual noise reduction for wall-clock numbers on
// a shared machine (cf. bestRows for the figure experiments).
const fabricReps = 3

// bestOf runs a measurement fabricReps times on fresh networks and
// returns the fastest elapsed time.
func bestOf(mk func() (amnet.Network, error), run func(amnet.Network) (time.Duration, error)) (time.Duration, error) {
	var best time.Duration
	for i := 0; i < fabricReps; i++ {
		nw, err := mk()
		if err != nil {
			return 0, err
		}
		el, err := run(nw)
		nw.Close()
		if err != nil {
			return 0, err
		}
		if best == 0 || el < best {
			best = el
		}
	}
	return best, nil
}

// MeasureFabric runs the standard fabric measurement suite (roundtrip on
// 2 nodes, throughput on `nodes` nodes, both transports, small payloads)
// and returns the per-benchmark best of three runs.
func MeasureFabric(nodes, perSender, rounds, payload int) ([]FabricResult, error) {
	var out []FabricResult
	for _, tr := range []string{"chan", "tcp"} {
		tr := tr
		el, err := bestOf(
			func() (amnet.Network, error) { return newFabric(tr, 2) },
			func(nw amnet.Network) (time.Duration, error) { return FabricRoundtrip(nw, rounds, payload) },
		)
		if err != nil {
			return nil, fmt.Errorf("%s roundtrip: %w", tr, err)
		}
		msgs := 2 * rounds
		out = append(out, FabricResult{
			Name: "roundtrip/" + tr, Transport: tr, Nodes: 2, Payload: payload,
			Msgs: msgs, Seconds: el.Seconds(),
			MsgsPerSec: float64(msgs) / el.Seconds(),
			NsPerMsg:   float64(el.Nanoseconds()) / float64(msgs),
		})

		el, err = bestOf(
			func() (amnet.Network, error) { return newFabric(tr, nodes) },
			func(nw amnet.Network) (time.Duration, error) { return FabricThroughput(nw, perSender, payload) },
		)
		if err != nil {
			return nil, fmt.Errorf("%s throughput: %w", tr, err)
		}
		msgs = perSender * (nodes - 1)
		out = append(out, FabricResult{
			Name: "throughput/" + tr, Transport: tr, Nodes: nodes, Payload: payload,
			Msgs: msgs, Seconds: el.Seconds(),
			MsgsPerSec: float64(msgs) / el.Seconds(),
			NsPerMsg:   float64(el.Nanoseconds()) / float64(msgs),
		})
	}
	return out, nil
}

// WriteFabricReport runs MeasureFabric and writes the JSON document.
// baseline, when non-nil, is embedded for before/after comparison.
func WriteFabricReport(w io.Writer, nodes, perSender, rounds, payload int, baseline []FabricResult) (FabricReport, error) {
	res, err := MeasureFabric(nodes, perSender, rounds, payload)
	if err != nil {
		return FabricReport{}, err
	}
	rep := FabricReport{
		Generated:  "acebench -exp fabric",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Results:    res,
		Baseline:   baseline,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return rep, enc.Encode(rep)
}

// FormatFabric renders fabric results (and an optional baseline) as a
// table with a speedup column.
func FormatFabric(res, baseline []FabricResult) string {
	base := map[string]FabricResult{}
	for _, b := range baseline {
		base[b.Name] = b
	}
	var out string
	out += fmt.Sprintf("%-16s %8s %8s %14s %12s %8s\n", "benchmark", "nodes", "payload", "msgs/sec", "ns/msg", "speedup")
	for _, r := range res {
		sp := "-"
		if b, ok := base[r.Name]; ok && b.MsgsPerSec > 0 {
			sp = fmt.Sprintf("%.2fx", r.MsgsPerSec/b.MsgsPerSec)
		}
		out += fmt.Sprintf("%-16s %8d %8d %14.0f %12.1f %8s\n", r.Name, r.Nodes, r.Payload, r.MsgsPerSec, r.NsPerMsg, sp)
	}
	return out
}
