package bench

// The gate benchmark's session fleet: the thing that holds Sessions
// live websocket clients through the load phases. Two implementations —
// in-process for tests and small runs, and worker subprocesses for the
// 10k-class runs where one process cannot hold both ends of every
// loopback socket under the RLIMIT_NOFILE hard limit. The parent and
// its workers speak a three-word line protocol over stdin/stdout:
// the worker prints "ready" once every session is joined, the parent
// says "adds", the worker fires them and prints "sent", the parent
// says "close", the worker disconnects everything and prints "closed".

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"time"

	"github.com/acedsm/ace/internal/gateway"
)

// sessionFleet is the load-phase driver: all sessions joined, all adds
// fired, all sessions closed.
type sessionFleet interface {
	join() error
	adds() error
	close() error
	shutdown() // best-effort cleanup on any exit path
}

func newFleet(cfg GateConfig, addr string) (sessionFleet, error) {
	if cfg.Workers > 0 && len(cfg.WorkerExec) > 0 {
		return newWorkerFleet(cfg, addr)
	}
	return &localFleet{cfg: cfg, addr: addr, clients: make([]*gateway.Client, cfg.Sessions)}, nil
}

// gateRoom names session i's room; the formula is shared by the parent
// (for expected sums) and every worker.
func gateRoom(i, rooms int) string { return fmt.Sprintf("gate-%d", i%rooms) }

// localFleet runs every session in this process.
type localFleet struct {
	cfg     GateConfig
	addr    string
	clients []*gateway.Client
}

func (f *localFleet) join() error {
	return forEach(f.cfg.Sessions, 256, func(i int) error {
		c, err := gateway.DialClient(f.addr)
		if err != nil {
			return fmt.Errorf("dial %d: %w", i, err)
		}
		f.clients[i] = c
		c.SetDeadline(time.Now().Add(120 * time.Second))
		if _, _, err := c.Join(gateRoom(i, f.cfg.Rooms)); err != nil {
			return fmt.Errorf("join %d: %w", i, err)
		}
		return nil
	})
}

func (f *localFleet) adds() error {
	return forEach(f.cfg.Sessions, 256, func(i int) error {
		c := f.clients[i]
		c.SetDeadline(time.Now().Add(120 * time.Second))
		cell := i % gateway.RoomCells
		for k := 0; k < f.cfg.Adds; k++ {
			if err := c.Add(gateRoom(i, f.cfg.Rooms), cell, int64(i+1)); err != nil {
				return fmt.Errorf("add %d: %w", i, err)
			}
		}
		return nil
	})
}

func (f *localFleet) close() error {
	forEach(f.cfg.Sessions, 256, func(i int) error {
		if f.clients[i] != nil {
			f.clients[i].Close()
			f.clients[i] = nil
		}
		return nil
	})
	return nil
}

func (f *localFleet) shutdown() { f.close() }

// GateWorkerArgs is the CLI contract between the worker fleet and the
// binary hosting RunGateWorker (cmd/acebench): the argv appended to
// GateConfig.WorkerExec to launch one worker owning count sessions
// with global ids [offset, offset+count).
func GateWorkerArgs(addr string, offset, count, rooms, adds int) []string {
	return []string{
		"-gate-worker",
		"-gate-addr", addr,
		"-gate-offset", strconv.Itoa(offset),
		"-gate-sessions", strconv.Itoa(count),
		"-gate-rooms", strconv.Itoa(rooms),
		"-gate-adds", strconv.Itoa(adds),
	}
}

// workerFleet drives Worker subprocesses, each owning a contiguous
// slice of the global session ids.
type workerFleet struct {
	cmds []*exec.Cmd
	in   []io.WriteCloser
	out  []*bufio.Scanner
	done bool
}

func newWorkerFleet(cfg GateConfig, addr string) (*workerFleet, error) {
	f := &workerFleet{}
	per, rem := cfg.Sessions/cfg.Workers, cfg.Sessions%cfg.Workers
	offset := 0
	for w := 0; w < cfg.Workers; w++ {
		count := per
		if w < rem {
			count++
		}
		args := append(append([]string{}, cfg.WorkerExec[1:]...),
			GateWorkerArgs(addr, offset, count, cfg.Rooms, cfg.Adds)...)
		cmd := exec.Command(cfg.WorkerExec[0], args...)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			f.shutdown()
			return nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			f.shutdown()
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			f.shutdown()
			return nil, fmt.Errorf("gate worker %d: %w", w, err)
		}
		f.cmds = append(f.cmds, cmd)
		f.in = append(f.in, stdin)
		f.out = append(f.out, bufio.NewScanner(stdout))
		offset += count
	}
	return f, nil
}

// expect reads one line from every worker and requires it to be tok;
// anything else (a worker's error line, or its death) fails the phase.
func (f *workerFleet) expect(tok string) error {
	for w, sc := range f.out {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return fmt.Errorf("gate worker %d: %w", w, err)
			}
			return fmt.Errorf("gate worker %d exited before %q", w, tok)
		}
		if line := sc.Text(); line != tok {
			return fmt.Errorf("gate worker %d: %s", w, line)
		}
	}
	return nil
}

func (f *workerFleet) send(tok string) error {
	for w, in := range f.in {
		if _, err := io.WriteString(in, tok+"\n"); err != nil {
			return fmt.Errorf("gate worker %d: %w", w, err)
		}
	}
	return nil
}

func (f *workerFleet) join() error { return f.expect("ready") }

func (f *workerFleet) adds() error {
	if err := f.send("adds"); err != nil {
		return err
	}
	return f.expect("sent")
}

func (f *workerFleet) close() error {
	if err := f.send("close"); err != nil {
		return err
	}
	if err := f.expect("closed"); err != nil {
		return err
	}
	f.done = true
	for w, cmd := range f.cmds {
		if err := cmd.Wait(); err != nil {
			return fmt.Errorf("gate worker %d: %w", w, err)
		}
	}
	return nil
}

func (f *workerFleet) shutdown() {
	if f.done {
		return
	}
	for _, in := range f.in {
		in.Close()
	}
	for _, cmd := range f.cmds {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
		cmd.Wait()
	}
	f.done = true
}

// RunGateWorker is the worker-subprocess half of the gate benchmark's
// load phase: it owns count sessions with global ids [offset,
// offset+count), joins them all, then follows the parent's line
// protocol on stdin. Phase results go to stdout; errors are reported
// as an "error: ..." line so the parent's expect names them.
func RunGateWorker(addr string, offset, count, rooms, adds int) error {
	raiseNoFile(uint64(count) + 1024)
	clients := make([]*gateway.Client, count)
	defer func() {
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	}()
	fail := func(err error) error {
		fmt.Printf("error: %v\n", err)
		return err
	}
	err := forEach(count, 256, func(i int) error {
		id := offset + i
		c, err := gateway.DialClient(addr)
		if err != nil {
			return fmt.Errorf("dial %d: %w", id, err)
		}
		clients[i] = c
		c.SetDeadline(time.Now().Add(120 * time.Second))
		if _, _, err := c.Join(gateRoom(id, rooms)); err != nil {
			return fmt.Errorf("join %d: %w", id, err)
		}
		return nil
	})
	if err != nil {
		return fail(err)
	}
	fmt.Println("ready")
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		switch sc.Text() {
		case "adds":
			err := forEach(count, 256, func(i int) error {
				id := offset + i
				c := clients[i]
				c.SetDeadline(time.Now().Add(120 * time.Second))
				cell := id % gateway.RoomCells
				for k := 0; k < adds; k++ {
					if err := c.Add(gateRoom(id, rooms), cell, int64(id+1)); err != nil {
						return fmt.Errorf("add %d: %w", id, err)
					}
				}
				return nil
			})
			if err != nil {
				return fail(err)
			}
			fmt.Println("sent")
		case "close":
			forEach(count, 256, func(i int) error {
				if clients[i] != nil {
					clients[i].Close()
					clients[i] = nil
				}
				return nil
			})
			fmt.Println("closed")
			return nil
		default:
			return fail(fmt.Errorf("unknown command %q", sc.Text()))
		}
	}
	return fail(fmt.Errorf("parent went away: %v", sc.Err()))
}
